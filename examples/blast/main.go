// BLAST: a genome-analysis workflow on a growing grid.
//
// This example reproduces the paper's flagship scenario (§4.3): a
// GNARE-style BLAST workflow — FileBreaker → k×(blastall → parser) →
// Merger — executes on a grid whose pool grows every Δ time units. The
// fully parallel, compute-heavy middle sections are exactly what new
// resources can absorb, so adaptive rescheduling shines: the paper reports
// a 20.4% average makespan reduction over static HEFT.
//
//	go run ./examples/blast [-jobs 400] [-pool 20] [-interval 400]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"aheft"
	"aheft/internal/rng"
	"aheft/internal/workload"
)

func main() {
	var (
		jobs     = flag.Int("jobs", 400, "total jobs υ (the paper sweeps 200..1000)")
		ccr      = flag.Float64("ccr", 0.5, "communication-to-computation ratio")
		pool     = flag.Int("pool", 20, "initial pool size R")
		interval = flag.Float64("interval", 400, "resource change interval Δ")
		pct      = flag.Float64("pct", 0.2, "resource change percentage δ")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	r := rng.New(*seed)
	sc, err := workload.BlastScenario(workload.AppParams{
		Parallelism: workload.BlastParallelism(*jobs),
		CCR:         *ccr,
		Beta:        0.5,
	}, workload.GridParams{
		InitialResources: *pool,
		ChangeInterval:   *interval,
		ChangePct:        *pct,
	}, r)
	if err != nil {
		log.Fatal(err)
	}
	g := sc.Graph

	fmt.Printf("BLAST workflow: %d jobs (%d-way parallel), width %d, %d levels\n",
		g.Len(), workload.BlastParallelism(*jobs), g.Width(), len(g.Levels()))
	fmt.Printf("grid: R=%d initially, +%d resources every Δ=%g\n\n",
		*pool, len(sc.Pool.ArrivalsAt(sc.Pool.ChangeTimes()[0])), *interval)

	ctx := context.Background()
	static, err := aheft.Run(ctx, g, sc.Estimator(), sc.Pool, aheft.WithPolicy("heft"))
	if err != nil {
		log.Fatal(err)
	}
	adaptive, err := aheft.Run(ctx, g, sc.Estimator(), sc.Pool, aheft.WithPolicy("aheft"))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("static HEFT:    makespan %10.1f (plans once, ignores every arrival)\n", static.Makespan)
	fmt.Printf("adaptive AHEFT: makespan %10.1f (%0.1f%% better; paper reports 20.4%% on average)\n\n",
		adaptive.Makespan, 100*adaptive.Improvement())

	fmt.Println("rescheduling log:")
	for _, d := range adaptive.Decisions {
		bar := ""
		if d.Adopted {
			gain := d.OldMakespan - d.NewMakespan
			for i := 0; i < int(gain/25); i++ {
				bar += "#"
			}
		}
		fmt.Printf("  t=%7.1f pool=%3d done=%4d/%d  %9.1f -> %9.1f %s\n",
			d.Clock, d.PoolSize, d.JobsFinished, g.Len(), d.OldMakespan, d.NewMakespan, bar)
	}

	// Show how the adaptive schedule spread onto late arrivals.
	used := map[bool]int{}
	for _, a := range adaptive.Schedule.Assignments() {
		used[sc.Pool.ArrivalTime(a.Resource) > 0]++
	}
	fmt.Printf("\njobs on initial resources: %d, on late arrivals: %d\n", used[false], used[true])
}
