// WIEN2K: why a serialisation bottleneck caps adaptive gains.
//
// The WIEN2K quantum-chemistry workflow (paper Fig. 7) has two wide
// parallel sections (LAPW1 and LAPW2, k tasks each) — but between them
// sits the lone LAPW2_FERMI job, and after them a serial tail
// (SumPara → LCore → Mixer → Converged → StageOut). While FERMI or the
// tail runs, every other resource idles: extra resources cannot help a
// single job.
//
// This example runs BLAST and WIEN2K over the same batch of growing grids
// (averaging over several sampled cases — a single case is dominated by
// the one-draw-per-operation cost sampling) and reports the average
// improvement of each, reproducing the paper's Table 6 contrast (BLAST
// 20.4% vs WIEN2K 6.3%). It also quantifies the bottleneck directly: the
// fraction of the WIEN2K makespan during which at most one job can run.
//
//	go run ./examples/wien2k [-jobs 400] [-pool 20] [-cases 8]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"aheft"
	"aheft/internal/rng"
	"aheft/internal/stats"
	"aheft/internal/workload"
)

func main() {
	var (
		jobs     = flag.Int("jobs", 400, "total jobs υ")
		ccr      = flag.Float64("ccr", 0.5, "communication-to-computation ratio")
		pool     = flag.Int("pool", 20, "initial pool size R")
		interval = flag.Float64("interval", 400, "resource change interval Δ")
		cases    = flag.Int("cases", 8, "sampled cases per application")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	root := rng.New(*seed)
	gp := workload.GridParams{InitialResources: *pool, ChangeInterval: *interval, ChangePct: 0.2}

	var blastImp, wienImp, serialFrac stats.Sample
	for i := 0; i < *cases; i++ {
		r := root.Split(fmt.Sprintf("case-%d", i))

		wien, err := workload.Wien2kScenario(workload.AppParams{
			Parallelism: workload.Wien2kParallelism(*jobs), CCR: *ccr, Beta: 0.5,
		}, gp, r.Split("wien"))
		if err != nil {
			log.Fatal(err)
		}
		blast, err := workload.BlastScenario(workload.AppParams{
			Parallelism: workload.BlastParallelism(*jobs), CCR: *ccr, Beta: 0.5,
		}, gp, r.Split("blast"))
		if err != nil {
			log.Fatal(err)
		}

		wi := improvement(wien)
		bi := improvement(blast)
		wienImp.Add(wi)
		blastImp.Add(bi)
		serialFrac.Add(serialFraction(wien))
		fmt.Printf("case %d: BLAST %5.1f%%   WIEN2K %5.1f%%\n", i, 100*bi, 100*wi)
	}

	fmt.Printf("\naverage improvement over %d cases (paper: BLAST 20.4%%, WIEN2K 6.3%%):\n", *cases)
	fmt.Printf("  BLAST  %5.1f%%\n  WIEN2K %5.1f%%\n", 100*blastImp.Mean(), 100*wienImp.Mean())
	fmt.Printf("\nWIEN2K spends %.0f%% of its schedule in serial stretches (LAPW0,\n", 100*serialFrac.Mean())
	fmt.Println("LAPW2_FERMI, the SumPara→StageOut tail) where additional resources")
	fmt.Println("necessarily idle — the structural cap the paper describes.")
}

// improvement runs static HEFT and AHEFT on the scenario and returns the
// fractional makespan gain.
func improvement(sc *workload.Scenario) float64 {
	adaptive, err := aheft.Run(context.Background(), sc.Graph, sc.Estimator(), sc.Pool, aheft.WithPolicy("aheft"))
	if err != nil {
		log.Fatal(err)
	}
	return adaptive.Improvement()
}

// serialFraction measures, under the static plan, the fraction of the
// makespan during which a width-1 job (an entry/exit stage, LAPW2_FERMI,
// or the serial tail) is the only runnable work.
func serialFraction(sc *workload.Scenario) float64 {
	static, err := aheft.Run(context.Background(), sc.Graph, sc.Estimator(), sc.Pool, aheft.WithPolicy("heft"))
	if err != nil {
		log.Fatal(err)
	}
	g := sc.Graph
	serial := 0.0
	for _, lv := range g.Levels() {
		if len(lv) != 1 {
			continue
		}
		a := static.Schedule.MustGet(lv[0])
		serial += a.Duration()
	}
	if static.Makespan <= 0 {
		return 0
	}
	return serial / static.Makespan
}
