// What-if: proactive capacity planning through the Planner.
//
// The paper (§3.3) proposes extending schedule evaluation into an online
// management tool that answers "What will the expected performance be if
// an additional resource A is added (removed)?" before committing
// anything. This example executes a BLAST workflow to its one-third point,
// then asks a ladder of such questions: +1, +2, +4, +8 resources, and the
// removal of the busiest resource — printing the predicted makespan and
// whether the adaptive planner would switch plans.
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"

	"aheft/internal/grid"
	"aheft/internal/heft"
	"aheft/internal/planner"
	"aheft/internal/rng"
	"aheft/internal/schedule"
	"aheft/internal/workload"
)

func main() {
	r := rng.New(7)
	// Generate with one far-future arrival wave so hypothetical additions
	// have β-sampled cost columns available.
	sc, err := workload.BlastScenario(workload.AppParams{
		Parallelism: 99, CCR: 1, Beta: 0.5,
	}, workload.GridParams{
		InitialResources: 12, ChangeInterval: 1e9, ChangePct: 1.0, MaxEvents: 1,
	}, r)
	if err != nil {
		log.Fatal(err)
	}
	g, est := sc.Graph, sc.Estimator()

	s0, err := heft.Schedule(g, est, sc.Pool.Initial(), heft.Options{})
	if err != nil {
		log.Fatal(err)
	}
	clock := s0.Makespan() / 3
	available := sc.Pool.AvailableAt(clock)

	fmt.Printf("BLAST workflow, %d jobs on %d resources; current plan finishes at %.1f\n",
		g.Len(), len(available), s0.Makespan())
	fmt.Printf("evaluating hypotheticals at t = %.1f (one third in)\n\n", clock)

	// Future (not-yet-arrived) resources serve as the hypothetical
	// additions: the grid "could attract" machines like these.
	var future []grid.Resource
	for _, a := range sc.Pool.Arrivals() {
		if a.Time > clock {
			future = append(future, a.Resource)
		}
	}

	fmt.Printf("%-28s %12s %12s %8s\n", "scenario", "makespan", "delta", "adopt?")
	for _, n := range []int{1, 2, 4, 8} {
		if n > len(future) {
			break
		}
		ans, err := planner.WhatIf(g, est, s0, available, planner.WhatIfQuery{
			Clock: clock,
			Add:   future[:n],
		}, planner.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("add %-24d %12.1f %+12.1f %8v\n", n, ans.NewMakespan, ans.Delta(), ans.WouldAdopt)
	}

	// And the inverse question: losing the busiest resource.
	busiest := busiestResource(s0, available)
	ans, err := planner.WhatIf(g, est, s0, available, planner.WhatIfQuery{
		Clock:  clock,
		Remove: []grid.ID{busiest},
	}, planner.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remove busiest (r%-12d %12.1f %+12.1f %8v\n", busiest+1, ans.NewMakespan, ans.Delta(), ans.WouldAdopt)

	fmt.Println("\nnegative delta: the grid change would shorten the workflow; the planner")
	fmt.Println("adopts only strict improvements, so \"adopt? false\" answers the manager's")
	fmt.Println("question — that machine isn't worth acquiring for this workload.")
}

// busiestResource returns the resource carrying the most scheduled work.
func busiestResource(s *schedule.Schedule, rs []grid.Resource) grid.ID {
	best, bestLoad := rs[0].ID, -1.0
	for _, r := range rs {
		load := 0.0
		for _, a := range s.OnResource(r.ID) {
			load += a.Duration()
		}
		if load > bestLoad {
			best, bestLoad = r.ID, load
		}
	}
	return best
}
