// Dynamic grid: three strategies under resource churn.
//
// This example runs a batch of parametric random workflows (the paper's
// §4.2 setting) on grids whose pools grow over time, comparing:
//
//   - static HEFT (plan once, ignore the dynamics),
//   - AHEFT (the paper's adaptive rescheduling),
//   - dynamic Min-Min (just-in-time local decisions).
//
// It prints per-case makespans and the aggregate ordering the paper
// reports: AHEFT ≤ HEFT ≪ Min-Min, with Min-Min's gap widening as the
// workload gets more data-intensive (higher CCR).
//
//	go run ./examples/dynamicgrid [-cases 10] [-ccr 5]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"aheft"
	"aheft/internal/rng"
	"aheft/internal/stats"
	"aheft/internal/workload"
)

func main() {
	var (
		cases = flag.Int("cases", 10, "number of random workflows")
		jobs  = flag.Int("jobs", 100, "jobs per workflow")
		ccr   = flag.Float64("ccr", 0.5, "communication-to-computation ratio; at high CCR transfer costs lock jobs in place and adaptive gains shrink")
		pool  = flag.Int("pool", 10, "initial pool size R")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	root := rng.New(*seed)
	var hs, as, ms stats.Sample
	fmt.Printf("%-6s %12s %12s %12s %10s\n", "case", "HEFT", "AHEFT", "Min-Min", "AHEFT gain")
	for i := 0; i < *cases; i++ {
		r := root.Split(fmt.Sprintf("case-%d", i))
		sc, err := workload.RandomScenario(workload.RandomParams{
			Jobs:      *jobs,
			CCR:       *ccr,
			OutDegree: 0.3,
			Beta:      0.5,
			Alpha:     2, // wide DAGs so arrivals matter
		}, workload.GridParams{
			InitialResources: *pool,
			ChangeInterval:   300,
			ChangePct:        0.25,
		}, r)
		if err != nil {
			log.Fatal(err)
		}
		// One session per case: the three policies race concurrently over
		// the same pool, each workflow in its own goroutine.
		est := sc.Estimator()
		session := aheft.NewSession(context.Background(), sc.Pool)
		for _, pol := range []string{"heft", "aheft", "minmin"} {
			if err := session.Submit(pol, sc.Graph, est, aheft.WithPolicy(pol)); err != nil {
				log.Fatal(err)
			}
		}
		results, err := session.Wait()
		if err != nil {
			log.Fatal(err)
		}
		static, adaptive, dyn := results["heft"], results["aheft"], results["minmin"]
		hs.Add(static.Makespan)
		as.Add(adaptive.Makespan)
		ms.Add(dyn.Makespan)
		fmt.Printf("%-6d %12.1f %12.1f %12.1f %9.1f%%\n",
			i, static.Makespan, adaptive.Makespan, dyn.Makespan, 100*adaptive.Improvement())
	}
	fmt.Printf("\naverages over %d cases (paper §4.2: HEFT 4075, AHEFT 3911, Min-Min 12352):\n", *cases)
	fmt.Printf("  HEFT    %s\n  AHEFT   %s\n  Min-Min %s\n", hs.String(), as.String(), ms.String())
	fmt.Printf("\nAHEFT vs HEFT:    %5.1f%% better on average\n", 100*stats.Improvement(hs.Mean(), as.Mean()))
	fmt.Printf("AHEFT vs Min-Min: %5.1f%% better on average\n", 100*stats.Improvement(ms.Mean(), as.Mean()))
}
