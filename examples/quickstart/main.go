// Quickstart: reproduce the paper's worked example (Figs. 4–5).
//
// A ten-job workflow is planned with classic static HEFT on three
// resources (makespan 80). A fourth resource joins the grid at t = 15; the
// adaptive planner snapshots the partially executed schedule, reschedules
// the remaining jobs over the enlarged pool, and adopts the better plan —
// reaching the paper's published makespan of 76.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"aheft"
	"aheft/internal/dag"
	"aheft/internal/grid"
)

func main() {
	sc := aheft.SampleScenario()
	g, est, pool := sc.Graph, sc.Estimator(), sc.Pool

	fmt.Printf("workflow: %s — %d jobs, %d edges\n", g.Name(), g.Len(), g.NumEdges())
	fmt.Printf("grid: r1–r3 from t=0, r4 joins at t=%g\n\n", pool.ChangeTimes()[0])

	nameOf := func(j dag.JobID) string { return g.Job(j).Name }
	resName := func(r grid.ID) string {
		res, _ := pool.Resource(r)
		return res.Name
	}

	ctx := context.Background()

	// 1. Traditional static HEFT: plan once on the initial pool.
	static, err := aheft.Run(ctx, g, est, pool, aheft.WithPolicy("heft"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static HEFT makespan: %g (paper: 80)\n", static.Makespan)
	fmt.Println(static.Schedule.Gantt(80, nameOf, resName))

	// 2. AHEFT: adapt to the arrival of r4. The near-tie exploration
	// window lets the rescheduler escape one locally-attractive placement
	// and reach the paper's published 76 (strict Fig. 3 greedy finds an
	// 80 reschedule and keeps the current plan instead — see
	// EXPERIMENTS.md).
	adaptive, err := aheft.Run(ctx, g, est, pool, aheft.WithPolicy("aheft"), aheft.WithTieWindow(0.05))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive AHEFT makespan: %g (paper: 76)\n", adaptive.Makespan)
	for _, d := range adaptive.Decisions {
		fmt.Printf("  event at t=%g: pool %d, evaluated %g -> %g, adopted=%v\n",
			d.Clock, d.PoolSize, d.OldMakespan, d.NewMakespan, d.Adopted)
	}
	fmt.Println(adaptive.Schedule.Gantt(80, nameOf, resName))

	// 3. The dynamic just-in-time baseline for contrast.
	dyn, err := aheft.MinMin(ctx, g, est, pool)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic Min-Min makespan: %g\n", dyn.Makespan)
	fmt.Printf("\nAHEFT improves %0.1f%% over static HEFT and %0.1f%% over dynamic Min-Min\n",
		100*(static.Makespan-adaptive.Makespan)/static.Makespan,
		100*(dyn.Makespan-adaptive.Makespan)/dyn.Makespan)
}
