package aheft_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"aheft"
	"aheft/internal/rng"
	"aheft/internal/testleak"
	"aheft/internal/workload"
)

// sessionScenario builds one random workflow over a churning pool.
func sessionScenario(t *testing.T, seed string) *workload.Scenario {
	t.Helper()
	sc, err := workload.RandomScenario(workload.RandomParams{
		Jobs: 25, CCR: 1, OutDegree: 0.3, Beta: 0.5,
	}, workload.GridParams{
		InitialResources: 5, ChangeInterval: 150, ChangePct: 0.3, MaxEvents: 3,
	}, rng.New(7).Split(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestSessionConcurrentWorkflows executes many workflows concurrently over
// one pool and checks each result equals its standalone run (run with
// -race to exercise the concurrency claims).
func TestSessionConcurrentWorkflows(t *testing.T) {
	ctx := context.Background()
	sc := sessionScenario(t, "shared-pool")
	const n = 8
	session := aheft.NewSession(ctx, sc.Pool, aheft.WithTieWindow(0.05))

	events := session.Events()
	var wg sync.WaitGroup
	wg.Add(1)
	counts := make(map[aheft.EventKind]int)
	go func() {
		defer wg.Done()
		for ev := range events {
			counts[ev.Kind]++
		}
	}()

	// A mix of policies over the same pool, one goroutine each.
	pols := []string{"heft", "aheft", "minmin", "maxmin", "sufferage", "aheft", "heft", "minmin"}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("wf-%d", i)
		if err := session.Submit(name, sc.Graph, sc.Estimator(), aheft.WithPolicy(pols[i])); err != nil {
			t.Fatal(err)
		}
	}
	results, err := session.Wait()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(results) != n {
		t.Fatalf("results = %d, want %d", len(results), n)
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("wf-%d", i)
		solo, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool,
			aheft.WithPolicy(pols[i]), aheft.WithTieWindow(0.05))
		if err != nil {
			t.Fatal(err)
		}
		if results[name].Makespan != solo.Makespan {
			t.Fatalf("%s (%s): session makespan %g != solo %g",
				name, pols[i], results[name].Makespan, solo.Makespan)
		}
	}
	if counts[aheft.EventSubmitted] != n {
		t.Fatalf("submitted events = %d, want %d", counts[aheft.EventSubmitted], n)
	}
	if counts[aheft.EventDone] != n {
		t.Fatalf("done events = %d, want %d", counts[aheft.EventDone], n)
	}
	if counts[aheft.EventFailed] != 0 {
		t.Fatalf("failed events = %d, want 0", counts[aheft.EventFailed])
	}
}

// TestSessionDecisionEvents: adaptive workflows stream their rescheduling
// decisions through the subscription.
func TestSessionDecisionEvents(t *testing.T) {
	sc := aheft.SampleScenario()
	session := aheft.NewSession(context.Background(), sc.Pool, aheft.WithTieWindow(0.05))
	events := session.Events()
	if err := session.Submit("sample", sc.Graph, sc.Estimator()); err != nil {
		t.Fatal(err)
	}
	done := make(chan []aheft.Event)
	go func() {
		var got []aheft.Event
		for ev := range events {
			got = append(got, ev)
		}
		done <- got
	}()
	results, err := session.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if results["sample"].Makespan != 76 {
		t.Fatalf("makespan = %g, want 76", results["sample"].Makespan)
	}
	var decisions int
	for _, ev := range <-done {
		if ev.Kind == aheft.EventDecision {
			decisions++
			if ev.Decision == nil || ev.Workflow != "sample" {
				t.Fatalf("malformed decision event %+v", ev)
			}
		}
	}
	if decisions != len(results["sample"].Decisions) {
		t.Fatalf("streamed %d decisions, result has %d", decisions, len(results["sample"].Decisions))
	}
}

// TestSessionErrgroupCancellation: the first failing workflow cancels its
// siblings and Wait reports the failure.
func TestSessionErrgroupCancellation(t *testing.T) {
	sc := sessionScenario(t, "cancel")
	session := aheft.NewSession(context.Background(), sc.Pool)
	// An unknown policy fails immediately...
	if err := session.Submit("bad", sc.Graph, sc.Estimator(), aheft.WithPolicy("no-such-policy")); err != nil {
		t.Fatal(err)
	}
	// ...while healthy siblings keep the session busy.
	for i := 0; i < 4; i++ {
		if err := session.Submit(fmt.Sprintf("ok-%d", i), sc.Graph, sc.Estimator()); err != nil {
			t.Fatal(err)
		}
	}
	_, err := session.Wait()
	if err == nil {
		t.Fatal("Wait did not report the failure")
	}
}

// TestSessionSubmitValidation: duplicate names and post-Wait submissions
// are rejected.
func TestSessionSubmitValidation(t *testing.T) {
	sc := aheft.SampleScenario()
	session := aheft.NewSession(context.Background(), sc.Pool)
	if err := session.Submit("a", sc.Graph, sc.Estimator()); err != nil {
		t.Fatal(err)
	}
	if err := session.Submit("a", sc.Graph, sc.Estimator()); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := session.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := session.Submit("b", sc.Graph, sc.Estimator()); err == nil {
		t.Fatal("Submit after Wait accepted")
	}
	// Subscribing after Wait yields a closed channel, not a hang.
	if _, open := <-session.Events(); open {
		t.Fatal("Events after Wait delivered a value on an open channel")
	}
}

// TestSessionSubmitWaitRace hammers concurrent Submit and Wait; run with
// -race. Every Submit either errors (Wait won) or its workflow completes
// before the events channel closes — never a send on a closed channel.
func TestSessionSubmitWaitRace(t *testing.T) {
	sc := aheft.SampleScenario()
	for i := 0; i < 50; i++ {
		session := aheft.NewSession(context.Background(), sc.Pool)
		_ = session.Events()
		done := make(chan struct{})
		go func() {
			defer close(done)
			for j := 0; j < 4; j++ {
				_ = session.Submit(fmt.Sprintf("wf-%d", j), sc.Graph, sc.Estimator())
			}
		}()
		if _, err := session.Wait(); err != nil {
			t.Fatal(err)
		}
		<-done
	}
}

// TestSessionEventDropCounter pins the documented drop policy: a
// subscriber that never drains loses exactly (emitted − buffer) events,
// the buffer retains the newest 256, and Dropped reports the loss.
func TestSessionEventDropCounter(t *testing.T) {
	sc := aheft.SampleScenario()
	session := aheft.NewSession(context.Background(), sc.Pool, aheft.WithPolicy("heft"))
	events := session.Events() // subscribed, never drained until the end
	const n = 200              // 2 events each (submitted + done; heft makes no decisions)
	for i := 0; i < n; i++ {
		if err := session.Submit(fmt.Sprintf("wf-%d", i), sc.Graph, sc.Estimator()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := session.Wait(); err != nil {
		t.Fatal(err)
	}
	received := 0
	for range events {
		received++
	}
	const emitted = 2 * n
	if received+int(session.Dropped()) != emitted {
		t.Fatalf("received %d + dropped %d != emitted %d", received, session.Dropped(), emitted)
	}
	if received != 256 {
		t.Fatalf("buffer retained %d events, want 256", received)
	}
	if session.Dropped() != emitted-256 {
		t.Fatalf("Dropped() = %d, want %d", session.Dropped(), emitted-256)
	}
}

// TestSessionDropAccounting is the counterpart under a live (draining)
// subscriber: drops may or may not occur depending on scheduling, but
// received + Dropped always accounts for every emitted event — the
// stream is never silently short.
func TestSessionDropAccounting(t *testing.T) {
	sc := aheft.SampleScenario()
	session := aheft.NewSession(context.Background(), sc.Pool, aheft.WithPolicy("heft"))
	events := session.Events()
	received := make(chan int)
	go func() {
		n := 0
		for range events {
			n++
		}
		received <- n
	}()
	const n = 300
	for i := 0; i < n; i++ {
		if err := session.Submit(fmt.Sprintf("wf-%d", i), sc.Graph, sc.Estimator()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := session.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := <-received; got+int(session.Dropped()) != 2*n {
		t.Fatalf("received %d + dropped %d != emitted %d", got, session.Dropped(), 2*n)
	}
}

// TestSessionNoDropsWithinBuffer: emissions that fit the 256-event
// buffer are never dropped, even with a subscriber that only drains at
// the end.
func TestSessionNoDropsWithinBuffer(t *testing.T) {
	sc := aheft.SampleScenario()
	session := aheft.NewSession(context.Background(), sc.Pool, aheft.WithPolicy("heft"))
	events := session.Events()
	const n = 100 // 200 events < 256
	for i := 0; i < n; i++ {
		if err := session.Submit(fmt.Sprintf("wf-%d", i), sc.Graph, sc.Estimator()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := session.Wait(); err != nil {
		t.Fatal(err)
	}
	got := 0
	for range events {
		got++
	}
	if got != 2*n || session.Dropped() != 0 {
		t.Fatalf("received %d (want %d), dropped %d (want 0)", got, 2*n, session.Dropped())
	}
}

// TestSessionCancelMidRunNoLeak cancels the session from the event
// stream between reschedule events of in-flight workflows, and checks
// that Wait reports the cancellation and every scheduling goroutine
// exits (no leak).
func TestSessionCancelMidRunNoLeak(t *testing.T) {
	sc, err := workload.LayeredScenario(workload.LayeredParams{
		Jobs: 3000, Width: 60, FanIn: 3, CCR: 1, Beta: 0.5,
	}, workload.GridParams{
		InitialResources: 8, ChangeInterval: 300, ChangePct: 0.25, MaxEvents: 6,
	}, rng.New(0xCA))
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	session := aheft.NewSession(ctx, sc.Pool)
	events := session.Events()
	go func() {
		for ev := range events {
			if ev.Kind == aheft.EventDecision {
				cancel() // mid-run: between this and the next reschedule event
			}
		}
	}()
	for i := 0; i < 4; i++ {
		if err := session.Submit(fmt.Sprintf("wf-%d", i), sc.Graph, sc.Estimator()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := session.Wait(); err == nil {
		t.Fatal("Wait ignored the mid-run cancellation")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait error %v does not wrap context.Canceled", err)
	}
	// Every workflow goroutine must have exited; slack 1 for the
	// event-drain goroutine, which may still be parked on its closed
	// range.
	testleak.Check(t, baseline, 1)
}

// TestSessionParentCancellation: cancelling the session context aborts
// in-flight workflows and Wait reports the cancellation.
func TestSessionParentCancellation(t *testing.T) {
	sc := sessionScenario(t, "parent-cancel")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before anything runs: every workflow must abort
	session := aheft.NewSession(ctx, sc.Pool)
	for i := 0; i < 3; i++ {
		if err := session.Submit(fmt.Sprintf("wf-%d", i), sc.Graph, sc.Estimator()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := session.Wait(); err == nil {
		t.Fatal("Wait ignored the cancelled context")
	}
}
