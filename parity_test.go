package aheft_test

import (
	"context"
	"fmt"
	"testing"

	"aheft"
	"aheft/internal/planner"
	"aheft/internal/rng"
	"aheft/internal/workload"
)

// parityScenarios yields the scenario families the acceptance criteria
// name: the paper's Fig. 4 worked example, parametric random DAGs, and
// the BLAST/WIEN2K application shapes, each under pool churn.
func parityScenarios(t *testing.T) map[string]*workload.Scenario {
	t.Helper()
	out := map[string]*workload.Scenario{"fig4-sample": workload.SampleScenario()}
	root := rng.New(0xBEEF)
	gp := workload.GridParams{InitialResources: 6, ChangeInterval: 200, ChangePct: 0.25, MaxEvents: 4}
	for i := 0; i < 3; i++ {
		r := root.Split(fmt.Sprintf("rand-%d", i))
		sc, err := workload.RandomScenario(workload.RandomParams{
			Jobs: 20 + 15*i, CCR: []float64{0.5, 1, 5}[i], OutDegree: 0.3, Beta: 0.5,
		}, gp, r)
		if err != nil {
			t.Fatal(err)
		}
		out[fmt.Sprintf("random-%d", i)] = sc
	}
	blast, err := workload.BlastScenario(workload.AppParams{Parallelism: 12, CCR: 1, Beta: 0.5},
		gp, root.Split("blast"))
	if err != nil {
		t.Fatal(err)
	}
	out["blast"] = blast
	wien, err := workload.Wien2kScenario(workload.AppParams{Parallelism: 10, CCR: 1, Beta: 0.5},
		gp, root.Split("wien2k"))
	if err != nil {
		t.Fatal(err)
	}
	out["wien2k"] = wien
	return out
}

// preKernelGoldens pins, for every (policy, scenario, tie-window) cell,
// the exact makespan produced by the pre-kernel implementation — recorded
// at the refactor boundary (commit 1636171, where core/heft/policy each
// carried their own copy of the rank/FEA/placement loop) with 17
// significant digits, which round-trips float64 exactly. The shared
// scheduling kernel must reproduce every value bit for bit: the kernel
// reorganises the arithmetic's data structures, not the arithmetic.
var preKernelGoldens = map[string]map[string][2]float64{
	// scenario -> policy -> {tie=0, tie=0.05}
	"fig4-sample": {
		"heft":      {80, 80},
		"aheft":     {80, 76}, // paper Fig. 5(a)/(b)
		"minmin":    {100, 100},
		"maxmin":    {101, 101},
		"sufferage": {96, 96},
	},
	"random-0": {
		"heft":      {820.69988664577875, 820.69988664577875},
		"aheft":     {810.36964544423677, 810.36964544423677},
		"minmin":    {985.37136605616035, 985.37136605616035},
		"maxmin":    {886.83339291197888, 886.83339291197888},
		"sufferage": {955.22112854539341, 955.22112854539341},
	},
	"random-1": {
		"heft":      {1660.3346420178734, 1660.3346420178734},
		"aheft":     {1659.0191937130819, 1647.7641666260893},
		"minmin":    {2208.6094126930661, 2208.6094126930661},
		"maxmin":    {2039.1982773849099, 2039.1982773849099},
		"sufferage": {2050.0421773908811, 2050.0421773908811},
	},
	"random-2": {
		"heft":      {5258.9866949604138, 5258.9866949604138},
		"aheft":     {5258.9866949604138, 4713.5021598965868},
		"minmin":    {7794.5312048919595, 7794.5312048919595},
		"maxmin":    {7988.7154476108308, 7988.7154476108308},
		"sufferage": {7758.0226047570604, 7758.0226047570604},
	},
	"blast": {
		"heft":      {2211.2832894954554, 2211.2832894954554},
		"aheft":     {1777.6967836633976, 1777.6967836633976},
		"minmin":    {1872.5200361258528, 1872.5200361258528},
		"maxmin":    {1872.5200361258528, 1872.5200361258528},
		"sufferage": {1872.5200361258528, 1872.5200361258528},
	},
	"wien2k": {
		"heft":      {1976.6882685469106, 1976.6882685469106},
		"aheft":     {1771.0551424628975, 1771.0551424628975},
		"minmin":    {1803.5229784428921, 1803.5229784428921},
		"maxmin":    {1803.5229784428921, 1803.5229784428921},
		"sufferage": {1803.5229784428921, 1803.5229784428921},
	},
}

// TestKernelParityWithPreKernelGoldens drives every registered built-in
// policy over every parity scenario at both tie windows through the v2
// facade and requires bit-identical makespans against the pre-kernel
// recordings above. This is the acceptance gate of the kernel refactor:
// the Fig. 4 sample, the random-DAG goldens and the BLAST/WIEN2K
// makespans all flow through internal/kernel now, and none may move.
func TestKernelParityWithPreKernelGoldens(t *testing.T) {
	ctx := context.Background()
	scenarios := parityScenarios(t)
	for name, sc := range scenarios {
		byPolicy, ok := preKernelGoldens[name]
		if !ok {
			t.Fatalf("no goldens recorded for scenario %q", name)
		}
		for pol, want := range byPolicy {
			for ti, tie := range []float64{0, 0.05} {
				t.Run(fmt.Sprintf("%s/%s/tie=%g", pol, name, tie), func(t *testing.T) {
					res, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool,
						aheft.WithPolicy(pol), aheft.WithTieWindow(tie))
					if err != nil {
						t.Fatal(err)
					}
					if res.Makespan != want[ti] {
						t.Fatalf("makespan %v != pre-kernel golden %v (diff %g)",
							res.Makespan, want[ti], res.Makespan-want[ti])
					}
				})
			}
		}
	}
}

// TestSeedGoldenMakespans pins every policy's makespan on the Fig. 4
// sample scenario to the values produced by the seed (pre-refactor)
// implementations — minmin/maxmin/sufferage were measured by running the
// original internal/minmin engine at the seed commit, heft/aheft are the
// paper's published 80/76.
func TestSeedGoldenMakespans(t *testing.T) {
	ctx := context.Background()
	sc := workload.SampleScenario()
	golden := map[string]float64{
		"heft":      80,  // paper Fig. 5(a)
		"aheft":     76,  // paper Fig. 5(b), tie window 0.05
		"minmin":    100, // seed internal/minmin at commit 8c03586
		"maxmin":    101, // seed internal/minmin at commit 8c03586
		"sufferage": 96,  // seed internal/minmin at commit 8c03586
	}
	for pol, want := range golden {
		res, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool,
			aheft.WithPolicy(pol), aheft.WithTieWindow(0.05))
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != want {
			t.Fatalf("%s: makespan %g, want seed golden %g", pol, res.Makespan, want)
		}
	}
}

// TestV2SampleHeadline pins the paper's worked-example numbers through
// the v2 facade for the three headline policies.
func TestV2SampleHeadline(t *testing.T) {
	ctx := context.Background()
	sc := workload.SampleScenario()
	for _, tc := range []struct {
		pol  string
		tie  float64
		want float64
	}{
		{"heft", 0, 80},
		{"aheft", 0.05, 76},
		{"aheft", 0, 80}, // strict Fig. 3 greedy misses the 76 reschedule
	} {
		res, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool,
			aheft.WithPolicy(tc.pol), aheft.WithTieWindow(tc.tie))
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != tc.want {
			t.Fatalf("%s tie=%g: makespan %g, want %g", tc.pol, tc.tie, res.Makespan, tc.want)
		}
	}
}

// TestV2DecisionTriggers: analytic adaptive runs label every decision as
// arrival-triggered with the arrival count of the event.
func TestV2DecisionTriggers(t *testing.T) {
	sc := workload.SampleScenario()
	res, err := aheft.Run(context.Background(), sc.Graph, sc.Estimator(), sc.Pool, aheft.WithTieWindow(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) == 0 {
		t.Fatal("no decisions")
	}
	for _, d := range res.Decisions {
		if d.Trigger != planner.TriggerArrival {
			t.Fatalf("decision trigger = %v, want arrival", d.Trigger)
		}
		if d.ArrivedCount != 1 {
			t.Fatalf("arrived count = %d, want 1 (r4)", d.ArrivedCount)
		}
	}
}
