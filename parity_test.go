package aheft_test

import (
	"context"
	"fmt"
	"testing"

	"aheft"
	"aheft/internal/minmin"
	"aheft/internal/planner"
	"aheft/internal/rng"
	"aheft/internal/workload"
)

// parityScenarios yields the scenario families the acceptance criteria
// name: the paper's Fig. 4 worked example, parametric random DAGs, and
// the BLAST/WIEN2K application shapes, each under pool churn.
func parityScenarios(t *testing.T) map[string]*workload.Scenario {
	t.Helper()
	out := map[string]*workload.Scenario{"fig4-sample": workload.SampleScenario()}
	root := rng.New(0xBEEF)
	gp := workload.GridParams{InitialResources: 6, ChangeInterval: 200, ChangePct: 0.25, MaxEvents: 4}
	for i := 0; i < 3; i++ {
		r := root.Split(fmt.Sprintf("rand-%d", i))
		sc, err := workload.RandomScenario(workload.RandomParams{
			Jobs: 20 + 15*i, CCR: []float64{0.5, 1, 5}[i], OutDegree: 0.3, Beta: 0.5,
		}, gp, r)
		if err != nil {
			t.Fatal(err)
		}
		out[fmt.Sprintf("random-%d", i)] = sc
	}
	blast, err := workload.BlastScenario(workload.AppParams{Parallelism: 12, CCR: 1, Beta: 0.5},
		gp, root.Split("blast"))
	if err != nil {
		t.Fatal(err)
	}
	out["blast"] = blast
	wien, err := workload.Wien2kScenario(workload.AppParams{Parallelism: 10, CCR: 1, Beta: 0.5},
		gp, root.Split("wien2k"))
	if err != nil {
		t.Fatal(err)
	}
	out["wien2k"] = wien
	return out
}

// legacyMakespan runs a scenario through the legacy v1 entry point the
// policy replaced: planner.Run for HEFT/AHEFT, minmin.Run for the
// just-in-time family.
func legacyMakespan(t *testing.T, sc *workload.Scenario, pol string, tie float64) float64 {
	t.Helper()
	est := sc.Estimator()
	switch pol {
	case "heft":
		res, err := planner.Run(sc.Graph, est, sc.Pool, planner.StrategyStatic, planner.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	case "aheft":
		res, err := planner.Run(sc.Graph, est, sc.Pool, planner.StrategyAdaptive, planner.RunOptions{TieWindow: tie})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	case "minmin", "maxmin", "sufferage":
		h := map[string]minmin.Heuristic{
			"minmin": minmin.MinMin, "maxmin": minmin.MaxMin, "sufferage": minmin.Sufferage,
		}[pol]
		res, err := minmin.Run(sc.Graph, est, sc.Pool, h)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	default:
		t.Fatalf("no legacy entry point for policy %q", pol)
		return 0
	}
}

// TestV2ParityWithLegacy checks that the deprecated v1 entry points
// (planner.Run, minmin.Run) and the v2 facade agree for every registered
// policy and scenario family — guarding the shim wiring and option
// plumbing. The legacy shims now share the policy engine, so this alone
// cannot catch a transcription bug in the engine port itself; that is
// pinned independently by TestSeedGoldenMakespans below (values recorded
// from the pre-refactor seed implementation) and by the behavioural
// suites in internal/minmin and internal/planner that survived the move
// unchanged.
func TestV2ParityWithLegacy(t *testing.T) {
	ctx := context.Background()
	scenarios := parityScenarios(t)
	// The five legacy-backed policies, fixed: future registrations have no
	// v1 entry point to compare against and must not break this test.
	legacyBacked := []string{"heft", "aheft", "minmin", "maxmin", "sufferage"}
	for _, tie := range []float64{0, 0.05} {
		for _, pol := range legacyBacked {
			for name, sc := range scenarios {
				t.Run(fmt.Sprintf("%s/%s/tie=%g", pol, name, tie), func(t *testing.T) {
					want := legacyMakespan(t, sc, pol, tie)
					got, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool,
						aheft.WithPolicy(pol), aheft.WithTieWindow(tie))
					if err != nil {
						t.Fatal(err)
					}
					if got.Makespan != want {
						t.Fatalf("v2 makespan %v != legacy %v", got.Makespan, want)
					}
				})
			}
		}
	}
}

// TestSeedGoldenMakespans pins every policy's makespan on the Fig. 4
// sample scenario to the values produced by the seed (pre-refactor)
// implementations — minmin/maxmin/sufferage were measured by running the
// original internal/minmin engine at the seed commit, heft/aheft are the
// paper's published 80/76. Unlike the shim-parity test above, both sides
// of this comparison cannot drift together.
func TestSeedGoldenMakespans(t *testing.T) {
	ctx := context.Background()
	sc := workload.SampleScenario()
	golden := map[string]float64{
		"heft":      80,  // paper Fig. 5(a)
		"aheft":     76,  // paper Fig. 5(b), tie window 0.05
		"minmin":    100, // seed internal/minmin at commit 8c03586
		"maxmin":    101, // seed internal/minmin at commit 8c03586
		"sufferage": 96,  // seed internal/minmin at commit 8c03586
	}
	for pol, want := range golden {
		res, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool,
			aheft.WithPolicy(pol), aheft.WithTieWindow(0.05))
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != want {
			t.Fatalf("%s: makespan %g, want seed golden %g", pol, res.Makespan, want)
		}
	}
}

// TestV2SampleHeadline pins the paper's worked-example numbers through
// the v2 facade for the three headline policies.
func TestV2SampleHeadline(t *testing.T) {
	ctx := context.Background()
	sc := workload.SampleScenario()
	for _, tc := range []struct {
		pol  string
		tie  float64
		want float64
	}{
		{"heft", 0, 80},
		{"aheft", 0.05, 76},
		{"aheft", 0, 80}, // strict Fig. 3 greedy misses the 76 reschedule
	} {
		res, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool,
			aheft.WithPolicy(tc.pol), aheft.WithTieWindow(tc.tie))
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != tc.want {
			t.Fatalf("%s tie=%g: makespan %g, want %g", tc.pol, tc.tie, res.Makespan, tc.want)
		}
	}
}

// TestV2DecisionTriggers: analytic adaptive runs label every decision as
// arrival-triggered with the arrival count of the event.
func TestV2DecisionTriggers(t *testing.T) {
	sc := workload.SampleScenario()
	res, err := aheft.Run(context.Background(), sc.Graph, sc.Estimator(), sc.Pool, aheft.WithTieWindow(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) == 0 {
		t.Fatal("no decisions")
	}
	for _, d := range res.Decisions {
		if d.Trigger != planner.TriggerArrival {
			t.Fatalf("decision trigger = %v, want arrival", d.Trigger)
		}
		if d.ArrivedCount != 1 {
			t.Fatalf("arrived count = %d, want 1 (r4)", d.ArrivedCount)
		}
	}
}
