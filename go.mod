module aheft

go 1.24
