module aheft

go 1.23
