package aheft_test

import (
	"context"
	"testing"

	"aheft"
	"aheft/internal/cost"
	"aheft/internal/data"
	"aheft/internal/workload"
)

// TestDataAwareBeatsOblivious is the library-level acceptance gate for
// data-aware scheduling: on the data-heavy two-site scenario (shared
// database pre-staged on the slow site, fast remote site behind
// bandwidth-4 links as the bait), a plan made with the file catalog
// bound must beat the plan made on the raw edge weights — with both
// schedules scored by data.Retime, the referee that replays placements
// under the true data semantics, so neither plan grades its own
// homework.
func TestDataAwareBeatsOblivious(t *testing.T) {
	ctx := context.Background()
	sc := aheft.DataScenario()
	est := sc.Estimator()

	oblivious, err := aheft.Run(ctx, sc.Graph, est, sc.Pool)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := aheft.Run(ctx, sc.Graph, est, sc.Pool, aheft.WithFileReuse(sc.Files))
	if err != nil {
		t.Fatal(err)
	}

	m, err := data.NewModel(sc.Files, sc.Pool, sc.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := cost.Exact(sc.Table)
	obliviousTrue := data.Retime(sc.Graph, oblivious.Schedule, m, base)
	awareTrue := data.Retime(sc.Graph, aware.Schedule, m, base)
	if awareTrue >= obliviousTrue {
		t.Fatalf("data-aware %.2f does not beat oblivious %.2f under the true data semantics",
			awareTrue, obliviousTrue)
	}

	// The bait must actually have been taken for the comparison to mean
	// anything: the oblivious plan's promised makespan understates its
	// retimed cost (it never modelled the serialized database transfers).
	if obliviousTrue <= oblivious.Makespan {
		t.Fatalf("oblivious plan paid no hidden transfer cost: promised %.2f, retimed %.2f",
			oblivious.Makespan, obliviousTrue)
	}
	// The aware plan optimised against the model directly, so its promise
	// is honest: retiming it must not reveal extra cost.
	if awareTrue > aware.Makespan+1e-9 {
		t.Fatalf("aware plan promised %.2f but retimes to %.2f", aware.Makespan, awareTrue)
	}
}

// TestDataAwareLinksOption: WithLinks overrides the pool's named
// shared-link bandwidths for the run, and the override reaches the data
// model's derived costs.
func TestDataAwareLinksOption(t *testing.T) {
	ctx := context.Background()
	sc := workload.DataScenario(workload.DataParams{})

	slow, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool,
		aheft.WithFileReuse(sc.Files))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool,
		aheft.WithFileReuse(sc.Files),
		aheft.WithLinks(map[string]float64{"siteA": 1000, "siteB": 1000}))
	if err != nil {
		t.Fatal(err)
	}
	// At bandwidth 4, shipping the database to the fast site is the trap
	// the planner avoids; at bandwidth 1000 the transfers are nearly free
	// and the fast site's 2.5× compute advantage must win.
	if fast.Makespan >= slow.Makespan {
		t.Fatalf("link override did not reach the model: fast-link %.2f >= slow-link %.2f",
			fast.Makespan, slow.Makespan)
	}
}
