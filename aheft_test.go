package aheft_test

import (
	"testing"

	"aheft"
)

// TestFacadeQuickstart exercises the doc-comment example end to end.
func TestFacadeQuickstart(t *testing.T) {
	sc := aheft.SampleScenario()
	static, err := aheft.Run(sc.Graph, sc.Estimator(), sc.Pool, aheft.Static, aheft.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if static.Makespan != 80 {
		t.Fatalf("static makespan = %g, want 80", static.Makespan)
	}
	adaptive, err := aheft.Run(sc.Graph, sc.Estimator(), sc.Pool, aheft.Adaptive, aheft.RunOptions{TieWindow: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Makespan != 76 {
		t.Fatalf("adaptive makespan = %g, want 76", adaptive.Makespan)
	}
}

func TestFacadeHEFTAndMinMin(t *testing.T) {
	sc := aheft.SampleScenario()
	s, err := aheft.HEFT(sc.Graph, sc.Estimator(), sc.Pool.Initial())
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 80 {
		t.Fatalf("HEFT makespan = %g", s.Makespan())
	}
	dyn, err := aheft.MinMin(sc.Graph, sc.Estimator(), sc.Pool)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Makespan <= 0 {
		t.Fatal("Min-Min produced no makespan")
	}
}

func TestFacadeGraphConstruction(t *testing.T) {
	g := aheft.NewGraph("mini")
	a := g.AddJob("a", "op")
	b := g.AddJob("b", "op")
	g.MustEdge(a, b, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if aheft.StaticPool(2).Size() != 2 {
		t.Fatal("StaticPool wrong")
	}
}
