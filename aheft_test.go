package aheft_test

import (
	"context"
	"testing"

	"aheft"
)

// TestFacadeQuickstart exercises the doc-comment example end to end.
func TestFacadeQuickstart(t *testing.T) {
	ctx := context.Background()
	sc := aheft.SampleScenario()
	static, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool, aheft.WithPolicy("heft"))
	if err != nil {
		t.Fatal(err)
	}
	if static.Makespan != 80 {
		t.Fatalf("static makespan = %g, want 80", static.Makespan)
	}
	adaptive, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool,
		aheft.WithPolicy("aheft"), aheft.WithTieWindow(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Makespan != 76 {
		t.Fatalf("adaptive makespan = %g, want 76", adaptive.Makespan)
	}
	if adaptive.Policy != "aheft" || static.Policy != "heft" {
		t.Fatalf("policies = %q, %q", adaptive.Policy, static.Policy)
	}
}

// TestFacadeDefaultPolicy: Run without WithPolicy is AHEFT.
func TestFacadeDefaultPolicy(t *testing.T) {
	sc := aheft.SampleScenario()
	res, err := aheft.Run(context.Background(), sc.Graph, sc.Estimator(), sc.Pool, aheft.WithTieWindow(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "aheft" || res.Makespan != 76 {
		t.Fatalf("default policy = %q, makespan %g; want aheft, 76", res.Policy, res.Makespan)
	}
}

func TestFacadeHEFTAndMinMin(t *testing.T) {
	sc := aheft.SampleScenario()
	s, err := aheft.HEFT(sc.Graph, sc.Estimator(), sc.Pool.Initial())
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 80 {
		t.Fatalf("HEFT makespan = %g", s.Makespan())
	}
	dyn, err := aheft.MinMin(context.Background(), sc.Graph, sc.Estimator(), sc.Pool)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Makespan <= 0 {
		t.Fatal("Min-Min produced no makespan")
	}
	if dyn.Policy != "minmin" {
		t.Fatalf("policy = %q, want minmin", dyn.Policy)
	}
}

// TestFacadeUnknownPolicy: a bad name fails with the registered names in
// the error.
func TestFacadeUnknownPolicy(t *testing.T) {
	sc := aheft.SampleScenario()
	_, err := aheft.Run(context.Background(), sc.Graph, sc.Estimator(), sc.Pool, aheft.WithPolicy("nope"))
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestFacadePolicies: the registry lists the built-ins.
func TestFacadePolicies(t *testing.T) {
	have := make(map[string]bool)
	for _, name := range aheft.Policies() {
		have[name] = true
	}
	for _, want := range []string{"heft", "aheft", "minmin", "maxmin", "sufferage"} {
		if !have[want] {
			t.Fatalf("registry %v missing %q", aheft.Policies(), want)
		}
	}
}

// TestFacadeContextCancellation: a cancelled context aborts Run.
func TestFacadeContextCancellation(t *testing.T) {
	sc := aheft.SampleScenario()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The event-driven path honours cancellation too.
	if _, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool, aheft.WithEventDriven()); err != context.Canceled {
		t.Fatalf("event-driven err = %v, want context.Canceled", err)
	}
}

// TestFacadeEventDrivenMatchesAnalytic: WithEventDriven switches engines
// but not results (the integration tests hold this across many scenarios;
// here the facade wiring itself is checked).
func TestFacadeEventDrivenMatchesAnalytic(t *testing.T) {
	ctx := context.Background()
	sc := aheft.SampleScenario()
	for _, pol := range []string{"heft", "aheft"} {
		analytic, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool,
			aheft.WithPolicy(pol), aheft.WithTieWindow(0.05))
		if err != nil {
			t.Fatal(err)
		}
		des, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool,
			aheft.WithPolicy(pol), aheft.WithTieWindow(0.05), aheft.WithEventDriven())
		if err != nil {
			t.Fatal(err)
		}
		if analytic.Makespan != des.Makespan {
			t.Fatalf("%s: event-driven makespan %g != analytic %g", pol, des.Makespan, analytic.Makespan)
		}
	}
}

// TestFacadeHistoryAndTrace: the event-driven extras populate their
// collectors through the options.
func TestFacadeHistoryAndTrace(t *testing.T) {
	sc := aheft.SampleScenario()
	hist := aheft.NewHistory()
	tr := aheft.NewTrace(sc.Graph)
	res, err := aheft.Run(context.Background(), sc.Graph, sc.Estimator(), sc.Pool,
		aheft.WithTieWindow(0.05), aheft.WithHistory(hist), aheft.WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 76 {
		t.Fatalf("makespan = %g, want 76", res.Makespan)
	}
	if hist.Len() == 0 {
		t.Fatal("history not recorded")
	}
	if tr.Len() == 0 {
		t.Fatal("trace not recorded")
	}
	// The Performance Monitor measures regardless of policy: a static HEFT
	// run with a history still populates it.
	staticHist := aheft.NewHistory()
	if _, err := aheft.Run(context.Background(), sc.Graph, sc.Estimator(), sc.Pool,
		aheft.WithPolicy("heft"), aheft.WithHistory(staticHist)); err != nil {
		t.Fatal(err)
	}
	if staticHist.Len() == 0 {
		t.Fatal("static run recorded no history")
	}
}

// TestFacadeRejectsUnenactableCombos: just-in-time policies and the
// restart-running ablation are analytic-only; combining them with
// event-driven options must fail loudly instead of silently changing
// semantics (the executor's ship-on-finish enactment would, e.g., turn
// the sample Min-Min makespan of 100 into 85).
func TestFacadeRejectsUnenactableCombos(t *testing.T) {
	ctx := context.Background()
	sc := aheft.SampleScenario()
	for _, pol := range []string{"minmin", "maxmin", "sufferage"} {
		if _, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool,
			aheft.WithPolicy(pol), aheft.WithEventDriven()); err == nil {
			t.Fatalf("%s + WithEventDriven accepted", pol)
		}
		if _, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool,
			aheft.WithPolicy(pol), aheft.WithTrace(aheft.NewTrace(sc.Graph))); err == nil {
			t.Fatalf("%s + WithTrace accepted", pol)
		}
		// The analytic path keeps working.
		if _, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool, aheft.WithPolicy(pol)); err != nil {
			t.Fatalf("%s analytic: %v", pol, err)
		}
	}
	if _, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool,
		aheft.WithRestartRunning(), aheft.WithEventDriven()); err == nil {
		t.Fatal("WithRestartRunning + WithEventDriven accepted")
	}
	if _, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool, aheft.WithRestartRunning()); err != nil {
		t.Fatalf("analytic restart ablation: %v", err)
	}
	// Variance triggers need a history to judge against.
	if _, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool,
		aheft.WithVarianceThreshold(0.2)); err == nil {
		t.Fatal("WithVarianceThreshold without WithHistory accepted")
	}
	if _, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool,
		aheft.WithVarianceThreshold(0.2), aheft.WithHistory(aheft.NewHistory())); err != nil {
		t.Fatalf("variance with history: %v", err)
	}
}

func TestFacadeGraphConstruction(t *testing.T) {
	g := aheft.NewGraph("mini")
	a := g.AddJob("a", "op")
	b := g.AddJob("b", "op")
	g.MustEdge(a, b, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if aheft.StaticPool(2).Size() != 2 {
		t.Fatal("StaticPool wrong")
	}
}
