// Command replay re-drives a flight recording captured with
// aheftd -record-dir (or loadgen -record) through a fresh in-process
// daemon and verifies that every decision, plan generation and terminal
// outcome reproduces bit-identically. Exit status: 0 on an identical
// replay, 1 on divergence, 2 on an unusable recording (torn tail,
// missing or unclean trailer) or an operational error.
//
//	replay -dir /tmp/rec                    verify a recording
//	replay -dir /tmp/rec -digest out.txt    also write the canonical
//	                                        output-stream digest (two
//	                                        replays of one recording must
//	                                        write identical files)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"aheft/internal/replay"
)

func main() {
	var (
		dir     = flag.String("dir", "", "recording directory (required)")
		digest  = flag.String("digest", "", "write the canonical output digest to this file")
		timeout = flag.Duration("timeout", 60*time.Second, "bound on the whole replay")
		quiet   = flag.Bool("q", false, "print nothing on success")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "replay: -dir is required")
		flag.Usage()
		os.Exit(2)
	}

	res, err := replay.Run(*dir, replay.Options{Timeout: *timeout})
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		os.Exit(2)
	}
	if *digest != "" {
		out := strings.Join(res.Digest, "\n") + "\n"
		if err := os.WriteFile(*digest, []byte(out), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "replay: write digest: %v\n", err)
			os.Exit(2)
		}
	}
	if !res.Identical() {
		fmt.Fprintf(os.Stderr, "replay: DIVERGED — %d mismatches over %d output records:\n", len(res.Divergences), res.Outputs)
		for _, d := range res.Divergences {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("replay: identical — %d shards, %d inputs re-driven, %d output records matched\n",
			res.Shards, res.Inputs, res.Outputs)
	}
}
