package main

import (
	"context"
	"errors"
	"log"
	"net"
	"net/http"
	"time"

	"aheft/internal/server"
)

// startRecorded spawns an in-process daemon with the flight recorder
// enabled (server.Config.RecordDir) listening on an ephemeral loopback
// port, so a plain `loadgen -record <dir>` run needs no external aheftd
// and leaves behind a recording cmd/replay can verify. The returned
// finish func drains the daemon — writing each stream's clean trailer —
// and prints the replay hint. finish runs only when the run succeeds
// (log.Fatal skips it); a gate-failed run leaves trailer-less streams
// that replay refuses with a diagnostic rather than replaying a lie.
func startRecorded(dir string, shards int, policy string, varThr float64) (base string, finish func()) {
	srv, err := server.Open(server.Config{
		Shards:            shards,
		QueueDepth:        4096,
		DefaultPolicy:     policy,
		VarianceThreshold: varThr,
		RecordDir:         dir,
	})
	if err != nil {
		log.Fatalf("loadgen: -record: open daemon: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("loadgen: -record: listen: %v", err)
	}
	go func() {
		if err := http.Serve(ln, srv.Handler()); err != nil && !errors.Is(err, net.ErrClosed) {
			log.Printf("loadgen: -record: serve: %v", err)
		}
	}()
	log.Printf("loadgen: -record: in-process daemon on %s recording to %s (%d shards)",
		ln.Addr(), dir, shards)
	finish = func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("loadgen: -record: drain: %v", err)
		}
		ln.Close()
		m := srv.MetricsSnapshot()
		log.Printf("loadgen: -record: recording finalized in %s (%d records, %d errors) — verify with: go run ./cmd/replay -dir %s",
			dir, m.RecorderRecords, m.RecorderErrors, dir)
	}
	return "http://" + ln.Addr().String(), finish
}
