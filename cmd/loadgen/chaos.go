// Chaos mode: loadgen owns the daemon process. It spawns a durable
// aheftd, fills it with live workflows (private tenants plus a shared
// grid), SIGKILLs it mid-flight, restarts it on the same data directory,
// and gates on the recovery invariants: nothing lost, plans and
// generations preserved, duplicate report replays acked idempotently,
// every resumed run finishing with its planned makespan, and the
// shared-grid ledger leak-free after drain.
//
//	go build -race -o aheftd ./cmd/aheftd
//	loadgen -chaos -chaos-daemon ./aheftd -chaos-workflows 120 -out chaos.json
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"time"

	"aheft/internal/buildinfo"
	"aheft/internal/server"
	"aheft/internal/wire"
	"aheft/internal/workload"
)

// chaosParams carries the -chaos flags.
type chaosParams struct {
	daemon    string // path to the aheftd binary
	addr      string // host:port the spawned daemon listens on
	dataDir   string // durability directory (empty = fresh temp dir)
	walSync   string
	workflows int
	out       string
}

// ChaosReport is the chaos-run summary written to -out.
type ChaosReport struct {
	Versions           versionStamp      `json:"versions"`
	Workflows          int               `json:"workflows"`
	SharedWorkflows    int               `json:"shared_workflows"`
	PrefixedWorkflows  int               `json:"prefixed_workflows"`
	RecoveredWorkflows uint64            `json:"recovered_workflows"`
	RecoveryMs         float64           `json:"recovery_ms"`
	DowntimeMs         float64           `json:"downtime_ms"`
	DuplicatesAcked    int               `json:"duplicates_acked"`
	Completed          int               `json:"completed"`
	ServerMetrics      server.MetricsDoc `json:"server_metrics"`
}

// chaosMain is the -chaos entry point. Any violated invariant is fatal
// (non-zero exit), so CI can run this as the crash-recovery smoke gate.
func chaosMain(p chaosParams) {
	if p.daemon == "" {
		log.Fatal("loadgen: -chaos requires -chaos-daemon (path to an aheftd binary)")
	}
	if p.workflows < 10 {
		log.Fatal("loadgen: -chaos-workflows must be >= 10")
	}
	dir := p.dataDir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "aheftd-chaos-*"); err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		defer os.RemoveAll(dir)
	}

	c := &chaosRun{
		p:      p,
		base:   "http://" + p.addr,
		client: &http.Client{Timeout: 30 * time.Second},
	}
	log.Printf("loadgen: chaos: data dir %s, daemon %s on %s", dir, p.daemon, p.addr)
	proc := c.spawn(dir)
	c.waitReady(30 * time.Second)

	// Phase 1: fill the daemon. A shared grid with two tenants, private
	// live workflows across four more, everything planned and resident,
	// and a third of the private runs with partial progress reported.
	sc := workload.SampleScenario()
	c.putGrid("chaos", sc)
	var ids, sharedIDs []string
	for i := 0; i < p.workflows; i++ {
		if i%10 == 0 {
			tenant := []string{"alice", "bob"}[(i/10)%2]
			id := c.submitShared("chaos", tenant, sc)
			sharedIDs = append(sharedIDs, id)
			ids = append(ids, id)
			continue
		}
		ids = append(ids, c.submitLive(fmt.Sprintf("t%d", i%4), sc))
	}
	plans := make(map[string]*wire.Plan, len(ids))
	for _, id := range ids {
		plans[id] = c.waitPlan(id)
	}
	// Partial prefixes go to private workflows only: reports on shared
	// runs can trigger contention reschedules on their neighbours, which
	// would make the "generation preserved" comparison racy.
	shared := make(map[string]bool, len(sharedIDs))
	for _, id := range sharedIDs {
		shared[id] = true
	}
	prefixes := make(map[string][]wire.ReportEvent)
	for i, id := range ids {
		if i%3 != 0 || shared[id] {
			continue
		}
		prefix := chaosReplay(plans[id], 20, nil)
		ack := c.report(id, prefix)
		if ack.Applied != len(prefix) || ack.Done {
			log.Fatalf("loadgen: chaos: prefix ack for %s: %+v", id, ack)
		}
		prefixes[id] = prefix
	}
	var m server.MetricsDoc
	c.getJSON("/metrics", &m)
	if m.LiveResident != int64(len(ids)) {
		log.Fatalf("loadgen: chaos: %d live resident before kill, want %d", m.LiveResident, len(ids))
	}
	gridBefore := c.gridStatus("chaos")

	// Phase 2: SIGKILL mid-flight, restart on the same directory.
	log.Printf("loadgen: chaos: SIGKILL with %d live workflows (%d shared, %d mid-report)",
		len(ids), len(sharedIDs), len(prefixes))
	killed := time.Now()
	if err := proc.Process.Kill(); err != nil {
		log.Fatalf("loadgen: chaos: kill: %v", err)
	}
	_ = proc.Wait()
	proc = c.spawn(dir)
	c.waitReady(30 * time.Second)
	downtime := time.Since(killed)

	// Phase 3: the recovery gates.
	hz := c.healthz()
	if hz.Status != "ready" || hz.RecoveredWorkflows != uint64(len(ids)) {
		log.Fatalf("loadgen: chaos: healthz after restart: %+v (want %d recovered)", hz, len(ids))
	}
	for _, id := range ids {
		plan := c.waitPlan(id)
		want := plans[id]
		if plan.Generation != want.Generation || len(plan.Assignments) != len(want.Assignments) ||
			math.Abs(plan.Makespan-want.Makespan) > 1e-9 {
			log.Fatalf("loadgen: chaos: %s: plan diverged across restart (gen %d→%d, makespan %v→%v)",
				id, want.Generation, plan.Generation, want.Makespan, plan.Makespan)
		}
	}
	if ga := c.gridStatus("chaos"); ga.Reservations != gridBefore.Reservations || ga.Attached != gridBefore.Attached {
		log.Fatalf("loadgen: chaos: grid ledger not reconstructed: before %+v after %+v", gridBefore, ga)
	}
	for id, prefix := range prefixes {
		if ack := c.report(id, prefix); ack.Applied != len(prefix) || ack.Done {
			log.Fatalf("loadgen: chaos: duplicate replay for %s not acked idempotently: %+v", id, ack)
		}
	}

	// Phase 4: drive everything to completion and drain. The plan is
	// re-fetched per workflow: as shared-grid neighbours finish and free
	// capacity, survivors adopt contention reschedules, so the enacted
	// plan can be newer (and better) than the recovered one. The makespan
	// gate compares against the plan actually replayed.
	enacted := make(map[string]*wire.Plan, len(ids))
	for _, id := range ids {
		plan := c.waitPlan(id)
		enacted[id] = plan
		ack := c.report(id, chaosReplay(plan, math.Inf(1), prefixes[id]))
		if !ack.Done {
			log.Fatalf("loadgen: chaos: %s not done after full replay: %+v", id, ack)
		}
	}
	completed := 0
	for _, id := range ids {
		st := c.status(id)
		if st.State != "done" {
			log.Fatalf("loadgen: chaos: workflow %s ended %s: %s", id, st.State, st.Error)
		}
		if math.Abs(st.Makespan-enacted[id].Makespan) > 1e-9 {
			log.Fatalf("loadgen: chaos: %s: makespan %v, enacted plan promised %v", id, st.Makespan, enacted[id].Makespan)
		}
		completed++
	}
	if g := c.gridStatus("chaos"); g.Reservations != 0 || g.Attached != 0 {
		log.Fatalf("loadgen: chaos: leaked shared-grid state after drain: %+v", g)
	}
	c.getJSON("/metrics", &m)
	if m.Failed != 0 {
		log.Fatalf("loadgen: chaos: daemon reports %d failed workflows", m.Failed)
	}
	if m.ReportsDuplicate < uint64(len(prefixes)) {
		log.Fatalf("loadgen: chaos: reports_duplicate=%d, want >= %d", m.ReportsDuplicate, len(prefixes))
	}

	rep := ChaosReport{
		Versions:           versionStamp{Loadgen: buildinfo.String(), Daemon: hz.Version},
		Workflows:          len(ids),
		SharedWorkflows:    len(sharedIDs),
		PrefixedWorkflows:  len(prefixes),
		RecoveredWorkflows: hz.RecoveredWorkflows,
		RecoveryMs:         hz.RecoveryMs,
		DowntimeMs:         downtime.Seconds() * 1e3,
		DuplicatesAcked:    len(prefixes),
		Completed:          completed,
		ServerMetrics:      m,
	}
	log.Printf("loadgen: chaos: PASS: %d workflows recovered in %.1fms (downtime %.0fms), %d duplicate replays acked, ledger drained",
		rep.RecoveredWorkflows, rep.RecoveryMs, rep.DowntimeMs, rep.DuplicatesAcked)
	printAdmission("chaos: server", m)
	if p.out != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(p.out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("loadgen: chaos: write report: %v", err)
		}
		log.Printf("loadgen: wrote %s", p.out)
	}

	// Graceful exit: the recovered daemon must still drain cleanly.
	if err := proc.Process.Signal(os.Interrupt); err != nil {
		log.Fatalf("loadgen: chaos: signal daemon: %v", err)
	}
	if err := proc.Wait(); err != nil {
		log.Fatalf("loadgen: chaos: daemon drain after recovery: %v", err)
	}
}

// chaosRun carries the harness's HTTP plumbing and daemon handle.
type chaosRun struct {
	p      chaosParams
	base   string
	client *http.Client
}

func (c *chaosRun) spawn(dataDir string) *exec.Cmd {
	cmd := exec.Command(c.p.daemon,
		"-addr", c.p.addr, "-shards", "4",
		"-data-dir", dataDir, "-wal-sync", c.p.walSync)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		log.Fatalf("loadgen: chaos: start daemon: %v", err)
	}
	return cmd
}

type chaosHealthz struct {
	Status             string  `json:"status"`
	Version            string  `json:"version"`
	RecoveredWorkflows uint64  `json:"recovered_workflows"`
	RecoveryMs         float64 `json:"recovery_ms"`
}

func (c *chaosRun) healthz() chaosHealthz {
	var hz chaosHealthz
	if err := c.getJSON("/v1/healthz", &hz); err != nil {
		log.Fatalf("loadgen: chaos: healthz: %v", err)
	}
	return hz
}

// waitReady polls /v1/healthz until the daemon answers "ready" — through
// both the pre-listen connection-refused window and the 503 gate while
// recovery replays the WAL.
func (c *chaosRun) waitReady(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		var hz chaosHealthz
		if err := c.getJSON("/v1/healthz", &hz); err == nil && hz.Status == "ready" {
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("loadgen: chaos: daemon not ready after %s", timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (c *chaosRun) getJSON(path string, v any) error {
	resp, err := c.client.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (c *chaosRun) postJSON(path string, body []byte, v any) (int, error) {
	resp, err := c.client.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, fmt.Errorf("%s", e.Error)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

func (c *chaosRun) putGrid(name string, sc *workload.Scenario) {
	body, err := wire.EncodeGridSpec(&wire.GridSpec{Pool: sc.Pool})
	if err != nil {
		log.Fatalf("loadgen: chaos: encode grid: %v", err)
	}
	req, err := http.NewRequest(http.MethodPut, c.base+"/v1/grids/"+name, bytes.NewReader(body))
	if err != nil {
		log.Fatalf("loadgen: chaos: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		log.Fatalf("loadgen: chaos: register grid: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		log.Fatalf("loadgen: chaos: register grid: HTTP %d", resp.StatusCode)
	}
}

func (c *chaosRun) gridStatus(name string) wire.GridStatus {
	var st wire.GridStatus
	if err := c.getJSON("/v1/grids/"+name, &st); err != nil {
		log.Fatalf("loadgen: chaos: grid status: %v", err)
	}
	return st
}

func (c *chaosRun) submitLive(tenant string, sc *workload.Scenario) string {
	return c.submitBody(&wire.Submission{
		Name: tenant, Mode: wire.ModeLive, Tenant: tenant, Policy: "aheft",
		Graph: sc.Graph, Comp: sc.Table, Pool: sc.Pool,
	})
}

func (c *chaosRun) submitShared(gridName, tenant string, sc *workload.Scenario) string {
	return c.submitBody(&wire.Submission{
		Name: tenant, Mode: wire.ModeLive, Tenant: tenant, Policy: "aheft",
		SharedGrid: gridName, Graph: sc.Graph, Comp: sc.Table,
	})
}

func (c *chaosRun) submitBody(sub *wire.Submission) string {
	body, err := wire.EncodeSubmission(sub)
	if err != nil {
		log.Fatalf("loadgen: chaos: encode submission: %v", err)
	}
	var acc wire.Submitted
	code, err := c.postJSON("/v1/workflows", body, &acc)
	if err != nil || code != http.StatusAccepted {
		log.Fatalf("loadgen: chaos: submit: HTTP %d, %v", code, err)
	}
	return acc.ID
}

func (c *chaosRun) waitPlan(id string) *wire.Plan {
	deadline := time.Now().Add(10 * time.Second)
	for {
		var plan wire.Plan
		if err := c.getJSON("/v1/workflows/"+id+"/plan", &plan); err == nil {
			return &plan
		}
		if time.Now().After(deadline) {
			log.Fatalf("loadgen: chaos: no plan for %s after 10s", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (c *chaosRun) report(id string, events []wire.ReportEvent) *wire.ReportAck {
	body, err := wire.EncodeReport(&wire.Report{Events: events})
	if err != nil {
		log.Fatalf("loadgen: chaos: encode report: %v", err)
	}
	var ack wire.ReportAck
	if code, err := c.postJSON("/v1/workflows/"+id+"/report", body, &ack); code != http.StatusOK {
		log.Fatalf("loadgen: chaos: report %s: HTTP %d, %v", id, code, err)
	}
	return &ack
}

func (c *chaosRun) status(id string) wire.Status {
	var st wire.Status
	if err := c.getJSON("/v1/workflows/"+id, &st); err != nil {
		log.Fatalf("loadgen: chaos: status %s: %v", id, err)
	}
	return st
}

// chaosReplay builds the faithful execution report of plan up to clock
// (starts strictly before, finishes at or before), skipping events the
// applied prefix already covered. A +Inf clock with the pre-kill prefix
// yields exactly the remaining events of the run.
func chaosReplay(plan *wire.Plan, clock float64, applied []wire.ReportEvent) []wire.ReportEvent {
	type key struct {
		kind string
		job  int
	}
	done := make(map[key]bool, len(applied))
	for _, ev := range applied {
		done[key{ev.Kind, ev.Job}] = true
	}
	var evs []wire.ReportEvent
	for _, a := range plan.Assignments {
		if a.Start < clock && !done[key{wire.ReportJobStarted, a.Job}] {
			evs = append(evs, wire.ReportEvent{
				Kind: wire.ReportJobStarted, Time: a.Start, Job: a.Job, Resource: a.Resource,
			})
		}
		if a.Finish <= clock && !done[key{wire.ReportJobFinished, a.Job}] {
			evs = append(evs, wire.ReportEvent{
				Kind: wire.ReportJobFinished, Time: a.Finish, Job: a.Job, Resource: a.Resource, Duration: a.Finish - a.Start,
			})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Time != evs[j].Time {
			return evs[i].Time < evs[j].Time
		}
		return evs[i].Kind == wire.ReportJobStarted && evs[j].Kind != wire.ReportJobStarted
	})
	return evs
}
