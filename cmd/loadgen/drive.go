package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"aheft/internal/drive"
	"aheft/internal/rng"
	"aheft/internal/server"
	"aheft/internal/wire"
	"aheft/internal/workload"
)

// driveParams carries the -drive flags.
type driveParams struct {
	duration         time.Duration
	rate             float64
	inflight         int
	policy           string
	noise            float64
	churn            float64
	varThr           float64
	seed             uint64
	out              string
	requireZeroDrops bool
	requireInflight  int
	requireVariance  int
	requireBeat      bool
}

// DriveClassReport aggregates one mix class's enactment outcomes.
type DriveClassReport struct {
	Name                 string  `json:"name"`
	Completed            int     `json:"completed"`
	Failed               int     `json:"failed"`
	Reports              int     `json:"reports"`
	Events               int     `json:"events"`
	Reschedules          int     `json:"reschedules"`
	VarianceReschedules  int     `json:"variance_reschedules"`
	ArrivalReschedules   int     `json:"arrival_reschedules"`
	DepartureReschedules int     `json:"departure_reschedules"`
	AdaptiveMeanMakespan float64 `json:"adaptive_mean_makespan"`
	StaticMeanMakespan   float64 `json:"static_mean_makespan"`
	// MeanDeltaPct is 100·(static−adaptive)/static over the class means:
	// what closing the feedback loop bought, in makespan percent.
	MeanDeltaPct float64 `json:"mean_delta_pct"`
}

// DriveReport is the -drive run summary written to -out.
type DriveReport struct {
	Versions      versionStamp       `json:"versions"`
	DurationS     float64            `json:"duration_s"`
	TotalS        float64            `json:"total_s"`
	Noise         float64            `json:"noise"`
	Churn         float64            `json:"churn"`
	Submitted     int                `json:"submitted"`
	Completed     int                `json:"completed"`
	Failed        int                `json:"failed"`
	Stalls        int                `json:"inflight_stalls"`
	Classes       []DriveClassReport `json:"classes"`
	ServerMetrics server.MetricsDoc  `json:"server_metrics"`
}

// driveAgg accumulates outcomes across the driver goroutines.
type driveAgg struct {
	mu        sync.Mutex
	submitted int
	completed int
	failed    int
	adaptive  map[string]float64 // per class, sum of makespans
	static    map[string]float64
	class     map[string]*DriveClassReport
}

func (a *driveAgg) record(class string, out *drive.Outcome, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.class[class]
	if err != nil {
		a.failed++
		c.Failed++
		if a.failed <= 10 {
			log.Printf("loadgen: drive %s: %v", class, err)
		}
		return
	}
	a.completed++
	c.Completed++
	c.Reports += out.Reports
	c.Events += out.Events
	c.Reschedules += out.Reschedules
	c.VarianceReschedules += out.VarianceReschedules
	c.ArrivalReschedules += out.ArrivalReschedules
	c.DepartureReschedules += out.DepartureReschedules
	a.adaptive[class] += out.AdaptiveMakespan
	a.static[class] += out.StaticMakespan
}

// driveMain is the -drive entry point: a closed-loop enactment run over
// the mix, each workflow driven through the daemon's feedback loop by
// internal/drive, with per-class adaptive-vs-static accounting.
func driveMain(g *generator, classes []class, total int, p driveParams) {
	agg := &driveAgg{
		adaptive: map[string]float64{},
		static:   map[string]float64{},
		class:    map[string]*DriveClassReport{},
	}
	for _, c := range classes {
		agg.class[c.name] = &DriveClassReport{Name: c.name}
	}
	picker := rng.New(p.seed ^ 0xd21fe10ad)
	sem := make(chan struct{}, p.inflight)
	var wg sync.WaitGroup
	start := time.Now()
	var interval time.Duration
	if p.rate > 0 {
		interval = time.Duration(float64(time.Second) / p.rate)
	}
	next := start
	seq := uint64(0)
	for time.Since(start) < p.duration {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		select {
		case sem <- struct{}{}:
		default:
			g.addStall()
			sem <- struct{}{} // closed loop: wait for a slot
		}
		c := pickClass(classes, total, picker)
		sc := c.scenarios[picker.IntN(len(c.scenarios))]
		seq++
		seed := p.seed*1_000_003 + seq
		agg.mu.Lock()
		agg.submitted++
		agg.mu.Unlock()
		wg.Add(1)
		go func(name string, sc *workload.Scenario, seed uint64) {
			defer wg.Done()
			defer func() { <-sem }()
			out, err := drive.Run(context.Background(), drive.Config{
				BaseURL: g.base,
				Client:  g.client,
				Policy:  p.policy,
				Tenant:  name, // class-scoped history: workflows teach each other
				Options: wire.Options{VarianceThreshold: p.varThr},
				Noise:   p.noise,
				Churn:   p.churn,
				Seed:    seed,
				Name:    fmt.Sprintf("%s-drive-%d", name, seed),
			}, sc)
			agg.record(name, out, err)
		}(c.name, sc, seed)
	}
	window := time.Since(start)
	wg.Wait()
	elapsed := time.Since(start)

	var metrics server.MetricsDoc
	if err := g.getJSON("/metrics", &metrics); err != nil {
		log.Fatalf("loadgen: fetch metrics: %v", err)
	}
	rep := DriveReport{
		Versions:  g.versions(),
		DurationS: window.Seconds(),
		TotalS:    elapsed.Seconds(),
		Noise:     p.noise,
		Churn:     p.churn,
		Submitted: agg.submitted,
		Completed: agg.completed,
		Failed:    agg.failed,
		Stalls:    g.stallCount(),
	}
	for _, c := range classes {
		cr := agg.class[c.name]
		if cr.Completed > 0 {
			cr.AdaptiveMeanMakespan = agg.adaptive[c.name] / float64(cr.Completed)
			cr.StaticMeanMakespan = agg.static[c.name] / float64(cr.Completed)
			if cr.StaticMeanMakespan > 0 {
				cr.MeanDeltaPct = 100 * (cr.StaticMeanMakespan - cr.AdaptiveMeanMakespan) / cr.StaticMeanMakespan
			}
		}
		rep.Classes = append(rep.Classes, *cr)
	}
	rep.ServerMetrics = metrics

	fmt.Printf("loadgen: drive: %d submitted, %d completed, %d failed in %.1fs (noise %.0f%%, churn %.0f%%)\n",
		rep.Submitted, rep.Completed, rep.Failed, rep.TotalS, 100*p.noise, 100*p.churn)
	for _, cr := range rep.Classes {
		fmt.Printf("loadgen: drive: %-8s completed=%d adaptive=%.1f static=%.1f delta=%+.1f%% reschedules=%d (variance=%d arrival=%d departure=%d)\n",
			cr.Name, cr.Completed, cr.AdaptiveMeanMakespan, cr.StaticMeanMakespan, cr.MeanDeltaPct,
			cr.Reschedules, cr.VarianceReschedules, cr.ArrivalReschedules, cr.DepartureReschedules)
	}
	fmt.Printf("loadgen: drive: server: reports=%d events=%d rejected=%d reschedules(variance=%d arrival=%d departure=%d) dropped=%d\n",
		metrics.Reports, metrics.ReportEvents, metrics.ReportsRejected,
		metrics.ReschedulesVariance, metrics.ReschedulesArrival, metrics.ReschedulesDeparture,
		metrics.EventsDropped)
	printReschedPath("drive: server", metrics)
	printAdmission("drive: server", metrics)

	if p.out != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(p.out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("loadgen: write report: %v", err)
		}
		log.Printf("loadgen: wrote %s", p.out)
	}

	switch {
	case rep.Completed == 0:
		log.Fatal("loadgen: drive: nothing completed")
	case rep.Failed > 0:
		log.Fatalf("loadgen: drive: %d workflows failed", rep.Failed)
	case p.requireZeroDrops && metrics.EventsDropped > 0:
		log.Fatalf("loadgen: daemon dropped %d events", metrics.EventsDropped)
	case p.requireInflight > 0 && metrics.InflightPeak < int64(p.requireInflight):
		log.Fatalf("loadgen: inflight peak %d below required %d", metrics.InflightPeak, p.requireInflight)
	}
	// Per-class gates apply only to classes the mix actually exercised —
	// a class the picker never drew has nothing to prove.
	for _, cr := range rep.Classes {
		if cr.Completed == 0 {
			continue
		}
		if p.requireVariance > 0 && cr.VarianceReschedules < p.requireVariance {
			log.Fatalf("loadgen: class %s saw %d variance-triggered reschedules, require %d",
				cr.Name, cr.VarianceReschedules, p.requireVariance)
		}
		if p.requireBeat && cr.AdaptiveMeanMakespan > cr.StaticMeanMakespan {
			log.Fatalf("loadgen: class %s adaptive mean %.1f worse than static %.1f",
				cr.Name, cr.AdaptiveMeanMakespan, cr.StaticMeanMakespan)
		}
	}
}

// pickClass draws a mix class by weight.
func pickClass(classes []class, total int, r *rng.Source) *class {
	n := r.IntN(total)
	for i := range classes {
		if n < classes[i].weight {
			return &classes[i]
		}
		n -= classes[i].weight
	}
	return &classes[len(classes)-1]
}
