// Command loadgen is a closed-loop traffic generator for the aheftd
// daemon: it pre-generates a mix of wire-encoded workflows — parametric
// random DAGs, large layered stress DAGs, and the BLAST/WIEN2K
// application shapes — submits them at a target arrival rate under an
// in-flight cap, follows every workflow to completion, and reports
// achieved throughput and latency percentiles plus the daemon's own
// /metrics document.
//
//	loadgen -addr http://127.0.0.1:7070 -duration 30s -rate 200 \
//	    -mix random=60,blast=15,wien2k=15,layered=10 -out report.json
//
// With -drive the generator becomes the enactment side of the paper's
// Fig. 1 loop: each workflow is submitted in live mode, its schedule is
// executed on the simulated grid with -noise runtime perturbation and
// -churn arrival jitter, every run-time event is reported back to the
// daemon, and adopted reschedules are enacted mid-flight
// (internal/drive). The report then carries per-class reschedule counts
// and adaptive-vs-static makespan deltas.
//
//	loadgen -addr http://127.0.0.1:7070 -drive -duration 20s \
//	    -mix blast=50,wien2k=50 -noise 0.2 -churn 0.3 \
//	    -require-variance-reschedules 1 -require-beat-static
//
// Exit status is non-zero when any workflow fails, when nothing
// completes, or when -require-zero-drops / -require-inflight /
// -require-variance-reschedules / -require-beat-static are set and the
// run violates them — so CI can use a loadgen run as a smoke gate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"aheft/internal/buildinfo"
	"aheft/internal/rng"
	"aheft/internal/server"
	"aheft/internal/stats"
	"aheft/internal/wire"
	"aheft/internal/workload"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:7070", "daemon base URL")
	duration := flag.Duration("duration", 30*time.Second, "how long to keep submitting")
	rate := flag.Float64("rate", 100, "target arrival rate (workflows/sec); 0 = as fast as the in-flight cap allows")
	inflight := flag.Int("inflight", 600, "max concurrently in-flight workflows (closed-loop cap)")
	mix := flag.String("mix", "random=60,blast=15,wien2k=15,layered=10", "workload mix weights")
	jobs := flag.Int("jobs", 60, "random-DAG job count")
	layeredJobs := flag.Int("layered-jobs", 5000, "layered stress-DAG job count")
	parallelism := flag.Int("parallelism", 24, "BLAST/WIEN2K fan-out")
	variants := flag.Int("variants", 8, "distinct pre-generated workflows per mix class")
	seed := flag.Uint64("seed", 1, "workload-generation seed")
	policy := flag.String("policy", "aheft", "scheduling policy for every submission")
	poll := flag.Duration("poll", 5*time.Millisecond, "initial status-poll interval (backs off to 500ms)")
	follow := flag.Int("follow", 64, "max workflows followed live over SSE instead of polled (exercises the event fan-out the drop counter guards)")
	out := flag.String("out", "", "write the JSON report here")
	requireZeroDrops := flag.Bool("require-zero-drops", false, "fail if the daemon reports events_dropped > 0")
	requireInflight := flag.Int("require-inflight", 0, "fail if the daemon's inflight_peak stays below this")
	driveMode := flag.Bool("drive", false, "closed-loop enactment mode: live submissions, simulated execution with noise/churn, run-time reports")
	noise := flag.Float64("noise", 0.2, "-drive: actual-runtime perturbation (fraction)")
	churn := flag.Float64("churn", 0.3, "-drive: resource-arrival time jitter (fraction)")
	varThr := flag.Float64("variance-threshold", 0.2, "-drive: daemon-side significant-variance gate")
	requireVarResched := flag.Int("require-variance-reschedules", 0, "-drive: fail unless every mix class saw at least this many variance-triggered reschedules")
	requireBeatStatic := flag.Bool("require-beat-static", false, "-drive: fail unless every class's mean adaptive makespan beats the never-reschedule baseline")
	sharedGrid := flag.Bool("shared-grid", false, "shared-grid closed-loop mode: rounds of a two-tenant BLAST/WIEN2K mix co-scheduled on one named grid, measured against the isolated-planning baseline")
	requireContention := flag.Int("require-contention-reschedules", 0, "-shared-grid: fail unless every tenant class saw at least this many cross-workflow (contention) reschedules")
	requireBeatOblivious := flag.Bool("require-beat-oblivious", false, "-shared-grid/-data: fail unless the mean aware makespan beats the oblivious baseline (per class for -shared-grid, overall for -data)")
	dataMode := flag.Bool("data", false, "data-aware smoke mode: rounds of the data-heavy two-site scenario submitted with file catalogs against a link-constrained shared grid, measured against the data-oblivious plan retimed under the true data semantics, gating on leaked transfer reservations")
	chaos := flag.Bool("chaos", false, "crash-recovery mode: spawn a durable daemon, SIGKILL it mid-load, restart it, and gate on the recovery invariants")
	chaosDaemon := flag.String("chaos-daemon", "", "-chaos: path to the aheftd binary to spawn")
	chaosAddr := flag.String("chaos-addr", "127.0.0.1:7177", "-chaos: listen address for the spawned daemon")
	chaosDataDir := flag.String("chaos-data-dir", "", "-chaos: durability directory (empty = fresh temp dir, removed afterwards)")
	chaosWALSync := flag.String("chaos-wal-sync", "interval", "-chaos: daemon WAL fsync policy")
	chaosWorkflows := flag.Int("chaos-workflows", 120, "-chaos: live workflows resident at the kill")
	overload := flag.Bool("overload", false, "overload-fairness mode: calibrate a high-class victim stream, then flood a greedy low-class tenant beside it and gate the victims' p99 degradation, the two-speed upgrade debt, and reservation leaks")
	overloadBound := flag.Float64("overload-bound", 3.0, "-overload: max allowed victim p99 makespan degradation factor under the flood")
	overloadFloods := flag.Int("overload-floods", 8, "-overload: concurrent greedy flooder goroutines")
	overloadJobs := flag.Int("overload-jobs", 30, "-overload: victim random-DAG job count (grid-hog DAGs are double)")
	record := flag.String("record", "", "spawn an in-process recording daemon and drive the run against it, leaving a cmd/replay-verifiable flight recording in this directory (overrides -addr)")
	recordShards := flag.Int("record-shards", 4, "-record: daemon shard count")
	flag.Parse()

	if *record != "" {
		if *chaos {
			log.Fatal("loadgen: -record is incompatible with -chaos (record the chaos daemon with aheftd -record-dir instead)")
		}
		base, finish := startRecorded(*record, *recordShards, *policy, *varThr)
		*addr = base
		// A clean drain writes each stream's trailer; log.Fatal on a
		// failed gate skips this, leaving a recording replay refuses.
		defer finish()
	}

	if *chaos {
		chaosMain(chaosParams{
			daemon: *chaosDaemon, addr: *chaosAddr, dataDir: *chaosDataDir,
			walSync: *chaosWALSync, workflows: *chaosWorkflows, out: *out,
		})
		return
	}

	if *overload {
		// Victims and flooders share this client; the default transport's
		// two idle conns per host would melt under the flood and charge
		// the resulting handshake churn to the victims' latency.
		g := &generator{
			client: &http.Client{
				Timeout: 2 * time.Minute,
				Transport: &http.Transport{
					MaxIdleConns:        *overloadFloods + 64,
					MaxIdleConnsPerHost: *overloadFloods + 64,
				},
			},
			base: strings.TrimRight(*addr, "/"),
		}
		if err := g.waitHealthy(10 * time.Second); err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		overloadMain(g, overloadParams{
			duration: *duration, jobs: *overloadJobs,
			seed: *seed, policy: *policy, varThr: *varThr,
			bound: *overloadBound, floods: *overloadFloods,
			out: *out,
		})
		return
	}

	if *dataMode {
		g := &generator{
			client: &http.Client{Timeout: 2 * time.Minute},
			base:   strings.TrimRight(*addr, "/"),
		}
		if err := g.waitHealthy(10 * time.Second); err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		dataMain(g, dataParams{
			duration: *duration, seed: *seed, policy: *policy, out: *out,
			requireBeat: *requireBeatOblivious,
		})
		return
	}

	if *sharedGrid {
		g := &generator{
			client: &http.Client{Timeout: 2 * time.Minute},
			base:   strings.TrimRight(*addr, "/"),
		}
		if err := g.waitHealthy(10 * time.Second); err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		sharedMain(g, sharedParams{
			duration: *duration, parallelism: *parallelism,
			noise: *noise, churn: *churn, varThr: *varThr,
			seed: *seed, policy: *policy, out: *out,
			requireBeat:       *requireBeatOblivious,
			requireContention: *requireContention,
		})
		return
	}

	classes, err := buildClasses(*mix, *jobs, *layeredJobs, *parallelism, *variants, *seed, *policy, *driveMode)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	total := 0
	for _, c := range classes {
		total += c.weight
		log.Printf("loadgen: class %-8s weight %3d, %d variants, ~%d KiB each",
			c.name, c.weight, len(c.bodies), len(c.bodies[0])>>10)
	}

	client := &http.Client{
		Timeout: 2 * time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        *inflight + 64,
			MaxIdleConnsPerHost: *inflight + 64,
		},
	}
	g := &generator{
		client: client,
		base:   strings.TrimRight(*addr, "/"),
		poll:   *poll,
	}
	if *follow > 0 {
		g.followSem = make(chan struct{}, *follow)
	}
	if err := g.waitHealthy(10 * time.Second); err != nil {
		log.Fatalf("loadgen: %v", err)
	}

	if *driveMode {
		driveMain(g, classes, total, driveParams{
			duration: *duration, rate: *rate, inflight: *inflight,
			policy: *policy, noise: *noise, churn: *churn, varThr: *varThr,
			seed: *seed, out: *out,
			requireZeroDrops: *requireZeroDrops,
			requireInflight:  *requireInflight,
			requireVariance:  *requireVarResched,
			requireBeat:      *requireBeatStatic,
		})
		return
	}

	// Submission loop: arrivals paced at -rate, capacity bounded by the
	// in-flight semaphore (closed loop: when the cap is hit, arrivals
	// wait and the stall is counted instead of piling up locally).
	picker := rng.New(*seed ^ 0x10adcafe)
	sem := make(chan struct{}, *inflight)
	var wg sync.WaitGroup
	start := time.Now()
	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(time.Second) / *rate)
	}
	next := start
	for time.Since(start) < *duration {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		select {
		case sem <- struct{}{}:
		default:
			g.addStall()
			sem <- struct{}{} // closed loop: wait for a slot
		}
		body := pick(classes, total, picker)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			g.run(body)
		}()
	}
	submitWindow := time.Since(start)
	wg.Wait()
	elapsed := time.Since(start)

	var metrics server.MetricsDoc
	if err := g.getJSON("/metrics", &metrics); err != nil {
		log.Fatalf("loadgen: fetch metrics: %v", err)
	}
	rep := g.report(submitWindow, elapsed, *rate, metrics)
	printReport(rep)
	if *out != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("loadgen: write report: %v", err)
		}
		log.Printf("loadgen: wrote %s", *out)
	}

	switch {
	case rep.Completed == 0:
		log.Fatal("loadgen: nothing completed")
	case rep.Failed > 0:
		log.Fatalf("loadgen: %d workflows failed", rep.Failed)
	case *requireZeroDrops && metrics.EventsDropped > 0:
		log.Fatalf("loadgen: daemon dropped %d events", metrics.EventsDropped)
	case *requireInflight > 0 && metrics.InflightPeak < int64(*requireInflight):
		log.Fatalf("loadgen: inflight peak %d below required %d", metrics.InflightPeak, *requireInflight)
	}
}

// class is one workload family of the mix with its pre-encoded bodies
// (and, for -drive, the decoded scenarios the enactment loop replays).
type class struct {
	name      string
	weight    int
	bodies    [][]byte
	scenarios []*workload.Scenario
}

func buildClasses(mix string, jobs, layeredJobs, parallelism, variants int, seed uint64, policy string, keepScenarios bool) ([]class, error) {
	if variants < 1 {
		return nil, fmt.Errorf("-variants must be >= 1, got %d", variants)
	}
	weights := map[string]int{}
	for _, part := range strings.Split(mix, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad mix entry %q", part)
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		weights[kv[0]] = w
	}
	r := rng.New(seed)
	gen := func(name string, make func() (*workload.Scenario, error)) (class, error) {
		c := class{name: name, weight: weights[name]}
		delete(weights, name)
		if c.weight == 0 {
			return c, nil
		}
		for i := 0; i < variants; i++ {
			sc, err := make()
			if err != nil {
				return c, fmt.Errorf("generate %s: %w", name, err)
			}
			body, err := wire.EncodeSubmission(&wire.Submission{
				Name:   fmt.Sprintf("%s-%d", name, i),
				Policy: policy,
				Graph:  sc.Graph, Comp: sc.Table, Pool: sc.Pool,
			})
			if err != nil {
				return c, fmt.Errorf("encode %s: %w", name, err)
			}
			c.bodies = append(c.bodies, body)
			// Only -drive replays the decoded scenarios; a plain load run
			// uses the encoded bodies alone, and keeping 20k-job graphs
			// and tables alive for the whole run would waste memory.
			if keepScenarios {
				c.scenarios = append(c.scenarios, sc)
			}
		}
		return c, nil
	}

	grid := workload.GridParams{InitialResources: 8, ChangeInterval: 300, ChangePct: 0.25, MaxEvents: 4}
	stress := workload.GridParams{InitialResources: 16, ChangeInterval: 500, ChangePct: 0.25, MaxEvents: 4}
	var classes []class
	for _, spec := range []struct {
		name string
		make func() (*workload.Scenario, error)
	}{
		{"random", func() (*workload.Scenario, error) {
			return workload.RandomScenario(workload.RandomParams{Jobs: jobs, CCR: 2, OutDegree: 0.3, Beta: 0.5}, grid, r)
		}},
		{"blast", func() (*workload.Scenario, error) {
			return workload.BlastScenario(workload.AppParams{Parallelism: parallelism, CCR: 1, Beta: 0.5}, grid, r)
		}},
		{"wien2k", func() (*workload.Scenario, error) {
			return workload.Wien2kScenario(workload.AppParams{Parallelism: parallelism, CCR: 1, Beta: 0.5}, grid, r)
		}},
		{"layered", func() (*workload.Scenario, error) {
			return workload.LayeredScenario(workload.LayeredParams{
				Jobs: layeredJobs, Width: layeredJobs / 50, FanIn: 3, CCR: 1, Beta: 0.5}, stress, r)
		}},
	} {
		c, err := gen(spec.name, spec.make)
		if err != nil {
			return nil, err
		}
		if c.weight > 0 {
			classes = append(classes, c)
		}
	}
	for name := range weights {
		return nil, fmt.Errorf("unknown mix class %q", name)
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("empty mix %q", mix)
	}
	return classes, nil
}

func pick(classes []class, total int, r *rng.Source) []byte {
	n := r.IntN(total)
	for _, c := range classes {
		if n < c.weight {
			return c.bodies[r.IntN(len(c.bodies))]
		}
		n -= c.weight
	}
	return classes[len(classes)-1].bodies[0]
}

// generator tracks client-side outcome counts and latencies.
type generator struct {
	client *http.Client
	base   string
	poll   time.Duration

	// followSem, when non-nil, bounds how many workflows are followed
	// live over SSE (the rest are polled). Following real subscribers is
	// what makes the daemon's events_dropped counter — and the
	// -require-zero-drops gate — meaningful: only a live SSE consumer
	// can drop events.
	followSem chan struct{}

	mu               sync.Mutex
	submitted        int
	completed        int
	failed           int
	retries429       int
	transportRetries int
	stalls           int
	followed         int
	seqGaps          int
	wallMs           []float64 // submit → observed terminal state
	computeMs        []float64 // server-reported engine latency
}

func (g *generator) addStall() {
	g.mu.Lock()
	g.stalls++
	g.mu.Unlock()
}

func (g *generator) stallCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stalls
}

func (g *generator) addTransportRetry() {
	g.mu.Lock()
	g.transportRetries++
	g.mu.Unlock()
}

// versionStamp identifies both ends of a run so committed reports stay
// comparable across builds.
type versionStamp struct {
	Loadgen string `json:"loadgen"`
	// Daemon is the server's self-reported build (GET /v1/healthz);
	// empty when the daemon predates the endpoint.
	Daemon string `json:"daemon,omitempty"`
}

// versions stamps the report with the client and daemon builds.
func (g *generator) versions() versionStamp {
	v := versionStamp{Loadgen: buildinfo.String()}
	var hz struct {
		Version string `json:"version"`
	}
	if err := g.getJSON("/v1/healthz", &hz); err == nil {
		v.Daemon = hz.Version
	}
	return v
}

func (g *generator) waitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var doc map[string]any
		if err := g.getJSON("/healthz", &doc); err == nil {
			return nil
		} else if time.Now().After(deadline) {
			return fmt.Errorf("daemon not healthy after %s: %w", timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func (g *generator) getJSON(path string, v any) error {
	resp, err := g.client.Get(g.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// run drives one workflow: submit (retrying 429 backpressure), then poll
// its status to a terminal state.
func (g *generator) run(body []byte) {
	g.mu.Lock()
	g.submitted++
	g.mu.Unlock()
	start := time.Now()

	var sub wire.Submitted
	netErrs := 0
	for attempt := 0; ; attempt++ {
		resp, err := g.client.Post(g.base+"/v1/workflows", "application/json", bytes.NewReader(body))
		if err != nil {
			// Transient transport faults (connection resets under
			// thousands of concurrent loopback conns) are part of load
			// generation, not workflow failures: retry a few times
			// before giving up.
			if netErrs++; netErrs > 3 {
				g.fail("submit: %v", err)
				return
			}
			g.addTransportRetry()
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			resp.Body.Close()
			g.mu.Lock()
			g.retries429++
			g.mu.Unlock()
			// Honour Retry-After, capped: the daemon names 1s, but under
			// heavy backpressure a tighter retry keeps the closed loop
			// saturated without hammering.
			delay := 100 * time.Millisecond
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				delay = time.Duration(ra) * time.Second / 4
			}
			if delay > time.Second {
				delay = time.Second // keep the closed loop live whatever the header says
			}
			time.Sleep(delay)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			resp.Body.Close()
			g.fail("submit: HTTP %d", resp.StatusCode)
			return
		}
		err = json.NewDecoder(resp.Body).Decode(&sub)
		resp.Body.Close()
		if err != nil {
			g.fail("submit decode: %v", err)
			return
		}
		break
	}

	// Follow a bounded sample of workflows over SSE — real subscribers
	// on the event fan-out, so the daemon's events_dropped counter (and
	// -require-zero-drops) guards a path that is actually exercised —
	// and poll the rest.
	if g.followSem != nil {
		select {
		case g.followSem <- struct{}{}:
			defer func() { <-g.followSem }()
			g.followSSE(sub.ID, start)
			return
		default:
		}
	}
	g.pollDone(sub.ID, start)
}

// pollDone polls the workflow's status to a terminal state.
func (g *generator) pollDone(id string, start time.Time) {
	interval := g.poll
	netErrs := 0
	for {
		time.Sleep(interval)
		if interval < 500*time.Millisecond {
			interval = interval * 3 / 2
		}
		var st wire.Status
		if err := g.getJSON("/v1/workflows/"+id, &st); err != nil {
			if netErrs++; netErrs > 5 {
				g.fail("status %s: %v", id, err)
				return
			}
			g.addTransportRetry()
			continue
		}
		netErrs = 0
		switch st.State {
		case server.StateDone:
			g.complete(start, st.ComputeMs)
			return
		case server.StateFailed:
			g.fail("workflow %s: %s", id, st.Error)
			return
		}
	}
}

// followSSE consumes the workflow's event stream to its terminal event,
// counting any client-observed Seq gap (a drop for this subscriber). A
// transport fault on the stream falls back to polling rather than
// declaring the workflow failed.
func (g *generator) followSSE(id string, start time.Time) {
	g.mu.Lock()
	g.followed++
	g.mu.Unlock()
	resp, err := g.client.Get(g.base + "/v1/workflows/" + id + "/events")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		g.addTransportRetry()
		g.pollDone(id, start)
		return
	}
	defer resp.Body.Close()
	lastSeq := -1
	var last wire.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev wire.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			g.fail("follow %s: bad SSE payload: %v", id, err)
			return
		}
		if ev.Seq != lastSeq+1 {
			g.mu.Lock()
			g.seqGaps++
			g.mu.Unlock()
		}
		lastSeq = ev.Seq
		last = ev
	}
	switch last.Kind {
	case "done":
		// Best-effort status fetch for the server-side compute sample.
		var st wire.Status
		_ = g.getJSON("/v1/workflows/"+id, &st)
		g.complete(start, st.ComputeMs)
	case "failed":
		g.fail("workflow %s: %s", id, last.Error)
	default:
		// Stream cut before a terminal event: resolve by polling.
		g.addTransportRetry()
		g.pollDone(id, start)
	}
}

func (g *generator) complete(start time.Time, computeMs float64) {
	g.mu.Lock()
	g.completed++
	g.wallMs = append(g.wallMs, time.Since(start).Seconds()*1e3)
	// A real compute latency is always positive; zero means the
	// best-effort status fetch failed (transport fault, record evicted)
	// and recording it would drag the percentiles toward 0.
	if computeMs > 0 {
		g.computeMs = append(g.computeMs, computeMs)
	}
	g.mu.Unlock()
}

func (g *generator) fail(format string, args ...any) {
	g.mu.Lock()
	g.failed++
	n := g.failed
	g.mu.Unlock()
	if n <= 10 {
		log.Printf("loadgen: "+format, args...)
	}
}

// Report is the loadgen run summary written to -out.
type Report struct {
	Versions         versionStamp      `json:"versions"`
	DurationS        float64           `json:"duration_s"`      // submission window
	TotalS           float64           `json:"total_s"`         // window + drain of in-flight
	TargetRate       float64           `json:"target_rate_wps"` // 0 = uncapped
	Submitted        int               `json:"submitted"`
	Completed        int               `json:"completed"`
	Failed           int               `json:"failed"`
	Retries429       int               `json:"retries_429"`
	TransportRetries int               `json:"transport_retries"`
	Stalls           int               `json:"inflight_stalls"`
	Followed         int               `json:"followed_sse"`
	SeqGaps          int               `json:"sse_seq_gaps"`
	AchievedWps      float64           `json:"achieved_wps"`
	WallP50Ms        float64           `json:"wall_p50_ms"`
	WallP95Ms        float64           `json:"wall_p95_ms"`
	WallP99Ms        float64           `json:"wall_p99_ms"`
	ComputeP50Ms     float64           `json:"compute_p50_ms"`
	ComputeP99Ms     float64           `json:"compute_p99_ms"`
	ServerMetrics    server.MetricsDoc `json:"server_metrics"`
}

func (g *generator) report(window, elapsed time.Duration, rate float64, metrics server.MetricsDoc) Report {
	versions := g.versions()
	g.mu.Lock()
	defer g.mu.Unlock()
	wall := stats.Quantiles(g.wallMs, 0.50, 0.95, 0.99)
	comp := stats.Quantiles(g.computeMs, 0.50, 0.99)
	wps := 0.0
	if elapsed > 0 {
		wps = float64(g.completed) / elapsed.Seconds()
	}
	return Report{
		Versions:   versions,
		DurationS:  window.Seconds(),
		TotalS:     elapsed.Seconds(),
		TargetRate: rate,
		Submitted:  g.submitted, Completed: g.completed, Failed: g.failed,
		Retries429: g.retries429, TransportRetries: g.transportRetries, Stalls: g.stalls,
		Followed: g.followed, SeqGaps: g.seqGaps,
		AchievedWps: wps,
		WallP50Ms:   wall[0], WallP95Ms: wall[1], WallP99Ms: wall[2],
		ComputeP50Ms: comp[0], ComputeP99Ms: comp[1],
		ServerMetrics: metrics,
	}
}

func printReport(r Report) {
	fmt.Printf("loadgen: %d submitted, %d completed, %d failed in %.1fs (window %.1fs)\n",
		r.Submitted, r.Completed, r.Failed, r.TotalS, r.DurationS)
	fmt.Printf("loadgen: throughput %.1f workflows/sec (target rate %.0f/s, %d backpressure retries, %d in-flight stalls)\n",
		r.AchievedWps, r.TargetRate, r.Retries429, r.Stalls)
	fmt.Printf("loadgen: followed %d workflows over SSE (%d seq gaps observed client-side)\n",
		r.Followed, r.SeqGaps)
	fmt.Printf("loadgen: wall latency p50 %.1fms p95 %.1fms p99 %.1fms; compute p50 %.2fms p99 %.2fms\n",
		r.WallP50Ms, r.WallP95Ms, r.WallP99Ms, r.ComputeP50Ms, r.ComputeP99Ms)
	m := r.ServerMetrics
	fmt.Printf("loadgen: server: completed=%d failed=%d reschedules=%d events=%d dropped=%d inflight_peak=%d rejected(backpressure=%d)\n",
		m.Completed, m.Failed, m.Reschedules, m.EventsEmitted, m.EventsDropped, m.InflightPeak, m.RejectedFull)
	printReschedPath("server", m)
	printAdmission("server", m)
}

// printReschedPath summarises the kernel's replan-path split (delta vs
// full-fallback) and the per-trigger reschedule latency quantiles from a
// /metrics snapshot. Quiet when the run exercised no reschedule path.
func printReschedPath(prefix string, m server.MetricsDoc) {
	if m.ReschedulesDelta == 0 && m.ReschedulesFullFallback == 0 {
		return
	}
	line := fmt.Sprintf("loadgen: %s: replan path delta=%d full=%d", prefix, m.ReschedulesDelta, m.ReschedulesFullFallback)
	if len(m.ReschedulesFullFallbackByReason) > 0 {
		reasons := make([]string, 0, len(m.ReschedulesFullFallbackByReason))
		for r := range m.ReschedulesFullFallbackByReason {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		line += " full_by_reason("
		for i, r := range reasons {
			if i > 0 {
				line += " "
			}
			line += fmt.Sprintf("%s=%d", r, m.ReschedulesFullFallbackByReason[r])
		}
		line += ")"
	}
	for _, tr := range []string{"arrival", "variance", "departure", "contention"} {
		if w, ok := m.RescheduleMs[tr]; ok && w.Count > 0 {
			line += fmt.Sprintf(" %s(n=%d p50=%.2fms p99=%.2fms)", tr, w.Count, w.P50, w.P99)
		}
	}
	fmt.Println(line)
}
