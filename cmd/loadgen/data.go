package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"aheft/internal/drive"
	"aheft/internal/rng"
	"aheft/internal/server"
	"aheft/internal/workload"
)

// dataParams carries the -data flags.
type dataParams struct {
	duration    time.Duration
	seed        uint64
	policy      string
	out         string
	requireBeat bool
}

// DataReport is the -data run summary written to -out.
type DataReport struct {
	Versions  versionStamp `json:"versions"`
	DurationS float64      `json:"duration_s"`
	Rounds    int          `json:"rounds"`
	// LeakedRounds counts rounds whose grid held reservations (compute
	// or transfer) after the workflow finished; ZeroClaimRounds counts
	// rounds where the pending plan staged no link claims at all — a
	// round that never exercised the data path.
	LeakedRounds    int `json:"leaked_rounds"`
	ZeroClaimRounds int `json:"zero_claim_rounds"`
	// AwareMeanMakespan and ObliviousMeanMakespan are both scored by
	// data.Retime under the true data semantics; MeanDeltaPct is
	// 100·(oblivious−aware)/oblivious.
	AwareMeanMakespan     float64           `json:"aware_mean_makespan"`
	ObliviousMeanMakespan float64           `json:"oblivious_mean_makespan"`
	MeanDeltaPct          float64           `json:"mean_delta_pct"`
	TransferClaims        int               `json:"transfer_claims_observed"`
	ServerMetrics         server.MetricsDoc `json:"server_metrics"`
}

// dataMain is the -data entry point: rounds of the data-heavy two-site
// scenario (parameters drawn per round) submitted with their file
// catalogs against one link-constrained shared grid, each round's
// data-aware plan measured against the data-oblivious plan of the
// identical scenario — both retimed under the true data semantics — and
// the grid checked for leaked compute and transfer reservations.
func dataMain(g *generator, p dataParams) {
	r := rng.New(p.seed ^ 0xda7aab1ade)
	gridName := fmt.Sprintf("data-%d", p.seed)
	rep := DataReport{}
	start := time.Now()
	for time.Since(start) < p.duration {
		sc := workload.DataScenario(workload.DataParams{
			Searches: 4 + int(r.IntN(5)),
			DBSize:   150 + float64(r.IntN(101)),
			HitSize:  4 + float64(r.IntN(9)),
			// LinkBW stays at the default so the pool — and therefore the
			// grid registration — is identical across rounds.
		})
		out, err := drive.RunData(context.Background(), drive.DataConfig{
			BaseURL:  g.base,
			Client:   g.client,
			Grid:     gridName,
			Scenario: sc,
			Policy:   p.policy,
			Name:     fmt.Sprintf("data-%d", rep.Rounds),
		})
		if err != nil {
			log.Fatalf("loadgen: data round %d: %v", rep.Rounds, err)
		}
		if out.FinalReservations != 0 || out.FinalTransferReservations != 0 {
			rep.LeakedRounds++
			log.Printf("loadgen: data round %d leaked %d compute + %d transfer reservations",
				rep.Rounds, out.FinalReservations, out.FinalTransferReservations)
		}
		if out.PlannedTransferClaims == 0 {
			rep.ZeroClaimRounds++
		}
		rep.TransferClaims += out.PlannedTransferClaims
		rep.AwareMeanMakespan += out.AwareMakespan
		rep.ObliviousMeanMakespan += out.ObliviousMakespan
		rep.Rounds++
	}
	if rep.Rounds == 0 {
		log.Fatal("loadgen: data: no rounds completed within -duration")
	}
	rep.AwareMeanMakespan /= float64(rep.Rounds)
	rep.ObliviousMeanMakespan /= float64(rep.Rounds)
	if rep.ObliviousMeanMakespan > 0 {
		rep.MeanDeltaPct = 100 * (rep.ObliviousMeanMakespan - rep.AwareMeanMakespan) / rep.ObliviousMeanMakespan
	}
	rep.Versions = g.versions()
	rep.DurationS = time.Since(start).Seconds()
	if err := g.getJSON("/metrics", &rep.ServerMetrics); err != nil {
		log.Fatalf("loadgen: fetch metrics: %v", err)
	}

	fmt.Printf("loadgen: data: %d rounds in %.1fs, %d link claims observed\n",
		rep.Rounds, rep.DurationS, rep.TransferClaims)
	fmt.Printf("loadgen: data: aware mean %.1f vs oblivious mean %.1f (delta %+.1f%%)\n",
		rep.AwareMeanMakespan, rep.ObliviousMeanMakespan, rep.MeanDeltaPct)
	m := rep.ServerMetrics
	fmt.Printf("loadgen: data: server: grids=%d reservations=%d transfer_reservations=%d completed=%d failed=%d dropped=%d\n",
		m.SharedGrids, m.Reservations, m.TransferReservations, m.Completed, m.Failed, m.EventsDropped)

	if p.out != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(p.out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("loadgen: write report: %v", err)
		}
		log.Printf("loadgen: wrote %s", p.out)
	}

	switch {
	case rep.LeakedRounds > 0:
		log.Fatalf("loadgen: data: %d rounds leaked reservations", rep.LeakedRounds)
	case m.Reservations != 0 || m.TransferReservations != 0:
		log.Fatalf("loadgen: data: daemon still holds %d compute + %d transfer reservations after all rounds",
			m.Reservations, m.TransferReservations)
	case m.Failed != 0:
		log.Fatalf("loadgen: data: %d workflows failed", m.Failed)
	case rep.ZeroClaimRounds == rep.Rounds:
		log.Fatal("loadgen: data: no round staged a single transfer claim — the data path was never exercised")
	case p.requireBeat && rep.AwareMeanMakespan >= rep.ObliviousMeanMakespan:
		log.Fatalf("loadgen: data: aware mean %.1f does not beat oblivious mean %.1f",
			rep.AwareMeanMakespan, rep.ObliviousMeanMakespan)
	}
}
