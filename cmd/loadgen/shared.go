package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"aheft/internal/drive"
	"aheft/internal/rng"
	"aheft/internal/server"
	"aheft/internal/wire"
	"aheft/internal/workload"
)

// sharedParams carries the -shared-grid flags.
type sharedParams struct {
	duration          time.Duration
	parallelism       int
	noise             float64
	churn             float64
	varThr            float64
	seed              uint64
	policy            string
	out               string
	requireBeat       bool
	requireContention int
}

// SharedClassReport aggregates one tenant class across rounds.
type SharedClassReport struct {
	Name                  string  `json:"name"`
	Completed             int     `json:"completed"`
	Reschedules           int     `json:"reschedules"`
	ContentionReschedules int     `json:"contention_reschedules"`
	VarianceReschedules   int     `json:"variance_reschedules"`
	ArrivalReschedules    int     `json:"arrival_reschedules"`
	AwareMeanMakespan     float64 `json:"aware_mean_makespan"`
	ObliviousMeanMakespan float64 `json:"oblivious_mean_makespan"`
	// MeanDeltaPct is 100·(oblivious−aware)/oblivious over the class
	// means: what contention-aware planning bought, in makespan percent.
	MeanDeltaPct float64 `json:"mean_delta_pct"`
}

// SharedReport is the -shared-grid run summary written to -out.
type SharedReport struct {
	Versions      versionStamp        `json:"versions"`
	DurationS     float64             `json:"duration_s"`
	Rounds        int                 `json:"rounds"`
	Noise         float64             `json:"noise"`
	Churn         float64             `json:"churn"`
	LeakedRounds  int                 `json:"leaked_rounds"`
	Classes       []SharedClassReport `json:"classes"`
	ServerMetrics server.MetricsDoc   `json:"server_metrics"`
}

// sharedMain is the -shared-grid entry point: rounds of a two-tenant
// BLAST/WIEN2K mix co-scheduled on one named grid per round, each round
// measured against the isolated-planning baseline on the identical job
// stream (drive.RunShared).
func sharedMain(g *generator, p sharedParams) {
	gp := workload.GridParams{InitialResources: 4, ChangeInterval: 400, ChangePct: 0.25, MaxEvents: 2}
	r := rng.New(p.seed ^ 0x56a12ed611d)
	agg := map[string]*SharedClassReport{
		"blast":  {Name: "blast"},
		"wien2k": {Name: "wien2k"},
	}
	rounds, leaked := 0, 0
	start := time.Now()
	for time.Since(start) < p.duration {
		bl, err := workload.BlastScenario(workload.AppParams{Parallelism: p.parallelism, CCR: 1, Beta: 0.5}, gp, r)
		if err != nil {
			log.Fatalf("loadgen: shared: %v", err)
		}
		wn, err := workload.Wien2kScenario(workload.AppParams{Parallelism: p.parallelism, CCR: 1, Beta: 0.5}, gp, r)
		if err != nil {
			log.Fatalf("loadgen: shared: %v", err)
		}
		tenants := []drive.Tenant{
			{Name: "blast", Scenario: bl, Policy: p.policy, Options: wire.Options{VarianceThreshold: p.varThr}},
			{Name: "wien2k", Scenario: wn, Policy: p.policy, Options: wire.Options{VarianceThreshold: p.varThr}},
		}
		// Alternate submission order: the first tenant plans on an empty
		// grid and the second around its reservations, so a fixed order
		// would bill all contention to one class.
		if rounds%2 == 1 {
			tenants[0], tenants[1] = tenants[1], tenants[0]
		}
		// One grid for the whole run: the pool structure is identical
		// across rounds (costs live in the per-tenant tables, not the
		// pool) and every round drains its reservations to zero before
		// the next begins, so reuse also exercises the
		// register-once/attach-many path.
		out, err := drive.RunShared(context.Background(), drive.SharedConfig{
			BaseURL: g.base,
			Client:  g.client,
			Grid:    fmt.Sprintf("shared-%d", p.seed),
			Pool:    bl.Pool,
			Noise:   p.noise,
			Churn:   p.churn,
			Seed:    p.seed*1_000_003 + uint64(rounds),
		}, tenants)
		if err != nil {
			log.Fatalf("loadgen: shared round %d: %v", rounds, err)
		}
		if out.FinalReservations != 0 {
			leaked++
			log.Printf("loadgen: shared round %d leaked %d reservations", rounds, out.FinalReservations)
		}
		for _, to := range out.Tenants {
			c := agg[to.Name]
			c.Completed++
			c.Reschedules += to.Reschedules
			c.ContentionReschedules += to.ContentionReschedules
			c.VarianceReschedules += to.VarianceReschedules
			c.ArrivalReschedules += to.ArrivalReschedules
			c.AwareMeanMakespan += to.AdaptiveMakespan
			c.ObliviousMeanMakespan += to.ObliviousMakespan
		}
		rounds++
	}
	if rounds == 0 {
		log.Fatal("loadgen: shared: no rounds completed within -duration")
	}

	var metrics server.MetricsDoc
	if err := g.getJSON("/metrics", &metrics); err != nil {
		log.Fatalf("loadgen: fetch metrics: %v", err)
	}
	rep := SharedReport{
		Versions:      g.versions(),
		DurationS:     time.Since(start).Seconds(),
		Rounds:        rounds,
		Noise:         p.noise,
		Churn:         p.churn,
		LeakedRounds:  leaked,
		ServerMetrics: metrics,
	}
	for _, name := range []string{"blast", "wien2k"} {
		c := agg[name]
		if c.Completed > 0 {
			c.AwareMeanMakespan /= float64(c.Completed)
			c.ObliviousMeanMakespan /= float64(c.Completed)
			if c.ObliviousMeanMakespan > 0 {
				c.MeanDeltaPct = 100 * (c.ObliviousMeanMakespan - c.AwareMeanMakespan) / c.ObliviousMeanMakespan
			}
		}
		rep.Classes = append(rep.Classes, *c)
	}

	fmt.Printf("loadgen: shared: %d rounds in %.1fs (noise %.0f%%, churn %.0f%%)\n",
		rep.Rounds, rep.DurationS, 100*p.noise, 100*p.churn)
	for _, c := range rep.Classes {
		fmt.Printf("loadgen: shared: %-8s completed=%d aware=%.1f oblivious=%.1f delta=%+.1f%% reschedules=%d (contention=%d variance=%d arrival=%d)\n",
			c.Name, c.Completed, c.AwareMeanMakespan, c.ObliviousMeanMakespan, c.MeanDeltaPct,
			c.Reschedules, c.ContentionReschedules, c.VarianceReschedules, c.ArrivalReschedules)
	}
	fmt.Printf("loadgen: shared: server: grids=%d reservations=%d reschedules(contention=%d variance=%d arrival=%d) dropped=%d\n",
		metrics.SharedGrids, metrics.Reservations,
		metrics.ReschedulesContention, metrics.ReschedulesVariance, metrics.ReschedulesArrival,
		metrics.EventsDropped)
	printReschedPath("shared: server", metrics)
	printAdmission("shared: server", metrics)

	if p.out != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(p.out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("loadgen: write report: %v", err)
		}
		log.Printf("loadgen: wrote %s", p.out)
	}

	switch {
	case leaked > 0:
		log.Fatalf("loadgen: shared: %d rounds leaked reservations", leaked)
	case metrics.Reservations != 0:
		log.Fatalf("loadgen: shared: daemon still holds %d reservations after all rounds", metrics.Reservations)
	case metrics.EventsDropped > 0:
		log.Fatalf("loadgen: daemon dropped %d events", metrics.EventsDropped)
	}
	for _, c := range rep.Classes {
		if c.Completed == 0 {
			continue
		}
		if p.requireContention > 0 && c.ContentionReschedules < p.requireContention {
			log.Fatalf("loadgen: class %s saw %d cross-workflow (contention) reschedules, require %d",
				c.Name, c.ContentionReschedules, p.requireContention)
		}
		if p.requireBeat && c.AwareMeanMakespan > c.ObliviousMeanMakespan {
			log.Fatalf("loadgen: class %s contention-aware mean %.1f worse than oblivious %.1f",
				c.Name, c.AwareMeanMakespan, c.ObliviousMeanMakespan)
		}
	}
}
