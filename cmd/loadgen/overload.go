package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"aheft/internal/drive"
	"aheft/internal/rng"
	"aheft/internal/server"
	"aheft/internal/stats"
	"aheft/internal/wire"
	"aheft/internal/workload"
)

// The -overload mode is the admission layer's acceptance harness: it
// answers "can one greedy tenant ruin everyone else's day?" with a
// measured no. The run has two phases on one daemon and one shared grid:
//
//  1. Calibration: rounds of high-class "victim" workflows co-scheduled
//     on the shared grid with no competition, establishing the victims'
//     baseline p99 makespan.
//  2. Overload: the identical victim rounds, now with a "greedy-grid"
//     tenant packing several outsized workflows onto the same grid —
//     its reservations squeezed by the daemon's per-tenant share cap —
//     while a separate "greedy" tenant floods low-class analytic
//     submissions as fast as the daemon will take them (honouring its
//     429s and Retry-After), keeping the admission queue deep.
//
// The victims' metric is *makespan* — the simulated completion time the
// scheduler actually produced — not wall-clock latency, which on a
// saturated CI box measures the OS scheduler rather than admission
// policy. The gates encode the fairness claims: the victims' overload
// p99 makespan must stay within -overload-bound of their calibrated p99
// (the reservation share cap keeps the grid plannable and weighted fair
// queueing keeps their admissions flowing), at least one fast-path
// admission must later be upgraded (two-speed planning closes its debt),
// the fast path's initial-plan p99 must sit below the full path's (the
// fast plan is actually fast), and the daemon must end with zero
// reservations (nothing leaked).

// overloadParams carries the -overload flags.
type overloadParams struct {
	duration time.Duration
	jobs     int
	seed     uint64
	policy   string
	varThr   float64
	bound    float64
	floods   int
	out      string
}

// OverloadReport is the -overload run summary written to -out.
type OverloadReport struct {
	Versions      versionStamp      `json:"versions"`
	DurationS     float64           `json:"duration_s"`
	Bound         float64           `json:"bound"`
	RoundsCalib   int               `json:"rounds_calibration"`
	RoundsOver    int               `json:"rounds_overload"`
	VictimsCalib  int               `json:"victims_calibration"`
	VictimsOver   int               `json:"victims_overload"`
	GreedyOffered int               `json:"greedy_offered"`
	GreedyAdmit   int               `json:"greedy_admitted"`
	Greedy429     int               `json:"greedy_429"`
	CalibP50      float64           `json:"calibration_p50_makespan"`
	CalibP99      float64           `json:"calibration_p99_makespan"`
	OverP50       float64           `json:"overload_p50_makespan"`
	OverP99       float64           `json:"overload_p99_makespan"`
	DegradeFactor float64           `json:"degrade_factor"`
	ServerMetrics server.MetricsDoc `json:"server_metrics"`
}

// floodLoop hammers greedy low-class analytic submissions until stop is
// closed, retrying 429s after the advised delay (capped to keep the
// flood a flood). Returns offered / admitted / rejected counts.
func floodLoop(g *generator, bodies [][]byte, floods int, seed uint64, stop <-chan struct{}) (offered, admitted, rejected int) {
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for i := 0; i < floods; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := rng.New(seed ^ uint64(0xf100d+i))
			for {
				select {
				case <-stop:
					return
				default:
				}
				body := bodies[r.IntN(len(bodies))]
				resp, err := g.client.Post(g.base+"/v1/workflows", "application/json", bytes.NewReader(body))
				if err != nil {
					time.Sleep(10 * time.Millisecond)
					continue
				}
				var sub wire.Submitted
				code := resp.StatusCode
				if code == http.StatusAccepted {
					_ = json.NewDecoder(resp.Body).Decode(&sub)
				}
				resp.Body.Close()
				mu.Lock()
				offered++
				switch code {
				case http.StatusAccepted:
					admitted++
				case http.StatusTooManyRequests:
					rejected++
				}
				mu.Unlock()
				if code == http.StatusTooManyRequests {
					delay := 20 * time.Millisecond
					if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
						delay = time.Duration(ra) * time.Second / 8
					}
					if delay > 250*time.Millisecond {
						delay = 250 * time.Millisecond
					}
					time.Sleep(delay)
				}
			}
		}(i)
	}
	wg.Wait()
	return offered, admitted, rejected
}

// overloadMain is the -overload entry point.
func overloadMain(g *generator, p overloadParams) {
	r := rng.New(p.seed ^ 0x0e10ad)
	// One GridParams for every scenario: the pool shape is a function of
	// gp alone, so all tenants' cost tables cover the one shared grid.
	gp := workload.GridParams{InitialResources: 8, ChangeInterval: 400, ChangePct: 0.25, MaxEvents: 2}
	var victims []*workload.Scenario
	for i := 0; i < 4; i++ {
		sc, err := workload.RandomScenario(workload.RandomParams{Jobs: p.jobs, CCR: 1, OutDegree: 0.3, Beta: 0.5}, gp, r)
		if err != nil {
			log.Fatalf("loadgen: overload: victim scenario: %v", err)
		}
		victims = append(victims, sc)
	}
	// The grid hog's DAGs are double the victims' size, four to a round:
	// without the share cap its reservations would blanket the grid's
	// future and push every victim plan out past the bound.
	var hogs []*workload.Scenario
	for i := 0; i < 4; i++ {
		sc, err := workload.RandomScenario(workload.RandomParams{Jobs: 2 * p.jobs, CCR: 1, OutDegree: 0.3, Beta: 0.5}, gp, r)
		if err != nil {
			log.Fatalf("loadgen: overload: greedy scenario: %v", err)
		}
		hogs = append(hogs, sc)
	}
	// The analytic flood runs on private pools: it exists to keep the
	// admission queue deep (429s, fast-path admissions) without adding
	// reservations of its own. Its DAGs are double victim size so each
	// item costs enough planning that the drain falls behind the
	// submission rate — a flood that drains as fast as it arrives never
	// builds the backlog the fast path keys on — while staying short
	// enough that a victim round trip waits behind at most one brief
	// execution.
	var floodBodies [][]byte
	for i := 0; i < 4; i++ {
		sc, err := workload.RandomScenario(workload.RandomParams{Jobs: 2 * p.jobs, CCR: 1, OutDegree: 0.3, Beta: 0.5}, gp, r)
		if err != nil {
			log.Fatalf("loadgen: overload: flood scenario: %v", err)
		}
		body, err := wire.EncodeSubmission(&wire.Submission{
			Name:    fmt.Sprintf("greedy-%d", i),
			Tenant:  "greedy",
			Policy:  p.policy,
			Options: wire.Options{Class: wire.ClassLow},
			Graph:   sc.Graph, Comp: sc.Table, Pool: sc.Pool,
		})
		if err != nil {
			log.Fatalf("loadgen: overload: encode flood: %v", err)
		}
		floodBodies = append(floodBodies, body)
	}

	gridName := fmt.Sprintf("overload-%d", p.seed)
	leaked := 0
	// runPhase drives rounds of two victims (cycling through all four
	// scenarios every two rounds) plus, in the overload phase, the grid
	// hog's four workflows. Per-round seeds match across phases and the
	// victims' noise draws come first, so a victim round's runtimes are
	// identical in both phases — the only difference is the competition.
	// Calibration rounds finish in milliseconds while overload rounds
	// fight the flood for the core, so an uncapped time budget would pit
	// hundreds of calibration samples against a handful of overload ones;
	// the cap keeps the two phases' round sets (and their paired seeds)
	// comparable.
	const maxRounds = 8
	runPhase := func(phase string, withHogs bool) []float64 {
		var makespans []float64
		start, rounds := time.Now(), 0
		for rounds < 2 || (rounds < maxRounds && time.Since(start) < p.duration) {
			opts := wire.Options{Class: wire.ClassHigh, VarianceThreshold: p.varThr}
			tenants := []drive.Tenant{
				{Name: "victim", Scenario: victims[(2*rounds)%len(victims)], Policy: p.policy, Options: opts},
				{Name: "victim", Scenario: victims[(2*rounds+1)%len(victims)], Policy: p.policy, Options: opts},
			}
			if withHogs {
				for i, sc := range hogs {
					tenants = append(tenants, drive.Tenant{
						Name: "greedy-grid", Scenario: sc, Policy: p.policy,
						Options: wire.Options{Class: wire.ClassLow, Weight: float64(1 + i%2)},
					})
				}
			}
			out, err := drive.RunShared(context.Background(), drive.SharedConfig{
				BaseURL: g.base,
				Client:  g.client,
				Grid:    gridName,
				Pool:    victims[0].Pool,
				Noise:   0.1,
				Seed:    p.seed*1_000_003 + uint64(rounds),
			}, tenants)
			if err != nil {
				log.Fatalf("loadgen: overload: %s round %d: %v", phase, rounds, err)
			}
			if out.FinalReservations != 0 {
				leaked++
				log.Printf("loadgen: overload: %s round %d leaked %d reservations", phase, rounds, out.FinalReservations)
			}
			for _, to := range out.Tenants {
				if to.Name == "victim" {
					makespans = append(makespans, to.AdaptiveMakespan)
				}
			}
			rounds++
		}
		return makespans
	}

	log.Printf("loadgen: overload: calibration phase (≥%.0fs, victims only)", p.duration.Seconds())
	calib := runPhase("calib", false)
	calibRounds := len(calib) / 2

	log.Printf("loadgen: overload: overload phase (≥%.0fs, victims + grid hog + %d flooders)", p.duration.Seconds(), p.floods)
	stop := make(chan struct{})
	var offered, admitted, rejected int
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		offered, admitted, rejected = floodLoop(g, floodBodies, p.floods, p.seed, stop)
	}()
	over := runPhase("over", true)
	overRounds := len(over) / 2
	close(stop)
	<-floodDone

	// Let the flood's backlog drain before the final metrics read, so the
	// leak gate sees the daemon quiescent, not mid-flight.
	waitQuiesce(g, 2*time.Minute)

	var metrics server.MetricsDoc
	if err := g.getJSON("/metrics", &metrics); err != nil {
		log.Fatalf("loadgen: fetch metrics: %v", err)
	}
	cq := stats.Quantiles(calib, 0.50, 0.99)
	oq := stats.Quantiles(over, 0.50, 0.99)
	rep := OverloadReport{
		Versions:    g.versions(),
		DurationS:   2 * p.duration.Seconds(),
		Bound:       p.bound,
		RoundsCalib: calibRounds, RoundsOver: overRounds,
		VictimsCalib: len(calib), VictimsOver: len(over),
		GreedyOffered: offered, GreedyAdmit: admitted, Greedy429: rejected,
		CalibP50: cq[0], CalibP99: cq[1],
		OverP50: oq[0], OverP99: oq[1],
		ServerMetrics: metrics,
	}
	if cq[1] > 0 {
		rep.DegradeFactor = oq[1] / cq[1]
	}

	adm := metrics.Admission
	fmt.Printf("loadgen: overload: victims calib=%d (%d rounds) over=%d (%d rounds); greedy offered=%d admitted=%d 429=%d\n",
		rep.VictimsCalib, calibRounds, rep.VictimsOver, overRounds, offered, admitted, rejected)
	fmt.Printf("loadgen: overload: victim p99 makespan %.1f calibrated → %.1f under flood (factor %.2f, bound %.1f)\n",
		cq[1], oq[1], rep.DegradeFactor, p.bound)
	printAdmission("overload", metrics)

	if p.out != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(p.out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("loadgen: write report: %v", err)
		}
		log.Printf("loadgen: wrote %s", p.out)
	}

	fastAdmits, upgrades := uint64(0), uint64(0)
	for _, n := range adm.FastPathByClass {
		fastAdmits += n
	}
	for _, n := range adm.UpgradedByClass {
		upgrades += n
	}
	switch {
	case len(calib) == 0 || len(over) == 0:
		log.Fatal("loadgen: overload: a phase completed no victims")
	case cq[1] <= 0:
		log.Fatal("loadgen: overload: calibration produced a zero p99 makespan")
	case leaked > 0:
		log.Fatalf("loadgen: overload: %d rounds leaked reservations", leaked)
	case rep.DegradeFactor > p.bound:
		log.Fatalf("loadgen: overload: victim p99 makespan degraded %.2f× under the flood, bound %.1f×", rep.DegradeFactor, p.bound)
	case fastAdmits == 0:
		log.Fatal("loadgen: overload: flood never tripped the fast path (raise -overload-floods or lower the daemon's -fast-path-depth)")
	case upgrades == 0:
		log.Fatal("loadgen: overload: no fast-path admission was upgraded to a full plan")
	case adm.FastInitialMs.Count > 0 && adm.FullInitialMs.Count > 0 && adm.FastInitialMs.P99 >= adm.FullInitialMs.P99:
		log.Fatalf("loadgen: overload: fast-path initial-plan p99 %.2fms not below full-path %.2fms",
			adm.FastInitialMs.P99, adm.FullInitialMs.P99)
	case metrics.Reservations != 0:
		log.Fatalf("loadgen: overload: daemon still holds %d reservations", metrics.Reservations)
	}
}

// waitQuiesce polls /metrics until the daemon reports no in-flight
// workflows (the admitted greedy backlog has drained).
func waitQuiesce(g *generator, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var m server.MetricsDoc
		if err := g.getJSON("/metrics", &m); err == nil && m.Inflight == 0 {
			return
		}
		time.Sleep(250 * time.Millisecond)
	}
	log.Printf("loadgen: overload: daemon did not quiesce within %s", timeout)
}

// printAdmission summarises the daemon's admission state from a /metrics
// snapshot: per-class admit/fast/upgrade/reject counters, queue wait and
// per-path initial-plan quantiles, drain rate and per-tenant depths.
// Quiet when the daemon predates the admission layer or saw no traffic.
func printAdmission(prefix string, m server.MetricsDoc) {
	adm := m.Admission
	total := uint64(0)
	for _, n := range adm.AdmittedByClass {
		total += n
	}
	for _, n := range adm.RejectedByClass {
		total += n
	}
	if total == 0 {
		return
	}
	line := fmt.Sprintf("loadgen: %s: admission", prefix)
	for _, class := range []string{"high", "normal", "low"} {
		a := adm.AdmittedByClass[class]
		rej := adm.RejectedByClass[class]
		if a == 0 && rej == 0 {
			continue
		}
		line += fmt.Sprintf(" %s(admit=%d fast=%d upgraded=%d 429=%d)",
			class, a, adm.FastPathByClass[class], adm.UpgradedByClass[class], rej)
	}
	if adm.WaitMs.Count > 0 {
		line += fmt.Sprintf(" wait(p50=%.2fms p99=%.2fms)", adm.WaitMs.P50, adm.WaitMs.P99)
	}
	if adm.FastInitialMs.Count > 0 || adm.FullInitialMs.Count > 0 {
		line += fmt.Sprintf(" initial(fast p99=%.2fms n=%d, full p99=%.2fms n=%d)",
			adm.FastInitialMs.P99, adm.FastInitialMs.Count, adm.FullInitialMs.P99, adm.FullInitialMs.Count)
	}
	if adm.DrainRatePerS > 0 {
		line += fmt.Sprintf(" drain=%.1f/s", adm.DrainRatePerS)
	}
	fmt.Println(line)
}
