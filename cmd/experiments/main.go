// Command experiments regenerates the paper's evaluation tables and
// figures (Yu & Shi, "An Adaptive Rescheduling Strategy for Grid Workflow
// Applications").
//
// Usage:
//
//	experiments [-exp fig5,table3,...] [-samples N] [-seed S] [-tie W]
//	            [-appcap JOBS] [-full]
//
// Without -exp, every experiment runs in the paper's presentation order.
// -samples scales the number of simulated cases per parameter point; the
// paper's own sweep is 500,000 cases, so full-fidelity runs take a while —
// -full selects a heavyweight preset (64 samples per point).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"aheft/internal/experiment"
)

func main() {
	var (
		exps    = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		samples = flag.Int("samples", 8, "simulated cases per parameter point")
		seed    = flag.Uint64("seed", 1, "root seed for all pseudo-random streams")
		tie     = flag.Float64("tie", 0, "AHEFT near-tie rank exploration window (0 = paper-faithful greedy)")
		appcap  = flag.Int("appcap", 0, "cap application DAG sizes at this many jobs (0 = full Table 5 sizes)")
		full    = flag.Bool("full", false, "heavyweight preset: 64 samples per point")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		format  = flag.String("format", "text", "output format: text or csv")
	)
	flag.Parse()

	if *list {
		for _, id := range experiment.Order {
			fmt.Println(id)
		}
		return
	}

	cfg := experiment.Config{
		Samples:    *samples,
		Seed:       *seed,
		TieWindow:  *tie,
		WithMinMin: true,
		AppJobCap:  *appcap,
	}
	if *full {
		cfg.Samples = 64
	}

	ids := experiment.Order
	if *exps != "" {
		ids = strings.Split(*exps, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		run, ok := experiment.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		table, err := run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			fmt.Printf("# %s — %s\n%s\n", table.ID, table.Title, table.CSV())
		default:
			fmt.Println(table.Render())
			fmt.Printf("(%s in %v, samples/point=%d, seed=%d)\n\n", id, time.Since(start).Round(time.Millisecond), cfg.Samples, cfg.Seed)
		}
	}
}
