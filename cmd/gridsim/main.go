// Command gridsim runs a single grid-workflow simulation and prints the
// outcome: makespan per strategy, the rescheduling decisions the adaptive
// planner made, and (optionally) a text Gantt chart of the final schedule.
//
// Usage examples:
//
//	gridsim -workload sample                          # the paper's Fig. 4/5 example
//	gridsim -workload blast -jobs 400 -ccr 5 -pool 20 -interval 400 -pct 0.2
//	gridsim -workload random -jobs 60 -ccr 1 -beta 0.5 -gantt
//	gridsim -workload wien2k -jobs 200 -strategies heft,aheft,minmin
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/minmin"
	"aheft/internal/planner"
	"aheft/internal/rng"
	"aheft/internal/trace"
	"aheft/internal/workload"
)

func main() {
	var (
		kind       = flag.String("workload", "sample", "workload: sample, random, blast, wien2k, montage")
		jobs       = flag.Int("jobs", 100, "total job count υ (random/blast/wien2k/montage)")
		ccr        = flag.Float64("ccr", 1.0, "communication-to-computation ratio")
		beta       = flag.Float64("beta", 0.5, "resource heterogeneity factor β")
		outdeg     = flag.Float64("outdegree", 0.3, "max out-degree as fraction of υ (random)")
		alpha      = flag.Float64("alpha", 1.0, "DAG shape α: width ≈ α·sqrt(υ) (random)")
		pool       = flag.Int("pool", 10, "initial resource pool size R")
		interval   = flag.Float64("interval", 400, "resource change interval Δ (0 = static grid)")
		pct        = flag.Float64("pct", 0.2, "resource change percentage δ")
		seed       = flag.Uint64("seed", 1, "random seed")
		tie        = flag.Float64("tie", 0, "AHEFT near-tie exploration window")
		strategies = flag.String("strategies", "heft,aheft,minmin", "comma-separated: heft, aheft, minmin")
		gantt      = flag.Bool("gantt", false, "print a Gantt chart of each final schedule")
		decisions  = flag.Bool("decisions", true, "print the adaptive planner's decisions")
		traceFile  = flag.String("trace", "", "write a JSONL execution trace of the adaptive run to this file (runs through the event-driven executor)")
	)
	flag.Parse()

	sc, err := buildScenario(*kind, *jobs, *ccr, *beta, *outdeg, *alpha, *pool, *interval, *pct, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridsim:", err)
		os.Exit(1)
	}
	g := sc.Graph
	fmt.Printf("workflow %s: %d jobs, %d edges, width %d, %d levels\n",
		g.Name(), g.Len(), g.NumEdges(), g.Width(), len(g.Levels()))
	fmt.Printf("grid: %d initial resources, %d arrivals at %v\n\n",
		len(sc.Pool.Initial()), sc.Pool.Size()-len(sc.Pool.Initial()), sc.Pool.ChangeTimes())

	nameOf := func(j dag.JobID) string { return g.Job(j).Name }
	resName := func(r grid.ID) string {
		if res, ok := sc.Pool.Resource(r); ok {
			return res.Name
		}
		return fmt.Sprintf("r%d", r+1)
	}

	for _, strat := range strings.Split(*strategies, ",") {
		switch strings.TrimSpace(strat) {
		case "heft":
			res, err := planner.Run(g, sc.Estimator(), sc.Pool, planner.StrategyStatic, planner.RunOptions{})
			if err != nil {
				fmt.Fprintln(os.Stderr, "gridsim: heft:", err)
				os.Exit(1)
			}
			fmt.Printf("HEFT   (static):   makespan %10.2f\n", res.Makespan)
			if *gantt {
				fmt.Println(res.Schedule.Gantt(96, nameOf, resName))
			}
		case "aheft":
			var res *planner.Result
			var err error
			if *traceFile != "" {
				// Run through the event-driven executor so the trace
				// captures the real event stream (identical results to
				// the analytic runner; see the integration tests).
				col := trace.NewCollector(g, nil)
				svc, serr := planner.NewService(g, sc.Estimator(), sc.Pool, planner.ServiceOptions{
					RunOptions: planner.RunOptions{TieWindow: *tie},
					Trace:      col,
				})
				if serr != nil {
					fmt.Fprintln(os.Stderr, "gridsim: aheft:", serr)
					os.Exit(1)
				}
				res, err = svc.Execute()
				if err == nil {
					f, ferr := os.Create(*traceFile)
					if ferr != nil {
						fmt.Fprintln(os.Stderr, "gridsim:", ferr)
						os.Exit(1)
					}
					if werr := col.WriteJSONL(f); werr != nil {
						fmt.Fprintln(os.Stderr, "gridsim:", werr)
						os.Exit(1)
					}
					if cerr := f.Close(); cerr != nil {
						fmt.Fprintln(os.Stderr, "gridsim:", cerr)
						os.Exit(1)
					}
					fmt.Printf("trace (%d events) written to %s\n", col.Len(), *traceFile)
				}
			} else {
				res, err = planner.Run(g, sc.Estimator(), sc.Pool, planner.StrategyAdaptive, planner.RunOptions{TieWindow: *tie})
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "gridsim: aheft:", err)
				os.Exit(1)
			}
			fmt.Printf("AHEFT  (adaptive): makespan %10.2f  (%.1f%% vs initial plan, %d/%d reschedules adopted)\n",
				res.Makespan, 100*res.Improvement(), res.Adoptions(), len(res.Decisions))
			if *decisions {
				for _, d := range res.Decisions {
					verdict := "kept current"
					if d.Adopted {
						verdict = "adopted"
					}
					fmt.Printf("  t=%8.1f pool=%3d finished=%4d  %10.2f -> %10.2f  %s\n",
						d.Clock, d.PoolSize, d.JobsFinished, d.OldMakespan, d.NewMakespan, verdict)
				}
			}
			if *gantt {
				fmt.Println(res.Schedule.Gantt(96, nameOf, resName))
			}
		case "minmin":
			res, err := minmin.Run(g, sc.Estimator(), sc.Pool, minmin.MinMin)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gridsim: minmin:", err)
				os.Exit(1)
			}
			fmt.Printf("MinMin (dynamic):  makespan %10.2f\n", res.Makespan)
			if *gantt {
				fmt.Println(res.Schedule.Gantt(96, nameOf, resName))
			}
		default:
			fmt.Fprintf(os.Stderr, "gridsim: unknown strategy %q\n", strat)
			os.Exit(2)
		}
	}
}

func buildScenario(kind string, jobs int, ccr, beta, outdeg, alpha float64, pool int, interval, pct float64, seed uint64) (*workload.Scenario, error) {
	r := rng.New(seed)
	gp := workload.GridParams{InitialResources: pool, ChangeInterval: interval, ChangePct: pct}
	switch kind {
	case "sample":
		return workload.SampleScenario(), nil
	case "random":
		return workload.RandomScenario(workload.RandomParams{
			Jobs: jobs, CCR: ccr, OutDegree: outdeg, Beta: beta, Alpha: alpha,
		}, gp, r)
	case "blast":
		return workload.BlastScenario(workload.AppParams{
			Parallelism: workload.BlastParallelism(jobs), CCR: ccr, Beta: beta,
		}, gp, r)
	case "wien2k":
		return workload.Wien2kScenario(workload.AppParams{
			Parallelism: workload.Wien2kParallelism(jobs), CCR: ccr, Beta: beta,
		}, gp, r)
	case "montage":
		return workload.MontageScenario(workload.AppParams{
			Parallelism: jobs / 3, CCR: ccr, Beta: beta,
		}, gp, r)
	default:
		return nil, fmt.Errorf("unknown workload %q", kind)
	}
}
