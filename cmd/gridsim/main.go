// Command gridsim runs a single grid-workflow simulation and prints the
// outcome: makespan per strategy, the rescheduling decisions the adaptive
// planner made, and (optionally) a text Gantt chart of the final schedule.
//
// Usage examples:
//
//	gridsim -workload sample                          # the paper's Fig. 4/5 example
//	gridsim -workload blast -jobs 400 -ccr 5 -pool 20 -interval 400 -pct 0.2
//	gridsim -workload random -jobs 60 -ccr 1 -beta 0.5 -gantt
//	gridsim -workload wien2k -jobs 200 -strategies heft,aheft,minmin
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"aheft"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/policy"
	"aheft/internal/rng"
	"aheft/internal/workload"
)

func main() {
	var (
		kind       = flag.String("workload", "sample", "workload: sample, random, blast, wien2k, montage")
		jobs       = flag.Int("jobs", 100, "total job count υ (random/blast/wien2k/montage)")
		ccr        = flag.Float64("ccr", 1.0, "communication-to-computation ratio")
		beta       = flag.Float64("beta", 0.5, "resource heterogeneity factor β")
		outdeg     = flag.Float64("outdegree", 0.3, "max out-degree as fraction of υ (random)")
		alpha      = flag.Float64("alpha", 1.0, "DAG shape α: width ≈ α·sqrt(υ) (random)")
		pool       = flag.Int("pool", 10, "initial resource pool size R")
		interval   = flag.Float64("interval", 400, "resource change interval Δ (0 = static grid)")
		pct        = flag.Float64("pct", 0.2, "resource change percentage δ")
		seed       = flag.Uint64("seed", 1, "random seed")
		tie        = flag.Float64("tie", 0, "AHEFT near-tie exploration window")
		strategies = flag.String("strategies", "heft,aheft,minmin",
			"comma-separated policy names (registered: "+strings.Join(policy.Names(), ", ")+")")
		gantt     = flag.Bool("gantt", false, "print a Gantt chart of each final schedule")
		decisions = flag.Bool("decisions", true, "print the adaptive planner's decisions")
		traceFile = flag.String("trace", "", "write a JSONL execution trace of the adaptive run to this file (runs through the event-driven executor)")
	)
	flag.Parse()

	sc, err := buildScenario(*kind, *jobs, *ccr, *beta, *outdeg, *alpha, *pool, *interval, *pct, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridsim:", err)
		os.Exit(1)
	}
	g := sc.Graph
	fmt.Printf("workflow %s: %d jobs, %d edges, width %d, %d levels\n",
		g.Name(), g.Len(), g.NumEdges(), g.Width(), len(g.Levels()))
	fmt.Printf("grid: %d initial resources, %d arrivals at %v\n\n",
		len(sc.Pool.Initial()), sc.Pool.Size()-len(sc.Pool.Initial()), sc.Pool.ChangeTimes())

	nameOf := func(j dag.JobID) string { return g.Job(j).Name }
	resName := func(r grid.ID) string {
		if res, ok := sc.Pool.Resource(r); ok {
			return res.Name
		}
		return fmt.Sprintf("r%d", r+1)
	}

	ctx := context.Background()
	traced := false
	for _, name := range strings.Split(*strategies, ",") {
		name = policy.Canon(name)
		pol, err := policy.Get(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
			os.Exit(2)
		}
		opts := []aheft.Option{aheft.WithPolicy(name), aheft.WithTieWindow(*tie)}
		var col *aheft.Trace
		if *traceFile != "" && pol.Adaptive() {
			// Run through the event-driven executor so the trace captures
			// the real event stream (identical results to the analytic
			// engine; see the integration tests).
			col = aheft.NewTrace(g)
			opts = append(opts, aheft.WithTrace(col))
		}
		res, err := aheft.Run(ctx, g, sc.Estimator(), sc.Pool, opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		if col != nil {
			if err := writeTrace(*traceFile, col); err != nil {
				fmt.Fprintln(os.Stderr, "gridsim:", err)
				os.Exit(1)
			}
			fmt.Printf("trace (%d events) written to %s\n", col.Len(), *traceFile)
			traced = true
		}
		if pol.Adaptive() {
			fmt.Printf("%-9s (adaptive): makespan %10.2f  (%.1f%% vs initial plan, %d/%d reschedules adopted)\n",
				name, res.Makespan, 100*res.Improvement(), res.Adoptions(), len(res.Decisions))
			if *decisions {
				for _, d := range res.Decisions {
					verdict := "kept current"
					if d.Adopted {
						verdict = "adopted"
					}
					fmt.Printf("  t=%8.1f %s(+%d) pool=%3d finished=%4d  %10.2f -> %10.2f  %s\n",
						d.Clock, d.Trigger, d.ArrivedCount, d.PoolSize, d.JobsFinished,
						d.OldMakespan, d.NewMakespan, verdict)
				}
			}
		} else {
			fmt.Printf("%-9s (one-shot): makespan %10.2f\n", name, res.Makespan)
		}
		if *gantt {
			fmt.Println(res.Schedule.Gantt(96, nameOf, resName))
		}
	}
	if *traceFile != "" && !traced {
		fmt.Fprintf(os.Stderr, "gridsim: warning: -trace applies only to adaptive policies; none in %q, no trace written\n", *strategies)
	}
}

// writeTrace dumps the collected execution trace as JSON Lines.
func writeTrace(path string, col *aheft.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := col.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildScenario(kind string, jobs int, ccr, beta, outdeg, alpha float64, pool int, interval, pct float64, seed uint64) (*workload.Scenario, error) {
	r := rng.New(seed)
	gp := workload.GridParams{InitialResources: pool, ChangeInterval: interval, ChangePct: pct}
	switch kind {
	case "sample":
		return workload.SampleScenario(), nil
	case "random":
		return workload.RandomScenario(workload.RandomParams{
			Jobs: jobs, CCR: ccr, OutDegree: outdeg, Beta: beta, Alpha: alpha,
		}, gp, r)
	case "blast":
		return workload.BlastScenario(workload.AppParams{
			Parallelism: workload.BlastParallelism(jobs), CCR: ccr, Beta: beta,
		}, gp, r)
	case "wien2k":
		return workload.Wien2kScenario(workload.AppParams{
			Parallelism: workload.Wien2kParallelism(jobs), CCR: ccr, Beta: beta,
		}, gp, r)
	case "montage":
		return workload.MontageScenario(workload.AppParams{
			Parallelism: jobs / 3, CCR: ccr, Beta: beta,
		}, gp, r)
	default:
		return nil, fmt.Errorf("unknown workload %q", kind)
	}
}
