// Command aheftd is the adaptive-scheduling daemon: it serves the
// internal/server HTTP API (wire-format workflow submission, status,
// SSE decision streams, health, metrics) over N sharded session workers.
//
//	aheftd -addr :7070 -shards 4 -queue 256
//
// With -data-dir the daemon is durable: every shard journals its state
// to a write-ahead log (fsync policy -wal-sync) with periodic snapshots,
// and a restarted daemon replays the directory to resume live workflows
// mid-flight. While replay runs the listener answers 503 "recovering"
// (GET /v1/healthz), flipping to "ready" when the recovered state is
// serving.
//
// SIGTERM or SIGINT starts a graceful drain: intake returns 503, every
// queued workflow finishes, then the process exits 0. A second signal —
// or the -drain-timeout deadline — force-cancels in-flight runs and
// exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aheft/internal/buildinfo"
	"aheft/internal/server"
	"aheft/internal/wire"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	shards := flag.Int("shards", 4, "session workers (one scheduling pipeline each)")
	queue := flag.Int("queue", 256, "per-shard bounded admission backlog (total accepted-but-unstarted submissions)")
	tenantBacklog := flag.Int("tenant-backlog", 0, "per-tenant share of a shard's admission backlog (0 = unbounded; floods then bound only by -queue)")
	fastPathDepth := flag.Int("fast-path-depth", 0, "backlog depth at which live submissions get a fast greedy plan upgraded asynchronously (0 = built-in 8, negative = off)")
	gridShareCap := flag.Float64("grid-share-cap", 0, "per-tenant share cap on a shared grid's reservations, 0 < cap < 1 (0 = off)")
	maxJobs := flag.Int("max-jobs", wire.DefaultLimits.MaxJobs, "per-submission job cap")
	maxRes := flag.Int("max-resources", wire.DefaultLimits.MaxResources, "per-submission resource cap")
	defaultPolicy := flag.String("policy", "aheft", "default scheduling policy for submissions that name none")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "max time to drain queued workflows on shutdown")
	varThr := flag.Float64("variance-threshold", 0, "default significant-variance gate for live workflows (0 = built-in 0.2)")
	coneFrac := flag.Float64("max-cone-frac", 0, "dirty-cone fraction above which an incremental reschedule falls back to a full replan (0 = built-in 0.25, 1 = never)")
	maxTenants := flag.Int("max-tenant-histories", 0, "per-shard cap on retained tenant performance histories (0 = 1024, negative = unbounded)")
	maxGrids := flag.Int("max-grids", 0, "cap on registered shared grids (0 = 256, negative = unbounded)")
	dataDir := flag.String("data-dir", "", "durability directory (per-shard WAL + snapshots); empty = in-memory only")
	walSync := flag.String("wal-sync", "interval", "WAL fsync policy: always | interval | off")
	walSyncInterval := flag.Duration("wal-sync-interval", 0, "fsync cadence for -wal-sync=interval (0 = built-in 100ms)")
	snapInterval := flag.Duration("snapshot-interval", 0, "per-shard snapshot cadence (0 = built-in 30s)")
	tracing := flag.Bool("trace", false, "enable the causal span tracer (GET /v1/workflows/{id}/trace, per-stage latencies in /metrics)")
	traceFile := flag.String("trace-file", "", "stream completed spans to this file as OTLP-shaped JSON lines (implies -trace)")
	traceSpans := flag.Int("trace-spans", 0, "retained spans per workflow for the trace endpoint (0 = built-in 512)")
	recordDir := flag.String("record-dir", "", "flight-recorder directory: capture every input and decision per shard for deterministic replay (cmd/replay)")
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	// Serve the readiness gate before recovery starts: a restarted durable
	// daemon with a deep WAL answers 503 "recovering" instead of refusing
	// connections, so load balancers and the chaos harness can wait on
	// /v1/healthz rather than on the TCP dial.
	gate := server.NewGate()
	httpSrv := &http.Server{Addr: *addr, Handler: gate}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("aheftd: %s listening on %s (%d shards, queue depth %d, default policy %s)",
			buildinfo.String(), *addr, *shards, *queue, *defaultPolicy)
		errCh <- httpSrv.ListenAndServe()
	}()

	srv, err := server.Open(server.Config{
		Shards:                *shards,
		QueueDepth:            *queue,
		TenantBacklog:         *tenantBacklog,
		FastPathDepth:         *fastPathDepth,
		GridShareCap:          *gridShareCap,
		Limits:                wire.Limits{MaxJobs: *maxJobs, MaxResources: *maxRes},
		DefaultPolicy:         *defaultPolicy,
		VarianceThreshold:     *varThr,
		MaxConeFrac:           *coneFrac,
		MaxTenantHistories:    *maxTenants,
		MaxSharedGrids:        *maxGrids,
		DataDir:               *dataDir,
		WALSync:               *walSync,
		WALSyncInterval:       *walSyncInterval,
		SnapshotInterval:      *snapInterval,
		Tracing:               *tracing,
		TraceFile:             *traceFile,
		TraceSpansPerWorkflow: *traceSpans,
		RecordDir:             *recordDir,
	})
	if err != nil {
		log.Fatalf("aheftd: open: %v", err)
	}
	gate.Ready(srv.Handler())
	if *dataDir != "" {
		m := srv.MetricsSnapshot()
		log.Printf("aheftd: durable in %s (wal-sync=%s): recovered %d live workflows in %.1fms",
			*dataDir, *walSync, m.RecoveredWorkflows, m.RecoveryMs)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatalf("aheftd: serve: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default handling: a second signal kills the process

	log.Printf("aheftd: draining (timeout %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(drainCtx)
	_ = httpSrv.Shutdown(drainCtx)

	m := srv.MetricsSnapshot()
	log.Printf("aheftd: drained: accepted=%d completed=%d failed=%d rejected(backpressure=%d invalid=%d drain=%d) reschedules=%d events=%d dropped=%d inflight_peak=%d",
		m.Accepted, m.Completed, m.Failed, m.RejectedFull, m.RejectedInvalid, m.RejectedDrain,
		m.Reschedules, m.EventsEmitted, m.EventsDropped, m.InflightPeak)
	log.Printf("aheftd: feedback: reports=%d events=%d rejected=%d whatif=%d reschedules(variance=%d arrival=%d departure=%d) history(tenants=%d cells=%d)",
		m.Reports, m.ReportEvents, m.ReportsRejected, m.WhatIfQueries,
		m.ReschedulesVariance, m.ReschedulesArrival, m.ReschedulesDeparture,
		m.HistoryTenants, m.HistoryCells)
	if *dataDir != "" {
		log.Printf("aheftd: durability: wal_appends=%d wal_bytes=%d snapshots=%d wal_errors=%d",
			m.WALAppends, m.WALBytes, m.Snapshots, m.WALErrors)
	}
	if drainErr != nil && !errors.Is(drainErr, context.Canceled) {
		fmt.Fprintf(os.Stderr, "aheftd: drain incomplete: %v\n", drainErr)
		os.Exit(1)
	}
}
