// Command benchcmp compares two benchjson documents (see cmd/benchjson)
// and prints per-benchmark speedup and allocation ratios:
//
//	benchcmp BENCH_baseline.json BENCH_kernel.json
//
// With --require, it enforces minimum improvement ratios and exits
// non-zero when they are not met — CI uses this to pin the kernel's
// performance contract against the pre-kernel baseline:
//
//	benchcmp old.json new.json \
//	  --require 'BenchmarkKernelReschedule/v=5000:allocs=2.0,ns=1.0'
//
// means: on that benchmark, old.allocs/new.allocs must be >= 2.0 (at
// least 2x fewer allocations) and old.ns/new.ns must be >= 1.0 (not
// slower).
//
// --only restricts the printed comparison to benchmarks whose name starts
// with one of the comma-separated prefixes (a named subset); --require and
// --ratio still resolve against the full documents:
//
//	benchcmp old.json new.json --only BenchmarkKernelDeltaReschedule
//
// --ratio gates one benchmark against another WITHIN the new document —
// ns/op of the first must be at least the given multiple of the second:
//
//	benchcmp old.json new.json \
//	  --ratio 'BenchmarkKernelReschedule/v=20000/kind=finish:BenchmarkKernelDeltaReschedule/v=20000/cone=1:10'
//
// means: in new.json, the full replan at v=20000 must take >= 10x the
// ns/op of the 1-job delta reschedule — the incremental path's speedup
// contract.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type doc struct {
	Benchmarks []record `json:"benchmarks"`
}

type requirement struct {
	bench  string
	allocs float64 // minimum old/new allocs ratio
	ns     float64 // minimum old/new ns ratio
}

// ratioGate pins two benchmarks in the NEW document against each other:
// new[num].ns / new[den].ns must be >= min.
type ratioGate struct {
	num, den string
	min      float64
}

func main() {
	var files []string
	var reqs []requirement
	var ratios []ratioGate
	var only []string
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		switch {
		case args[i] == "--require":
			i++
			if i >= len(args) {
				fatal("missing --require value")
			}
			reqs = append(reqs, parseRequire(args[i]))
		case strings.HasPrefix(args[i], "--require="):
			reqs = append(reqs, parseRequire(strings.TrimPrefix(args[i], "--require=")))
		case args[i] == "--ratio":
			i++
			if i >= len(args) {
				fatal("missing --ratio value")
			}
			ratios = append(ratios, parseRatio(args[i]))
		case strings.HasPrefix(args[i], "--ratio="):
			ratios = append(ratios, parseRatio(strings.TrimPrefix(args[i], "--ratio=")))
		case args[i] == "--only":
			i++
			if i >= len(args) {
				fatal("missing --only value")
			}
			only = append(only, strings.Split(args[i], ",")...)
		case strings.HasPrefix(args[i], "--only="):
			only = append(only, strings.Split(strings.TrimPrefix(args[i], "--only="), ",")...)
		default:
			files = append(files, args[i])
		}
	}
	if len(files) != 2 {
		fatal("usage: benchcmp OLD.json NEW.json [--only Prefix,...] [--require 'Bench:allocs=2.0,ns=1.0']... [--ratio 'BenchA:BenchB:10']...")
	}
	oldDoc, newDoc := load(files[0]), load(files[1])
	oldBy := index(oldDoc)
	fmt.Printf("%-44s %12s %12s %9s %9s\n", "benchmark", "ns/op", "allocs/op", "ns ×", "allocs ×")
	newBy := map[string]record{}
	for _, n := range newDoc.Benchmarks {
		newBy[n.Name] = n
		if !selected(n.Name, only) {
			continue
		}
		o, ok := oldBy[n.Name]
		if !ok {
			fmt.Printf("%-44s %12.0f %12.0f %9s %9s\n", n.Name, n.NsPerOp, n.AllocsPerOp, "new", "new")
			continue
		}
		fmt.Printf("%-44s %12.0f %12.0f %9.2f %9.2f\n",
			n.Name, n.NsPerOp, n.AllocsPerOp, ratio(o.NsPerOp, n.NsPerOp), ratio(o.AllocsPerOp, n.AllocsPerOp))
	}
	failed := false
	for _, rg := range ratios {
		num, okN := newBy[rg.num]
		den, okD := newBy[rg.den]
		if !okN || !okD {
			fmt.Fprintf(os.Stderr, "benchcmp: ratio benchmark missing in new doc (%q %v, %q %v)\n", rg.num, okN, rg.den, okD)
			failed = true
			continue
		}
		if r := ratio(num.NsPerOp, den.NsPerOp); r < rg.min {
			fmt.Fprintf(os.Stderr, "benchcmp: ratio %s / %s = %.2f < required %.2f (%.0f / %.0f ns/op)\n",
				rg.num, rg.den, r, rg.min, num.NsPerOp, den.NsPerOp)
			failed = true
		} else {
			fmt.Printf("ratio %s / %s = %.2fx (>= %.2f)\n", rg.num, rg.den, r, rg.min)
		}
	}
	for _, rq := range reqs {
		o, okO := oldBy[rq.bench]
		n, okN := newBy[rq.bench]
		if !okO || !okN {
			fmt.Fprintf(os.Stderr, "benchcmp: required benchmark %q missing (old %v, new %v)\n", rq.bench, okO, okN)
			failed = true
			continue
		}
		if r := ratio(o.AllocsPerOp, n.AllocsPerOp); rq.allocs > 0 && r < rq.allocs {
			fmt.Fprintf(os.Stderr, "benchcmp: %s: allocs ratio %.2f < required %.2f (%.0f → %.0f allocs/op)\n",
				rq.bench, r, rq.allocs, o.AllocsPerOp, n.AllocsPerOp)
			failed = true
		}
		if r := ratio(o.NsPerOp, n.NsPerOp); rq.ns > 0 && r < rq.ns {
			fmt.Fprintf(os.Stderr, "benchcmp: %s: ns ratio %.2f < required %.2f (%.0f → %.0f ns/op)\n",
				rq.bench, r, rq.ns, o.NsPerOp, n.NsPerOp)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	if len(reqs)+len(ratios) > 0 {
		fmt.Println("all requirements met")
	}
}

// selected reports whether name passes the --only prefix filter; an empty
// filter selects everything.
func selected(name string, only []string) bool {
	if len(only) == 0 {
		return true
	}
	for _, p := range only {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func ratio(old, new float64) float64 {
	if new == 0 {
		if old == 0 {
			return 1
		}
		return old // treat as "infinitely better", bounded by old
	}
	return old / new
}

func parseRequire(s string) requirement {
	i := strings.LastIndex(s, ":")
	if i < 0 {
		fatal("bad --require %q: want 'Bench:allocs=2.0,ns=1.0'", s)
	}
	rq := requirement{bench: s[:i]}
	for _, part := range strings.Split(s[i+1:], ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			fatal("bad --require clause %q", part)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			fatal("bad --require value %q: %v", kv[1], err)
		}
		switch kv[0] {
		case "allocs":
			rq.allocs = v
		case "ns":
			rq.ns = v
		default:
			fatal("bad --require metric %q (want allocs or ns)", kv[0])
		}
	}
	return rq
}

// parseRatio parses 'BenchA:BenchB:min' — benchmark names never contain
// colons, so a plain split is unambiguous.
func parseRatio(s string) ratioGate {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		fatal("bad --ratio %q: want 'BenchA:BenchB:10'", s)
	}
	v, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || v <= 0 {
		fatal("bad --ratio minimum %q", parts[2])
	}
	return ratioGate{num: parts[0], den: parts[1], min: v}
}

func load(path string) doc {
	b, err := os.ReadFile(path)
	if err != nil {
		fatal("%v", err)
	}
	var d doc
	if err := json.Unmarshal(b, &d); err != nil {
		fatal("%s: %v", path, err)
	}
	return d
}

func index(d doc) map[string]record {
	m := map[string]record{}
	for _, b := range d.Benchmarks {
		m[b.Name] = b
	}
	return m
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcmp: "+format+"\n", args...)
	os.Exit(1)
}
