// Command whatif answers the paper's §3.3 "What...if..." capacity-planning
// queries: given a workflow mid-execution, what would the expected
// makespan become if resources were added to (or removed from) the grid at
// a chosen moment?
//
// The tool builds a scenario, executes its schedule up to the query clock,
// then evaluates the hypothetical pool change with the same snapshot +
// reschedule machinery the live planner uses — without submitting
// anything.
//
// Usage examples:
//
//	whatif -workload blast -jobs 200 -pool 20 -clock 300 -add 4
//	whatif -workload random -jobs 60 -clock 0.25rel -remove r3,r7
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"aheft/internal/grid"
	"aheft/internal/heft"
	"aheft/internal/planner"
	"aheft/internal/rng"
	"aheft/internal/workload"
)

func main() {
	var (
		kind   = flag.String("workload", "blast", "workload: sample, random, blast, wien2k")
		jobs   = flag.Int("jobs", 200, "total job count υ")
		ccr    = flag.Float64("ccr", 1.0, "communication-to-computation ratio")
		beta   = flag.Float64("beta", 0.5, "heterogeneity factor β")
		pool   = flag.Int("pool", 10, "initial pool size R")
		seed   = flag.Uint64("seed", 1, "random seed")
		clockS = flag.String("clock", "0.25rel", "query time: absolute (e.g. 300) or fraction of the makespan with 'rel' suffix (e.g. 0.25rel)")
		add    = flag.Int("add", 1, "hypothetical resources to add")
		remove = flag.String("remove", "", "comma-separated resource names to remove (e.g. r3,r7)")
		tie    = flag.Float64("tie", 0, "near-tie exploration window")
	)
	flag.Parse()

	r := rng.New(*seed)
	sc, err := buildScenario(*kind, *jobs, *ccr, *beta, *pool, r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whatif:", err)
		os.Exit(1)
	}
	est := sc.Estimator()
	s0, err := heft.Schedule(sc.Graph, est, sc.Pool.Initial(), heft.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "whatif:", err)
		os.Exit(1)
	}

	clock, err := parseClock(*clockS, s0.Makespan())
	if err != nil {
		fmt.Fprintln(os.Stderr, "whatif:", err)
		os.Exit(1)
	}

	available := sc.Pool.AvailableAt(clock)
	q := planner.WhatIfQuery{Clock: clock}
	// Hypothetical additions take fresh IDs beyond the scenario's pool;
	// their costs must exist in the table, so we reuse the cost columns of
	// the scenario's not-yet-arrived resources (the β-sampled future
	// arrivals), which is exactly what "a resource like the ones this grid
	// attracts" means.
	future := futureResources(sc, clock)
	if *add > len(future) {
		fmt.Fprintf(os.Stderr, "whatif: scenario has cost data for at most %d hypothetical additions (asked for %d);\n"+
			"         increase -pool churn by regenerating, or lower -add\n", len(future), *add)
		os.Exit(1)
	}
	q.Add = future[:*add]
	if *remove != "" {
		for _, name := range strings.Split(*remove, ",") {
			id := findResource(available, strings.TrimSpace(name))
			if id == grid.NoResource {
				fmt.Fprintf(os.Stderr, "whatif: resource %q not in the pool at t=%g\n", name, clock)
				os.Exit(1)
			}
			q.Remove = append(q.Remove, id)
		}
	}

	ans, err := planner.WhatIf(sc.Graph, est, s0, available, q, planner.RunOptions{TieWindow: *tie})
	if err != nil {
		fmt.Fprintln(os.Stderr, "whatif:", err)
		os.Exit(1)
	}

	fmt.Printf("workflow %s (%d jobs), pool %d at t=%.1f\n", sc.Graph.Name(), sc.Graph.Len(), len(available), clock)
	fmt.Printf("query: add %d, remove %d resource(s) at t=%.1f\n\n", len(q.Add), len(q.Remove), clock)
	fmt.Printf("current plan makespan:      %10.2f\n", ans.CurrentMakespan)
	fmt.Printf("hypothetical makespan:      %10.2f\n", ans.NewMakespan)
	fmt.Printf("delta:                      %+10.2f (%+.1f%%)\n",
		ans.Delta(), 100*ans.Delta()/ans.CurrentMakespan)
	if ans.WouldAdopt {
		fmt.Println("verdict: the adaptive planner WOULD adopt the new schedule")
	} else {
		fmt.Println("verdict: the adaptive planner would KEEP the current schedule")
	}
}

func parseClock(s string, makespan float64) (float64, error) {
	if frac, ok := strings.CutSuffix(s, "rel"); ok {
		f, err := strconv.ParseFloat(frac, 64)
		if err != nil || f < 0 || f > 1 {
			return 0, fmt.Errorf("bad relative clock %q (want e.g. 0.25rel)", s)
		}
		return f * makespan, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad clock %q", s)
	}
	return v, nil
}

func futureResources(sc *workload.Scenario, clock float64) []grid.Resource {
	var out []grid.Resource
	for _, a := range sc.Pool.Arrivals() {
		if a.Time > clock {
			out = append(out, a.Resource)
		}
	}
	return out
}

func findResource(rs []grid.Resource, name string) grid.ID {
	for _, r := range rs {
		if r.Name == name {
			return r.ID
		}
	}
	return grid.NoResource
}

func buildScenario(kind string, jobs int, ccr, beta float64, pool int, r *rng.Source) (*workload.Scenario, error) {
	// Generate generous future arrivals so hypothetical additions have
	// sampled cost columns to draw on.
	gp := workload.GridParams{InitialResources: pool, ChangeInterval: 1e9, ChangePct: 1.0, MaxEvents: 1}
	switch kind {
	case "sample":
		return workload.SampleScenario(), nil
	case "random":
		return workload.RandomScenario(workload.RandomParams{
			Jobs: jobs, CCR: ccr, OutDegree: 0.3, Beta: beta,
		}, gp, r)
	case "blast":
		return workload.BlastScenario(workload.AppParams{
			Parallelism: workload.BlastParallelism(jobs), CCR: ccr, Beta: beta,
		}, gp, r)
	case "wien2k":
		return workload.Wien2kScenario(workload.AppParams{
			Parallelism: workload.Wien2kParallelism(jobs), CCR: ccr, Beta: beta,
		}, gp, r)
	default:
		return nil, fmt.Errorf("unknown workload %q", kind)
	}
}
