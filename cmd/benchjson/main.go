// Command benchjson converts `go test -bench` text output into a stable
// JSON document for CI artifacts and regression diffing:
//
//	go test -run '^$' -bench 'BenchmarkKernel' -benchmem . | benchjson > BENCH_kernel.json
//
// Each benchmark line becomes one record with ns/op, B/op, allocs/op and
// any custom ReportMetric units. Non-benchmark lines (goos/goarch/pkg,
// PASS, ok) are folded into the header metadata.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Record is one benchmark result line.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the whole converted run.
type Doc struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	doc := Doc{Benchmarks: []Record{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   100   12345 ns/op   67 B/op   8 allocs/op   3.14 extra
//
// (value, unit) pairs after the iteration count.
func parseLine(line string) (Record, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Record{}, false
	}
	name := f[0]
	// Strip the -GOMAXPROCS suffix. Go appends it only when procs != 1,
	// and benchjson runs in the same pipeline as the `go test` that
	// produced the lines, so only a suffix equal to this process's
	// GOMAXPROCS is the runner's — anything else (e.g. a sub-benchmark
	// genuinely named "layered-5000" under GOMAXPROCS=1) is part of the
	// name and stays.
	if procs := runtime.GOMAXPROCS(0); procs != 1 {
		if suffix := "-" + strconv.Itoa(procs); strings.HasSuffix(name, suffix) {
			name = strings.TrimSuffix(name, suffix)
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	r := Record{Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
