// Command dagen generates workflow DAGs — parametric random graphs or the
// BLAST / WIEN2K / Montage application shapes — and writes them as JSON
// (the library's native interchange format) or Graphviz DOT.
//
// Usage examples:
//
//	dagen -kind blast -jobs 22 -format dot | dot -Tpng > blast.png
//	dagen -kind random -jobs 60 -ccr 5 -outdegree 0.2 > wf.json
//	dagen -kind sample -format dot
package main

import (
	"flag"
	"fmt"
	"os"

	"aheft/internal/dag"
	"aheft/internal/rng"
	"aheft/internal/workload"
)

func main() {
	var (
		kind   = flag.String("kind", "random", "DAG kind: sample, random, blast, wien2k, montage")
		jobs   = flag.Int("jobs", 20, "total job count υ")
		ccr    = flag.Float64("ccr", 1.0, "communication-to-computation ratio")
		outdeg = flag.Float64("outdegree", 0.3, "max out-degree as fraction of υ (random)")
		alpha  = flag.Float64("alpha", 1.0, "shape α: width ≈ α·sqrt(υ) (random)")
		seed   = flag.Uint64("seed", 1, "random seed")
		format = flag.String("format", "json", "output format: json or dot")
		stats  = flag.Bool("stats", false, "print shape statistics to stderr")
	)
	flag.Parse()

	g, err := build(*kind, *jobs, *ccr, *outdeg, *alpha, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagen:", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "%s: %d jobs, %d edges, width %d, %d levels, parallelism %.2f, total data %.1f\n",
			g.Name(), g.Len(), g.NumEdges(), g.Width(), len(g.Levels()), g.Parallelism(), g.TotalData())
	}
	switch *format {
	case "json":
		data, err := g.MarshalJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dagen:", err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
		fmt.Println()
	case "dot":
		fmt.Print(g.DOT())
	default:
		fmt.Fprintf(os.Stderr, "dagen: unknown format %q\n", *format)
		os.Exit(2)
	}
}

func build(kind string, jobs int, ccr, outdeg, alpha float64, seed uint64) (*dag.Graph, error) {
	r := rng.New(seed)
	switch kind {
	case "sample":
		return workload.SampleDAG(), nil
	case "random":
		return workload.RandomDAG(workload.RandomParams{
			Jobs: jobs, CCR: ccr, OutDegree: outdeg, Alpha: alpha,
		}, r)
	case "blast":
		return workload.BLAST(workload.AppParams{
			Parallelism: workload.BlastParallelism(jobs), CCR: ccr,
		}, r)
	case "wien2k":
		return workload.WIEN2K(workload.AppParams{
			Parallelism: workload.Wien2kParallelism(jobs), CCR: ccr,
		}, r)
	case "montage":
		p := jobs / 3
		if p < 1 {
			p = 1
		}
		return workload.Montage(workload.AppParams{Parallelism: p, CCR: ccr}, r)
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
