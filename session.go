package aheft

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// EventKind classifies session events.
type EventKind string

// Session event kinds.
const (
	// EventSubmitted: a workflow entered the session.
	EventSubmitted EventKind = "submitted"
	// EventDecision: the planner evaluated a reschedule for a workflow
	// (Event.Decision holds the evaluation).
	EventDecision EventKind = "decision"
	// EventDone: a workflow completed (Event.Result holds the outcome).
	EventDone EventKind = "done"
	// EventFailed: a workflow aborted (Event.Err holds the cause).
	EventFailed EventKind = "failed"
)

// Event is one occurrence in a session's execution, delivered through
// Session.Events. It replaces the callback-only executor.EventHandler
// wiring of the v1 API with a subscription the caller ranges over.
type Event struct {
	// Workflow is the name the workflow was submitted under.
	Workflow string
	// Kind classifies the event.
	Kind EventKind
	// Policy is the registry name of the policy driving the workflow.
	Policy string
	// Time is the simulated clock of the event: the rescheduling clock
	// for EventDecision, the makespan for EventDone, 0 otherwise.
	Time float64
	// Decision is set for EventDecision.
	Decision *Decision
	// Result is set for EventDone.
	Result *Result
	// Err is set for EventFailed.
	Err error
}

// Session executes many workflows concurrently over one dynamic pool.
// Each submitted workflow runs in its own goroutine under the session's
// context with errgroup-style semantics: the first failure cancels every
// other workflow, and Wait reports it.
//
// A Session is safe for concurrent use. Subscribe with Events before the
// first Submit to observe the full stream; Wait closes the channel.
type Session struct {
	pool *Pool
	base []Option
	ctx  context.Context
	stop context.CancelCauseFunc

	wg sync.WaitGroup

	// drops counts events lost because the subscriber stopped draining
	// (see Events for the drop policy). Read it with Dropped.
	drops atomic.Uint64

	mu       sync.Mutex
	events   chan Event
	names    map[string]bool
	results  map[string]*Result
	firstErr error
	waited   bool // Wait has begun: no further Submits
	closed   bool // Wait has finished: events channel closed
}

// NewSession prepares a session over the pool. The options become the
// default for every submitted workflow (Submit can extend them per
// workflow); ctx bounds the whole session — cancelling it aborts every
// running workflow.
func NewSession(ctx context.Context, pool *Pool, opts ...Option) *Session {
	sctx, stop := context.WithCancelCause(ctx)
	return &Session{
		pool:    pool,
		base:    opts,
		ctx:     sctx,
		stop:    stop,
		names:   make(map[string]bool),
		results: make(map[string]*Result),
	}
}

// Events returns the session's event stream. The channel is created on
// first call — subscribe before submitting to see every event — and is
// closed by Wait.
//
// Drop policy: emission never blocks the scheduling goroutines. When the
// subscriber stops draining and the 256-event buffer fills, the *oldest*
// buffered event is evicted to make room for the new one (the stream
// stays current, its history suffers); after cancellation a stalled
// subscriber loses the new event instead. Every lost event — either way —
// increments the counter reported by Dropped, so a subscriber can detect
// an incomplete stream. The aheftd daemon's per-subscriber equivalent is
// the events_dropped counter in its /metrics document.
func (s *Session) Events() <-chan Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed && s.events == nil {
		// Subscribed after Wait already shut the session down: hand back a
		// closed channel so a range over it terminates instead of hanging.
		ch := make(chan Event)
		close(ch)
		return ch
	}
	if s.events == nil {
		s.events = make(chan Event, 256)
	}
	return s.events
}

// emit delivers ev to the subscriber, if any. Emission never blocks the
// scheduling goroutines indefinitely: a full buffer drops the event when
// the session is cancelled, or drops the oldest buffered event otherwise.
// Either loss increments the Dropped counter.
func (s *Session) emit(ev Event) {
	s.mu.Lock()
	ch := s.events
	s.mu.Unlock()
	if ch == nil {
		return
	}
	for {
		select {
		case ch <- ev:
			return
		case <-s.ctx.Done():
			// Cancelled with a stalled subscriber: drop rather than leak
			// the goroutine.
			select {
			case ch <- ev:
			default:
				s.drops.Add(1)
			}
			return
		default:
			// Buffer full: evict the oldest event and retry.
			select {
			case <-ch:
				s.drops.Add(1)
			default:
			}
		}
	}
}

// Dropped reports how many events have been lost to a slow subscriber so
// far (see Events for the drop policy). A subscriber that subscribed
// before the first Submit, drained the closed stream, and finds
// Dropped() == 0 has observed every event the session emitted; events
// emitted before the first Events call have no subscriber and are
// discarded without counting.
func (s *Session) Dropped() uint64 { return s.drops.Load() }

// Submit schedules workflow g (with its estimator) for execution under
// name and returns immediately; the workflow runs in its own goroutine.
// Extra options extend the session defaults for this workflow only (e.g.
// a different policy per workflow). Submitting after Wait, or reusing a
// name, is an error.
func (s *Session) Submit(name string, g *Graph, est Estimator, opts ...Option) error {
	cfg := newConfig(append(append([]Option(nil), s.base...), opts...))
	s.mu.Lock()
	switch {
	case s.waited:
		s.mu.Unlock()
		return fmt.Errorf("aheft: Submit(%q) after Wait", name)
	case s.names[name]:
		s.mu.Unlock()
		return fmt.Errorf("aheft: duplicate workflow name %q", name)
	}
	s.names[name] = true
	// Add under the lock: Wait marks `waited` under the same lock before
	// it calls wg.Wait, so the counter can never go 0→1 concurrently with
	// a Wait in progress (and a late workflow can never outlive the close
	// of the events channel).
	s.wg.Add(1)
	s.mu.Unlock()

	s.emit(Event{Workflow: name, Kind: EventSubmitted, Policy: cfg.policyName})
	go func() {
		defer s.wg.Done()
		res, err := run(s.ctx, g, est, s.pool, cfg, func(d Decision) {
			dc := d
			s.emit(Event{Workflow: name, Kind: EventDecision, Policy: cfg.policyName, Time: d.Clock, Decision: &dc})
		})
		if err != nil {
			s.mu.Lock()
			if s.firstErr == nil {
				s.firstErr = fmt.Errorf("aheft: workflow %q: %w", name, err)
			}
			s.mu.Unlock()
			// errgroup-style: the first failure cancels the siblings.
			s.stop(err)
			s.emit(Event{Workflow: name, Kind: EventFailed, Policy: cfg.policyName, Err: err})
			return
		}
		s.mu.Lock()
		s.results[name] = res
		s.mu.Unlock()
		s.emit(Event{Workflow: name, Kind: EventDone, Policy: cfg.policyName, Time: res.Makespan, Result: res})
	}()
	return nil
}

// Wait blocks until every submitted workflow has finished (or the session
// is cancelled), closes the event stream, and returns the results by
// workflow name together with the first error, if any. Workflows that
// completed before a failure keep their results.
func (s *Session) Wait() (map[string]*Result, error) {
	// Refuse further Submits before waiting, under the same lock Submit
	// uses for wg.Add: this orders every Add strictly before wg.Wait.
	s.mu.Lock()
	s.waited = true
	s.mu.Unlock()
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	// Capture the error before the session's own shutdown cancels the
	// context: a cancellation observed here happened while workflows were
	// in flight, not as part of a clean Wait.
	err := s.firstErr
	if err == nil && !s.closed && s.ctx.Err() != nil && len(s.results) < len(s.names) {
		err = context.Cause(s.ctx)
	}
	if !s.closed {
		s.closed = true
		if s.events != nil {
			close(s.events)
		}
		s.stop(nil)
	}
	out := make(map[string]*Result, len(s.results))
	for k, v := range s.results {
		out[k] = v
	}
	return out, err
}
