package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"aheft/internal/admission"
	"aheft/internal/cost"
	"aheft/internal/feedback"
	"aheft/internal/history"
	"aheft/internal/obs"
	"aheft/internal/planner"
	"aheft/internal/policy"
	"aheft/internal/wire"
)

// This file is the daemon side of the paper's Fig. 1 feedback loop: live
// workflows are planned once and then parked on their shard, where
// POST /v1/workflows/{id}/report events flow into the tenant's
// Performance History Repository and drive variance/arrival/departure
// rescheduling through internal/feedback. Everything that touches a live
// tracker runs on the shard's worker goroutine; HTTP handlers talk to it
// through the shard's command channel and wait for the reply.

// shardCmd is one request routed to the owning shard's worker goroutine.
type shardCmd struct {
	wf     *workflow
	report *wire.Report
	// raw is the report's undecoded body, carried along only when the
	// flight recorder is on so the worker can append it in processing
	// order (see record.go).
	raw    json.RawMessage
	whatif *wire.WhatIfRequest
	// upgrade asks the worker to pay back a fast-path admission's
	// planning debt: re-evaluate the live plan with the full policy
	// (planner.TriggerUpgrade). Fire-and-forget — reply is nil.
	upgrade bool
	reply   chan cmdResult
}

// cmdResult is the worker's answer.
type cmdResult struct {
	ack    *wire.ReportAck
	whatif *wire.WhatIfDoc
	code   int // HTTP status when errMsg is set
	errMsg string
}

// startLive plans a live workflow and parks it on the shard for the
// report loop. The initial plan already mines the tenant's performance
// history (sharpened by earlier workflows), with the submitted estimate
// matrix as prior.
func (sh *shard) startLive(wf *workflow) {
	m := sh.srv.metrics
	if err := sh.srv.runCtx.Err(); err != nil {
		// Force-cancelled drain: fail fast instead of planning a workflow
		// (potentially tens of ms for the stress DAGs) that cancelLive
		// would immediately kill — the drain deadline already passed.
		wf.mu.Lock()
		wf.state = StateRunning
		wf.startedAt = time.Now()
		wf.mu.Unlock()
		wf.append(m, wire.Event{Kind: "failed", Error: err.Error()})
		wf.finish(nil, err)
		m.liveWorkflowDone(true)
		sh.srv.retire(wf.id)
		sh.walLogTerminal(wf)
		if rec := sh.srv.recorder; rec != nil {
			rec.done(sh.id, wf.id, StateFailed, 0, err.Error())
		}
		return
	}
	planStart := time.Now()
	planAct := sh.srv.tracer.Start(obs.StagePlan, wf.id)
	if planAct != nil {
		planAct.Span.Parent = wf.rootSpan
		planAct.Span.Shard = sh.id
		planAct.Span.Tenant = wf.tenant
		if wf.gridRef != nil {
			planAct.Span.Grid = wf.gridRef.name
		}
	}
	cfg := feedback.Config{
		Graph:             wf.sub.Graph,
		Prior:             cost.Exact(wf.sub.Comp),
		Pool:              wf.sub.Pool,
		History:           sh.historyFor(wf.tenant),
		Policy:            wf.pol,
		Opts:              wf.opts,
		VarianceThreshold: wf.varThr,
	}
	if wf.fastPath {
		// Two-speed planning, fast half: under a deep admission backlog
		// the initial plan is a cheap greedy placement so the enactor
		// can start immediately; the full-policy plan follows through
		// the upgrade command queued below.
		cfg.FastPlan = policy.MustGet("greedy")
	}
	if wf.gridRef != nil {
		// Shared-grid workflow: plan over the grid's resource universe,
		// publishing reservations into (and planning around) its ledger.
		wf.gridRef.ledger.BindTenant(wf.id, wf.tenant)
		cfg.Pool = wf.gridRef.pool
		cfg.Occupancy = wf.gridRef.ledger.View(wf.id)
	}
	tr, err := feedback.New(cfg)
	wf.mu.Lock()
	wf.state = StateRunning
	wf.startedAt = time.Now()
	wf.mu.Unlock()
	wf.append(m, wire.Event{Kind: "started"})
	if err != nil {
		planAct.Fail(err)
		wf.append(m, wire.Event{Kind: "failed", Error: err.Error()})
		wf.finish(nil, err)
		m.liveWorkflowDone(true)
		sh.srv.retire(wf.id)
		sh.walLogTerminal(wf)
		if rec := sh.srv.recorder; rec != nil {
			rec.done(sh.id, wf.id, StateFailed, 0, err.Error())
		}
		return
	}
	wf.tracker = tr
	plan := livePlanDoc(wf, "initial")
	wf.mu.Lock()
	wf.plan = plan
	wf.generation = plan.Generation
	wf.mu.Unlock()
	// The enactor learns the initial plan from GET …/plan; contention
	// reschedules bumping the generation past this are piggybacked on the
	// next report ack.
	wf.ackedGen = plan.Generation
	if planAct != nil {
		planAct.Span.Generation = plan.Generation
		planAct.End()
	}
	if rec := sh.srv.recorder; rec != nil {
		rec.plan(sh.id, plan)
	}
	wf.append(m, wire.Event{
		Kind: "plan", Trigger: "initial",
		Generation: plan.Generation, Makespan: plan.Makespan,
	})
	sh.live[wf.id] = wf
	m.liveResident.Add(1)
	if wf.gridRef != nil {
		wf.gridRef.attach(wf)
	}
	// Initial-plan latency — execution start to first enactable plan —
	// keyed by path, so /metrics can prove the fast path's point: its
	// p99 must sit below the full-plan p99. Queue residency is excluded
	// (it sits in admission_wait_ms): the fast path only engages under
	// deep backlog, so folding wait time in would bill the overload the
	// fast path exists to absorb against the fast path itself.
	lat := time.Since(planStart).Seconds() * 1e3
	if wf.fastPath {
		m.admInitialFastMs.record(lat)
		sh.scheduleUpgrade(wf)
	} else {
		m.admInitialFullMs.record(lat)
	}
	// Journal the planned state; this also promotes the raw submission
	// body from the WAL's pending mirror to its live mirror.
	sh.walLogState(wf, nil)
}

// scheduleUpgrade queues the slow half of a fast-path admission: an
// asynchronous command that re-plans with the full policy. It goes
// through the command channel from a helper goroutine — never a direct
// call or a worker-side send — so upgrades interleave with reports and
// new intake at the select loop's pace instead of blocking the worker
// on its own (bounded) channel.
func (sh *shard) scheduleUpgrade(wf *workflow) {
	go func() {
		select {
		case sh.cmds <- shardCmd{wf: wf, upgrade: true}:
		case <-sh.srv.runCtx.Done():
		}
	}()
}

// handleCmd serves one report, what-if or upgrade on the worker
// goroutine.
func (sh *shard) handleCmd(c shardCmd) {
	wf := c.wf
	m := sh.srv.metrics
	if c.upgrade {
		// Fire-and-forget: no reply channel. A workflow that reached a
		// terminal state before its upgrade arrived satisfies the
		// fast-path invariant (upgraded or terminal) by being terminal.
		sh.applyUpgrade(wf)
		return
	}
	if wf.tracker == nil || wf.tracker.Done() || sh.live[wf.id] == nil {
		if c.report != nil {
			m.reportsRejected.Add(1)
		}
		c.reply <- cmdResult{code: http.StatusConflict, errMsg: "workflow is not accepting reports"}
		return
	}
	switch {
	case c.report != nil:
		sh.applyReport(wf, c)
	case c.whatif != nil:
		doc, err := wf.tracker.WhatIf(*c.whatif)
		if err != nil {
			c.reply <- cmdResult{code: http.StatusBadRequest, errMsg: err.Error()}
			return
		}
		m.whatifs.Add(1)
		doc.Workflow = wf.id
		c.reply <- cmdResult{whatif: doc}
	default:
		c.reply <- cmdResult{code: http.StatusBadRequest, errMsg: "empty command"}
	}
}

// applyReport folds a validated report into the live run: history feed,
// variance judgement, rescheduling decisions into the event log (with
// their trigger), plan bump on adoption, completion on the last finish.
func (sh *shard) applyReport(wf *workflow, c shardCmd) {
	m := sh.srv.metrics
	// Record the report before applying it: even a batch the tracker
	// rejects or has already applied reached this worker and consumed its
	// turn in the processing order, and replay must re-drive it to land
	// on the same order (it is re-rejected or re-acked identically).
	if rec := sh.srv.recorder; rec != nil && c.raw != nil {
		rec.report(sh.id, wf.id, c.raw)
	}
	ingestAct := sh.srv.tracer.Start(obs.StageIngest, wf.id)
	var ingestID uint64
	if ingestAct != nil {
		ingestAct.Span.Parent = wf.rootSpan
		ingestAct.Span.Shard = sh.id
		ingestAct.Span.Tenant = wf.tenant
		if wf.gridRef != nil {
			ingestAct.Span.Grid = wf.gridRef.name
		}
		ingestID = ingestAct.Span.ID
	}
	out, err := wf.tracker.Apply(c.report.Events)
	if err != nil {
		// A restarted daemon may be re-sent a batch it already applied
		// before the crash (the enactor's ack was lost). Replays the
		// tracker's recovered state already reflects are acked
		// idempotently instead of 400ing a correct client.
		if wf.tracker.AlreadyApplied(c.report.Events) {
			m.reportsDuplicate.Add(1)
			ack := &wire.ReportAck{
				Workflow:   wf.id,
				Applied:    len(c.report.Events),
				Generation: wf.tracker.Generation(),
			}
			if gen := wf.tracker.Generation(); gen > wf.ackedGen {
				wf.mu.Lock()
				plan := wf.plan
				wf.mu.Unlock()
				if plan != nil {
					ack.Rescheduled = true
					ack.Trigger = plan.Trigger
					ack.Plan = plan
					ack.Generation = plan.Generation
				}
				wf.ackedGen = gen
			}
			ingestAct.End()
			c.reply <- cmdResult{ack: ack}
			return
		}
		m.reportsRejected.Add(1)
		ingestAct.Fail(err)
		c.reply <- cmdResult{code: http.StatusBadRequest, errMsg: err.Error()}
		return
	}
	m.reports.Add(1)
	m.reportEvents.Add(uint64(out.Applied))
	m.decisions.Add(uint64(len(out.Decisions)))
	for _, d := range out.Decisions {
		m.recordDecision(d)
		sh.emitDecisionSpans(wf, d, ingestID, 0, "")
		if rec := sh.srv.recorder; rec != nil {
			rec.decision(sh.id, wf.id, d)
		}
		wd := wireDecision(d)
		wf.append(m, wire.Event{
			Kind: "decision", Time: d.Clock, Decision: &wd,
			Trigger: wd.Trigger, Arrived: wd.Arrived,
		})
		if !d.Adopted {
			continue
		}
		m.reschedules.Add(1)
		switch d.Trigger {
		case planner.TriggerVariance:
			m.reschedVariance.Add(1)
		case planner.TriggerArrival:
			m.reschedArrival.Add(1)
		case planner.TriggerDeparture:
			m.reschedDeparture.Add(1)
		case planner.TriggerUpgrade:
			m.reschedUpgrade.Add(1)
		}
	}
	ack := &wire.ReportAck{
		Workflow:    wf.id,
		Applied:     out.Applied,
		Decisions:   len(out.Decisions),
		Rescheduled: out.Rescheduled,
		Generation:  wf.tracker.Generation(),
		Done:        out.Done,
	}
	wf.mu.Lock()
	wf.reports++
	wf.mu.Unlock()
	if out.Rescheduled {
		ack.Trigger = out.Trigger.String()
		plan := livePlanDoc(wf, ack.Trigger)
		wf.mu.Lock()
		wf.plan = plan
		wf.generation = plan.Generation
		wf.mu.Unlock()
		ack.Plan = plan
		if rec := sh.srv.recorder; rec != nil {
			rec.plan(sh.id, plan)
		}
		wf.append(m, wire.Event{
			Kind: "plan", Time: wf.tracker.Clock(), Trigger: ack.Trigger,
			Generation: plan.Generation, Makespan: plan.Makespan,
		})
	} else if gen := wf.tracker.Generation(); gen > wf.ackedGen {
		// A cross-workflow contention reschedule changed the plan since
		// this enactor last heard: piggyback the newer plan on the ack so
		// it is adopted without an extra round trip.
		wf.mu.Lock()
		plan := wf.plan
		wf.mu.Unlock()
		ack.Rescheduled = true
		ack.Trigger = plan.Trigger
		ack.Plan = plan
		ack.Generation = plan.Generation
	}
	wf.ackedGen = wf.tracker.Generation()
	// Count the reservations this batch released before finishLive tears
	// the tracker's grid state down.
	released := 0
	if wf.gridRef != nil {
		for _, ev := range c.report.Events[:out.Applied] {
			if ev.Kind == wire.ReportJobFinished {
				released++
			}
		}
	}
	gref := wf.gridRef
	// Journal the post-apply state (with this batch's history deltas)
	// even when the batch completes the run: the deltas must reach the
	// recovered tenant history, and the terminal record finishLive
	// journals supersedes the state record on replay.
	sh.walLogState(wf, out.Recorded)
	if out.Done {
		ack.Makespan = out.Makespan
		sh.finishLive(wf)
	}
	// StageEnact marks a plan generation reaching its enactor: this ack
	// carries one either because this batch's replan was adopted or as
	// the contention-generation piggyback.
	if t := sh.srv.tracer; t != nil && ack.Plan != nil {
		t.Emit(obs.Span{
			Stage: obs.StageEnact, Workflow: wf.id, Tenant: wf.tenant, Shard: sh.id,
			Parent: ingestID, Trigger: ack.Trigger, Generation: ack.Generation,
		}, 0)
	}
	ingestAct.End()
	c.reply <- cmdResult{ack: ack}
	// Cross-workflow trigger: freed capacity is a run-time event for
	// every survivor on the grid. Evaluated after the reply so the
	// reporter is not held behind its neighbours' replans. The survivors'
	// evaluate spans link back to this batch's ingest span — the span of
	// the releasing workflow's finish report, the causal edge.
	if gref != nil && released > 0 {
		sh.notifyGrid(gref, wf.id, ingestID)
	}
}

// applyUpgrade runs the slow half of a fast-path admission on the
// worker goroutine: one full-policy re-evaluation (TriggerUpgrade — the
// feedback layer forces the non-incremental path for it). Adoption
// follows the ordinary plan-bump plumbing, so the enactor picks the
// upgraded plan up exactly like a contention reschedule: from the
// generation piggyback on its next report ack, or a plan re-fetch.
// Counted as upgraded whether or not the evaluation adopts — the
// planning debt is paid by the evaluation, and a greedy plan the full
// policy cannot beat owes nothing further.
func (sh *shard) applyUpgrade(wf *workflow) {
	m := sh.srv.metrics
	if wf.upgraded || wf.tracker == nil || wf.tracker.Done() || sh.live[wf.id] == nil {
		return
	}
	wf.upgraded = true
	if ci, ok := admission.ClassIndex(wf.class); ok {
		m.admUpgraded[ci].Add(1)
	}
	out := wf.tracker.Reevaluate(planner.TriggerUpgrade)
	m.decisions.Add(uint64(len(out.Decisions)))
	for _, d := range out.Decisions {
		m.recordDecision(d)
		sh.emitDecisionSpans(wf, d, wf.rootSpan, 0, "")
		if rec := sh.srv.recorder; rec != nil {
			rec.decision(sh.id, wf.id, d)
		}
		wd := wireDecision(d)
		wf.append(m, wire.Event{
			Kind: "decision", Time: d.Clock, Decision: &wd,
			Trigger: wd.Trigger, Arrived: wd.Arrived,
		})
	}
	if !out.Rescheduled {
		// The greedy plan survived (or the run drained past the point
		// a replan helps); still journal the paid-debt flag.
		sh.walLogState(wf, nil)
		return
	}
	m.reschedules.Add(1)
	m.reschedUpgrade.Add(1)
	plan := livePlanDoc(wf, planner.TriggerUpgrade.String())
	wf.mu.Lock()
	wf.plan = plan
	wf.generation = plan.Generation
	wf.mu.Unlock()
	if rec := sh.srv.recorder; rec != nil {
		rec.plan(sh.id, plan)
	}
	wf.append(m, wire.Event{
		Kind: "plan", Time: wf.tracker.Clock(), Trigger: plan.Trigger,
		Generation: plan.Generation, Makespan: plan.Makespan,
	})
	// The upgrade changed the plan and reservations; a crash before the
	// next report must restore the upgraded state.
	sh.walLogState(wf, nil)
}

// emitDecisionSpans files the retroactive evaluate span for one
// rescheduling evaluation — back-dated by the kernel-measured replan
// latency, so nothing runs on the measured path — and, on adoption, the
// adopt span beneath it. parent is the triggering ingest span;
// link/linkWf, when set, name the cross-workflow cause (the releasing
// workflow's ingest span, contention trigger).
func (sh *shard) emitDecisionSpans(wf *workflow, d planner.Decision, parent, link uint64, linkWf string) {
	t := sh.srv.tracer
	if t == nil {
		return
	}
	sp := obs.Span{
		Stage:        obs.StageEvaluate,
		Workflow:     wf.id,
		Tenant:       wf.tenant,
		Shard:        sh.id,
		Parent:       parent,
		Link:         link,
		LinkWorkflow: linkWf,
		Trigger:      d.Trigger.String(),
		Path:         d.Path,
		Cone:         d.ConeSize,
		Fallback:     d.FallbackReason,
		Adopted:      d.Adopted,
	}
	if wf.gridRef != nil {
		sp.Grid = wf.gridRef.name
	}
	evalID := t.Emit(sp, time.Duration(d.ElapsedMs*float64(time.Millisecond)))
	if d.Adopted {
		t.Emit(obs.Span{
			Stage: obs.StageAdopt, Workflow: wf.id, Tenant: wf.tenant, Grid: sp.Grid,
			Shard: sh.id, Parent: evalID, Trigger: sp.Trigger,
			Generation: wf.tracker.Generation(),
		}, 0)
	}
}

// finishLive completes a live run: terminal event, record release,
// metrics, retention.
func (sh *shard) finishLive(wf *workflow) {
	m := sh.srv.metrics
	tr := wf.tracker
	delete(sh.live, wf.id)
	m.liveResident.Add(-1)
	if wf.gridRef != nil {
		// Belt and braces: every per-job release already happened on the
		// finish reports, but a terminal record must never leave a claim
		// behind — a leaked reservation would shrink the grid for every
		// other tenant forever.
		wf.gridRef.ledger.Release(wf.id)
		wf.gridRef.detach(wf.id)
	}
	res := &planner.Result{
		Policy:          wf.pol.Name(),
		Makespan:        tr.Makespan(),
		InitialMakespan: tr.InitialMakespan(),
		Decisions:       tr.Decisions(),
	}
	wf.append(m, wire.Event{Kind: "done", Time: tr.Makespan(), Makespan: tr.Makespan()})
	wf.finish(res, nil)
	m.liveWorkflowDone(false)
	sh.srv.retire(wf.id)
	sh.walLogTerminal(wf)
	if rec := sh.srv.recorder; rec != nil {
		rec.done(sh.id, wf.id, StateDone, tr.Makespan(), "")
	}
}

// cancelLive force-fails every resident live run (drain deadline).
func (sh *shard) cancelLive(err error) {
	m := sh.srv.metrics
	if err == nil {
		err = fmt.Errorf("server shutting down")
	}
	for id, wf := range sh.live {
		delete(sh.live, id)
		m.liveResident.Add(-1)
		if wf.gridRef != nil {
			// Force-cancel releases the whole claim set; no survivor
			// notification — every resident of the shard is being killed.
			wf.gridRef.ledger.Release(id)
			wf.gridRef.detach(id)
		}
		wf.append(m, wire.Event{Kind: "failed", Error: err.Error()})
		wf.finish(nil, err)
		m.liveWorkflowDone(true)
		sh.srv.retire(id)
		sh.walLogTerminal(wf)
		if rec := sh.srv.recorder; rec != nil {
			rec.done(sh.id, id, StateFailed, 0, err.Error())
		}
	}
}

// livePlanDoc snapshots the tracker's current schedule as a wire.Plan.
// Called on the shard goroutine only.
func livePlanDoc(wf *workflow, trigger string) *wire.Plan {
	s := wf.tracker.Plan()
	as := s.Assignments()
	sort.Slice(as, func(i, j int) bool { return as[i].Job < as[j].Job })
	doc := &wire.Plan{
		Workflow:    wf.id,
		Generation:  wf.tracker.Generation(),
		Trigger:     trigger,
		Makespan:    s.Makespan(),
		Assignments: make([]wire.Assignment, len(as)),
	}
	for i, a := range as {
		doc.Assignments[i] = wire.Assignment{
			Job: int(a.Job), Resource: int(a.Resource), Start: a.Start, Finish: a.Finish,
		}
	}
	return doc
}

// historyFor returns (creating on demand) the tenant's Performance
// History Repository on this shard, refreshing its LRU position and
// evicting the coldest tenants beyond Config.MaxTenantHistories — a
// long-lived multi-tenant daemon's history memory stays bounded; a live
// workflow holds its repository by reference, so eviction only makes
// *future* workflows of that tenant start cold.
func (sh *shard) historyFor(tenant string) *history.Repository {
	sh.histMu.Lock()
	defer sh.histMu.Unlock()
	if sh.hist == nil {
		sh.hist = make(map[string]*history.Repository)
	}
	if r, ok := sh.hist[tenant]; ok {
		for i, t := range sh.histOrder {
			if t == tenant {
				sh.histOrder = append(append(sh.histOrder[:i:i], sh.histOrder[i+1:]...), tenant)
				break
			}
		}
		return r
	}
	r := history.New(0)
	sh.hist[tenant] = r
	sh.histOrder = append(sh.histOrder, tenant)
	if limit := sh.srv.cfg.MaxTenantHistories; limit > 0 {
		for len(sh.hist) > limit {
			oldest := sh.histOrder[0]
			sh.histOrder = sh.histOrder[1:]
			delete(sh.hist, oldest)
			sh.srv.metrics.historyEvicted.Add(1)
		}
	}
	return r
}

// historyTotals sums this shard's tenant repositories for /metrics.
func (sh *shard) historyTotals() (tenants, cells int) {
	sh.histMu.Lock()
	defer sh.histMu.Unlock()
	for _, r := range sh.hist {
		cells += r.Len()
	}
	return len(sh.hist), cells
}

// --- HTTP handlers ----------------------------------------------------

// dispatch routes a command to the workflow's shard and waits for the
// worker's reply, bailing out when the client disconnects or the daemon
// dies. ok is false when there is nothing left to write.
func (s *Server) dispatch(r *http.Request, wf *workflow, c shardCmd) (cmdResult, bool) {
	c.wf = wf
	c.reply = make(chan cmdResult, 1)
	unavailable := cmdResult{code: http.StatusServiceUnavailable, errMsg: "server is shutting down"}
	select {
	case s.shards[wf.shard].cmds <- c:
	case <-r.Context().Done():
		return cmdResult{}, false
	case <-s.runCtx.Done():
		return unavailable, true
	}
	select {
	case res := <-c.reply:
		return res, true
	case <-r.Context().Done():
		return cmdResult{}, false
	case <-s.runCtx.Done():
		return unavailable, true
	}
}

// checkLive resolves a live, non-terminal workflow or writes the error.
func (s *Server) checkLive(w http.ResponseWriter, r *http.Request) (*workflow, bool) {
	wf, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown workflow"})
		return nil, false
	}
	if !wf.live {
		writeJSON(w, http.StatusConflict, errorDoc{Error: "workflow is not in live mode"})
		return nil, false
	}
	wf.mu.Lock()
	state := wf.state
	wf.mu.Unlock()
	if state == StateDone || state == StateFailed {
		writeJSON(w, http.StatusConflict, errorDoc{Error: "workflow is terminal"})
		return nil, false
	}
	return wf, true
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	wf, ok := s.checkLive(w, r)
	if !ok {
		m.reportsRejected.Add(1)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		m.reportsRejected.Add(1)
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("read body: %v", err)})
		return
	}
	rep, err := wire.DecodeReport(data, 0)
	if err != nil {
		m.reportsRejected.Add(1)
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	var raw json.RawMessage
	if s.recorder != nil {
		raw = data
	}
	res, ok := s.dispatch(r, wf, shardCmd{report: rep, raw: raw})
	if !ok {
		return
	}
	if res.errMsg != "" {
		writeJSON(w, res.code, errorDoc{Error: res.errMsg})
		return
	}
	writeJSON(w, http.StatusOK, res.ack)
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	wf, ok := s.checkLive(w, r)
	if !ok {
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("read body: %v", err)})
		return
	}
	var q wire.WhatIfRequest
	if len(data) > 0 {
		if err := json.Unmarshal(data, &q); err != nil {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("decode what-if: %v", err)})
			return
		}
	}
	res, ok := s.dispatch(r, wf, shardCmd{whatif: &q})
	if !ok {
		return
	}
	if res.errMsg != "" {
		writeJSON(w, res.code, errorDoc{Error: res.errMsg})
		return
	}
	writeJSON(w, http.StatusOK, res.whatif)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	wf, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown workflow"})
		return
	}
	wf.mu.Lock()
	plan := wf.plan
	wf.mu.Unlock()
	if plan == nil {
		writeJSON(w, http.StatusConflict, errorDoc{Error: "workflow has no live plan (analytic mode, or not yet planned)"})
		return
	}
	// A plan fetch is an enactment: the enactor now holds this
	// generation. (Reading rootSpan here is ordered by wf.mu: it is
	// written before the enqueue, and plan above is non-nil only after
	// the worker — which dequeued after that write — published it.)
	if t := s.tracer; t != nil {
		t.Emit(obs.Span{
			Stage: obs.StageEnact, Workflow: wf.id, Tenant: wf.tenant,
			Shard: wf.shard, Parent: wf.rootSpan, Generation: plan.Generation,
		}, 0)
	}
	writeJSON(w, http.StatusOK, plan)
}
