package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"aheft/internal/rng"
	"aheft/internal/wire"
	"aheft/internal/workload"
)

// loadBodies pre-encodes n small distinct workflows for volume tests.
func loadBodies(t testing.TB, n int) [][]byte {
	t.Helper()
	r := rng.New(0x10AD)
	out := make([][]byte, n)
	for i := range out {
		sc, err := workload.RandomScenario(workload.RandomParams{
			Jobs: 30, CCR: 1, OutDegree: 0.3, Beta: 0.5,
		}, workload.GridParams{
			InitialResources: 4, ChangeInterval: 150, ChangePct: 0.25, MaxEvents: 3,
		}, r)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = encodeScenario(t, sc, "aheft", wire.Options{})
	}
	return out
}

// TestLoad500InflightZeroDrops is the acceptance smoke for the daemon:
// a 4-shard server holds ≥ 500 concurrently in-flight workflows (workers
// deliberately parked so the figure is deterministic, queues doing the
// holding), live SSE subscribers follow workflows through the release
// storm, and at the end every accepted workflow has completed with zero
// lost events (events_dropped == 0, every stream dense and terminal) and
// the drain is clean.
func TestLoad500InflightZeroDrops(t *testing.T) {
	const (
		shards = 4
		depth  = 256 // 4×256 queued + 4 running = 1028 ≥ target
		target = 800
	)
	srv := New(Config{Shards: shards, QueueDepth: depth})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	release := make(chan struct{})
	srv.execHook = func(*workflow) { <-release }

	bodies := loadBodies(t, 8)
	ids := make([]string, 0, target)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < target; i += 16 {
				sub, resp := submit(t, ts, bodies[i%len(bodies)])
				if resp.StatusCode != 202 {
					t.Errorf("submit %d: HTTP %d", i, resp.StatusCode)
					return
				}
				mu.Lock()
				ids = append(ids, sub.ID)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	m := getMetrics(t, ts)
	if m.Inflight < 500 {
		t.Fatalf("in-flight %d < 500 with workers parked", m.Inflight)
	}
	if m.Accepted != target {
		t.Fatalf("accepted %d of %d", m.Accepted, target)
	}

	// Attach live SSE followers to a sample of queued workflows before
	// releasing the workers, so the fan-out path runs under load too.
	type streamResult struct {
		id     string
		events []wire.Event
		err    error
	}
	streams := make(chan streamResult, 50)
	for i := 0; i < 50; i++ {
		id := ids[i*len(ids)/50]
		go func(id string) {
			res := streamResult{id: id}
			resp, err := ts.Client().Get(ts.URL + "/v1/workflows/" + id + "/events")
			if err != nil {
				res.err = err
				streams <- res
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
					var ev wire.Event
					if err := json.Unmarshal([]byte(data), &ev); err != nil {
						res.err = err
						break
					}
					res.events = append(res.events, ev)
				}
			}
			streams <- res
		}(id)
	}

	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Zero lost events: the global drop counter is zero and every
	// followed stream is dense and ends in "done".
	m = getMetrics(t, ts)
	if m.EventsDropped != 0 {
		t.Fatalf("events dropped under load: %d", m.EventsDropped)
	}
	if m.Completed != target || m.Failed != 0 || m.Inflight != 0 {
		t.Fatalf("post-drain metrics: %+v", m)
	}
	if m.InflightPeak < 500 {
		t.Fatalf("inflight peak %d < 500", m.InflightPeak)
	}
	for i := 0; i < 50; i++ {
		res := <-streams
		if res.err != nil {
			t.Fatalf("stream %s: %v", res.id, res.err)
		}
		if len(res.events) == 0 || res.events[len(res.events)-1].Kind != "done" {
			t.Fatalf("stream %s incomplete: %d events", res.id, len(res.events))
		}
		for j, ev := range res.events {
			if ev.Seq != j {
				t.Fatalf("stream %s: seq gap at %d", res.id, j)
			}
		}
	}
	for _, id := range ids {
		if st := getStatus(t, ts, id); st.State != StateDone {
			t.Fatalf("workflow %s: %s", id, st.State)
		}
	}
}

// TestLoadSustainedThroughput pushes a free-running burst (no parked
// workers) through a 4-shard daemon, with 429 backpressure honoured by
// resubmission, and checks conservation: everything accepted completes,
// nothing drops, the gauges return to zero.
func TestLoadSustainedThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	srv := New(Config{Shards: 4, QueueDepth: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bodies := loadBodies(t, 8)
	const total = 1500
	var accepted, retries int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < total; i += 32 {
				for {
					_, resp := submit(t, ts, bodies[i%len(bodies)])
					if resp.StatusCode == 202 {
						mu.Lock()
						accepted++
						mu.Unlock()
						break
					}
					if resp.StatusCode != 429 {
						t.Errorf("submit: HTTP %d", resp.StatusCode)
						return
					}
					mu.Lock()
					retries++
					mu.Unlock()
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	m := getMetrics(t, ts)
	if m.Completed != total || m.Failed != 0 || m.Inflight != 0 || m.EventsDropped != 0 {
		t.Fatalf("conservation violated (retries=%d): %+v", retries, m)
	}
	if m.ComputeMs.Count != total || m.ComputeMs.P99 <= 0 {
		t.Fatalf("latency window not populated: %+v", m.ComputeMs)
	}
	t.Logf("sustained burst: %d workflows, %d backpressure retries, compute p50=%.2fms p99=%.2fms",
		total, retries, m.ComputeMs.P50, m.ComputeMs.P99)
}
