// Package server is the aheftd scheduling daemon: a multi-tenant,
// network-facing front end over the kernel-backed planner engine. It
// ingests workflows in the versioned internal/wire format, routes each to
// one of N sharded session workers by consistent hash of the workflow ID
// (so per-run kernel scratch never crosses a goroutine), applies
// backpressure when a shard's bounded queue fills (429 + Retry-After),
// and streams every scheduling decision to subscribers over SSE.
//
//	POST /v1/workflows             submit a wire.Submission   → 202 wire.Submitted
//	GET  /v1/workflows/{id}        status/result              → 200 wire.Status
//	GET  /v1/workflows/{id}/events scheduling-decision stream → SSE of wire.Event
//	GET  /healthz                  liveness + drain state
//	GET  /metrics                  expvar-style counters (server.MetricsDoc)
//
// Shutdown is a graceful drain: intake stops (503), the workers finish
// every queued workflow, then the daemon exits; a deadline on the drain
// context force-cancels in-flight runs instead.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"aheft/internal/admission"
	datamodel "aheft/internal/data"
	"aheft/internal/feedback"
	"aheft/internal/obs"
	"aheft/internal/policy"
	"aheft/internal/wire"
)

// Config tunes the daemon.
type Config struct {
	// Shards is the number of session workers; 0 means 4.
	Shards int
	// QueueDepth bounds each shard's admission backlog: the total
	// accepted-but-unstarted submissions a shard holds, across all
	// tenants, before rejecting with 429 + a drain-derived Retry-After.
	// 0 means 256; negative disables the bound.
	QueueDepth int
	// TenantBacklog bounds one tenant's share of a shard's admission
	// backlog, so a single flooding tenant is told 429 long before it
	// can exhaust the shared backlog for everyone else. 0 or negative
	// disables the per-tenant bound (single-tenant deployments are
	// bounded by QueueDepth alone).
	TenantBacklog int
	// FastPathDepth is the two-speed planning threshold: when a shard's
	// admission backlog is at or past this depth, live adaptive-policy
	// submissions are admitted with a cheap greedy placement and the
	// full-policy plan is computed asynchronously afterwards (the
	// "upgrade" trigger). 0 means 8; negative disables the fast path.
	FastPathDepth int
	// GridShareCap bounds one tenant's share of a shared grid's
	// reservation ledger (0 < cap < 1): at plan adoption, speculative
	// claims past the cap are dropped while other tenants hold
	// reservations, so a greedy tenant cannot blanket a grid's future.
	// 0 (or out of range) disables the cap. Running (pinned) claims are
	// never dropped.
	GridShareCap float64
	// Limits bounds accepted submissions (zero value = wire.DefaultLimits).
	Limits wire.Limits
	// MaxBodyBytes caps the request body; 0 means 64 MiB.
	MaxBodyBytes int64
	// DefaultPolicy is used when a submission names none; "" means
	// "aheft".
	DefaultPolicy string
	// MaxRetained caps how many *terminal* workflow records are kept for
	// status/event queries; when the cap is exceeded the oldest-finished
	// records are evicted (their IDs then answer 404) so a long-lived
	// daemon's memory stays bounded. 0 means 16384; negative disables
	// eviction.
	MaxRetained int
	// MaxConcurrentIntake bounds how many submissions may be buffered
	// and decoded at once, capping intake memory at roughly
	// MaxConcurrentIntake × MaxBodyBytes regardless of client
	// concurrency (excess requests wait). 0 means 2×Shards, minimum 4.
	MaxConcurrentIntake int
	// VarianceThreshold is the default significant-variance gate for live
	// workflows whose submission names none: a measured runtime deviating
	// from the tenant's history EWMA by more than this relative amount
	// triggers a rescheduling evaluation. 0 means
	// feedback.DefaultVarianceThreshold.
	VarianceThreshold float64
	// MaxConeFrac is the incremental reschedule path's fallback
	// threshold: once a trigger's dirty cone exceeds this fraction of
	// the jobs being replanned, the kernel abandons the delta pass and
	// replans in full (reschedules_full_fallback in /metrics). 0 means
	// kernel.DefaultMaxConeFrac; 1 never falls back on cone size.
	MaxConeFrac float64
	// MaxTenantHistories caps, per shard, how many tenants' Performance
	// History Repositories are retained; beyond the cap the
	// least-recently-used tenant's history is evicted (its future
	// workflows start with cold estimates). 0 means 1024; negative
	// disables eviction.
	MaxTenantHistories int
	// MaxSharedGrids caps how many named shared grids may be registered
	// (each pins its pool and reservation ledger for the daemon's
	// lifetime). 0 means 256; negative disables the cap.
	MaxSharedGrids int
	// DataDir, when set, makes the daemon durable: each shard keeps a
	// write-ahead log plus periodic snapshots under DataDir/shard-<i>,
	// and Open replays them so a restarted daemon resumes its live
	// workflows mid-flight (see durable.go). Empty disables durability.
	DataDir string
	// WALSync is the fsync policy for the WAL: "always" (fsync every
	// append), "interval" (background fsync every WALSyncInterval — the
	// default), or "off" (leave flushing to the OS).
	WALSync string
	// WALSyncInterval is the background fsync cadence under
	// WALSync="interval"; 0 means durable.DefaultSyncInterval.
	WALSyncInterval time.Duration
	// SnapshotInterval is how often each shard snapshots its full state
	// and truncates its log; 0 means 30s.
	SnapshotInterval time.Duration
	// Tracing enables the causal span tracer (internal/obs): every
	// decision-path stage files a span, retained per workflow for
	// GET /v1/workflows/{id}/trace and rolled into /metrics stage
	// latencies.
	Tracing bool
	// TraceFile, when set, streams every completed span to this file as
	// OTLP-shaped JSON lines (implies Tracing).
	TraceFile string
	// TraceSpansPerWorkflow bounds the retained span log per workflow;
	// 0 means the obs default (512).
	TraceSpansPerWorkflow int
	// RecordDir, when set, turns on the deterministic flight recorder:
	// each shard appends every external input it processes (submissions,
	// reports, grid registrations) plus every output it emits (decisions,
	// plan generations, terminals) to RecordDir/record-shard-<i>.wal.
	// internal/replay re-drives such a recording through a fresh daemon
	// and asserts a bit-identical output sequence.
	RecordDir string
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.FastPathDepth == 0 {
		c.FastPathDepth = 8
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.DefaultPolicy == "" {
		c.DefaultPolicy = "aheft"
	}
	if c.MaxRetained == 0 {
		c.MaxRetained = 16384
	}
	if c.MaxConcurrentIntake <= 0 {
		c.MaxConcurrentIntake = 2 * c.Shards
		if c.MaxConcurrentIntake < 4 {
			c.MaxConcurrentIntake = 4
		}
	}
	if c.VarianceThreshold <= 0 {
		c.VarianceThreshold = feedback.DefaultVarianceThreshold
	}
	if c.MaxTenantHistories == 0 {
		c.MaxTenantHistories = 1024
	}
	if c.MaxSharedGrids == 0 {
		c.MaxSharedGrids = 256
	}
	if c.WALSync == "" {
		c.WALSync = "interval"
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = 30 * time.Second
	}
	return c
}

// Server is the daemon core, independent of the listener: cmd/aheftd
// mounts Handler on an http.Server, tests mount it on httptest.
type Server struct {
	cfg     Config
	metrics *Metrics
	shards  []*shard
	mux     *http.ServeMux
	intake  chan struct{} // bounds concurrently buffered/decoded submissions

	runCtx    context.Context // cancelling force-aborts in-flight runs
	cancelRun context.CancelFunc
	workers   sync.WaitGroup

	// submitMu orders submissions against drain: enqueues hold it shared,
	// Shutdown takes it exclusively to flip draining and close the
	// queues, so no send can race a close.
	submitMu sync.RWMutex
	draining bool

	// Shared-grid registry (see grids.go).
	gridMu sync.RWMutex
	grids  map[string]*sharedGrid

	mu       sync.RWMutex
	wfs      map[string]*workflow
	retained []string // terminal workflow IDs in finish order, for eviction
	seq      uint64

	// execHook, when non-nil, runs at the start of every workflow
	// execution. Tests use it to hold a worker in place and exercise
	// backpressure deterministically.
	execHook func(*workflow)

	// Durability (set by Open when Config.DataDir is non-empty).
	recoveredWfs uint64    // live workflows restored by the last recovery
	recoveryMs   float64   // wall time of the last recovery
	walFinal     sync.Once // final snapshot + store close on Shutdown

	// Observability (set by Open; see obs.go wiring and record.go).
	tracer    *obs.Tracer // nil when Config.Tracing is off
	traceFile *os.File    // OTLP sink backing file (nil without TraceFile)
	recorder  *recorder   // nil when Config.RecordDir is empty
	obsFinal  sync.Once   // trailer + flush on Shutdown
}

// New builds and starts a daemon core: the shard workers are running
// when New returns. It panics on error, which only durable
// configurations (Config.DataDir set) can produce — use Open for those.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open builds a daemon core and, when Config.DataDir is set, replays the
// write-ahead logs and snapshots found there before any worker starts:
// when Open returns, recovered live workflows are resident on their
// shards with their current plans and feedback state, shared-grid
// ledgers are reassembled, and pending submissions are re-queued. The
// replay runs strictly before the shard goroutines exist, so recovery
// touches trackers under the same single-goroutine discipline the
// workers follow (via happens-before of the goroutine start).
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		metrics:   NewMetrics(),
		intake:    make(chan struct{}, cfg.MaxConcurrentIntake),
		runCtx:    ctx,
		cancelRun: cancel,
		grids:     make(map[string]*sharedGrid),
		wfs:       make(map[string]*workflow),
	}
	tenantBacklog := cfg.TenantBacklog
	if tenantBacklog <= 0 {
		tenantBacklog = -1 // server semantics: unset means unbounded
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			id:  i,
			srv: s,
			adm: admission.New(admission.Config{
				TotalBacklog:     cfg.QueueDepth,
				PerTenantBacklog: tenantBacklog,
				FastPathDepth:    cfg.FastPathDepth,
			}),
			cmds: make(chan shardCmd, 16),
			live: make(map[string]*workflow),
		}
		s.shards = append(s.shards, sh)
	}
	if cfg.Tracing || cfg.TraceFile != "" {
		topts := obs.Options{MaxSpansPerWorkflow: cfg.TraceSpansPerWorkflow}
		if cfg.TraceFile != "" {
			f, err := os.Create(cfg.TraceFile)
			if err != nil {
				cancel()
				return nil, fmt.Errorf("server: trace file: %w", err)
			}
			s.traceFile = f
			topts.Sink = f
		}
		s.tracer = obs.New(topts)
	}
	if cfg.RecordDir != "" {
		rec, err := openRecorder(cfg.RecordDir, cfg, s.metrics)
		if err != nil {
			cancel()
			if s.traceFile != nil {
				s.traceFile.Close()
			}
			return nil, err
		}
		s.recorder = rec
	}
	if cfg.DataDir != "" {
		if err := s.recoverState(); err != nil {
			cancel()
			s.finalizeObs(false)
			return nil, err
		}
	}
	for _, sh := range s.shards {
		s.workers.Add(1)
		go sh.run()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workflows", s.handleSubmit)
	mux.HandleFunc("GET /v1/workflows/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/workflows/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/workflows/{id}/plan", s.handlePlan)
	mux.HandleFunc("GET /v1/workflows/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/workflows/{id}/report", s.handleReport)
	mux.HandleFunc("POST /v1/workflows/{id}/whatif", s.handleWhatIf)
	mux.HandleFunc("PUT /v1/grids/{name}", s.handleGridPut)
	mux.HandleFunc("GET /v1/grids/{name}", s.handleGridGet)
	mux.HandleFunc("GET /v1/grids", s.handleGridList)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthzV1)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the counter set (tests and embedding callers).
func (s *Server) Metrics() *Metrics { return s.metrics }

// MetricsSnapshot assembles the current /metrics document, including the
// live per-shard queue depths and the aggregated tenant-history gauges.
func (s *Server) MetricsSnapshot() MetricsDoc {
	depth := make([]int, len(s.shards))
	tenants, cells := 0, 0
	adm := AdmissionGauges{PerTenant: make(map[string]int)}
	for i, sh := range s.shards {
		st := sh.adm.Stats()
		depth[i] = st.Total
		for tenant, d := range st.PerTenant {
			adm.PerTenant[tenant] += d
		}
		adm.DrainRate += st.DrainRate
		t, c := sh.historyTotals()
		tenants += t
		cells += c
	}
	grids, reservations, transfers := s.gridTotals()
	var d DurabilityStats
	for _, sh := range s.shards {
		if sh.wal != nil {
			a, b, sn := sh.wal.store.Counters()
			d.WALAppends += a
			d.WALBytes += b
			d.Snapshots += sn
		}
	}
	d.Recovered = s.recoveredWfs
	d.RecoveryMs = s.recoveryMs
	var o ObsStats
	if s.tracer != nil {
		o.Spans, o.Dropped = s.tracer.Totals()
		o.Stages = s.tracer.StageSummary()
	}
	return s.metrics.snapshot(depth, tenants, cells, grids, reservations, transfers, adm, d, o)
}

// Shutdown drains the daemon: it stops intake (further submissions get
// 503), lets the workers finish every queued workflow, and returns nil on
// a clean drain. If ctx expires first, in-flight and queued runs are
// force-cancelled and ctx's error is returned. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.submitMu.Lock()
	if !s.draining {
		s.draining = true
		for _, sh := range s.shards {
			sh.adm.Close()
		}
	}
	s.submitMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancelRun()
		s.finalizeWAL()
		s.finalizeObs(true)
		return nil
	case <-ctx.Done():
		s.cancelRun()
		<-done
		s.finalizeWAL()
		// Force-cancelled runs cut their record streams mid-decision; the
		// trailer marks the recording unclean so replay refuses it with a
		// diagnostic instead of diverging.
		s.finalizeObs(false)
		return ctx.Err()
	}
}

// finalizeObs writes the record-stream trailers and flushes the trace
// sink. Runs once, after every worker has exited (all worker-side
// appends are done).
func (s *Server) finalizeObs(clean bool) {
	s.obsFinal.Do(func() {
		if s.recorder != nil {
			s.recorder.finalize(clean)
		}
		if s.tracer != nil {
			s.tracer.Close()
		}
		if s.traceFile != nil {
			s.traceFile.Close()
		}
	})
}

// finalizeWAL writes one last snapshot per shard and closes the stores.
// Runs once, after every worker has exited, so touching shard state here
// is safe. A Crash()ed server's stores are disabled, making this a no-op.
func (s *Server) finalizeWAL() {
	s.walFinal.Do(func() {
		for _, sh := range s.shards {
			if sh.wal == nil {
				continue
			}
			sh.snapshot()
			sh.wal.store.Close()
		}
	})
}

// errorDoc is the JSON body of every non-2xx API response.
type errorDoc struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	m.submissions.Add(1)
	// Cheap rejections first: a request the daemon cannot accept is
	// bounced before its (up to MaxBodyBytes) body is read or decoded,
	// so backpressure bounds intake memory and CPU, not just the queues.
	// The ID is daemon-assigned, so the target shard is known pre-decode;
	// the post-decode enqueue below remains the authoritative check —
	// this one just refuses the obviously futile work early.
	s.submitMu.RLock()
	draining := s.draining
	s.submitMu.RUnlock()
	if draining {
		m.rejectedDrain.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: "server is draining"})
		return
	}
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("wf-%08d", s.seq)
	s.mu.Unlock()
	shardID := shardFor(id, len(s.shards))
	// The id-hashed shard is only a guess until the body is decoded (a
	// shared-grid submission re-routes to its grid's shard), so the
	// pre-decode fast reject fires only when *every* admission queue is
	// saturated — then no routing could succeed and reading the body is
	// futile. Tenant and class are unknown pre-decode, so the advice is
	// the guessed shard's aggregate drain estimate.
	allFull := true
	for _, sh := range s.shards {
		if !sh.adm.Saturated() {
			allFull = false
			break
		}
	}
	if allFull {
		m.rejectedFull.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.shards[shardID].adm.RetryAfter("", "")))
		writeJSON(w, http.StatusTooManyRequests, errorDoc{Error: fmt.Sprintf("shard %d admission queue full", shardID)})
		return
	}
	// The intake semaphore caps how many request bodies are buffered and
	// decoded at once: without it, N concurrent large POSTs would hold
	// N × MaxBodyBytes before any queue-full rejection could fire.
	// Waiting here holds only the connection and its goroutine.
	select {
	case s.intake <- struct{}{}:
		defer func() { <-s.intake }()
	case <-r.Context().Done():
		// Client gave up while waiting for an intake slot. Counted so
		// the /metrics identity submissions = accepted + rejected_* +
		// abandoned_intake still reconciles.
		m.abandonedIntake.Add(1)
		return
	}

	// The intake span covers body read, decode/validate and registration.
	// It must end — and the queue span must open — strictly before the
	// enqueue: the worker can pick the workflow up the instant the send
	// lands, and it reads rootSpan/queueAct without synchronisation
	// beyond the channel's happens-before.
	intakeAct := s.tracer.Start(obs.StageIntake, id)
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		intakeAct.Fail(err)
		m.rejectedInvalid.Add(1)
		code := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			code = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, code, errorDoc{Error: fmt.Sprintf("read body: %v", err)})
		return
	}
	wf, _, err := s.buildWorkflow(id, data)
	if err != nil {
		intakeAct.Fail(err)
		m.rejectedInvalid.Add(1)
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	if s.recorder != nil {
		// Retained until the shard worker records it in processing order
		// (see record.go); data is not referenced after this function.
		wf.recBody = data
	}
	// Register before enqueueing so the ID resolves the instant the
	// client can know it; unregister if the shard refuses the workflow.
	s.mu.Lock()
	s.wfs[id] = wf
	s.mu.Unlock()

	s.submitMu.RLock()
	if s.draining {
		s.submitMu.RUnlock()
		intakeAct.Fail(fmt.Errorf("server is draining"))
		s.reject(wf, fmt.Errorf("server is draining"))
		m.rejectedDrain.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: "server is draining"})
		return
	}
	if intakeAct != nil {
		intakeAct.Span.Shard = wf.shard
		intakeAct.Span.Tenant = wf.tenant
		if wf.gridRef != nil {
			intakeAct.Span.Grid = wf.gridRef.name
		}
		wf.rootSpan = intakeAct.End()
		wf.queueAct = s.tracer.Start(obs.StageQueue, id)
		wf.queueAct.Span.Parent = wf.rootSpan
		wf.queueAct.Span.Shard = wf.shard
	}
	// Reserve the in-flight slot *before* the enqueue: a fast worker may
	// dequeue and even finish the workflow the instant it is queued, and
	// counting afterwards would let the gauge go transiently negative
	// and the peak undercount real concurrency. A rejected enqueue rolls
	// the reservation back.
	m.inflightReserve()
	// Journal the accepted submission (and its admission credentials)
	// before the enqueue, so a crash in the window between accept and
	// start replays it into the fair queue as pending. A refused enqueue
	// voids it with a reject record below.
	s.shards[wf.shard].walLogSubmission(id, data, wf.tenant, wf.class, wf.weight)
	ci, _ := admission.ClassIndex(wf.class)
	err = s.shards[wf.shard].adm.Enqueue(admission.Item{
		ID: id, Tenant: wf.tenant, Class: wf.class, Weight: wf.weight, Value: wf,
	})
	var backlog *admission.BacklogError
	switch {
	case err == nil:
		m.accepted.Add(1)
		m.admAdmitted[ci].Add(1)
		m.eventsEmitted.Add(1) // the seeded "submitted" event
		s.submitMu.RUnlock()
	case errors.As(err, &backlog):
		// Bounded backlog: backpressure, not buffering. The rejection is
		// honest per-tenant — a flooding tenant hits its own bound while
		// others keep landing — and Retry-After names the time for this
		// tenant's backlog to drain at its weighted share of the
		// measured drain rate.
		s.submitMu.RUnlock()
		m.inflightRelease()
		s.shards[wf.shard].walLogReject(id)
		wf.queueAct.Fail(err)
		s.reject(wf, err)
		m.rejectedFull.Add(1)
		m.admRejected[ci].Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(backlog.RetryAfter))
		writeJSON(w, http.StatusTooManyRequests, errorDoc{Error: err.Error()})
		return
	default:
		// The controller refused for a non-backlog reason: closed by a
		// drain that raced past the check above, or an invalid class
		// that slipped validation.
		s.submitMu.RUnlock()
		m.inflightRelease()
		s.shards[wf.shard].walLogReject(id)
		wf.queueAct.Fail(err)
		s.reject(wf, err)
		m.rejectedDrain.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, wire.Submitted{ID: id, Shard: wf.shard, State: StateQueued})
}

// buildWorkflow decodes and validates a raw submission body into a
// registered-shape workflow record: policy resolution, live-mode
// checks, tenant and variance defaults, shared-grid routing. It is the
// one constructor both the submit path and crash recovery use, so a
// replayed body rebuilds exactly the record the original request built.
func (s *Server) buildWorkflow(id string, data []byte) (*workflow, *sharedGrid, error) {
	sub, err := wire.DecodeSubmission(data, s.cfg.Limits)
	if err != nil {
		return nil, nil, err
	}
	polName := sub.Policy
	if polName == "" {
		polName = s.cfg.DefaultPolicy
	}
	pol, err := policy.Get(polName)
	if err != nil {
		return nil, nil, err
	}
	live := sub.Mode == wire.ModeLive
	if live && policy.IsJustInTime(pol) {
		// A just-in-time Plan is a dispatch simulation, not an enactable
		// schedule (see policy.JustInTime); a live client cannot execute
		// it.
		return nil, nil, fmt.Errorf("policy %q is just-in-time and cannot drive a live workflow", polName)
	}
	tenant := sub.Tenant
	if tenant == "" {
		tenant = "default"
	}
	varThr := sub.Options.VarianceThreshold
	if varThr <= 0 {
		varThr = s.cfg.VarianceThreshold
	}
	// Shared-grid attachment: resolve the named grid and re-route the
	// workflow to the grid's shard, so every workflow contending on one
	// grid plans on one goroutine against one ledger.
	var gref *sharedGrid
	shardID := shardFor(id, len(s.shards))
	poolSize := 0
	if sub.SharedGrid != "" {
		g, ok := s.gridLookup(sub.SharedGrid)
		if !ok {
			return nil, nil, fmt.Errorf("unknown shared grid %q (create it with PUT /v1/grids/%s)", sub.SharedGrid, sub.SharedGrid)
		}
		if sub.Comp.Resources() != g.pool.Size() {
			return nil, nil, fmt.Errorf("estimator table covers %d resources, grid %q has %d",
				sub.Comp.Resources(), sub.SharedGrid, g.pool.Size())
		}
		gref = g
		shardID = g.shard
		poolSize = g.pool.Size()
	} else {
		poolSize = sub.Pool.Size()
	}

	// Data-aware submission: bind the file catalog to the concrete pool
	// here, once, so the live tracker, the restore path, and the analytic
	// engine all plan under the same model. For shared-grid workflows this
	// is also where host references are range-checked against the grid's
	// universe (decode could not — it never sees the grid).
	var dm *datamodel.Model
	if sub.Files != nil {
		pool := sub.Pool
		if gref != nil {
			pool = gref.pool
		}
		dm, err = datamodel.NewModel(sub.Files, pool, sub.Graph, 0)
		if err != nil {
			return nil, nil, fmt.Errorf("bind file catalog: %w", err)
		}
	}

	wf := &workflow{
		id:        id,
		name:      sub.Name,
		shard:     shardID,
		sub:       sub,
		live:      live,
		tenant:    tenant,
		varThr:    varThr,
		class:     sub.Options.Class,
		weight:    sub.Options.Weight,
		gridRef:   gref,
		jobs:      sub.Graph.Len(),
		resources: poolSize,
		pol:       pol,
		opts: policy.Options{
			TieWindow:      sub.Options.TieWindow,
			NoInsertion:    sub.Options.NoInsertion,
			RestartRunning: sub.Options.RestartRunning,
			Eps:            sub.Options.Eps,
			MaxConeFrac:    s.cfg.MaxConeFrac,
			Data:           dm,
		},
		state:       StateQueued,
		submittedAt: time.Now(),
		// The log is seeded with the "submitted" event before the record
		// is published, so the stream ordering holds even though the
		// worker may append "started" the instant the enqueue lands. It
		// is counted in events_emitted only once the enqueue succeeds —
		// a rejected submission's log dies with the record and must not
		// move the published counter.
		events: []wire.Event{{Seq: 0, Kind: "submitted", Workflow: id}},
	}
	return wf, gref, nil
}

func (s *Server) forget(id string) {
	s.mu.Lock()
	delete(s.wfs, id)
	s.mu.Unlock()
}

// reject unwinds a workflow whose enqueue was refused: the record is
// unregistered (its seeded event log was never counted), and any
// subscriber that attached in the register→reject window is closed out
// instead of hanging on a live stream that will never finish.
func (s *Server) reject(wf *workflow, err error) {
	s.forget(wf.id)
	wf.finish(nil, err)
}

// retire records that a workflow reached a terminal state and evicts the
// oldest-finished records beyond the retention cap, so the registry —
// and with it the decoded submissions and event logs it pins — stays
// bounded over an arbitrarily long daemon lifetime.
func (s *Server) retire(id string) {
	limit := s.cfg.MaxRetained
	if limit < 0 {
		return
	}
	s.mu.Lock()
	s.retained = append(s.retained, id)
	for len(s.retained) > limit {
		// Trace memory has the same lifetime as status memory: an evicted
		// workflow's spans go with its record.
		s.tracer.Release(s.retained[0])
		delete(s.wfs, s.retained[0])
		s.retained = s.retained[1:]
		s.metrics.evicted.Add(1)
	}
	s.mu.Unlock()
}

func (s *Server) lookup(id string) (*workflow, bool) {
	s.mu.RLock()
	wf, ok := s.wfs[id]
	s.mu.RUnlock()
	return wf, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	wf, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown workflow"})
		return
	}
	writeJSON(w, http.StatusOK, wf.status())
}

// handleEvents streams the workflow's scheduling events as server-sent
// events: the full log replayed from Seq 0, then live until the workflow
// reaches a terminal state or the client disconnects. Because the replay
// snapshot and the live subscription are taken under one lock, the
// concatenated stream has dense Seq numbers except across events dropped
// for this subscriber's own slowness (counted in /metrics
// events_dropped) — a consumer detects that as a Seq gap and can re-GET
// the status/stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	wf, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown workflow"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorDoc{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	replay, live, cancel := wf.subscribe()
	defer cancel()
	for _, ev := range replay {
		if !writeSSE(w, ev) {
			return
		}
	}
	fl.Flush()
	if live == nil {
		return // already terminal: the replay was the whole stream
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return // workflow reached a terminal state
			}
			if !writeSSE(w, ev) {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, ev wire.Event) bool {
	data, err := json.Marshal(ev)
	if err != nil {
		return false
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data)
	return err == nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.submitMu.RLock()
	draining := s.draining
	s.submitMu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"shards":   len(s.shards),
		"draining": draining,
		"inflight": s.metrics.inflight.Load(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	doc := s.MetricsSnapshot()
	if wantsPrometheus(r) {
		writePrometheus(w, doc)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}
