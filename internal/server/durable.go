package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aheft/internal/admission"
	"aheft/internal/buildinfo"
	"aheft/internal/cost"
	"aheft/internal/durable"
	"aheft/internal/feedback"
	"aheft/internal/grid"
	"aheft/internal/history"
	"aheft/internal/wire"
)

// This file is the daemon's durability layer: a per-shard write-ahead
// log plus periodic snapshots covering everything a shard owns —
// accepted submissions, live trackers (plan, generation, execution
// progress), tenant performance histories, terminal records and
// shared-grid registrations. Each shard appends on its own paths (the
// submission path logs before enqueue; everything else appends from the
// shard's single worker goroutine), so the WAL adds one ordered write
// per state change and no new locking on the planning hot path. On
// startup, Open replays the newest snapshot plus the log tail: live
// workflows come back resident with their current plan and feedback
// state, shared-grid ledgers reassemble from their restored residents,
// pending submissions re-enqueue, and duplicate report replays are
// acked idempotently (see applyReport / feedback.AlreadyApplied).
//
// Record kinds (wire.WAL*): a submission logs its raw body before the
// enqueue; a reject voids it; a state record carries the workflow's
// full post-apply feedback.TrackerState plus that batch's history
// deltas and the event log; a terminal record freezes the final status;
// a grid record registers a shared grid. State records are snapshots of
// the tracker, not operations — replaying operations through Apply
// would re-run rescheduling evaluations whose outcomes depend on
// cross-workflow interleavings the log does not capture.

// walSubmission is the payload of a wire.WALSubmission record.
type walSubmission struct {
	ID   string          `json:"id"`
	Body json.RawMessage `json:"body"`
}

// walReject voids a logged submission whose enqueue was refused.
type walReject struct {
	ID string `json:"id"`
}

// walAdmission journals the admission decision for an accepted
// submission: the tenant, priority class and fair-queue weight it was
// admitted under. It rides beside the raw-body submission record so a
// crash restores queued-but-unplanned submissions into the fair queue
// with the same credentials — recovery must not re-litigate admission
// or let a tenant's flood re-enter ahead of its original position.
type walAdmission struct {
	ID     string  `json:"id"`
	Tenant string  `json:"tenant,omitempty"`
	Class  string  `json:"class,omitempty"`
	Weight float64 `json:"weight,omitempty"`
}

// walGrid registers a shared grid (raw wire.GridSpec body).
type walGrid struct {
	Name string          `json:"name"`
	Spec json.RawMessage `json:"spec"`
}

// walState is one live workflow's durable state: the tracker export,
// the enactor-visible plan/ack bookkeeping, the event log, and the
// history observations the batch that produced this record fed in.
type walState struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	// Body is the raw submission, carried in snapshots only (WAL state
	// records join it from the earlier submission record).
	Body        json.RawMessage         `json:"body,omitempty"`
	AckedGen    int                     `json:"acked_gen"`
	Reports     int                     `json:"reports"`
	PlanTrigger string                  `json:"plan_trigger"`
	FastPath    bool                    `json:"fast_path,omitempty"`
	Upgraded    bool                    `json:"upgraded,omitempty"`
	State       *feedback.TrackerState  `json:"state"`
	Deltas      []feedback.HistoryDelta `json:"deltas,omitempty"`
	Events      []wire.Event            `json:"events,omitempty"`
}

// walTerminal freezes a workflow's final status and event log.
type walTerminal struct {
	ID     string       `json:"id"`
	Status wire.Status  `json:"status"`
	Plan   *wire.Plan   `json:"plan,omitempty"`
	Events []wire.Event `json:"events,omitempty"`
}

// tenantHistory is one tenant's repository in a shard snapshot.
type tenantHistory struct {
	Tenant string         `json:"tenant"`
	Alpha  float64        `json:"alpha"`
	Cells  []history.Cell `json:"cells"`
}

// shardSnapshot is the periodic full-state document that truncates the
// shard's log.
type shardSnapshot struct {
	V          int             `json:"v"`
	Seq        uint64          `json:"seq"`
	Grids      []walGrid       `json:"grids,omitempty"`
	Pending    []walSubmission `json:"pending,omitempty"`
	Admissions []walAdmission  `json:"admissions,omitempty"`
	Live       []walState      `json:"live,omitempty"`
	Terminal   []walTerminal   `json:"terminal,omitempty"`
	Tenants    []tenantHistory `json:"tenants,omitempty"`
}

// shardWAL is one shard's durability state: the append store plus the
// raw-submission mirrors the snapshot needs (a queued workflow sits in
// a channel and cannot be enumerated; a live tracker does not retain
// its raw body). The mutex orders appends against snapshot assembly and
// rotation, so no record can land in a segment the rotation is about to
// truncate without being covered by the snapshot.
type shardWAL struct {
	store *durable.Shard

	mu        sync.Mutex
	pend      map[string]json.RawMessage // accepted, not yet started
	pendOrder []string                   // arrival order (lazily compacted)
	admit     map[string]walAdmission    // admission credentials, mirrors pend
	bodies    map[string]json.RawMessage // live residents' raw submissions
}

func newShardWAL(store *durable.Shard) *shardWAL {
	return &shardWAL{
		store:  store,
		pend:   make(map[string]json.RawMessage),
		admit:  make(map[string]walAdmission),
		bodies: make(map[string]json.RawMessage),
	}
}

// append writes one record; callers hold w.mu. A failed append degrades
// durability, not availability: the daemon keeps serving and the error
// is counted and logged.
func (w *shardWAL) append(m *Metrics, kind string, payload any) {
	if _, err := w.store.Append(kind, payload); err != nil {
		m.walErrors.Add(1)
		log.Printf("aheftd: wal append (%s): %v", kind, err)
	}
}

// rawPair hand-encodes {key: name, bodyKey: body} with the raw body
// embedded verbatim. Submission and grid-spec bodies are large and were
// already validated when decoded off the wire; letting json.Marshal
// re-validate and re-compact them on every append is the single biggest
// cost on the durable submission path, so the two raw-body record kinds
// build their payloads by hand. Decodes with the ordinary struct tags.
func rawPair(key, name, bodyKey string, body json.RawMessage) json.RawMessage {
	buf := make([]byte, 0, len(key)+len(name)+len(bodyKey)+len(body)+16)
	buf = append(buf, '{', '"')
	buf = append(buf, key...)
	buf = append(buf, '"', ':')
	buf = wire.AppendJSONString(buf, name)
	if len(body) > 0 {
		buf = append(buf, ',', '"')
		buf = append(buf, bodyKey...)
		buf = append(buf, '"', ':')
		buf = append(buf, body...)
	}
	return append(buf, '}')
}

// walLogSubmission mirrors and logs an accepted submission before its
// enqueue, so a crash between accept and start replays it as pending.
// The admission record lands in the same locked section, so no crash
// can observe a journalled body without its fair-queue credentials.
func (sh *shard) walLogSubmission(id string, body json.RawMessage, tenant, class string, weight float64) {
	w := sh.wal
	if w == nil {
		return
	}
	adm := walAdmission{ID: id, Tenant: tenant, Class: class, Weight: weight}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pend[id] = body
	w.pendOrder = append(w.pendOrder, id)
	w.admit[id] = adm
	w.append(sh.srv.metrics, wire.WALSubmission, rawPair("id", id, "body", body))
	w.append(sh.srv.metrics, wire.WALAdmission, adm)
}

// walLogReject voids a logged submission whose enqueue was refused.
func (sh *shard) walLogReject(id string) {
	w := sh.wal
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.pend, id)
	delete(w.admit, id)
	w.append(sh.srv.metrics, wire.WALReject, walReject{ID: id})
}

// walStateDoc assembles the workflow's current durable state. Shard
// goroutine only (it reads the tracker).
func (sh *shard) walStateDoc(wf *workflow, deltas []feedback.HistoryDelta) *walState {
	wf.mu.Lock()
	trigger := ""
	if wf.plan != nil {
		trigger = wf.plan.Trigger
	}
	reports := wf.reports
	events := append([]wire.Event(nil), wf.events...)
	wf.mu.Unlock()
	return &walState{
		ID:          wf.id,
		Tenant:      wf.tenant,
		AckedGen:    wf.ackedGen,
		Reports:     reports,
		PlanTrigger: trigger,
		FastPath:    wf.fastPath,
		Upgraded:    wf.upgraded,
		State:       wf.tracker.ExportState(),
		Deltas:      deltas,
		Events:      events,
	}
}

// walLogState journals a live workflow's post-apply state (and, on the
// first call after startLive, promotes its raw body from pending to
// live). Shard goroutine only.
func (sh *shard) walLogState(wf *workflow, deltas []feedback.HistoryDelta) {
	w := sh.wal
	if w == nil {
		return
	}
	doc := sh.walStateDoc(wf, deltas)
	w.mu.Lock()
	defer w.mu.Unlock()
	if b, ok := w.pend[wf.id]; ok {
		delete(w.pend, wf.id)
		delete(w.admit, wf.id)
		w.bodies[wf.id] = b
	}
	w.append(sh.srv.metrics, wire.WALState, doc)
}

// walLogTerminal journals a workflow's terminal record and drops its
// raw-body mirrors. Called after finish(), so status() is final.
func (sh *shard) walLogTerminal(wf *workflow) {
	w := sh.wal
	if w == nil {
		return
	}
	wf.mu.Lock()
	events := append([]wire.Event(nil), wf.events...)
	plan := wf.plan
	wf.mu.Unlock()
	doc := walTerminal{ID: wf.id, Status: wf.status(), Plan: plan, Events: events}
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.pend, wf.id)
	delete(w.admit, wf.id)
	delete(w.bodies, wf.id)
	w.append(sh.srv.metrics, wire.WALTerminal, doc)
}

// walLogGrid journals a shared-grid registration on its owning shard.
func (s *Server) walLogGrid(g *sharedGrid) {
	sh := s.shards[g.shard]
	w := sh.wal
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.append(s.metrics, wire.WALGrid, rawPair("name", g.name, "spec", g.raw))
}

// snapshot writes the shard's full state and truncates its log. It must
// run where tracker access is safe: the shard's worker goroutine (the
// periodic tick), or before workers start / after they exit (recovery
// and shutdown snapshots).
func (sh *shard) snapshot() {
	w := sh.wal
	if w == nil {
		return
	}
	s := sh.srv
	doc := shardSnapshot{V: wire.Version}

	s.mu.RLock()
	doc.Seq = s.seq
	retained := append([]string(nil), s.retained...)
	s.mu.RUnlock()

	s.gridMu.RLock()
	for name, g := range s.grids {
		if g.shard == sh.id {
			doc.Grids = append(doc.Grids, walGrid{Name: name, Spec: g.raw})
		}
	}
	s.gridMu.RUnlock()
	sort.Slice(doc.Grids, func(i, j int) bool { return doc.Grids[i].Name < doc.Grids[j].Name })

	liveIDs := make([]string, 0, len(sh.live))
	for id := range sh.live {
		liveIDs = append(liveIDs, id)
	}
	sort.Strings(liveIDs)
	for _, id := range liveIDs {
		doc.Live = append(doc.Live, *sh.walStateDoc(sh.live[id], nil))
	}

	for _, id := range retained {
		wf, ok := s.lookup(id)
		if !ok || wf.shard != sh.id {
			continue
		}
		wf.mu.Lock()
		events := append([]wire.Event(nil), wf.events...)
		plan := wf.plan
		wf.mu.Unlock()
		doc.Terminal = append(doc.Terminal, walTerminal{ID: id, Status: wf.status(), Plan: plan, Events: events})
	}

	sh.histMu.Lock()
	for tenant, repo := range sh.hist {
		doc.Tenants = append(doc.Tenants, tenantHistory{Tenant: tenant, Alpha: repo.Alpha(), Cells: repo.Export()})
	}
	sh.histMu.Unlock()
	sort.Slice(doc.Tenants, func(i, j int) bool { return doc.Tenants[i].Tenant < doc.Tenants[j].Tenant })

	w.mu.Lock()
	defer w.mu.Unlock()
	// Pending under the same lock as the rotation: a submission landing
	// after this point blocks on w.mu and lands in the fresh segment.
	order := w.pendOrder[:0]
	for _, id := range w.pendOrder {
		b, ok := w.pend[id]
		if !ok {
			continue
		}
		order = append(order, id)
		doc.Pending = append(doc.Pending, walSubmission{ID: id, Body: b})
		if adm, ok := w.admit[id]; ok {
			doc.Admissions = append(doc.Admissions, adm)
		}
	}
	w.pendOrder = order
	for i := range doc.Live {
		doc.Live[i].Body = w.bodies[doc.Live[i].ID]
	}
	data, err := json.Marshal(doc)
	if err != nil {
		log.Printf("aheftd: shard %d snapshot marshal: %v", sh.id, err)
		return
	}
	if err := w.store.Rotate(data); err != nil {
		sh.srv.metrics.walErrors.Add(1)
		log.Printf("aheftd: shard %d snapshot rotate: %v", sh.id, err)
	}
}

// Crash simulates a SIGKILL for recovery tests: every WAL store is
// frozen exactly as the disk would be at the kill instant (no flush, no
// final snapshot), then the workers are torn down. The Server is
// unusable afterwards; reopen the data directory with Open.
func (s *Server) Crash() {
	for _, sh := range s.shards {
		if sh.wal != nil {
			sh.wal.store.Disable()
		}
	}
	s.submitMu.Lock()
	if !s.draining {
		s.draining = true
		for _, sh := range s.shards {
			// Kill, not Close: queued submissions must NOT start — the
			// kill instant froze them in the WAL as pending, and starting
			// them now would race the teardown. They come back on reopen.
			sh.adm.Kill()
		}
	}
	s.submitMu.Unlock()
	s.cancelRun()
	s.workers.Wait()
}

// --- recovery ---------------------------------------------------------

// recoveredWorkflow accumulates one workflow's records across the
// snapshot and the log tail.
type recoveredWorkflow struct {
	id       string
	body     json.RawMessage
	adm      *walAdmission // fair-queue credentials, if journalled
	state    *walState     // latest wins
	terminal *walTerminal
	rejected bool
	order    int // arrival order for pending re-enqueue
}

// recoverState replays every shard directory under dataDir into the
// (not yet started) server: stores are opened (repairing torn tails),
// snapshots and log tails merged, and the registry, shards, grids,
// tenant histories and live trackers rebuilt. Orphan directories from a
// larger previous shard count are folded in and removed. Must run
// before the shard goroutines start.
func (s *Server) recoverState() error {
	start := time.Now()
	dataDir := s.cfg.DataDir
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return fmt.Errorf("server: data dir: %w", err)
	}
	policy, err := durable.ParseSyncPolicy(s.cfg.WALSync)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}

	// Every existing shard-<i> directory, plus the 0..N-1 range the
	// current configuration owns.
	dirs := map[int]bool{}
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		return fmt.Errorf("server: data dir: %w", err)
	}
	for _, e := range entries {
		var idx int
		if n, _ := fmt.Sscanf(e.Name(), "shard-%d", &idx); n == 1 && e.IsDir() && idx >= 0 {
			dirs[idx] = true
		}
	}
	for i := range s.shards {
		dirs[i] = true
	}
	idxs := make([]int, 0, len(dirs))
	for i := range dirs {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)

	wfs := map[string]*recoveredWorkflow{}
	gridSpecs := map[string]json.RawMessage{}
	repos := map[int]map[string]*history.Repository{} // target shard -> tenant
	var terminals []walTerminal
	var maxSeq uint64
	orderCounter := 0

	repoFor := func(shardIdx int, tenant string, alpha float64) *history.Repository {
		byTenant := repos[shardIdx]
		if byTenant == nil {
			byTenant = map[string]*history.Repository{}
			repos[shardIdx] = byTenant
		}
		r := byTenant[tenant]
		if r == nil {
			r = history.New(alpha)
			byTenant[tenant] = r
		}
		return r
	}
	wfFor := func(id string) *recoveredWorkflow {
		rw := wfs[id]
		if rw == nil {
			rw = &recoveredWorkflow{id: id, order: orderCounter}
			orderCounter++
			wfs[id] = rw
		}
		if n := parseWorkflowSeq(id); n > maxSeq {
			maxSeq = n
		}
		return rw
	}

	var orphanDirs []string
	for _, idx := range idxs {
		dir := filepath.Join(dataDir, fmt.Sprintf("shard-%d", idx))
		var rec *durable.Recovered
		if idx < len(s.shards) {
			store, r, err := durable.Open(dir, policy, s.cfg.WALSyncInterval)
			if err != nil {
				return fmt.Errorf("server: shard %d wal: %w", idx, err)
			}
			s.shards[idx].wal = newShardWAL(store)
			rec = r
		} else {
			r, err := durable.Load(dir)
			if err != nil {
				return fmt.Errorf("server: orphan shard %d wal: %w", idx, err)
			}
			rec = r
			orphanDirs = append(orphanDirs, dir)
		}
		target := idx % len(s.shards)

		if rec.Snapshot != nil {
			var snap shardSnapshot
			if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
				return fmt.Errorf("server: shard %d snapshot: %w", idx, err)
			}
			if snap.Seq > maxSeq {
				maxSeq = snap.Seq
			}
			for _, g := range snap.Grids {
				if _, ok := gridSpecs[g.Name]; !ok {
					gridSpecs[g.Name] = g.Spec
				}
			}
			for _, t := range snap.Tenants {
				repoFor(target, t.Tenant, t.Alpha).Import(t.Cells)
			}
			for _, p := range snap.Pending {
				rw := wfFor(p.ID)
				rw.body = p.Body
			}
			for i := range snap.Admissions {
				a := snap.Admissions[i]
				wfFor(a.ID).adm = &a
			}
			for i := range snap.Live {
				st := snap.Live[i]
				rw := wfFor(st.ID)
				rw.body = st.Body
				rw.state = &st
			}
			for _, t := range snap.Terminal {
				rw := wfFor(t.ID)
				rw.terminal = &t
				terminals = append(terminals, t)
			}
		}
		for _, r := range rec.Records {
			switch r.Kind {
			case wire.WALSubmission:
				var p walSubmission
				if json.Unmarshal(r.Data, &p) == nil && p.ID != "" {
					rw := wfFor(p.ID)
					rw.body = p.Body
					rw.rejected = false
				}
			case wire.WALReject:
				var p walReject
				if json.Unmarshal(r.Data, &p) == nil && p.ID != "" {
					wfFor(p.ID).rejected = true
				}
			case wire.WALAdmission:
				var p walAdmission
				if json.Unmarshal(r.Data, &p) == nil && p.ID != "" {
					wfFor(p.ID).adm = &p
				}
			case wire.WALGrid:
				var p walGrid
				if json.Unmarshal(r.Data, &p) == nil && p.Name != "" {
					if _, ok := gridSpecs[p.Name]; !ok {
						gridSpecs[p.Name] = p.Spec
					}
				}
			case wire.WALState:
				var p walState
				if json.Unmarshal(r.Data, &p) != nil || p.ID == "" {
					continue
				}
				rw := wfFor(p.ID)
				if p.Body != nil {
					rw.body = p.Body
				}
				rw.state = &p
				// History deltas replay in LSN order regardless of whether
				// the workflow itself survives to restoration.
				repo := repoFor(target, p.Tenant, 0)
				for _, d := range p.Deltas {
					_ = repo.Record(d.Op, grid.ID(d.Resource), d.Duration)
				}
			case wire.WALTerminal:
				var p walTerminal
				if json.Unmarshal(r.Data, &p) != nil || p.ID == "" {
					continue
				}
				rw := wfFor(p.ID)
				rw.terminal = &p
				terminals = append(terminals, p)
			}
		}
	}

	// Install tenant histories on their shards before any tracker is
	// restored against them.
	for shardIdx, byTenant := range repos {
		sh := s.shards[shardIdx]
		names := make([]string, 0, len(byTenant))
		for t := range byTenant {
			names = append(names, t)
		}
		sort.Strings(names)
		sh.histMu.Lock()
		if sh.hist == nil {
			sh.hist = make(map[string]*history.Repository)
		}
		for _, t := range names {
			if _, ok := sh.hist[t]; !ok {
				sh.hist[t] = byTenant[t]
				sh.histOrder = append(sh.histOrder, t)
			}
		}
		sh.histMu.Unlock()
	}

	// Shared grids: re-register under the current shard count. Ledgers
	// start empty and reassemble from their restored residents.
	gridNames := make([]string, 0, len(gridSpecs))
	for name := range gridSpecs {
		gridNames = append(gridNames, name)
	}
	sort.Strings(gridNames)
	for _, name := range gridNames {
		spec, err := wire.DecodeGridSpec(gridSpecs[name], s.cfg.Limits)
		if err != nil {
			log.Printf("aheftd: recovery: grid %q spec: %v", name, err)
			continue
		}
		s.grids[name] = newSharedGrid(name, gridSpecs[name], spec, len(s.shards), s.cfg.GridShareCap)
	}

	// Terminal records: frozen, queryable, retained under the cap. The
	// terminals list preserves finish order for the retention sweep; the
	// per-workflow latest record is the one registered.
	seenTerm := make(map[string]bool, len(terminals))
	for i := range terminals {
		id := terminals[i].ID
		rw := wfs[id]
		if rw == nil || rw.terminal == nil || seenTerm[id] {
			continue
		}
		seenTerm[id] = true
		t := rw.terminal
		st := t.Status
		wf := &workflow{
			id:     t.ID,
			name:   st.Name,
			shard:  st.Shard,
			live:   st.Mode == wire.ModeLive,
			tenant: st.Tenant,
			jobs:   st.Jobs, resources: st.Resources,
			submittedAt: time.Now(),
			state:       st.State,
			events:      t.Events,
			plan:        t.Plan,
			generation:  st.Generation,
			reports:     st.Reports,
			frozen:      &st,
		}
		s.wfs[t.ID] = wf
		s.retire(t.ID)
	}

	// Live residents: restore trackers, re-park, re-attach.
	liveIDs := make([]string, 0, len(wfs))
	for id, rw := range wfs {
		if rw.terminal == nil && !rw.rejected && rw.state != nil {
			liveIDs = append(liveIDs, id)
		}
	}
	sort.Strings(liveIDs)
	recovered := 0
	for _, id := range liveIDs {
		rw := wfs[id]
		if err := s.restoreLive(rw); err != nil {
			log.Printf("aheftd: recovery: workflow %s: %v", id, err)
			s.failRecovered(id, err)
			continue
		}
		recovered++
	}

	// Pending submissions: re-enqueue in arrival order.
	var pending []*recoveredWorkflow
	for _, rw := range wfs {
		if rw.terminal == nil && !rw.rejected && rw.state == nil && rw.body != nil {
			pending = append(pending, rw)
		}
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].order < pending[j].order })
	for _, rw := range pending {
		if err := s.requeueRecovered(rw); err != nil {
			log.Printf("aheftd: recovery: workflow %s: %v", rw.id, err)
			s.failRecovered(rw.id, err)
		}
	}

	s.mu.Lock()
	if maxSeq > s.seq {
		s.seq = maxSeq
	}
	s.mu.Unlock()

	// Everything recovered is covered by a fresh snapshot, so the next
	// startup replays one snapshot and a short tail, and the old
	// (possibly repaired) segments are swept.
	for _, sh := range s.shards {
		sh.snapshot()
	}
	for _, dir := range orphanDirs {
		if err := os.RemoveAll(dir); err != nil {
			log.Printf("aheftd: recovery: remove %s: %v", dir, err)
		}
	}
	s.recoveredWfs = uint64(recovered)
	s.recoveryMs = time.Since(start).Seconds() * 1e3
	return nil
}

// restoreLive rebuilds one live workflow from its journalled state and
// parks it on its shard. Runs before workers start, so touching the
// tracker here is safe.
func (s *Server) restoreLive(rw *recoveredWorkflow) error {
	if rw.body == nil {
		return fmt.Errorf("live state without submission body")
	}
	wf, gref, err := s.buildWorkflow(rw.id, rw.body)
	if err != nil {
		return fmt.Errorf("rebuild submission: %w", err)
	}
	if !wf.live {
		return fmt.Errorf("state record for non-live workflow")
	}
	sh := s.shards[wf.shard]
	cfg := feedback.Config{
		Graph:             wf.sub.Graph,
		Prior:             cost.Exact(wf.sub.Comp),
		Pool:              wf.sub.Pool,
		History:           sh.historyFor(wf.tenant),
		Policy:            wf.pol,
		Opts:              wf.opts,
		VarianceThreshold: wf.varThr,
	}
	if gref != nil {
		cfg.Pool = gref.pool
		cfg.Occupancy = gref.ledger.View(wf.id)
	}
	tr, err := feedback.Restore(cfg, rw.state.State)
	if err != nil {
		return err
	}
	wf.tracker = tr
	wf.ackedGen = rw.state.AckedGen
	wf.fastPath = rw.state.FastPath
	wf.upgraded = rw.state.Upgraded
	trigger := rw.state.PlanTrigger
	if trigger == "" {
		trigger = "initial"
	}
	plan := livePlanDoc(wf, trigger)
	wf.mu.Lock()
	wf.state = StateRunning
	wf.startedAt = time.Now()
	wf.plan = plan
	wf.generation = plan.Generation
	wf.reports = rw.state.Reports
	wf.events = rw.state.Events
	wf.mu.Unlock()

	s.mu.Lock()
	s.wfs[wf.id] = wf
	s.mu.Unlock()
	sh.live[wf.id] = wf
	if gref != nil {
		gref.attach(wf)
	}
	if w := sh.wal; w != nil {
		w.mu.Lock()
		w.bodies[wf.id] = rw.body
		w.mu.Unlock()
	}
	s.metrics.liveResident.Add(1)
	s.metrics.inflightReserve()
	// A fast-path plan that crashed before its upgrade still owes one:
	// re-arm it so "every fast-path plan is upgraded or terminal" holds
	// across restarts. The send parks until the shard worker starts.
	if wf.fastPath && !wf.upgraded {
		sh.scheduleUpgrade(wf)
	}
	return nil
}

// requeueRecovered re-enqueues an accepted-but-unstarted submission
// into the fair queue under its journalled admission credentials (the
// wire options serve as the fallback for logs written before the
// admission record existed). Recovery runs before the shard workers
// start, so the weighted fair order re-emerges as soon as the worker
// begins draining — a tenant's pre-crash flood cannot jump the queue.
func (s *Server) requeueRecovered(rw *recoveredWorkflow) error {
	wf, _, err := s.buildWorkflow(rw.id, rw.body)
	if err != nil {
		return fmt.Errorf("rebuild submission: %w", err)
	}
	class, weight := wf.class, wf.weight
	if rw.adm != nil {
		class, weight = rw.adm.Class, rw.adm.Weight
		wf.class, wf.weight = class, weight
	}
	sh := s.shards[wf.shard]
	s.mu.Lock()
	s.wfs[wf.id] = wf
	s.mu.Unlock()
	if w := sh.wal; w != nil {
		w.mu.Lock()
		w.pend[wf.id] = rw.body
		w.pendOrder = append(w.pendOrder, wf.id)
		w.admit[wf.id] = walAdmission{ID: wf.id, Tenant: wf.tenant, Class: class, Weight: weight}
		w.mu.Unlock()
	}
	s.metrics.inflightReserve()
	if err := sh.adm.Enqueue(admission.Item{ID: wf.id, Tenant: wf.tenant, Class: class, Weight: weight, Value: wf}); err != nil {
		s.metrics.inflightRelease()
		s.forget(wf.id)
		if w := sh.wal; w != nil {
			w.mu.Lock()
			delete(w.pend, wf.id)
			delete(w.admit, wf.id)
			w.mu.Unlock()
		}
		return fmt.Errorf("shard %d admission refused during recovery: %w", wf.shard, err)
	}
	return nil
}

// failRecovered registers a synthetic failed terminal for a journalled
// workflow that could not be brought back (its client was told 202 and
// deserves an answer, not a 404).
func (s *Server) failRecovered(id string, cause error) {
	msg := fmt.Sprintf("lost in recovery: %v", cause)
	st := wire.Status{ID: id, State: StateFailed, Error: msg, Events: 2}
	wf := &workflow{
		id: id, submittedAt: time.Now(), state: StateFailed,
		events: []wire.Event{
			{Seq: 0, Kind: "submitted", Workflow: id},
			{Seq: 1, Kind: "failed", Workflow: id, Error: msg},
		},
		frozen: &st,
	}
	s.mu.Lock()
	s.wfs[id] = wf
	s.mu.Unlock()
	s.retire(id)
	s.metrics.failed.Add(1)
}

// parseWorkflowSeq extracts N from a daemon-assigned "wf-%08d" ID.
func parseWorkflowSeq(id string) uint64 {
	var n uint64
	if c, _ := fmt.Sscanf(id, "wf-%d", &n); c == 1 {
		return n
	}
	return 0
}

// --- readiness gate + versioned health --------------------------------

// Gate is the recovering/ready switch in front of the daemon's handler:
// every request is answered 503 {"status":"recovering"} until Ready
// installs the real handler. cmd/aheftd serves the gate immediately and
// flips it once Open's replay completes, so a probe (or loadgen's
// waitHealthy) distinguishes "recovering" from "ready" by status code.
type Gate struct {
	h atomic.Pointer[http.Handler]
}

// NewGate returns a gate in the recovering state.
func NewGate() *Gate { return &Gate{} }

// Ready installs the recovered daemon's handler.
func (g *Gate) Ready(h http.Handler) { g.h.Store(&h) }

func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := g.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"status":  "recovering",
		"version": buildinfo.String(),
	})
}

// handleHealthzV1 is the readiness endpoint: once a Server answers it at
// all, replay has completed (Open is synchronous), so it reports ready
// or draining plus the recovery and build identity a supervisor or
// load generator wants to gate on.
func (s *Server) handleHealthzV1(w http.ResponseWriter, r *http.Request) {
	s.submitMu.RLock()
	draining := s.draining
	s.submitMu.RUnlock()
	status := "ready"
	if draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":              status,
		"version":             buildinfo.String(),
		"shards":              len(s.shards),
		"durable":             s.cfg.DataDir != "",
		"recovered_workflows": s.recoveredWfs,
		"recovery_ms":         s.recoveryMs,
		"inflight":            s.metrics.inflight.Load(),
	})
}
