package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"aheft/internal/drive"
	"aheft/internal/rng"
	"aheft/internal/wire"
	"aheft/internal/workload"
)

// httpJSON issues one request and decodes the JSON reply.
func httpJSON(t *testing.T, client *http.Client, method, url string, body []byte, v any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func registerGrid(t *testing.T, ts *httptest.Server, name string, sc *workload.Scenario) {
	t.Helper()
	body, err := wire.EncodeGridSpec(&wire.GridSpec{Pool: sc.Pool})
	if err != nil {
		t.Fatal(err)
	}
	var st wire.GridStatus
	if code := httpJSON(t, ts.Client(), http.MethodPut, ts.URL+"/v1/grids/"+name, body, &st); code != http.StatusCreated {
		t.Fatalf("PUT grid: HTTP %d", code)
	}
	if st.Name != name || st.Resources != sc.Pool.Size() || st.Reservations != 0 {
		t.Fatalf("fresh grid status: %+v", st)
	}
}

func gridStatus(t *testing.T, ts *httptest.Server, name string) wire.GridStatus {
	t.Helper()
	var st wire.GridStatus
	if code := httpJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/grids/"+name, nil, &st); code != http.StatusOK {
		t.Fatalf("GET grid %s: HTTP %d", name, code)
	}
	return st
}

// submitShared submits one live workflow against the named grid.
func submitShared(t *testing.T, ts *httptest.Server, gridName, tenant string, sc *workload.Scenario) string {
	t.Helper()
	body, err := wire.EncodeSubmission(&wire.Submission{
		Name: tenant, Mode: wire.ModeLive, Tenant: tenant, Policy: "aheft",
		Graph: sc.Graph, Comp: sc.Table, SharedGrid: gridName,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sub wire.Submitted
	if code := httpJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/workflows", body, &sub); code != http.StatusAccepted {
		t.Fatalf("submit shared: HTTP %d", code)
	}
	return sub.ID
}

// waitPlan polls until the live workflow is planned.
func waitPlan(t *testing.T, ts *httptest.Server, id string) *wire.Plan {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var plan wire.Plan
		code := httpJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/workflows/"+id+"/plan", nil, &plan)
		if code == http.StatusOK {
			return &plan
		}
		if time.Now().After(deadline) {
			t.Fatalf("workflow %s never planned (HTTP %d)", id, code)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// reportPlanExecution replays the plan faithfully as one report batch
// (starts and finishes chronologically interleaved) and returns the ack.
func reportPlanExecution(t *testing.T, ts *httptest.Server, id string, plan *wire.Plan) *wire.ReportAck {
	t.Helper()
	events := make([]wire.ReportEvent, 0, 2*len(plan.Assignments))
	for _, a := range plan.Assignments {
		events = append(events,
			wire.ReportEvent{Kind: wire.ReportJobStarted, Time: a.Start, Job: a.Job, Resource: a.Resource},
			wire.ReportEvent{Kind: wire.ReportJobFinished, Time: a.Finish, Job: a.Job, Resource: a.Resource, Duration: a.Finish - a.Start},
		)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Time != events[j].Time {
			return events[i].Time < events[j].Time
		}
		return events[i].Kind == wire.ReportJobStarted && events[j].Kind == wire.ReportJobFinished
	})
	body, err := wire.EncodeReport(&wire.Report{Events: events})
	if err != nil {
		t.Fatal(err)
	}
	var ack wire.ReportAck
	if code := httpJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/workflows/"+id+"/report", body, &ack); code != http.StatusOK {
		t.Fatalf("report: HTTP %d", code)
	}
	return &ack
}

func TestGridEndpoints(t *testing.T) {
	srv := New(Config{Shards: 2})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sc := workload.SampleScenario()
	registerGrid(t, ts, "cluster-a", sc)

	var errDoc errorDoc
	spec, _ := wire.EncodeGridSpec(&wire.GridSpec{Pool: sc.Pool})
	if code := httpJSON(t, ts.Client(), http.MethodPut, ts.URL+"/v1/grids/cluster-a", spec, &errDoc); code != http.StatusConflict {
		t.Fatalf("duplicate grid: HTTP %d", code)
	}
	if code := httpJSON(t, ts.Client(), http.MethodPut, ts.URL+"/v1/grids/bad%20name", spec, &errDoc); code != http.StatusBadRequest {
		t.Fatalf("invalid name: HTTP %d", code)
	}
	if code := httpJSON(t, ts.Client(), http.MethodPut, ts.URL+"/v1/grids/empty", []byte(`{"v":1}`), &errDoc); code != http.StatusBadRequest {
		t.Fatalf("empty spec: HTTP %d", code)
	}
	if code := httpJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/grids/nope", nil, &errDoc); code != http.StatusNotFound {
		t.Fatalf("unknown grid: HTTP %d", code)
	}
	var list []wire.GridStatus
	if code := httpJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/grids", nil, &list); code != http.StatusOK || len(list) != 1 || list[0].Name != "cluster-a" {
		t.Fatalf("grid list: HTTP %d, %+v", code, list)
	}

	// A submission naming an unregistered grid is rejected with guidance.
	body, err := wire.EncodeSubmission(&wire.Submission{
		Mode: wire.ModeLive, Graph: sc.Graph, Comp: sc.Table, SharedGrid: "nope",
	})
	if err != nil {
		t.Fatal(err)
	}
	if code := httpJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/workflows", body, &errDoc); code != http.StatusBadRequest ||
		!strings.Contains(errDoc.Error, "unknown shared grid") {
		t.Fatalf("unknown grid submission: HTTP %d %q", code, errDoc.Error)
	}
	// An estimator table not covering the grid's universe is rejected.
	small, err := workload.RandomScenario(
		workload.RandomParams{Jobs: 5, CCR: 1, OutDegree: 0.3, Beta: 0.5},
		workload.GridParams{InitialResources: 2}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	body, err = wire.EncodeSubmission(&wire.Submission{
		Mode: wire.ModeLive, Graph: small.Graph, Comp: small.Table, SharedGrid: "cluster-a",
	})
	if err != nil {
		t.Fatal(err)
	}
	if code := httpJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/workflows", body, &errDoc); code != http.StatusBadRequest ||
		!strings.Contains(errDoc.Error, "grid") {
		t.Fatalf("mismatched table: HTTP %d %q", code, errDoc.Error)
	}
}

// TestSharedWorkflowsContendAndRelease: two workflows on one grid plan
// around each other (status shows the aggregate), what-if answers count
// the foreign occupancy, and a completed run's reservations drain without
// a leak — including when the retention cap evicts the terminal record.
func TestSharedWorkflowsContendAndRelease(t *testing.T) {
	srv := New(Config{Shards: 2, MaxRetained: 1})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sc := workload.SampleScenario()
	registerGrid(t, ts, "g", sc)

	idA := submitShared(t, ts, "g", "alpha", sc)
	planA := waitPlan(t, ts, idA)
	idB := submitShared(t, ts, "g", "beta", sc)
	planB := waitPlan(t, ts, idB)
	n := sc.Graph.Len()

	st := gridStatus(t, ts, "g")
	if st.Attached != 2 || st.Reservations != 2*n {
		t.Fatalf("grid with two tenants: %+v", st)
	}
	var wfst wire.Status
	if code := httpJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/workflows/"+idB, nil, &wfst); code != http.StatusOK {
		t.Fatalf("status: HTTP %d", code)
	}
	if wfst.Grid != "g" || wfst.Resources != sc.Pool.Size() {
		t.Fatalf("shared status: %+v", wfst)
	}
	// B planned around A's reservations: same workflow, same estimates,
	// but the grid was half-occupied, so B cannot beat A's plan.
	if planB.Makespan < planA.Makespan {
		t.Fatalf("contended plan %g beats uncontended %g", planB.Makespan, planA.Makespan)
	}
	// The what-if answer is against the aggregate occupancy.
	var doc wire.WhatIfDoc
	if code := httpJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/workflows/"+idB+"/whatif", []byte(`{}`), &doc); code != http.StatusOK {
		t.Fatalf("whatif: HTTP %d", code)
	}
	if doc.ForeignReservations != n {
		t.Fatalf("whatif foreign reservations = %d, want %d", doc.ForeignReservations, n)
	}

	// A finishes: its reservations drain job by job; the survivor B is
	// poked with a contention trigger (visible in its event count and,
	// when it adopts, its generation).
	ackA := reportPlanExecution(t, ts, idA, planA)
	if !ackA.Done {
		t.Fatalf("A not done: %+v", ackA)
	}
	st = gridStatus(t, ts, "g")
	if st.Attached != 1 || st.Reservations != n {
		t.Fatalf("grid after A finished: %+v", st)
	}
	if got := st.Owners; len(got) != 1 || got[0].Workflow != idB {
		t.Fatalf("owners after A finished: %+v", got)
	}

	// B refetches its plan: the contention reevaluation after A's finishes
	// must have adopted the freed capacity (the grid is empty again, so
	// B's plan returns to the uncontended makespan).
	planB2 := waitPlan(t, ts, idB)
	if planB2.Generation < 2 || planB2.Trigger != "contention" {
		t.Fatalf("survivor plan after release: gen=%d trigger=%q", planB2.Generation, planB2.Trigger)
	}
	if planB2.Makespan != planA.Makespan {
		t.Fatalf("freed plan %g, uncontended plan %g", planB2.Makespan, planA.Makespan)
	}
	ackB := reportPlanExecution(t, ts, idB, planB2)
	if !ackB.Done {
		t.Fatalf("B not done: %+v", ackB)
	}
	st = gridStatus(t, ts, "g")
	if st.Attached != 0 || st.Reservations != 0 {
		t.Fatalf("leaked reservations after both finished: %+v", st)
	}

	// MaxRetained=1: B's completion evicted A's terminal record; eviction
	// must not resurrect or leak grid state.
	if code := httpJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/workflows/"+idA, nil, &errorDoc{}); code != http.StatusNotFound {
		t.Fatalf("A should be evicted: HTTP %d", code)
	}
	m := srv.MetricsSnapshot()
	if m.SharedGrids != 1 || m.Reservations != 0 || m.Evicted == 0 {
		t.Fatalf("metrics after eviction: %+v", m)
	}
	if m.ReschedulesContention == 0 {
		t.Fatalf("no contention reschedule recorded: %+v", m)
	}
}

// TestSharedReservationReleaseOnForceCancel: the drain deadline
// force-cancels resident live workflows; their reservations must not
// outlive them.
func TestSharedReservationReleaseOnForceCancel(t *testing.T) {
	srv := New(Config{Shards: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sc := workload.SampleScenario()
	registerGrid(t, ts, "g", sc)
	idA := submitShared(t, ts, "g", "alpha", sc)
	waitPlan(t, ts, idA)
	idB := submitShared(t, ts, "g", "beta", sc)
	waitPlan(t, ts, idB)
	if st := gridStatus(t, ts, "g"); st.Reservations != 2*sc.Graph.Len() {
		t.Fatalf("pre-drain grid: %+v", st)
	}

	// An already-expired drain context forces the cancel path.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Fatal("expired drain returned nil")
	}
	if st := gridStatus(t, ts, "g"); st.Attached != 0 || st.Reservations != 0 {
		t.Fatalf("force-cancel leaked reservations: %+v", st)
	}
	for _, id := range []string{idA, idB} {
		var wfst wire.Status
		if code := httpJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/workflows/"+id, nil, &wfst); code != http.StatusOK || wfst.State != StateFailed {
			t.Fatalf("%s after force-cancel: HTTP %d state %q", id, code, wfst.State)
		}
	}
	if m := srv.MetricsSnapshot(); m.Reservations != 0 || m.LiveResident != 0 {
		t.Fatalf("post-drain metrics: %+v", m)
	}
}

// TestSharedGridContentionBeatsOblivious is the shared-grid acceptance
// test: on a 2-tenant BLAST/WIEN2K mix enacted together on one grid (a
// resource runs one job at a time across tenants, 20% runtime noise, 30%
// arrival churn), contention-aware adaptive planning must beat the
// isolated-planning baseline on mean makespan, every tenant class must
// see at least one cross-workflow (contention-triggered) reschedule, and
// the grids must drain with zero leaked reservations.
func TestSharedGridContentionBeatsOblivious(t *testing.T) {
	if testing.Short() {
		t.Skip("shared-grid acceptance test skipped in -short mode")
	}
	srv := New(Config{Shards: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const rounds = 4
	gp := workload.GridParams{InitialResources: 4, ChangeInterval: 400, ChangePct: 0.25, MaxEvents: 2}
	r := rng.New(0x67e1d5eed)
	type classAgg struct {
		adaptive, oblivious  float64
		contention, eachRuns int
	}
	agg := map[string]*classAgg{"blast": {}, "wien2k": {}}
	for round := 0; round < rounds; round++ {
		bl, err := workload.BlastScenario(workload.AppParams{Parallelism: 12, CCR: 1, Beta: 0.5}, gp, r)
		if err != nil {
			t.Fatal(err)
		}
		wn, err := workload.Wien2kScenario(workload.AppParams{Parallelism: 12, CCR: 1, Beta: 0.5}, gp, r)
		if err != nil {
			t.Fatal(err)
		}
		out, err := drive.RunShared(context.Background(), drive.SharedConfig{
			BaseURL: ts.URL,
			Client:  ts.Client(),
			Grid:    fmt.Sprintf("grid-%d", round),
			Pool:    bl.Pool,
			Noise:   0.2,
			Churn:   0.3,
			Seed:    uint64(round)*1000 + 7,
		}, []drive.Tenant{
			{Name: "blast", Scenario: bl, Policy: "aheft", Options: wire.Options{VarianceThreshold: 0.2}},
			{Name: "wien2k", Scenario: wn, Policy: "aheft", Options: wire.Options{VarianceThreshold: 0.2}},
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if out.FinalReservations != 0 {
			t.Fatalf("round %d leaked %d reservations", round, out.FinalReservations)
		}
		for _, to := range out.Tenants {
			if to.DaemonMakespan != to.AdaptiveMakespan {
				t.Fatalf("round %d %s: daemon says %g, simulation measured %g",
					round, to.Name, to.DaemonMakespan, to.AdaptiveMakespan)
			}
			a := agg[to.Name]
			a.adaptive += to.AdaptiveMakespan
			a.oblivious += to.ObliviousMakespan
			a.contention += to.ContentionReschedules
			a.eachRuns++
			t.Logf("round %d %-7s jobs=%d aware=%.1f oblivious=%.1f delta=%+.1f%% reschedules=%d (contention=%d variance=%d arrival=%d) gen=%d",
				round, to.Name, to.Jobs, to.AdaptiveMakespan, to.ObliviousMakespan, 100*to.Delta(),
				to.Reschedules, to.ContentionReschedules, to.VarianceReschedules, to.ArrivalReschedules, to.Generation)
		}
	}
	for class, a := range agg {
		if a.eachRuns != rounds {
			t.Fatalf("%s ran %d rounds", class, a.eachRuns)
		}
		if a.contention == 0 {
			t.Fatalf("no cross-workflow (contention) reschedule for class %s across %d rounds", class, rounds)
		}
		mean := a.adaptive / float64(rounds)
		base := a.oblivious / float64(rounds)
		if mean > base {
			t.Fatalf("%s: contention-aware mean %.1f worse than oblivious baseline %.1f", class, mean, base)
		}
		t.Logf("%s: mean aware %.1f vs oblivious %.1f (%.1f%% better), %d contention reschedules",
			class, mean, base, 100*(base-mean)/base, a.contention)
	}

	m := srv.MetricsSnapshot()
	if m.SharedGrids != rounds || m.Reservations != 0 {
		t.Fatalf("grid gauges: %+v", m)
	}
	if m.ReschedulesContention == 0 || m.EventsDropped != 0 {
		t.Fatalf("loop metrics: %+v", m)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := srv.MetricsSnapshot(); got.Completed != 2*rounds || got.Failed != 0 {
		t.Fatalf("post-drain: completed=%d failed=%d", got.Completed, got.Failed)
	}
}
