package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"aheft/internal/admission"
	"aheft/internal/durable"
	"aheft/internal/obs"
	"aheft/internal/planner"
	"aheft/internal/wire"
)

// This file is the daemon's flight recorder and its trace endpoint —
// the record/replay half of the observability layer.
//
// The recorder taps every external input on the shard worker's side of
// the queue: a submission is recorded at the moment the worker starts
// executing it, a report at the moment the worker applies it, so each
// per-shard stream is in *processing* order — the order that, together
// with the deterministic kernel, fully determines the shard's decision
// sequence (the worker's select between intake and commands is the one
// nondeterminism the stream pins down). Grid registrations are recorded
// on the owning grid's shard at registration time; a submission
// referencing the grid can only be accepted (and hence worker-recorded)
// after the registration's 201, so the stream order preserves that
// dependency. Outputs (decisions, plan generations, terminals) are
// appended by the same worker goroutine as they are emitted, giving
// replay an oracle to compare against in the same file.
//
// Wall-clock readings are captured on every record (RecBody.At and the
// stream header) for diagnosis; none of them feed scheduling — every
// scheduling clock rides inside the report bodies — so replay compares
// streams with the wall fields masked (see internal/replay).

// recorder is the per-shard record stream set. Append errors degrade
// the recording (counted in /metrics recorder_errors) without touching
// the serving path.
type recorder struct {
	dir  string
	logs []*durable.Log
	m    *Metrics
}

// openRecorder creates one stream per shard under dir and writes each
// stream's header.
func openRecorder(dir string, cfg Config, m *Metrics) (*recorder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: record dir: %w", err)
	}
	r := &recorder{dir: dir, m: m}
	now := time.Now().UnixNano()
	for i := 0; i < cfg.Shards; i++ {
		l, err := durable.CreateLog(filepath.Join(dir, wire.RecordName(i)))
		if err != nil {
			for _, prev := range r.logs {
				prev.Close()
			}
			return nil, err
		}
		r.logs = append(r.logs, l)
		r.append(i, wire.RecBegin, wire.RecHeader{
			V:                 wire.Version,
			Shard:             i,
			Shards:            cfg.Shards,
			Policy:            cfg.DefaultPolicy,
			VarianceThreshold: cfg.VarianceThreshold,
			MaxConeFrac:       cfg.MaxConeFrac,
			StartUnixNano:     now,
		})
	}
	return r, nil
}

func (r *recorder) append(shard int, kind string, payload any) {
	data, ok := payload.(json.RawMessage)
	if !ok {
		var err error
		data, err = json.Marshal(payload)
		if err != nil {
			r.m.recorderErrors.Add(1)
			return
		}
	}
	if err := r.logs[shard].Append(kind, data); err != nil {
		r.m.recorderErrors.Add(1)
		return
	}
	r.m.recorderRecords.Add(1)
}

func (r *recorder) submission(shard int, id string, body json.RawMessage) {
	r.append(shard, wire.RecSubmission, wire.RecBody{Workflow: id, At: time.Now().UnixNano(), Body: body})
}

func (r *recorder) report(shard int, id string, body json.RawMessage) {
	r.append(shard, wire.RecReport, wire.RecBody{Workflow: id, At: time.Now().UnixNano(), Body: body})
}

func (r *recorder) grid(shard int, name string, spec json.RawMessage) {
	r.append(shard, wire.RecGrid, wire.RecBody{Grid: name, At: time.Now().UnixNano(), Body: spec})
}

func (r *recorder) decision(shard int, id string, d planner.Decision) {
	old := d.OldMakespan
	if math.IsInf(old, 1) {
		old = -1 // the wire sentinel: a departure made the old plan infeasible
	}
	r.append(shard, wire.RecDecision, wire.RecDecided{
		Workflow:     id,
		Clock:        d.Clock,
		PoolSize:     d.PoolSize,
		OldMakespan:  old,
		NewMakespan:  d.NewMakespan,
		Adopted:      d.Adopted,
		JobsFinished: d.JobsFinished,
		Trigger:      d.Trigger.String(),
		Arrived:      d.ArrivedCount,
	})
}

func (r *recorder) plan(shard int, p *wire.Plan) {
	r.append(shard, wire.RecPlan, wire.RecPlanned{
		Workflow:   p.Workflow,
		Generation: p.Generation,
		Trigger:    p.Trigger,
		Makespan:   p.Makespan,
		PlanHash:   wire.HashPlan(p.Assignments),
	})
}

func (r *recorder) done(shard int, id, status string, makespan float64, errMsg string) {
	r.append(shard, wire.RecDone, wire.RecFinished{
		Workflow: id, Status: status, Makespan: makespan, Error: errMsg,
	})
}

// finalize writes each stream's trailer and closes it. Called once,
// after every worker has exited, so all worker-side appends are done.
// clean reports whether the drain completed without force-cancelling —
// a force-cancelled tail cannot replay bit-identically, and the trailer
// says so.
func (r *recorder) finalize(clean bool) {
	now := time.Now().UnixNano()
	for i, l := range r.logs {
		r.append(i, wire.RecEnd, wire.RecTrailer{Clean: clean, EndUnixNano: now})
		l.Close()
	}
}

// InjectRecorded enqueues a recorded submission under its original
// daemon-assigned ID, bypassing HTTP intake: the replay harness drives
// recorded streams through this so IDs — and with them shard routing —
// reproduce exactly, including the sequence gaps rejected submissions
// left behind. It returns the target shard.
func (s *Server) InjectRecorded(id string, body []byte) (int, error) {
	wf, _, err := s.buildWorkflow(id, body)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	if _, dup := s.wfs[id]; dup {
		s.mu.Unlock()
		return 0, fmt.Errorf("workflow %q already injected", id)
	}
	s.wfs[id] = wf
	if n := parseWorkflowSeq(id); n > s.seq {
		s.seq = n
	}
	s.mu.Unlock()
	m := s.metrics
	m.submissions.Add(1)
	if s.cfg.RecordDir != "" && s.recorder != nil {
		wf.recBody = append(json.RawMessage(nil), body...)
	}

	s.submitMu.RLock()
	defer s.submitMu.RUnlock()
	if s.draining {
		s.reject(wf, fmt.Errorf("server is draining"))
		return 0, fmt.Errorf("server is draining")
	}
	m.inflightReserve()
	s.shards[wf.shard].walLogSubmission(id, body, wf.tenant, wf.class, wf.weight)
	err = s.shards[wf.shard].adm.Enqueue(admission.Item{
		ID: id, Tenant: wf.tenant, Class: wf.class, Weight: wf.weight, Value: wf,
	})
	if err != nil {
		m.inflightRelease()
		s.shards[wf.shard].walLogReject(id)
		s.reject(wf, fmt.Errorf("shard %d admission refused: %w", wf.shard, err))
		return 0, fmt.Errorf("shard %d admission refused: %w", wf.shard, err)
	}
	m.accepted.Add(1)
	m.eventsEmitted.Add(1)
	return wf.shard, nil
}

// handleTrace serves the workflow's retained span log as JSON Lines
// (one obs.Span object per line, completion order).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeJSON(w, http.StatusConflict, errorDoc{Error: "tracing is disabled (start the daemon with tracing enabled)"})
		return
	}
	id := r.PathValue("id")
	if _, ok := s.lookup(id); !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown workflow"})
		return
	}
	spans := s.tracer.Spans(id)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, sp := range spans {
		if err := enc.Encode(sp); err != nil {
			return
		}
	}
}

// Tracer exposes the causal tracer (nil when tracing is disabled) for
// tests and embedding callers.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }
