package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// Prometheus text exposition for GET /metrics (satellite of the
// observability layer): the same MetricsDoc the JSON form serialises,
// rendered in the text format a Prometheus scraper ingests natively.
// Selected with ?format=prometheus, or by content negotiation when the
// Accept header asks for text/plain or OpenMetrics (a scraper's default
// Accept does; a browser's or curl's does not, so the human-facing JSON
// stays the default).

func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// promWriter accumulates one exposition document. Metric names carry
// the aheft_ prefix; HELP/TYPE headers precede each family.
type promWriter struct {
	b strings.Builder
}

func (p *promWriter) counter(name, help string, v uint64) {
	fmt.Fprintf(&p.b, "# HELP aheft_%s %s\n# TYPE aheft_%s counter\naheft_%s %d\n", name, help, name, name, v)
}

func (p *promWriter) gauge(name, help string, v float64) {
	fmt.Fprintf(&p.b, "# HELP aheft_%s %s\n# TYPE aheft_%s gauge\naheft_%s %g\n", name, help, name, name, v)
}

// labeled emits one family of counter samples keyed by a single label,
// in sorted label order so scrapes are byte-stable.
func (p *promWriter) labeled(name, help, label string, vals map[string]uint64) {
	fmt.Fprintf(&p.b, "# HELP aheft_%s %s\n# TYPE aheft_%s counter\n", name, help, name)
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&p.b, "aheft_%s{%s=%q} %d\n", name, label, k, vals[k])
	}
}

// summary emits a latency window as a summary family: quantile samples
// plus the _count (the window's total, not a sum of buckets).
func (p *promWriter) summary(name, help, label, key string, count uint64, p50, p90, p99 float64) {
	lbl := ""
	if label != "" {
		lbl = fmt.Sprintf("%s=%q,", label, key)
	}
	fmt.Fprintf(&p.b, "# HELP aheft_%s %s\n# TYPE aheft_%s summary\n", name, help, name)
	fmt.Fprintf(&p.b, "aheft_%s{%squantile=\"0.5\"} %g\n", name, lbl, p50)
	fmt.Fprintf(&p.b, "aheft_%s{%squantile=\"0.9\"} %g\n", name, lbl, p90)
	fmt.Fprintf(&p.b, "aheft_%s{%squantile=\"0.99\"} %g\n", name, lbl, p99)
	if label != "" {
		fmt.Fprintf(&p.b, "aheft_%s_count{%s=%q} %d\n", name, label, key, count)
	} else {
		fmt.Fprintf(&p.b, "aheft_%s_count %d\n", name, count)
	}
}

func writePrometheus(w http.ResponseWriter, doc MetricsDoc) {
	p := &promWriter{}
	p.gauge("uptime_seconds", "Daemon uptime.", doc.UptimeS)
	p.gauge("shards", "Configured shard workers.", float64(doc.Shards))

	p.counter("submissions_total", "Workflow submission requests.", doc.Submissions)
	p.counter("accepted_total", "Submissions enqueued to a shard.", doc.Accepted)
	p.counter("rejected_backpressure_total", "Submissions rejected by a full shard queue.", doc.RejectedFull)
	p.counter("rejected_invalid_total", "Malformed or oversized submissions.", doc.RejectedInvalid)
	p.counter("rejected_draining_total", "Submissions rejected while draining.", doc.RejectedDrain)
	p.counter("abandoned_intake_total", "Clients gone while awaiting an intake slot.", doc.AbandonedIntake)

	p.counter("completed_total", "Workflows completed successfully.", doc.Completed)
	p.counter("failed_total", "Workflows that failed or were cancelled.", doc.Failed)
	p.counter("decisions_total", "Rescheduling evaluations.", doc.Decisions)
	p.counter("reschedules_total", "Adopted reschedules.", doc.Reschedules)
	p.counter("evicted_total", "Terminal records evicted by the retention cap.", doc.Evicted)

	p.counter("reports_total", "Accepted report batches.", doc.Reports)
	p.counter("report_events_total", "Run-time events folded into live runs.", doc.ReportEvents)
	p.counter("reports_rejected_total", "Rejected report requests.", doc.ReportsRejected)
	p.counter("reports_duplicate_total", "Replayed batches acked idempotently.", doc.ReportsDuplicate)
	p.counter("whatif_queries_total", "Answered what-if queries.", doc.WhatIfQueries)
	p.labeled("reschedules_by_trigger_total", "Adopted reschedules by trigger.", "trigger", map[string]uint64{
		"variance":   doc.ReschedulesVariance,
		"arrival":    doc.ReschedulesArrival,
		"departure":  doc.ReschedulesDeparture,
		"contention": doc.ReschedulesContention,
		"upgrade":    doc.ReschedulesUpgrade,
	})
	p.counter("reschedules_delta_total", "Evaluations served by the incremental delta path.", doc.ReschedulesDelta)
	p.counter("reschedules_full_fallback_total", "Evaluations that fell back to a full replan.", doc.ReschedulesFullFallback)
	p.labeled("reschedules_full_fallback_by_reason_total", "Full-replan fallbacks by kernel reason.", "reason", doc.ReschedulesFullFallbackByReason)
	for _, trig := range []string{"arrival", "variance", "departure", "contention", "upgrade"} {
		if s, ok := doc.RescheduleMs[trig]; ok {
			p.summary("reschedule_ms", "Replan wall-clock latency by trigger (ms).", "trigger", trig, s.Count, s.P50, s.P90, s.P99)
		}
	}

	p.labeled("admission_admitted_total", "Submissions admitted into the fair queue by class.", "class", doc.Admission.AdmittedByClass)
	p.labeled("admission_fast_path_total", "Fast-path (greedy initial plan) admissions by class.", "class", doc.Admission.FastPathByClass)
	p.labeled("admission_upgraded_total", "Fast-path plans upgraded to the full policy by class.", "class", doc.Admission.UpgradedByClass)
	p.labeled("admission_rejected_total", "Submissions rejected by the backlog bounds by class.", "class", doc.Admission.RejectedByClass)
	p.gauge("admission_drain_rate_per_s", "EWMA admission dequeue rate across shards.", doc.Admission.DrainRatePerS)
	fmt.Fprintf(&p.b, "# HELP aheft_admission_queue_depth Queued submissions per tenant.\n# TYPE aheft_admission_queue_depth gauge\n")
	tenants := make([]string, 0, len(doc.Admission.QueueDepthByTenant))
	for tenant := range doc.Admission.QueueDepthByTenant {
		tenants = append(tenants, tenant)
	}
	sort.Strings(tenants)
	for _, tenant := range tenants {
		fmt.Fprintf(&p.b, "aheft_admission_queue_depth{tenant=%q} %d\n", tenant, doc.Admission.QueueDepthByTenant[tenant])
	}
	p.summary("admission_wait_ms", "Fair-queue residency per admitted submission (ms).", "", "", doc.Admission.WaitMs.Count, doc.Admission.WaitMs.P50, doc.Admission.WaitMs.P90, doc.Admission.WaitMs.P99)
	p.summary("admission_initial_ms", "Submit-to-initial-plan latency by path (ms).", "path", "fast", doc.Admission.FastInitialMs.Count, doc.Admission.FastInitialMs.P50, doc.Admission.FastInitialMs.P90, doc.Admission.FastInitialMs.P99)
	p.summary("admission_initial_ms", "Submit-to-initial-plan latency by path (ms).", "path", "full", doc.Admission.FullInitialMs.Count, doc.Admission.FullInitialMs.P50, doc.Admission.FullInitialMs.P90, doc.Admission.FullInitialMs.P99)

	p.gauge("live_resident", "Live workflows parked on shards.", float64(doc.LiveResident))
	p.gauge("history_tenants", "Tenant performance-history repositories.", float64(doc.HistoryTenants))
	p.gauge("history_cells", "Performance-history cells across tenants.", float64(doc.HistoryCells))
	p.counter("history_evicted_total", "Tenant repositories dropped by the LRU cap.", doc.HistoryEvicted)
	p.gauge("shared_grids", "Registered shared grids.", float64(doc.SharedGrids))
	p.gauge("reservations", "Live reservations across shared grids.", float64(doc.Reservations))
	p.gauge("transfer_reservations", "Live transfer reservations across shared-grid capacity channels.", float64(doc.TransferReservations))

	p.counter("events_emitted_total", "Scheduling events appended to workflow logs.", doc.EventsEmitted)
	p.counter("events_dropped_total", "Events lost to slow SSE subscribers.", doc.EventsDropped)

	p.counter("wal_appends_total", "WAL records appended.", doc.WALAppends)
	p.counter("wal_bytes_total", "WAL bytes appended.", doc.WALBytes)
	p.counter("snapshots_total", "Durability snapshots written.", doc.Snapshots)
	p.counter("wal_errors_total", "Failed WAL appends or rotations.", doc.WALErrors)
	p.counter("recovered_workflows_total", "Live workflows restored by the last recovery.", doc.RecoveredWorkflows)

	p.counter("trace_spans_total", "Completed causal-tracer spans.", doc.TraceSpans)
	p.counter("trace_spans_dropped_total", "Spans not retained (per-workflow cap).", doc.TraceSpansDropped)
	stages := make([]string, 0, len(doc.TraceStageMs))
	for stage := range doc.TraceStageMs {
		stages = append(stages, stage)
	}
	sort.Strings(stages)
	for _, stage := range stages {
		s := doc.TraceStageMs[stage]
		p.summary("trace_stage_ms", "Decision-path stage latency (ms).", "stage", stage, s.Count, s.P50, s.P90, s.P99)
	}
	p.counter("recorder_records_total", "Flight-recorder records appended.", doc.RecorderRecords)
	p.counter("recorder_errors_total", "Failed flight-recorder appends.", doc.RecorderErrors)

	p.gauge("inflight", "Accepted minus terminal workflows.", float64(doc.Inflight))
	p.gauge("inflight_peak", "In-flight high-water mark.", float64(doc.InflightPeak))
	fmt.Fprintf(&p.b, "# HELP aheft_queue_depth Per-shard intake queue depth.\n# TYPE aheft_queue_depth gauge\n")
	for i, d := range doc.QueueDepth {
		fmt.Fprintf(&p.b, "aheft_queue_depth{shard=\"%d\"} %d\n", i, d)
	}
	p.summary("compute_ms", "Makespan-compute latency per workflow (ms).", "", "", doc.ComputeMs.Count, doc.ComputeMs.P50, doc.ComputeMs.P90, doc.ComputeMs.P99)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(p.b.String()))
}
