package server

import (
	"encoding/json"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"aheft/internal/admission"
	"aheft/internal/cost"
	"aheft/internal/feedback"
	"aheft/internal/history"
	"aheft/internal/obs"
	"aheft/internal/planner"
	"aheft/internal/policy"
	"aheft/internal/wire"
)

// Workflow states as reported by the API.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// workflow is one submitted workflow's full lifecycle record: the decoded
// submission, its execution outcome, and the dense per-workflow event log
// SSE consumers replay and follow.
type workflow struct {
	id    string
	name  string
	shard int
	sub   *wire.Submission // released at finish; use jobs/resources after
	pol   policy.Policy
	opts  policy.Options

	// Live-mode identity (immutable after submit).
	live   bool
	tenant string
	varThr float64

	// Admission identity (immutable after submit): the fair-queue class
	// and weight the submission was admitted under.
	class  string
	weight float64

	// Two-speed planning state, owned by the shard goroutine. fastPath
	// is set at dequeue when the backlog was deep enough that the
	// workflow was admitted with the cheap greedy plan; upgraded is set
	// once the asynchronous full-policy upgrade evaluation has run
	// (whether or not it adopted — the planning debt is paid either way).
	fastPath bool
	upgraded bool

	// tracker is the live run's feedback state machine. It is owned by
	// the shard's worker goroutine exclusively (kernel discipline); HTTP
	// handlers reach it only through the shard's command channel.
	tracker *feedback.Tracker

	// gridRef is the shared grid the workflow is attached to (nil for
	// private-pool workflows). Immutable after submit; the workflow is
	// routed to the grid's shard.
	gridRef *sharedGrid
	// ackedGen is the last plan generation the enactor has been handed
	// (initial fetch or a report ack). When a cross-workflow contention
	// reschedule bumps the plan between this enactor's reports, the next
	// ack piggybacks the newer plan. Shard-goroutine only.
	ackedGen int

	// Shape captured at submission so status never needs the (released)
	// submission.
	jobs      int
	resources int

	// Observability state, written on the submit path strictly before the
	// enqueue publishes the record to the worker: rootSpan is the intake
	// span's ID (the parent of the workflow's later spans), queueAct the
	// in-flight queue-residency span the worker ends on pickup, recBody
	// the raw submission body the worker's flight recorder appends in
	// processing order (nil when recording is off).
	rootSpan uint64
	queueAct *obs.Active
	recBody  json.RawMessage

	submittedAt time.Time

	mu        sync.Mutex
	state     string
	startedAt time.Time
	doneAt    time.Time
	events    []wire.Event
	subs      map[chan wire.Event]struct{}
	res       *planner.Result
	err       error
	// Live-plan snapshot for GET …/plan (written by the shard under mu,
	// read by HTTP handlers).
	plan       *wire.Plan
	generation int
	reports    int
	// frozen, when set, is a recovered terminal workflow's status as
	// journalled before the restart: status() serves it verbatim (the
	// result and submission objects it was assembled from are gone).
	frozen *wire.Status
}

// append adds one event to the log (assigning its dense Seq) and fans it
// out to the live subscribers. Fan-out never blocks the worker: a
// subscriber whose buffer is full loses the event, and the loss is
// counted in Metrics.eventsDropped (surfaced as events_dropped in
// /metrics) — the log itself is complete, so a replaying consumer can
// always recover the full stream.
func (wf *workflow) append(m *Metrics, ev wire.Event) {
	wf.mu.Lock()
	ev.Seq = len(wf.events)
	ev.Workflow = wf.id
	wf.events = append(wf.events, ev)
	for ch := range wf.subs {
		select {
		case ch <- ev:
		default:
			m.eventsDropped.Add(1)
		}
	}
	wf.mu.Unlock()
	m.eventsEmitted.Add(1)
}

// subscribe returns a snapshot of the log so far plus a live channel for
// what follows, or a nil channel when the workflow already reached a
// terminal state (the snapshot is then the complete stream). The caller
// must drain the channel and call the returned cancel function when done.
func (wf *workflow) subscribe() (replay []wire.Event, ch chan wire.Event, cancel func()) {
	wf.mu.Lock()
	defer wf.mu.Unlock()
	replay = append([]wire.Event(nil), wf.events...)
	if wf.state == StateDone || wf.state == StateFailed {
		return replay, nil, func() {}
	}
	ch = make(chan wire.Event, subscriberBuffer)
	if wf.subs == nil {
		wf.subs = make(map[chan wire.Event]struct{})
	}
	wf.subs[ch] = struct{}{}
	return replay, ch, func() {
		wf.mu.Lock()
		delete(wf.subs, ch)
		wf.mu.Unlock()
	}
}

// subscriberBuffer is the per-SSE-connection event buffer. A consumer
// that falls further behind than this starts losing live events (counted,
// see workflow.append); 256 matches the root Session's buffer.
const subscriberBuffer = 256

// finish moves the workflow to its terminal state and closes every live
// subscription. The decoded submission (graph,
// cost matrix, pool) and the result's full schedule are released here:
// the status API reports makespans and decisions, not placements, and a
// retained terminal record should pin only what it can still serve.
func (wf *workflow) finish(res *planner.Result, err error) {
	if res != nil {
		res.Schedule = nil
	}
	wf.mu.Lock()
	wf.doneAt = time.Now()
	wf.res, wf.err = res, err
	wf.sub = nil
	if err != nil {
		wf.state = StateFailed
	} else {
		wf.state = StateDone
	}
	subs := wf.subs
	wf.subs = nil
	wf.mu.Unlock()
	for ch := range subs {
		close(ch)
	}
}

// status assembles the wire.Status document.
func (wf *workflow) status() wire.Status {
	wf.mu.Lock()
	defer wf.mu.Unlock()
	if wf.frozen != nil {
		return *wf.frozen
	}
	st := wire.Status{
		ID:        wf.id,
		Name:      wf.name,
		State:     wf.state,
		Policy:    wf.pol.Name(),
		Shard:     wf.shard,
		Jobs:      wf.jobs,
		Resources: wf.resources,
		Events:    len(wf.events),
	}
	if wf.live {
		st.Mode = wire.ModeLive
		st.Tenant = wf.tenant
		st.Generation = wf.generation
		st.Reports = wf.reports
	}
	if wf.gridRef != nil {
		st.Grid = wf.gridRef.name
	}
	switch {
	case !wf.startedAt.IsZero():
		st.QueueMs = wf.startedAt.Sub(wf.submittedAt).Seconds() * 1e3
	default:
		st.QueueMs = time.Since(wf.submittedAt).Seconds() * 1e3
	}
	if !wf.doneAt.IsZero() && !wf.startedAt.IsZero() {
		st.ComputeMs = wf.doneAt.Sub(wf.startedAt).Seconds() * 1e3
	}
	if wf.err != nil {
		st.Error = wf.err.Error()
	}
	if wf.res != nil {
		st.Makespan = wf.res.Makespan
		st.InitialMakespan = wf.res.InitialMakespan
		st.Improvement = wf.res.Improvement()
		st.Adoptions = wf.res.Adoptions()
		st.Decisions = make([]wire.Decision, len(wf.res.Decisions))
		for i, d := range wf.res.Decisions {
			st.Decisions[i] = wireDecision(d)
		}
	}
	return st
}

func wireDecision(d planner.Decision) wire.Decision {
	wd := wire.Decision{
		Clock:        d.Clock,
		PoolSize:     d.PoolSize,
		OldMakespan:  d.OldMakespan,
		NewMakespan:  d.NewMakespan,
		Adopted:      d.Adopted,
		JobsFinished: d.JobsFinished,
		Trigger:      d.Trigger.String(),
		Arrived:      d.ArrivedCount,
		Path:         d.Path,
		Cone:         d.ConeSize,
		Fallback:     d.FallbackReason,
		ElapsedMs:    d.ElapsedMs,
		RankMs:       d.RankMs,
		PlaceMs:      d.PlaceMs,
	}
	if math.IsInf(wd.OldMakespan, 1) {
		// A departure made the old plan infeasible; JSON cannot carry
		// +Inf, so the wire form uses the -1 sentinel.
		wd.OldMakespan = -1
	}
	return wd
}

// shard is one session worker: a bounded intake queue drained in batches
// by a single goroutine that runs each workflow through its own
// kernel-backed planner pipeline. One goroutine per shard means the
// kernel's hot-path scratch (rank cache, dense state, placement arrays —
// allocated per run by planner.RunPolicyObserved) is never shared across
// goroutines, and workflows hashed to the same shard execute in
// submission order.
//
// Live-mode workflows stay resident on the shard after their initial
// plan: run-time reports and what-if queries reach them through cmds, so
// every touch of a live tracker (and its kernel) happens on this one
// goroutine too. The shard also owns its tenants' Performance History
// Repositories — the repositories themselves are thread-safe (metrics
// readers aggregate them concurrently), but their lifecycle (creation,
// LRU eviction) is the shard's.
type shard struct {
	id  int
	srv *Server
	// adm is the shard's admission controller: the bounded, weighted
	// fair queue between HTTP intake and this worker. The submit path
	// enqueues; the worker serves one item per select wakeup through
	// Ready/TryDequeue, so tenants drain in two-level DRR order and
	// intake interleaves fairly with the report/what-if command stream.
	adm  *admission.Controller
	cmds chan shardCmd
	live map[string]*workflow // live workflows resident on this shard

	// wal is the shard's durability state (nil when Config.DataDir is
	// empty; see durable.go).
	wal *shardWAL

	histMu    sync.Mutex
	hist      map[string]*history.Repository // per tenant
	histOrder []string                       // LRU order, oldest first
}

// run is the worker loop. It exits when the admission controller is
// closed (drain) after serving everything still queued *and* every
// resident live workflow has finished — live runs drain at their
// clients' pace, so a shard keeps serving reports after intake closes
// until the drain deadline force-cancels (runCtx). Intake is
// deliberately one item per wakeup: execution is sequential per shard
// either way, items left in the controller keep counting against the
// admission bounds (so a shard never holds more accepted-but-unstarted
// work than it promised before 429ing), and the controller re-arms its
// signal while work remains, so a deep backlog cannot starve the
// report/what-if command stream out of the select.
func (sh *shard) run() {
	defer sh.srv.workers.Done()
	intake := sh.adm.Ready()
	// Periodic snapshots run on this goroutine so they can read live
	// trackers; disabled (nil channel) when the daemon is not durable.
	var snapC <-chan time.Time
	if sh.wal != nil {
		t := time.NewTicker(sh.srv.cfg.SnapshotInterval)
		defer t.Stop()
		snapC = t.C
	}
	for {
		if intake == nil && len(sh.live) == 0 {
			return
		}
		// Commands first: report/upgrade traffic from resident live
		// workflows is latency-sensitive, while intake is throughput
		// work. Draining pending commands before taking the next
		// admission keeps a flood of queued submissions from wedging
		// itself between an enactor's consecutive round trips.
		select {
		case c := <-sh.cmds:
			sh.handleCmd(c)
			continue
		default:
		}
		select {
		case <-intake:
			if d, ok := sh.adm.TryDequeue(); ok {
				sh.executeAdmitted(d)
			}
			if sh.adm.Drained() {
				intake = nil
			}
		case c := <-sh.cmds:
			sh.handleCmd(c)
		case <-snapC:
			sh.snapshot()
		case <-sh.srv.runCtx.Done():
			// Force-cancel: fail-fast whatever is still queued — a
			// queued live workflow parks itself and is swept up by the
			// cancel below — then fail the resident live runs.
			for {
				d, ok := sh.adm.TryDequeue()
				if !ok {
					break
				}
				sh.executeAdmitted(d)
			}
			sh.cancelLive(sh.srv.runCtx.Err())
			return
		}
	}
}

// executeAdmitted unwraps one admission decision and runs the workflow.
// The fast path binds here — at dequeue, when the backlog depth is
// known — and only for live adaptive-policy workflows: an analytic run
// has no tracker to upgrade, and a non-adaptive policy would never pay
// the planning debt back.
func (sh *shard) executeAdmitted(d admission.Dequeued) {
	wf := d.Item.Value.(*workflow)
	if d.FastPath && wf.live && wf.pol.Adaptive() {
		wf.fastPath = true
		if ci, ok := admission.ClassIndex(wf.class); ok {
			sh.srv.metrics.admFastPath[ci].Add(1)
		}
	}
	sh.srv.metrics.admWaitMs.record(d.Queued.Seconds() * 1e3)
	sh.execute(wf)
}

// execute runs one workflow: live submissions are planned and parked for
// the report loop, analytic submissions run to completion through the
// analytic planner engine, streaming every rescheduling decision into the
// workflow's event log as it is made.
func (sh *shard) execute(wf *workflow) {
	m := sh.srv.metrics
	if sh.srv.execHook != nil {
		sh.srv.execHook(wf)
	}
	wf.queueAct.End()
	// The flight recorder taps the submission here — at the moment this
	// worker starts processing it, not at HTTP accept time — so the
	// per-shard record stream is in processing order (see record.go).
	if rec := sh.srv.recorder; rec != nil && wf.recBody != nil {
		rec.submission(sh.id, wf.id, wf.recBody)
		wf.recBody = nil
	}
	if wf.live {
		sh.startLive(wf)
		return
	}
	wf.mu.Lock()
	wf.state = StateRunning
	wf.startedAt = time.Now()
	wf.mu.Unlock()
	wf.append(m, wire.Event{Kind: "started"})
	planAct := sh.srv.tracer.Start(obs.StagePlan, wf.id)
	if planAct != nil {
		planAct.Span.Parent = wf.rootSpan
		planAct.Span.Shard = sh.id
		planAct.Span.Tenant = wf.tenant
	}

	// Decisions are tallied in the observer, not from the result: a run
	// that fails mid-way still made (and streamed) its evaluations, and
	// the decisions/reschedules counters must agree with the decision
	// events in events_emitted.
	decisions, adoptions := 0, 0
	res, err := planner.RunPolicyObserved(sh.srv.runCtx, wf.sub.Graph, cost.Exact(wf.sub.Comp), wf.sub.Pool,
		wf.pol, wf.opts, func(d planner.Decision) {
			decisions++
			if d.Adopted {
				adoptions++
			}
			if rec := sh.srv.recorder; rec != nil {
				rec.decision(sh.id, wf.id, d)
			}
			wd := wireDecision(d)
			wf.append(m, wire.Event{
				Kind: "decision", Time: d.Clock, Decision: &wd,
				Trigger: wd.Trigger, Arrived: wd.Arrived,
			})
		})

	// The terminal event goes into the log (and to live subscribers)
	// before finish closes the subscription channels, so a follower sees
	// "done"/"failed" and then the close.
	if err != nil {
		planAct.Fail(err)
		if rec := sh.srv.recorder; rec != nil {
			rec.done(sh.id, wf.id, StateFailed, 0, err.Error())
		}
		wf.append(m, wire.Event{Kind: "failed", Error: err.Error()})
		wf.finish(res, err)
		m.workflowDone(true, time.Since(wf.startedAt), decisions, adoptions)
		sh.srv.retire(wf.id)
		sh.walLogTerminal(wf)
		return
	}
	planAct.End()
	if rec := sh.srv.recorder; rec != nil {
		rec.done(sh.id, wf.id, StateDone, res.Makespan, "")
	}
	wf.append(m, wire.Event{Kind: "done", Time: res.Makespan, Makespan: res.Makespan})
	wf.finish(res, err)
	m.workflowDone(false, time.Since(wf.startedAt), decisions, adoptions)
	sh.srv.retire(wf.id)
	sh.walLogTerminal(wf)
}

// shardFor routes a workflow ID to a shard with Jump Consistent Hash
// (Lamping & Veach) over the ID's FNV-1a digest: uniform, stateless, and
// stable — growing the shard count moves only ~1/n of the keyspace.
func shardFor(id string, shards int) int {
	h := fnv.New64a()
	h.Write([]byte(id))
	return jumpHash(h.Sum64(), shards)
}

func jumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}
