package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"aheft/internal/obs"
	"aheft/internal/planner"
	"aheft/internal/wire"
	"aheft/internal/workload"
)

// getTrace fetches and decodes a workflow's span log from the trace
// endpoint.
func getTrace(t testing.TB, ts *httptest.Server, id string) []obs.Span {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/workflows/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace %s: HTTP %d", id, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace content type %q", ct)
	}
	var spans []obs.Span
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var sp obs.Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("trace line %q: %v", sc.Text(), err)
		}
		spans = append(spans, sp)
	}
	return spans
}

// byStage indexes the first span per stage.
func byStage(spans []obs.Span) map[string]obs.Span {
	m := map[string]obs.Span{}
	for _, sp := range spans {
		if _, ok := m[sp.Stage]; !ok {
			m[sp.Stage] = sp
		}
	}
	return m
}

// TestTraceAnalyticWorkflow pins the span chain of an analytic run:
// intake → queue → plan, parented correctly, all on the owning shard,
// retained by the trace endpoint and rolled into /metrics.
func TestTraceAnalyticWorkflow(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, Tracing: true})
	sc := workload.SampleScenario()
	sub, _ := submit(t, ts, encodeScenario(t, sc, "aheft", wire.Options{TieWindow: 0.05}))
	waitDone(t, ts, sub.ID)

	spans := getTrace(t, ts, sub.ID)
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want intake+queue+plan: %+v", len(spans), spans)
	}
	st := byStage(spans)
	in, q, plan := st[obs.StageIntake], st[obs.StageQueue], st[obs.StagePlan]
	if in.ID == 0 || q.ID == 0 || plan.ID == 0 {
		t.Fatalf("missing stages: %+v", st)
	}
	if q.Parent != in.ID || plan.Parent != in.ID {
		t.Fatalf("parent chain: intake=%d queue.parent=%d plan.parent=%d", in.ID, q.Parent, plan.Parent)
	}
	if q.Shard != in.Shard || plan.Shard != in.Shard {
		t.Fatalf("spans scattered across shards: %+v", spans)
	}
	for _, sp := range spans {
		if sp.Workflow != sub.ID || sp.End < sp.Start {
			t.Fatalf("span identity/clock: %+v", sp)
		}
	}

	m := getMetrics(t, ts)
	if m.TraceSpans < 3 || m.TraceSpansDropped != 0 {
		t.Fatalf("trace counters: spans=%d dropped=%d", m.TraceSpans, m.TraceSpansDropped)
	}
	if m.TraceStageMs[obs.StagePlan].Count == 0 || m.TraceStageMs[obs.StageIntake].Count == 0 {
		t.Fatalf("stage rollups: %+v", m.TraceStageMs)
	}
}

// TestTraceLiveCausalChain drives the paper's worked example through the
// live feedback loop with tracing on and checks the causal structure the
// tentpole promises: the report's ingest span parents the evaluation it
// triggered, the adoption parents onto the evaluation, and the enacted
// plan generations appear as enact spans.
func TestTraceLiveCausalChain(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, Tracing: true})
	sc := workload.SampleScenario()
	var sub wire.Submitted
	if code, msg := postJSON(t, ts, "/v1/workflows", encodeLive(t, sc, "aheft", "acme", wire.Options{TieWindow: 0.05}), &sub); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d %s", code, msg)
	}
	plan := fetchPlan(t, ts, sub.ID)

	evs := append(replayPrefix(plan, 15), wire.ReportEvent{
		Kind: wire.ReportResourceJoin, Time: 15, Resource: 3,
	})
	var ack wire.ReportAck
	if code, msg := postJSON(t, ts, "/v1/workflows/"+sub.ID+"/report", encodeReport(t, evs...), &ack); code != http.StatusOK {
		t.Fatalf("report: HTTP %d %s", code, msg)
	}
	if !ack.Rescheduled || ack.Generation != 2 {
		t.Fatalf("join ack: %+v", ack)
	}
	// Enact the new plan to completion so the drain in cleanup is
	// instant.
	started, finished := map[int]bool{}, map[int]bool{}
	for _, ev := range evs {
		switch ev.Kind {
		case wire.ReportJobStarted:
			started[ev.Job] = true
		case wire.ReportJobFinished:
			finished[ev.Job] = true
		}
	}
	var tail []wire.ReportEvent
	for _, a := range ack.Plan.Assignments {
		if finished[a.Job] {
			continue
		}
		if !started[a.Job] {
			tail = append(tail, wire.ReportEvent{Kind: wire.ReportJobStarted, Time: a.Start, Job: a.Job, Resource: a.Resource})
		}
		tail = append(tail, wire.ReportEvent{Kind: wire.ReportJobFinished, Time: a.Finish, Job: a.Job, Duration: a.Finish - a.Start})
	}
	sort.SliceStable(tail, func(i, j int) bool {
		if tail[i].Time != tail[j].Time {
			return tail[i].Time < tail[j].Time
		}
		return tail[i].Kind == wire.ReportJobStarted && tail[j].Kind != wire.ReportJobStarted
	})
	if code, msg := postJSON(t, ts, "/v1/workflows/"+sub.ID+"/report", encodeReport(t, tail...), nil); code != http.StatusOK {
		t.Fatalf("tail report: HTTP %d %s", code, msg)
	}
	waitDone(t, ts, sub.ID)

	spans := getTrace(t, ts, sub.ID)
	st := byStage(spans)
	for _, stage := range []string{obs.StageIntake, obs.StageQueue, obs.StagePlan, obs.StageIngest, obs.StageEvaluate, obs.StageAdopt, obs.StageEnact} {
		if _, ok := st[stage]; !ok {
			t.Fatalf("stage %q missing from trace: %+v", stage, spans)
		}
	}
	ingest, eval, adopt := st[obs.StageIngest], st[obs.StageEvaluate], st[obs.StageAdopt]
	if eval.Parent != ingest.ID {
		t.Fatalf("evaluate.parent=%d, ingest span is %d", eval.Parent, ingest.ID)
	}
	if eval.Trigger != "arrival" || !eval.Adopted || eval.Path == "" {
		t.Fatalf("evaluate attrs: %+v", eval)
	}
	if adopt.Parent != eval.ID || adopt.Generation != 2 {
		t.Fatalf("adopt span: %+v (evaluate is %d)", adopt, eval.ID)
	}
	// Two enact spans: the initial GET …/plan (gen 1, parented on the
	// root intake span) and the report-ack piggyback (gen 2, parented on
	// the ingest span).
	gens := map[int]obs.Span{}
	for _, sp := range spans {
		if sp.Stage == obs.StageEnact {
			gens[sp.Generation] = sp
		}
	}
	if len(gens) != 2 {
		t.Fatalf("enact generations: %+v", gens)
	}
	if gens[1].Parent != st[obs.StageIntake].ID || gens[2].Parent != ingest.ID {
		t.Fatalf("enact parents: gen1=%+v gen2=%+v", gens[1], gens[2])
	}
}

// TestTraceEndpointErrors pins the endpoint's failure modes: 409 when
// tracing is off, 404 for an unknown workflow.
func TestTraceEndpointErrors(t *testing.T) {
	_, off := newTestServer(t, Config{Shards: 1})
	resp, err := off.Client().Get(off.URL + "/v1/workflows/wf-0000000001/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("tracing-off trace: HTTP %d, want 409", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{Shards: 1, Tracing: true})
	resp, err = on.Client().Get(on.URL + "/v1/workflows/wf-9999999999/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown workflow trace: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestFallbackReasonBreakdown pins satellite 1: full-fallback decisions
// split by the kernel's reason in the metrics document.
func TestFallbackReasonBreakdown(t *testing.T) {
	m := NewMetrics()
	m.recordDecision(planner.Decision{Path: "delta", Trigger: planner.TriggerVariance})
	m.recordDecision(planner.Decision{Path: "full", FallbackReason: "cone-overflow", Trigger: planner.TriggerVariance})
	m.recordDecision(planner.Decision{Path: "full", FallbackReason: "cone-overflow", Trigger: planner.TriggerArrival})
	m.recordDecision(planner.Decision{Path: "full", FallbackReason: "pool-changed", Trigger: planner.TriggerArrival})

	doc := m.snapshot(nil, 0, 0, 0, 0, 0, AdmissionGauges{}, DurabilityStats{}, ObsStats{})
	if doc.ReschedulesDelta != 1 || doc.ReschedulesFullFallback != 3 {
		t.Fatalf("path split: delta=%d full=%d", doc.ReschedulesDelta, doc.ReschedulesFullFallback)
	}
	want := map[string]uint64{"cone-overflow": 2, "pool-changed": 1}
	if len(doc.ReschedulesFullFallbackByReason) != len(want) {
		t.Fatalf("by-reason: %+v", doc.ReschedulesFullFallbackByReason)
	}
	for r, n := range want {
		if doc.ReschedulesFullFallbackByReason[r] != n {
			t.Fatalf("reason %q = %d, want %d", r, doc.ReschedulesFullFallbackByReason[r], n)
		}
	}
}

// TestPrometheusExposition pins satellite 2: the metrics endpoint
// negotiates the Prometheus text format via ?format= and Accept, keeps
// JSON as the default, and renders the families scrape configs depend
// on with sorted, stable labels.
func TestPrometheusExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, Tracing: true})
	sc := workload.SampleScenario()
	sub, _ := submit(t, ts, encodeScenario(t, sc, "aheft", wire.Options{TieWindow: 0.05}))
	waitDone(t, ts, sub.ID)

	get := func(path, accept string) (string, string) {
		req, _ := http.NewRequest("GET", ts.URL+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			b.WriteString(sc.Text())
			b.WriteString("\n")
		}
		return resp.Header.Get("Content-Type"), b.String()
	}

	// Default stays JSON.
	ct, body := get("/metrics", "")
	if !strings.Contains(ct, "application/json") || !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Fatalf("default /metrics: ct=%q body=%q…", ct, body[:min(len(body), 60)])
	}

	for _, variant := range []struct{ path, accept string }{
		{"/metrics?format=prometheus", ""},
		{"/metrics", "text/plain"},
		{"/metrics", "application/openmetrics-text"},
	} {
		ct, body = get(variant.path, variant.accept)
		if !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
			t.Fatalf("%s (Accept %q): content type %q", variant.path, variant.accept, ct)
		}
		for _, want := range []string{
			"# TYPE aheft_submissions_total counter",
			"aheft_submissions_total 1",
			"aheft_completed_total 1",
			"# TYPE aheft_inflight gauge",
			"aheft_trace_spans_total",
			`aheft_queue_depth{shard="0"}`,
			`aheft_queue_depth{shard="1"}`,
			`aheft_trace_stage_ms{stage="plan",quantile="0.5"}`,
			`aheft_trace_stage_ms_count{stage="plan"}`,
		} {
			if !strings.Contains(body, want) {
				t.Fatalf("%s: exposition missing %q:\n%s", variant.path, want, body)
			}
		}
	}

	// ?format=json forces JSON whatever the Accept header says.
	ct, _ = get("/metrics?format=json", "text/plain")
	if !strings.Contains(ct, "application/json") {
		t.Fatalf("format=json override: content type %q", ct)
	}
}
