package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"aheft/internal/wire"
	"aheft/internal/workload"
)

func encodeLive(t testing.TB, sc *workload.Scenario, policy, tenant string, opts wire.Options) []byte {
	t.Helper()
	data, err := wire.EncodeSubmission(&wire.Submission{
		Mode:    wire.ModeLive,
		Tenant:  tenant,
		Policy:  policy,
		Options: opts,
		Graph:   sc.Graph,
		Comp:    sc.Table,
		Pool:    sc.Pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func postJSON(t testing.TB, ts *httptest.Server, path string, body []byte, v any) (int, string) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var ed errorDoc
		_ = json.NewDecoder(resp.Body).Decode(&ed)
		return resp.StatusCode, ed.Error
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, ""
}

// fetchPlan polls GET …/plan until the shard has planned the workflow.
func fetchPlan(t testing.TB, ts *httptest.Server, id string) wire.Plan {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := ts.Client().Get(ts.URL + "/v1/workflows/" + id + "/plan")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var plan wire.Plan
			if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return plan
		}
		resp.Body.Close()
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("workflow %s never produced a plan", id)
	return wire.Plan{}
}

func encodeReport(t testing.TB, events ...wire.ReportEvent) []byte {
	t.Helper()
	data, err := wire.EncodeReport(&wire.Report{Events: events})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// replayPrefix builds the report events of a faithful execution of plan
// up to clock: starts for everything begun, measured finishes for
// everything completed.
func replayPrefix(plan wire.Plan, clock float64) []wire.ReportEvent {
	var evs []wire.ReportEvent
	for _, a := range plan.Assignments {
		if a.Start < clock {
			evs = append(evs, wire.ReportEvent{
				Kind: wire.ReportJobStarted, Time: a.Start, Job: a.Job, Resource: a.Resource,
			})
		}
		if a.Finish <= clock {
			evs = append(evs, wire.ReportEvent{
				Kind: wire.ReportJobFinished, Time: a.Finish, Job: a.Job, Duration: a.Finish - a.Start,
			})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Time != evs[j].Time {
			return evs[i].Time < evs[j].Time
		}
		return evs[i].Kind == wire.ReportJobStarted && evs[j].Kind != wire.ReportJobStarted
	})
	return evs
}

// TestLiveSampleFeedbackLoop walks the paper's worked example through the
// HTTP feedback loop: live submission, plan fetch (static HEFT, 80),
// faithful enactment reports up to t=15, a resource-join report that
// must come back as an adopted arrival reschedule (76), enactment of the
// new plan, and a terminal makespan of 76 — with the trigger recorded in
// the SSE event log and the per-trigger metrics.
func TestLiveSampleFeedbackLoop(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2})
	sc := workload.SampleScenario()
	var sub wire.Submitted
	if code, msg := postJSON(t, ts, "/v1/workflows", encodeLive(t, sc, "aheft", "acme", wire.Options{TieWindow: 0.05}), &sub); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d %s", code, msg)
	}
	plan := fetchPlan(t, ts, sub.ID)
	if plan.Generation != 1 || plan.Trigger != "initial" || plan.Makespan != 80 || len(plan.Assignments) != 10 {
		t.Fatalf("initial plan: %+v", plan)
	}

	// Enact faithfully to t=15, then report the r4 join.
	evs := append(replayPrefix(plan, 15), wire.ReportEvent{
		Kind: wire.ReportResourceJoin, Time: 15, Resource: 3,
	})
	var ack wire.ReportAck
	if code, msg := postJSON(t, ts, "/v1/workflows/"+sub.ID+"/report", encodeReport(t, evs...), &ack); code != http.StatusOK {
		t.Fatalf("report: HTTP %d %s", code, msg)
	}
	if !ack.Rescheduled || ack.Trigger != "arrival" || ack.Generation != 2 || ack.Plan == nil {
		t.Fatalf("join ack: %+v", ack)
	}
	if ack.Plan.Makespan != 76 {
		t.Fatalf("rescheduled makespan %g, want 76", ack.Plan.Makespan)
	}

	// Enact the new plan to completion: finish the running jobs and
	// start+finish the rest at their planned times.
	started := map[int]bool{}
	finished := map[int]bool{}
	for _, ev := range evs {
		switch ev.Kind {
		case wire.ReportJobStarted:
			started[ev.Job] = true
		case wire.ReportJobFinished:
			finished[ev.Job] = true
		}
	}
	var tail []wire.ReportEvent
	for _, a := range ack.Plan.Assignments {
		if finished[a.Job] {
			continue
		}
		if !started[a.Job] {
			tail = append(tail, wire.ReportEvent{
				Kind: wire.ReportJobStarted, Time: a.Start, Job: a.Job, Resource: a.Resource,
			})
		}
		tail = append(tail, wire.ReportEvent{
			Kind: wire.ReportJobFinished, Time: a.Finish, Job: a.Job, Duration: a.Finish - a.Start,
		})
	}
	sort.SliceStable(tail, func(i, j int) bool {
		if tail[i].Time != tail[j].Time {
			return tail[i].Time < tail[j].Time
		}
		return tail[i].Kind == wire.ReportJobStarted && tail[j].Kind != wire.ReportJobStarted
	})
	var ack2 wire.ReportAck
	if code, msg := postJSON(t, ts, "/v1/workflows/"+sub.ID+"/report", encodeReport(t, tail...), &ack2); code != http.StatusOK {
		t.Fatalf("tail report: HTTP %d %s", code, msg)
	}
	if !ack2.Done || ack2.Makespan != 76 {
		t.Fatalf("final ack: %+v", ack2)
	}

	st := waitDone(t, ts, sub.ID)
	if st.State != StateDone || st.Makespan != 76 || st.InitialMakespan != 80 {
		t.Fatalf("status: %+v", st)
	}
	if st.Mode != wire.ModeLive || st.Tenant != "acme" || st.Generation != 2 || st.Reports != 2 {
		t.Fatalf("live status fields: %+v", st)
	}
	if len(st.Decisions) != 1 || !st.Decisions[0].Adopted || st.Decisions[0].Trigger != "arrival" || st.Decisions[0].Arrived != 1 {
		t.Fatalf("decisions: %+v", st.Decisions)
	}

	// The SSE log must carry the plan generations and the decision with
	// its trigger lifted into the envelope.
	resp, err := ts.Client().Get(ts.URL + "/v1/workflows/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var kinds []string
	scanner := bufio.NewScanner(resp.Body)
	lastSeq := -1
	for scanner.Scan() {
		data, ok := strings.CutPrefix(scanner.Text(), "data: ")
		if !ok {
			continue
		}
		var ev wire.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Seq != lastSeq+1 {
			t.Fatalf("seq gap at %d", ev.Seq)
		}
		lastSeq = ev.Seq
		kinds = append(kinds, ev.Kind)
		switch {
		case ev.Kind == "decision":
			if ev.Trigger != "arrival" || ev.Arrived != 1 || ev.Decision == nil || ev.Decision.Trigger != "arrival" {
				t.Fatalf("decision event lost its trigger: %+v", ev)
			}
		case ev.Kind == "plan" && ev.Generation == 2:
			if ev.Trigger != "arrival" || ev.Makespan != 76 {
				t.Fatalf("reschedule plan event: %+v", ev)
			}
		}
	}
	want := []string{"submitted", "started", "plan", "decision", "plan", "done"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("event kinds %v, want %v", kinds, want)
	}

	m := getMetrics(t, ts)
	if m.Reports != 2 || m.ReschedulesArrival != 1 || m.Reschedules != 1 || m.LiveResident != 0 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.HistoryTenants != 1 || m.HistoryCells == 0 {
		t.Fatalf("history gauges: tenants=%d cells=%d", m.HistoryTenants, m.HistoryCells)
	}
	if m.EventsDropped != 0 {
		t.Fatalf("events dropped: %d", m.EventsDropped)
	}
}

// TestReportRejectionPaths covers every HTTP rejection of the report
// endpoint: unknown workflow, wrong mode, terminal workflow, malformed
// body, and state-invalid events (out-of-range job, non-monotonic
// clock) — each leaving the run untouched and counted in
// reports_rejected.
func TestReportRejectionPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	sc := workload.SampleScenario()

	okReport := encodeReport(t, wire.ReportEvent{Kind: wire.ReportJobStarted, Time: 0, Job: 0, Resource: 0})

	// Unknown workflow.
	if code, _ := postJSON(t, ts, "/v1/workflows/nope/report", okReport, nil); code != http.StatusNotFound {
		t.Fatalf("unknown workflow: HTTP %d", code)
	}
	// Analytic workflows accept no reports.
	aSub, resp := submit(t, ts, encodeScenario(t, sc, "aheft", wire.Options{}))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("analytic submit: HTTP %d", resp.StatusCode)
	}
	waitDone(t, ts, aSub.ID)
	if code, msg := postJSON(t, ts, "/v1/workflows/"+aSub.ID+"/report", okReport, nil); code != http.StatusConflict || !strings.Contains(msg, "live") {
		t.Fatalf("analytic report: HTTP %d %q", code, msg)
	}
	if code, _ := postJSON(t, ts, "/v1/workflows/"+aSub.ID+"/whatif", []byte(`{}`), nil); code != http.StatusConflict {
		t.Fatalf("analytic what-if: HTTP %d", code)
	}

	// Live workflow: bad payloads and bad state transitions.
	var sub wire.Submitted
	if code, _ := postJSON(t, ts, "/v1/workflows", encodeLive(t, sc, "aheft", "", wire.Options{}), &sub); code != http.StatusAccepted {
		t.Fatalf("live submit: HTTP %d", code)
	}
	plan := fetchPlan(t, ts, sub.ID)
	reportURL := "/v1/workflows/" + sub.ID + "/report"
	if code, _ := postJSON(t, ts, reportURL, []byte("{not json"), nil); code != http.StatusBadRequest {
		t.Fatalf("malformed report: HTTP %d", code)
	}
	if code, msg := postJSON(t, ts, reportURL, encodeReport(t,
		wire.ReportEvent{Kind: wire.ReportJobStarted, Time: 0, Job: 500, Resource: 0},
	), nil); code != http.StatusBadRequest || !strings.Contains(msg, "out of range") {
		t.Fatalf("out-of-range job: HTTP %d %q", code, msg)
	}
	if code, msg := postJSON(t, ts, reportURL, encodeReport(t,
		wire.ReportEvent{Kind: wire.ReportJobFinished, Time: 3, Job: 0, Duration: 3},
	), nil); code != http.StatusBadRequest || !strings.Contains(msg, "before it started") {
		t.Fatalf("finish before start: HTTP %d %q", code, msg)
	}
	// Advance the clock, then try to report the past.
	if code, _ := postJSON(t, ts, reportURL, encodeReport(t,
		wire.ReportEvent{Kind: wire.ReportJobStarted, Time: 10, Job: 0, Resource: 0},
	), nil); code != http.StatusOK {
		t.Fatalf("clock advance: HTTP %d", code)
	}
	if code, msg := postJSON(t, ts, reportURL, encodeReport(t,
		wire.ReportEvent{Kind: wire.ReportJobStarted, Time: 5, Job: 1, Resource: 0},
	), nil); code != http.StatusBadRequest || !strings.Contains(msg, "non-monotonic") {
		t.Fatalf("non-monotonic: HTTP %d %q", code, msg)
	}

	// Drive the live workflow terminal, then report again.
	var evs []wire.ReportEvent
	evs = append(evs, wire.ReportEvent{Kind: wire.ReportJobFinished, Time: 20, Job: 0, Duration: 10})
	for _, a := range plan.Assignments {
		if a.Job == 0 {
			continue
		}
		evs = append(evs, wire.ReportEvent{Kind: wire.ReportJobStarted, Time: 20, Job: a.Job, Resource: a.Resource})
	}
	clock := 21.0
	for _, a := range plan.Assignments {
		if a.Job == 0 {
			continue
		}
		evs = append(evs, wire.ReportEvent{Kind: wire.ReportJobFinished, Time: clock, Job: a.Job, Duration: 1})
		clock++
	}
	var ack wire.ReportAck
	if code, msg := postJSON(t, ts, reportURL, encodeReport(t, evs...), &ack); code != http.StatusOK || !ack.Done {
		t.Fatalf("completion report: HTTP %d %q %+v", code, msg, ack)
	}
	if code, msg := postJSON(t, ts, reportURL, okReport, nil); code != http.StatusConflict || !strings.Contains(msg, "terminal") {
		t.Fatalf("terminal report: HTTP %d %q", code, msg)
	}

	// Seven rejections crossed the report endpoint: unknown workflow,
	// analytic mode, malformed body, out-of-range job, finish-before-
	// start, non-monotonic clock, terminal workflow.
	m := getMetrics(t, ts)
	if m.ReportsRejected != 7 {
		t.Fatalf("reports_rejected = %d, want 7", m.ReportsRejected)
	}
}

// TestWhatIfEndpoint asks the §3.3 capacity question over HTTP against a
// live run mid-execution.
func TestWhatIfEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shards: 1})
	sc := workload.SampleScenario()
	var sub wire.Submitted
	if code, _ := postJSON(t, ts, "/v1/workflows", encodeLive(t, sc, "aheft", "", wire.Options{TieWindow: 0.05}), &sub); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	plan := fetchPlan(t, ts, sub.ID)
	if code, _ := postJSON(t, ts, "/v1/workflows/"+sub.ID+"/report",
		encodeReport(t, replayPrefix(plan, 15)...), nil); code != http.StatusOK {
		t.Fatalf("replay report: HTTP %d", code)
	}

	var doc wire.WhatIfDoc
	q, _ := json.Marshal(wire.WhatIfRequest{Clock: 15, Add: []int{3}})
	if code, msg := postJSON(t, ts, "/v1/workflows/"+sub.ID+"/whatif", q, &doc); code != http.StatusOK {
		t.Fatalf("what-if: HTTP %d %q", code, msg)
	}
	if doc.Workflow != sub.ID || doc.Clock != 15 || doc.CurrentMakespan != 80 || doc.NewMakespan != 76 || !doc.WouldAdopt {
		t.Fatalf("what-if doc: %+v", doc)
	}
	// The tentative query must not have moved the plan.
	if p := fetchPlan(t, ts, sub.ID); p.Generation != 1 {
		t.Fatalf("what-if mutated the plan: %+v", p)
	}
	// Bad hypotheses bounce.
	q, _ = json.Marshal(wire.WhatIfRequest{Remove: []int{0, 1, 2, 3}})
	if code, _ := postJSON(t, ts, "/v1/workflows/"+sub.ID+"/whatif", q, nil); code != http.StatusBadRequest {
		t.Fatalf("empty-pool what-if: HTTP %d", code)
	}
	if code, _ := postJSON(t, ts, "/v1/workflows/"+sub.ID+"/whatif", []byte("{bad"), nil); code != http.StatusBadRequest {
		t.Fatalf("malformed what-if: HTTP %d", code)
	}
	if m := getMetrics(t, ts); m.WhatIfQueries != 1 {
		t.Fatalf("whatif_queries = %d, want 1", m.WhatIfQueries)
	}
	// The live run is deliberately left unfinished; drain it on a short
	// deadline so the test cleanup doesn't sit out the full timeout.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_ = srv.Shutdown(ctx)
}

// TestLiveDrain covers both drain outcomes for resident live workflows:
// a clean drain waits for the reporting client to finish, and an expired
// drain deadline force-fails what remains.
func TestLiveDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shards: 1})
	sc := workload.SampleScenario()
	var sub wire.Submitted
	if code, _ := postJSON(t, ts, "/v1/workflows", encodeLive(t, sc, "aheft", "", wire.Options{}), &sub); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	plan := fetchPlan(t, ts, sub.ID)

	// Begin a clean drain; the live workflow must keep accepting reports
	// and the drain must complete once it finishes.
	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Shutdown(context.Background()) }()
	// New submissions are refused while draining…
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, _ := postJSON(t, ts, "/v1/workflows", encodeLive(t, sc, "aheft", "", wire.Options{}), nil); code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining daemon kept accepting submissions")
		}
	}
	// …but the resident run drains at its client's pace.
	var evs []wire.ReportEvent
	for _, a := range plan.Assignments {
		evs = append(evs, wire.ReportEvent{Kind: wire.ReportJobStarted, Time: a.Start, Job: a.Job, Resource: a.Resource},
			wire.ReportEvent{Kind: wire.ReportJobFinished, Time: a.Finish, Job: a.Job, Duration: a.Finish - a.Start})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Time != evs[j].Time {
			return evs[i].Time < evs[j].Time
		}
		return evs[i].Kind == wire.ReportJobStarted && evs[j].Kind != wire.ReportJobStarted
	})
	var ack wire.ReportAck
	if code, msg := postJSON(t, ts, "/v1/workflows/"+sub.ID+"/report", encodeReport(t, evs...), &ack); code != http.StatusOK || !ack.Done {
		t.Fatalf("drain-time report: HTTP %d %q %+v", code, msg, ack)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("clean drain: %v", err)
	}
	if st := getStatus(t, ts, sub.ID); st.State != StateDone {
		t.Fatalf("drained workflow: %+v", st)
	}

	// Second daemon: the deadline expires on an abandoned live run.
	srv2, ts2 := newTestServer(t, Config{Shards: 1})
	var sub2 wire.Submitted
	if code, _ := postJSON(t, ts2, "/v1/workflows", encodeLive(t, sc, "aheft", "", wire.Options{}), &sub2); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	fetchPlan(t, ts2, sub2.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv2.Shutdown(ctx); err == nil {
		t.Fatal("expired drain reported success")
	}
	if st := getStatus(t, ts2, sub2.ID); st.State != StateFailed {
		t.Fatalf("abandoned live workflow: %+v", st)
	}
}
