package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"aheft/internal/grid"
	"aheft/internal/occupancy"
	"aheft/internal/planner"
	"aheft/internal/wire"
)

// This file is the shared-grid half of the daemon: named, shard-resident
// resource grids that live workflows attach to with pool: "shared:<name>"
// instead of shipping a private pool. Every workflow of a grid is routed
// to the grid's shard, so all of its planning — and every read and write
// of the grid's reservation ledger on the planning path — happens on one
// worker goroutine, preserving the kernel discipline while making
// contention endogenous: concurrent workflows see each other's
// reservations as busy intervals and plan around them.
//
//	PUT /v1/grids/{name}  register a grid (wire.GridSpec) → 201 GridStatus
//	GET /v1/grids/{name}  aggregate occupancy             → 200 GridStatus
//	GET /v1/grids         all grids                       → 200 []GridStatus

// sharedGrid is one named grid and its aggregate reservation state.
type sharedGrid struct {
	name   string
	shard  int
	pool   *grid.Pool
	ledger *occupancy.Ledger
	// raw is the registration's wire.GridSpec body, kept verbatim so the
	// durability layer journals and replays exactly what was submitted.
	raw json.RawMessage

	// attached tracks the live workflows currently resident on the grid.
	// Mutations happen on the owning shard's goroutine; the mutex exists
	// for the status/metrics readers.
	mu       sync.Mutex
	attached map[string]*workflow
}

// newSharedGrid builds a grid record for a decoded spec; the ledger
// starts empty (recovery refills it through its restored residents).
// shareCap is the per-tenant reservation share bound (Config
// GridShareCap); zero disables it.
func newSharedGrid(name string, raw json.RawMessage, spec *wire.GridSpec, shards int, shareCap float64) *sharedGrid {
	ledger := occupancy.NewLedger(spec.Pool.Size())
	ledger.SetShareCap(shareCap)
	return &sharedGrid{
		name:     name,
		shard:    shardFor("grid:"+name, shards),
		pool:     spec.Pool,
		ledger:   ledger,
		raw:      append(json.RawMessage(nil), raw...),
		attached: make(map[string]*workflow),
	}
}

func (g *sharedGrid) attach(wf *workflow) {
	g.mu.Lock()
	g.attached[wf.id] = wf
	g.mu.Unlock()
}

func (g *sharedGrid) detach(id string) {
	g.mu.Lock()
	delete(g.attached, id)
	g.mu.Unlock()
}

// residents snapshots the attached workflows except the named one, in
// workflow-ID (= submission) order so survivor notification is
// deterministic.
func (g *sharedGrid) residents(except string) []*workflow {
	g.mu.Lock()
	out := make([]*workflow, 0, len(g.attached))
	for id, wf := range g.attached {
		if id != except {
			out = append(out, wf)
		}
	}
	g.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// status assembles the wire.GridStatus document.
func (g *sharedGrid) status() wire.GridStatus {
	g.mu.Lock()
	attached := len(g.attached)
	g.mu.Unlock()
	owners := g.ledger.Owners()
	st := wire.GridStatus{
		Name:      g.name,
		Shard:     g.shard,
		Resources: g.pool.Size(),
		Attached:  attached,
	}
	names := make([]string, 0, len(owners))
	for id := range owners {
		names = append(names, id)
	}
	sort.Strings(names)
	for _, id := range names {
		st.Reservations += owners[id]
		st.Owners = append(st.Owners, wire.GridOwner{Workflow: id, Reservations: owners[id]})
	}
	chNames, chCounts := g.ledger.Channels()
	for i, ch := range chNames {
		st.TransferReservations += chCounts[i]
		st.Links = append(st.Links, wire.LinkStatus{Channel: ch, Reservations: chCounts[i]})
	}
	return st
}

// gridLookup resolves a registered grid by name.
func (s *Server) gridLookup(name string) (*sharedGrid, bool) {
	s.gridMu.RLock()
	g, ok := s.grids[name]
	s.gridMu.RUnlock()
	return g, ok
}

// gridTotals aggregates the grid gauges for /metrics.
func (s *Server) gridTotals() (grids, reservations, transfers int) {
	s.gridMu.RLock()
	defer s.gridMu.RUnlock()
	for _, g := range s.grids {
		reservations += g.ledger.Total()
		transfers += g.ledger.TransferTotal()
	}
	return len(s.grids), reservations, transfers
}

func (s *Server) handleGridPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !wire.ValidGridName(name) {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("invalid grid name %q", name)})
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("read body: %v", err)})
		return
	}
	spec, err := wire.DecodeGridSpec(data, s.cfg.Limits)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	g := newSharedGrid(name, data, spec, len(s.shards), s.cfg.GridShareCap)
	s.gridMu.Lock()
	switch {
	case s.grids[name] != nil:
		s.gridMu.Unlock()
		writeJSON(w, http.StatusConflict, errorDoc{Error: fmt.Sprintf("grid %q already exists", name)})
		return
	case s.cfg.MaxSharedGrids > 0 && len(s.grids) >= s.cfg.MaxSharedGrids:
		s.gridMu.Unlock()
		writeJSON(w, http.StatusTooManyRequests, errorDoc{Error: fmt.Sprintf("grid limit %d reached", s.cfg.MaxSharedGrids)})
		return
	}
	s.grids[name] = g
	s.gridMu.Unlock()
	s.walLogGrid(g)
	// Recorded at registration time on the owning shard's stream: any
	// submission referencing the grid is only accepted after this 201, so
	// the record precedes every dependent submission record.
	if s.recorder != nil {
		s.recorder.grid(g.shard, name, g.raw)
	}
	writeJSON(w, http.StatusCreated, g.status())
}

func (s *Server) handleGridGet(w http.ResponseWriter, r *http.Request) {
	g, ok := s.gridLookup(r.PathValue("name"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown grid"})
		return
	}
	writeJSON(w, http.StatusOK, g.status())
}

func (s *Server) handleGridList(w http.ResponseWriter, r *http.Request) {
	s.gridMu.RLock()
	names := make([]string, 0, len(s.grids))
	for name := range s.grids {
		names = append(names, name)
	}
	s.gridMu.RUnlock()
	sort.Strings(names)
	out := make([]wire.GridStatus, 0, len(names))
	for _, name := range names {
		if g, ok := s.gridLookup(name); ok {
			out = append(out, g.status())
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// notifyGrid runs the cross-workflow half of the feedback loop: after one
// workflow's reservations released (job finishes, terminal drain), every
// surviving live workflow on the grid reevaluates its plan against the
// freed capacity — the contention trigger. Survivor adoptions bump their
// plan documents; their enactors pick the new plan up with the next
// report ack (the generation piggyback in applyReport). Adoptions are
// deliberately not re-notified: a survivor taking freed capacity does
// not free capacity itself, so the round terminates.
//
// link is the releasing workflow's ingest span (0 when tracing is off):
// every survivor's evaluate span carries it as its causal cross-workflow
// edge — "this replan happened because that batch freed capacity".
func (sh *shard) notifyGrid(g *sharedGrid, except string, link uint64) {
	m := sh.srv.metrics
	for _, wf := range g.residents(except) {
		if sh.live[wf.id] == nil || wf.tracker == nil || wf.tracker.Done() {
			continue
		}
		out := wf.tracker.Reevaluate(planner.TriggerContention)
		m.decisions.Add(uint64(len(out.Decisions)))
		for _, d := range out.Decisions {
			m.recordDecision(d)
			sh.emitDecisionSpans(wf, d, 0, link, except)
			if rec := sh.srv.recorder; rec != nil {
				rec.decision(sh.id, wf.id, d)
			}
			wd := wireDecision(d)
			wf.append(m, wire.Event{
				Kind: "decision", Time: d.Clock, Decision: &wd,
				Trigger: wd.Trigger, Arrived: wd.Arrived,
			})
		}
		if !out.Rescheduled {
			continue
		}
		m.reschedules.Add(1)
		m.reschedContention.Add(1)
		plan := livePlanDoc(wf, planner.TriggerContention.String())
		wf.mu.Lock()
		wf.plan = plan
		wf.generation = plan.Generation
		wf.mu.Unlock()
		if rec := sh.srv.recorder; rec != nil {
			rec.plan(sh.id, plan)
		}
		wf.append(m, wire.Event{
			Kind: "plan", Time: wf.tracker.Clock(), Trigger: plan.Trigger,
			Generation: plan.Generation, Makespan: plan.Makespan,
		})
		// The adoption changed the survivor's plan and reservations; a
		// crash before its next report must restore the adopted state.
		sh.walLogState(wf, nil)
	}
}
