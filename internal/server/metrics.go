package server

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"aheft/internal/admission"
	"aheft/internal/obs"
	"aheft/internal/planner"
	"aheft/internal/stats"
)

// Metrics is the daemon's counter set, exposed as an expvar-style JSON
// document on GET /metrics. All counters are monotonic atomics; gauges
// (queue depth, in-flight) are computed at read time from authoritative
// state, except the in-flight high-water mark which is tracked on the
// submission path.
type Metrics struct {
	start time.Time

	// Submission path.
	submissions     atomic.Uint64 // POST /v1/workflows requests
	accepted        atomic.Uint64 // enqueued to a shard
	rejectedFull    atomic.Uint64 // 429: shard queue full
	rejectedInvalid atomic.Uint64 // 400: malformed/oversized submission
	rejectedDrain   atomic.Uint64 // 503: submitted while draining
	abandonedIntake atomic.Uint64 // client gone while awaiting an intake slot

	// Execution path.
	completed   atomic.Uint64
	failed      atomic.Uint64
	decisions   atomic.Uint64 // rescheduling evaluations across all workflows
	reschedules atomic.Uint64 // adopted reschedules
	evicted     atomic.Uint64 // terminal records dropped by the retention cap

	// Feedback loop (live workflows).
	reports           atomic.Uint64 // accepted report batches
	reportEvents      atomic.Uint64 // run-time events folded into live runs
	reportsRejected   atomic.Uint64 // 400/409 report requests
	reportsDuplicate  atomic.Uint64 // post-restart replays acked idempotently
	whatifs           atomic.Uint64 // answered what-if queries
	reschedVariance   atomic.Uint64 // adopted reschedules by trigger
	reschedArrival    atomic.Uint64
	reschedDeparture  atomic.Uint64
	reschedContention atomic.Uint64 // cross-workflow (shared-grid) reschedules
	reschedUpgrade    atomic.Uint64 // fast-path plans upgraded to the full policy
	liveResident      atomic.Int64  // live workflows parked on shards
	historyEvicted    atomic.Uint64 // tenant repositories dropped by the LRU cap

	// Admission path (internal/admission): per-class counters indexed by
	// admission.ClassIndex, the queue-wait window, and the two-speed
	// submit-to-initial-plan windows (fast greedy vs full policy).
	admAdmitted      [3]atomic.Uint64
	admFastPath      [3]atomic.Uint64
	admUpgraded      [3]atomic.Uint64
	admRejected      [3]atomic.Uint64
	admWaitMs        latencyWindow // fair-queue residency per admitted submission
	admInitialFastMs latencyWindow // submit → initial plan, fast path (greedy)
	admInitialFullMs latencyWindow // submit → initial plan, full policy

	// Incremental-rescheduling telemetry: every live evaluation asks the
	// kernel for the delta path, which either proves a small dirty cone
	// (reschedDelta) or falls back to a full replan (reschedFullFallback).
	// reschedLat holds one replan-latency window per planner.Trigger.
	reschedDelta        atomic.Uint64
	reschedFullFallback atomic.Uint64
	reschedLat          [5]latencyWindow
	// fallbackReasons breaks reschedFullFallback down by the kernel's
	// FallbackReason ("no-memo", "cone-overflow", "estimates-drifted", …)
	// so an operator can see *why* the delta path is being abandoned, not
	// just how often.
	fallbackMu      sync.Mutex
	fallbackReasons map[string]uint64

	// Event path.
	eventsEmitted atomic.Uint64
	eventsDropped atomic.Uint64 // events lost to a slow SSE subscriber

	// Durability path. Appends/bytes/snapshots live on the durable
	// stores (see Server.MetricsSnapshot); only failures are counted
	// here.
	walErrors atomic.Uint64 // failed WAL appends/rotations (durability degraded)

	// Flight recorder (Config.RecordDir; see record.go).
	recorderRecords atomic.Uint64 // records appended across all shard streams
	recorderErrors  atomic.Uint64 // failed appends (recording degraded)

	inflight     atomic.Int64 // accepted - completed - failed
	inflightPeak atomic.Int64

	compute latencyWindow // makespan-compute latency per workflow
}

// NewMetrics returns a zeroed metrics set.
func NewMetrics() *Metrics {
	m := &Metrics{
		start:            time.Now(),
		compute:          latencyWindow{cap: 8192},
		admWaitMs:        latencyWindow{cap: 8192},
		admInitialFastMs: latencyWindow{cap: 4096},
		admInitialFullMs: latencyWindow{cap: 4096},
		fallbackReasons:  make(map[string]uint64),
	}
	for i := range m.reschedLat {
		m.reschedLat[i].cap = 4096
	}
	return m
}

// recordDecision folds one live rescheduling evaluation into the
// incremental-path counters and the trigger's latency window. Called on
// the owning shard's goroutine (the windows are internally locked).
func (m *Metrics) recordDecision(d planner.Decision) {
	switch d.Path {
	case "delta":
		m.reschedDelta.Add(1)
	case "full":
		m.reschedFullFallback.Add(1)
		if d.FallbackReason != "" {
			m.fallbackMu.Lock()
			m.fallbackReasons[d.FallbackReason]++
			m.fallbackMu.Unlock()
		}
	}
	if t := int(d.Trigger); t >= 0 && t < len(m.reschedLat) {
		m.reschedLat[t].record(d.ElapsedMs)
	}
}

// inflightReserve moves the in-flight gauge up and maintains its peak.
// Callers reserve before enqueueing a workflow and roll back with
// inflightRelease if the enqueue is rejected.
func (m *Metrics) inflightReserve() {
	cur := m.inflight.Add(1)
	for {
		peak := m.inflightPeak.Load()
		if cur <= peak || m.inflightPeak.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// inflightRelease undoes a reservation whose enqueue was rejected.
func (m *Metrics) inflightRelease() { m.inflight.Add(-1) }

func (m *Metrics) workflowDone(failed bool, computeDur time.Duration, decisions, adoptions int) {
	if failed {
		m.failed.Add(1)
	} else {
		m.completed.Add(1)
		// Only successful runs contribute latency samples: a failed or
		// force-cancelled workflow aborts near-instantly and would drag
		// the compute percentiles toward zero.
		m.compute.record(computeDur.Seconds() * 1e3)
	}
	m.inflight.Add(-1)
	m.decisions.Add(uint64(decisions))
	m.reschedules.Add(uint64(adoptions))
}

// liveWorkflowDone closes out a live workflow's gauges. Unlike
// workflowDone it records no compute-latency sample — a live run's wall
// time is paced by its reporting client, not by the engine — and no
// decision counts, which the report path already tallied as they
// happened.
func (m *Metrics) liveWorkflowDone(failed bool) {
	if failed {
		m.failed.Add(1)
	} else {
		m.completed.Add(1)
	}
	m.inflight.Add(-1)
}

// latencyWindow keeps the last cap latency samples (milliseconds) for
// percentile queries. A bounded window keeps /metrics O(1) in memory over
// an arbitrarily long daemon lifetime while still reflecting current
// behaviour.
type latencyWindow struct {
	mu    sync.Mutex
	cap   int
	buf   []float64
	next  int
	total uint64
}

func (w *latencyWindow) record(ms float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.buf) < w.cap {
		w.buf = append(w.buf, ms)
	} else {
		w.buf[w.next] = ms
		w.next = (w.next + 1) % w.cap
	}
	w.total++
}

// quantiles returns the requested quantiles (0..1) over the window, or
// zeros when empty. stats.Quantiles copies before sorting, so handing it
// the live buffer under the lock is safe and avoids a second copy.
func (w *latencyWindow) quantiles(qs ...float64) []float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return stats.Quantiles(w.buf, qs...)
}

func (w *latencyWindow) count() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// MetricsDoc is the JSON shape of GET /metrics.
type MetricsDoc struct {
	UptimeS float64 `json:"uptime_s"`
	Shards  int     `json:"shards"`

	Submissions     uint64 `json:"submissions"`
	Accepted        uint64 `json:"accepted"`
	RejectedFull    uint64 `json:"rejected_backpressure"`
	RejectedInvalid uint64 `json:"rejected_invalid"`
	RejectedDrain   uint64 `json:"rejected_draining"`
	AbandonedIntake uint64 `json:"abandoned_intake"`

	Completed   uint64 `json:"completed"`
	Failed      uint64 `json:"failed"`
	Decisions   uint64 `json:"decisions"`
	Reschedules uint64 `json:"reschedules"`
	Evicted     uint64 `json:"evicted"`

	// Feedback loop (live workflows).
	Reports              uint64 `json:"reports"`
	ReportEvents         uint64 `json:"report_events"`
	ReportsRejected      uint64 `json:"reports_rejected"`
	ReportsDuplicate     uint64 `json:"reports_duplicate"`
	WhatIfQueries        uint64 `json:"whatif_queries"`
	ReschedulesVariance  uint64 `json:"reschedules_variance"`
	ReschedulesArrival   uint64 `json:"reschedules_arrival"`
	ReschedulesDeparture uint64 `json:"reschedules_departure"`
	// ReschedulesContention counts adopted cross-workflow reschedules:
	// a shared-grid survivor taking capacity another workflow released.
	ReschedulesContention uint64 `json:"reschedules_contention"`
	// ReschedulesUpgrade counts adopted two-speed upgrades: a fast-path
	// greedy initial plan replaced by the submission's full policy.
	ReschedulesUpgrade uint64 `json:"reschedules_upgrade"`
	// ReschedulesDelta / ReschedulesFullFallback split every live
	// rescheduling evaluation by how the kernel computed the replan:
	// the incremental delta path versus its fall-back to a full replan.
	ReschedulesDelta        uint64 `json:"reschedules_delta"`
	ReschedulesFullFallback uint64 `json:"reschedules_full_fallback"`
	// ReschedulesFullFallbackByReason splits the fallback count by the
	// kernel's FallbackReason. Empty reasons (engines that never attempt
	// the delta path) are not counted here.
	ReschedulesFullFallbackByReason map[string]uint64 `json:"reschedules_full_fallback_by_reason,omitempty"`
	// RescheduleMs summarises replan wall-clock latency per trigger
	// ("variance", "arrival", "departure", "contention", "upgrade").
	RescheduleMs map[string]RescheduleMs `json:"reschedule_ms"`
	// Admission is the weighted-fair-queue intake state: per-class
	// counters, per-tenant backlog, drain rate and the two-speed
	// admission-latency windows.
	Admission      AdmissionDoc `json:"admission"`
	LiveResident   int64        `json:"live_resident"`
	HistoryTenants int          `json:"history_tenants"`
	HistoryCells   int          `json:"history_cells"`
	HistoryEvicted uint64       `json:"history_evicted"`
	// SharedGrids / Reservations are the shared-grid gauges: registered
	// grids, and the aggregate live reservation count across them.
	SharedGrids  int `json:"shared_grids"`
	Reservations int `json:"reservations"`
	// TransferReservations is the aggregate live transfer-reservation
	// count across every grid's capacity channels (data-aware workflows);
	// like Reservations it must drain to zero with the last workflow.
	TransferReservations int `json:"transfer_reservations"`

	EventsEmitted uint64 `json:"events_emitted"`
	EventsDropped uint64 `json:"events_dropped"`

	// Durability (all zero when Config.DataDir is empty): WAL record and
	// byte counts, snapshot rotations, failed appends, and what the last
	// startup recovery restored and how long it took.
	WALAppends         uint64  `json:"wal_appends"`
	WALBytes           uint64  `json:"wal_bytes"`
	Snapshots          uint64  `json:"snapshots"`
	WALErrors          uint64  `json:"wal_errors"`
	RecoveredWorkflows uint64  `json:"recovered_workflows"`
	RecoveryMs         float64 `json:"recovery_ms"`

	// Observability: span totals and per-stage latency rollups from the
	// causal tracer (zero/absent when tracing is off), and the flight
	// recorder's append counters (zero when recording is off).
	TraceSpans        uint64                    `json:"trace_spans"`
	TraceSpansDropped uint64                    `json:"trace_spans_dropped"`
	TraceStageMs      map[string]obs.StageStats `json:"trace_stage_ms,omitempty"`
	RecorderRecords   uint64                    `json:"recorder_records"`
	RecorderErrors    uint64                    `json:"recorder_errors"`

	Inflight     int64 `json:"inflight"`
	InflightPeak int64 `json:"inflight_peak"`
	QueueDepth   []int `json:"queue_depth"`

	ComputeMs ComputeMs `json:"compute_ms"`
}

// AdmissionDoc is the admission subsystem's /metrics section.
type AdmissionDoc struct {
	// AdmittedByClass / FastPathByClass / UpgradedByClass /
	// RejectedByClass count submissions per priority class: admitted
	// into a fair queue, served via the fast (greedy) path, upgraded to
	// their full policy, and 429ed by the backlog bounds.
	AdmittedByClass map[string]uint64 `json:"admitted_by_class"`
	FastPathByClass map[string]uint64 `json:"fast_path_by_class"`
	UpgradedByClass map[string]uint64 `json:"upgraded_by_class"`
	RejectedByClass map[string]uint64 `json:"rejected_by_class"`
	// QueueDepthByTenant is the live backlog per tenant, summed across
	// shards (backlogged tenants only).
	QueueDepthByTenant map[string]int `json:"queue_depth_by_tenant,omitempty"`
	// DrainRatePerS is the EWMA dequeue rate summed across shards — the
	// denominator behind every Retry-After the daemon hands out.
	DrainRatePerS float64 `json:"drain_rate_per_s"`
	// WaitMs is fair-queue residency per admitted submission;
	// FastInitialMs / FullInitialMs are submit-to-initial-plan latency
	// for fast-path and full-policy live admissions — under overload the
	// fast window's p99 must undercut the full window's.
	WaitMs        ComputeMs `json:"wait_ms"`
	FastInitialMs ComputeMs `json:"fast_initial_ms"`
	FullInitialMs ComputeMs `json:"full_initial_ms"`
}

// AdmissionGauges carries the aggregated controller gauges into
// Metrics.snapshot.
type AdmissionGauges struct {
	PerTenant map[string]int
	DrainRate float64
}

// ObsStats carries the tracer's aggregated gauges into Metrics.snapshot.
type ObsStats struct {
	Spans   uint64
	Dropped uint64
	Stages  map[string]obs.StageStats
}

// DurabilityStats carries the aggregated per-store WAL gauges into
// Metrics.snapshot.
type DurabilityStats struct {
	WALAppends uint64
	WALBytes   uint64
	Snapshots  uint64
	Recovered  uint64
	RecoveryMs float64
}

// ComputeMs summarises the makespan-compute latency window.
type ComputeMs struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// RescheduleMs summarises one trigger's replan-latency window.
type RescheduleMs struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// snapshot assembles the document; queueDepth supplies the current
// per-shard queue lengths, historyTenants/historyCells the aggregated
// tenant-repository gauges.
func (m *Metrics) snapshot(queueDepth []int, historyTenants, historyCells, sharedGrids, reservations, transferReservations int, adm AdmissionGauges, d DurabilityStats, o ObsStats) MetricsDoc {
	q := m.compute.quantiles(0.50, 0.90, 0.99)
	byClass := func(c *[3]atomic.Uint64) map[string]uint64 {
		out := make(map[string]uint64, len(admission.ClassNames))
		for i, name := range admission.ClassNames {
			out[name] = c[i].Load()
		}
		return out
	}
	winDoc := func(w *latencyWindow) ComputeMs {
		lq := w.quantiles(0.50, 0.90, 0.99)
		return ComputeMs{Count: w.count(), P50: lq[0], P90: lq[1], P99: lq[2]}
	}
	resched := make(map[string]RescheduleMs, len(m.reschedLat))
	for i := range m.reschedLat {
		w := &m.reschedLat[i]
		lq := w.quantiles(0.50, 0.90, 0.99)
		resched[planner.Trigger(i).String()] = RescheduleMs{
			Count: w.count(), P50: lq[0], P90: lq[1], P99: lq[2],
		}
	}
	var byReason map[string]uint64
	m.fallbackMu.Lock()
	if len(m.fallbackReasons) > 0 {
		byReason = make(map[string]uint64, len(m.fallbackReasons))
		for r, n := range m.fallbackReasons {
			byReason[r] = n
		}
	}
	m.fallbackMu.Unlock()
	return MetricsDoc{
		UptimeS:                         time.Since(m.start).Seconds(),
		Shards:                          len(queueDepth),
		Submissions:                     m.submissions.Load(),
		Accepted:                        m.accepted.Load(),
		RejectedFull:                    m.rejectedFull.Load(),
		RejectedInvalid:                 m.rejectedInvalid.Load(),
		RejectedDrain:                   m.rejectedDrain.Load(),
		AbandonedIntake:                 m.abandonedIntake.Load(),
		Completed:                       m.completed.Load(),
		Failed:                          m.failed.Load(),
		Decisions:                       m.decisions.Load(),
		Reschedules:                     m.reschedules.Load(),
		Evicted:                         m.evicted.Load(),
		Reports:                         m.reports.Load(),
		ReportEvents:                    m.reportEvents.Load(),
		ReportsRejected:                 m.reportsRejected.Load(),
		ReportsDuplicate:                m.reportsDuplicate.Load(),
		WhatIfQueries:                   m.whatifs.Load(),
		ReschedulesVariance:             m.reschedVariance.Load(),
		ReschedulesArrival:              m.reschedArrival.Load(),
		ReschedulesDeparture:            m.reschedDeparture.Load(),
		ReschedulesContention:           m.reschedContention.Load(),
		ReschedulesUpgrade:              m.reschedUpgrade.Load(),
		ReschedulesDelta:                m.reschedDelta.Load(),
		ReschedulesFullFallback:         m.reschedFullFallback.Load(),
		ReschedulesFullFallbackByReason: byReason,
		RescheduleMs:                    resched,
		Admission: AdmissionDoc{
			AdmittedByClass:    byClass(&m.admAdmitted),
			FastPathByClass:    byClass(&m.admFastPath),
			UpgradedByClass:    byClass(&m.admUpgraded),
			RejectedByClass:    byClass(&m.admRejected),
			QueueDepthByTenant: adm.PerTenant,
			DrainRatePerS:      adm.DrainRate,
			WaitMs:             winDoc(&m.admWaitMs),
			FastInitialMs:      winDoc(&m.admInitialFastMs),
			FullInitialMs:      winDoc(&m.admInitialFullMs),
		},
		LiveResident:         m.liveResident.Load(),
		HistoryTenants:       historyTenants,
		HistoryCells:         historyCells,
		HistoryEvicted:       m.historyEvicted.Load(),
		SharedGrids:          sharedGrids,
		Reservations:         reservations,
		TransferReservations: transferReservations,
		EventsEmitted:        m.eventsEmitted.Load(),
		EventsDropped:        m.eventsDropped.Load(),
		WALAppends:           d.WALAppends,
		WALBytes:             d.WALBytes,
		Snapshots:            d.Snapshots,
		WALErrors:            m.walErrors.Load(),
		RecoveredWorkflows:   d.Recovered,
		RecoveryMs:           d.RecoveryMs,
		TraceSpans:           o.Spans,
		TraceSpansDropped:    o.Dropped,
		TraceStageMs:         o.Stages,
		RecorderRecords:      m.recorderRecords.Load(),
		RecorderErrors:       m.recorderErrors.Load(),
		Inflight:             m.inflight.Load(),
		InflightPeak:         m.inflightPeak.Load(),
		QueueDepth:           queueDepth,
		ComputeMs: ComputeMs{
			Count: m.compute.count(),
			P50:   q[0], P90: q[1], P99: q[2],
		},
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
