package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"aheft/internal/admission"
	"aheft/internal/wire"
	"aheft/internal/workload"
)

// The crash-recovery suite: a durable daemon is killed mid-flight
// (Server.Crash freezes the WAL stores exactly as a SIGKILL would leave
// the disk) and reopened on the same data directory, and the restarted
// daemon must resume every live workflow where it stood — plans with
// their generations, feedback progress, tenant histories, shared-grid
// ledgers — and ack duplicate report replays idempotently.

// openDurable opens a durable server over dir and mounts it on httptest.
// No cleanup is registered: crash/restart tests manage both ends.
func openDurable(t testing.TB, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.DataDir = dir
	srv, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return srv, httptest.NewServer(srv.Handler())
}

type healthzDoc struct {
	Status             string  `json:"status"`
	Version            string  `json:"version"`
	Shards             int     `json:"shards"`
	Durable            bool    `json:"durable"`
	RecoveredWorkflows uint64  `json:"recovered_workflows"`
	RecoveryMs         float64 `json:"recovery_ms"`
}

func getHealthz(t testing.TB, ts *httptest.Server) healthzDoc {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/healthz: HTTP %d", resp.StatusCode)
	}
	var doc healthzDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// remainingEvents returns the faithful full-execution report for plan
// minus the events already covered by the applied prefix.
func remainingEvents(plan *wire.Plan, prefix []wire.ReportEvent) []wire.ReportEvent {
	type key struct {
		kind string
		job  int
	}
	done := make(map[key]bool, len(prefix))
	for _, ev := range prefix {
		done[key{ev.Kind, ev.Job}] = true
	}
	var evs []wire.ReportEvent
	for _, a := range plan.Assignments {
		if !done[key{wire.ReportJobStarted, a.Job}] {
			evs = append(evs, wire.ReportEvent{
				Kind: wire.ReportJobStarted, Time: a.Start, Job: a.Job, Resource: a.Resource,
			})
		}
		if !done[key{wire.ReportJobFinished, a.Job}] {
			evs = append(evs, wire.ReportEvent{
				Kind: wire.ReportJobFinished, Time: a.Finish, Job: a.Job, Resource: a.Resource, Duration: a.Finish - a.Start,
			})
		}
	}
	sortReportEvents(evs)
	return evs
}

func sortReportEvents(evs []wire.ReportEvent) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0; j-- {
			a, b := &evs[j-1], &evs[j]
			if a.Time < b.Time || (a.Time == b.Time && !(a.Kind == wire.ReportJobFinished && b.Kind == wire.ReportJobStarted)) {
				break
			}
			*a, *b = *b, *a
		}
	}
}

// TestKillRestartRecovery is the acceptance test for the durability
// layer: >100 live workflows (private across four tenants, plus two
// tenants sharing a grid), a subset with partial execution reported, a
// hard kill, a reopen on the same data directory, and then every
// workflow must be resident with its pre-crash plan and generation,
// duplicate report replays must be acked idempotently, every run must
// complete with a correct makespan, and the shared-grid ledger must
// drain to zero.
func TestKillRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	sc := workload.SampleScenario()
	cfg := Config{Shards: 4, WALSync: "off", SnapshotInterval: time.Hour}

	srvA, tsA := openDurable(t, dir, cfg)
	registerGrid(t, tsA, "shared", sc)

	const nPrivate = 100
	tenants := []string{"t0", "t1", "t2", "t3"}
	var ids []string
	for i := 0; i < nPrivate; i++ {
		body := encodeLive(t, sc, "aheft", tenants[i%len(tenants)], wire.Options{})
		sub, resp := submit(t, tsA, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, sub.ID)
	}
	var gridIDs []string
	for _, tenant := range []string{"alice", "bob", "alice", "bob"} {
		gridIDs = append(gridIDs, submitShared(t, tsA, "shared", tenant, sc))
	}
	all := append(append([]string(nil), ids...), gridIDs...)

	plansA := make(map[string]*wire.Plan, len(all))
	for _, id := range all {
		plansA[id] = waitPlan(t, tsA, id)
	}

	// Every 5th private workflow reports a partial faithful execution, so
	// recovery must restore mid-flight feedback state and tenant history,
	// not just initial plans.
	prefixes := make(map[string][]wire.ReportEvent)
	for i := 0; i < nPrivate; i += 5 {
		id := ids[i]
		prefix := replayPrefix(*plansA[id], 20)
		if len(prefix) == 0 {
			t.Fatalf("empty replay prefix for %s", id)
		}
		var ack wire.ReportAck
		if code, msg := postJSON(t, tsA, "/v1/workflows/"+id+"/report", encodeReport(t, prefix...), &ack); code != http.StatusOK {
			t.Fatalf("prefix report %s: HTTP %d (%s)", id, code, msg)
		}
		if ack.Applied != len(prefix) || ack.Done {
			t.Fatalf("prefix ack %s: %+v", id, ack)
		}
		prefixes[id] = prefix
	}
	gridBefore := gridStatus(t, tsA, "shared")
	if gridBefore.Reservations == 0 || gridBefore.Attached != len(gridIDs) {
		t.Fatalf("pre-crash grid status: %+v", gridBefore)
	}

	// Kill. The disk now holds whatever the WAL had at this instant.
	srvA.Crash()
	tsA.Close()

	srvB, tsB := openDurable(t, dir, cfg)
	defer func() {
		tsB.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := srvB.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	hz := getHealthz(t, tsB)
	if hz.Status != "ready" || !hz.Durable {
		t.Fatalf("healthz after recovery: %+v", hz)
	}
	if hz.RecoveredWorkflows != uint64(len(all)) {
		t.Fatalf("recovered_workflows = %d, want %d", hz.RecoveredWorkflows, len(all))
	}
	doc := getMetrics(t, tsB)
	if doc.LiveResident != int64(len(all)) {
		t.Fatalf("live_resident after recovery = %d, want %d", doc.LiveResident, len(all))
	}
	if doc.HistoryCells == 0 {
		t.Fatal("tenant history did not survive the crash")
	}

	// Plans and generations must come back exactly as last handed out.
	for _, id := range all {
		got := waitPlan(t, tsB, id)
		want := plansA[id]
		if got.Generation != want.Generation {
			t.Fatalf("%s: generation %d after restart, want %d", id, got.Generation, want.Generation)
		}
		if !reflect.DeepEqual(got.Assignments, want.Assignments) {
			t.Fatalf("%s: assignments changed across restart", id)
		}
	}
	gridAfter := gridStatus(t, tsB, "shared")
	if gridAfter.Reservations != gridBefore.Reservations || gridAfter.Attached != gridBefore.Attached {
		t.Fatalf("grid ledger not reconstructed: before %+v after %+v", gridBefore, gridAfter)
	}

	// A duplicate replay of an already-applied batch (the enactor never
	// saw its ack) must be acked idempotently, not 400ed.
	dups := 0
	for id, prefix := range prefixes {
		var ack wire.ReportAck
		if code, msg := postJSON(t, tsB, "/v1/workflows/"+id+"/report", encodeReport(t, prefix...), &ack); code != http.StatusOK {
			t.Fatalf("duplicate report %s: HTTP %d (%s)", id, code, msg)
		}
		if ack.Applied != len(prefix) || ack.Done {
			t.Fatalf("duplicate ack %s: %+v", id, ack)
		}
		dups++
	}
	if got := getMetrics(t, tsB).ReportsDuplicate; got != uint64(dups) {
		t.Fatalf("reports_duplicate = %d, want %d", got, dups)
	}

	// Drive every workflow to completion against the recovered daemon.
	for _, id := range all {
		plan := waitPlan(t, tsB, id)
		events := remainingEvents(plan, prefixes[id])
		var ack wire.ReportAck
		if code, msg := postJSON(t, tsB, "/v1/workflows/"+id+"/report", encodeReport(t, events...), &ack); code != http.StatusOK {
			t.Fatalf("final report %s: HTTP %d (%s)", id, code, msg)
		}
		if !ack.Done {
			t.Fatalf("workflow %s not done after full replay: %+v", id, ack)
		}
	}
	for _, id := range all {
		st := waitDone(t, tsB, id)
		if st.State != StateDone {
			t.Fatalf("workflow %s: state %q error %q", id, st.State, st.Error)
		}
		if st.Makespan <= 0 {
			t.Fatalf("workflow %s: makespan %v", id, st.Makespan)
		}
	}

	// No workflow lost, no reservation leaked.
	final := gridStatus(t, tsB, "shared")
	if final.Reservations != 0 || final.Attached != 0 {
		t.Fatalf("grid did not drain: %+v", final)
	}
	if got := getMetrics(t, tsB).LiveResident; got != 0 {
		t.Fatalf("live_resident after drain = %d", got)
	}

	// The recovered event logs must have stayed dense across the restart:
	// pre-crash events replayed, post-restart events appended after them.
	id := ids[0]
	resp, err := tsB.Client().Get(tsB.URL + "/v1/workflows/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	want := 0
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev wire.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Seq != want {
			t.Fatalf("event log gap across restart: seq %d, want %d", ev.Seq, want)
		}
		want++
	}
	if want == 0 {
		t.Fatal("no events streamed for recovered workflow")
	}
}

// TestPendingSubmissionsRequeuedAfterCrash crashes a daemon whose
// workers are wedged, leaving accepted-but-unstarted submissions only in
// the WAL; the restarted daemon must re-enqueue and finish them, and
// keep assigning fresh IDs after the recovered sequence.
func TestPendingSubmissionsRequeuedAfterCrash(t *testing.T) {
	dir := t.TempDir()
	sc := workload.SampleScenario()
	cfg := Config{Shards: 1, WALSync: "off", SnapshotInterval: time.Hour}

	srvA, tsA := openDurable(t, dir, cfg)
	// Wedge the single worker until the crash: every accepted workflow
	// stays queued (or parked in the hook), so none reaches a terminal
	// record before the kill.
	srvA.execHook = func(*workflow) { <-srvA.runCtx.Done() }
	body := encodeScenario(t, sc, "aheft", wire.Options{TieWindow: 0.05})
	var ids []string
	for i := 0; i < 3; i++ {
		sub, resp := submit(t, tsA, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, sub.ID)
	}
	srvA.Crash()
	tsA.Close()

	srvB, tsB := openDurable(t, dir, cfg)
	defer func() {
		tsB.Close()
		srvB.Shutdown(context.Background())
	}()
	for _, id := range ids {
		st := waitDone(t, tsB, id)
		if st.State != StateDone || st.Makespan != 76 {
			t.Fatalf("recovered pending workflow %s: state %q makespan %v", id, st.State, st.Makespan)
		}
	}
	// The ID sequence continues past the recovered workflows.
	sub, resp := submit(t, tsB, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-recovery submit: HTTP %d", resp.StatusCode)
	}
	if sub.ID != fmt.Sprintf("wf-%08d", len(ids)+1) {
		t.Fatalf("post-recovery ID %s, want wf-%08d", sub.ID, len(ids)+1)
	}
	if st := waitDone(t, tsB, sub.ID); st.State != StateDone {
		t.Fatalf("post-recovery workflow: %+v", st)
	}
}

// TestTerminalRecordsSurviveRestart: a clean shutdown snapshots, and the
// reopened daemon serves the finished workflows' statuses and event logs
// from the frozen records.
func TestTerminalRecordsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	sc := workload.SampleScenario()
	cfg := Config{Shards: 2, WALSync: "interval"}

	srvA, tsA := openDurable(t, dir, cfg)
	body := encodeScenario(t, sc, "aheft", wire.Options{TieWindow: 0.05})
	sub, resp := submit(t, tsA, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	stA := waitDone(t, tsA, sub.ID)
	tsA.Close()
	if err := srvA.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	srvB, tsB := openDurable(t, dir, cfg)
	defer func() {
		tsB.Close()
		srvB.Shutdown(context.Background())
	}()
	stB := getStatus(t, tsB, sub.ID)
	if stB.State != StateDone || stB.Makespan != stA.Makespan || stB.Events != stA.Events {
		t.Fatalf("terminal status diverged across restart:\n  before %+v\n  after  %+v", stA, stB)
	}
	if stB.Policy != stA.Policy || stB.Adoptions != stA.Adoptions {
		t.Fatalf("terminal status detail diverged:\n  before %+v\n  after  %+v", stA, stB)
	}
}

// TestRecoveryIsIdempotent: recovering, doing nothing, and restarting
// again must reproduce the same state — the post-recovery snapshot must
// be a faithful self-description.
func TestRecoveryIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	sc := workload.SampleScenario()
	cfg := Config{Shards: 2, WALSync: "off", SnapshotInterval: time.Hour}

	srvA, tsA := openDurable(t, dir, cfg)
	registerGrid(t, tsA, "g", sc)
	id := submitShared(t, tsA, "g", "tenant-a", sc)
	planA := waitPlan(t, tsA, id)
	srvA.Crash()
	tsA.Close()

	for round := 0; round < 2; round++ {
		srv, ts := openDurable(t, dir, cfg)
		hz := getHealthz(t, ts)
		if hz.RecoveredWorkflows != 1 {
			t.Fatalf("round %d: recovered_workflows = %d", round, hz.RecoveredWorkflows)
		}
		plan := waitPlan(t, ts, id)
		if plan.Generation != planA.Generation || !reflect.DeepEqual(plan.Assignments, planA.Assignments) {
			t.Fatalf("round %d: plan diverged", round)
		}
		if gs := gridStatus(t, ts, "g"); gs.Attached != 1 || gs.Reservations == 0 {
			t.Fatalf("round %d: grid status %+v", round, gs)
		}
		srv.Crash()
		ts.Close()
	}
}

// TestGateRecoveringThenReady covers the readiness satellite: the gate
// answers 503 "recovering" until the recovered handler is installed.
func TestGateRecoveringThenReady(t *testing.T) {
	g := NewGate()
	ts := httptest.NewServer(g)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var doc healthzDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || doc.Status != "recovering" {
		t.Fatalf("gate before ready: HTTP %d %+v", resp.StatusCode, doc)
	}

	srv, _ := newTestServer(t, Config{Shards: 1})
	g.Ready(srv.Handler())
	resp, err = ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	doc = healthzDoc{}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || doc.Status != "ready" {
		t.Fatalf("gate after ready: HTTP %d %+v", resp.StatusCode, doc)
	}
}

// TestAdmissionQueueSurvivesCrashInFairOrder crashes a daemon whose
// single worker is wedged behind a mixed-tenant, mixed-class backlog.
// The restarted daemon must not only finish every journalled submission
// (the WALSubmission records guarantee that) but serve them in the
// weighted fair order their WALAdmission credentials imply — a
// flooding tenant's pre-crash backlog must not replay as FIFO and jump
// the victims it was queued behind. The expected order is computed by
// driving a fresh admission controller with the same sequence; the
// served order is read back from the per-workflow start timestamps
// (one shard, analytic runs: execution is serial, so start times are
// strictly ordered).
func TestAdmissionQueueSurvivesCrashInFairOrder(t *testing.T) {
	dir := t.TempDir()
	sc := workload.SampleScenario()
	cfg := Config{Shards: 1, WALSync: "off", SnapshotInterval: time.Hour}

	srvA, tsA := openDurable(t, dir, cfg)
	srvA.execHook = func(*workflow) { <-srvA.runCtx.Done() }

	// A low-class flood, then two high-class victims and a weighted
	// normal bystander queued behind it.
	seq := []struct {
		tenant, class string
		weight        float64
	}{
		{"greedy", wire.ClassLow, 1}, {"greedy", wire.ClassLow, 1},
		{"greedy", wire.ClassLow, 1}, {"greedy", wire.ClassLow, 1},
		{"victim", wire.ClassHigh, 1}, {"victim", wire.ClassHigh, 1},
		{"bystander", wire.ClassNormal, 2},
	}
	var ids []string
	for i, q := range seq {
		data, err := wire.EncodeSubmission(&wire.Submission{
			Policy:  "aheft",
			Tenant:  q.tenant,
			Options: wire.Options{TieWindow: 0.05, Class: q.class, Weight: q.weight},
			Graph:   sc.Graph, Comp: sc.Table, Pool: sc.Pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		sub, resp := submit(t, tsA, data)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, sub.ID)
	}
	srvA.Crash()
	tsA.Close()

	// Reference run: the same sequence through a fresh controller, fully
	// enqueued before the first dequeue — exactly the shape recovery
	// produces (requeue happens before the shard worker starts).
	ref := admission.New(admission.Config{})
	for i, q := range seq {
		if err := ref.Enqueue(admission.Item{ID: ids[i], Tenant: q.tenant, Class: q.class, Weight: q.weight}); err != nil {
			t.Fatalf("reference enqueue %d: %v", i, err)
		}
	}
	var want []string
	for {
		d, ok := ref.TryDequeue()
		if !ok {
			break
		}
		want = append(want, d.Item.ID)
	}
	if len(want) != len(ids) {
		t.Fatalf("reference drain: %d of %d", len(want), len(ids))
	}

	srvB, tsB := openDurable(t, dir, cfg)
	defer func() {
		tsB.Close()
		srvB.Shutdown(context.Background())
	}()
	for _, id := range ids {
		if st := waitDone(t, tsB, id); st.State != StateDone || st.Makespan != 76 {
			t.Fatalf("recovered workflow %s: state %q makespan %v", id, st.State, st.Makespan)
		}
	}
	type started struct {
		id string
		at time.Time
	}
	order := make([]started, 0, len(ids))
	for _, id := range ids {
		wf, ok := srvB.lookup(id)
		if !ok {
			t.Fatalf("recovered workflow %s not registered", id)
		}
		wf.mu.Lock()
		at := wf.startedAt
		wf.mu.Unlock()
		if at.IsZero() {
			t.Fatalf("recovered workflow %s has no start time", id)
		}
		order = append(order, started{id, at})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].at.Before(order[j].at) })
	got := make([]string, len(order))
	for i, s := range order {
		got[i] = s.id
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("served order after crash:\n got %v\nwant %v", got, want)
	}
}
