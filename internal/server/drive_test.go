package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"aheft/internal/drive"
	"aheft/internal/rng"
	"aheft/internal/wire"
	"aheft/internal/workload"
)

// TestDriveClosedLoopBeatsStatic is the adaptive-loop acceptance test:
// the daemon under a closed-loop enactment client (internal/drive, the
// same harness loadgen -drive uses) with 20% runtime noise and churned
// resource arrivals must perform variance-triggered reschedules on the
// BLAST and WIEN2K mixes, and the final simulated makespans must beat
// the never-reschedule baseline on average — then the daemon must drain
// cleanly. Workflows are driven sequentially, so the run is
// deterministic and race-instrumented CI exercises the full report path.
func TestDriveClosedLoopBeatsStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop acceptance test skipped in -short mode")
	}
	srv := New(Config{Shards: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const perClass = 6
	gp := workload.GridParams{InitialResources: 6, ChangeInterval: 400, ChangePct: 0.25, MaxEvents: 4}
	classes := []struct {
		name string
		make func(r *rng.Source) (*workload.Scenario, error)
	}{
		{"blast", func(r *rng.Source) (*workload.Scenario, error) {
			return workload.BlastScenario(workload.AppParams{Parallelism: 12, CCR: 1, Beta: 0.5}, gp, r)
		}},
		{"wien2k", func(r *rng.Source) (*workload.Scenario, error) {
			return workload.Wien2kScenario(workload.AppParams{Parallelism: 12, CCR: 1, Beta: 0.5}, gp, r)
		}},
	}
	for _, class := range classes {
		t.Run(class.name, func(t *testing.T) {
			r := rng.New(0xfeedba5e)
			varianceReschedules, reschedules := 0, 0
			adaptiveSum, staticSum := 0.0, 0.0
			for i := 0; i < perClass; i++ {
				sc, err := class.make(r)
				if err != nil {
					t.Fatal(err)
				}
				out, err := drive.Run(context.Background(), drive.Config{
					BaseURL: ts.URL,
					Client:  ts.Client(),
					Policy:  "aheft",
					Tenant:  class.name,
					Options: wire.Options{VarianceThreshold: 0.2},
					Noise:   0.2,
					Churn:   0.3,
					Seed:    uint64(1000*i) + 7,
					Name:    fmt.Sprintf("%s-%d", class.name, i),
				}, sc)
				if err != nil {
					t.Fatalf("drive %s-%d: %v", class.name, i, err)
				}
				if out.DaemonMakespan != out.AdaptiveMakespan {
					t.Fatalf("%s-%d: daemon says %g, simulation measured %g",
						class.name, i, out.DaemonMakespan, out.AdaptiveMakespan)
				}
				varianceReschedules += out.VarianceReschedules
				reschedules += out.Reschedules
				adaptiveSum += out.AdaptiveMakespan
				staticSum += out.StaticMakespan
				t.Logf("%s-%d: jobs=%d adaptive=%.1f static=%.1f delta=%+.1f%% reschedules=%d (variance=%d arrival=%d) reports=%d gen=%d",
					class.name, i, out.Jobs, out.AdaptiveMakespan, out.StaticMakespan,
					100*out.Delta(), out.Reschedules, out.VarianceReschedules,
					out.ArrivalReschedules, out.Reports, out.Generation)
			}
			if varianceReschedules == 0 {
				t.Fatalf("no variance-triggered reschedule across %d %s workflows", perClass, class.name)
			}
			if adaptiveSum > staticSum {
				t.Fatalf("adaptive mean %.1f worse than never-reschedule baseline %.1f",
					adaptiveSum/perClass, staticSum/perClass)
			}
			t.Logf("%s: mean adaptive %.1f vs static %.1f (%.1f%% better), %d reschedules (%d variance)",
				class.name, adaptiveSum/perClass, staticSum/perClass,
				100*(staticSum-adaptiveSum)/staticSum, reschedules, varianceReschedules)
		})
	}

	m := srv.MetricsSnapshot()
	if m.EventsDropped != 0 {
		t.Fatalf("events dropped: %d", m.EventsDropped)
	}
	if m.ReschedulesVariance == 0 || m.Reports == 0 || m.LiveResident != 0 {
		t.Fatalf("loop metrics: %+v", m)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := srv.MetricsSnapshot(); got.Completed != 2*perClass || got.Failed != 0 {
		t.Fatalf("post-drain: completed=%d failed=%d", got.Completed, got.Failed)
	}
}
