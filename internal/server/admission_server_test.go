package server

import (
	"net/http"
	"testing"
	"time"

	"aheft/internal/wire"
	"aheft/internal/workload"
)

// Two-speed planning at the server level: with the fast-path threshold
// at 1, a live adaptive submission is admitted with the cheap greedy
// placement, and the asynchronous upgrade to the full policy follows
// without any report traffic. The workflow then executes and completes
// normally — "every fast-path plan is upgraded or terminal".

func admissionDoc(srv *Server) AdmissionDoc {
	return srv.MetricsSnapshot().Admission
}

func waitUpgraded(t testing.TB, srv *Server, class string, want uint64) AdmissionDoc {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		doc := admissionDoc(srv)
		if doc.UpgradedByClass[class] >= want {
			return doc
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("class %q never reached %d upgrades: %+v", class, want, admissionDoc(srv))
	return AdmissionDoc{}
}

func TestFastPathAdmitThenUpgrade(t *testing.T) {
	sc := workload.SampleScenario()
	srv, ts := newTestServer(t, Config{Shards: 1, FastPathDepth: 1})

	body := encodeLive(t, sc, "aheft", "acme", wire.Options{TieWindow: 0.05, Class: wire.ClassHigh})
	sub, resp := submit(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}

	// The initial plan is the greedy fast-path placement; the upgrade is
	// scheduled at attach time and needs no reports to land.
	fetchPlan(t, ts, sub.ID)
	doc := waitUpgraded(t, srv, wire.ClassHigh, 1)
	if doc.FastPathByClass[wire.ClassHigh] != 1 {
		t.Fatalf("fast-path count: %+v", doc.FastPathByClass)
	}
	if doc.AdmittedByClass[wire.ClassHigh] != 1 {
		t.Fatalf("admitted count: %+v", doc.AdmittedByClass)
	}
	if doc.FastInitialMs.Count != 1 {
		t.Fatalf("fast initial-plan latency window: %+v", doc.FastInitialMs)
	}

	// After the upgrade the resident plan is the full policy's; executing
	// it faithfully completes the workflow.
	plan := fetchPlan(t, ts, sub.ID)
	reportPlanExecution(t, ts, sub.ID, &plan)
	if st := waitDone(t, ts, sub.ID); st.State != StateDone {
		t.Fatalf("fast-path workflow did not finish: %+v", st)
	}
}

// Without backlog the fast path must stay cold: a lone submission under
// the default threshold takes the full-policy plan synchronously.
func TestNoFastPathWithoutBacklog(t *testing.T) {
	sc := workload.SampleScenario()
	srv, ts := newTestServer(t, Config{Shards: 1})

	body := encodeLive(t, sc, "aheft", "acme", wire.Options{TieWindow: 0.05})
	sub, resp := submit(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	plan := fetchPlan(t, ts, sub.ID)
	reportPlanExecution(t, ts, sub.ID, &plan)
	if st := waitDone(t, ts, sub.ID); st.State != StateDone {
		t.Fatalf("workflow did not finish: %+v", st)
	}
	doc := admissionDoc(srv)
	if n := doc.FastPathByClass[wire.ClassNormal]; n != 0 {
		t.Fatalf("unexpected fast-path admissions: %d", n)
	}
	if doc.FullInitialMs.Count != 1 || doc.FastInitialMs.Count != 0 {
		t.Fatalf("initial-plan latency windows: full %+v fast %+v", doc.FullInitialMs, doc.FastInitialMs)
	}
	if doc.AdmittedByClass[wire.ClassNormal] != 1 {
		t.Fatalf("admitted count: %+v", doc.AdmittedByClass)
	}
}

// Per-tenant backlog bound: with one wedged worker and TenantBacklog 2,
// the flooding tenant is rejected at its bound with a Retry-After while
// another tenant's submission is still admitted — the honest per-tenant
// 429 of the fairness layer.
func TestPerTenantBacklogRejects(t *testing.T) {
	sc := workload.SampleScenario()
	srv, ts := newTestServer(t, Config{Shards: 1, QueueDepth: 64, TenantBacklog: 2})
	// Wedge the worker for the duration of the test body; the cleanup
	// (LIFO, so it runs before newTestServer's Shutdown) unwedges it so
	// the drain stays fast.
	unwedge := make(chan struct{})
	srv.execHook = func(*workflow) { <-unwedge }
	t.Cleanup(func() { close(unwedge) })

	submitTenant := func(tenant string) *http.Response {
		data, err := wire.EncodeSubmission(&wire.Submission{
			Policy: "aheft", Tenant: tenant,
			Options: wire.Options{TieWindow: 0.05},
			Graph:   sc.Graph, Comp: sc.Table, Pool: sc.Pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, resp := submit(t, ts, data)
		return resp
	}

	// One submission is dequeued into the wedged hook; the next two fill
	// tenant "greedy"'s backlog allowance.
	var rejected *http.Response
	for i := 0; i < 8; i++ {
		resp := submitTenant("greedy")
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected = resp
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
	}
	if rejected == nil {
		t.Fatal("flooding tenant never hit its backlog bound")
	}
	if rejected.Header.Get("Retry-After") == "" {
		t.Fatal("per-tenant 429 without Retry-After")
	}
	if resp := submitTenant("victim"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("victim tenant rejected alongside the flood: HTTP %d", resp.StatusCode)
	}
	doc := admissionDoc(srv)
	if doc.RejectedByClass[wire.ClassNormal] == 0 {
		t.Fatalf("rejection not counted: %+v", doc.RejectedByClass)
	}
	if doc.QueueDepthByTenant["victim"] != 1 {
		t.Fatalf("victim queue depth: %+v", doc.QueueDepthByTenant)
	}
}
