package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"aheft/internal/wire"
	"aheft/internal/workload"
)

// Transfer-reservation leak tests: a data-aware workflow's staging claims
// on the grid's capacity channels must follow the compute-reservation
// release discipline exactly — dropped per job the moment its start is
// reported (its inputs are in hand), and drained wholesale on every
// terminal path: finish, force-cancel, and retention eviction.

// submitSharedData is submitShared plus the submission's file catalog —
// the daemon binds it into a data model at buildWorkflow, so the live
// tracker plans transfers and publishes their link claims to the ledger.
func submitSharedData(t *testing.T, ts *httptest.Server, gridName, tenant string, sc *workload.Scenario) string {
	t.Helper()
	body, err := wire.EncodeSubmission(&wire.Submission{
		Name: tenant, Mode: wire.ModeLive, Tenant: tenant, Policy: "aheft",
		Graph: sc.Graph, Comp: sc.Table, Files: sc.Files, SharedGrid: gridName,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sub wire.Submitted
	if code := httpJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/workflows", body, &sub); code != http.StatusAccepted {
		t.Fatalf("submit shared data: HTTP %d", code)
	}
	return sub.ID
}

// planEvents renders a plan as its faithful chronological report stream
// (the event list reportPlanExecution posts as one batch).
func planEvents(plan *wire.Plan) []wire.ReportEvent {
	events := make([]wire.ReportEvent, 0, 2*len(plan.Assignments))
	for _, a := range plan.Assignments {
		events = append(events,
			wire.ReportEvent{Kind: wire.ReportJobStarted, Time: a.Start, Job: a.Job, Resource: a.Resource},
			wire.ReportEvent{Kind: wire.ReportJobFinished, Time: a.Finish, Job: a.Job, Resource: a.Resource, Duration: a.Finish - a.Start},
		)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Time != events[j].Time {
			return events[i].Time < events[j].Time
		}
		return events[i].Kind == wire.ReportJobStarted && events[j].Kind == wire.ReportJobFinished
	})
	return events
}

// reportEvents posts one report batch and returns the ack.
func reportEvents(t *testing.T, ts *httptest.Server, id string, events []wire.ReportEvent) *wire.ReportAck {
	t.Helper()
	body, err := wire.EncodeReport(&wire.Report{Events: events})
	if err != nil {
		t.Fatal(err)
	}
	var ack wire.ReportAck
	if code := httpJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/workflows/"+id+"/report", body, &ack); code != http.StatusOK {
		t.Fatalf("report: HTTP %d", code)
	}
	return &ack
}

// checkTransferStatus asserts the grid's link occupancy is internally
// consistent: channel names carry the link: prefix (the scenario's pool
// declares no per-resource up/down constraints) and the per-channel
// counts sum to the aggregate gauge.
func checkTransferStatus(t *testing.T, st wire.GridStatus) {
	t.Helper()
	sum := 0
	for _, l := range st.Links {
		if !strings.HasPrefix(l.Channel, "link:") {
			t.Fatalf("unexpected capacity channel %q in %+v", l.Channel, st.Links)
		}
		sum += l.Reservations
	}
	if sum != st.TransferReservations {
		t.Fatalf("link counts sum to %d, aggregate says %d: %+v", sum, st.TransferReservations, st.Links)
	}
}

// TestSharedTransferReservationsDrain walks the full lifecycle on the
// data-heavy scenario: planning publishes link claims, a job's claims
// are spent the moment its start is reported, a finished workflow drains
// to zero, and the retention cap's eviction leaves nothing behind.
func TestSharedTransferReservationsDrain(t *testing.T) {
	srv := New(Config{Shards: 2, MaxRetained: 1})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sc := workload.DataScenario(workload.DataParams{})
	registerGrid(t, ts, "g", sc)

	idA := submitSharedData(t, ts, "g", "alpha", sc)
	planA := waitPlan(t, ts, idA)

	st := gridStatus(t, ts, "g")
	if st.TransferReservations == 0 || len(st.Links) == 0 {
		t.Fatalf("planned data workflow published no transfer claims: %+v", st)
	}
	checkTransferStatus(t, st)
	if m := srv.MetricsSnapshot(); m.TransferReservations != st.TransferReservations {
		t.Fatalf("metrics gauge %d, grid shows %d", m.TransferReservations, st.TransferReservations)
	}

	// A second tenant plans around A's link claims and adds its own.
	idB := submitSharedData(t, ts, "g", "beta", sc)
	waitPlan(t, ts, idB)

	// A finishes: its claims drain with it; the survivor's remain (its
	// merge job is still pending, and with six searches spread over the
	// pool at least one hit file must cross a link to reach it).
	if ack := reportPlanExecution(t, ts, idA, planA); !ack.Done {
		t.Fatalf("A not done")
	}
	st = gridStatus(t, ts, "g")
	if st.Attached != 1 {
		t.Fatalf("grid after A finished: %+v", st)
	}
	if st.TransferReservations == 0 {
		t.Fatalf("survivor's transfer claims drained with A: %+v", st)
	}
	checkTransferStatus(t, st)

	// Replay B in three batches split around its merge job (the sink,
	// added last) to watch the per-job release: claims survive every
	// predecessor finish, then vanish when merge's start reports — while
	// the workflow is still live, so this is the start-release path, not
	// a terminal drain.
	planB := waitPlan(t, ts, idB) // refetch: A's release may have triggered an adoption
	mergeID := sc.Graph.Len() - 1
	var pre, start, post []wire.ReportEvent
	for _, e := range planEvents(planB) {
		switch {
		case e.Job != mergeID:
			pre = append(pre, e)
		case e.Kind == wire.ReportJobStarted:
			start = append(start, e)
		default:
			post = append(post, e)
		}
	}
	if ack := reportEvents(t, ts, idB, pre); ack.Done {
		t.Fatalf("B done before its merge job ran")
	}
	if st = gridStatus(t, ts, "g"); st.TransferReservations == 0 {
		t.Fatalf("merge's staging claims dropped before it started: %+v", st)
	}
	if ack := reportEvents(t, ts, idB, start); ack.Done {
		t.Fatalf("B done on merge's start")
	}
	st = gridStatus(t, ts, "g")
	if st.Attached != 1 {
		t.Fatalf("B not live after merge started: %+v", st)
	}
	if st.TransferReservations != 0 || len(st.Links) != 0 {
		t.Fatalf("started job's transfer claims not spent: %+v", st)
	}
	if ack := reportEvents(t, ts, idB, post); !ack.Done {
		t.Fatalf("B not done after merge finished")
	}
	st = gridStatus(t, ts, "g")
	if st.Attached != 0 || st.Reservations != 0 || st.TransferReservations != 0 || len(st.Links) != 0 {
		t.Fatalf("leaked claims after both finished: %+v", st)
	}

	// MaxRetained=1: B's completion evicted A's terminal record; the
	// eviction must not resurrect or leak transfer state.
	if code := httpJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/workflows/"+idA, nil, &errorDoc{}); code != http.StatusNotFound {
		t.Fatalf("A should be evicted: HTTP %d", code)
	}
	m := srv.MetricsSnapshot()
	if m.TransferReservations != 0 || m.Reservations != 0 || m.Evicted == 0 {
		t.Fatalf("metrics after eviction: %+v", m)
	}
}

// TestSharedTransferReleaseOnForceCancel: the drain deadline
// force-cancels resident data-aware workflows; their link claims must
// not outlive them.
func TestSharedTransferReleaseOnForceCancel(t *testing.T) {
	srv := New(Config{Shards: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sc := workload.DataScenario(workload.DataParams{})
	registerGrid(t, ts, "g", sc)
	idA := submitSharedData(t, ts, "g", "alpha", sc)
	waitPlan(t, ts, idA)
	idB := submitSharedData(t, ts, "g", "beta", sc)
	waitPlan(t, ts, idB)
	if st := gridStatus(t, ts, "g"); st.TransferReservations == 0 {
		t.Fatalf("pre-drain grid published no transfer claims: %+v", st)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Fatal("expired drain returned nil")
	}
	st := gridStatus(t, ts, "g")
	if st.Attached != 0 || st.Reservations != 0 || st.TransferReservations != 0 || len(st.Links) != 0 {
		t.Fatalf("force-cancel leaked transfer claims: %+v", st)
	}
	if m := srv.MetricsSnapshot(); m.TransferReservations != 0 || m.Reservations != 0 || m.LiveResident != 0 {
		t.Fatalf("post-drain metrics: transfers=%d reservations=%d resident=%d",
			m.TransferReservations, m.Reservations, m.LiveResident)
	}
}
