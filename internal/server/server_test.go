package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"aheft/internal/rng"
	"aheft/internal/wire"
	"aheft/internal/workload"
)

// encodeScenario wraps a scenario into an encoded submission body.
func encodeScenario(t testing.TB, sc *workload.Scenario, policy string, opts wire.Options) []byte {
	t.Helper()
	data, err := wire.EncodeSubmission(&wire.Submission{
		Policy:  policy,
		Options: opts,
		Graph:   sc.Graph,
		Comp:    sc.Table,
		Pool:    sc.Pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func submit(t testing.TB, ts *httptest.Server, body []byte) (wire.Submitted, *http.Response) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/workflows", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sub wire.Submitted
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
	}
	return sub, resp
}

func getStatus(t testing.TB, ts *httptest.Server, id string) wire.Status {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/workflows/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var st wire.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitDone polls until the workflow reaches a terminal state.
func waitDone(t testing.TB, ts *httptest.Server, id string) wire.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("workflow %s did not finish", id)
	return wire.Status{}
}

func getMetrics(t testing.TB, ts *httptest.Server) MetricsDoc {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc MetricsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, ts
}

// TestSubmitSampleWorkflow reproduces the paper's worked example through
// the full network path: the Fig. 4 DAG submitted over the wire under
// AHEFT with the 0.05 tie window must finish with makespan 76, and under
// static HEFT with 80.
func TestSubmitSampleWorkflow(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2})
	sc := workload.SampleScenario()

	sub, resp := submit(t, ts, encodeScenario(t, sc, "aheft", wire.Options{TieWindow: 0.05}))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	st := waitDone(t, ts, sub.ID)
	if st.State != StateDone || st.Makespan != 76 || st.InitialMakespan != 80 {
		t.Fatalf("aheft sample: state=%s makespan=%g initial=%g", st.State, st.Makespan, st.InitialMakespan)
	}
	if st.Adoptions == 0 || len(st.Decisions) == 0 {
		t.Fatalf("aheft sample adopted no reschedule: %+v", st)
	}
	if st.Policy != "aheft" || st.Jobs != 10 || st.Resources != 4 {
		t.Fatalf("status fields wrong: %+v", st)
	}

	sub2, _ := submit(t, ts, encodeScenario(t, sc, "heft", wire.Options{}))
	if st2 := waitDone(t, ts, sub2.ID); st2.Makespan != 80 {
		t.Fatalf("heft sample makespan %g, want 80", st2.Makespan)
	}
}

// TestEveryRegisteredPolicyRuns submits the same workflow under each
// registry policy: the daemon is policy-agnostic because the analytic
// engine drives just-in-time policies too.
func TestEveryRegisteredPolicyRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sc := workload.SampleScenario()
	for _, pol := range []string{"heft", "aheft", "minmin", "maxmin", "sufferage"} {
		sub, resp := submit(t, ts, encodeScenario(t, sc, pol, wire.Options{}))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%s: HTTP %d", pol, resp.StatusCode)
		}
		if st := waitDone(t, ts, sub.ID); st.State != StateDone || st.Makespan <= 0 {
			t.Fatalf("%s: %+v", pol, st)
		}
	}
}

// TestEventStream follows a workflow over SSE and checks the stream is
// complete and gap-free: submitted, started, one event per rescheduling
// decision, done — with dense Seq numbers and a zero drop counter.
func TestEventStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	sc := workload.SampleScenario()
	sub, _ := submit(t, ts, encodeScenario(t, sc, "aheft", wire.Options{TieWindow: 0.05}))
	st := waitDone(t, ts, sub.ID)

	resp, err := ts.Client().Get(ts.URL + "/v1/workflows/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var events []wire.Event
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev wire.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE payload %q: %v", data, err)
			}
			events = append(events, ev)
		}
	}
	if len(events) != st.Events {
		t.Fatalf("stream has %d events, status reports %d", len(events), st.Events)
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("seq gap at %d: %+v", i, ev)
		}
		if ev.Workflow != sub.ID {
			t.Fatalf("event for wrong workflow: %+v", ev)
		}
	}
	if events[0].Kind != "submitted" || events[1].Kind != "started" {
		t.Fatalf("stream head: %+v", events[:2])
	}
	last := events[len(events)-1]
	if last.Kind != "done" || last.Makespan != 76 {
		t.Fatalf("stream tail: %+v", last)
	}
	decisions := 0
	for _, ev := range events {
		if ev.Kind == "decision" {
			if ev.Decision == nil {
				t.Fatalf("decision event without payload: %+v", ev)
			}
			decisions++
		}
	}
	if decisions != len(st.Decisions) {
		t.Fatalf("stream has %d decisions, status %d", decisions, len(st.Decisions))
	}
	if m := getMetrics(t, ts); m.EventsDropped != 0 {
		t.Fatalf("events dropped: %d", m.EventsDropped)
	}
}

// TestLiveEventStream subscribes before the workflow finishes and must
// still observe the complete stream (replay + live tail).
func TestLiveEventStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	r := rng.New(11)
	sc, err := workload.LayeredScenario(workload.LayeredParams{Jobs: 3000, Width: 60, FanIn: 3, CCR: 1, Beta: 0.5},
		workload.GridParams{InitialResources: 8, ChangeInterval: 400, ChangePct: 0.25, MaxEvents: 4}, r)
	if err != nil {
		t.Fatal(err)
	}
	body := encodeScenario(t, sc, "aheft", wire.Options{})
	sub, _ := submit(t, ts, body)

	resp, err := ts.Client().Get(ts.URL + "/v1/workflows/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var kinds []string
	lastSeq := -1
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		if data, ok := strings.CutPrefix(scanner.Text(), "data: "); ok {
			var ev wire.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatal(err)
			}
			if ev.Seq != lastSeq+1 {
				t.Fatalf("seq gap: %d after %d", ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			kinds = append(kinds, ev.Kind)
		}
	}
	if len(kinds) < 3 || kinds[len(kinds)-1] != "done" {
		t.Fatalf("incomplete live stream: %v", kinds)
	}
}

// TestRejections covers the 400 family: malformed body, oversized body,
// unknown policy, and unknown workflow lookups.
func TestRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1 << 20, Limits: wire.Limits{MaxJobs: 50}})
	sc := workload.SampleScenario()

	if _, resp := submit(t, ts, []byte("{not json")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: HTTP %d", resp.StatusCode)
	}
	if _, resp := submit(t, ts, encodeScenario(t, sc, "no-such-policy", wire.Options{})); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown policy: HTTP %d", resp.StatusCode)
	}
	if _, resp := submit(t, ts, bytes.Repeat([]byte("x"), (1<<20)+1)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: HTTP %d", resp.StatusCode)
	}
	r := rng.New(2)
	big, err := workload.RandomScenario(workload.RandomParams{Jobs: 60, CCR: 1, OutDegree: 0.2, Beta: 0.5},
		workload.GridParams{InitialResources: 4}, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, resp := submit(t, ts, encodeScenario(t, big, "aheft", wire.Options{})); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over job limit: HTTP %d", resp.StatusCode)
	}
	for _, path := range []string{"/v1/workflows/nope", "/v1/workflows/nope/events"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: HTTP %d", path, resp.StatusCode)
		}
	}
	if m := getMetrics(t, ts); m.RejectedInvalid != 4 {
		t.Fatalf("rejected_invalid = %d, want 4", m.RejectedInvalid)
	}
}

// TestBackpressure holds the single worker in place (via the exec hook),
// fills its depth-1 queue, and checks that the overflow submission gets
// 429 + Retry-After while everything accepted still completes.
func TestBackpressure(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shards: 1, QueueDepth: 1})
	release := make(chan struct{})
	var hookOnce sync.Once
	srv.execHook = func(*workflow) {
		// Only the first execution blocks; the queued one runs free
		// after release.
		hookOnce.Do(func() { <-release })
	}
	body := encodeScenario(t, workload.SampleScenario(), "aheft", wire.Options{})

	// First workflow occupies the worker, second fills the depth-1
	// queue, third must bounce.
	first, resp := submit(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first: HTTP %d", resp.StatusCode)
	}
	var queued wire.Submitted
	for i := 0; i < 100; i++ {
		// The worker may not have dequeued the first workflow yet, so
		// the queue slot can be momentarily occupied by it; retry until
		// a submission sticks in the queue while the hook blocks.
		sub, resp := submit(t, ts, body)
		if resp.StatusCode == http.StatusAccepted {
			queued = sub
			break
		}
		time.Sleep(time.Millisecond)
	}
	if queued.ID == "" {
		t.Fatal("no submission queued behind the blocked worker")
	}
	_, resp = submit(t, ts, body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: HTTP %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	close(release)
	// A rejected workflow must not leave a dangling record: everything
	// accepted completes, the rejection is counted.
	if st := waitDone(t, ts, first.ID); st.State != StateDone {
		t.Fatalf("first workflow: %+v", st)
	}
	if st := waitDone(t, ts, queued.ID); st.State != StateDone {
		t.Fatalf("queued workflow: %+v", st)
	}
	m := getMetrics(t, ts)
	if m.RejectedFull == 0 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.Inflight != 0 {
		t.Fatalf("inflight gauge stuck at %d", m.Inflight)
	}
}

// TestShutdownDrain submits a burst, then drains: every accepted
// workflow must finish, and post-drain submissions must get 503.
func TestShutdownDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shards: 4, QueueDepth: 64})
	body := encodeScenario(t, workload.SampleScenario(), "aheft", wire.Options{})
	var ids []string
	for i := 0; i < 40; i++ {
		sub, resp := submit(t, ts, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, sub.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		if st := getStatus(t, ts, id); st.State != StateDone {
			t.Fatalf("workflow %s not drained: %s", id, st.State)
		}
	}
	if _, resp := submit(t, ts, body); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: HTTP %d", resp.StatusCode)
	}
	m := getMetrics(t, ts)
	if m.Completed != 40 || m.Inflight != 0 || m.EventsDropped != 0 {
		t.Fatalf("post-drain metrics: %+v", m)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestRetentionEviction: terminal workflow records beyond MaxRetained
// are evicted oldest-first (404 afterwards), bounding daemon memory,
// while recent records stay queryable.
func TestRetentionEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1, MaxRetained: 8})
	body := encodeScenario(t, workload.SampleScenario(), "heft", wire.Options{})
	var ids []string
	for i := 0; i < 20; i++ {
		sub, resp := submit(t, ts, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, sub.ID)
	}
	// One shard finishes in submission order, so once the last workflow
	// is done, exactly the first 12 records get evicted. Status flips to
	// done an instant before the worker's retire() runs, so wait on the
	// eviction counter rather than the terminal state.
	if st := waitDone(t, ts, ids[19]); st.State != StateDone {
		t.Fatalf("last workflow: %+v", st)
	}
	deadline := time.Now().Add(10 * time.Second)
	for getMetrics(t, ts).Evicted < 12 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	for _, id := range ids[:12] {
		resp, err := ts.Client().Get(ts.URL + "/v1/workflows/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("evicted %s: HTTP %d, want 404", id, resp.StatusCode)
		}
	}
	for _, id := range ids[12:] {
		if st := getStatus(t, ts, id); st.State != StateDone {
			t.Fatalf("retained %s: %+v", id, st)
		}
	}
	m := getMetrics(t, ts)
	if m.Evicted != 12 || m.Completed != 20 {
		t.Fatalf("evicted=%d completed=%d, want 12/20", m.Evicted, m.Completed)
	}
}

// TestShardRouting checks the consistent-hash router is deterministic
// and reasonably balanced over many IDs.
func TestShardRouting(t *testing.T) {
	const shards = 4
	counts := make([]int, shards)
	for i := 0; i < 4000; i++ {
		id := fmt.Sprintf("wf-%08d", i)
		sh := shardFor(id, shards)
		if sh != shardFor(id, shards) {
			t.Fatal("routing not deterministic")
		}
		if sh < 0 || sh >= shards {
			t.Fatalf("shard %d out of range", sh)
		}
		counts[sh]++
	}
	for i, c := range counts {
		if c < 600 || c > 1400 {
			t.Fatalf("shard %d badly balanced: %v", i, counts)
		}
	}
	// Consistent-hash property: growing 4 → 5 shards moves only a
	// fraction of the keyspace (modulo hashing would move ~80%).
	moved := 0
	for i := 0; i < 4000; i++ {
		id := fmt.Sprintf("wf-%08d", i)
		if shardFor(id, shards) != shardFor(id, shards+1) {
			moved++
		}
	}
	if moved > 4000/3 {
		t.Fatalf("growing the ring moved %d/4000 ids", moved)
	}
}
