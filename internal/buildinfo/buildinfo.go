// Package buildinfo carries the daemon's build/version identity: a
// base version string (overridable at link time) plus the VCS revision
// Go embeds in the binary. aheftd prints it for -version, /v1/healthz
// reports it, and loadgen stamps its JSON reports with the daemon's
// value so a benchmark artefact names the build that produced it.
package buildinfo

import (
	"runtime/debug"
	"strings"
	"sync"
)

// Version is the base version string. Override at link time with
//
//	go build -ldflags "-X aheft/internal/buildinfo.Version=v1.2.3"
var Version = "dev"

var (
	once     sync.Once
	resolved string
)

// String returns "<Version>+<short-revision>[.dirty]" when the binary
// embeds VCS metadata, or just Version when it does not (go test, or a
// build outside a repository).
func String() string {
	once.Do(func() {
		resolved = Version
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		rev, dirty := "", false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev == "" {
			return
		}
		if len(rev) > 12 {
			rev = rev[:12]
		}
		var b strings.Builder
		b.WriteString(Version)
		b.WriteString("+")
		b.WriteString(rev)
		if dirty {
			b.WriteString(".dirty")
		}
		resolved = b.String()
	})
	return resolved
}
