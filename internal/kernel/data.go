package kernel

import (
	"fmt"
	"slices"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/data"
	"aheft/internal/grid"
	"aheft/internal/schedule"
)

// This file is the data-aware half of the placement inner loop. With a
// data.Model bound (SetData), file-carrying edges stop paying their raw
// Data weight: their cost is derived from file size ÷ effective bandwidth,
// the transfers occupy capacity channels (uplinks, downlinks, shared
// links) that serialize in the slot search exactly like compute on a busy
// resource, an input already materialized on a resource — produced there,
// pre-staged, delivered by an earlier plan, or staged earlier in the same
// pass — costs nothing (file reuse), and per-resource storage bounds the
// data a pass stages onto one host (as a soft constraint: when every
// resource overflows, the least-bad placement proceeds).
//
// Approximation, by design: the input transfers of one job probe their
// channel slots independently, so one job's staging batch may overlap
// itself on a shared channel (the committed spans are coalesced, so
// later jobs serialize against the union). Cross-job and cross-workflow
// transfers serialize exactly.
//
// Everything below is gated on k.dataM != nil; the classic path never
// touches it, keeping no-files schedules bit-identical.

// LinkOccupancy optionally extends Occupancy with per-channel foreign
// transfer reservations: AppendLinkBusy appends the busy intervals other
// tenants hold on the named capacity channel (data.Model channel names:
// "up:<res>", "down:<res>", "link:<name>") and returns the extended
// slice. Providers that don't implement it simply expose no link
// contention.
type LinkOccupancy interface {
	AppendLinkBusy(channel string, buf []Busy) []Busy
}

// SetData binds (or, with nil, unbinds) a data model. Must be called
// before states are created and plans computed: it invalidates the rank
// cache and the incremental-reschedule memo, and re-shapes the file
// ledger of states created afterwards. The model's pool must be the pool
// the kernel schedules over.
func (k *Kernel) SetData(m *data.Model) {
	k.dataM = m
	k.rankOK = false
	k.memo = nil
	k.empty = nil
	k.fileOfEdge = nil
	k.chBase, k.chWork = nil, nil
	k.fAvail, k.fAvailEp, k.fStride, k.fEpoch = nil, nil, 0, 0
	if m == nil {
		return
	}
	k.fileOfEdge = make([]int, k.nEdges)
	for j := 0; j < k.n; j++ {
		for i, e := range k.g.Preds(dag.JobID(j)) {
			k.fileOfEdge[k.predBase[j]+i] = m.Index(e.File)
		}
	}
	k.chBase = make([][]span, m.NumChannels())
	k.chWork = make([][]span, m.NumChannels())
}

// Data returns the bound data model (nil in the classic mode).
func (k *Kernel) Data() *data.Model { return k.dataM }

// meanComm is the rank-phase communication weight of an edge: MeanComm
// (the raw Data weight) classically, the model's nominal size÷bandwidth
// cost for file edges when a model is bound.
func (k *Kernel) meanComm(e dag.Edge) float64 {
	if k.dataM != nil && e.File != "" {
		if f := k.dataM.Index(e.File); f >= 0 {
			return k.dataM.NominalComm(f)
		}
	}
	return cost.MeanComm(e)
}

// commEst is the static (contention-free) transfer estimate for edge e —
// the derived file cost when a model is bound and the edge names a file,
// the estimator's Comm otherwise. This is the precedence rule the wire
// docs describe: declared files supersede the raw numeric edge cost.
func (k *Kernel) commEst(e dag.Edge, from, to grid.ID) float64 {
	if k.dataM != nil && e.File != "" {
		if f := k.dataM.Index(e.File); f >= 0 {
			return k.dataM.StaticComm(f, from, to)
		}
	}
	return k.est.Comm(e, from, to)
}

// CommEst is commEst for the engines: the edge-cost precedence rule
// (derived file cost over raw weight) applied to ship-on-finish ETAs and
// projections, identical to the estimator's Comm when no model is bound.
func (k *Kernel) CommEst(e dag.Edge, from, to grid.ID) float64 { return k.commEst(e, from, to) }

// probeXfer is one file movement a placement probe determined a candidate
// resource would need (or reuse); commitInputs materialises the needed
// ones for the chosen resource.
type probeXfer struct {
	file          int
	src           grid.ID
	start, finish float64
	need          bool // a fresh transfer must be committed
}

// prepChannels rebuilds, once per Reschedule, the per-channel base
// timelines from the foreign transfer reservations of the occupancy
// provider (when it implements LinkOccupancy). Mirrors the resource-row
// prep: sorted, then coalesced for the gap walk.
func (k *Kernel) prepChannels() {
	lo, _ := k.occ.(LinkOccupancy)
	for c := range k.chBase {
		row := k.chBase[c][:0]
		if lo != nil {
			k.busyBuf = lo.AppendLinkBusy(k.dataM.ChannelName(c), k.busyBuf[:0])
			for _, b := range k.busyBuf {
				if b.Finish <= b.Start {
					continue
				}
				row = append(row, span{start: b.Start, finish: b.Finish, job: foreignJob})
			}
		}
		slices.SortFunc(row, func(a, b span) int {
			switch {
			case a.start < b.start:
				return -1
			case a.start > b.start:
				return 1
			default:
				return 0
			}
		})
		k.chBase[c] = coalesce(row)
	}
}

// beginDataPass resets the pass-local data state of placeCandidate: the
// working channel timelines, the staged-file availability epoch, the
// per-resource storage tally, and the transfer list under construction.
func (k *Kernel) beginDataPass(rs []grid.Resource) {
	for c := range k.chWork {
		k.chWork[c] = append(k.chWork[c][:0], k.chBase[c]...)
	}
	maxID := grid.ID(-1)
	for _, r := range rs {
		if r.ID > maxID {
			maxID = r.ID
		}
	}
	if need := int(maxID) + 1; need > k.fStride {
		k.fStride = need
		nf := k.dataM.NumFiles()
		k.fAvail = make([]float64, nf*need)
		k.fAvailEp = make([]uint32, nf*need)
		k.storeUsed = make([]float64, need)
	}
	k.fEpoch++
	if k.fEpoch == 0 {
		for i := range k.fAvailEp {
			k.fAvailEp[i] = 0
		}
		k.fEpoch = 1
	}
	for _, r := range rs {
		k.storeUsed[r.ID] = 0
	}
	k.workXfers = k.workXfers[:0]
}

// passFile returns the availability of file f on r recorded earlier in
// the current pass.
func (k *Kernel) passFile(f int, r grid.ID) (float64, bool) {
	i := f*k.fStride + int(r)
	if k.fAvailEp[i] != k.fEpoch {
		return 0, false
	}
	return k.fAvail[i], true
}

func (k *Kernel) setPassFile(f int, r grid.ID, t float64) {
	i := f*k.fStride + int(r)
	if k.fAvailEp[i] == k.fEpoch && k.fAvail[i] <= t {
		return
	}
	k.fAvail[i], k.fAvailEp[i] = t, k.fEpoch
}

// channelSlot finds the earliest departure ≥ depart at which a transfer
// of duration d fits every channel of the src→dst path simultaneously —
// the multi-timeline analogue of earliestStart, converged by fixed-point
// iteration (each channel can only push the candidate later; when no
// channel moves it, the interval fits all of them).
func (k *Kernel) channelSlot(src, dst grid.ID, depart, d float64, insertion bool) float64 {
	if d <= 0 {
		return depart
	}
	k.chIdxBuf = k.dataM.AppendChannels(src, dst, k.chIdxBuf[:0])
	t := depart
	for {
		moved := false
		for _, c := range k.chIdxBuf {
			if s := earliestStart(k.chWork[c], t, d, insertion); s > t {
				t, moved = s, true
			}
		}
		if !moved {
			return t
		}
	}
}

// probeInputs computes, without mutating any timeline, the input-ready
// time of a job on candidate resource r under the data model: classic
// edges go through Eq. 1 (st.fea) unchanged; file edges resolve to the
// producer's finish (precedence floor) plus, when the file is not yet on
// r, a fresh transfer slotted through the path's capacity channels. The
// probed transfers are left in k.xferBuf for commitInputs. fits reports
// whether r's storage bound accommodates the staged bytes.
func (k *Kernel) probeInputs(st *State, preds []dag.Edge, eBase int, r grid.ID, insertion bool) (ready float64, fits bool) {
	k.xferBuf = k.xferBuf[:0]
	ready = st.Clock
	newBytes := 0.0
	for i := range preds {
		e := preds[i]
		eIdx := eBase + i
		f := k.fileOfEdge[eIdx]
		if f < 0 {
			if t := st.fea(e, eIdx, r); t > ready {
				ready = t
			}
			continue
		}
		// Producer location and availability: actual outcome for finished
		// predecessors, candidate placement (rank order guarantees it
		// exists) or pin otherwise.
		var src grid.ID
		var avail float64
		if fr := st.finRes[e.From]; fr != grid.NoResource {
			src, avail = fr, st.finAFT[e.From]
		} else {
			pa := k.placed[e.From]
			if pa.Resource == grid.NoResource {
				panic(fmt.Sprintf("kernel: data probe before predecessor %d placed", e.From))
			}
			src, avail = pa.Resource, pa.Finish
		}
		arr := avail // precedence floor: never before the producer finishes
		switch {
		case src == r || k.dataM.PreStaged(f, r):
			// Case 1/3 analogue: the bytes are already where the job runs.
		default:
			if t, ok := st.fileAt(f, r); ok {
				// Reuse a replica a previous plan (or delivered transfer)
				// already staged to r.
				if t > arr {
					arr = t
				}
				break
			}
			if t, ok := k.passFile(f, r); ok {
				// Reuse a transfer committed earlier in this very pass.
				if t > arr {
					arr = t
				}
				break
			}
			reused := false
			for _, x := range k.xferBuf {
				if x.file == f {
					// Another input edge of this job already probed the
					// same file toward r: one staged copy serves both.
					if x.finish > arr {
						arr = x.finish
					}
					reused = true
					break
				}
			}
			if reused {
				break
			}
			depart := avail
			if depart < st.Clock {
				depart = st.Clock // Eq. 1 Case 2: a fresh transfer starts now
			}
			d := k.dataM.Duration(f, src, r)
			t := k.channelSlot(src, r, depart, d, insertion)
			k.xferBuf = append(k.xferBuf, probeXfer{file: f, src: src, start: t, finish: t + d, need: true})
			newBytes += k.dataM.Size(f)
			if t+d > arr {
				arr = t + d
			}
		}
		if arr > ready {
			ready = arr
		}
	}
	store := k.dataM.Store(r)
	fits = store == 0 || k.storeUsed[r]+newBytes <= store+1e-9
	return ready, fits
}

// commitInputs re-probes the chosen resource (nothing mutated since the
// resource loop, so the result is identical) and materialises the needed
// transfers: spans inserted into every channel on the path (then
// coalesced so the gap walk stays sound under the intra-job overlap
// approximation), pass-local file availability recorded for reuse,
// storage tallied, and the plan's transfer list extended.
func (k *Kernel) commitInputs(st *State, job dag.JobID, preds []dag.Edge, eBase int, r grid.ID, insertion bool) {
	k.probeInputs(st, preds, eBase, r, insertion)
	for _, x := range k.xferBuf {
		if !x.need {
			continue
		}
		if x.finish > x.start {
			k.chIdxBuf = k.dataM.AppendChannels(x.src, r, k.chIdxBuf[:0])
			for _, c := range k.chIdxBuf {
				insertSpan(&k.chWork[c], span{start: x.start, finish: x.finish, job: job})
				k.chWork[c] = coalesce(k.chWork[c])
			}
			k.workXfers = append(k.workXfers, schedule.Transfer{
				Job: job, File: k.dataM.FileID(x.file),
				From: x.src, To: r, Start: x.start, Finish: x.finish,
			})
		}
		k.setPassFile(x.file, r, x.finish)
		k.storeUsed[r] += k.dataM.Size(x.file)
	}
}
