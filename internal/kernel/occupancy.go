package kernel

import (
	"aheft/internal/dag"
	"aheft/internal/grid"
)

// Busy is one foreign occupied interval on a resource: time claimed by a
// job the kernel's own graph knows nothing about (another workflow on a
// shared grid).
type Busy struct {
	Start, Finish float64
}

// Occupancy supplies the foreign reservations the slot search must plan
// around. AppendBusy appends resource r's foreign intervals to buf and
// returns the extended slice; implementations must not retain buf. The
// intervals may overlap each other (drifting pins from different owners)
// — the kernel coalesces them before searching.
//
// The provider is consulted once per resource per placement pass
// (prepHistory), never inside the per-job inner loop, so a mutex-guarded
// implementation does not serialise the hot path.
type Occupancy interface {
	AppendBusy(r grid.ID, buf []Busy) []Busy
}

// SetOccupancy attaches (or, with nil, detaches) a foreign-reservation
// provider. Every subsequent placement pass — Static, Reschedule, and the
// policies built on them — treats the provider's intervals as busy time
// in the slot search, while the schedule it returns still covers only the
// kernel's own jobs and the makespan counts only their finishes.
func (k *Kernel) SetOccupancy(o Occupancy) { k.occ = o }

// foreignJob marks timeline spans that belong to no job of this graph.
const foreignJob = dag.NoJob

// injectForeign appends the provider's busy intervals for every resource
// of rs into the base timelines. Called from prepHistory after the own
// history rows are filled, before the per-row sort; the shared busyBuf
// scratch keeps the steady state allocation-free.
func (k *Kernel) injectForeign(rs []grid.Resource) {
	if k.occ == nil {
		return
	}
	for _, r := range rs {
		k.busyBuf = k.occ.AppendBusy(r.ID, k.busyBuf[:0])
		for _, b := range k.busyBuf {
			if b.Finish <= b.Start {
				continue // empty or inverted claim blocks nothing
			}
			k.baseTL[r.ID] = append(k.baseTL[r.ID], span{start: b.Start, finish: b.Finish, job: foreignJob})
		}
	}
}

// coalesce merges overlapping or touching spans of a start-sorted row in
// place and returns the shortened row. Own spans never overlap (schedule
// invariant), but foreign reservations can — two owners' claims drift
// apart from the plans they were disjoint under — and the slot search's
// gap walk assumes disjoint spans, so every row it scans is normalised
// first. Merging loses per-job identity, which the search never uses.
func coalesce(row []span) []span {
	w := 0
	for i := 0; i < len(row); i++ {
		if w > 0 && row[i].start <= row[w-1].finish {
			if row[i].finish > row[w-1].finish {
				row[w-1].finish = row[i].finish
			}
			continue
		}
		row[w] = row[i]
		w++
	}
	return row[:w]
}
