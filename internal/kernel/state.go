package kernel

import (
	"fmt"

	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/schedule"
)

// TransferCredit selects which previously initiated file transfers a
// reschedule may count on (internal/core aliases this type, so the v1
// core.Credit* names keep working).
type TransferCredit int

const (
	// CreditAll credits completed and in-flight transfers: a file already
	// moving toward a resource arrives there at its original ETA even if
	// the consumer is rescheduled elsewhere.
	CreditAll TransferCredit = iota
	// CreditDelivered credits only transfers that completed by clock;
	// in-flight transfers are treated as cancelled by the reschedule.
	CreditDelivered
	// CreditNone credits nothing beyond the producer's own resource:
	// every cross-resource read pays a fresh transfer from clock.
	CreditNone
)

// SnapshotOptions controls how Snapshot derives a State from a schedule.
type SnapshotOptions struct {
	// RestartRunning reschedules jobs that are mid-execution at clock,
	// discarding their partial work, instead of pinning them to their
	// current assignment. The paper's semantics (reproducing the Fig. 5
	// makespan of 76) pin running jobs; restart is an ablation.
	RestartRunning bool
	// Credit selects the in-flight transfer policy (default CreditAll).
	Credit TransferCredit
}

// State is the dense execution-status snapshot the kernel schedules
// against — the same information as core.ExecState (Clock, finished jobs,
// pinned running jobs, and the per-edge file-availability ledger of
// Eq. 1) but stored in job- and edge-indexed arrays so the FEA hot loop
// reads it without hashing and the whole structure resets without
// reallocating.
//
// The transfer ledger is an (edge × resource) matrix stamped with an
// epoch counter: Reset bumps the epoch instead of clearing the matrix,
// so resetting costs O(jobs) regardless of how many transfers the
// previous run recorded.
//
// A State belongs to the Kernel that created it and shares its lifetime
// and single-goroutine discipline.
type State struct {
	k *Kernel

	// Clock is the logical time of rescheduling.
	Clock float64

	finRes []grid.ID // grid.NoResource = not finished
	finAST []float64
	finAFT []float64
	nFin   int

	isPin []bool
	pin   []schedule.Assignment

	led    []float64 // led[edge*stride+res]: earliest availability of the edge's file on res
	ledEp  []uint32
	epoch  uint32
	stride int // resources per ledger row

	// File-keyed ledger (data-aware mode only): earliest availability of
	// each catalog file on each resource, fed by the same SetTransfer
	// writes as the edge ledger. This is what lets an input staged for one
	// consumer satisfy every other edge naming the same file.
	fled   []float64 // fled[file*stride+res]
	fledEp []uint32

	// inputGen[j] counts effective ledger writes on j's incoming edges.
	// The delta path compares it against its memo to detect jobs whose
	// Eq. 1 inputs changed between reschedules without replaying the
	// ledger.
	inputGen []uint32
}

// NewState returns a fresh empty state at clock 0. resHint sizes the
// transfer ledger for the given number of resources; the ledger grows on
// demand if more resources appear later (pass pool.Size() to avoid the
// regrowth).
func (k *Kernel) NewState(resHint int) *State {
	st := &State{
		k:      k,
		finRes: make([]grid.ID, k.n),
		finAST: make([]float64, k.n),
		finAFT: make([]float64, k.n),
		isPin:  make([]bool, k.n),
		pin:    make([]schedule.Assignment, k.n),
		epoch:  1,

		inputGen: make([]uint32, k.n),
	}
	for j := range st.finRes {
		st.finRes[j] = grid.NoResource
	}
	if resHint > 0 {
		st.growLedger(resHint)
	}
	return st
}

// Reset empties the state: clock 0, nothing finished, nothing pinned,
// no transfers recorded. Buffers are retained.
func (st *State) Reset() {
	st.Clock = 0
	st.nFin = 0
	for j := range st.finRes {
		st.finRes[j] = grid.NoResource
	}
	st.ClearPinned()
	for j := range st.inputGen {
		st.inputGen[j] = 0
	}
	st.epoch++
	if st.epoch == 0 { // uint32 wrap: actually clear, then restart epochs
		for i := range st.ledEp {
			st.ledEp[i] = 0
		}
		for i := range st.fledEp {
			st.fledEp[i] = 0
		}
		st.epoch = 1
	}
}

// ClearPinned unpins every job (the engine rebuilds the pinned set at
// each event from the current schedule).
func (st *State) ClearPinned() {
	for j := range st.isPin {
		st.isPin[j] = false
	}
}

// Finish records job j as completed on res over [ast, aft). Re-recording
// a job overwrites its outcome.
func (st *State) Finish(j dag.JobID, res grid.ID, ast, aft float64) {
	if st.finRes[j] == grid.NoResource {
		st.nFin++
	}
	st.finRes[j] = res
	st.finAST[j] = ast
	st.finAFT[j] = aft
}

// Finished reports whether job j is recorded as completed.
func (st *State) Finished(j dag.JobID) bool { return st.finRes[j] != grid.NoResource }

// FinishedCount returns how many jobs are recorded as completed.
func (st *State) FinishedCount() int { return st.nFin }

// FinishedOutcome returns where a finished job ran and its actual start
// and finish times; res is grid.NoResource if the job is not finished.
func (st *State) FinishedOutcome(j dag.JobID) (res grid.ID, ast, aft float64) {
	return st.finRes[j], st.finAST[j], st.finAFT[j]
}

// Pin records job j as mid-execution, keeping assignment a.
func (st *State) Pin(a schedule.Assignment) {
	st.isPin[a.Job] = true
	st.pin[a.Job] = a
}

// Pinned reports whether job j is pinned.
func (st *State) Pinned(j dag.JobID) bool { return st.isPin[j] }

// Unfinished returns how many jobs are neither finished nor pinned.
func (st *State) Unfinished() int {
	n := 0
	for j := range st.finRes {
		if st.finRes[j] == grid.NoResource && !st.isPin[j] {
			n++
		}
	}
	return n
}

// growLedger (re)shapes the (edge × resource) ledger to cover nRes
// resources, preserving recorded entries.
func (st *State) growLedger(nRes int) {
	if nRes <= st.stride {
		return
	}
	// Grow with headroom so a pool that adds resources one event at a
	// time does not re-layout the ledger per event.
	if nRes < st.stride*2 {
		nRes = st.stride * 2
	}
	ne := st.k.nEdges
	led := make([]float64, ne*nRes)
	ep := make([]uint32, ne*nRes)
	for e := 0; e < ne && st.stride > 0; e++ {
		copy(led[e*nRes:e*nRes+st.stride], st.led[e*st.stride:(e+1)*st.stride])
		copy(ep[e*nRes:e*nRes+st.stride], st.ledEp[e*st.stride:(e+1)*st.stride])
	}
	if st.k.dataM != nil {
		nf := st.k.dataM.NumFiles()
		fled := make([]float64, nf*nRes)
		fep := make([]uint32, nf*nRes)
		for f := 0; f < nf && st.stride > 0; f++ {
			copy(fled[f*nRes:f*nRes+st.stride], st.fled[f*st.stride:(f+1)*st.stride])
			copy(fep[f*nRes:f*nRes+st.stride], st.fledEp[f*st.stride:(f+1)*st.stride])
		}
		st.fled, st.fledEp = fled, fep
	}
	st.led, st.ledEp, st.stride = led, ep, nRes
}

// SetTransfer records that the (m → j) file is (or will be) available on
// resource r at time t, keeping the earliest time if recorded twice —
// the dense equivalent of core.ExecState.SetTransfer. Unknown edges are
// ignored (the engine only records real dependences).
func (st *State) SetTransfer(m, j dag.JobID, r grid.ID, t float64) {
	e := st.k.edgeIndex(m, j)
	if e < 0 {
		return
	}
	if int(r) >= st.stride {
		st.growLedger(int(r) + 1)
	}
	i := e*st.stride + int(r)
	if st.ledEp[i] != st.epoch || st.led[i] > t {
		st.led[i] = t
		st.ledEp[i] = st.epoch
		st.inputGen[j]++
	}
	if st.k.fileOfEdge != nil {
		if f := st.k.fileOfEdge[e]; f >= 0 {
			fi := f*st.stride + int(r)
			if st.fledEp[fi] != st.epoch || st.fled[fi] > t {
				st.fled[fi] = t
				st.fledEp[fi] = st.epoch
			}
		}
	}
}

// fileAt returns the recorded availability of catalog file f on r
// (data-aware mode only).
func (st *State) fileAt(f int, r grid.ID) (float64, bool) {
	if int(r) >= st.stride {
		return 0, false
	}
	i := f*st.stride + int(r)
	if st.fledEp[i] != st.epoch {
		return 0, false
	}
	return st.fled[i], true
}

// HasTransfer reports whether a transfer of the (m → j) file toward r has
// been recorded.
func (st *State) HasTransfer(m, j dag.JobID, r grid.ID) bool {
	e := st.k.edgeIndex(m, j)
	if e < 0 || int(r) >= st.stride {
		return false
	}
	return st.ledEp[e*st.stride+int(r)] == st.epoch
}

// TransferAt returns the recorded availability of the (m → j) file on r.
func (st *State) TransferAt(m, j dag.JobID, r grid.ID) (float64, bool) {
	e := st.k.edgeIndex(m, j)
	if e < 0 {
		return 0, false
	}
	return st.transfer(e, r)
}

func (st *State) transfer(e int, r grid.ID) (float64, bool) {
	if int(r) >= st.stride {
		return 0, false
	}
	i := e*st.stride + int(r)
	if st.ledEp[i] != st.epoch {
		return 0, false
	}
	return st.led[i], true
}

// ForEachTransfer calls fn for every transfer recorded in the current
// epoch — (from → to) file available on resource r at time t — in
// deterministic (edge index, then resource) order. The daemon's
// durability layer serialises the ledger through this; SetTransfer in
// the same order reproduces it exactly (a fresh ledger keeps the first,
// i.e. recorded, time).
func (st *State) ForEachTransfer(fn func(from, to dag.JobID, r grid.ID, at float64)) {
	g := st.k.g
	for j := 0; j < st.k.n; j++ {
		to := dag.JobID(j)
		for i, e := range g.Preds(to) {
			base := (st.k.predBase[j] + i) * st.stride
			for r := 0; r < st.stride; r++ {
				if st.ledEp[base+r] == st.epoch {
					fn(e.From, to, grid.ID(r), st.led[base+r])
				}
			}
		}
	}
}

// fea implements Eq. 1 on the dense state: the earliest time the output
// of predecessor e.From is available on resource r for the job being
// placed, given the current candidate placements in the kernel's scratch.
// eIdx is the dense index of e (predBase[e.To]+i for the i-th pred).
func (st *State) fea(e dag.Edge, eIdx int, r grid.ID) float64 {
	m := e.From
	if fr := st.finRes[m]; fr != grid.NoResource {
		if t, ok := st.transfer(eIdx, r); ok {
			// Case 1 (and its in-flight variant): the file is on r —
			// either produced there (t = AFT) or delivered by a transfer
			// the old schedule already initiated.
			return t
		}
		// Case 2: finished elsewhere and the file was never directed at
		// r — a fresh transfer starts now; it cannot start in the past.
		return st.Clock + st.k.est.Comm(e, fr, r)
	}
	// Unfinished predecessor: it has already been placed in the candidate
	// (rank order guarantees predecessors precede successors), or it is
	// pinned (merged into the placement template).
	pa := st.k.placed[m]
	if pa.Resource == grid.NoResource {
		panic(fmt.Sprintf("kernel: FEA called before predecessor %d placed", m))
	}
	if pa.Resource == r {
		// Case 3: produced on this very resource in the new schedule.
		return pa.Finish
	}
	// Case 4: produced elsewhere in the new schedule; the transfer
	// follows its (re)scheduled finish time SFT(m).
	return pa.Finish + st.k.est.Comm(e, pa.Resource, r)
}

// Snapshot derives the execution state of schedule s0 executed faithfully
// (accurate estimates: actual times equal scheduled times) up to clock,
// replacing the state's previous contents — the dense, allocation-free
// equivalent of core.Snapshot. The static file-transfer policy applies:
// when a job finishes, its output is immediately shipped to the resource
// of every scheduled successor (paper §4.1 assumption 2).
func (st *State) Snapshot(s0 *schedule.Schedule, clock float64, opts SnapshotOptions) {
	st.Reset()
	st.Clock = clock
	if s0 == nil {
		return
	}
	g := st.k.g
	for _, j := range g.Jobs() {
		a, ok := s0.Get(j.ID)
		if !ok {
			continue
		}
		switch {
		case a.Finish <= clock:
			st.Finish(j.ID, a.Resource, a.Start, a.Finish)
			for _, e := range g.Succs(j.ID) {
				st.SetTransfer(j.ID, e.To, a.Resource, a.Finish)
				sa, ok := s0.Get(e.To)
				if !ok || opts.Credit == CreditNone {
					continue
				}
				// Transfer initiated at AFT toward the successor's
				// scheduled resource; it may still be in flight. commEst
				// applies the derived file cost when a data model is
				// bound, the estimator's Comm otherwise.
				eta := a.Finish + st.k.commEst(e, a.Resource, sa.Resource)
				if opts.Credit == CreditDelivered && eta > clock {
					continue
				}
				st.SetTransfer(j.ID, e.To, sa.Resource, eta)
			}
		case a.Start < clock && !opts.RestartRunning:
			st.Pin(a)
		}
	}
}
