package kernel_test

import (
	"strings"
	"testing"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/heft"
	"aheft/internal/kernel"
	"aheft/internal/schedule"
	"aheft/internal/workload"
)

// countingEstimator wraps an estimator and counts Comp calls, to observe
// rank-cache behaviour.
type countingEstimator struct {
	cost.Estimator
	comps int
}

func (c *countingEstimator) Comp(j dag.JobID, r grid.ID) float64 {
	c.comps++
	return c.Estimator.Comp(j, r)
}

// TestStaticMatchesSample: the kernel's static pass reproduces the
// paper's Fig. 5(a) HEFT makespan of 80 on the Fig. 4 worked example.
func TestStaticMatchesSample(t *testing.T) {
	sc := workload.SampleScenario()
	k := kernel.New(sc.Graph, sc.Estimator())
	s, err := k.Static(sc.Pool.Initial(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 80 {
		t.Fatalf("makespan = %g, want 80\n%s", s.Makespan(), s)
	}
}

// TestStaticEquivalentToReference: across random scenarios, the kernel's
// dense placement pass produces assignment-for-assignment the same
// schedule as the independent map-based reference (rank order +
// heft.PlaceJob over a schedule.Schedule).
func TestStaticEquivalentToReference(t *testing.T) {
	for _, seed := range []uint64{1, 7, 0xC0FFEE, 99} {
		sc := quickScenario(t, seed)
		est := sc.Estimator()
		rs := sc.Pool.Initial()
		k := kernel.New(sc.Graph, est)
		got, err := k.Static(rs, kernel.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ranks, err := heft.RankU(sc.Graph, est, rs)
		if err != nil {
			t.Fatal(err)
		}
		want := schedule.New()
		for _, job := range kernel.Order(ranks) {
			a, err := heft.PlaceJob(sc.Graph, est, rs, want, job, 0, true)
			if err != nil {
				t.Fatal(err)
			}
			want.Assign(a)
		}
		for _, j := range sc.Graph.Jobs() {
			if got.MustGet(j.ID) != want.MustGet(j.ID) {
				t.Fatalf("seed %d: job %s: kernel %+v, reference %+v",
					seed, j.Name, got.MustGet(j.ID), want.MustGet(j.ID))
			}
		}
	}
}

// TestRankCache: ranks are computed once per resource set — a repeat call
// with the same set touches the estimator zero times; a changed set
// recomputes.
func TestRankCache(t *testing.T) {
	sc := workload.SampleScenario()
	ce := &countingEstimator{Estimator: sc.Estimator()}
	k := kernel.New(sc.Graph, ce)
	rs0 := sc.Pool.Initial()
	if _, _, err := k.Ranks(rs0); err != nil {
		t.Fatal(err)
	}
	before := ce.comps
	if before == 0 {
		t.Fatal("rank computation never consulted the estimator")
	}
	if _, _, err := k.Ranks(rs0); err != nil {
		t.Fatal(err)
	}
	if ce.comps != before {
		t.Fatalf("cached Ranks re-consulted the estimator (%d → %d calls)", before, ce.comps)
	}
	rs1 := sc.Pool.AvailableAt(15) // r4 joined: different set
	if len(rs1) == len(rs0) {
		t.Fatal("test scenario lost its arrival")
	}
	if _, _, err := k.Ranks(rs1); err != nil {
		t.Fatal(err)
	}
	if ce.comps == before {
		t.Fatal("changed resource set did not invalidate the rank cache")
	}
	after := ce.comps
	k.InvalidateRanks()
	if _, _, err := k.Ranks(rs1); err != nil {
		t.Fatal(err)
	}
	if ce.comps == after {
		t.Fatal("InvalidateRanks did not force recomputation")
	}
}

// TestRanksEmptyResourceSet: the kernel refuses an empty resource set.
func TestRanksEmptyResourceSet(t *testing.T) {
	sc := workload.SampleScenario()
	k := kernel.New(sc.Graph, sc.Estimator())
	if _, _, err := k.Ranks(nil); err == nil || !strings.Contains(err.Error(), "empty resource set") {
		t.Fatalf("Ranks(nil) error = %v", err)
	}
	if _, err := k.Reschedule(nil, nil, kernel.Options{}); err == nil {
		t.Fatal("Reschedule over empty resource set accepted")
	}
}

// TestRescheduleNilStateIsStatic: a nil state means the empty clock-0
// snapshot, under which Reschedule degenerates to HEFT (§3.4).
func TestRescheduleNilStateIsStatic(t *testing.T) {
	sc := workload.SampleScenario()
	k := kernel.New(sc.Graph, sc.Estimator())
	rs := sc.Pool.Initial()
	a, err := k.Reschedule(rs, nil, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Static(rs, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range sc.Graph.Jobs() {
		if a.MustGet(j.ID) != b.MustGet(j.ID) {
			t.Fatalf("job %s differs between nil-state Reschedule and Static", j.Name)
		}
	}
}

// TestStateTransferLedger: earliest-wins recording, presence queries,
// epoch-based reset, and growth that preserves recorded entries.
func TestStateTransferLedger(t *testing.T) {
	sc := workload.SampleScenario()
	g := sc.Graph
	k := kernel.New(g, sc.Estimator())
	st := k.NewState(1)
	n1, n2 := g.JobByName("n1"), g.JobByName("n2")

	st.SetTransfer(n1, n2, 0, 30)
	st.SetTransfer(n1, n2, 0, 20) // earlier wins
	st.SetTransfer(n1, n2, 0, 25) // later ignored
	if v, ok := st.TransferAt(n1, n2, 0); !ok || v != 20 {
		t.Fatalf("TransferAt = (%g, %v), want (20, true)", v, ok)
	}
	if !st.HasTransfer(n1, n2, 0) || st.HasTransfer(n1, n2, 1) {
		t.Fatal("HasTransfer wrong")
	}
	// Unknown edge (n2 → n1 does not exist): ignored, absent.
	st.SetTransfer(n2, n1, 0, 5)
	if st.HasTransfer(n2, n1, 0) {
		t.Fatal("transfer recorded for a non-edge")
	}
	// Growth preserves the recorded entry.
	st.SetTransfer(n1, n2, 50, 77)
	if v, ok := st.TransferAt(n1, n2, 0); !ok || v != 20 {
		t.Fatalf("ledger growth lost entry: (%g, %v)", v, ok)
	}
	if v, ok := st.TransferAt(n1, n2, 50); !ok || v != 77 {
		t.Fatalf("grown entry = (%g, %v), want (77, true)", v, ok)
	}
	// Reset drops everything without reallocating.
	st.Reset()
	if st.HasTransfer(n1, n2, 0) || st.HasTransfer(n1, n2, 50) {
		t.Fatal("Reset kept transfers")
	}
	if st.FinishedCount() != 0 {
		t.Fatal("Reset kept finishes")
	}
}

// TestStateFinishPin: finish/pin bookkeeping and counters.
func TestStateFinishPin(t *testing.T) {
	sc := workload.SampleScenario()
	k := kernel.New(sc.Graph, sc.Estimator())
	st := k.NewState(4)
	st.Finish(0, 2, 0, 9)
	st.Finish(0, 2, 0, 9) // idempotent for the counter
	if st.FinishedCount() != 1 || !st.Finished(0) || st.Finished(1) {
		t.Fatal("finish bookkeeping wrong")
	}
	if r, ast, aft := st.FinishedOutcome(0); r != 2 || ast != 0 || aft != 9 {
		t.Fatalf("outcome = (%v, %g, %g)", r, ast, aft)
	}
	st.Pin(schedule.Assignment{Job: 3, Resource: 1, Start: 5, Finish: 25})
	if !st.Pinned(3) || st.Pinned(2) {
		t.Fatal("pin bookkeeping wrong")
	}
	if st.Unfinished() != sc.Graph.Len()-2 {
		t.Fatalf("Unfinished = %d", st.Unfinished())
	}
	st.ClearPinned()
	if st.Pinned(3) {
		t.Fatal("ClearPinned kept a pin")
	}
}

// TestDispatchBest: the decision-time completion evaluation and its
// best/second-best tracking.
func TestDispatchBest(t *testing.T) {
	g := dag.New("pair")
	a := g.AddJob("a", "")
	b := g.AddJob("b", "")
	g.MustEdge(a, b, 30)
	g.MustValidate()
	tb := cost.MustTable([][]float64{
		{10, 10, 10},
		{10, 40, 25},
	})
	k := kernel.New(g, cost.Exact(tb))
	resOf := []grid.ID{0, grid.NoResource} // a ran on r0
	// b on r0: no transfer, 20+10 = 30. On r1: 20+30 transfer → 50+40 = 90.
	// On r2: 50+25 = 75.
	if got := k.DispatchCompletion(b, 0, 20, resOf); got != 30 {
		t.Fatalf("completion on r0 = %g, want 30", got)
	}
	if got := k.DispatchCompletion(b, 1, 20, resOf); got != 90 {
		t.Fatalf("completion on r1 = %g, want 90", got)
	}
	// Completion values in idle order [0,1,2] are 30, 90, 75. The
	// best/second tracking is the legacy min-min engine's, preserved
	// verbatim for parity: second starts at the first candidate's value
	// and only ever ratchets down, so here it stays 30.
	best, done, second := k.DispatchBest(b, []grid.ID{0, 1, 2}, 20, resOf)
	if best != 0 || done != 30 || second != 30 {
		t.Fatalf("DispatchBest = (%v, %g, %g), want (0, 30, 30)", best, done, second)
	}
	// Visiting the cheapest resource last exposes the true second-best.
	best, done, second = k.DispatchBest(b, []grid.ID{1, 2, 0}, 20, resOf)
	if best != 0 || done != 30 || second != 75 {
		t.Fatalf("DispatchBest = (%v, %g, %g), want (0, 30, 75)", best, done, second)
	}
	if best, _, _ := k.DispatchBest(b, nil, 20, resOf); best != grid.NoResource {
		t.Fatal("empty idle set must yield NoResource")
	}
}

// TestGraphAccessors: the kernel exposes its bindings.
func TestGraphAccessors(t *testing.T) {
	sc := workload.SampleScenario()
	est := sc.Estimator()
	k := kernel.New(sc.Graph, est)
	if k.Graph() != sc.Graph || k.Estimator() == nil {
		t.Fatal("accessors broken")
	}
	if k.NumEdges() != sc.Graph.NumEdges() {
		t.Fatalf("NumEdges = %d, want %d", k.NumEdges(), sc.Graph.NumEdges())
	}
}
