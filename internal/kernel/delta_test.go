package kernel_test

// Tests for the incremental (delta) reschedule path: perturbation
// taxonomy (finish-early, finish-late, resource-join, resource-leave,
// foreign-reservation-release) with cone assertions, chained
// delta-vs-full parity over random scenarios, and the zero-added-
// allocations contract. Parity is always bit-identical: the delta path
// must be indistinguishable from a full replan on the same snapshot.

import (
	"fmt"
	"testing"

	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/kernel"
	"aheft/internal/rng"
	"aheft/internal/schedule"
	"aheft/internal/workload"
)

// advance progresses st to clock against the currently adopted schedule s,
// the way feedback.Tracker maintains its state between evaluations: jobs
// whose actual finish time has passed are recorded finished with
// ship-on-finish transfers toward every scheduled consumer, and
// started-but-unfinished jobs are re-pinned. scaleOf perturbs actual
// runtimes (actual duration = scale × scheduled duration, anchored at the
// currently scheduled start); it applies to pins too, so an overrun
// extends the pinned interval exactly like a variance report does.
// Applying the same advance calls to two states keeps them bit-identical,
// which the parity tests rely on.
func advance(sc *workload.Scenario, st *kernel.State, s *schedule.Schedule, clock float64, scaleOf map[dag.JobID]float64) {
	est := sc.Estimator()
	g := sc.Graph
	st.Clock = clock
	st.ClearPinned()
	for _, j := range g.Jobs() {
		if st.Finished(j.ID) {
			continue
		}
		a, ok := s.Get(j.ID)
		if !ok {
			continue
		}
		fin := a.Finish
		if f, ok := scaleOf[j.ID]; ok {
			fin = a.Start + f*(a.Finish-a.Start)
		}
		switch {
		case a.Start < clock && fin <= clock:
			st.Finish(j.ID, a.Resource, a.Start, fin)
			for _, e := range g.Succs(j.ID) {
				st.SetTransfer(j.ID, e.To, a.Resource, fin)
				if sa, ok := s.Get(e.To); ok {
					st.SetTransfer(j.ID, e.To, sa.Resource, fin+est.Comm(e, a.Resource, sa.Resource))
				}
			}
		case a.Start < clock:
			st.Pin(schedule.Assignment{Job: j.ID, Resource: a.Resource, Start: a.Start, Finish: fin})
		}
	}
}

// requireSameSchedule asserts bit-identical assignments for every job.
func requireSameSchedule(t testing.TB, g *dag.Graph, got, want *schedule.Schedule, ctx string) {
	t.Helper()
	for _, j := range g.Jobs() {
		if got.MustGet(j.ID) != want.MustGet(j.ID) {
			t.Fatalf("%s: job %s diverged: delta %+v, full %+v",
				ctx, j.Name, got.MustGet(j.ID), want.MustGet(j.ID))
		}
	}
}

// taxonomyScenario is the fixed mid-size layered workflow the taxonomy
// cases share.
func taxonomyScenario(t *testing.T) *workload.Scenario {
	t.Helper()
	sc, err := workload.LayeredScenario(workload.LayeredParams{
		Jobs: 240, Width: 8, FanIn: 3, CCR: 1, Beta: 0.5,
	}, workload.GridParams{
		InitialResources: 6, ChangeInterval: 1e9, ChangePct: 0.25, MaxEvents: 1,
	}, rng.New(0xDE17A))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// pickUnstarted returns the first job of s scheduled strictly inside
// (after, upTo] — not yet started at `after`, finished by `upTo`.
func pickUnstarted(t *testing.T, g *dag.Graph, s *schedule.Schedule, after, upTo float64) schedule.Assignment {
	t.Helper()
	for _, j := range g.Jobs() {
		a, ok := s.Get(j.ID)
		if ok && a.Start > after && a.Finish <= upTo {
			return a
		}
	}
	t.Fatalf("no job scheduled inside (%g, %g]", after, upTo)
	return schedule.Assignment{}
}

// TestKernelDeltaTaxonomy drives one perturbation of each trigger kind
// through a memoised kernel and asserts (a) whether the delta path runs or
// which fallback reason fires, (b) cone membership — every still-pending
// direct successor of a perturbed job re-probes — and (c) bit-identical
// parity against an independent full replan on a replicated state.
func TestKernelDeltaTaxonomy(t *testing.T) {
	type world struct {
		sc       *workload.Scenario
		ki, kr   *kernel.Kernel // incremental and full-reference kernels
		sti, str *kernel.State
		s1       *schedule.Schedule // adopted schedule after the memo pass
		c1, c2   float64
		occ      fixedOccupancy // shared by both kernels (may be nil)
	}
	cases := []struct {
		name string
		// setup may attach occupancy before the memo pass.
		setup func(w *world)
		// perturb mutates overrides / resource set / occupancy for step 2,
		// returning the step-2 resource set and the perturbed job (or
		// dag.NoJob when the perturbation is not job-shaped).
		perturb    func(w *world, ov map[dag.JobID]float64, rs []grid.Resource) ([]grid.Resource, dag.JobID)
		wantDelta  bool
		wantReason string
	}{
		{
			name: "finish-early",
			perturb: func(w *world, ov map[dag.JobID]float64, rs []grid.Resource) ([]grid.Resource, dag.JobID) {
				a := pickUnstarted(t, w.sc.Graph, w.s1, w.c1, w.c2)
				ov[a.Job] = 0.5
				return rs, a.Job
			},
			wantDelta: true,
		},
		{
			name: "finish-late",
			perturb: func(w *world, ov map[dag.JobID]float64, rs []grid.Resource) ([]grid.Resource, dag.JobID) {
				a := pickUnstarted(t, w.sc.Graph, w.s1, w.c1, w.c2)
				late := a.Finish + 0.49*(w.c2-a.Finish)
				ov[a.Job] = (late - a.Start) / (a.Finish - a.Start)
				return rs, a.Job
			},
			wantDelta: true,
		},
		{
			name: "resource-join",
			perturb: func(w *world, ov map[dag.JobID]float64, rs []grid.Resource) ([]grid.Resource, dag.JobID) {
				full := w.sc.Pool.Initial()
				return full, dag.NoJob // memo pass ran on full[:len-1]
			},
			wantDelta:  false,
			wantReason: "resource-set-changed",
		},
		{
			name: "resource-leave",
			perturb: func(w *world, ov map[dag.JobID]float64, rs []grid.Resource) ([]grid.Resource, dag.JobID) {
				return rs[:len(rs)-1], dag.NoJob
			},
			wantDelta:  false,
			wantReason: "resource-set-changed",
		},
		{
			name: "foreign-reservation-release",
			setup: func(w *world) {
				rs := w.sc.Pool.Initial()
				w.occ = fixedOccupancy{rs[0].ID: {{Start: 0, Finish: 1e9}}}
				w.ki.SetOccupancy(w.occ)
				w.kr.SetOccupancy(w.occ)
			},
			perturb: func(w *world, ov map[dag.JobID]float64, rs []grid.Resource) ([]grid.Resource, dag.JobID) {
				// The other workflow releases its claim: the resource opens
				// up from c2 onward and the cone should flow onto it.
				w.occ[rs[0].ID] = []kernel.Busy{{Start: 0, Finish: w.c2}}
				return rs, dag.NoJob
			},
			wantDelta: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := taxonomyScenario(t)
			w := &world{sc: sc}
			w.ki = kernel.New(sc.Graph, sc.Estimator())
			w.kr = kernel.New(sc.Graph, sc.Estimator())
			if tc.setup != nil {
				tc.setup(w)
			}
			rs := sc.Pool.Initial()
			if tc.name == "resource-join" {
				rs = rs[:len(rs)-1]
			}
			opts := kernel.Options{Incremental: true, MaxConeFrac: 1}
			s0, err := w.ki.Static(rs, kernel.Options{})
			if err != nil {
				t.Fatal(err)
			}
			w.sti = w.ki.NewState(sc.Pool.Size())
			w.str = w.kr.NewState(sc.Pool.Size())
			w.c1, w.c2 = 0.3*s0.Makespan(), 0.55*s0.Makespan()
			advance(sc, w.sti, s0, w.c1, nil)
			advance(sc, w.str, s0, w.c1, nil)
			w.s1, err = w.ki.Reschedule(rs, w.sti, opts)
			if err != nil {
				t.Fatal(err)
			}
			if ds := w.ki.DeltaStats(); !ds.Attempted || ds.Delta || ds.Reason != "no-memo" {
				t.Fatalf("memo pass stats: %+v", ds)
			}

			ov := map[dag.JobID]float64{}
			rs2, job := tc.perturb(w, ov, rs)
			advance(sc, w.sti, w.s1, w.c2, ov)
			advance(sc, w.str, w.s1, w.c2, ov)
			s2, err := w.ki.Reschedule(rs2, w.sti, opts)
			if err != nil {
				t.Fatal(err)
			}
			ds := w.ki.DeltaStats()
			if ds.Delta != tc.wantDelta {
				t.Fatalf("delta taken = %v, want %v (stats %+v)", ds.Delta, tc.wantDelta, ds)
			}
			if tc.wantReason != "" && ds.Reason != tc.wantReason {
				t.Fatalf("fallback reason %q, want %q", ds.Reason, tc.wantReason)
			}
			if ds.Delta {
				if ds.Cone < 1 || ds.Cone > ds.Base {
					t.Fatalf("implausible cone: %+v", ds)
				}
				if job != dag.NoJob {
					// Cone membership: every direct successor of the
					// perturbed job that is still pending re-probes.
					pending := 0
					for _, e := range sc.Graph.Succs(job) {
						if !w.sti.Finished(e.To) && !w.sti.Pinned(e.To) {
							pending++
						}
					}
					if ds.Cone < pending {
						t.Fatalf("cone %d misses direct successors (%d pending): %+v", ds.Cone, pending, ds)
					}
				}
			}
			s2ref, err := w.kr.Reschedule(rs2, w.str, kernel.Options{})
			if err != nil {
				t.Fatal(err)
			}
			requireSameSchedule(t, sc.Graph, s2, s2ref, tc.name)
		})
	}
}

// TestKernelDeltaParityChain chains several perturbation rounds per random
// scenario through one memoised kernel — delta feeding the next delta —
// and holds every round bit-identical to an independent full replan. With
// the cone cap lifted and a stable resource set, every round after the
// memo-recording first one must actually take the delta path.
func TestKernelDeltaParityChain(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		sc := quickScenario(t, seed)
		r := rng.New(seed ^ 0xDE17A)
		est := sc.Estimator()
		ki := kernel.New(sc.Graph, est)
		kr := kernel.New(sc.Graph, est)
		rs := sc.Pool.Initial()
		s0, err := ki.Static(rs, kernel.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sti := ki.NewState(sc.Pool.Size())
		str := kr.NewState(sc.Pool.Size())
		opts := kernel.Options{Incremental: true, MaxConeFrac: 1}
		ov := map[dag.JobID]float64{}
		s := s0
		deltas := 0
		for step, frac := range []float64{0.15, 0.3, 0.45, 0.6, 0.8} {
			clock := frac * s0.Makespan()
			if step > 0 {
				// Perturb a not-yet-started job's runtime by ±50%.
				for _, j := range sc.Graph.Jobs() {
					a, ok := s.Get(j.ID)
					if !ok || a.Start <= clock || sti.Finished(j.ID) {
						continue
					}
					if _, seen := ov[j.ID]; seen {
						continue
					}
					ov[j.ID] = 0.5 + r.Float64()
					break
				}
			}
			advance(sc, sti, s, clock, ov)
			advance(sc, str, s, clock, ov)
			si, err := ki.Reschedule(rs, sti, opts)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			sref, err := kr.Reschedule(rs, str, kernel.Options{})
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			requireSameSchedule(t, sc.Graph, si, sref,
				fmt.Sprintf("seed %d step %d (stats %+v)", seed, step, ki.DeltaStats()))
			ds := ki.DeltaStats()
			if step == 0 && (ds.Delta || ds.Reason != "no-memo") {
				t.Fatalf("seed %d: first pass should record, got %+v", seed, ds)
			}
			if step > 0 {
				if !ds.Delta {
					t.Fatalf("seed %d step %d: expected delta path, got %+v", seed, step, ds)
				}
				deltas++
			}
			s = si
		}
		if deltas == 0 {
			t.Fatalf("seed %d: no delta rounds exercised", seed)
		}
	}
}

// TestKernelDeltaConeOverflowFallsBack pins the configurable threshold: a
// cone cap small enough to be exceeded must abort to a full replan with
// reason "cone-overflow" — and still produce the identical schedule.
func TestKernelDeltaConeOverflowFallsBack(t *testing.T) {
	sc := taxonomyScenario(t)
	ki := kernel.New(sc.Graph, sc.Estimator())
	kr := kernel.New(sc.Graph, sc.Estimator())
	rs := sc.Pool.Initial()
	s0, err := ki.Static(rs, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sti, str := ki.NewState(sc.Pool.Size()), kr.NewState(sc.Pool.Size())
	c1, c2 := 0.3*s0.Makespan(), 0.55*s0.Makespan()
	// A cone cap this small cannot absorb a job that overruns into most of
	// its layer's successors.
	opts := kernel.Options{Incremental: true, MaxConeFrac: 1e-9}
	advance(sc, sti, s0, c1, nil)
	advance(sc, str, s0, c1, nil)
	s1, err := ki.Reschedule(rs, sti, opts)
	if err != nil {
		t.Fatal(err)
	}
	a := pickUnstarted(t, sc.Graph, s1, c1, c2)
	late := a.Finish + 0.49*(c2-a.Finish)
	ov := map[dag.JobID]float64{a.Job: (late - a.Start) / (a.Finish - a.Start)}
	advance(sc, sti, s1, c2, ov)
	advance(sc, str, s1, c2, ov)
	s2, err := ki.Reschedule(rs, sti, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ds := ki.DeltaStats(); ds.Delta || ds.Reason != "cone-overflow" {
		t.Fatalf("want cone-overflow fallback, got %+v", ds)
	}
	s2ref, err := kr.Reschedule(rs, str, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameSchedule(t, sc.Graph, s2, s2ref, "cone-overflow")
}

// TestKernelDeltaZeroSteadyStateAllocations is the delta half of the
// kernel's allocation contract: a steady-state delta reschedule allocates
// no more than the full pass — i.e. only the returned schedule.
func TestKernelDeltaZeroSteadyStateAllocations(t *testing.T) {
	sc, err := workload.LayeredScenario(workload.LayeredParams{
		Jobs: 1000, Width: 20, FanIn: 3, CCR: 1, Beta: 0.5,
	}, workload.GridParams{
		InitialResources: 8, ChangeInterval: 1e9, ChangePct: 0.25, MaxEvents: 1,
	}, rng.New(0xA110C))
	if err != nil {
		t.Fatal(err)
	}
	est := sc.Estimator()
	rs := sc.Pool.Initial()

	prep := func(opts kernel.Options) (*kernel.Kernel, *kernel.State) {
		k := kernel.New(sc.Graph, est)
		s0, err := k.Static(rs, kernel.Options{})
		if err != nil {
			t.Fatal(err)
		}
		st := k.NewState(sc.Pool.Size())
		advance(sc, st, s0, 0.4*s0.Makespan(), nil)
		// Warm up: first pass records the memo (and grows all scratch),
		// second settles the delta path's buffers.
		for i := 0; i < 2; i++ {
			if _, err := k.Reschedule(rs, st, opts); err != nil {
				t.Fatal(err)
			}
		}
		return k, st
	}

	optsDelta := kernel.Options{Incremental: true, MaxConeFrac: 1}
	kd, std := prep(optsDelta)
	kf, stf := prep(kernel.Options{})

	deltaTaken := true
	deltaAllocs := testing.AllocsPerRun(50, func() {
		if _, err := kd.Reschedule(rs, std, optsDelta); err != nil {
			t.Fatal(err)
		}
		deltaTaken = deltaTaken && kd.DeltaStats().Delta
	})
	if !deltaTaken {
		t.Fatalf("delta path not taken in steady state: %+v", kd.DeltaStats())
	}
	fullAllocs := testing.AllocsPerRun(50, func() {
		if _, err := kf.Reschedule(rs, stf, kernel.Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if deltaAllocs > fullAllocs {
		t.Fatalf("delta path added steady-state allocations: %g allocs/op vs %g full", deltaAllocs, fullAllocs)
	}
}
