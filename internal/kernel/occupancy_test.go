package kernel_test

import (
	"testing"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/kernel"
	"aheft/internal/schedule"
	"aheft/internal/workload"
)

// fixedOccupancy serves a static foreign-reservation map.
type fixedOccupancy map[grid.ID][]kernel.Busy

func (o fixedOccupancy) AppendBusy(r grid.ID, buf []kernel.Busy) []kernel.Busy {
	return append(buf, o[r]...)
}

// singleJobKernel builds a one-job workflow costing dur on either of two
// resources, so placement is decided purely by the timelines.
func singleJobKernel(t *testing.T, dur float64) *kernel.Kernel {
	t.Helper()
	g := dag.New("one")
	g.AddJob("j", "op")
	return kernel.New(g.MustValidate(), cost.MustTable([][]float64{{dur, dur}}))
}

func twoResources() []grid.Resource {
	return []grid.Resource{{ID: 0, Name: "r1"}, {ID: 1, Name: "r2"}}
}

// TestForeignReservationDisplacesPlacement: a foreign claim on the
// otherwise-chosen resource pushes the job onto the free one.
func TestForeignReservationDisplacesPlacement(t *testing.T) {
	k := singleJobKernel(t, 10)
	s, err := k.Static(twoResources(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a := s.MustGet(0); a.Resource != 0 || a.Start != 0 {
		t.Fatalf("unconstrained placement: %+v", a)
	}
	// Resource 0 is claimed by another workflow over [0, 50): the job must
	// move to resource 1 and still start at 0.
	k.SetOccupancy(fixedOccupancy{0: {{Start: 0, Finish: 50}}})
	s, err = k.Static(twoResources(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a := s.MustGet(0); a.Resource != 1 || a.Start != 0 {
		t.Fatalf("contended placement: %+v", a)
	}
	// Both resources claimed over [0, 30): the job starts in the first
	// gap, and the foreign claims never appear in the returned schedule.
	k.SetOccupancy(fixedOccupancy{
		0: {{Start: 0, Finish: 30}},
		1: {{Start: 0, Finish: 30}},
	})
	s, err = k.Static(twoResources(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a := s.MustGet(0); a.Start != 30 || a.Finish != 40 {
		t.Fatalf("queued placement: %+v", a)
	}
	if s.Len() != 1 {
		t.Fatalf("foreign claims leaked into the schedule: %d entries", s.Len())
	}
	// Detaching restores the unconstrained plan.
	k.SetOccupancy(nil)
	s, err = k.Static(twoResources(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a := s.MustGet(0); a.Resource != 0 || a.Start != 0 {
		t.Fatalf("detached placement: %+v", a)
	}
}

// TestForeignGapInsertion: the insertion policy places a job into a gap
// between foreign claims when it fits, after the claims are coalesced.
func TestForeignGapInsertion(t *testing.T) {
	k := singleJobKernel(t, 10)
	rs := []grid.Resource{{ID: 0, Name: "r1"}}
	// Overlapping claims [0,8)+[5,12) coalesce to [0,12); gap [12,25) fits.
	k.SetOccupancy(fixedOccupancy{0: {
		{Start: 0, Finish: 8},
		{Start: 5, Finish: 12},
		{Start: 25, Finish: 40},
	}})
	s, err := k.Static(rs, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a := s.MustGet(0); a.Start != 12 || a.Finish != 22 {
		t.Fatalf("gap placement: %+v", a)
	}
	// Without insertion the job queues behind the last claim.
	s, err = k.Static(rs, kernel.Options{NoInsertion: true})
	if err != nil {
		t.Fatal(err)
	}
	if a := s.MustGet(0); a.Start != 40 {
		t.Fatalf("no-insertion placement: %+v", a)
	}
}

// TestForeignClaimsDoNotRaiseMakespan: a foreign reservation far in the
// future is not this workflow's work and must not count toward its
// makespan.
func TestForeignClaimsDoNotRaiseMakespan(t *testing.T) {
	k := singleJobKernel(t, 10)
	k.SetOccupancy(fixedOccupancy{1: {{Start: 0, Finish: 1e6}}})
	s, err := k.Static(twoResources(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 10 {
		t.Fatalf("makespan %g includes a foreign claim", s.Makespan())
	}
}

// TestRescheduleAroundForeignWithHistory: mid-run reschedule composes own
// execution history with foreign claims.
func TestRescheduleAroundForeignWithHistory(t *testing.T) {
	sc := workload.SampleScenario()
	k := kernel.New(sc.Graph, sc.Estimator())
	rs := sc.Pool.Initial()
	s0, err := k.Static(rs, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := k.NewState(sc.Pool.Size())
	st.Snapshot(s0, s0.Makespan()/3, kernel.SnapshotOptions{})
	k.SetOccupancy(fixedOccupancy{
		0: {{Start: 0, Finish: s0.Makespan()}},
	})
	s1, err := k.Reschedule(rs, st, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	est := sc.Estimator()
	if err := s1.Validate(sc.Graph, schedule.ValidateOptions{Comp: est, Pool: sc.Pool}); err != nil {
		t.Fatalf("contended reschedule invalid: %v", err)
	}
	// Every remaining (not finished, not pinned) job must avoid the fully
	// claimed resource 0.
	for _, j := range sc.Graph.Jobs() {
		if st.Finished(j.ID) || st.Pinned(j.ID) {
			continue
		}
		if a := s1.MustGet(j.ID); a.Resource == 0 {
			t.Fatalf("job %s placed on the fully claimed resource: %+v", j.Name, a)
		}
	}
}

// TestOccupancyAddsNoSteadyStateAllocations is the shared-grid half of
// the kernel's zero-allocation contract: with a foreign ledger attached,
// the steady-state reschedule loop allocates exactly as much as the
// unconstrained loop (only the returned schedule).
func TestOccupancyAddsNoSteadyStateAllocations(t *testing.T) {
	sc := quickScenario(t, 6)
	rs := sc.Pool.Initial()
	run := func(k *kernel.Kernel, st *kernel.State, s0 *schedule.Schedule) float64 {
		return testing.AllocsPerRun(50, func() {
			st.Snapshot(s0, s0.Makespan()/2, kernel.SnapshotOptions{})
			if _, err := k.Reschedule(rs, st, kernel.Options{}); err != nil {
				t.Fatal(err)
			}
		})
	}
	prep := func(occ kernel.Occupancy) (*kernel.Kernel, *kernel.State, *schedule.Schedule) {
		k := kernel.New(sc.Graph, sc.Estimator())
		k.SetOccupancy(occ)
		s0, err := k.Static(rs, kernel.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return k, k.NewState(sc.Pool.Size()), s0
	}
	occ := fixedOccupancy{}
	for _, r := range rs {
		occ[r.ID] = []kernel.Busy{
			{Start: 3, Finish: 9}, {Start: 7, Finish: 20}, {Start: 40, Finish: 55},
		}
	}
	base := run(prep(nil))
	shared := run(prep(occ))
	if shared > base {
		t.Fatalf("occupancy added steady-state allocations: %g allocs/op vs %g without", shared, base)
	}
}
