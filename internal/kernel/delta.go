package kernel

// Incremental (delta) rescheduling: react to a small perturbation without
// re-placing the whole remaining DAG.
//
// A full Incremental pass records a memo: the adopted placement of every
// base job, each job's per-resource probe outcome (the end of the slot the
// EFT search would claim on that resource), the ready-time floor and
// whether any Eq. 1 Case-2 (clock-relative transfer) fed it, dense
// snapshots of the execution state it was computed against, and copies of
// the placed-span rows and base timelines.
//
// The next Incremental pass diffs the current state against the memo and
// re-runs the EFT probe only for jobs in the dirty cone:
//
//   - input-dirty: a predecessor's finish/pin status changed, its pinned
//     interval drifted, or a ledger write landed on an incoming edge
//     (State.inputGen) — Eq. 1 answers may differ;
//   - clock-dirty: the clock advanced and the job's recorded ready floor
//     was below the new clock, or one of its FEA probes was clock-relative
//     (Case 2);
//   - slot-dirty: a resource's base timeline diverged (finished intervals,
//     pin drift, foreign reservations) or an earlier swept job moved, at a
//     time the job's recorded probe on that resource reaches past.
//
// Divergence is tracked per resource as a horizon div[r]: the earliest
// start time at which the memo's view of r and the current view differ.
// Both views keep rows sorted by (start, job), so the first positional
// mismatch between the remembered and the fresh base timeline yields the
// exact horizon, and a probe that ended at or before the horizon saw — and
// would see — identical spans (a slot decision can only flip if a span at
// or before the probe's claimed end changed). Clean jobs reuse the memoed
// assignment verbatim; dirty jobs re-probe against a 3-way merged view of
// the fresh base timeline, the memo's unmoved placed spans (filtered to
// earlier-rank, still-unfinished, still-unpinned owners), and an overlay
// of spans moved during this sweep. A job that moves lowers div on both
// its old and new resource, so later clean candidates that could be
// affected become suspects — the cascade is exact, never heuristic.
//
// The sweep aborts to a full replan (which re-records the memo) whenever
// it cannot prove the remainder unchanged: no or stale memo, estimator
// version drift, state reset or clock rewind, a changed resource set, a
// job re-entering the base set, or the cone exceeding MaxConeFrac of the
// base. The delta result is bit-identical to the full pass on the same
// snapshot — parity is enforced by property and fuzz tests.

import (
	"math"
	"slices"
	"sort"

	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/schedule"
)

// DeltaStats reports what the last Reschedule's incremental path did.
type DeltaStats struct {
	// Attempted is true when the pass ran with Options.Incremental.
	Attempted bool
	// Delta is true when the delta path produced the schedule; false means
	// a full replan ran (Reason says why).
	Delta bool
	// Reason is the fallback cause when Delta is false: "no-memo",
	// "tie-window", "no-insertion", "state-reset", "clock-rewind",
	// "estimates-drifted", "resource-set-changed", "base-grew" or
	// "cone-overflow".
	Reason string
	// Cone is the number of jobs re-probed; Moved how many changed
	// assignment; Base the number of jobs that were up for placement.
	Cone  int
	Moved int
	Base  int
}

// DeltaStats returns the incremental-path report of the last Reschedule.
func (k *Kernel) DeltaStats() DeltaStats { return k.delta }

// deltaMemo is the record of the last full Incremental pass. All
// job-indexed slices are k.n long; probeEnd is n × len(rs); rows and
// baseRows are grid-ID-indexed like the kernel timelines.
type deltaMemo struct {
	valid  bool
	estVer uint64
	clock  float64
	epoch  uint32
	rs     []grid.ID

	inBase  []bool
	rankPos []int32 // position in k.order (total rank order)
	placed  []schedule.Assignment

	probeStart []float64 // [job*len(rs)+ri]: start of the probed slot
	probeEnd   []float64 // [job*len(rs)+ri]: end of the probed slot
	readyMin   []float64 // min over resources of the probe's ready time
	case2      []bool    // any probe hit Eq. 1 Case 2 (clock-relative)

	// Execution-state snapshot the memo was computed against.
	finRes   []grid.ID
	finAST   []float64
	finAFT   []float64
	isPin    []bool
	pin      []schedule.Assignment
	inputGen []uint32

	rows     [][]span // per resource: placed spans of base jobs, (start, job)-sorted
	baseRows [][]span // per resource: copy of the base timeline at memo time

	// sched is a kernel-private copy of the last returned schedule. The
	// delta path patches the few changed entries in place and hands the
	// caller a Clone — straight memmoves — instead of re-materialising all
	// n assignments through FromAssignments.
	sched *schedule.Schedule
}

// deltaScratch is the per-pass working state of the delta sweep.
type deltaScratch struct {
	dirtyIn  []bool      // job: Eq. 1 inputs may have changed
	moved    []bool      // job: re-placed differently during this sweep
	div      []float64   // resource: divergence horizon (+Inf = identical)
	posOf    []int32     // resource ID → index in rs
	overlay  [][]span    // per resource: spans moved during this sweep
	dirtyRes []resMark   // resources with a finite horizon
	changed  []dag.JobID // jobs whose finished/pinned record changed
	rowTouch []bool      // resource: memo placed-row needs compaction
}

type resMark struct {
	ri int32
	id grid.ID
}

func (ds *deltaScratch) ensure(n, nRows int) {
	if len(ds.dirtyIn) < n {
		ds.dirtyIn = make([]bool, n)
		ds.moved = make([]bool, n)
	}
	for len(ds.div) < nRows {
		ds.div = append(ds.div, 0)
		ds.posOf = append(ds.posOf, 0)
		ds.overlay = append(ds.overlay, nil)
		ds.rowTouch = append(ds.rowTouch, false)
	}
}

// touchDiv lowers the divergence horizon of a resource to t, registering
// the resource as dirty on the first touch.
func (ds *deltaScratch) touchDiv(id grid.ID, t float64) {
	if t < ds.div[id] {
		if math.IsInf(ds.div[id], 1) {
			ds.dirtyRes = append(ds.dirtyRes, resMark{ri: ds.posOf[id], id: id})
		}
		ds.div[id] = t
	}
}

// rowDiv returns the divergence horizon between two (start, job)-sorted
// span rows: the start of the first positional mismatch (the earlier of
// the two starts), or +Inf when the rows are identical. Because both rows
// are sorted by the same total order, the first positional difference is
// the minimum start over their symmetric difference, so every span
// starting strictly before the returned horizon is present in both rows.
func rowDiv(old, cur []span) float64 {
	n := len(old)
	if len(cur) < n {
		n = len(cur)
	}
	for i := 0; i < n; i++ {
		if old[i] != cur[i] {
			if old[i].start < cur[i].start {
				return old[i].start
			}
			return cur[i].start
		}
	}
	switch {
	case len(old) > n:
		return old[n].start
	case len(cur) > n:
		return cur[n].start
	}
	return math.Inf(1)
}

// memoRecordable reports whether a full pass under opts can record a memo
// the delta path could replay: greedy order (tie-window exploration places
// under permuted orders the memo cannot reuse), insertion mode (the
// no-insertion append rule depends on the global timeline tail, which
// breaks horizon locality), and a versioned estimator (otherwise estimate
// drift is undetectable).
func (k *Kernel) memoRecordable(opts Options) bool {
	if opts.TieWindow != 0 || opts.NoInsertion {
		return false
	}
	if k.dataM != nil {
		// The memo's probe bounds don't model channel timelines or staged
		// files; data-aware passes always replan in full.
		return false
	}
	_, ok := k.est.(VersionedEstimator)
	return ok
}

// ensureMemo returns the kernel's memo, allocating or growing its buffers
// for the current graph and resource set.
func (k *Kernel) ensureMemo(rs []grid.Resource) *deltaMemo {
	mm := k.memo
	if mm == nil {
		mm = &deltaMemo{}
		k.memo = mm
	}
	n := k.n
	if mm.inBase == nil {
		mm.inBase = make([]bool, n)
		mm.rankPos = make([]int32, n)
		mm.placed = make([]schedule.Assignment, n)
		mm.readyMin = make([]float64, n)
		mm.case2 = make([]bool, n)
		mm.finRes = make([]grid.ID, n)
		mm.finAST = make([]float64, n)
		mm.finAFT = make([]float64, n)
		mm.isPin = make([]bool, n)
		mm.pin = make([]schedule.Assignment, n)
		mm.inputGen = make([]uint32, n)
	}
	if need := n * len(rs); cap(mm.probeEnd) < need {
		mm.probeStart = make([]float64, need)
		mm.probeEnd = make([]float64, need)
	} else {
		mm.probeStart = mm.probeStart[:need]
		mm.probeEnd = mm.probeEnd[:need]
	}
	maxID := grid.ID(-1)
	for _, r := range rs {
		if r.ID > maxID {
			maxID = r.ID
		}
	}
	for len(mm.rows) <= int(maxID) {
		mm.rows = append(mm.rows, nil)
		mm.baseRows = append(mm.baseRows, nil)
	}
	return mm
}

// finishMemo records the just-adopted full pass (k.bestPlaced over base)
// into the memo. Only called when memoRecordable held, i.e. the single
// greedy candidate is the adopted schedule.
func (k *Kernel) finishMemo(mm *deltaMemo, rs []grid.Resource, st *State, base []dag.JobID, _ Options) {
	mm.estVer = k.est.(VersionedEstimator).EstimateVersion()
	mm.clock = st.Clock
	mm.epoch = st.epoch
	mm.rs = mm.rs[:0]
	for _, r := range rs {
		mm.rs = append(mm.rs, r.ID)
	}
	for j := range mm.inBase {
		mm.inBase[j] = false
	}
	for _, job := range base {
		mm.inBase[job] = true
	}
	for i, job := range k.order {
		mm.rankPos[job] = int32(i)
	}
	copy(mm.placed, k.bestPlaced)
	copy(mm.finRes, st.finRes)
	copy(mm.finAST, st.finAST)
	copy(mm.finAFT, st.finAFT)
	copy(mm.isPin, st.isPin)
	copy(mm.pin, st.pin)
	copy(mm.inputGen, st.inputGen)
	for _, r := range rs {
		mm.rows[r.ID] = mm.rows[r.ID][:0]
		mm.baseRows[r.ID] = append(mm.baseRows[r.ID][:0], k.baseTL[r.ID]...)
	}
	for _, job := range base {
		a := k.bestPlaced[job]
		mm.rows[a.Resource] = append(mm.rows[a.Resource], span{start: a.Start, finish: a.Finish, job: job})
	}
	for _, r := range rs {
		sortSpans(mm.rows[r.ID])
	}
	mm.valid = true
}

// rescheduleDelta attempts the incremental pass. It returns the finished
// schedule on success; on any fallback it records the reason in k.delta,
// invalidates the memo (the full replan that follows re-records it) and
// returns nil.
func (k *Kernel) rescheduleDelta(rs []grid.Resource, st *State, base []dag.JobID, opts Options) *schedule.Schedule {
	mm := k.memo
	fail := func(reason string) *schedule.Schedule {
		k.delta.Reason = reason
		if mm != nil {
			mm.valid = false
		}
		return nil
	}
	switch {
	case k.dataM != nil:
		return fail("data-aware")
	case mm == nil || !mm.valid || mm.sched == nil:
		return fail("no-memo")
	case opts.TieWindow != 0:
		return fail("tie-window")
	case opts.NoInsertion:
		return fail("no-insertion")
	case st.epoch != mm.epoch:
		return fail("state-reset")
	case st.Clock < mm.clock:
		return fail("clock-rewind")
	}
	if v, ok := k.est.(VersionedEstimator); !ok || v.EstimateVersion() != mm.estVer {
		return fail("estimates-drifted")
	}
	if len(rs) != len(mm.rs) {
		return fail("resource-set-changed")
	}
	for i, r := range rs {
		if r.ID != mm.rs[i] {
			return fail("resource-set-changed")
		}
	}

	// Same estimator version and resource set means the cached rank order
	// (already refreshed by Reschedule) is identical to the memo's, so
	// mm.rankPos and the relative order of base are unchanged.

	k.prepHistory(rs, st)
	ds := &k.dsc
	ds.ensure(k.n, len(k.baseTL))

	// Divergence horizons: diff each base-timeline row against the memo's
	// copy. Finished intervals, pin drift and foreign-reservation changes
	// all materialise here — no semantic diffing needed.
	ds.dirtyRes = ds.dirtyRes[:0]
	for ri, r := range rs {
		ds.posOf[r.ID] = int32(ri)
		ds.overlay[r.ID] = ds.overlay[r.ID][:0]
		d := rowDiv(mm.baseRows[r.ID], k.baseTL[r.ID])
		ds.div[r.ID] = d
		if !math.IsInf(d, 1) {
			ds.dirtyRes = append(ds.dirtyRes, resMark{ri: int32(ri), id: r.ID})
		}
	}
	// Entries past nDiv are added by touchDiv for moved jobs; only the
	// first nDiv rows have a changed base timeline behind them.
	nDiv := len(ds.dirtyRes)

	// Input dirtiness: diff the execution-state snapshot, marking the
	// successors of every changed job (their Eq. 1 answers may differ) and
	// every job with new ledger writes on its incoming edges. The same
	// pass re-syncs the memo snapshot in place, writing only what changed.
	for j := range ds.dirtyIn {
		ds.dirtyIn[j] = false
	}
	for j := range ds.moved {
		ds.moved[j] = false
	}
	ds.changed = ds.changed[:0]
	for j := 0; j < k.n; j++ {
		changed := false
		if st.finRes[j] != mm.finRes[j] ||
			(st.finRes[j] != grid.NoResource && (st.finAST[j] != mm.finAST[j] || st.finAFT[j] != mm.finAFT[j])) {
			changed = true
			mm.finRes[j], mm.finAST[j], mm.finAFT[j] = st.finRes[j], st.finAST[j], st.finAFT[j]
		}
		if st.isPin[j] != mm.isPin[j] || (st.isPin[j] && st.pin[j] != mm.pin[j]) {
			changed = true
			mm.isPin[j], mm.pin[j] = st.isPin[j], st.pin[j]
		}
		if changed {
			ds.changed = append(ds.changed, dag.JobID(j))
			if mm.inBase[j] {
				// The job's memoized span may have to leave mm.rows.
				ds.rowTouch[mm.placed[j].Resource] = true
			}
			for _, e := range k.g.Succs(dag.JobID(j)) {
				ds.dirtyIn[e.To] = true
			}
		}
		if st.inputGen[j] != mm.inputGen[j] {
			mm.inputGen[j] = st.inputGen[j]
			ds.dirtyIn[j] = true
		}
	}

	// The sweep: walk the base jobs in rank order, reusing the memoed
	// assignment where the memo proves the full pass would reproduce it
	// and re-probing the rest.
	copy(k.placed, k.basePlaced)
	clockAdv := st.Clock > mm.clock
	frac := opts.MaxConeFrac
	if frac <= 0 {
		frac = DefaultMaxConeFrac
	}
	maxCone := int(frac * float64(len(base)))
	if maxCone < 1 {
		maxCone = 1
	}
	cone, nMoved := 0, 0
	nRS := len(rs)
	for _, job := range base {
		if !mm.inBase[job] {
			// A finished or pinned job re-entered the base set (restart
			// ablations, raw kernel use); the memo has no probe for it.
			return fail("base-grew")
		}
		inputsClean := !ds.dirtyIn[job] && !(clockAdv && (mm.case2[job] || mm.readyMin[job] < st.Clock))
		if inputsClean {
			clean := true
			for _, dr := range ds.dirtyRes {
				if mm.probeEnd[int(job)*nRS+int(dr.ri)] > ds.div[dr.id] {
					clean = false
					break
				}
			}
			if clean {
				k.placed[job] = mm.placed[job]
				continue
			}
		}
		cone++
		if cone > maxCone {
			return fail("cone-overflow")
		}
		a := k.deltaProbe(rs, st, job, mm, inputsClean)
		if a != mm.placed[job] {
			old := mm.placed[job]
			ds.moved[job] = true
			nMoved++
			ds.touchDiv(old.Resource, old.Start)
			ds.touchDiv(a.Resource, a.Start)
			ds.rowTouch[old.Resource] = true
			ds.rowTouch[a.Resource] = true
			insertSpan(&ds.overlay[a.Resource], span{start: a.Start, finish: a.Finish, job: job})
			for _, e := range k.g.Succs(job) {
				ds.dirtyIn[e.To] = true
			}
			mm.placed[job] = a
		}
		k.placed[job] = a
	}

	// Success: bring the memo forward so the next trigger deltas again.
	// Drop spans whose owner left the base set or moved, then insert the
	// moved jobs' new spans. Only rows flagged during the scan and sweep
	// can have lost a span — a newly finished/pinned owner shows up in
	// ds.changed, a re-placed one in ds.moved, and both flag their rows.
	for _, r := range rs {
		if !ds.rowTouch[r.ID] {
			continue
		}
		ds.rowTouch[r.ID] = false
		row := mm.rows[r.ID]
		w := 0
		for _, s := range row {
			o := s.job
			if ds.moved[o] || st.finRes[o] != grid.NoResource || st.isPin[o] {
				continue
			}
			row[w] = s
			w++
		}
		mm.rows[r.ID] = row[:w]
	}
	if nMoved > 0 {
		for _, job := range base {
			if ds.moved[job] {
				a := mm.placed[job]
				insertSpan(&mm.rows[a.Resource], span{start: a.Start, finish: a.Finish, job: job})
			}
		}
	}
	// Base membership only shrinks on this path (growth was rejected
	// above), and the only jobs that can leave are those whose
	// finished/pinned record changed.
	for _, j := range ds.changed {
		if st.finRes[j] != grid.NoResource || st.isPin[j] {
			mm.inBase[j] = false
		}
	}
	for _, dr := range ds.dirtyRes[:nDiv] {
		mm.baseRows[dr.id] = append(mm.baseRows[dr.id][:0], k.baseTL[dr.id]...)
	}
	mm.clock = st.Clock

	k.delta.Delta = true
	k.delta.Cone = cone
	k.delta.Moved = nMoved
	copy(k.bestPlaced, k.placed)

	// Patch the memoized schedule — history entries whose record changed,
	// then jobs the sweep re-placed — and return a clone. Every untouched
	// entry provably equals what the full pass would produce, so the patch
	// stays bit-identical while costing O(cone) updates plus one memcpy
	// instead of an O(n) rebuild. (A job that lost both its finished and
	// pinned record re-enters base and was rejected as base-grew above.)
	for _, j := range ds.changed {
		switch {
		case st.finRes[j] != grid.NoResource:
			mm.sched.Assign(schedule.Assignment{Job: j, Resource: st.finRes[j], Start: st.finAST[j], Finish: st.finAFT[j]})
		case st.isPin[j]:
			mm.sched.Assign(st.pin[j])
		}
	}
	if nMoved > 0 {
		for _, job := range base {
			if ds.moved[job] {
				mm.sched.Assign(mm.placed[job])
			}
		}
	}
	return mm.sched.Clone()
}

// deltaProbe re-runs the full pass's per-job EFT probe for one dirty job,
// reading slots from the merged timeline view instead of workTL, and
// refreshes the job's memo entries as it goes.
//
// When inputsClean holds — the job is dirty only because some resource's
// timeline changed, not through its Eq. 1 inputs or the clock — every
// per-resource ready time is unchanged from the memo, so on resources
// whose visible region is intact (probeEnd ≤ divergence horizon, the same
// criterion the clean check uses) the memoized probe is still exact and is
// replayed as (probeStart, probeEnd) without walking the timeline.
// Only the perturbed resources are re-walked, and readyMin/case2 stay
// valid as recorded.
func (k *Kernel) deltaProbe(rs []grid.Resource, st *State, job dag.JobID, mm *deltaMemo, inputsClean bool) schedule.Assignment {
	preds := k.g.Preds(job)
	eBase := k.predBase[job]
	curPos := mm.rankPos[job]
	ds := &k.dsc
	nRS := len(rs)
	bestRes := grid.NoResource
	bestStart, bestFinish := 0.0, 0.0
	readyMin := 0.0
	case2 := false
	for ri, r := range rs {
		if inputsClean && mm.probeEnd[int(job)*nRS+ri] <= ds.div[r.ID] {
			finish := mm.probeEnd[int(job)*nRS+ri]
			if bestRes == grid.NoResource || finish < bestFinish {
				bestRes, bestStart, bestFinish = r.ID, mm.probeStart[int(job)*nRS+ri], finish
			}
			continue
		}
		w := k.est.Comp(job, r.ID)
		ready := st.Clock
		for i := range preds {
			if fr := st.finRes[preds[i].From]; fr != grid.NoResource {
				if _, ok := st.transfer(eBase+i, r.ID); !ok {
					case2 = true
				}
			}
			if t := st.fea(preds[i], eBase+i, r.ID); t > ready {
				ready = t
			}
		}
		start := k.mergedEarliestStart(r.ID, curPos, ready, w, st, mm)
		finish := start + w
		mm.probeStart[int(job)*nRS+ri] = start
		mm.probeEnd[int(job)*nRS+ri] = finish
		if ri == 0 || ready < readyMin {
			readyMin = ready
		}
		if bestRes == grid.NoResource || finish < bestFinish {
			bestRes, bestStart, bestFinish = r.ID, start, finish
		}
	}
	if !inputsClean {
		mm.readyMin[job] = readyMin
		mm.case2[job] = case2
	}
	return schedule.Assignment{Job: job, Resource: bestRes, Start: bestStart, Finish: bestFinish}
}

// mergedEarliestStart is earliestStart (insertion mode) over the merged
// view of three (start, job)-sorted rows: the fresh base timeline, the
// memo's placed spans — filtered on the fly to owners that precede the
// probing job in rank order, have not moved this sweep, and are still
// unfinished and unpinned — and the overlay of spans moved this sweep.
// Visible spans are pairwise disjoint (they are slots of one consistent
// candidate schedule), so the walk's running `prev` finish mirrors the
// dense walk exactly; starting it from the per-source predecessors of the
// first span at or past ready+w is sound because the maximum of their
// finishes is the merged predecessor's finish.
func (k *Kernel) mergedEarliestStart(rid grid.ID, curPos int32, ready, w float64, st *State, mm *deltaMemo) float64 {
	ds := &k.dsc
	a := k.baseTL[rid]
	b := mm.rows[rid]
	c := ds.overlay[rid]
	visible := func(s span) bool {
		o := s.job
		return mm.rankPos[o] < curPos && !ds.moved[o] &&
			st.finRes[o] == grid.NoResource && !st.isPin[o]
	}
	lim := ready + w
	ia := sort.Search(len(a), func(i int) bool { return a[i].start >= lim })
	ib := sort.Search(len(b), func(i int) bool { return b[i].start >= lim })
	ic := sort.Search(len(c), func(i int) bool { return c[i].start >= lim })
	prev := math.Inf(-1)
	if ia > 0 {
		prev = a[ia-1].finish
	}
	if ic > 0 && c[ic-1].finish > prev {
		prev = c[ic-1].finish
	}
	for i := ib - 1; i >= 0; i-- {
		if visible(b[i]) {
			if b[i].finish > prev {
				prev = b[i].finish
			}
			break
		}
	}
	for {
		src := 0
		var nx span
		if ia < len(a) {
			src, nx = 1, a[ia]
		}
		if ib < len(b) && (src == 0 || spanLess(b[ib], nx)) {
			src, nx = 2, b[ib]
		}
		if ic < len(c) && (src == 0 || spanLess(c[ic], nx)) {
			src, nx = 3, c[ic]
		}
		if src == 0 {
			break
		}
		// Invisible memo spans are skipped lazily — only once they become
		// the merge minimum — so a probe never walks past its resolution
		// point; skipping leaves prev untouched, so the outcome matches the
		// eager filter exactly.
		if src == 2 && !visible(nx) {
			ib++
			continue
		}
		start := prev
		if ready > start {
			start = ready
		}
		if start+w <= nx.start {
			return start
		}
		if nx.finish > prev {
			prev = nx.finish
		}
		switch src {
		case 1:
			ia++
		case 2:
			ib++
		case 3:
			ic++
		}
	}
	start := prev
	if ready > start {
		start = ready
	}
	return start
}

func spanLess(a, b span) bool {
	if a.start != b.start {
		return a.start < b.start
	}
	return a.job < b.job
}

// sortSpans sorts a row by (start, job) — the timeline total order.
func sortSpans(row []span) {
	slices.SortFunc(row, func(a, b span) int {
		switch {
		case a.start != b.start:
			if a.start < b.start {
				return -1
			}
			return 1
		case a.job != b.job:
			if a.job < b.job {
				return -1
			}
			return 1
		default:
			return 0
		}
	})
}
