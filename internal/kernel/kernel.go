// Package kernel is the single shared scheduling kernel every strategy in
// this repository runs on. The paper's inner loop — upward ranks over the
// unfinished jobs, FEA/EST/EFT evaluation (Eqs. 1–3), EFT-minimising
// placement with insertion-based slot search — used to be implemented
// three separate times (static HEFT, the AHEFT rescheduler, and the
// just-in-time Min-Min family's completion evaluation). This package owns
// that machinery once:
//
//   - Upward ranks are computed per (graph, resource set) and cached: a
//     Kernel is bound to one graph and one estimator, and the rank vector
//     is invalidated only when the resource set changes (the pool grew) —
//     a new estimator means a new Kernel.
//   - FEA/EST/EFT run over dense, job-indexed state (State) instead of
//     per-call maps, and the timeline slot search finds insertion gaps by
//     binary search over start-sorted spans.
//   - All placement scratch (timelines, candidate assignments, rank and
//     order buffers) is owned by the Kernel and reused across calls, so
//     the steady-state inner loop of a reschedule performs zero heap
//     allocations; only the returned *schedule.Schedule is freshly built.
//
// Layering: model (dag/grid/cost/schedule) → kernel (this package) →
// policy (orderings over the kernel) → engine (planner) → facade (root).
// The kernel deliberately knows nothing about pools, events or policies;
// it answers "place these jobs over these resources given this execution
// state" and nothing else.
//
// A Kernel (and its States) is NOT safe for concurrent use: the engine
// creates one Kernel per workflow run. Policies stay stateless and
// shareable — they receive the run's Kernel as an argument.
package kernel

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/data"
	"aheft/internal/grid"
	"aheft/internal/schedule"
)

// Options configures a placement pass. It is the kernel-level subset of
// the policy options; internal/core aliases it so the v1 signatures stay
// intact.
type Options struct {
	// NoInsertion disables HEFT's insertion-based slot policy.
	NoInsertion bool
	// TieWindow, when positive, treats adjacent jobs in the rank list
	// whose upward ranks differ by less than TieWindow × (the larger of
	// the two) as order-ambiguous and additionally evaluates the schedule
	// with each such pair swapped, keeping the best result. With
	// TieWindow ≈ 0.05 this recovers the paper's Fig. 5(b) reschedule
	// (makespan 76), which pure greedy placement misses. Zero disables
	// exploration (paper-faithful Fig. 3 greedy).
	TieWindow float64
	// Incremental enables the delta-reschedule path: a full pass records a
	// placement memo, and the next pass re-ranks and re-places only the
	// dirty cone of the perturbation (see delta.go), falling back to a
	// full replan whenever the memo cannot prove the rest of the schedule
	// unchanged. The result is bit-identical to a full replan on the same
	// snapshot. Requires a VersionedEstimator, insertion mode and
	// TieWindow == 0 to take effect; otherwise every pass runs full.
	Incremental bool
	// MaxConeFrac caps the dirty cone at this fraction of the jobs being
	// placed before the delta path aborts to a full replan; 0 means
	// DefaultMaxConeFrac. Use 1 to never abort on cone size.
	MaxConeFrac float64
}

// DefaultMaxConeFrac is the delta path's fallback threshold: once more
// than this fraction of the remaining jobs needs re-placing, a full
// replan is cheaper than cascading through the memo.
const DefaultMaxConeFrac = 0.25

// VersionedEstimator is a cost estimator that can report whether its
// answers may have changed: two equal EstimateVersion reads bracket a
// window in which every Comp/Comm answer was stable. The kernel uses it
// to keep the rank cache honest under history-sharpened estimates and to
// gate the incremental reschedule memo.
type VersionedEstimator interface {
	cost.Estimator
	EstimateVersion() uint64
}

// span is one occupied interval of a resource timeline, mirroring
// schedule.Assignment but kept flat for the slot-search hot loop.
type span struct {
	start, finish float64
	job           dag.JobID
}

// Kernel binds one workflow graph to one cost estimator and owns every
// reusable buffer of the scheduling inner loop.
type Kernel struct {
	g   *dag.Graph
	est cost.Estimator
	n   int

	// Edge indexing: the incoming edges of all jobs flattened in job
	// order, so edge (m→j) — the i-th entry of g.Preds(j) — has the dense
	// index predBase[j]+i. The transfer ledger (State) is keyed by it.
	predBase    []int
	nEdges      int
	predsSorted bool // every Preds list sorted by From (Validate ran)

	// Rank cache: valid for the exact resource set rankRS at estimator
	// version rankVer (VersionedEstimator only; unversioned estimators
	// rely on explicit InvalidateRanks).
	ranks   []float64
	order   []dag.JobID
	rankRS  []grid.ID
	rankOK  bool
	rankVer uint64
	topo    []dag.JobID

	// Placement scratch, reused across calls.
	baseTL     [][]span              // per resource: history (finished+pinned) spans, sorted
	workTL     [][]span              // per resource: working timeline of the current candidate
	tlTouched  []grid.ID             // rows filled by the previous prepHistory (may repeat)
	zeroPlaced []schedule.Assignment // all-unplaced template
	basePlaced []schedule.Assignment // pinned assignments; Resource == NoResource otherwise
	placed     []schedule.Assignment // working candidate placements (includes pinned)
	bestPlaced []schedule.Assignment // best candidate so far
	base       []dag.JobID           // jobs to place, rank order
	alt        []dag.JobID           // tie-window swapped order
	hist       []schedule.Assignment // finished+pinned assignments for the final schedule
	histMax    float64               // max finish over hist
	out        []schedule.Assignment // final assignment list handed to schedule.FromAssignments

	// Shared-grid contention: foreign reservations merged into the slot
	// search as busy intervals (see SetOccupancy).
	occ     Occupancy
	busyBuf []Busy

	// Data-aware scheduling (data.go): nil dataM selects the classic
	// point-to-point model; every data branch is nil-guarded so the
	// no-files path stays bit-identical to the pre-data kernel.
	dataM      *data.Model
	fileOfEdge []int    // dense edge index → file index, -1 for plain edges
	chBase     [][]span // per channel: foreign transfer reservations
	chWork     [][]span // per channel: working timeline of the current pass
	chIdxBuf   []int
	xferBuf    []probeXfer // per-(job,resource) probe scratch
	workXfers  []schedule.Transfer
	bestXfers  []schedule.Transfer
	storeUsed  []float64 // per resource: data staged by the current pass
	fAvail     []float64 // [file*fStride+res]: pass-local staged availability
	fAvailEp   []uint32
	fEpoch     uint32
	fStride    int

	// Incremental rescheduling (delta.go): the memo of the last recorded
	// full pass, the per-pass delta scratch, and the last pass's report.
	memo  *deltaMemo
	dsc   deltaScratch
	delta DeltaStats

	// timing is the wall-clock phase split of the last Reschedule —
	// telemetry only, never an input to scheduling decisions (see
	// LastTiming).
	timing Timing

	empty *State // lazily created zero state backing Static
}

// Timing is the wall-clock phase split of the last Reschedule: the
// upward-rank phase (near zero when the rank cache is warm) versus
// everything after it (delta probe or candidate placement). Pure
// telemetry — the observability layer rolls it into evaluate spans; a
// replayed run reproduces the schedules bit-identically regardless of
// what these read.
type Timing struct {
	RankMs  float64
	PlaceMs float64
}

// LastTiming returns the phase timing of the last Reschedule.
func (k *Kernel) LastTiming() Timing { return k.timing }

// New returns a kernel for scheduling g under est. The graph is treated
// as immutable from this point on.
func New(g *dag.Graph, est cost.Estimator) *Kernel {
	n := g.Len()
	k := &Kernel{g: g, est: est, n: n}
	k.predBase = make([]int, n+1)
	k.predsSorted = true
	for j := 0; j < n; j++ {
		k.predBase[j] = k.nEdges
		preds := g.Preds(dag.JobID(j))
		k.nEdges += len(preds)
		for i := 1; i < len(preds); i++ {
			if preds[i-1].From > preds[i].From {
				k.predsSorted = false
			}
		}
	}
	k.predBase[n] = k.nEdges
	k.zeroPlaced = make([]schedule.Assignment, n)
	for j := range k.zeroPlaced {
		k.zeroPlaced[j] = schedule.Assignment{Job: dag.JobID(j), Resource: grid.NoResource}
	}
	k.basePlaced = make([]schedule.Assignment, n)
	k.placed = make([]schedule.Assignment, n)
	k.bestPlaced = make([]schedule.Assignment, n)
	return k
}

// Graph returns the workflow the kernel is bound to.
func (k *Kernel) Graph() *dag.Graph { return k.g }

// Estimator returns the cost estimator the kernel is bound to.
func (k *Kernel) Estimator() cost.Estimator { return k.est }

// NumEdges returns the number of dependence edges the kernel indexed.
func (k *Kernel) NumEdges() int { return k.nEdges }

// edgeIndex returns the dense index of edge (from → to), or -1 if the
// edge does not exist. Preds lists are binary-searched when the graph was
// validated (which sorts them) and scanned otherwise.
func (k *Kernel) edgeIndex(from, to dag.JobID) int {
	preds := k.g.Preds(to)
	if k.predsSorted && len(preds) > 8 {
		i := sort.Search(len(preds), func(i int) bool { return preds[i].From >= from })
		if i < len(preds) && preds[i].From == from {
			return k.predBase[to] + i
		}
		return -1
	}
	for i, e := range preds {
		if e.From == from {
			return k.predBase[to] + i
		}
	}
	return -1
}

// --- Upward ranks -----------------------------------------------------

// Ranks returns the upward rank of every job (indexed by JobID) and the
// jobs in nonincreasing-rank order, over the resource set rs (eqs. 5–6 of
// the HEFT paper: average computation plus the largest average
// communication + successor rank). Both slices are owned by the kernel
// and valid until the next Ranks call with a different resource set;
// callers must not mutate them.
//
// The result is cached: recomputation happens only when rs differs from
// the previous call's resource set. Rank ties break on ascending JobID,
// which makes the order unique and deterministic regardless of the sort
// algorithm.
func (k *Kernel) Ranks(rs []grid.Resource) ([]float64, []dag.JobID, error) {
	if len(rs) == 0 {
		return nil, nil, fmt.Errorf("kernel: empty resource set")
	}
	if k.rankOK && k.sameRS(rs) && k.ranksFresh() {
		return k.ranks, k.order, nil
	}
	if k.topo == nil {
		order, err := k.g.TopoOrder()
		if err != nil {
			return nil, nil, err
		}
		k.topo = order
	}
	if k.ranks == nil {
		k.ranks = make([]float64, k.n)
		k.order = make([]dag.JobID, k.n)
	}
	for i := len(k.topo) - 1; i >= 0; i-- {
		j := k.topo[i]
		w := cost.MeanComp(k.est, j, rs)
		best := 0.0
		for _, e := range k.g.Succs(j) {
			if v := k.meanComm(e) + k.ranks[e.To]; v > best {
				best = v
			}
		}
		k.ranks[j] = w + best
	}
	orderInto(k.ranks, k.order)
	k.rankRS = k.rankRS[:0]
	for _, r := range rs {
		k.rankRS = append(k.rankRS, r.ID)
	}
	if v, ok := k.est.(VersionedEstimator); ok {
		k.rankVer = v.EstimateVersion()
	}
	k.rankOK = true
	return k.ranks, k.order, nil
}

// ranksFresh reports whether the cached ranks are still valid under the
// estimator: a VersionedEstimator invalidates them by advancing its
// version; an unversioned estimator is assumed stable between explicit
// InvalidateRanks calls (the pre-existing contract).
func (k *Kernel) ranksFresh() bool {
	v, ok := k.est.(VersionedEstimator)
	if !ok {
		return true
	}
	return v.EstimateVersion() == k.rankVer
}

func (k *Kernel) sameRS(rs []grid.Resource) bool {
	if len(rs) != len(k.rankRS) {
		return false
	}
	for i, r := range rs {
		if r.ID != k.rankRS[i] {
			return false
		}
	}
	return true
}

// InvalidateRanks drops the rank cache; for callers whose estimator
// changed underneath the kernel (the supported path is a fresh Kernel).
func (k *Kernel) InvalidateRanks() { k.rankOK = false }

// Order returns the jobs sorted by nonincreasing upward rank with
// ascending-JobID tie-break — the unique deterministic HEFT list order.
// It is the pure-function form for callers that computed ranks
// elsewhere; Ranks returns the kernel's cached order directly. Both run
// through the same comparator, so the two paths cannot diverge.
func Order(ranks []float64) []dag.JobID {
	out := make([]dag.JobID, len(ranks))
	orderInto(ranks, out)
	return out
}

// orderInto fills out (len(ranks) long) with every JobID sorted by the
// HEFT list order: nonincreasing rank, ascending JobID on ties. The
// tie-break makes the order a unique total order, so any sort produces
// the same permutation.
func orderInto(ranks []float64, out []dag.JobID) {
	for i := range out {
		out[i] = dag.JobID(i)
	}
	sort.SliceStable(out, func(a, b int) bool {
		ra, rb := ranks[out[a]], ranks[out[b]]
		if ra != rb {
			return ra > rb
		}
		return out[a] < out[b]
	})
}

// --- Placement --------------------------------------------------------

// Static computes a full static HEFT schedule of the kernel's graph over
// rs: every resource available from time 0, no execution history — the
// greedy Reschedule over the empty state at clock 0, which is the §3.4
// degeneration ("AHEFT is identical to HEFT when clock = 0").
//
// Static deliberately ignores opts.TieWindow: the paper's initial plan
// is plain HEFT, and the engine relies on HEFT and AHEFT producing the
// same initial schedule (Result.InitialMakespan is "identical by
// construction"). Tie-window exploration applies to reschedules only.
func (k *Kernel) Static(rs []grid.Resource, opts Options) (*schedule.Schedule, error) {
	return k.Reschedule(rs, nil, Options{NoInsertion: opts.NoInsertion})
}

// Reschedule implements procedure schedule(S0, P, H) of the paper's
// Fig. 3 over the execution state st: upward ranks over the unfinished
// jobs, then EFT-minimising placement over rs, with finished jobs keeping
// their actual intervals and pinned running jobs their current
// assignments. A nil st means the empty state at clock 0. The returned
// schedule covers every job of the graph. With opts.TieWindow > 0
// near-tie rank pairs are additionally evaluated swapped and the best
// candidate wins.
func (k *Kernel) Reschedule(rs []grid.Resource, st *State, opts Options) (*schedule.Schedule, error) {
	if len(rs) == 0 {
		return nil, fmt.Errorf("kernel: empty resource set")
	}
	if st == nil {
		if k.empty == nil {
			k.empty = k.NewState(0)
		}
		k.empty.Reset()
		st = k.empty
	}
	began := time.Now()
	ranks, order, err := k.Ranks(rs)
	if err != nil {
		return nil, err
	}
	rankDone := time.Now()
	k.timing = Timing{RankMs: rankDone.Sub(began).Seconds() * 1e3}
	base := k.base[:0]
	for _, job := range order {
		if st.finRes[job] != grid.NoResource || st.isPin[job] {
			continue
		}
		base = append(base, job)
	}
	k.base = base

	k.delta = DeltaStats{}
	if opts.Incremental {
		k.delta.Attempted = true
		k.delta.Base = len(base)
		if s := k.rescheduleDelta(rs, st, base, opts); s != nil {
			k.timing.PlaceMs = time.Since(rankDone).Seconds() * 1e3
			return s, nil
		}
		// rescheduleDelta set k.delta.Reason; fall through to a full
		// replan, which re-records the memo below.
	}

	k.prepHistory(rs, st)
	var rec *deltaMemo
	if opts.Incremental && k.memoRecordable(opts) {
		rec = k.ensureMemo(rs)
	}
	bestMk, err := k.placeCandidate(rs, st, base, opts, rec)
	if err != nil {
		return nil, err
	}
	copy(k.bestPlaced, k.placed)
	if k.dataM != nil {
		k.bestXfers = append(k.bestXfers[:0], k.workXfers...)
	}
	if rec != nil {
		k.finishMemo(rec, rs, st, base, opts)
	}

	if opts.TieWindow > 0 {
		alt := k.alt
		if cap(alt) < len(base) {
			alt = make([]dag.JobID, len(base))
		}
		alt = alt[:len(base)]
		k.alt = alt
		for i := 0; i+1 < len(base); i++ {
			hi, lo := ranks[base[i]], ranks[base[i+1]]
			if hi <= 0 || hi-lo >= opts.TieWindow*hi {
				continue
			}
			if _, dep := k.g.EdgeData(base[i], base[i+1]); dep {
				continue // swapping would violate precedence
			}
			copy(alt, base)
			alt[i], alt[i+1] = alt[i+1], alt[i]
			mk, err := k.placeCandidate(rs, st, alt, opts, nil)
			if err != nil {
				return nil, err
			}
			if mk < bestMk {
				bestMk = mk
				copy(k.bestPlaced, k.placed)
				if k.dataM != nil {
					k.bestXfers = append(k.bestXfers[:0], k.workXfers...)
				}
			}
		}
	}
	s := k.buildSchedule(base)
	if rec != nil {
		// Keep a kernel-private copy for the delta path to patch; the
		// caller owns s and may mutate it freely.
		rec.sched = s.Clone()
	}
	k.timing.PlaceMs = time.Since(rankDone).Seconds() * 1e3
	return s, nil
}

// growTimelines ensures the per-resource scratch covers resource IDs up
// to maxID.
func (k *Kernel) growTimelines(maxID grid.ID) {
	need := int(maxID) + 1
	for len(k.baseTL) < need {
		k.baseTL = append(k.baseTL, nil)
		k.workTL = append(k.workTL, nil)
	}
}

// prepHistory builds, once per Reschedule, the carried-over execution
// history: per-resource base timelines holding the finished and pinned
// intervals (sorted by start, then job), the pinned entries of the
// candidate placement template, the history assignment list for the
// final schedule, and the history makespan.
func (k *Kernel) prepHistory(rs []grid.Resource, st *State) {
	copy(k.basePlaced, k.zeroPlaced)
	k.hist = k.hist[:0]
	k.histMax = 0
	maxID := grid.ID(-1)
	for _, r := range rs {
		if r.ID > maxID {
			maxID = r.ID
		}
	}
	for j := 0; j < k.n; j++ {
		var a schedule.Assignment
		switch {
		case st.finRes[j] != grid.NoResource:
			a = schedule.Assignment{Job: dag.JobID(j), Resource: st.finRes[j], Start: st.finAST[j], Finish: st.finAFT[j]}
		case st.isPin[j]:
			a = st.pin[j]
			k.basePlaced[j] = a
		default:
			continue
		}
		k.hist = append(k.hist, a)
		if a.Finish > k.histMax {
			k.histMax = a.Finish
		}
		if a.Resource > maxID {
			maxID = a.Resource
		}
	}
	// Clear every row the previous call filled, then the rows this call
	// will fill or scan; duplicates in the touch list only re-truncate.
	for _, r := range k.tlTouched {
		k.baseTL[r] = k.baseTL[r][:0]
	}
	k.tlTouched = k.tlTouched[:0]
	k.growTimelines(maxID)
	for _, r := range rs {
		k.baseTL[r.ID] = k.baseTL[r.ID][:0]
		k.tlTouched = append(k.tlTouched, r.ID)
	}
	for _, a := range k.hist {
		k.baseTL[a.Resource] = k.baseTL[a.Resource][:0]
	}
	for _, a := range k.hist {
		k.baseTL[a.Resource] = append(k.baseTL[a.Resource], span{start: a.Start, finish: a.Finish, job: a.Job})
		k.tlTouched = append(k.tlTouched, a.Resource)
	}
	k.injectForeign(rs)
	// Sort each timeline the placement loop will scan, once. History rows
	// on resources outside rs are never read by the slot search (they only
	// feed the final schedule through k.hist), so they stay unsorted.
	for _, r := range rs {
		slices.SortFunc(k.baseTL[r.ID], func(a, b span) int {
			switch {
			case a.start != b.start:
				if a.start < b.start {
					return -1
				}
				return 1
			case a.job != b.job:
				if a.job < b.job {
					return -1
				}
				return 1
			default:
				return 0
			}
		})
		if k.occ != nil {
			// Foreign claims may overlap each other (and a drifted pin);
			// the gap walk assumes disjoint spans. Own-only rows are
			// disjoint by construction and skip the normalisation, keeping
			// the non-shared path bit-identical.
			k.baseTL[r.ID] = coalesce(k.baseTL[r.ID])
		}
	}
	if k.dataM != nil {
		k.prepChannels()
	}
}

// placeCandidate runs one full EFT-minimising placement pass over the
// jobs of order (rank order, or a tie-window variation of it) and returns
// the candidate's makespan. The resulting placements are left in
// k.placed. This is the zero-allocation steady-state inner loop.
//
// A non-nil rec additionally records the delta memo's per-probe data
// (probe upper bounds, ready floors, clock-sensitive FEA cases) as the
// pass runs; the extra branches are dead weight on the rec == nil path.
func (k *Kernel) placeCandidate(rs []grid.Resource, st *State, order []dag.JobID, opts Options, rec *deltaMemo) (float64, error) {
	copy(k.placed, k.basePlaced)
	for _, r := range rs {
		k.workTL[r.ID] = append(k.workTL[r.ID][:0], k.baseTL[r.ID]...)
	}
	insertion := !opts.NoInsertion
	if k.dataM != nil {
		k.beginDataPass(rs)
	}
	mk := k.histMax
	nRS := len(rs)
	for _, job := range order {
		bestRes := grid.NoResource
		bestStart, bestFinish := 0.0, 0.0
		// overRes is the storage-overflow fallback (data path only): the
		// best placement among resources whose storage bound the job's
		// staging would exceed, used only when every resource overflows.
		overRes := grid.NoResource
		overStart, overFinish := 0.0, 0.0
		preds := k.g.Preds(job)
		eBase := k.predBase[job]
		readyMin := 0.0
		case2 := false
		for ri, r := range rs {
			var ready float64
			fits := true
			if k.dataM != nil {
				ready, fits = k.probeInputs(st, preds, eBase, r.ID, insertion)
			} else {
				// Inner max of Eq. 2: input availability via FEA (Eq. 1).
				ready = st.Clock
				for i := range preds {
					if rec != nil {
						if fr := st.finRes[preds[i].From]; fr != grid.NoResource {
							if _, ok := st.transfer(eBase+i, r.ID); !ok {
								case2 = true // Eq. 1 Case 2: clock-sensitive
							}
						}
					}
					if t := st.fea(preds[i], eBase+i, r.ID); t > ready {
						ready = t
					}
				}
			}
			w := k.est.Comp(job, r.ID)
			start := earliestStart(k.workTL[r.ID], ready, w, insertion)
			finish := start + w // Eq. 3
			if rec != nil {
				rec.probeStart[int(job)*nRS+ri] = start
				rec.probeEnd[int(job)*nRS+ri] = start + w
				if ri == 0 || ready < readyMin {
					readyMin = ready
				}
			}
			switch {
			case fits:
				if bestRes == grid.NoResource || finish < bestFinish {
					bestRes, bestStart, bestFinish = r.ID, start, finish
				}
			case bestRes == grid.NoResource:
				if overRes == grid.NoResource || finish < overFinish {
					overRes, overStart, overFinish = r.ID, start, finish
				}
			}
		}
		if bestRes == grid.NoResource && overRes != grid.NoResource {
			// Storage is a soft bound: when every resource would overflow,
			// the least-bad placement proceeds anyway.
			bestRes, bestStart, bestFinish = overRes, overStart, overFinish
		}
		if bestRes == grid.NoResource {
			return 0, fmt.Errorf("kernel: no resource available for job %d", job)
		}
		if rec != nil {
			rec.readyMin[job] = readyMin
			rec.case2[job] = case2
		}
		if k.dataM != nil {
			k.commitInputs(st, job, preds, eBase, bestRes, insertion)
		}
		k.placed[job] = schedule.Assignment{Job: job, Resource: bestRes, Start: bestStart, Finish: bestFinish}
		insertSpan(&k.workTL[bestRes], span{start: bestStart, finish: bestFinish, job: job})
		if bestFinish > mk {
			mk = bestFinish
		}
	}
	return mk, nil
}

// earliestStart finds the earliest start time >= ready at which a task of
// the given duration fits on the timeline. With insertion enabled it
// implements HEFT's insertion-based policy exactly as
// schedule.EarliestStart does, but locates the first potentially feasible
// gap by binary search over the start-sorted spans instead of scanning
// the whole timeline: a gap whose end tl[i+1].start is below
// ready+duration can never fit the task (its usable start is at least
// ready), so the linear gap scan may begin at the span preceding the
// first one whose start reaches ready+duration.
func earliestStart(tl []span, ready, duration float64, insertion bool) float64 {
	if len(tl) == 0 {
		return ready
	}
	if !insertion {
		if last := tl[len(tl)-1].finish; last > ready {
			return last
		}
		return ready
	}
	lim := ready + duration
	j := sort.Search(len(tl), func(i int) bool { return tl[i].start >= lim })
	if j == 0 {
		// Gap before the first span fits: ready+duration <= tl[0].start.
		return ready
	}
	for i := j - 1; i < len(tl)-1; i++ {
		gapStart := tl[i].finish
		gapEnd := tl[i+1].start
		start := gapStart
		if ready > start {
			start = ready
		}
		if start+duration <= gapEnd {
			return start
		}
	}
	if last := tl[len(tl)-1].finish; last > ready {
		return last
	}
	return ready
}

// insertSpan inserts s keeping the timeline sorted by (start, job).
func insertSpan(tl *[]span, s span) {
	t := *tl
	i := sort.Search(len(t), func(i int) bool {
		if t[i].start != s.start {
			return t[i].start > s.start
		}
		return t[i].job > s.job
	})
	t = append(t, span{})
	copy(t[i+1:], t[i:])
	t[i] = s
	*tl = t
}

// buildSchedule materialises the winning candidate: history carried over
// plus the placements of every job in base. Only this final step
// allocates (the schedule handed to the caller).
func (k *Kernel) buildSchedule(base []dag.JobID) *schedule.Schedule {
	out := k.out[:0]
	out = append(out, k.hist...)
	for _, job := range base {
		out = append(out, k.bestPlaced[job])
	}
	k.out = out
	s := schedule.FromAssignments(out)
	if k.dataM != nil {
		ts := make([]schedule.Transfer, len(k.bestXfers))
		copy(ts, k.bestXfers)
		s.SetTransfers(ts)
	}
	return s
}

// --- Just-in-time dispatch evaluation ---------------------------------

// DispatchCompletion returns when job j would finish if bound to the idle
// resource r at time now under the dynamic file-transfer policy: input
// files produced on other resources start transferring at the decision,
// the resource stalls until they arrive, then computes (the paper's §4.2
// just-in-time model — no communication/computation overlap). resOf maps
// every already-dispatched job to its resource.
func (k *Kernel) DispatchCompletion(j dag.JobID, r grid.ID, now float64, resOf []grid.ID) float64 {
	inputReady := now
	for _, e := range k.g.Preds(j) {
		if resOf[e.From] == r {
			continue // produced here; predecessor finished before now
		}
		if arrive := now + k.est.Comm(e, resOf[e.From], r); arrive > inputReady {
			inputReady = arrive
		}
	}
	return inputReady + k.est.Comp(j, r)
}

// DispatchBest evaluates job j against every idle resource and returns
// the completion-minimising resource together with the best and
// second-best completion times (the sufferage heuristic's inputs). idle
// must be non-empty; on an empty set it returns grid.NoResource.
func (k *Kernel) DispatchBest(j dag.JobID, idle []grid.ID, now float64, resOf []grid.ID) (best grid.ID, done, second float64) {
	best = grid.NoResource
	for _, r := range idle {
		d := k.DispatchCompletion(j, r, now, resOf)
		switch {
		case best == grid.NoResource:
			best, done, second = r, d, d
		case d < done:
			second = done
			best, done = r, d
		case d < second:
			second = d
		}
	}
	return best, done, second
}
