package kernel_test

// Property and fuzz suites for the scheduling kernel: every schedule the
// kernel produces — static or mid-execution, over random or layered DAGs,
// with scratch reused across many calls — must be structurally valid (full
// coverage, no timeline overlap, pool-arrival feasible) and must respect
// precedence through the Eq. 1 FEA model, cross-checked against the
// independent map-based implementation in internal/core.

import (
	"math"
	"testing"

	"aheft/internal/core"
	"aheft/internal/dag"
	"aheft/internal/kernel"
	"aheft/internal/rng"
	"aheft/internal/schedule"
	"aheft/internal/workload"
)

// quickScenario derives a small random scenario deterministically from a
// seed; even seeds draw the paper-style random DAG, odd seeds the layered
// stress generator (at a test-friendly size).
func quickScenario(t testing.TB, seed uint64) *workload.Scenario {
	t.Helper()
	r := rng.New(seed)
	gp := workload.GridParams{
		InitialResources: 2 + r.IntN(5),
		ChangeInterval:   150 + 100*float64(r.IntN(4)),
		ChangePct:        0.3,
		MaxEvents:        3,
	}
	var (
		sc  *workload.Scenario
		err error
	)
	if seed%2 == 0 {
		sc, err = workload.RandomScenario(workload.RandomParams{
			Jobs:      8 + r.IntN(25),
			CCR:       []float64{0.3, 1, 4}[r.IntN(3)],
			OutDegree: 0.3,
			Beta:      []float64{0, 0.5, 1}[r.IntN(3)],
			Alpha:     []float64{0.5, 1, 2}[r.IntN(3)],
		}, gp, r)
	} else {
		sc, err = workload.LayeredScenario(workload.LayeredParams{
			Jobs:  40 + r.IntN(160),
			Width: 5 + r.IntN(15),
			FanIn: 1 + r.IntN(4),
			CCR:   []float64{0.3, 1, 4}[r.IntN(3)],
			Beta:  0.5,
		}, gp, r)
	}
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return sc
}

// checkRescheduleInvariants verifies one kernel reschedule against the
// scenario: coverage/overlap/pool validity, history preservation, the
// clock floor, and FEA input feasibility via the independent core
// implementation over the equivalent map-based snapshot.
func checkRescheduleInvariants(t testing.TB, sc *workload.Scenario, s0 *schedule.Schedule, s1 *schedule.Schedule, clock float64) {
	t.Helper()
	est := sc.Estimator()
	if err := s1.Validate(sc.Graph, schedule.ValidateOptions{Pool: sc.Pool}); err != nil {
		t.Fatalf("clock %g: invalid schedule: %v\n%s", clock, err, s1)
	}
	ref := core.Snapshot(sc.Graph, est, s0, clock, core.SnapshotOptions{})
	if err := ref.Validate(); err != nil {
		t.Fatalf("clock %g: invalid snapshot: %v", clock, err)
	}
	for _, j := range sc.Graph.Jobs() {
		a := s1.MustGet(j.ID)
		if fj, done := ref.Finished[j.ID]; done {
			if a.Resource != fj.Resource || a.Start != fj.AST || a.Finish != fj.AFT {
				t.Fatalf("clock %g: finished job %s moved: %+v vs %+v", clock, j.Name, a, fj)
			}
			continue
		}
		if p, pinned := ref.Pinned[j.ID]; pinned {
			if a != p {
				t.Fatalf("clock %g: pinned job %s moved: %+v vs %+v", clock, j.Name, a, p)
			}
			continue
		}
		if a.Start < clock-1e-9 {
			t.Fatalf("clock %g: job %s starts at %g before the clock", clock, j.Name, a.Start)
		}
		// Input feasibility per the independent FEA reference (Eq. 1).
		for _, e := range sc.Graph.Preds(j.ID) {
			if fea := core.FEA(sc.Graph, est, ref, s1, e, a.Resource); a.Start+1e-9 < fea {
				t.Fatalf("clock %g: job %s starts at %g before input from %d ready at %g",
					clock, j.Name, a.Start, e.From, fea)
			}
		}
		// Duration exactness: no silent stretching or shrinking.
		if want := est.Comp(j.ID, a.Resource); math.Abs(a.Duration()-want) > 1e-9 {
			t.Fatalf("clock %g: job %s duration %g != cost %g", clock, j.Name, a.Duration(), want)
		}
	}
}

// TestKernelScheduleValidity drives one reused kernel through a static
// plan plus reschedules at several clocks for many scenarios — exercising
// the scratch reuse across calls that production engines rely on — and
// checks every produced schedule against the full invariant set.
func TestKernelScheduleValidity(t *testing.T) {
	for seed := uint64(0); seed < 24; seed++ {
		sc := quickScenario(t, seed)
		est := sc.Estimator()
		k := kernel.New(sc.Graph, est)
		s0, err := k.Static(sc.Pool.Initial(), kernel.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s0.Validate(sc.Graph, schedule.ValidateOptions{Comp: sc.Table, Comm: sc.Table}); err != nil {
			t.Fatalf("seed %d: static: %v", seed, err)
		}
		st := k.NewState(sc.Pool.Size())
		for _, frac := range []float64{0, 0.25, 0.5, 0.8} {
			clock := frac * s0.Makespan()
			st.Snapshot(s0, clock, kernel.SnapshotOptions{})
			s1, err := k.Reschedule(sc.Pool.AvailableAt(clock), st, kernel.Options{})
			if err != nil {
				t.Fatalf("seed %d clock %g: %v", seed, clock, err)
			}
			checkRescheduleInvariants(t, sc, s0, s1, clock)
		}
	}
}

// TestKernelMatchesCoreWrapper holds the two snapshot implementations —
// the kernel's dense State.Snapshot and the map-based core.Snapshot fed
// through core.Reschedule's one-shot wrapper — to bit-identical
// schedules, including under the tie-window explorer and the
// no-insertion ablation.
func TestKernelMatchesCoreWrapper(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		sc := quickScenario(t, seed)
		est := sc.Estimator()
		k := kernel.New(sc.Graph, est)
		s0, err := k.Static(sc.Pool.Initial(), kernel.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		st := k.NewState(sc.Pool.Size())
		for _, opts := range []kernel.Options{
			{},
			{TieWindow: 0.05},
			{NoInsertion: true},
		} {
			clock := s0.Makespan() / 3
			rs := sc.Pool.AvailableAt(clock)
			st.Snapshot(s0, clock, kernel.SnapshotOptions{})
			dense, err := k.Reschedule(rs, st, opts)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			ref := core.Snapshot(sc.Graph, est, s0, clock, core.SnapshotOptions{})
			viaMaps, err := core.Reschedule(sc.Graph, est, rs, ref, opts)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for _, j := range sc.Graph.Jobs() {
				if dense.MustGet(j.ID) != viaMaps.MustGet(j.ID) {
					t.Fatalf("seed %d opts %+v: job %s: dense %+v, via maps %+v",
						seed, opts, j.Name, dense.MustGet(j.ID), viaMaps.MustGet(j.ID))
				}
			}
		}
	}
}

// FuzzKernelReschedule fuzzes (scenario seed, clock fraction, options,
// perturbation scale) and asserts the full invariant set on whatever the
// kernel produces, then drives a memoised kernel through a perturb-then-
// compare round: tracker-style progress to a later clock with one job's
// runtime scaled by perturbScale, the incremental reschedule on top of the
// recorded memo, and a bit-identical comparison against an independent
// full replan on a replicated state (under tie-window or no-insertion the
// incremental attempt must fall back — and still match).
func FuzzKernelReschedule(f *testing.F) {
	f.Add(uint64(1), 0.3, false, 0.0, 1.0)
	f.Add(uint64(2), 0.0, true, 0.05, 0.5)
	f.Add(uint64(3), 0.9, false, 0.1, 1.8)
	f.Add(uint64(42), 0.5, true, 0.0, 2.4)
	f.Add(uint64(7), 0.25, false, 0.0, 0.3)
	f.Add(uint64(12), 0.4, false, 0.0, 1.6)
	f.Fuzz(func(t *testing.T, seed uint64, clockFrac float64, noInsertion bool, tieWindow float64, perturbScale float64) {
		if math.IsNaN(clockFrac) || math.IsInf(clockFrac, 0) {
			clockFrac = 0.5
		}
		clockFrac = math.Mod(math.Abs(clockFrac), 1)
		if math.IsNaN(tieWindow) || math.IsInf(tieWindow, 0) || tieWindow < 0 {
			tieWindow = 0
		}
		tieWindow = math.Mod(tieWindow, 0.5)
		if math.IsNaN(perturbScale) || math.IsInf(perturbScale, 0) {
			perturbScale = 1.3
		}
		perturbScale = 0.25 + math.Mod(math.Abs(perturbScale), 2.25)
		sc := quickScenario(t, seed%64)
		est := sc.Estimator()
		k := kernel.New(sc.Graph, est)
		s0, err := k.Static(sc.Pool.Initial(), kernel.Options{NoInsertion: noInsertion})
		if err != nil {
			t.Fatal(err)
		}
		clock := clockFrac * s0.Makespan()
		st := k.NewState(sc.Pool.Size())
		st.Snapshot(s0, clock, kernel.SnapshotOptions{})
		s1, err := k.Reschedule(sc.Pool.AvailableAt(clock), st, kernel.Options{
			NoInsertion: noInsertion, TieWindow: tieWindow,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkRescheduleInvariants(t, sc, s0, s1, clock)

		// Perturb-then-compare: memo pass at clock, perturbed progress to a
		// later clock, delta (or its fallback) vs an independent full pass.
		opts := kernel.Options{
			NoInsertion: noInsertion, TieWindow: tieWindow,
			Incremental: true, MaxConeFrac: 1,
		}
		refOpts := kernel.Options{NoInsertion: noInsertion, TieWindow: tieWindow}
		ki := kernel.New(sc.Graph, est)
		kr := kernel.New(sc.Graph, est)
		sti := ki.NewState(sc.Pool.Size())
		str := kr.NewState(sc.Pool.Size())
		rs := sc.Pool.AvailableAt(clock)
		advance(sc, sti, s0, clock, nil)
		advance(sc, str, s0, clock, nil)
		s1i, err := ki.Reschedule(rs, sti, opts)
		if err != nil {
			t.Fatal(err)
		}
		s1r, err := kr.Reschedule(rs, str, refOpts)
		if err != nil {
			t.Fatal(err)
		}
		requireSameSchedule(t, sc.Graph, s1i, s1r, "memo pass")
		ov := map[dag.JobID]float64{}
		for _, j := range sc.Graph.Jobs() {
			if a, ok := s1i.Get(j.ID); ok && a.Start > clock && !sti.Finished(j.ID) {
				ov[j.ID] = perturbScale
				break
			}
		}
		clock2 := clock + 0.5*(s0.Makespan()-clock)
		advance(sc, sti, s1i, clock2, ov)
		advance(sc, str, s1i, clock2, ov)
		s2i, err := ki.Reschedule(rs, sti, opts)
		if err != nil {
			t.Fatal(err)
		}
		s2r, err := kr.Reschedule(rs, str, refOpts)
		if err != nil {
			t.Fatal(err)
		}
		requireSameSchedule(t, sc.Graph, s2i, s2r, "perturbed pass")
		if ds := ki.DeltaStats(); (noInsertion || tieWindow != 0) && ds.Delta {
			t.Fatalf("delta path ran under ineligible options: %+v", ds)
		}
	})
}
