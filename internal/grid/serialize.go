package grid

import (
	"encoding/json"
	"fmt"
)

// arrivalJSON is the wire form of one pool arrival. Resource IDs are not
// carried explicitly: arrivals are listed in ID order and decoding assigns
// dense IDs 0..n-1 by position, so a document can never describe the
// non-dense or duplicate IDs NewPool rejects.
type arrivalJSON struct {
	Time float64 `json:"t"`
	Name string  `json:"name"`
}

// MarshalJSON encodes the pool as the list of its arrivals in resource-ID
// order (not arrival-time order): position in the list is the resource ID,
// which keeps cost-table columns aligned across a round trip.
func (p *Pool) MarshalJSON() ([]byte, error) {
	byID := make([]arrivalJSON, len(p.arrivals))
	for _, a := range p.arrivals {
		byID[a.Resource.ID] = arrivalJSON{Time: a.Time, Name: a.Resource.Name}
	}
	return json.Marshal(byID)
}

// UnmarshalJSON decodes a pool written by MarshalJSON. The result is
// validated by NewPool (non-negative times, at least one time-0 resource);
// on error the receiver is left untouched.
func (p *Pool) UnmarshalJSON(data []byte) error {
	var doc []arrivalJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("grid: decode: %w", err)
	}
	arr := make([]Arrival, len(doc))
	for i, a := range doc {
		arr[i] = Arrival{Time: a.Time, Resource: Resource{ID: ID(i), Name: a.Name}}
	}
	np, err := NewPool(arr)
	if err != nil {
		return fmt.Errorf("grid: decode: %w", err)
	}
	*p = *np
	return nil
}
