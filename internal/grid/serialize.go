package grid

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// arrivalJSON is the wire form of one pool arrival. Resource IDs are not
// carried explicitly: arrivals are listed in ID order and decoding assigns
// dense IDs 0..n-1 by position, so a document can never describe the
// non-dense or duplicate IDs NewPool rejects. Data-plane fields are
// omitempty so pools that never declare them encode exactly as before the
// data-aware extension.
type arrivalJSON struct {
	Time  float64 `json:"t"`
	Name  string  `json:"name"`
	Up    float64 `json:"up,omitempty"`
	Down  float64 `json:"down,omitempty"`
	Link  string  `json:"link,omitempty"`
	Store float64 `json:"store,omitempty"`
}

// poolJSON is the extended wire form used only when the pool declares
// named shared links: the legacy bare-array form has nowhere to carry the
// link table, so such pools encode as an object instead.
type poolJSON struct {
	Links     map[string]float64 `json:"links"`
	Resources []arrivalJSON      `json:"resources"`
}

func (p *Pool) arrivalsByID() []arrivalJSON {
	byID := make([]arrivalJSON, len(p.arrivals))
	for _, a := range p.arrivals {
		r := a.Resource
		byID[r.ID] = arrivalJSON{
			Time: a.Time, Name: r.Name,
			Up: r.Up, Down: r.Down, Link: r.Link, Store: r.Store,
		}
	}
	return byID
}

// MarshalJSON encodes the pool as the list of its arrivals in resource-ID
// order (not arrival-time order): position in the list is the resource ID,
// which keeps cost-table columns aligned across a round trip. Pools with
// named shared links encode as {"links":{...},"resources":[...]} instead —
// link-free pools keep the legacy bare-array bytes.
func (p *Pool) MarshalJSON() ([]byte, error) {
	if len(p.links) == 0 {
		return json.Marshal(p.arrivalsByID())
	}
	return json.Marshal(poolJSON{Links: p.Links(), Resources: p.arrivalsByID()})
}

// UnmarshalJSON decodes a pool written by MarshalJSON, accepting both the
// bare-array and the links-object form. The result is validated by
// NewPoolLinks (non-negative times, at least one time-0 resource, sane
// bandwidths, resolvable link references); on error the receiver is left
// untouched.
func (p *Pool) UnmarshalJSON(data []byte) error {
	var doc []arrivalJSON
	var links map[string]float64
	if trimmed := bytes.TrimLeft(data, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '{' {
		var obj poolJSON
		if err := json.Unmarshal(data, &obj); err != nil {
			return fmt.Errorf("grid: decode: %w", err)
		}
		doc, links = obj.Resources, obj.Links
	} else if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("grid: decode: %w", err)
	}
	arr := make([]Arrival, len(doc))
	for i, a := range doc {
		arr[i] = Arrival{Time: a.Time, Resource: Resource{
			ID: ID(i), Name: a.Name,
			Up: a.Up, Down: a.Down, Link: a.Link, Store: a.Store,
		}}
	}
	np, err := NewPoolLinks(arr, links)
	if err != nil {
		return fmt.Errorf("grid: decode: %w", err)
	}
	*p = *np
	return nil
}
