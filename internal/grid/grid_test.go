package grid

import (
	"math"
	"testing"
)

func TestStaticPool(t *testing.T) {
	p := StaticPool(3)
	if p.Size() != 3 {
		t.Fatalf("Size = %d, want 3", p.Size())
	}
	if got := len(p.Initial()); got != 3 {
		t.Fatalf("Initial = %d resources, want 3", got)
	}
	if ct := p.ChangeTimes(); len(ct) != 0 {
		t.Fatalf("static pool has change times %v", ct)
	}
}

func TestNewPoolValidation(t *testing.T) {
	cases := []struct {
		name string
		arr  []Arrival
	}{
		{"empty", nil},
		{"negative time", []Arrival{{Time: -1, Resource: Resource{ID: 0}}}},
		{"sparse ids", []Arrival{{Time: 0, Resource: Resource{ID: 5}}}},
		{"duplicate ids", []Arrival{
			{Time: 0, Resource: Resource{ID: 0}},
			{Time: 1, Resource: Resource{ID: 0}},
		}},
		{"nothing at time zero", []Arrival{{Time: 5, Resource: Resource{ID: 0}}}},
	}
	for _, c := range cases {
		if _, err := NewPool(c.arr); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestAvailableAt(t *testing.T) {
	p := MustPool([]Arrival{
		{Time: 0, Resource: Resource{ID: 0, Name: "r1"}},
		{Time: 0, Resource: Resource{ID: 1, Name: "r2"}},
		{Time: 10, Resource: Resource{ID: 2, Name: "r3"}},
		{Time: 20, Resource: Resource{ID: 3, Name: "r4"}},
	})
	if got := len(p.AvailableAt(0)); got != 2 {
		t.Fatalf("AvailableAt(0) = %d, want 2", got)
	}
	if got := len(p.AvailableAt(10)); got != 3 {
		t.Fatalf("AvailableAt(10) = %d, want 3 (inclusive)", got)
	}
	if got := len(p.AvailableAt(15)); got != 3 {
		t.Fatalf("AvailableAt(15) = %d, want 3", got)
	}
	if got := len(p.AvailableAt(1e9)); got != 4 {
		t.Fatalf("AvailableAt(inf) = %d, want 4", got)
	}
	// Results are ID-ordered.
	rs := p.AvailableAt(20)
	for i := 1; i < len(rs); i++ {
		if rs[i].ID <= rs[i-1].ID {
			t.Fatal("AvailableAt not ID-ordered")
		}
	}
}

func TestChangeTimesDeduplicated(t *testing.T) {
	p := MustPool([]Arrival{
		{Time: 0, Resource: Resource{ID: 0}},
		{Time: 10, Resource: Resource{ID: 1}},
		{Time: 10, Resource: Resource{ID: 2}},
		{Time: 30, Resource: Resource{ID: 3}},
	})
	ct := p.ChangeTimes()
	if len(ct) != 2 || ct[0] != 10 || ct[1] != 30 {
		t.Fatalf("ChangeTimes = %v, want [10 30]", ct)
	}
	if got := len(p.ArrivalsAt(10)); got != 2 {
		t.Fatalf("ArrivalsAt(10) = %d, want 2", got)
	}
}

func TestArrivalTime(t *testing.T) {
	p := MustPool([]Arrival{
		{Time: 0, Resource: Resource{ID: 0}},
		{Time: 7, Resource: Resource{ID: 1}},
	})
	if at := p.ArrivalTime(1); at != 7 {
		t.Fatalf("ArrivalTime(1) = %g, want 7", at)
	}
	if at := p.ArrivalTime(99); !math.IsInf(at, 1) {
		t.Fatalf("ArrivalTime(unknown) = %g, want +Inf", at)
	}
	if _, ok := p.Resource(1); !ok {
		t.Fatal("Resource(1) not found")
	}
	if _, ok := p.Resource(99); ok {
		t.Fatal("Resource(99) should not exist")
	}
}

func TestDynamicModelPerEvent(t *testing.T) {
	cases := []struct {
		m    DynamicModel
		want int
	}{
		{DynamicModel{Initial: 10, Interval: 400, ChangePct: 0.10, MaxEvents: 4}, 1},
		{DynamicModel{Initial: 10, Interval: 400, ChangePct: 0.25, MaxEvents: 4}, 3}, // round(2.5)=3 (banker-free)
		{DynamicModel{Initial: 100, Interval: 400, ChangePct: 0.10, MaxEvents: 4}, 10},
		{DynamicModel{Initial: 10, Interval: 0, ChangePct: 0.10, MaxEvents: 4}, 0},
		{DynamicModel{Initial: 10, Interval: 400, ChangePct: 0, MaxEvents: 4}, 0},
		{DynamicModel{Initial: 3, Interval: 400, ChangePct: 0.05, MaxEvents: 4}, 1}, // floor at 1
	}
	for i, c := range cases {
		if got := c.m.PerEvent(); got != c.want {
			t.Errorf("case %d: PerEvent = %d, want %d", i, got, c.want)
		}
	}
}

func TestDynamicModelBuild(t *testing.T) {
	m := DynamicModel{Initial: 4, Interval: 100, ChangePct: 0.25, MaxEvents: 3}
	p, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != m.TotalResources() {
		t.Fatalf("Size = %d, want %d", p.Size(), m.TotalResources())
	}
	if got := len(p.Initial()); got != 4 {
		t.Fatalf("initial = %d, want 4", got)
	}
	ct := p.ChangeTimes()
	if len(ct) != 3 || ct[0] != 100 || ct[1] != 200 || ct[2] != 300 {
		t.Fatalf("ChangeTimes = %v, want [100 200 300]", ct)
	}
	if got := len(p.ArrivalsAt(200)); got != 1 {
		t.Fatalf("arrivals at 200 = %d, want 1 (round(0.25·4))", got)
	}
}

func TestDynamicModelBuildRejectsEmpty(t *testing.T) {
	if _, err := (DynamicModel{}).Build(); err == nil {
		t.Fatal("expected error for zero initial pool")
	}
}

func TestMustPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustPool(nil)
}
