// Package grid models the dynamic pool of computation resources a grid
// workflow executes on.
//
// The AHEFT paper's central premise is that the resource pool is *not*
// fixed: resources join (and, in principle, leave) while a workflow runs.
// Its experiments model this with three parameters (Table 2): the initial
// pool size R, the change interval Δ, and the change percentage δ — every Δ
// time units, δ·R new resources join the grid. This package provides the
// resource and pool types plus the arrival-trace machinery implementing
// that model; cost sampling for the arrivals lives in package workload,
// which owns the β-heterogeneity model.
package grid

import (
	"fmt"
	"math"
	"sort"
)

// ID identifies a resource. Like dag.JobID, IDs are dense across the set of
// resources that will *ever* exist in a scenario (initial pool plus all
// arrivals), so cost tables can be flat matrices.
type ID int

// NoResource is the sentinel for a failed resource lookup.
const NoResource ID = -1

// Resource is a computation unit (one host/cluster slot in the paper's
// model; each resource executes one job at a time). Beyond its compute
// slot a resource may declare data-plane capacity: per-resource uplink
// and downlink bandwidth, membership in a named shared link, and attached
// storage. All data-plane fields are optional — zero means "unmodelled"
// (infinite capacity), which keeps every pre-existing scenario
// bit-identical.
type Resource struct {
	ID   ID
	Name string

	// Up and Down are the resource's uplink/downlink bandwidths in data
	// units per time unit (MB/s in the paper's workloads). Zero means
	// unconstrained: transfers touching this side of the resource are
	// bounded only by the other constraints on the path.
	Up, Down float64
	// Link optionally names a shared link (declared on the Pool) this
	// resource sits behind; every transfer in or out of the resource also
	// occupies that link's capacity, so resources behind one link contend
	// with each other for it.
	Link string
	// Store is the attached storage capacity in data units; zero means
	// unbounded. The planner treats it as a soft bound on how much data it
	// stages onto the resource within one plan.
	Store float64
}

// Arrival records one resource joining the grid at a point in simulated
// time. Arrivals with Time == 0 form the initial pool.
type Arrival struct {
	Time     float64
	Resource Resource
}

// Pool is the time-varying resource set. It is immutable after
// construction: schedulers query the set of resources available at a given
// clock value, and the event-driven executors iterate its arrival events.
type Pool struct {
	arrivals []Arrival // sorted by Time, then Resource.ID
	// links maps a shared-link name to its bandwidth (data units per time
	// unit). Resources reference links by name (Resource.Link); nil when
	// the scenario declares no shared links.
	links map[string]float64
}

// NewPool builds a pool from a set of arrivals. Resource IDs must be dense
// (0..n-1) and unique; arrival times must be non-negative.
func NewPool(arrivals []Arrival) (*Pool, error) {
	return NewPoolLinks(arrivals, nil)
}

// NewPoolLinks is NewPool with named shared links: every Resource.Link
// reference must name an entry of links, and every declared bandwidth or
// storage capacity must be non-negative and finite (zero means
// unconstrained).
func NewPoolLinks(arrivals []Arrival, links map[string]float64) (*Pool, error) {
	n := len(arrivals)
	if n == 0 {
		return nil, fmt.Errorf("grid: empty pool")
	}
	for name, bw := range links {
		if name == "" {
			return nil, fmt.Errorf("grid: shared link with empty name")
		}
		if !(bw > 0) || math.IsInf(bw, 0) {
			return nil, fmt.Errorf("grid: shared link %q has invalid bandwidth %g", name, bw)
		}
	}
	seen := make([]bool, n)
	for _, a := range arrivals {
		if a.Time < 0 || math.IsNaN(a.Time) {
			return nil, fmt.Errorf("grid: resource %q has invalid arrival time %g", a.Resource.Name, a.Time)
		}
		id := a.Resource.ID
		if id < 0 || int(id) >= n {
			return nil, fmt.Errorf("grid: resource %q has non-dense ID %d (pool size %d)", a.Resource.Name, id, n)
		}
		if seen[id] {
			return nil, fmt.Errorf("grid: duplicate resource ID %d", id)
		}
		seen[id] = true
		for _, f := range [...]struct {
			name string
			v    float64
		}{{"uplink", a.Resource.Up}, {"downlink", a.Resource.Down}, {"storage", a.Resource.Store}} {
			if f.v < 0 || math.IsNaN(f.v) || math.IsInf(f.v, 0) {
				return nil, fmt.Errorf("grid: resource %q has invalid %s %g", a.Resource.Name, f.name, f.v)
			}
		}
		if a.Resource.Link != "" {
			if _, ok := links[a.Resource.Link]; !ok {
				return nil, fmt.Errorf("grid: resource %q references unknown link %q", a.Resource.Name, a.Resource.Link)
			}
		}
	}
	sorted := make([]Arrival, n)
	copy(sorted, arrivals)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Time != sorted[j].Time {
			return sorted[i].Time < sorted[j].Time
		}
		return sorted[i].Resource.ID < sorted[j].Resource.ID
	})
	if sorted[0].Time != 0 {
		return nil, fmt.Errorf("grid: no resource available at time 0 (first arrival at %g)", sorted[0].Time)
	}
	var lk map[string]float64
	if len(links) > 0 {
		lk = make(map[string]float64, len(links))
		for name, bw := range links {
			lk[name] = bw
		}
	}
	return &Pool{arrivals: sorted, links: lk}, nil
}

// MustPool is NewPool that panics on error, for generator code paths whose
// construction guarantees validity.
func MustPool(arrivals []Arrival) *Pool {
	p, err := NewPool(arrivals)
	if err != nil {
		panic(err)
	}
	return p
}

// MustPoolLinks is NewPoolLinks that panics on error, for generator code
// paths whose construction guarantees validity.
func MustPoolLinks(arrivals []Arrival, links map[string]float64) *Pool {
	p, err := NewPoolLinks(arrivals, links)
	if err != nil {
		panic(err)
	}
	return p
}

// StaticPool builds a pool of n identical-arrival (time 0) resources named
// r1..rn. Convenient for tests and for classic static-HEFT scenarios.
func StaticPool(n int) *Pool {
	arr := make([]Arrival, n)
	for i := 0; i < n; i++ {
		arr[i] = Arrival{Time: 0, Resource: Resource{ID: ID(i), Name: fmt.Sprintf("r%d", i+1)}}
	}
	return MustPool(arr)
}

// Size returns the total number of resources that ever join the pool.
func (p *Pool) Size() int { return len(p.arrivals) }

// Links returns the pool's named shared links as a name → bandwidth
// snapshot (nil when none are declared).
func (p *Pool) Links() map[string]float64 {
	if len(p.links) == 0 {
		return nil
	}
	out := make(map[string]float64, len(p.links))
	for name, bw := range p.links {
		out[name] = bw
	}
	return out
}

// LinkBW returns the bandwidth of the named shared link (0 if unknown).
func (p *Pool) LinkBW(name string) float64 { return p.links[name] }

// WithLinks returns a copy of the pool with the given named-link
// bandwidths merged over the existing ones. Resources keep their Link
// references; new names become available for them to reference (the copy
// is re-validated, so an invalid bandwidth is rejected).
func (p *Pool) WithLinks(links map[string]float64) (*Pool, error) {
	merged := make(map[string]float64, len(p.links)+len(links))
	for name, bw := range p.links {
		merged[name] = bw
	}
	for name, bw := range links {
		merged[name] = bw
	}
	return NewPoolLinks(p.arrivals, merged)
}

// Arrivals returns all arrival events in time order. Shared slice; callers
// must not mutate.
func (p *Pool) Arrivals() []Arrival { return p.arrivals }

// ArrivalTime returns the time at which resource id joins the pool, or
// +Inf if the ID is unknown.
func (p *Pool) ArrivalTime(id ID) float64 {
	for _, a := range p.arrivals {
		if a.Resource.ID == id {
			return a.Time
		}
	}
	return math.Inf(1)
}

// AvailableAt returns the resources whose arrival time is <= t, in ID
// order. This is the resource set R a scheduler sees when planning at
// clock t.
func (p *Pool) AvailableAt(t float64) []Resource {
	var out []Resource
	for _, a := range p.arrivals {
		if a.Time <= t {
			out = append(out, a.Resource)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Initial returns the resources available at time 0.
func (p *Pool) Initial() []Resource { return p.AvailableAt(0) }

// ChangeTimes returns the distinct times > 0 at which the pool grows —
// exactly the run-time events the AHEFT planner subscribes to.
func (p *Pool) ChangeTimes() []float64 {
	var out []float64
	last := math.Inf(-1)
	for _, a := range p.arrivals {
		if a.Time > 0 && a.Time != last {
			out = append(out, a.Time)
			last = a.Time
		}
	}
	return out
}

// ArrivalsAt returns the resources that join exactly at time t.
func (p *Pool) ArrivalsAt(t float64) []Resource {
	var out []Resource
	for _, a := range p.arrivals {
		if a.Time == t {
			out = append(out, a.Resource)
		}
	}
	return out
}

// Resource returns the resource with the given ID, or false if unknown.
func (p *Pool) Resource(id ID) (Resource, bool) {
	for _, a := range p.arrivals {
		if a.Resource.ID == id {
			return a.Resource, true
		}
	}
	return Resource{}, false
}

// DynamicModel captures the paper's Table 2 resource-change parameters.
type DynamicModel struct {
	// Initial is R, the number of resources available at time 0.
	Initial int
	// Interval is Δ, the time between consecutive pool-change events. A
	// higher value means a less dynamic grid. Zero disables changes.
	Interval float64
	// ChangePct is δ, the fraction of the *initial* pool size added at each
	// change event (the paper measures change "compared with the initial
	// resource pool"). Each event adds max(1, round(δ·R)) resources.
	ChangePct float64
	// Horizon bounds how many change events are generated: events occur at
	// Δ, 2Δ, ... up to and including MaxEvents events. Workflows that
	// outlive the horizon simply see no further arrivals.
	MaxEvents int
}

// PerEvent returns the number of resources added per change event.
func (m DynamicModel) PerEvent() int {
	if m.Interval <= 0 || m.ChangePct <= 0 || m.MaxEvents <= 0 {
		return 0
	}
	k := int(math.Round(m.ChangePct * float64(m.Initial)))
	if k < 1 {
		k = 1
	}
	return k
}

// TotalResources returns the total number of resources the model ever
// creates (initial pool plus all arrivals).
func (m DynamicModel) TotalResources() int {
	n := m.Initial
	if per := m.PerEvent(); per > 0 {
		n += per * m.MaxEvents
	}
	return n
}

// Build materialises the model into a Pool. Resource names encode their
// provenance: r1..rR for the initial pool, then rK+ for arrivals.
func (m DynamicModel) Build() (*Pool, error) {
	if m.Initial <= 0 {
		return nil, fmt.Errorf("grid: DynamicModel.Initial must be positive, got %d", m.Initial)
	}
	total := m.TotalResources()
	arr := make([]Arrival, 0, total)
	id := ID(0)
	for i := 0; i < m.Initial; i++ {
		arr = append(arr, Arrival{Time: 0, Resource: Resource{ID: id, Name: fmt.Sprintf("r%d", id+1)}})
		id++
	}
	per := m.PerEvent()
	for ev := 1; ev <= m.MaxEvents && per > 0; ev++ {
		t := float64(ev) * m.Interval
		for i := 0; i < per; i++ {
			arr = append(arr, Arrival{Time: t, Resource: Resource{ID: id, Name: fmt.Sprintf("r%d+", id+1)}})
			id++
		}
	}
	return NewPool(arr)
}
