package schedule

import (
	"strings"
	"testing"
	"testing/quick"

	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/rng"
)

func TestAssignAndGet(t *testing.T) {
	s := New()
	a := Assignment{Job: 1, Resource: 0, Start: 5, Finish: 10}
	s.Assign(a)
	got, ok := s.Get(1)
	if !ok || got != a {
		t.Fatalf("Get = %+v,%v want %+v", got, ok, a)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if _, ok := s.Get(2); ok {
		t.Fatal("Get(2) should miss")
	}
}

func TestAssignReplacesAndRetimes(t *testing.T) {
	s := New()
	s.Assign(Assignment{Job: 1, Resource: 0, Start: 0, Finish: 10})
	s.Assign(Assignment{Job: 1, Resource: 2, Start: 20, Finish: 30})
	if got := s.MustGet(1); got.Resource != 2 || got.Start != 20 {
		t.Fatalf("reassignment not applied: %+v", got)
	}
	if tl := s.OnResource(0); len(tl) != 0 {
		t.Fatalf("old timeline entry left behind: %v", tl)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after replace", s.Len())
	}
}

func TestRemove(t *testing.T) {
	s := New()
	s.Assign(Assignment{Job: 1, Resource: 0, Start: 0, Finish: 10})
	s.Remove(1)
	if s.Len() != 0 || len(s.OnResource(0)) != 0 {
		t.Fatal("Remove left state behind")
	}
	s.Remove(99) // no-op
}

func TestTimelineSorted(t *testing.T) {
	s := New()
	s.Assign(Assignment{Job: 1, Resource: 0, Start: 20, Finish: 30})
	s.Assign(Assignment{Job: 2, Resource: 0, Start: 0, Finish: 10})
	s.Assign(Assignment{Job: 3, Resource: 0, Start: 10, Finish: 20})
	tl := s.OnResource(0)
	for i := 1; i < len(tl); i++ {
		if tl[i].Start < tl[i-1].Start {
			t.Fatalf("timeline unsorted: %v", tl)
		}
	}
}

func TestMakespan(t *testing.T) {
	s := New()
	if s.Makespan() != 0 {
		t.Fatal("empty makespan should be 0")
	}
	s.Assign(Assignment{Job: 1, Resource: 0, Start: 0, Finish: 10})
	s.Assign(Assignment{Job: 2, Resource: 1, Start: 5, Finish: 42})
	if s.Makespan() != 42 {
		t.Fatalf("Makespan = %g, want 42", s.Makespan())
	}
}

func TestEarliestStartAppend(t *testing.T) {
	s := New()
	s.Assign(Assignment{Job: 1, Resource: 0, Start: 0, Finish: 10})
	if got := s.EarliestStart(0, 0, 5, false); got != 10 {
		t.Fatalf("append after busy: got %g, want 10", got)
	}
	if got := s.EarliestStart(0, 15, 5, false); got != 15 {
		t.Fatalf("append with late ready: got %g, want 15", got)
	}
	if got := s.EarliestStart(5, 3, 5, false); got != 3 {
		t.Fatalf("empty resource: got %g, want 3", got)
	}
}

func TestEarliestStartInsertion(t *testing.T) {
	s := New()
	s.Assign(Assignment{Job: 1, Resource: 0, Start: 10, Finish: 20})
	s.Assign(Assignment{Job: 2, Resource: 0, Start: 30, Finish: 40})
	// Fits before the first assignment.
	if got := s.EarliestStart(0, 0, 10, true); got != 0 {
		t.Fatalf("gap before first: got %g, want 0", got)
	}
	// Ready too late for the head gap, fits the middle gap exactly.
	if got := s.EarliestStart(0, 15, 10, true); got != 20 {
		t.Fatalf("middle gap: got %g, want 20", got)
	}
	// Ready time inside the middle gap.
	if got := s.EarliestStart(0, 25, 5, true); got != 25 {
		t.Fatalf("ready in gap: got %g, want 25", got)
	}
	// Nothing fits: append.
	if got := s.EarliestStart(0, 0, 50, true); got != 40 {
		t.Fatalf("append: got %g, want 40", got)
	}
	// Without insertion the gaps are invisible.
	if got := s.EarliestStart(0, 0, 5, false); got != 40 {
		t.Fatalf("no-insertion: got %g, want 40", got)
	}
}

// TestEarliestStartNeverOverlaps is the core safety property of the slot
// search: whatever the history of assignments, placing a job at the
// returned start never overlaps an existing assignment on that resource.
func TestEarliestStartNeverOverlaps(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		s := New()
		// Build a random but valid timeline by always placing at the
		// earliest feasible slot.
		for j := 0; j < 30; j++ {
			ready := r.Uniform(0, 50)
			dur := r.Uniform(1, 10)
			res := grid.ID(r.IntN(3))
			start := s.EarliestStart(res, ready, dur, r.Float64() < 0.5)
			if start < ready {
				return false
			}
			a := Assignment{Job: dag.JobID(j), Resource: res, Start: start, Finish: start + dur}
			for _, b := range s.OnResource(res) {
				if a.Start < b.Finish && b.Start < a.Finish {
					return false // overlap
				}
			}
			s.Assign(a)
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAssignments(t *testing.T) {
	s := New()
	s.Assign(Assignment{Job: 2, Resource: 0, Start: 5, Finish: 6})
	s.Assign(Assignment{Job: 1, Resource: 1, Start: 5, Finish: 7})
	s.Assign(Assignment{Job: 3, Resource: 0, Start: 0, Finish: 1})
	as := s.Assignments()
	if len(as) != 3 || as[0].Job != 3 || as[1].Job != 1 || as[2].Job != 2 {
		t.Fatalf("Assignments order: %+v", as)
	}
	js := s.Jobs()
	if len(js) != 3 || js[0] != 1 || js[2] != 3 {
		t.Fatalf("Jobs order: %v", js)
	}
	rs := s.Resources()
	if len(rs) != 2 || rs[0] != 0 || rs[1] != 1 {
		t.Fatalf("Resources: %v", rs)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New()
	s.Assign(Assignment{Job: 1, Resource: 0, Start: 0, Finish: 10})
	c := s.Clone()
	c.Assign(Assignment{Job: 2, Resource: 0, Start: 10, Finish: 20})
	if s.Len() != 1 {
		t.Fatal("clone mutation leaked into original")
	}
	c.Remove(1)
	if _, ok := s.Get(1); !ok {
		t.Fatal("clone removal leaked into original")
	}
}

func TestAssignPanicsOnInvalidInterval(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative-duration interval")
		}
	}()
	s.Assign(Assignment{Job: 1, Resource: 0, Start: 10, Finish: 5})
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().MustGet(1)
}

// chainGraph builds a → b with edge weight 4.
func chainGraph(t *testing.T) *dag.Graph {
	t.Helper()
	g := dag.New("chain")
	a := g.AddJob("a", "")
	b := g.AddJob("b", "")
	g.MustEdge(a, b, 4)
	return g.MustValidate()
}

type fixedCost float64

func (f fixedCost) Comp(dag.JobID, grid.ID) float64 { return float64(f) }
func (f fixedCost) Comm(e dag.Edge, rFrom, rTo grid.ID) float64 {
	if rFrom == rTo {
		return 0
	}
	return e.Data
}

func TestValidateHappyPath(t *testing.T) {
	g := chainGraph(t)
	s := New()
	s.Assign(Assignment{Job: 0, Resource: 0, Start: 0, Finish: 10})
	s.Assign(Assignment{Job: 1, Resource: 1, Start: 14, Finish: 24})
	opts := ValidateOptions{Comp: fixedCost(10), Comm: fixedCost(10), Pool: grid.StaticPool(2)}
	if err := s.Validate(g, opts); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	g := chainGraph(t)
	pool := grid.StaticPool(2)

	// Missing job.
	s := New()
	s.Assign(Assignment{Job: 0, Resource: 0, Start: 0, Finish: 10})
	if err := s.Validate(g, ValidateOptions{}); err == nil {
		t.Error("missing job not caught")
	}

	// Overlap.
	s = New()
	s.Assign(Assignment{Job: 0, Resource: 0, Start: 0, Finish: 10})
	s.Assign(Assignment{Job: 1, Resource: 0, Start: 5, Finish: 15})
	if err := s.Validate(g, ValidateOptions{}); err == nil {
		t.Error("overlap not caught")
	}

	// Precedence + transfer violated (starts at 12 < 10+4).
	s = New()
	s.Assign(Assignment{Job: 0, Resource: 0, Start: 0, Finish: 10})
	s.Assign(Assignment{Job: 1, Resource: 1, Start: 12, Finish: 22})
	if err := s.Validate(g, ValidateOptions{Comm: fixedCost(10)}); err == nil {
		t.Error("precedence violation not caught")
	}

	// Wrong duration.
	s = New()
	s.Assign(Assignment{Job: 0, Resource: 0, Start: 0, Finish: 9})
	s.Assign(Assignment{Job: 1, Resource: 0, Start: 9, Finish: 19})
	if err := s.Validate(g, ValidateOptions{Comp: fixedCost(10)}); err == nil {
		t.Error("duration mismatch not caught")
	}

	// Starts before resource joins.
	late := grid.MustPool([]grid.Arrival{
		{Time: 0, Resource: grid.Resource{ID: 0}},
		{Time: 100, Resource: grid.Resource{ID: 1}},
	})
	s = New()
	s.Assign(Assignment{Job: 0, Resource: 0, Start: 0, Finish: 10})
	s.Assign(Assignment{Job: 1, Resource: 1, Start: 14, Finish: 24})
	if err := s.Validate(g, ValidateOptions{Pool: late}); err == nil {
		t.Error("pre-arrival start not caught")
	}
	_ = pool
}

func TestGantt(t *testing.T) {
	s := New()
	s.Assign(Assignment{Job: 0, Resource: 0, Start: 0, Finish: 50})
	s.Assign(Assignment{Job: 1, Resource: 1, Start: 50, Finish: 100})
	out := s.Gantt(40, nil, nil)
	if !strings.Contains(out, "r1") || !strings.Contains(out, "r2") {
		t.Fatalf("Gantt missing resource rows:\n%s", out)
	}
	if !strings.Contains(out, "n1") {
		t.Fatalf("Gantt missing job label:\n%s", out)
	}
	if New().Gantt(40, nil, nil) != "(empty schedule)\n" {
		t.Fatal("empty Gantt wrong")
	}
}

func TestString(t *testing.T) {
	s := New()
	s.Assign(Assignment{Job: 0, Resource: 0, Start: 0, Finish: 10})
	if !strings.Contains(s.String(), "makespan 10.000") {
		t.Fatalf("String output: %s", s)
	}
}

func TestDuration(t *testing.T) {
	a := Assignment{Start: 3, Finish: 10}
	if a.Duration() != 7 {
		t.Fatalf("Duration = %g", a.Duration())
	}
}
