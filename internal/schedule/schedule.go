// Package schedule represents workflow schedules: the mapping from jobs to
// (resource, start time, finish time) triples that the Planner produces and
// the Executor enacts.
//
// A Schedule keeps two synchronised views — by job, for dependence lookups,
// and by resource as a start-sorted timeline, for slot search. The timeline
// view supports HEFT's insertion-based policy: a job may be placed in an
// idle gap between two already-scheduled jobs when the gap is long enough.
package schedule

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"

	"aheft/internal/dag"
	"aheft/internal/grid"
)

// Assignment places one job on one resource for the half-open interval
// [Start, Finish).
type Assignment struct {
	Job      dag.JobID
	Resource grid.ID
	Start    float64
	Finish   float64
}

// Duration returns the assignment's length.
func (a Assignment) Duration() float64 { return a.Finish - a.Start }

// Transfer is one planned data-file movement: file File is staged from
// resource From to resource To over [Start, Finish) so that job Job's
// input is materialized before it runs. Transfers are produced only by
// data-aware planning passes (see internal/data); classic point-to-point
// schedules carry none.
type Transfer struct {
	Job      dag.JobID
	File     string
	From, To grid.ID
	Start    float64
	Finish   float64
}

// Schedule is a mutable mapping from jobs to assignments. The zero value is
// not usable; call New.
//
// Job IDs are dense (the dag package numbers jobs 0..n-1), so the by-job
// view is a slice indexed by JobID with Resource == grid.NoResource
// marking unassigned entries — every lookup is an array access, and
// building a schedule from a complete assignment list never hashes.
type Schedule struct {
	byJob []Assignment // indexed by JobID; Resource == grid.NoResource ⇒ unassigned
	n     int
	byRes map[grid.ID][]Assignment // each slice sorted by Start

	// transfers are the planned file stagings backing the assignments
	// (data-aware passes only); ordered by (Start, Job, File).
	transfers []Transfer
}

// New returns an empty schedule.
func New() *Schedule {
	return &Schedule{
		byRes: make(map[grid.ID][]Assignment),
	}
}

// grow extends the by-job view to cover job j.
func (s *Schedule) grow(j dag.JobID) {
	for len(s.byJob) <= int(j) {
		s.byJob = append(s.byJob, Assignment{Resource: grid.NoResource})
	}
}

// FromAssignments builds a schedule from a complete assignment list in
// one pass: the job map is sized up front and each resource timeline is
// collected then sorted once, instead of being maintained sorted across
// per-assignment inserts. This is how the scheduling kernel materialises
// its final result; it panics on invalid intervals or duplicate jobs,
// both of which the kernel rules out by construction.
func FromAssignments(as []Assignment) *Schedule {
	maxID := dag.JobID(-1)
	for i := range as {
		if as[i].Job > maxID {
			maxID = as[i].Job
		}
	}
	s := &Schedule{
		byJob: make([]Assignment, int(maxID)+1),
		byRes: make(map[grid.ID][]Assignment),
	}
	for j := range s.byJob {
		s.byJob[j].Resource = grid.NoResource
	}
	for _, a := range as {
		if a.Finish < a.Start || math.IsNaN(a.Start) || math.IsNaN(a.Finish) {
			panic(fmt.Sprintf("schedule: invalid interval [%g,%g) for job %d", a.Start, a.Finish, a.Job))
		}
		if s.byJob[a.Job].Resource != grid.NoResource {
			panic(fmt.Sprintf("schedule: duplicate assignment for job %d", a.Job))
		}
		s.byJob[a.Job] = a
		s.n++
		s.byRes[a.Resource] = append(s.byRes[a.Resource], a)
	}
	for _, tl := range s.byRes {
		slices.SortFunc(tl, func(a, b Assignment) int {
			switch {
			case a.Start != b.Start:
				if a.Start < b.Start {
					return -1
				}
				return 1
			case a.Job != b.Job:
				if a.Job < b.Job {
					return -1
				}
				return 1
			default:
				return 0
			}
		})
	}
	return s
}

// Len returns the number of assigned jobs.
func (s *Schedule) Len() int { return s.n }

// Assign adds or replaces the assignment for a job, keeping the resource
// timeline sorted. It panics on a negative-duration interval.
func (s *Schedule) Assign(a Assignment) {
	if a.Finish < a.Start || math.IsNaN(a.Start) || math.IsNaN(a.Finish) {
		panic(fmt.Sprintf("schedule: invalid interval [%g,%g) for job %d", a.Start, a.Finish, a.Job))
	}
	s.grow(a.Job)
	if old := s.byJob[a.Job]; old.Resource != grid.NoResource {
		s.removeFromTimeline(old)
	} else {
		s.n++
	}
	s.byJob[a.Job] = a
	tl := s.byRes[a.Resource]
	i := sort.Search(len(tl), func(k int) bool {
		if tl[k].Start != a.Start {
			return tl[k].Start > a.Start
		}
		return tl[k].Job > a.Job
	})
	tl = append(tl, Assignment{})
	copy(tl[i+1:], tl[i:])
	tl[i] = a
	s.byRes[a.Resource] = tl
}

// Remove deletes the assignment for a job, if present.
func (s *Schedule) Remove(job dag.JobID) {
	if a, ok := s.Get(job); ok {
		s.removeFromTimeline(a)
		s.byJob[job].Resource = grid.NoResource
		s.n--
	}
}

func (s *Schedule) removeFromTimeline(a Assignment) {
	tl := s.byRes[a.Resource]
	for i := range tl {
		if tl[i].Job == a.Job {
			copy(tl[i:], tl[i+1:])
			s.byRes[a.Resource] = tl[:len(tl)-1]
			return
		}
	}
}

// Get returns the assignment for a job, if any.
func (s *Schedule) Get(job dag.JobID) (Assignment, bool) {
	if int(job) < 0 || int(job) >= len(s.byJob) || s.byJob[job].Resource == grid.NoResource {
		return Assignment{}, false
	}
	return s.byJob[job], true
}

// MustGet returns the assignment for a job and panics if it is missing —
// used on paths where the scheduler has already guaranteed coverage.
func (s *Schedule) MustGet(job dag.JobID) Assignment {
	a, ok := s.Get(job)
	if !ok {
		panic(fmt.Sprintf("schedule: job %d not assigned", job))
	}
	return a
}

// OnResource returns the start-sorted timeline for one resource. Shared
// slice; callers must not mutate.
func (s *Schedule) OnResource(r grid.ID) []Assignment { return s.byRes[r] }

// Resources returns the IDs of resources with at least one assignment, in
// ascending order.
func (s *Schedule) Resources() []grid.ID {
	out := make([]grid.ID, 0, len(s.byRes))
	for r, tl := range s.byRes {
		if len(tl) > 0 {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Jobs returns the assigned jobs in ascending JobID order.
func (s *Schedule) Jobs() []dag.JobID {
	out := make([]dag.JobID, 0, s.n)
	for j := range s.byJob {
		if s.byJob[j].Resource != grid.NoResource {
			out = append(out, dag.JobID(j))
		}
	}
	return out
}

// Assignments returns all assignments ordered by (Start, Job).
func (s *Schedule) Assignments() []Assignment {
	out := make([]Assignment, 0, s.n)
	for j := range s.byJob {
		if s.byJob[j].Resource != grid.NoResource {
			out = append(out, s.byJob[j])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Job < out[j].Job
	})
	return out
}

// Makespan returns the maximum finish time over all assignments — the
// paper's makespan = max{SFT(n_exit)} when the schedule covers a whole DAG
// (exit jobs necessarily finish last).
func (s *Schedule) Makespan() float64 {
	m := 0.0
	for j := range s.byJob {
		if a := &s.byJob[j]; a.Resource != grid.NoResource && a.Finish > m {
			m = a.Finish
		}
	}
	return m
}

// SetTransfers replaces the schedule's planned file stagings; the slice is
// sorted by (Start, Job, File) so the plan view is deterministic.
func (s *Schedule) SetTransfers(ts []Transfer) {
	s.transfers = ts
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Start != ts[j].Start {
			return ts[i].Start < ts[j].Start
		}
		if ts[i].Job != ts[j].Job {
			return ts[i].Job < ts[j].Job
		}
		return ts[i].File < ts[j].File
	})
}

// Transfers returns the planned file stagings (nil for classic schedules).
// Shared slice; callers must not mutate.
func (s *Schedule) Transfers() []Transfer { return s.transfers }

// Clone returns a deep copy.
func (s *Schedule) Clone() *Schedule {
	c := New()
	c.byJob = append([]Assignment(nil), s.byJob...)
	c.n = s.n
	for r, tl := range s.byRes {
		c.byRes[r] = append([]Assignment(nil), tl...)
	}
	if s.transfers != nil {
		c.transfers = append([]Transfer(nil), s.transfers...)
	}
	return c
}

// EarliestStart finds the earliest start time >= ready at which a task of
// the given duration fits on resource r.
//
// With insertion enabled this implements HEFT's insertion-based policy:
// idle gaps between consecutive assignments are considered, so a short job
// can slot in front of longer ones without delaying them. With insertion
// disabled the job can only go after the last assignment (the simpler
// "non-insertion" policy the ablation benchmarks compare against).
func (s *Schedule) EarliestStart(r grid.ID, ready, duration float64, insertion bool) float64 {
	tl := s.byRes[r]
	if len(tl) == 0 {
		return ready
	}
	if !insertion {
		last := tl[len(tl)-1].Finish
		if last > ready {
			return last
		}
		return ready
	}
	// Gap before the first assignment.
	if first := tl[0].Start; ready+duration <= first {
		return ready
	}
	for i := 0; i < len(tl)-1; i++ {
		gapStart := tl[i].Finish
		gapEnd := tl[i+1].Start
		start := math.Max(gapStart, ready)
		if start+duration <= gapEnd {
			return start
		}
	}
	return math.Max(tl[len(tl)-1].Finish, ready)
}

// CompCoster reports the expected duration of a job on a resource; it is a
// narrow view of cost.Estimator that keeps this package free of an import
// cycle while still allowing duration checks in Validate.
type CompCoster interface {
	Comp(job dag.JobID, res grid.ID) float64
}

// CommCoster reports the expected transfer time of an edge between two
// placements.
type CommCoster interface {
	Comm(e dag.Edge, rFrom, rTo grid.ID) float64
}

// ValidateOptions tunes Validate for the two kinds of schedules the system
// produces: pristine initial schedules (strict) and mid-execution
// reschedules whose early assignments reflect history rather than plans.
type ValidateOptions struct {
	// CheckDurations verifies Finish-Start == Comp(job, resource) when a
	// CompCoster is supplied.
	Comp CompCoster
	// Comm, when non-nil, verifies precedence including transfer delays:
	// start(j) >= finish(i) + Comm(edge, r_i, r_j).
	Comm CommCoster
	// Pool, when non-nil, verifies no assignment starts before its
	// resource joined the grid.
	Pool *grid.Pool
}

// Validate checks structural soundness of a complete schedule for g:
// every job assigned, no overlapping assignments on any resource, and —
// according to opts — duration, precedence and resource-availability
// consistency. It returns the first violation found.
func (s *Schedule) Validate(g *dag.Graph, opts ValidateOptions) error {
	for _, j := range g.Jobs() {
		if _, ok := s.Get(j.ID); !ok {
			return fmt.Errorf("schedule: job %s unassigned", j.Name)
		}
	}
	if s.n != g.Len() {
		return fmt.Errorf("schedule: %d assignments for %d jobs", s.n, g.Len())
	}
	for r, tl := range s.byRes {
		for i := 1; i < len(tl); i++ {
			// 1e-9 slack: start times are computed as (ready+w)−w by some
			// schedulers, which rounds a few ulps below the finish time of
			// the predecessor slot.
			if tl[i].Start < tl[i-1].Finish-1e-9 {
				return fmt.Errorf("schedule: overlap on r%d: job %d [%g,%g) vs job %d [%g,%g)",
					r, tl[i-1].Job, tl[i-1].Start, tl[i-1].Finish, tl[i].Job, tl[i].Start, tl[i].Finish)
			}
		}
	}
	if opts.Pool != nil {
		for j := range s.byJob {
			a := s.byJob[j]
			if a.Resource == grid.NoResource {
				continue
			}
			if at := opts.Pool.ArrivalTime(a.Resource); a.Start < at {
				return fmt.Errorf("schedule: job %d starts at %g on r%d which only joins at %g",
					a.Job, a.Start, a.Resource, at)
			}
		}
	}
	if opts.Comp != nil {
		for j := range s.byJob {
			a := s.byJob[j]
			if a.Resource == grid.NoResource {
				continue
			}
			want := opts.Comp.Comp(a.Job, a.Resource)
			if diff := math.Abs(a.Duration() - want); diff > 1e-9 {
				return fmt.Errorf("schedule: job %d duration %g != cost %g on r%d", a.Job, a.Duration(), want, a.Resource)
			}
		}
	}
	if opts.Comm != nil {
		for _, j := range g.Jobs() {
			aj := s.byJob[j.ID]
			for _, e := range g.Preds(j.ID) {
				ap := s.byJob[e.From]
				ready := ap.Finish + opts.Comm.Comm(e, ap.Resource, aj.Resource)
				if aj.Start+1e-9 < ready {
					return fmt.Errorf("schedule: job %s starts at %g before input from %s ready at %g",
						g.Job(j.ID).Name, aj.Start, g.Job(e.From).Name, ready)
				}
			}
		}
	}
	return nil
}

// Gantt renders the schedule as a text Gantt chart, one row per resource,
// with columns scaled to width characters. nameOf maps job IDs to labels;
// resName maps resource IDs to labels (pass nil for defaults).
func (s *Schedule) Gantt(width int, nameOf func(dag.JobID) string, resName func(grid.ID) string) string {
	if width <= 0 {
		width = 80
	}
	if nameOf == nil {
		nameOf = func(j dag.JobID) string { return fmt.Sprintf("n%d", j+1) }
	}
	if resName == nil {
		resName = func(r grid.ID) string { return fmt.Sprintf("r%d", r+1) }
	}
	mk := s.Makespan()
	if mk == 0 {
		return "(empty schedule)\n"
	}
	scale := float64(width) / mk
	var b strings.Builder
	for _, r := range s.Resources() {
		fmt.Fprintf(&b, "%-6s|", resName(r))
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, a := range s.byRes[r] {
			lo := int(a.Start * scale)
			hi := int(a.Finish * scale)
			if hi > width {
				hi = width
			}
			if hi <= lo {
				hi = lo + 1
				if hi > width {
					lo, hi = width-1, width
				}
			}
			label := nameOf(a.Job)
			for i := lo; i < hi && i < width; i++ {
				row[i] = '#'
			}
			for i, c := range []byte(label) {
				if lo+i < hi && lo+i < width {
					row[lo+i] = c
				}
			}
		}
		b.Write(row)
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "%-6s0%*s%.4g\n", "", width-1, "t=", mk)
	return b.String()
}

// String summarises the schedule for debugging: one line per assignment in
// start order.
func (s *Schedule) String() string {
	var b strings.Builder
	for _, a := range s.Assignments() {
		fmt.Fprintf(&b, "job %-4d r%-3d [%8.3f, %8.3f)\n", a.Job, a.Resource, a.Start, a.Finish)
	}
	fmt.Fprintf(&b, "makespan %.3f\n", s.Makespan())
	return b.String()
}
