// Package admission is the daemon's intake fairness layer: a bounded,
// weighted fair queue that sits between HTTP submission and the shard
// workers. Before it existed the shard queue was a plain FIFO channel —
// one flooding tenant filled it and every other tenant ate the 429s.
//
// The controller runs two-level deficit round-robin with unit cost (one
// submission = one service unit):
//
//   - the outer level rotates over the three priority classes
//     (high/normal/low) with fixed weights 4:2:1 — a higher class gets a
//     larger service *share* under backlog, never an absolute priority,
//     so low-class work cannot starve and a low-class flood cannot
//     invert a high-class submission by more than one DRR round;
//   - the inner level rotates over the backlogged tenants of the class,
//     weighted by the tenant's submitted wire weight (0 means 1), so over
//     any window in which a set of tenants stays backlogged each
//     tenant's service count tracks its weighted share to within one
//     maximum-weight quantum (the classic DRR fairness bound).
//
// Backlog is bounded per tenant and in total; a rejected enqueue carries
// an honest Retry-After derived from the controller's measured drain
// rate and the tenant's weighted share of it — under sustained overload
// the advice grows with the queue instead of parroting "1".
//
// The controller also detects overload for the two-speed planning path:
// a dequeue taken while the backlog is at or above the fast-path depth
// is marked, telling the shard to admit the workflow with the cheap
// greedy placement and upgrade it to the full plan asynchronously.
package admission

import (
	"fmt"
	"math"
	"sync"
	"time"

	"aheft/internal/wire"
)

// Class weights for the outer DRR level. Shares, not priorities: under
// full backlog high:normal:low service is 4:2:1.
const (
	ClassWeightHigh   = 4
	ClassWeightNormal = 2
	ClassWeightLow    = 1
)

// classIndex maps a wire class to its dense index (and canonical order
// for metrics). ClassNames mirrors it.
var ClassNames = [3]string{wire.ClassHigh, wire.ClassNormal, wire.ClassLow}

// ClassIndex returns the dense index of a wire admission class ("" means
// normal); ok is false for unknown classes.
func ClassIndex(class string) (int, bool) {
	switch class {
	case wire.ClassHigh:
		return 0, true
	case "", wire.ClassNormal:
		return 1, true
	case wire.ClassLow:
		return 2, true
	default:
		return 0, false
	}
}

var classWeights = [3]float64{ClassWeightHigh, ClassWeightNormal, ClassWeightLow}

// Config tunes one controller (one per shard).
type Config struct {
	// PerTenantBacklog caps one tenant's queued submissions; at the cap
	// further enqueues for that tenant are rejected (HTTP 429 upstream).
	// 0 means 64; negative means unbounded.
	PerTenantBacklog int
	// TotalBacklog caps the whole controller; 0 means 1024, negative
	// unbounded.
	TotalBacklog int
	// FastPathDepth is the backlog depth at or above which a dequeued
	// submission is marked for the fast greedy-plan path. 0 means 8;
	// negative disables fast-path marking.
	FastPathDepth int
	// Now is the clock (tests inject a fake one); nil means time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.PerTenantBacklog == 0 {
		c.PerTenantBacklog = 64
	}
	if c.TotalBacklog == 0 {
		c.TotalBacklog = 1024
	}
	if c.FastPathDepth == 0 {
		c.FastPathDepth = 8
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Item is one queued submission.
type Item struct {
	// ID is the workflow ID (metrics and WAL journaling key).
	ID string
	// Tenant scopes the fair queue; Class and Weight come from the
	// submission's wire options (already validated).
	Tenant string
	Class  string
	Weight float64
	// Value is the opaque payload the shard dequeues (the server's
	// workflow object).
	Value any

	enqueuedAt time.Time
}

// Dequeued is one admission decision: the item plus how it was served.
type Dequeued struct {
	Item Item
	// FastPath reports the backlog was at or above the fast-path depth
	// when this item was served: admit with the cheap plan, upgrade
	// asynchronously.
	FastPath bool
	// Queued is how long the item waited in the controller.
	Queued time.Duration
}

// BacklogError is a bounded-backlog rejection; RetryAfter is the
// drain-rate-derived advice in whole seconds (≥ 1).
type BacklogError struct {
	Tenant     string
	Depth      int
	RetryAfter int
	Total      bool // the *controller* was full, not the tenant's queue
}

func (e *BacklogError) Error() string {
	if e.Total {
		return fmt.Sprintf("admission: backlog full (%d queued); retry after %ds", e.Depth, e.RetryAfter)
	}
	return fmt.Sprintf("admission: tenant %q backlog full (%d queued); retry after %ds", e.Tenant, e.Depth, e.RetryAfter)
}

// ErrClosed rejects enqueues after Close (drain).
var ErrClosed = fmt.Errorf("admission: controller closed")

// tenantQueue is one inner-DRR flow.
type tenantQueue struct {
	name    string
	weight  float64 // latest submitted weight (0-weight submissions count as 1)
	deficit float64
	items   []Item
	head    int
}

func (q *tenantQueue) depth() int { return len(q.items) - q.head }

func (q *tenantQueue) push(it Item) { q.items = append(q.items, it) }

func (q *tenantQueue) pop() Item {
	it := q.items[q.head]
	q.items[q.head] = Item{} // release the payload for GC
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return it
}

// classQueue is one outer-DRR flow: a ring of backlogged tenant queues.
type classQueue struct {
	deficit float64
	ring    []*tenantQueue // backlogged tenants, round-robin order
	idx     int
	tenants map[string]*tenantQueue // all tenants ever seen (keeps weights)
	depth   int
}

// Controller is one shard's admission queue. All methods are safe for
// concurrent use; Dequeue blocks.
type Controller struct {
	mu   sync.Mutex
	cond *sync.Cond
	cfg  Config

	classes [3]classQueue
	classIx int
	total   int

	closed bool // no new enqueues; Dequeue drains the rest
	killed bool // Dequeue returns immediately (force shutdown)

	// notify is the select-loop face of the controller: a capacity-1
	// signal channel that receives after an Enqueue and is closed by
	// Close/Kill, so a single-goroutine consumer can fold admission into
	// an existing select (see Ready/TryDequeue).
	notify chan struct{}

	// Drain-rate EWMA (dequeues per second) for Retry-After.
	rate    float64
	lastDeq time.Time
}

// New builds a controller.
func New(cfg Config) *Controller {
	c := &Controller{cfg: cfg.withDefaults(), notify: make(chan struct{}, 1)}
	c.cond = sync.NewCond(&c.mu)
	for i := range c.classes {
		c.classes[i].tenants = make(map[string]*tenantQueue)
	}
	return c
}

// Enqueue adds a submission to its tenant's queue, rejecting on bounded
// backlog (a *BacklogError with drain-derived Retry-After) or after
// Close (ErrClosed).
func (c *Controller) Enqueue(it Item) error {
	ci, ok := ClassIndex(it.Class)
	if !ok {
		return fmt.Errorf("admission: unknown class %q", it.Class)
	}
	if it.Weight <= 0 {
		it.Weight = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.killed {
		return ErrClosed
	}
	cq := &c.classes[ci]
	q := cq.tenants[it.Tenant]
	if q == nil {
		q = &tenantQueue{name: it.Tenant}
		cq.tenants[it.Tenant] = q
	}
	if max := c.cfg.TotalBacklog; max > 0 && c.total >= max {
		return &BacklogError{Tenant: it.Tenant, Depth: c.total, RetryAfter: c.retryAfterLocked(ci, q, c.total), Total: true}
	}
	if max := c.cfg.PerTenantBacklog; max > 0 && q.depth() >= max {
		return &BacklogError{Tenant: it.Tenant, Depth: q.depth(), RetryAfter: c.retryAfterLocked(ci, q, q.depth())}
	}
	q.weight = it.Weight
	it.enqueuedAt = c.cfg.Now()
	if q.depth() == 0 {
		// Tenant becomes backlogged: join the class ring with a fresh
		// deficit (DRR credit does not survive idleness).
		q.deficit = 0
		cq.ring = append(cq.ring, q)
	}
	q.push(it)
	cq.depth++
	c.total++
	c.cond.Signal()
	select {
	case c.notify <- struct{}{}:
	default:
	}
	return nil
}

// Ready returns the controller's signal channel: it receives after an
// Enqueue (and after a TryDequeue that left work behind) and is closed
// by Close/Kill. A single-goroutine consumer selects on it and serves
// one TryDequeue per wakeup, so admission interleaves fairly with the
// consumer's other channels instead of monopolising its loop.
func (c *Controller) Ready() <-chan struct{} { return c.notify }

// TryDequeue is the non-blocking Dequeue: it serves the next submission
// in two-level DRR order, or reports ok=false when nothing is queued
// (or the controller was killed). When items remain after the take, the
// signal channel is re-armed so the consumer's next select fires again.
func (c *Controller) TryDequeue() (d Dequeued, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed || c.total == 0 {
		return Dequeued{}, false
	}
	fast := c.cfg.FastPathDepth > 0 && c.total >= c.cfg.FastPathDepth
	it := c.nextLocked()
	now := c.cfg.Now()
	c.observeDrainLocked(now)
	if c.total > 0 && !c.closed && !c.killed {
		select {
		case c.notify <- struct{}{}:
		default:
		}
	}
	return Dequeued{Item: it, FastPath: fast, Queued: now.Sub(it.enqueuedAt)}, true
}

// Drained reports that the controller will never yield another item:
// closed and empty, or killed. A select-loop consumer uses this to stop
// watching Ready once the post-close drain completes.
func (c *Controller) Drained() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed || (c.closed && c.total == 0)
}

// Depth returns the queued submission count (a gauge; cheap, no
// per-tenant breakdown — see Stats for that).
func (c *Controller) Depth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Saturated reports the total backlog cap is reached: any Enqueue of
// any tenant would be rejected right now. Always false when the total
// bound is disabled.
func (c *Controller) Saturated() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.TotalBacklog > 0 && c.total >= c.cfg.TotalBacklog
}

// Dequeue blocks for the next submission in two-level DRR order. ok is
// false when the controller is closed and drained (graceful shutdown)
// or killed (forced shutdown) — the consuming pump should exit.
func (c *Controller) Dequeue() (d Dequeued, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.killed {
			return Dequeued{}, false
		}
		if c.total > 0 {
			fast := c.cfg.FastPathDepth > 0 && c.total >= c.cfg.FastPathDepth
			it := c.nextLocked()
			now := c.cfg.Now()
			c.observeDrainLocked(now)
			return Dequeued{Item: it, FastPath: fast, Queued: now.Sub(it.enqueuedAt)}, true
		}
		if c.closed {
			return Dequeued{}, false
		}
		c.cond.Wait()
	}
}

// nextLocked serves one unit of two-level DRR. Caller holds the lock and
// guarantees total > 0.
func (c *Controller) nextLocked() Item {
	for {
		cq := &c.classes[c.classIx]
		if cq.depth == 0 {
			cq.deficit = 0 // idle classes accrue no credit
			c.classIx = (c.classIx + 1) % len(c.classes)
			cq = &c.classes[c.classIx]
			cq.deficit += classWeights[c.classIx]
			continue
		}
		if cq.deficit < 1 {
			c.classIx = (c.classIx + 1) % len(c.classes)
			next := &c.classes[c.classIx]
			next.deficit += classWeights[c.classIx]
			continue
		}
		cq.deficit--
		it := cq.nextTenantLocked()
		cq.depth--
		c.total--
		return it
	}
}

// nextTenantLocked serves one unit of the class's inner tenant DRR.
// Caller guarantees cq.depth > 0.
func (cq *classQueue) nextTenantLocked() Item {
	for {
		q := cq.ring[cq.idx]
		if q.depth() == 0 {
			// Defensive: ring members are backlogged by construction, but
			// an empty one just leaves; the next slides into this slot.
			cq.ring = append(cq.ring[:cq.idx], cq.ring[cq.idx+1:]...)
			if cq.idx >= len(cq.ring) {
				cq.idx = 0
			}
			if len(cq.ring) > 0 {
				cq.ring[cq.idx].deficit += cq.ring[cq.idx].weight
			}
			continue
		}
		if q.deficit < 1 {
			cq.idx = (cq.idx + 1) % len(cq.ring)
			next := cq.ring[cq.idx]
			next.deficit += next.weight
			continue
		}
		q.deficit--
		it := q.pop()
		if q.depth() == 0 {
			cq.ring = append(cq.ring[:cq.idx], cq.ring[cq.idx+1:]...)
			if len(cq.ring) > 0 && cq.idx >= len(cq.ring) {
				cq.idx = 0
			}
		}
		return it
	}
}

// observeDrainLocked folds one dequeue into the drain-rate EWMA.
func (c *Controller) observeDrainLocked(now time.Time) {
	if !c.lastDeq.IsZero() {
		if dt := now.Sub(c.lastDeq).Seconds(); dt > 0 {
			inst := 1 / dt
			if c.rate == 0 {
				c.rate = inst
			} else {
				c.rate = 0.8*c.rate + 0.2*inst
			}
		}
	}
	c.lastDeq = now
}

// retryAfterLocked derives honest backpressure advice: the time for the
// tenant's backlog to drain at its weighted share of the measured drain
// rate, clamped to [1, 60] seconds. With no drain observed yet (cold
// controller) the depth itself, in seconds, is the only honest guess.
func (c *Controller) retryAfterLocked(ci int, q *tenantQueue, depth int) int {
	clamp := func(s float64) int {
		if s < 1 || math.IsNaN(s) {
			return 1
		}
		if s > 60 {
			return 60
		}
		return int(math.Ceil(s))
	}
	if c.rate <= 0 {
		return clamp(float64(depth))
	}
	// The tenant's share of the drain: its weight within its class times
	// the class's share across the backlogged classes.
	w := q.weight
	if w <= 0 {
		w = 1
	}
	tenantSum := 0.0
	for _, tq := range c.classes[ci].ring {
		tenantSum += tq.weight
	}
	if q.depth() == 0 || tenantSum <= 0 {
		tenantSum += w // the rejected submission would have joined the ring
	}
	classSum := 0.0
	for i := range c.classes {
		if c.classes[i].depth > 0 || i == ci {
			classSum += classWeights[i]
		}
	}
	share := (w / tenantSum) * (classWeights[ci] / classSum)
	if share <= 0 {
		return 60
	}
	return clamp(float64(depth) / (c.rate * share))
}

// RetryAfter returns the current drain-derived advice for a tenant
// outside the enqueue path (the server's pre-intake overload check).
func (c *Controller) RetryAfter(tenant, class string) int {
	ci, ok := ClassIndex(class)
	if !ok {
		ci = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	q := c.classes[ci].tenants[tenant]
	if q == nil {
		q = &tenantQueue{name: tenant, weight: 1}
	}
	depth := q.depth()
	if depth == 0 {
		depth = c.total
	}
	if depth == 0 {
		return 1
	}
	return c.retryAfterLocked(ci, q, depth)
}

// Close stops intake; queued submissions still drain through Dequeue,
// which reports ok=false once empty. For graceful shutdown.
func (c *Controller) Close() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.notify)
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// Kill stops intake and service immediately; DrainAll returns whatever
// was still queued (fair order) for the caller to cancel. For forced
// shutdown.
func (c *Controller) Kill() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.notify)
	}
	c.killed = true
	c.mu.Unlock()
	c.cond.Broadcast()
}

// DrainAll removes and returns every queued submission in fair-queue
// order. Only meaningful after Kill (Dequeue no longer competes).
func (c *Controller) DrainAll() []Item {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Item
	for c.total > 0 {
		out = append(out, c.nextLocked())
	}
	return out
}

// Snapshot is the controller's metrics view.
type Snapshot struct {
	// Total is the queued submission count; PerTenant its per-tenant
	// breakdown (backlogged tenants only).
	Total     int
	PerTenant map[string]int
	// DrainRate is the EWMA dequeue rate in submissions per second.
	DrainRate float64
}

// Stats returns the current queue state for /metrics.
func (c *Controller) Stats() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{Total: c.total, PerTenant: make(map[string]int), DrainRate: c.rate}
	for i := range c.classes {
		for name, q := range c.classes[i].tenants {
			if d := q.depth(); d > 0 {
				s.PerTenant[name] += d
			}
		}
	}
	return s
}
