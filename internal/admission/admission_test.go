package admission

import (
	"fmt"
	"math"
	"testing"
	"time"

	"aheft/internal/rng"
	"aheft/internal/wire"
)

// fakeClock is a deterministic, manually advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestController(cfg Config) (*Controller, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	cfg.Now = clk.now
	return New(cfg), clk
}

func enqueueN(t *testing.T, c *Controller, tenant, class string, weight float64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		err := c.Enqueue(Item{
			ID: fmt.Sprintf("%s-%d", tenant, i), Tenant: tenant, Class: class, Weight: weight,
		})
		if err != nil {
			t.Fatalf("enqueue %s #%d: %v", tenant, i, err)
		}
	}
}

// TestWFQProportionality is the property test of the DRR invariant: over
// any admission window during which a set of same-class tenants stays
// backlogged, each tenant's service count is within one maximum-weight
// submission quantum of its weighted proportional share. Weights are
// drawn from a seeded generator over several trials, so the property is
// exercised across weight spreads, not one hand-picked table.
func TestWFQProportionality(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 20; trial++ {
		nTenants := 2 + int(r.Uniform(0, 5)) // 2..6
		weights := make([]float64, nTenants)
		maxW, sumW := 0.0, 0.0
		for i := range weights {
			weights[i] = math.Round(r.Uniform(0.5, 8)*2) / 2 // 0.5 steps in [0.5, 8]
			sumW += weights[i]
			if weights[i] > maxW {
				maxW = weights[i]
			}
		}
		c, _ := newTestController(Config{PerTenantBacklog: -1, TotalBacklog: -1, FastPathDepth: -1})
		// Everyone backlogged deeply enough to stay backlogged through the
		// whole window.
		window := 40 * nTenants
		for i, w := range weights {
			enqueueN(t, c, fmt.Sprintf("t%d", i), "", w, window)
		}
		served := make(map[string]int)
		for i := 0; i < window; i++ {
			d, ok := c.Dequeue()
			if !ok {
				t.Fatalf("trial %d: controller drained early at %d", trial, i)
			}
			served[d.Item.Tenant]++
		}
		for i, w := range weights {
			name := fmt.Sprintf("t%d", i)
			expect := float64(window) * w / sumW
			if dev := math.Abs(float64(served[name]) - expect); dev > maxW+1 {
				t.Fatalf("trial %d: tenant %s (w=%g) served %d of %d, expected %.1f±%.1f (weights %v)",
					trial, name, w, served[name], window, expect, maxW+1, weights)
			}
		}
	}
}

// TestStarvationFreedom: neither a featherweight tenant inside a class
// nor the low class under a high-class flood waits unboundedly.
func TestStarvationFreedom(t *testing.T) {
	t.Run("light tenant vs heavy tenant", func(t *testing.T) {
		c, _ := newTestController(Config{PerTenantBacklog: -1, TotalBacklog: -1, FastPathDepth: -1})
		enqueueN(t, c, "whale", "", wire.MaxWeight, 5000)
		enqueueN(t, c, "shrimp", "", 0.5, 1)
		// The shrimp's deficit tops up by 0.5 per ring visit: it must be
		// served within two full DRR rounds, i.e. while the whale has at
		// most ~2·MaxWeight services.
		for i := 0; i < 2*wire.MaxWeight+4; i++ {
			d, ok := c.Dequeue()
			if !ok {
				t.Fatal("drained early")
			}
			if d.Item.Tenant == "shrimp" {
				return
			}
		}
		t.Fatal("light tenant starved behind heavy tenant")
	})
	t.Run("low class vs high flood", func(t *testing.T) {
		c, _ := newTestController(Config{PerTenantBacklog: -1, TotalBacklog: -1, FastPathDepth: -1})
		enqueueN(t, c, "flood", wire.ClassHigh, 1, 1000)
		enqueueN(t, c, "patient", wire.ClassLow, 1, 1)
		// One full class round serves at most high(4)+normal(2) units
		// before low's quantum of 1 comes due.
		for i := 0; i < ClassWeightHigh+ClassWeightNormal+ClassWeightLow+2; i++ {
			d, ok := c.Dequeue()
			if !ok {
				t.Fatal("drained early")
			}
			if d.Item.Tenant == "patient" {
				return
			}
		}
		t.Fatal("low class starved under high-class flood")
	})
}

// TestPriorityInversion: table test that a flood in a lower class cannot
// hold up a single higher-class submission beyond one DRR class round.
func TestPriorityInversion(t *testing.T) {
	roundLen := ClassWeightHigh + ClassWeightNormal + ClassWeightLow
	cases := []struct {
		name        string
		floodClass  string
		victimClass string
		within      int
	}{
		{"low flood vs high submission", wire.ClassLow, wire.ClassHigh, roundLen},
		{"low flood vs normal submission", wire.ClassLow, wire.ClassNormal, roundLen},
		{"normal flood vs high submission", wire.ClassNormal, wire.ClassHigh, roundLen},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, _ := newTestController(Config{PerTenantBacklog: -1, TotalBacklog: -1, FastPathDepth: -1})
			enqueueN(t, c, "flood", tc.floodClass, wire.MaxWeight, 500)
			enqueueN(t, c, "victim", tc.victimClass, 1, 1)
			for i := 0; i < tc.within; i++ {
				d, ok := c.Dequeue()
				if !ok {
					t.Fatal("drained early")
				}
				if d.Item.Tenant == "victim" {
					return
				}
			}
			t.Fatalf("%s: victim not served within %d dequeues", tc.name, tc.within)
		})
	}
}

// TestRetryAfterGrowsUnderOverload is the 429 regression test: the
// advice must be derived from drain rate and queue depth, growing as a
// sustained overload deepens the backlog — not a fixed constant.
func TestRetryAfterGrowsUnderOverload(t *testing.T) {
	c, clk := newTestController(Config{PerTenantBacklog: 200, TotalBacklog: -1, FastPathDepth: -1})
	// Establish a measured drain rate of one submission per 2 seconds.
	enqueueN(t, c, "t", "", 1, 20)
	for i := 0; i < 20; i++ {
		clk.advance(2 * time.Second)
		if _, ok := c.Dequeue(); !ok {
			t.Fatal("drained early")
		}
	}
	// Sustained overload: backlog deepens, nothing drains.
	var last int
	var samples []int
	for depth := 10; depth <= 160; depth *= 2 {
		for c.Stats().Total < depth {
			err := c.Enqueue(Item{ID: fmt.Sprintf("o-%d", c.Stats().Total), Tenant: "t", Weight: 1})
			if err != nil {
				t.Fatalf("enqueue at depth %d: %v", c.Stats().Total, err)
			}
		}
		ra := c.RetryAfter("t", "")
		samples = append(samples, ra)
		if ra < last {
			t.Fatalf("Retry-After shrank under deepening overload: %v", samples)
		}
		last = ra
	}
	if samples[0] == samples[len(samples)-1] {
		t.Fatalf("Retry-After did not grow under sustained overload: %v", samples)
	}
	// At ~0.5/s drain and 160 queued, the advice must not be the old
	// hardcoded "1".
	if last < 2 {
		t.Fatalf("Retry-After stuck at %d despite 160-deep backlog at 0.5/s drain", last)
	}
	// A rejected enqueue carries the same honest advice.
	for {
		err := c.Enqueue(Item{ID: "x", Tenant: "t", Weight: 1})
		if err != nil {
			be, ok := err.(*BacklogError)
			if !ok {
				t.Fatalf("unexpected rejection type: %v", err)
			}
			if be.RetryAfter < 2 {
				t.Fatalf("rejection Retry-After = %d, want drain-derived value > 1", be.RetryAfter)
			}
			break
		}
	}
}

// TestBoundedBacklog: per-tenant and total caps reject with typed errors
// and the caps hold exactly.
func TestBoundedBacklog(t *testing.T) {
	c, _ := newTestController(Config{PerTenantBacklog: 3, TotalBacklog: 5, FastPathDepth: -1})
	enqueueN(t, c, "a", "", 1, 3)
	err := c.Enqueue(Item{ID: "a-over", Tenant: "a"})
	be, ok := err.(*BacklogError)
	if !ok || be.Total || be.Tenant != "a" || be.Depth != 3 {
		t.Fatalf("per-tenant rejection = %v", err)
	}
	enqueueN(t, c, "b", "", 1, 2)
	err = c.Enqueue(Item{ID: "c-over", Tenant: "c"})
	be, ok = err.(*BacklogError)
	if !ok || !be.Total || be.Depth != 5 {
		t.Fatalf("total rejection = %v", err)
	}
	if s := c.Stats(); s.Total != 5 || s.PerTenant["a"] != 3 || s.PerTenant["b"] != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestFastPathMarking: dequeues are marked fast-path exactly while the
// backlog is at or above the configured depth.
func TestFastPathMarking(t *testing.T) {
	c, _ := newTestController(Config{PerTenantBacklog: -1, TotalBacklog: -1, FastPathDepth: 4})
	enqueueN(t, c, "t", "", 1, 6)
	var marks []bool
	for i := 0; i < 6; i++ {
		d, ok := c.Dequeue()
		if !ok {
			t.Fatal("drained early")
		}
		marks = append(marks, d.FastPath)
	}
	want := []bool{true, true, true, false, false, false}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("fast-path marks = %v, want %v", marks, want)
		}
	}
}

// TestCloseDrainsThenStops: Close rejects new work but serves the rest;
// Kill stops service immediately and DrainAll yields the leftovers in
// fair order.
func TestCloseDrainsThenStops(t *testing.T) {
	c, _ := newTestController(Config{FastPathDepth: -1})
	enqueueN(t, c, "t", "", 1, 3)
	c.Close()
	if err := c.Enqueue(Item{ID: "late", Tenant: "t"}); err != ErrClosed {
		t.Fatalf("enqueue after close = %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := c.Dequeue(); !ok {
			t.Fatalf("dequeue %d after close failed", i)
		}
	}
	if _, ok := c.Dequeue(); ok {
		t.Fatal("drained controller still serving")
	}

	k, _ := newTestController(Config{FastPathDepth: -1})
	enqueueN(t, k, "a", "", 1, 2)
	enqueueN(t, k, "b", "", 1, 2)
	k.Kill()
	if _, ok := k.Dequeue(); ok {
		t.Fatal("killed controller still serving")
	}
	left := k.DrainAll()
	if len(left) != 4 {
		t.Fatalf("DrainAll returned %d items, want 4", len(left))
	}
	if s := k.Stats(); s.Total != 0 {
		t.Fatalf("stats after DrainAll = %+v", s)
	}
}

// TestDequeueBlocksUntilEnqueue: a waiting pump wakes on new work.
func TestDequeueBlocksUntilEnqueue(t *testing.T) {
	c, _ := newTestController(Config{FastPathDepth: -1})
	got := make(chan string, 1)
	go func() {
		d, ok := c.Dequeue()
		if ok {
			got <- d.Item.ID
		} else {
			got <- ""
		}
	}()
	time.Sleep(10 * time.Millisecond)
	if err := c.Enqueue(Item{ID: "wf-1", Tenant: "t"}); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-got:
		if id != "wf-1" {
			t.Fatalf("dequeued %q", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Dequeue did not wake on Enqueue")
	}
}

// TestUnknownClassRejected guards the intake contract.
func TestUnknownClassRejected(t *testing.T) {
	c, _ := newTestController(Config{})
	if err := c.Enqueue(Item{ID: "x", Tenant: "t", Class: "urgent"}); err == nil {
		t.Fatal("unknown class accepted")
	}
}

// TestSelectLoopContract exercises the Ready/TryDequeue face: every
// enqueued item is eventually observable through a select on Ready, the
// signal re-arms while items remain, and Close ends the loop exactly
// once the post-close drain completes.
func TestSelectLoopContract(t *testing.T) {
	c, _ := newTestController(Config{})
	for i := 0; i < 5; i++ {
		enqueueN(t, c, "t", wire.ClassNormal, 1, 1)
	}
	got := 0
	ready := c.Ready()
	for ready != nil {
		select {
		case _, ok := <-ready:
			if d, served := c.TryDequeue(); served {
				got++
				_ = d
			}
			if !ok || c.Drained() {
				if c.Drained() {
					ready = nil
				}
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("select loop stalled with %d served", got)
		}
		if got == 3 {
			// Close mid-drain: the remaining two must still be served.
			c.Close()
		}
	}
	if got != 5 {
		t.Fatalf("served %d of 5", got)
	}
	if _, ok := c.TryDequeue(); ok {
		t.Fatal("TryDequeue yielded after drained")
	}
}

// TestSaturatedAndDepth: the gauges agree with the bounds.
func TestSaturatedAndDepth(t *testing.T) {
	c, _ := newTestController(Config{TotalBacklog: 3, FastPathDepth: -1})
	if c.Saturated() {
		t.Fatal("empty controller saturated")
	}
	enqueueN(t, c, "t", wire.ClassNormal, 1, 3)
	if !c.Saturated() {
		t.Fatal("full controller not saturated")
	}
	if c.Depth() != 3 {
		t.Fatalf("depth = %d", c.Depth())
	}
	if err := c.Enqueue(Item{ID: "x", Tenant: "t"}); err == nil {
		t.Fatal("enqueue past total bound accepted")
	}
	c.Kill()
	if !c.Drained() {
		t.Fatal("killed controller not drained")
	}
}
