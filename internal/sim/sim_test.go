package sim

import (
	"math"
	"testing"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var got []float64
	for _, tt := range []float64{5, 1, 3, 2, 4} {
		tt := tt
		s.At(tt, PriDefault, func() { got = append(got, tt) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("events out of order: %v", got)
		}
	}
	if s.Now() != 5 {
		t.Fatalf("Now = %g, want 5", s.Now())
	}
}

func TestPriorityBreaksTimeTies(t *testing.T) {
	s := New()
	var got []string
	s.At(10, PriDispatch, func() { got = append(got, "dispatch") })
	s.At(10, PriJobFinish, func() { got = append(got, "finish") })
	s.At(10, PriResourceChange, func() { got = append(got, "arrival") })
	s.At(10, PriTransferDone, func() { got = append(got, "transfer") })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"finish", "transfer", "arrival", "dispatch"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tie order = %v, want %v", got, want)
		}
	}
}

func TestSequenceBreaksFullTies(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(1, PriDefault, func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("insertion order not preserved: %v", got)
		}
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := New()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			s.After(1, PriDefault, chain)
		}
	}
	s.At(0, PriDefault, chain)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 5 || s.Now() != 4 {
		t.Fatalf("count=%d now=%g, want 5 and 4", count, s.Now())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	s := New()
	s.At(5, PriDefault, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling into the past")
			}
		}()
		s.At(1, PriDefault, func() {})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNonFiniteTimePanics(t *testing.T) {
	s := New()
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for t=%v", bad)
				}
			}()
			s.At(bad, PriDefault, func() {})
		}()
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	s.After(-1, PriDefault, func() {})
}

func TestStopHaltsLoop(t *testing.T) {
	s := New()
	ran := 0
	s.At(1, PriDefault, func() { ran++; s.Stop() })
	s.At(2, PriDefault, func() { ran++ })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d events, want 1 (stopped)", ran)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	// Run again resumes with pending events.
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("resume: ran = %d, want 2", ran)
	}
}

func TestStopSkipsSameTimestampEvents(t *testing.T) {
	s := New()
	var got []string
	s.At(1, PriJobFinish, func() { got = append(got, "finish"); s.Stop() })
	s.At(1, PriResourceChange, func() { got = append(got, "arrival") })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "finish" {
		t.Fatalf("got %v, want just the finish before Stop", got)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New()
	ran := 0
	s.At(1, PriDefault, func() { ran++ })
	s.At(10, PriDefault, func() { ran++ })
	if err := s.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
}

func TestMaxStepsGuard(t *testing.T) {
	s := New()
	s.MaxSteps = 10
	var loop func()
	loop = func() { s.After(1, PriDefault, loop) }
	s.At(0, PriDefault, loop)
	if err := s.Run(); err == nil {
		t.Fatal("expected MaxSteps error for runaway loop")
	}
}

func TestStepsCounter(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.At(float64(i), PriDefault, func() {})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Steps() != 7 {
		t.Fatalf("Steps = %d, want 7", s.Steps())
	}
}

func BenchmarkEventLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		var next func()
		n := 0
		next = func() {
			n++
			if n < 1000 {
				s.After(1, PriDefault, next)
			}
		}
		s.At(0, PriDefault, next)
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
