// Package sim is a small deterministic discrete-event simulation kernel:
// the substrate this reproduction uses in place of the SimJava framework
// the paper ran its dynamic Min-Min baseline on.
//
// The kernel provides exactly what the paper's experiments require — an
// event queue with a logical clock ("the variable clock is used as logical
// clock to measure the time span of DAG execution") — with one addition the
// paper implies but does not state: total determinism. Events are ordered
// by (time, priority, sequence number), so simultaneous events fire in a
// well-defined order and every run of an experiment with the same seed
// produces bit-identical results.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Priority orders events that share a timestamp: lower fires first. The
// executors use this to pin down simultaneous-event semantics: work that
// completes at time t (job finishes, transfer arrivals) is visible to a
// resource-arrival event at t, which in turn is visible to any dispatch
// decision at t — matching the planner's snapshot convention that a job
// with finish time exactly equal to the rescheduling clock counts as
// finished.
type Priority int

// Conventional priorities used by the executors. Callers may use any ints.
const (
	PriJobFinish      Priority = 0  // job completions first
	PriTransferDone   Priority = 10 // then file-transfer completions
	PriResourceChange Priority = 20 // then pool changes (and reschedules)
	PriDispatch       Priority = 30 // then dispatch decisions
	PriDefault        Priority = 50
)

type event struct {
	time float64
	prio Priority
	seq  uint64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator is a discrete-event loop. The zero value is ready to use; Now
// starts at 0.
type Simulator struct {
	pq      eventHeap
	now     float64
	seq     uint64
	stopped bool
	steps   uint64
	// MaxSteps guards against runaway simulations (a scheduling bug that
	// endlessly re-posts events). Zero means no limit.
	MaxSteps uint64
}

// New returns a Simulator with its clock at 0.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulated time.
func (s *Simulator) Now() float64 { return s.now }

// Steps returns the number of events executed so far.
func (s *Simulator) Steps() uint64 { return s.steps }

// At schedules fn to run at absolute time t with the given priority. It
// panics if t is in the past or not a finite number: scheduling into the
// past is always a logic bug worth failing loudly on.
func (s *Simulator) At(t float64, prio Priority, fn func()) {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: event scheduled at non-finite time %g", t))
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: t=%g < now=%g", t, s.now))
	}
	s.seq++
	heap.Push(&s.pq, &event{time: t, prio: prio, seq: s.seq, fn: fn})
}

// After schedules fn to run delay time units from now.
func (s *Simulator) After(delay float64, prio Priority, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", delay))
	}
	s.At(s.now+delay, prio, fn)
}

// Stop halts the event loop after the currently executing event returns.
// Pending events are preserved.
func (s *Simulator) Stop() { s.stopped = true }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.pq) }

// Run executes events in order until the queue drains or Stop is called.
// It returns an error if MaxSteps is exceeded.
func (s *Simulator) Run() error { return s.RunUntil(math.Inf(1)) }

// RunUntil executes events with time <= horizon. The clock is left at the
// time of the last executed event (or untouched if none ran).
func (s *Simulator) RunUntil(horizon float64) error {
	s.stopped = false
	for len(s.pq) > 0 && !s.stopped {
		if s.pq[0].time > horizon {
			return nil
		}
		e := heap.Pop(&s.pq).(*event)
		s.now = e.time
		s.steps++
		if s.MaxSteps > 0 && s.steps > s.MaxSteps {
			return fmt.Errorf("sim: exceeded MaxSteps=%d at t=%g (runaway event loop?)", s.MaxSteps, s.now)
		}
		e.fn()
	}
	return nil
}
