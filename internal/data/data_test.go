package data

import (
	"math"
	"strings"
	"testing"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/schedule"
)

// testPool builds the channel-shape fixture: r0 (uplink 10, link L),
// r1 (downlink 5, link L), r2 (link M only), r3 and r4 unconstrained.
func testPool(t *testing.T) *grid.Pool {
	t.Helper()
	return grid.MustPoolLinks([]grid.Arrival{
		{Time: 0, Resource: grid.Resource{ID: 0, Name: "r0", Up: 10, Link: "L"}},
		{Time: 0, Resource: grid.Resource{ID: 1, Name: "r1", Down: 5, Link: "L"}},
		{Time: 0, Resource: grid.Resource{ID: 2, Name: "r2", Link: "M"}},
		{Time: 0, Resource: grid.Resource{ID: 3, Name: "r3"}},
		{Time: 0, Resource: grid.Resource{ID: 4, Name: "r4"}},
	}, map[string]float64{"L": 4, "M": 8})
}

func TestValidateRejections(t *testing.T) {
	g := dag.New("t")
	a := g.AddJob("a", "op")
	b := g.AddJob("b", "op")
	g.MustFileEdge(a, b, 1, "known")
	graph := g.MustValidate()

	cases := []struct {
		name string
		set  Set
		g    *dag.Graph
		pool int
		max  int
		want string
	}{
		{"empty ID", Set{Files: []File{{ID: "", Size: 1}}}, nil, 0, 0, "empty ID"},
		{"long ID", Set{Files: []File{{ID: strings.Repeat("x", MaxIDLen+1), Size: 1}}}, nil, 0, 0, "longer"},
		{"duplicate ID", Set{Files: []File{{ID: "f", Size: 1}, {ID: "f", Size: 2}}}, nil, 0, 0, "duplicate"},
		{"zero size", Set{Files: []File{{ID: "f", Size: 0}}}, nil, 0, 0, "invalid size"},
		{"negative size", Set{Files: []File{{ID: "f", Size: -3}}}, nil, 0, 0, "invalid size"},
		{"inf size", Set{Files: []File{{ID: "f", Size: math.Inf(1)}}}, nil, 0, 0, "invalid size"},
		{"nan size", Set{Files: []File{{ID: "f", Size: math.NaN()}}}, nil, 0, 0, "invalid size"},
		{"negative host", Set{Files: []File{{ID: "f", Size: 1, Hosts: []grid.ID{-1}}}}, nil, 0, 0, "unknown resource"},
		{"host out of range", Set{Files: []File{{ID: "f", Size: 1, Hosts: []grid.ID{2}}}}, nil, 2, 0, "unknown resource"},
		{"duplicate host", Set{Files: []File{{ID: "f", Size: 1, Hosts: []grid.ID{0, 0}}}}, nil, 2, 0, "twice"},
		{"over limit", Set{Files: []File{{ID: "f", Size: 1}, {ID: "g", Size: 1}}}, nil, 0, 1, "exceed limit"},
		{"negative default bw", Set{DefaultBW: -1, Files: []File{{ID: "f", Size: 1}}}, nil, 0, 0, "invalid default bandwidth"},
		{"nan default bw", Set{DefaultBW: math.NaN(), Files: []File{{ID: "f", Size: 1}}}, nil, 0, 0, "invalid default bandwidth"},
		{"undeclared edge file", Set{Files: []File{{ID: "other", Size: 1}}}, graph, 0, 0, "undeclared file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.set.Validate(tc.g, tc.pool, tc.max)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}

	// The happy path: declared file referenced by the edge, hosts in range,
	// out-of-range host check skipped at poolSize 0.
	ok := Set{Files: []File{{ID: "known", Size: 2, Hosts: []grid.ID{99}}}}
	if err := ok.Validate(graph, 0, 0); err != nil {
		t.Fatalf("valid catalog rejected: %v", err)
	}
}

func TestModelChannels(t *testing.T) {
	pool := testPool(t)
	m, err := NewModel(&Set{Files: []File{{ID: "f", Size: 8, Hosts: []grid.ID{1}}}}, pool, nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Channel layout: links first in name order, then per-arrival declared
	// uplinks and downlinks — stable names the ledger and GridStatus key on.
	wantNames := []string{"link:L", "link:M", "up:0", "down:1"}
	wantBW := []float64{4, 8, 10, 5}
	if m.NumChannels() != len(wantNames) {
		t.Fatalf("NumChannels = %d, want %d", m.NumChannels(), len(wantNames))
	}
	for c, want := range wantNames {
		if m.ChannelName(c) != want || m.ChannelBW(c) != wantBW[c] {
			t.Fatalf("channel %d = %s@%g, want %s@%g", c, m.ChannelName(c), m.ChannelBW(c), want, wantBW[c])
		}
	}

	chNames := func(src, dst grid.ID) []string {
		idx := m.AppendChannels(src, dst, nil)
		out := make([]string, len(idx))
		for i, c := range idx {
			out[i] = m.ChannelName(c)
		}
		return out
	}
	cases := []struct {
		src, dst grid.ID
		want     []string
	}{
		{0, 0, nil}, // co-located: no channels
		{0, 1, []string{"up:0", "down:1", "link:L"}}, // shared link counted once
		{0, 2, []string{"up:0", "link:L", "link:M"}}, // distinct links both counted
		{3, 0, []string{"link:L"}},                   // entering site L crosses its link
		{3, 1, []string{"down:1", "link:L"}},
		{0, 3, []string{"up:0", "link:L"}},
		{3, 4, nil}, // fully unmodelled path
	}
	for _, tc := range cases {
		got := chNames(tc.src, tc.dst)
		if len(got) != len(tc.want) {
			t.Fatalf("AppendChannels(%d,%d) = %v, want %v", tc.src, tc.dst, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("AppendChannels(%d,%d) = %v, want %v", tc.src, tc.dst, got, tc.want)
			}
		}
	}
}

func TestEffBWAndCosts(t *testing.T) {
	pool := testPool(t)
	set := &Set{Files: []File{{ID: "f", Size: 8, Hosts: []grid.ID{1}}}}
	m, err := NewModel(set, pool, nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	// EffBW is the min over every declared constraint on the path.
	if bw := m.EffBW(0, 1); bw != 4 { // min(up 10, down 5, link L 4)
		t.Fatalf("EffBW(0,1) = %g, want 4", bw)
	}
	if bw := m.EffBW(0, 2); bw != 4 { // min(up 10, L 4, M 8)
		t.Fatalf("EffBW(0,2) = %g, want 4", bw)
	}
	if bw := m.EffBW(2, 3); bw != 8 { // only link M constrains
		t.Fatalf("EffBW(2,3) = %g, want 8", bw)
	}
	// Unmodelled path: +Inf bandwidth, zero duration.
	if bw := m.EffBW(3, 4); !math.IsInf(bw, 1) {
		t.Fatalf("EffBW(3,4) = %g, want +Inf", bw)
	}
	if d := m.Duration(0, 3, 4); d != 0 {
		t.Fatalf("Duration over unmodelled path = %g, want 0", d)
	}
	if d := m.Duration(0, 0, 0); d != 0 {
		t.Fatalf("co-located Duration = %g, want 0", d)
	}
	if d := m.Duration(0, 0, 2); d != 2 { // 8 / min(10, 4, 8)
		t.Fatalf("Duration(f, 0, 2) = %g, want 2", d)
	}

	// StaticComm zeroes pre-staged destinations; NominalComm averages the
	// declared channel capacities when no default is set.
	if c := m.StaticComm(0, 0, 1); c != 0 {
		t.Fatalf("StaticComm to pre-staged host = %g, want 0", c)
	}
	if c := m.StaticComm(0, 2, 2); c != 0 {
		t.Fatalf("co-located StaticComm = %g, want 0", c)
	}
	if c := m.StaticComm(0, 0, 2); c != 2 {
		t.Fatalf("StaticComm(f, 0, 2) = %g, want 2", c)
	}
	if c := m.NominalComm(0); c != 8/6.75 { // mean(4, 8, 10, 5) = 6.75
		t.Fatalf("NominalComm = %g, want %g", c, 8/6.75)
	}

	// DefaultBW becomes both the unconstrained baseline and the nominal
	// reference.
	m2, err := NewModel(&Set{DefaultBW: 2, Files: set.Files}, pool, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bw := m2.EffBW(3, 4); bw != 2 {
		t.Fatalf("EffBW with DefaultBW = %g, want 2", bw)
	}
	if c := m2.NominalComm(0); c != 4 {
		t.Fatalf("NominalComm with DefaultBW = %g, want 4", c)
	}

	// A pool with no declared capacity at all falls back to reference
	// bandwidth 1.
	bare := grid.MustPool([]grid.Arrival{
		{Time: 0, Resource: grid.Resource{ID: 0, Name: "a"}},
		{Time: 0, Resource: grid.Resource{ID: 1, Name: "b"}},
	})
	m3, err := NewModel(&Set{Files: set.Files}, bare, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c := m3.NominalComm(0); c != 8 {
		t.Fatalf("NominalComm on bare pool = %g, want 8", c)
	}

	// PreStaged and Store tolerate out-of-range resources.
	if m.PreStaged(0, grid.ID(99)) || m.Store(grid.ID(99)) != 0 {
		t.Fatal("out-of-range resource not treated as absent")
	}
}

// TestRetimeSerializesAndReuses hand-checks the referee: transfers over
// one shared link serialize append-only in topo order, a staged replica
// is reused by later consumers on the same resource, and non-file edges
// keep the base estimator's cost.
func TestRetimeSerializesAndReuses(t *testing.T) {
	g := dag.New("retime")
	j0 := g.AddJob("prep", "prep")
	j1 := g.AddJob("c1", "c")
	j2 := g.AddJob("c2", "c")
	j3 := g.AddJob("c3", "c")
	j4 := g.AddJob("c4", "c")
	g.MustFileEdge(j0, j1, 1, "db")
	g.MustFileEdge(j0, j2, 1, "db")
	g.MustFileEdge(j0, j3, 1, "x")
	g.MustEdge(j0, j4, 7)
	graph := g.MustValidate()

	pool := grid.MustPoolLinks([]grid.Arrival{
		{Time: 0, Resource: grid.Resource{ID: 0, Name: "src"}},
		{Time: 0, Resource: grid.Resource{ID: 1, Name: "dst", Link: "l"}},
	}, map[string]float64{"l": 2})
	set := &Set{Files: []File{{ID: "db", Size: 4}, {ID: "x", Size: 2}}}
	m, err := NewModel(set, pool, graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	table := cost.MustTable([][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}})

	s := schedule.New()
	s.Assign(schedule.Assignment{Job: j0, Resource: 0, Start: 0, Finish: 1})
	for _, j := range []dag.JobID{j1, j2, j3, j4} {
		s.Assign(schedule.Assignment{Job: j, Resource: 1, Start: 0, Finish: 1})
	}

	// Topo order is ascending job ID. j1: db ships at t=1 for 2 → staged
	// at 3, finishes 4. j2 reuses the staged replica (ready 3) but waits
	// for the resource: 4→5. j3: x serializes on link:l behind db (3→4),
	// runs 5→6. j4's plain edge costs base.Comm = 7: runs 8→9.
	if mk := Retime(graph, s, m, cost.Exact(table)); mk != 9 {
		t.Fatalf("Retime = %g, want 9", mk)
	}

	// Pre-staging db on the destination removes its transfer: j1 runs at
	// its precedence floor, and x's transfer no longer queues behind db.
	staged := &Set{Files: []File{{ID: "db", Size: 4, Hosts: []grid.ID{1}}, {ID: "x", Size: 2}}}
	ms, err := NewModel(staged, pool, graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	// j1 1→2, j2 2→3, j3: x ships 1→2, runs 3→4; j4 8→9 still dominates.
	if mk := Retime(graph, s, ms, cost.Exact(table)); mk != 9 {
		t.Fatalf("Retime pre-staged = %g, want 9", mk)
	}

	// Everything on one resource: no transfers, pure compute serialization
	// behind the precedence floor.
	mono := schedule.New()
	for i, j := range []dag.JobID{j0, j1, j2, j3, j4} {
		mono.Assign(schedule.Assignment{Job: j, Resource: 0, Start: float64(i), Finish: float64(i) + 1})
	}
	if mk := Retime(graph, mono, m, cost.Exact(table)); mk != 5 {
		t.Fatalf("Retime co-located = %g, want 5", mk)
	}
}
