package data

import (
	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/schedule"
)

// Retime replays a schedule's placement decisions under the true data
// semantics and returns the makespan they would actually achieve: jobs
// keep their assigned resources and durations, but every file edge pays
// size ÷ effective bandwidth, transfers over the same channel serialize
// (append-only, in topological order), pre-staged and already-staged
// replicas are free, and one staged copy per (file, resource) is reused
// across edges. Non-file edges cost base.Comm as before.
//
// This is how the data-oblivious baseline is scored honestly: plan with
// the classic point-to-point estimator, then Retime the result under the
// model the data-aware planner optimised against directly.
func Retime(g *dag.Graph, s *schedule.Schedule, m *Model, base cost.Estimator) float64 {
	order, err := g.TopoOrder()
	if err != nil {
		return s.Makespan()
	}
	resFree := make(map[grid.ID]float64)
	chFree := make([]float64, m.NumChannels())
	finish := make([]float64, g.Len())
	avail := make(map[[2]int]float64, m.NumFiles()) // (file, res) → staged-at
	var chBuf []int
	mk := 0.0
	for _, j := range order {
		a, ok := s.Get(j)
		if !ok {
			continue
		}
		ready := 0.0
		for _, e := range g.Preds(j) {
			src := s.MustGet(e.From).Resource
			pf := finish[e.From]
			arr := pf
			f := m.Index(e.File)
			switch {
			case f < 0:
				if src != a.Resource {
					arr = pf + base.Comm(e, src, a.Resource)
				}
			case src == a.Resource || m.PreStaged(f, a.Resource):
				// replica already where the consumer runs
			default:
				key := [2]int{f, int(a.Resource)}
				if t, staged := avail[key]; staged {
					if t > arr {
						arr = t
					}
					break
				}
				d := m.Duration(f, src, a.Resource)
				t := pf
				chBuf = m.AppendChannels(src, a.Resource, chBuf[:0])
				for _, c := range chBuf {
					if chFree[c] > t {
						t = chFree[c]
					}
				}
				for _, c := range chBuf {
					chFree[c] = t + d
				}
				avail[key] = t + d
				arr = t + d
			}
			if arr > ready {
				ready = arr
			}
		}
		start := ready
		if free := resFree[a.Resource]; free > start {
			start = free
		}
		fin := start + a.Duration()
		resFree[a.Resource] = fin
		finish[j] = fin
		if fin > mk {
			mk = fin
		}
	}
	return mk
}
