// Package data models workflow data files and the capacity-limited
// infrastructure that moves them: per-resource uplink/downlink bandwidth,
// named shared links, and attached storage. It is the catalog half of the
// data-aware scheduling path — the kernel consumes a Model to derive edge
// communication cost from file size ÷ effective bandwidth, to serialize
// concurrent transfers over the same channel, and to zero the cost of
// inputs already materialized on a resource (file reuse).
//
// The paper's Eq. 1–3 model treats communication as a bare edge weight
// over infinite link capacity; the workloads it evaluates (BLAST
// databases, WIEN2K case files) are dominated by staging named files over
// real links. This package is the bridge: edges optionally name a file
// (dag.Edge.File), submissions declare the file catalog (Set), and the
// pool declares the capacities (grid.Resource.Up/Down/Link/Store,
// grid.Pool links). With no catalog bound, nothing here runs and every
// schedule is bit-identical to the classic model.
package data

import (
	"fmt"
	"math"
	"sort"

	"aheft/internal/dag"
	"aheft/internal/grid"
)

// MaxIDLen bounds file-ID length, mirroring the wire layer's hostile-input
// discipline.
const MaxIDLen = 200

// File is one named data product: a unique ID, its size in data units
// (the same units as grid bandwidths' numerator), and the resources that
// already hold a replica before the workflow starts (a pre-staged BLAST
// database, say). An edge naming this file is satisfied on a host in
// Hosts as soon as its producer finishes — no transfer.
type File struct {
	ID    string    `json:"id"`
	Size  float64   `json:"size"`
	Hosts []grid.ID `json:"hosts,omitempty"`
}

// Set is the file catalog of one submission. DefaultBW is the baseline
// point-to-point bandwidth applied when neither endpoint declares a
// tighter constraint; zero means "unconstrained" (transfers over fully
// unmodelled paths take zero time — consistent with the grid layer's
// "zero means unmodelled" convention).
type Set struct {
	DefaultBW float64 `json:"bw,omitempty"`
	Files     []File  `json:"files"`
}

// ByID returns the file with the given ID.
func (s *Set) ByID(id string) (File, bool) {
	for _, f := range s.Files {
		if f.ID == id {
			return f, true
		}
	}
	return File{}, false
}

// Validate checks the catalog against its graph and pool size: unique,
// non-empty, bounded file IDs; positive finite sizes; host references in
// [0, poolSize); at most maxFiles entries (0 disables the bound); and —
// when g is non-nil — every edge file reference resolving to a declared
// file. poolSize 0 skips the host range check (no pool bound yet).
func (s *Set) Validate(g *dag.Graph, poolSize, maxFiles int) error {
	if maxFiles > 0 && len(s.Files) > maxFiles {
		return fmt.Errorf("data: %d files exceed limit %d", len(s.Files), maxFiles)
	}
	if s.DefaultBW < 0 || math.IsNaN(s.DefaultBW) || math.IsInf(s.DefaultBW, 0) {
		return fmt.Errorf("data: invalid default bandwidth %g", s.DefaultBW)
	}
	seen := make(map[string]bool, len(s.Files))
	for _, f := range s.Files {
		if f.ID == "" {
			return fmt.Errorf("data: file with empty ID")
		}
		if len(f.ID) > MaxIDLen {
			return fmt.Errorf("data: file ID longer than %d bytes", MaxIDLen)
		}
		if seen[f.ID] {
			return fmt.Errorf("data: duplicate file %q", f.ID)
		}
		seen[f.ID] = true
		if !(f.Size > 0) || math.IsInf(f.Size, 0) {
			return fmt.Errorf("data: file %q has invalid size %g", f.ID, f.Size)
		}
		hosts := make(map[grid.ID]bool, len(f.Hosts))
		for _, h := range f.Hosts {
			if h < 0 || (poolSize > 0 && int(h) >= poolSize) {
				return fmt.Errorf("data: file %q hosted on unknown resource %d", f.ID, h)
			}
			if hosts[h] {
				return fmt.Errorf("data: file %q lists host %d twice", f.ID, h)
			}
			hosts[h] = true
		}
	}
	if g != nil {
		for _, j := range g.Jobs() {
			for _, e := range g.Preds(j.ID) {
				if e.File != "" && !seen[e.File] {
					return fmt.Errorf("data: edge (%s,%s) references undeclared file %q",
						g.Job(e.From).Name, g.Job(e.To).Name, e.File)
				}
			}
		}
	}
	return nil
}

// Model binds a file catalog to a concrete pool: it precomputes the dense
// channel index (one channel per declared uplink, downlink and shared
// link), the per-pair effective bandwidth, and the pre-staged replica map,
// so the kernel's placement inner loop reads flat slices.
//
// Channel names are stable and self-describing — "up:<resID>",
// "down:<resID>", "link:<name>" — and double as the keys the occupancy
// ledger and GridStatus report transfer reservations under.
type Model struct {
	set  *Set
	pool *grid.Pool
	idx  map[string]int // file ID → index

	nRes                 int
	up, down, store      []float64 // per resource; 0 = unconstrained
	upCh, downCh, linkCh []int     // per resource → channel index or -1

	chName []string
	chBW   []float64

	staged []bool // [file*nRes+res]: pre-staged replica present
	refBW  float64
}

// NewModel validates set against pool and builds the bound model.
func NewModel(set *Set, pool *grid.Pool, g *dag.Graph, maxFiles int) (*Model, error) {
	if set == nil || pool == nil {
		return nil, fmt.Errorf("data: NewModel requires a catalog and a pool")
	}
	if err := set.Validate(g, pool.Size(), maxFiles); err != nil {
		return nil, err
	}
	n := pool.Size()
	m := &Model{
		set: set, pool: pool, idx: make(map[string]int, len(set.Files)),
		nRes: n,
		up:   make([]float64, n), down: make([]float64, n), store: make([]float64, n),
		upCh: make([]int, n), downCh: make([]int, n), linkCh: make([]int, n),
		staged: make([]bool, len(set.Files)*n),
	}
	for i, f := range set.Files {
		m.idx[f.ID] = i
		for _, h := range f.Hosts {
			m.staged[i*n+int(h)] = true
		}
	}
	linkIdx := make(map[string]int)
	links := pool.Links()
	names := make([]string, 0, len(links))
	for name := range links {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		linkIdx[name] = len(m.chName)
		m.chName = append(m.chName, "link:"+name)
		m.chBW = append(m.chBW, links[name])
	}
	for _, a := range pool.Arrivals() {
		r := a.Resource
		i := int(r.ID)
		m.up[i], m.down[i], m.store[i] = r.Up, r.Down, r.Store
		m.upCh[i], m.downCh[i], m.linkCh[i] = -1, -1, -1
		if r.Up > 0 {
			m.upCh[i] = len(m.chName)
			m.chName = append(m.chName, fmt.Sprintf("up:%d", i))
			m.chBW = append(m.chBW, r.Up)
		}
		if r.Down > 0 {
			m.downCh[i] = len(m.chName)
			m.chName = append(m.chName, fmt.Sprintf("down:%d", i))
			m.chBW = append(m.chBW, r.Down)
		}
		if r.Link != "" {
			m.linkCh[i] = linkIdx[r.Link]
		}
	}
	// refBW is the resource-averaged bandwidth backing NominalComm (the
	// rank-phase analogue of MeanComm): the declared default when present,
	// else the mean of all declared capacities, else 1.
	switch {
	case set.DefaultBW > 0:
		m.refBW = set.DefaultBW
	case len(m.chBW) > 0:
		sum := 0.0
		for _, bw := range m.chBW {
			sum += bw
		}
		m.refBW = sum / float64(len(m.chBW))
	default:
		m.refBW = 1
	}
	return m, nil
}

// Set returns the bound catalog.
func (m *Model) Set() *Set { return m.set }

// NumFiles returns the catalog size.
func (m *Model) NumFiles() int { return len(m.set.Files) }

// Index returns the dense index of the named file, or -1 ("" included).
func (m *Model) Index(id string) int {
	if i, ok := m.idx[id]; ok {
		return i
	}
	return -1
}

// FileID returns the ID of file i.
func (m *Model) FileID(i int) string { return m.set.Files[i].ID }

// Size returns the size of file i.
func (m *Model) Size(i int) float64 { return m.set.Files[i].Size }

// PreStaged reports whether file i has a pre-staged replica on r.
func (m *Model) PreStaged(i int, r grid.ID) bool {
	if int(r) < 0 || int(r) >= m.nRes {
		return false
	}
	return m.staged[i*m.nRes+int(r)]
}

// Store returns r's storage capacity (0 = unbounded).
func (m *Model) Store(r grid.ID) float64 {
	if int(r) < 0 || int(r) >= m.nRes {
		return 0
	}
	return m.store[r]
}

// NumChannels returns the number of capacity channels the pool declares.
func (m *Model) NumChannels() int { return len(m.chName) }

// ChannelName returns the stable name of channel c.
func (m *Model) ChannelName(c int) string { return m.chName[c] }

// ChannelBW returns the bandwidth of channel c.
func (m *Model) ChannelBW(c int) float64 { return m.chBW[c] }

// AppendChannels appends the dense channel indices a src→dst transfer
// occupies — src's uplink, dst's downlink, and each endpoint's shared
// link (once, when both sit behind the same link) — and returns the
// extended slice.
func (m *Model) AppendChannels(src, dst grid.ID, buf []int) []int {
	if src == dst {
		return buf
	}
	if c := m.upCh[src]; c >= 0 {
		buf = append(buf, c)
	}
	if c := m.downCh[dst]; c >= 0 {
		buf = append(buf, c)
	}
	ls, ld := m.linkCh[src], m.linkCh[dst]
	if ls >= 0 {
		buf = append(buf, ls)
	}
	if ld >= 0 && ld != ls {
		buf = append(buf, ld)
	}
	return buf
}

// EffBW returns the effective src→dst bandwidth: the minimum over every
// declared constraint on the path (src uplink, dst downlink, either
// endpoint's shared link) with DefaultBW as the baseline. With no
// constraint anywhere it returns +Inf (unmodelled path, free transfer).
func (m *Model) EffBW(src, dst grid.ID) float64 {
	bw := math.Inf(1)
	if v := m.set.DefaultBW; v > 0 {
		bw = v
	}
	if v := m.up[src]; v > 0 && v < bw {
		bw = v
	}
	if v := m.down[dst]; v > 0 && v < bw {
		bw = v
	}
	if c := m.linkCh[src]; c >= 0 && m.chBW[c] < bw {
		bw = m.chBW[c]
	}
	if c := m.linkCh[dst]; c >= 0 && m.chBW[c] < bw {
		bw = m.chBW[c]
	}
	return bw
}

// Duration returns the contention-free transfer time of file i from src
// to dst (0 when co-located or fully unconstrained).
func (m *Model) Duration(i int, src, dst grid.ID) float64 {
	if src == dst {
		return 0
	}
	bw := m.EffBW(src, dst)
	if math.IsInf(bw, 1) {
		return 0
	}
	return m.set.Files[i].Size / bw
}

// StaticComm is the contention-free edge-cost estimate for file i shipped
// from src to dst: zero when co-located or a replica is pre-staged on
// dst, else Duration. This is the derived size÷bandwidth cost that
// supersedes the raw edge Data weight when a catalog is bound.
func (m *Model) StaticComm(i int, src, dst grid.ID) float64 {
	if src == dst || m.PreStaged(i, dst) {
		return 0
	}
	return m.Duration(i, src, dst)
}

// NominalComm is the resource-averaged cost of shipping file i — the
// rank-phase stand-in for MeanComm on file edges: size over the reference
// bandwidth.
func (m *Model) NominalComm(i int) float64 { return m.set.Files[i].Size / m.refBW }
