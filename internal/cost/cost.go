// Package cost models the computation and communication costs that drive
// every scheduling decision: the matrix w[i][j] of job-on-resource
// execution times and the edge communication costs c(i,j).
//
// In the paper the Planner obtains these through its Predictor component
// ("call P = estimate(T, R)", Fig. 2 line 5). The Estimator interface is
// that P; the Table type is the ground-truth realisation the simulator
// executes against. Under the paper's experiment assumption (1) — accurate
// estimation — the two coincide, which Exact provides. Package predict
// offers history-based and noisy estimators for the architecture and for
// robustness ablations.
package cost

import (
	"fmt"
	"math"

	"aheft/internal/dag"
	"aheft/internal/grid"
)

// Estimator supplies the performance estimation matrix P used by the
// schedulers: computation cost of a job on a resource, and communication
// cost of an edge between two placements.
type Estimator interface {
	// Comp returns the estimated execution time w[job][res] of the job on
	// the resource.
	Comp(job dag.JobID, res grid.ID) float64
	// Comm returns the estimated time to move the (from → to) edge's data
	// when from runs on rFrom and to runs on rTo. Implementations must
	// return 0 when rFrom == rTo (co-located jobs share a filesystem).
	Comm(e dag.Edge, rFrom, rTo grid.ID) float64
}

// Table is the ground-truth cost model for one scenario: a dense
// jobs × resources computation matrix over every resource that will ever
// join the pool. Communication cost equals the edge's data weight across
// distinct resources and zero within one resource, matching the paper's
// Fig. 4 sample and §4.1 file-transfer assumption.
type Table struct {
	comp [][]float64 // comp[job][resource]
}

// NewTable builds a Table from a jobs × resources matrix. Every row must
// have the same width and every entry must be positive and finite.
func NewTable(comp [][]float64) (*Table, error) {
	if len(comp) == 0 {
		return nil, fmt.Errorf("cost: empty computation matrix")
	}
	width := len(comp[0])
	if width == 0 {
		return nil, fmt.Errorf("cost: computation matrix has zero resources")
	}
	rows := make([][]float64, len(comp))
	for i, row := range comp {
		if len(row) != width {
			return nil, fmt.Errorf("cost: ragged matrix: row %d has %d entries, want %d", i, len(row), width)
		}
		for j, w := range row {
			if !(w > 0) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("cost: invalid cost w[%d][%d] = %g", i, j, w)
			}
		}
		rows[i] = append([]float64(nil), row...)
	}
	return &Table{comp: rows}, nil
}

// MustTable is NewTable that panics on error.
func MustTable(comp [][]float64) *Table {
	t, err := NewTable(comp)
	if err != nil {
		panic(err)
	}
	return t
}

// Jobs returns the number of jobs the table covers.
func (t *Table) Jobs() int { return len(t.comp) }

// Resources returns the number of resources the table covers.
func (t *Table) Resources() int { return len(t.comp[0]) }

// Comp returns the true execution time of job on res.
func (t *Table) Comp(job dag.JobID, res grid.ID) float64 {
	return t.comp[job][res]
}

// Comm returns the true transfer time for edge e between two placements:
// zero when co-located, the edge's data weight otherwise.
func (t *Table) Comm(e dag.Edge, rFrom, rTo grid.ID) float64 {
	if rFrom == rTo {
		return 0
	}
	return e.Data
}

// MeanComp returns the job's computation cost averaged over the given
// resource set — the w̄_i used by HEFT's upward ranks. It panics on an
// empty resource set.
func MeanComp(est Estimator, job dag.JobID, rs []grid.Resource) float64 {
	if len(rs) == 0 {
		panic("cost: MeanComp over empty resource set")
	}
	sum := 0.0
	for _, r := range rs {
		sum += est.Comp(job, r.ID)
	}
	return sum / float64(len(rs))
}

// MeanComm returns the average communication cost of edge e over distinct
// placements. For the uniform model this equals the edge data weight, which
// is the c̄(i,j) HEFT's ranks use; defining it through the Estimator keeps
// rank computation correct under richer communication models too.
func MeanComm(e dag.Edge) float64 { return e.Data }

// Exact adapts a *Table into the Estimator the planner consumes; it is the
// paper's "accurate estimation" assumption made explicit in the types.
func Exact(t *Table) Estimator { return t }

// EstimateVersion implements kernel.VersionedEstimator: a Table is
// immutable after construction, so its estimates never drift.
func (t *Table) EstimateVersion() uint64 { return 0 }

var _ Estimator = (*Table)(nil)

// CCR computes the communication-to-computation ratio of a workflow under
// this table: total edge data divided by total average computation cost.
// Workload generators target a requested CCR; this measures the realised
// one.
func CCR(g *dag.Graph, est Estimator, rs []grid.Resource) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	comm := 0.0
	nEdges := 0
	for _, j := range g.Jobs() {
		for _, e := range g.Succs(j.ID) {
			comm += MeanComm(e)
			nEdges++
		}
	}
	comp := 0.0
	for _, j := range g.Jobs() {
		comp += MeanComp(est, j.ID, rs)
	}
	if comp == 0 {
		return math.Inf(1)
	}
	return (comm / float64(nEdges)) / (comp / float64(len(g.Jobs())))
}
