package cost

import (
	"math"
	"testing"

	"aheft/internal/dag"
	"aheft/internal/grid"
)

func table(t *testing.T) *Table {
	t.Helper()
	return MustTable([][]float64{
		{10, 20},
		{30, 40},
	})
}

func TestNewTableValidation(t *testing.T) {
	cases := []struct {
		name string
		comp [][]float64
	}{
		{"empty", nil},
		{"zero resources", [][]float64{{}}},
		{"ragged", [][]float64{{1, 2}, {1}}},
		{"zero cost", [][]float64{{0}}},
		{"negative", [][]float64{{-1}}},
		{"inf", [][]float64{{math.Inf(1)}}},
		{"nan", [][]float64{{math.NaN()}}},
	}
	for _, c := range cases {
		if _, err := NewTable(c.comp); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestTableAccessors(t *testing.T) {
	tb := table(t)
	if tb.Jobs() != 2 || tb.Resources() != 2 {
		t.Fatalf("shape = %dx%d", tb.Jobs(), tb.Resources())
	}
	if tb.Comp(1, 0) != 30 {
		t.Fatalf("Comp(1,0) = %g", tb.Comp(1, 0))
	}
}

func TestCommZeroWhenColocated(t *testing.T) {
	tb := table(t)
	e := dag.Edge{From: 0, To: 1, Data: 7}
	if c := tb.Comm(e, 0, 0); c != 0 {
		t.Fatalf("co-located Comm = %g, want 0", c)
	}
	if c := tb.Comm(e, 0, 1); c != 7 {
		t.Fatalf("cross Comm = %g, want 7", c)
	}
}

func TestMeanComp(t *testing.T) {
	tb := table(t)
	rs := []grid.Resource{{ID: 0}, {ID: 1}}
	if m := MeanComp(tb, 0, rs); m != 15 {
		t.Fatalf("MeanComp = %g, want 15", m)
	}
	if m := MeanComp(tb, 0, rs[:1]); m != 10 {
		t.Fatalf("MeanComp over r0 = %g, want 10", m)
	}
}

func TestMeanCompPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MeanComp(table(t), 0, nil)
}

func TestCCR(t *testing.T) {
	g := dag.New("x")
	a := g.AddJob("a", "")
	b := g.AddJob("b", "")
	g.MustEdge(a, b, 40)
	g.MustValidate()
	tb := MustTable([][]float64{{10, 30}, {10, 30}}) // mean comp 20
	rs := []grid.Resource{{ID: 0}, {ID: 1}}
	if c := CCR(g, tb, rs); c != 2 {
		t.Fatalf("CCR = %g, want 2 (mean comm 40 / mean comp 20)", c)
	}
}

func TestCCRNoEdges(t *testing.T) {
	g := dag.New("x")
	g.AddJob("a", "")
	g.MustValidate()
	tb := MustTable([][]float64{{5}})
	if c := CCR(g, tb, []grid.Resource{{ID: 0}}); c != 0 {
		t.Fatalf("CCR of edgeless DAG = %g, want 0", c)
	}
}

func TestExactIsIdentity(t *testing.T) {
	tb := table(t)
	est := Exact(tb)
	if est.Comp(0, 1) != tb.Comp(0, 1) {
		t.Fatal("Exact estimator diverges from table")
	}
}
