package cost

import (
	"encoding/json"
	"fmt"
)

// MarshalJSON encodes the table as its bare jobs × resources matrix —
// row i is job i, column j is resource j, matching the dense IDs the dag
// and grid codecs assign on decode.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.comp)
}

// UnmarshalJSON decodes a matrix written by MarshalJSON. The result is
// validated by NewTable (rectangular, positive, finite); on error the
// receiver is left untouched.
func (t *Table) UnmarshalJSON(data []byte) error {
	var comp [][]float64
	if err := json.Unmarshal(data, &comp); err != nil {
		return fmt.Errorf("cost: decode: %w", err)
	}
	nt, err := NewTable(comp)
	if err != nil {
		return fmt.Errorf("cost: decode: %w", err)
	}
	*t = *nt
	return nil
}
