// Package executor is the run-time half of the paper's Fig. 1
// architecture: an enactment environment that executes scheduled workflows
// on the simulated grid. It decomposes, as in the paper, into an Execution
// Manager (starts jobs when their inputs are staged and their resource is
// free, per the current schedule), a Resource Manager (tracks the dynamic
// pool and advance reservations, swaps reservations when a rescheduled
// plan arrives), and a Performance Monitor (measures actual job runtimes
// and reports them, plus significant variance, to the Planner).
//
// The executor publishes the run-time events the Planner subscribes to —
// resource arrivals and job completions — through the EventHandler
// interface, and accepts replacement schedules mid-run, which is exactly
// the Planner/Executor collaboration the paper proposes. Jobs that are
// already running when a new schedule arrives keep running (their
// reservation is not revoked), and file transfers already in flight
// complete at their original ETA; both match the snapshot semantics of
// package core, and an integration test checks that this event-driven
// execution reproduces the analytic runner in package planner event for
// event.
package executor

import (
	"fmt"
	"math"
	"sort"

	"aheft/internal/core"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/schedule"
	"aheft/internal/sim"
)

// Runtime supplies actual job durations, which may differ from the
// Planner's estimates when simulating inaccurate prediction. Use the cost
// table itself for the paper's accurate-estimation assumption.
type Runtime interface {
	Comp(job dag.JobID, res grid.ID) float64
	Comm(e dag.Edge, rFrom, rTo grid.ID) float64
}

// Event is a run-time occurrence the Planner subscribed to.
type Event struct {
	Time float64
	// Arrived is non-empty for a resource-pool change event.
	Arrived []grid.Resource
	// Finished is valid (non-negative) for a job-completion event.
	Finished dag.JobID
	// OnResource is the resource the finished job ran on.
	OnResource grid.ID
	// ActualDuration is the measured runtime of the finished job, as
	// observed by the Performance Monitor.
	ActualDuration float64
}

// EventHandler receives run-time events. A handler may call
// (*Engine).Resubmit from within the callback to replace the remaining
// schedule — the Planner's reaction in the Fig. 2 loop.
type EventHandler interface {
	HandleEvent(ev Event)
}

// EventHandlerFunc adapts a function to the EventHandler interface.
type EventHandlerFunc func(ev Event)

// HandleEvent calls f(ev).
func (f EventHandlerFunc) HandleEvent(ev Event) { f(ev) }

// JobRecord is the measured outcome of one job.
type JobRecord struct {
	Job      dag.JobID
	Resource grid.ID
	Start    float64
	Finish   float64
}

// Engine executes one workflow on the simulated grid.
type Engine struct {
	simr *sim.Simulator
	g    *dag.Graph
	rt   Runtime
	pool *grid.Pool

	sched   *schedule.Schedule // current plan (replaceable via Resubmit)
	handler EventHandler

	// StartHook, when non-nil, is invoked the moment a job begins
	// executing — before its completion is even scheduled. Unlike
	// EventHandler events it carries no rescheduling rights; it exists so
	// an enactment client (the daemon's drive loop) can report
	// job-started upstream and the remote planner knows which
	// reservations are committed. Set it before Run.
	StartHook func(j dag.JobID, r grid.ID, t float64)

	available map[grid.ID]bool
	busy      map[grid.ID]dag.JobID // resource -> running job

	started  map[dag.JobID]float64
	finished map[dag.JobID]*JobRecord
	// fileAt[edge][resource] = time the edge's file became (or will
	// become) available on the resource; transfers in flight have a
	// future time. Files are per edge, matching the paper's per-pair data
	// matrix and the AHEFT snapshot model.
	fileAt map[core.EdgeKey]map[grid.ID]float64

	records []JobRecord
	err     error
}

// New prepares an engine bound to a simulator. The schedule must cover all
// jobs of g; it may be replaced during the run via Resubmit. handler may
// be nil.
func New(simr *sim.Simulator, g *dag.Graph, rt Runtime, pool *grid.Pool, s *schedule.Schedule, handler EventHandler) (*Engine, error) {
	if simr == nil || g == nil || rt == nil || pool == nil || s == nil {
		return nil, fmt.Errorf("executor: nil argument")
	}
	e := &Engine{
		simr:      simr,
		g:         g,
		rt:        rt,
		pool:      pool,
		sched:     s,
		handler:   handler,
		available: make(map[grid.ID]bool),
		busy:      make(map[grid.ID]dag.JobID),
		started:   make(map[dag.JobID]float64),
		finished:  make(map[dag.JobID]*JobRecord),
		fileAt:    make(map[core.EdgeKey]map[grid.ID]float64),
	}
	return e, nil
}

// Run executes the workflow to completion and returns the measured job
// records in finish order.
func (e *Engine) Run() ([]JobRecord, error) {
	for _, r := range e.pool.Initial() {
		e.available[r.ID] = true
	}
	for _, t := range e.pool.ChangeTimes() {
		t := t
		e.simr.At(t, sim.PriResourceChange, func() { e.onArrival(t) })
	}
	e.simr.At(0, sim.PriDispatch, e.pump)
	if err := e.simr.Run(); err != nil {
		return nil, err
	}
	if e.err != nil {
		return nil, e.err
	}
	if len(e.finished) != e.g.Len() {
		return nil, fmt.Errorf("executor: deadlock — %d of %d jobs finished (schedule infeasible?)",
			len(e.finished), e.g.Len())
	}
	return e.records, nil
}

// Makespan returns the finish time of the last job (0 before Run).
func (e *Engine) Makespan() float64 {
	m := 0.0
	for _, r := range e.records {
		if r.Finish > m {
			m = r.Finish
		}
	}
	return m
}

// Resubmit replaces the current schedule with s1 for all jobs that have
// not yet started; running and finished jobs are unaffected (the Resource
// Manager revokes only reservations that have not begun). Safe to call
// from an event handler.
func (e *Engine) Resubmit(s1 *schedule.Schedule) error {
	for _, j := range e.g.Jobs() {
		if _, ok := s1.Get(j.ID); !ok {
			return fmt.Errorf("executor: resubmitted schedule misses job %s", j.Name)
		}
	}
	e.sched = s1
	// The Execution Manager is responsible for staging inputs: if a
	// rescheduled job now runs where a finished predecessor's output was
	// never shipped, start that transfer now (it cannot start in the past
	// — Eq. 1 Case 2 of the AHEFT model).
	now := e.simr.Now()
	for _, j := range e.g.Jobs() {
		if _, started := e.started[j.ID]; started {
			continue
		}
		if _, done := e.finished[j.ID]; done {
			continue
		}
		a1 := s1.MustGet(j.ID)
		for _, edge := range e.g.Preds(j.ID) {
			pf, done := e.finished[edge.From]
			if !done {
				continue
			}
			key := core.EdgeKey{From: edge.From, To: edge.To}
			if _, have := e.fileAt[key][a1.Resource]; have {
				continue
			}
			eta := now + e.rt.Comm(edge, pf.Resource, a1.Resource)
			e.setFile(key, a1.Resource, eta)
			if eta > now {
				e.simr.At(eta, sim.PriTransferDone, e.pump)
			}
		}
	}
	// A new plan may allow different jobs to start; re-evaluate.
	e.simr.At(now, sim.PriDispatch, e.pump)
	return nil
}

// Schedule returns the schedule currently being enacted.
func (e *Engine) Schedule() *schedule.Schedule { return e.sched }

// Cancel aborts the execution: the event loop halts at the current
// simulated time and Run returns err. Safe to call from an event handler;
// the root facade uses it to honour context cancellation.
func (e *Engine) Cancel(err error) {
	if e.err == nil {
		e.err = err
	}
	e.simr.Stop()
}

func (e *Engine) onArrival(t float64) {
	arrived := e.pool.ArrivalsAt(t)
	for _, r := range arrived {
		e.available[r.ID] = true
	}
	if e.handler != nil {
		e.handler.HandleEvent(Event{Time: t, Arrived: arrived, Finished: dag.NoJob})
	}
	e.simr.At(t, sim.PriDispatch, e.pump)
}

// pump starts every job whose start conditions hold. Conditions for job j
// with assignment a = sched[j]:
//
//   - j is not started, its resource a.Resource is available and idle;
//   - every earlier job in a.Resource's planned order has finished or at
//     least started (reservation order is respected, so a late
//     predecessor on the same resource delays its followers rather than
//     being overtaken);
//   - every input file of j is present on a.Resource.
//
// Under accurate estimates these conditions become true exactly at the
// scheduled start times.
func (e *Engine) pump() {
	if e.err != nil {
		return
	}
	now := e.simr.Now()
	for {
		startedAny := false
		for _, r := range e.resourcesInUse() {
			j, ok := e.nextOn(r)
			if !ok {
				continue
			}
			if !e.canStart(j, r, now) {
				continue
			}
			e.start(j, r, now)
			startedAny = true
		}
		if !startedAny {
			return
		}
	}
}

func (e *Engine) resourcesInUse() []grid.ID {
	ids := e.sched.Resources()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// nextOn returns the first unstarted job in the resource's planned order.
func (e *Engine) nextOn(r grid.ID) (dag.JobID, bool) {
	for _, a := range e.sched.OnResource(r) {
		if _, done := e.finished[a.Job]; done {
			continue
		}
		if _, running := e.started[a.Job]; running {
			// A running job blocks everything behind it on this resource.
			return dag.NoJob, false
		}
		return a.Job, true
	}
	return dag.NoJob, false
}

func (e *Engine) canStart(j dag.JobID, r grid.ID, now float64) bool {
	if !e.available[r] {
		return false
	}
	if _, occupied := e.busy[r]; occupied {
		return false
	}
	for _, edge := range e.g.Preds(j) {
		t, ok := e.fileAt[core.EdgeKey{From: edge.From, To: edge.To}][r]
		if !ok || t > now {
			return false
		}
	}
	return true
}

func (e *Engine) start(j dag.JobID, r grid.ID, now float64) {
	e.started[j] = now
	e.busy[r] = j
	if e.StartHook != nil {
		e.StartHook(j, r, now)
	}
	dur := e.rt.Comp(j, r)
	e.simr.At(now+dur, sim.PriJobFinish, func() { e.finish(j, r, now, now+dur) })
}

func (e *Engine) finish(j dag.JobID, r grid.ID, start, end float64) {
	delete(e.busy, r)
	rec := JobRecord{Job: j, Resource: r, Start: start, Finish: end}
	e.finished[j] = &rec
	e.records = append(e.records, rec)
	if len(e.finished) == e.g.Len() {
		// Workflow complete: halt the event loop so later pool-change
		// events are not evaluated against a finished DAG.
		e.simr.Stop()
		if e.handler != nil {
			e.handler.HandleEvent(Event{Time: end, Finished: j, OnResource: r, ActualDuration: end - start})
		}
		return
	}
	// Static file-transfer policy: ship each output file immediately to
	// the scheduled resource of its consumer (§4.1 assumption 2).
	for _, edge := range e.g.Succs(j) {
		key := core.EdgeKey{From: edge.From, To: edge.To}
		e.setFile(key, r, end)
		sa, ok := e.sched.Get(edge.To)
		if !ok {
			e.err = fmt.Errorf("executor: successor %d of %d unscheduled", edge.To, j)
			return
		}
		eta := end + e.rt.Comm(edge, r, sa.Resource)
		e.setFile(key, sa.Resource, eta)
		if eta > end {
			e.simr.At(eta, sim.PriTransferDone, e.pump)
		}
	}
	if e.handler != nil {
		e.handler.HandleEvent(Event{Time: end, Finished: j, OnResource: r, ActualDuration: end - start})
	}
	e.simr.At(end, sim.PriDispatch, e.pump)
}

// setFile records file availability, keeping the earliest time.
func (e *Engine) setFile(key core.EdgeKey, r grid.ID, t float64) {
	row := e.fileAt[key]
	if row == nil {
		row = make(map[grid.ID]float64)
		e.fileAt[key] = row
	}
	if old, ok := row[r]; !ok || t < old {
		row[r] = t
	}
}

// FileAvailable reports when the (from → to) file became available on r
// (+Inf if it never did).
func (e *Engine) FileAvailable(from, to dag.JobID, r grid.ID) float64 {
	if t, ok := e.fileAt[core.EdgeKey{From: from, To: to}][r]; ok {
		return t
	}
	return math.Inf(1)
}
