package executor

import (
	"aheft/internal/core"
	"aheft/internal/schedule"
)

// ExecState captures the engine's current execution status as the snapshot
// the AHEFT rescheduler consumes: finished jobs with their actual times,
// per-edge file availability as the Execution Manager has staged it
// (including transfers still in flight), and running jobs pinned to their
// in-progress assignments.
//
// This is the executor-side equivalent of core.Snapshot — that function
// *derives* the state a faithful execution would be in at a clock value,
// while this method *reports* the state the event-driven execution is
// actually in. The integration tests assert the two agree under accurate
// estimates.
func (e *Engine) ExecState() *core.ExecState {
	st := core.NewExecState()
	st.Clock = e.simr.Now()
	for j, rec := range e.finished {
		st.Finished[j] = core.FinishedJob{Resource: rec.Resource, AST: rec.Start, AFT: rec.Finish}
	}
	for key, row := range e.fileAt {
		if _, done := e.finished[key.From]; !done {
			continue
		}
		for r, t := range row {
			st.SetTransfer(key.From, key.To, r, t)
		}
	}
	for j, startAt := range e.started {
		if _, done := e.finished[j]; done {
			continue
		}
		a, ok := e.sched.Get(j)
		if !ok {
			continue
		}
		dur := e.rt.Comp(j, a.Resource)
		st.Pinned[j] = schedule.Assignment{
			Job:      j,
			Resource: a.Resource,
			Start:    startAt,
			Finish:   startAt + dur,
		}
	}
	return st
}
