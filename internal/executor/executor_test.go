package executor

import (
	"fmt"
	"testing"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/heft"
	"aheft/internal/rng"
	"aheft/internal/schedule"
	"aheft/internal/sim"
	"aheft/internal/workload"
)

func sampleEngine(t *testing.T, handler EventHandler) (*Engine, *dag.Graph, cost.Estimator) {
	t.Helper()
	sc := workload.SampleScenario()
	est := sc.Estimator()
	s0, err := heft.Schedule(sc.Graph, est, sc.Pool.Initial(), heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(sim.New(), sc.Graph, est, sc.Pool, s0, handler)
	if err != nil {
		t.Fatal(err)
	}
	return e, sc.Graph, est
}

func TestEnactSampleSchedule(t *testing.T) {
	e, g, _ := sampleEngine(t, nil)
	records, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != g.Len() {
		t.Fatalf("%d records for %d jobs", len(records), g.Len())
	}
	if e.Makespan() != 80 {
		t.Fatalf("makespan = %g, want 80", e.Makespan())
	}
	// Records are in finish order.
	for i := 1; i < len(records); i++ {
		if records[i].Finish < records[i-1].Finish {
			t.Fatal("records out of finish order")
		}
	}
}

func TestEventsEmitted(t *testing.T) {
	var finishes, arrivals int
	handler := EventHandlerFunc(func(ev Event) {
		if ev.Finished != dag.NoJob {
			finishes++
			if ev.ActualDuration <= 0 {
				t.Errorf("finish event without duration: %+v", ev)
			}
		}
		if len(ev.Arrived) > 0 {
			arrivals++
		}
	})
	e, g, _ := sampleEngine(t, handler)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finishes != g.Len() {
		t.Fatalf("finish events = %d, want %d", finishes, g.Len())
	}
	// r4 arrives at t=15, before the DAG completes at 80.
	if arrivals != 1 {
		t.Fatalf("arrival events = %d, want 1", arrivals)
	}
}

func TestArrivalEventsAfterCompletionSuppressed(t *testing.T) {
	sc := workload.SampleScenario()
	est := sc.Estimator()
	// Move r4's arrival after the workflow completes.
	pool := grid.MustPool([]grid.Arrival{
		{Time: 0, Resource: grid.Resource{ID: 0, Name: "r1"}},
		{Time: 0, Resource: grid.Resource{ID: 1, Name: "r2"}},
		{Time: 0, Resource: grid.Resource{ID: 2, Name: "r3"}},
		{Time: 500, Resource: grid.Resource{ID: 3, Name: "r4"}},
	})
	s0, err := heft.Schedule(sc.Graph, est, pool.Initial(), heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	arrivals := 0
	e, err := New(sim.New(), sc.Graph, est, pool, s0, EventHandlerFunc(func(ev Event) {
		if len(ev.Arrived) > 0 {
			arrivals++
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if arrivals != 0 {
		t.Fatalf("arrival after completion still delivered (%d)", arrivals)
	}
}

func TestExecStateMidRun(t *testing.T) {
	var captured bool
	var e *Engine
	handler := EventHandlerFunc(func(ev Event) {
		if len(ev.Arrived) > 0 && !captured {
			captured = true
			st := e.ExecState()
			if st.Clock != 15 {
				t.Errorf("snapshot clock = %g, want 15", st.Clock)
			}
			if len(st.Finished) != 1 {
				t.Errorf("finished = %d, want 1 (n1)", len(st.Finished))
			}
			if len(st.Pinned) != 1 {
				t.Errorf("pinned = %d, want 1 (running n3)", len(st.Pinned))
			}
			if err := st.Validate(); err != nil {
				t.Errorf("snapshot invalid: %v", err)
			}
		}
	})
	e, _, _ = sampleEngine(t, handler)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !captured {
		t.Fatal("arrival event never fired")
	}
}

func TestResubmitRejectsIncompleteSchedule(t *testing.T) {
	e, _, _ := sampleEngine(t, nil)
	if err := e.Resubmit(schedule.New()); err == nil {
		t.Fatal("expected error for incomplete schedule")
	}
}

func TestNewRejectsNilArguments(t *testing.T) {
	sc := workload.SampleScenario()
	est := sc.Estimator()
	s0, _ := heft.Schedule(sc.Graph, est, sc.Pool.Initial(), heft.Options{})
	if _, err := New(nil, sc.Graph, est, sc.Pool, s0, nil); err == nil {
		t.Fatal("nil simulator accepted")
	}
	if _, err := New(sim.New(), sc.Graph, est, sc.Pool, nil, nil); err == nil {
		t.Fatal("nil schedule accepted")
	}
}

func TestDeadlockDetected(t *testing.T) {
	// A schedule placing a job on a resource that never joins the pool can
	// never start it; the engine must report the deadlock, not hang.
	g := dag.New("x")
	a := g.AddJob("a", "")
	g.MustValidate()
	tb := cost.MustTable([][]float64{{10, 10}})
	pool := grid.StaticPool(1) // only resource 0 exists
	s := schedule.New()
	s.Assign(schedule.Assignment{Job: a, Resource: 1, Start: 0, Finish: 10})
	e, err := New(sim.New(), g, cost.Exact(tb), pool, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("expected deadlock error")
	}
}

// TestEnactmentMatchesPlanRandom: property test — enacting any valid HEFT
// schedule reproduces its planned times exactly under accurate estimates.
func TestEnactmentMatchesPlanRandom(t *testing.T) {
	root := rng.New(0xE0E0)
	for i := 0; i < 30; i++ {
		r := root.Split(fmt.Sprintf("case-%d", i))
		sc, err := workload.RandomScenario(workload.RandomParams{
			Jobs: 5 + r.IntN(50), CCR: []float64{0.3, 3}[r.IntN(2)], OutDegree: 0.3, Beta: 0.8,
		}, workload.GridParams{InitialResources: 2 + r.IntN(6)}, r)
		if err != nil {
			t.Fatal(err)
		}
		est := sc.Estimator()
		s0, err := heft.Schedule(sc.Graph, est, sc.Pool.Initial(), heft.Options{})
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(sim.New(), sc.Graph, est, sc.Pool, s0, nil)
		if err != nil {
			t.Fatal(err)
		}
		records, err := e.Run()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		for _, rec := range records {
			want := s0.MustGet(rec.Job)
			if rec.Start != want.Start || rec.Finish != want.Finish || rec.Resource != want.Resource {
				t.Fatalf("case %d: job %d enacted %+v, planned %+v", i, rec.Job, rec, want)
			}
		}
	}
}

// TestSlowRuntimeDelaysExecution: when actual durations exceed estimates,
// the engine degrades gracefully (no deadlock; everything still runs, just
// later) — the behaviour inaccurate prediction induces.
func TestSlowRuntimeDelaysExecution(t *testing.T) {
	sc := workload.SampleScenario()
	est := sc.Estimator()
	s0, err := heft.Schedule(sc.Graph, est, sc.Pool.Initial(), heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow := scaledRuntime{base: est, factor: 1.5}
	e, err := New(sim.New(), sc.Graph, slow, sc.Pool, s0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Makespan() <= 80 {
		t.Fatalf("slow runtime should exceed 80, got %g", e.Makespan())
	}
}

type scaledRuntime struct {
	base   cost.Estimator
	factor float64
}

func (s scaledRuntime) Comp(j dag.JobID, r grid.ID) float64 { return s.factor * s.base.Comp(j, r) }
func (s scaledRuntime) Comm(e dag.Edge, a, b grid.ID) float64 {
	return s.base.Comm(e, a, b)
}

func TestFileAvailable(t *testing.T) {
	e, g, _ := sampleEngine(t, nil)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	n1, n3 := g.JobByName("n1"), g.JobByName("n3")
	// n1 and n3 both ran on r3 (ID 2): the file is available at n1's
	// finish time 9.
	if ft := e.FileAvailable(n1, n3, 2); ft != 9 {
		t.Fatalf("FileAvailable = %g, want 9", ft)
	}
	if ft := e.FileAvailable(n1, n3, 3); ft != ft+0 && false {
		t.Fatal("unreachable")
	}
}
