// Package minmin is the legacy entry point for the dynamic (just-in-time)
// scheduling baseline of the paper's §4.2: the Min-Min heuristic and its
// Max-Min / Sufferage variants.
//
// Deprecated: the dispatch engine formerly implemented here has moved into
// the shared policy layer — the heuristics are registered scheduling
// policies ("minmin", "maxmin", "sufferage" in internal/policy) and run
// through the same generic engine as HEFT and AHEFT (planner.RunPolicy, or
// the root aheft.Run facade with aheft.WithPolicy("minmin")). This package
// remains as a thin shim so existing callers keep their Result shape.
package minmin

import (
	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/policy"
	"aheft/internal/schedule"
)

// Heuristic selects the mapping rule used at each decision point. It is an
// alias of policy.Heuristic.
type Heuristic = policy.Heuristic

const (
	// MinMin maps first the job whose best completion time is smallest —
	// favouring short jobs, the paper's dynamic baseline.
	MinMin = policy.MinMin
	// MaxMin maps first the job whose best completion time is largest —
	// favouring long jobs.
	MaxMin = policy.MaxMin
	// Sufferage maps first the job that would suffer most from losing its
	// best resource (largest second-best minus best completion time).
	Sufferage = policy.Sufferage
)

// Result is the outcome of one dynamic run.
type Result struct {
	Heuristic Heuristic
	Makespan  float64
	// Schedule records the realised assignments. An assignment's Start is
	// when computation begins; the binding decision happened earlier, with
	// the resource stalled on input transfers in between.
	Schedule *schedule.Schedule
	// Decisions counts job-binding decisions (equals the job count).
	Decisions int
}

// Run executes workflow g dynamically on the pool under the heuristic.
//
// Deprecated: use planner.RunPolicy with the corresponding registered
// policy (or aheft.Run with aheft.WithPolicy); Run remains for existing
// callers and parity tests.
func Run(g *dag.Graph, est cost.Estimator, pool *grid.Pool, h Heuristic) (*Result, error) {
	pol, err := policy.Get(h.RegistryName())
	if err != nil {
		return nil, err
	}
	s, err := pol.Plan(g, est, pool, policy.Options{})
	if err != nil {
		return nil, err
	}
	return &Result{
		Heuristic: h,
		Makespan:  s.Makespan(),
		Schedule:  s,
		Decisions: s.Len(),
	}, nil
}
