package experiment

import (
	"fmt"
	"strconv"

	"aheft/internal/rng"
	"aheft/internal/workload"
)

// App identifies one of the paper's real-application workloads.
type App int

const (
	// Blast is the GNARE BLAST workflow (Fig. 6 shape).
	Blast App = iota
	// Wien2k is the ASKALON WIEN2K workflow (Fig. 7 shape).
	Wien2k
)

// String returns the workload's name.
func (a App) String() string {
	if a == Blast {
		return "BLAST"
	}
	return "WIEN2K"
}

// appFix pins one dimension of an application case; the rest are sampled
// from the Table 5 value sets.
type appFix func(p *workload.AppParams, gp *workload.GridParams)

// appCase draws one BLAST/WIEN2K case from the Table 5 parameter space.
func appCase(app App, cfg Config, r *rng.Source, fix appFix) (*workload.Scenario, error) {
	jobs := choiceInt(r, cfg.appJobs())
	p := workload.AppParams{
		CCR:  choiceF64(r, CCRs),
		Beta: choiceF64(r, Betas),
	}
	if app == Blast {
		p.Parallelism = workload.BlastParallelism(jobs)
	} else {
		p.Parallelism = workload.Wien2kParallelism(jobs)
	}
	gp := workload.GridParams{
		InitialResources: choiceInt(r, AppPools),
		ChangeInterval:   choiceF64(r, Intervals),
		ChangePct:        choiceF64(r, ChangePcts),
	}
	if fix != nil {
		fix(&p, &gp)
	}
	if app == Blast {
		return workload.BlastScenario(p, gp, r)
	}
	return workload.Wien2kScenario(p, gp, r)
}

// appPoint aggregates one (app, point) sweep cell.
func appPoint(cfg Config, expID, point string, app App, fix appFix) (*pointAgg, error) {
	return runPoint(cfg, expID, fmt.Sprintf("%s/%s", app, point), false,
		func(r *rng.Source) (*workload.Scenario, error) { return appCase(app, cfg, r, fix) })
}

// Table6 reproduces "Average makespan and improvement rate by AHEFT"
// (paper: BLAST 4939.3 → 3933.1, 20.4%; WIEN2K 3451.6 → 3233.8, 6.3%).
func Table6(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "table6",
		Title:  "applications: average makespan and AHEFT improvement (paper: BLAST 20.4%, WIEN2K 6.3%)",
		Header: []string{"application", "HEFT", "AHEFT", "improvement", "n"},
	}
	for _, app := range []App{Blast, Wien2k} {
		agg, err := appPoint(cfg, "table6", "all", app, nil)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			app.String(), f2(agg.HEFT.Mean()), f2(agg.AHEFT.Mean()),
			pct(agg.Improvement.Mean()), strconv.Itoa(agg.HEFT.N()),
		})
	}
	return t, nil
}

// Table7 reproduces "Improvement rate with various total number of jobs"
// for the applications (paper: BLAST 15.9→23.6% rising; WIEN2K 2.2→9.4%
// rising).
func Table7(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "table7",
		Title:  "applications: improvement rate vs job count (paper: BLAST 15.9→23.6%, WIEN2K 2.2→9.4%)",
		Header: []string{"jobs", "BLAST", "WIEN2K", "n/app"},
	}
	for _, jobs := range cfg.appJobs() {
		jobs := jobs
		row := []string{strconv.Itoa(jobs)}
		var n int
		for _, app := range []App{Blast, Wien2k} {
			app := app
			agg, err := appPoint(cfg, "table7", fmt.Sprintf("v=%d", jobs), app,
				func(p *workload.AppParams, gp *workload.GridParams) {
					if app == Blast {
						p.Parallelism = workload.BlastParallelism(jobs)
					} else {
						p.Parallelism = workload.Wien2kParallelism(jobs)
					}
				})
			if err != nil {
				return nil, err
			}
			row = append(row, pct(agg.Improvement.Mean()))
			n = agg.HEFT.N()
		}
		row = append(row, strconv.Itoa(n))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table8 reproduces "Improvement rate with various CCRs" for the
// applications (paper: BLAST 16.1/15.5/14.3/19.1/26.1%; WIEN2K ≈5–7%
// flat).
func Table8(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "table8",
		Title:  "applications: improvement rate vs CCR (paper: BLAST 16.1→26.1% U-shape, WIEN2K flat ≈5–7%)",
		Header: []string{"CCR", "BLAST", "WIEN2K", "n/app"},
	}
	for _, ccr := range CCRs {
		ccr := ccr
		row := []string{fmt.Sprintf("%g", ccr)}
		var n int
		for _, app := range []App{Blast, Wien2k} {
			agg, err := appPoint(cfg, "table8", fmt.Sprintf("ccr=%g", ccr), app,
				func(p *workload.AppParams, gp *workload.GridParams) { p.CCR = ccr })
			if err != nil {
				return nil, err
			}
			row = append(row, pct(agg.Improvement.Mean()))
			n = agg.HEFT.N()
		}
		row = append(row, strconv.Itoa(n))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// fig8 builds one panel of Fig. 8: average makespan vs one swept
// parameter, with the four series HEFT1/AHEFT1 (BLAST) and HEFT2/AHEFT2
// (WIEN2K).
func fig8(cfg Config, id, title string, points []string, fixFor func(point string, app App) appFix) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"x", "HEFT1(BLAST)", "AHEFT1(BLAST)", "HEFT2(WIEN2K)", "AHEFT2(WIEN2K)"},
	}
	for _, pt := range points {
		row := []string{pt}
		for _, app := range []App{Blast, Wien2k} {
			agg, err := appPoint(cfg, id, pt, app, fixFor(pt, app))
			if err != nil {
				return nil, err
			}
			row = append(row, f2(agg.HEFT.Mean()), f2(agg.AHEFT.Mean()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func fmtF(vs []float64) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = fmt.Sprintf("%g", v)
	}
	return out
}

func fmtI(vs []int) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = strconv.Itoa(v)
	}
	return out
}

// Fig8a reproduces panel (a): makespan vs CCR.
func Fig8a(cfg Config) (*Table, error) {
	return fig8(cfg, "fig8a", "Fig 8(a): average makespan vs CCR", fmtF(CCRs),
		func(pt string, app App) appFix {
			var ccr float64
			fmt.Sscanf(pt, "%g", &ccr)
			return func(p *workload.AppParams, gp *workload.GridParams) { p.CCR = ccr }
		})
}

// Fig8b reproduces panel (b): makespan vs β.
func Fig8b(cfg Config) (*Table, error) {
	return fig8(cfg, "fig8b", "Fig 8(b): average makespan vs beta", fmtF(Betas),
		func(pt string, app App) appFix {
			var beta float64
			fmt.Sscanf(pt, "%g", &beta)
			return func(p *workload.AppParams, gp *workload.GridParams) { p.Beta = beta }
		})
}

// Fig8c reproduces panel (c): makespan vs total number of jobs.
func Fig8c(cfg Config) (*Table, error) {
	return fig8(cfg, "fig8c", "Fig 8(c): average makespan vs total number of jobs", fmtI(cfg.appJobs()),
		func(pt string, app App) appFix {
			var jobs int
			fmt.Sscanf(pt, "%d", &jobs)
			return func(p *workload.AppParams, gp *workload.GridParams) {
				if app == Blast {
					p.Parallelism = workload.BlastParallelism(jobs)
				} else {
					p.Parallelism = workload.Wien2kParallelism(jobs)
				}
			}
		})
}

// Fig8d reproduces panel (d): makespan vs initial resource pool size.
func Fig8d(cfg Config) (*Table, error) {
	return fig8(cfg, "fig8d", "Fig 8(d): average makespan vs initial resource pool size", fmtI(AppPools),
		func(pt string, app App) appFix {
			var pool int
			fmt.Sscanf(pt, "%d", &pool)
			return func(p *workload.AppParams, gp *workload.GridParams) { gp.InitialResources = pool }
		})
}

// Fig8e reproduces panel (e): makespan vs resource change interval Δ.
func Fig8e(cfg Config) (*Table, error) {
	return fig8(cfg, "fig8e", "Fig 8(e): average makespan vs resource change interval", fmtF(Intervals),
		func(pt string, app App) appFix {
			var dlt float64
			fmt.Sscanf(pt, "%g", &dlt)
			return func(p *workload.AppParams, gp *workload.GridParams) { gp.ChangeInterval = dlt }
		})
}

// Fig8f reproduces panel (f): makespan vs resource change percentage δ.
func Fig8f(cfg Config) (*Table, error) {
	return fig8(cfg, "fig8f", "Fig 8(f): average makespan vs resource change percentage", fmtF(ChangePcts),
		func(pt string, app App) appFix {
			var pctv float64
			fmt.Sscanf(pt, "%g", &pctv)
			return func(p *workload.AppParams, gp *workload.GridParams) { gp.ChangePct = pctv }
		})
}
