// Package experiment reproduces the paper's evaluation (§4): the worked
// example of Fig. 4/5, the random-DAG sweep with its headline makespans
// and Tables 3–4, the BLAST/WIEN2K application study of Tables 6–8, and
// the six panels of Fig. 8. Each experiment is a named Runner that
// produces a Table of the same rows/series the paper reports; the
// cmd/experiments binary and the root benchmark suite both drive this
// registry.
//
// The paper's full sweep is 500,000 cases; Config.Samples scales the
// sample count per parameter point so the same code serves quick smoke
// runs, benchmarks, and full overnight reproductions. Every case derives
// its own rng stream from (Seed, experiment, point, index), so results
// are reproducible and independent of execution order; cases run
// concurrently across Workers goroutines.
package experiment

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"aheft/internal/planner"
	"aheft/internal/policy"
	"aheft/internal/rng"
	"aheft/internal/stats"
	"aheft/internal/workload"
)

// Parameter value sets from the paper's Table 2 (random DAGs) and Table 5
// (BLAST/WIEN2K).
var (
	RandomJobs  = []int{20, 40, 60, 80, 100}
	CCRs        = []float64{0.1, 0.5, 1.0, 5.0, 10.0}
	OutDegrees  = []float64{0.1, 0.2, 0.3, 0.4, 1.0}
	Betas       = []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	RandomPools = []int{10, 20, 30, 40, 50}
	AppJobs     = []int{200, 400, 600, 800, 1000}
	AppPools    = []int{20, 40, 60, 80, 100}
	Intervals   = []float64{400, 800, 1200, 1600}
	ChangePcts  = []float64{0.10, 0.15, 0.20, 0.25}
)

// Config tunes an experiment run.
type Config struct {
	// Samples is the number of simulated cases per parameter point.
	Samples int
	// Seed roots every pseudo-random stream of the run.
	Seed uint64
	// TieWindow enables near-tie rank exploration in AHEFT (0 is the
	// paper-faithful greedy; see core.Options.TieWindow).
	TieWindow float64
	// WithMinMin also runs the dynamic Min-Min baseline where the
	// experiment calls for it (the §4.2 headline comparison).
	WithMinMin bool
	// AppJobCap, when positive, filters the AppJobs sweep to sizes ≤ the
	// cap — benchmarks use it to bound runtime.
	AppJobCap int
	// Workers bounds concurrency; zero means GOMAXPROCS.
	Workers int
}

func (c Config) samples() int {
	if c.Samples <= 0 {
		return 4
	}
	return c.Samples
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) appJobs() []int {
	if c.AppJobCap <= 0 {
		return AppJobs
	}
	var out []int
	for _, v := range AppJobs {
		if v <= c.AppJobCap {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		out = []int{c.AppJobCap}
	}
	return out
}

// CaseOut is the outcome of simulating one scenario under the strategies
// being compared.
type CaseOut struct {
	HEFT      float64 // static HEFT makespan
	AHEFT     float64 // adaptive makespan
	MinMin    float64 // dynamic baseline makespan (0 when not run)
	Adoptions int     // adopted reschedules
}

// Improvement returns (HEFT − AHEFT)/HEFT for this case.
func (c CaseOut) Improvement() float64 { return stats.Improvement(c.HEFT, c.AHEFT) }

// RunCase simulates one scenario under static HEFT and AHEFT (and
// optionally dynamic Min-Min) and returns the makespans. All three
// strategies run through the shared policy engine.
func RunCase(sc *workload.Scenario, cfg Config, withMinMin bool) (CaseOut, error) {
	var out CaseOut
	ctx := context.Background()
	est := sc.Estimator()
	static, err := planner.RunPolicy(ctx, sc.Graph, est, sc.Pool, policy.MustGet("heft"), policy.Options{})
	if err != nil {
		return out, err
	}
	adaptive, err := planner.RunPolicy(ctx, sc.Graph, est, sc.Pool, policy.MustGet("aheft"),
		policy.Options{TieWindow: cfg.TieWindow})
	if err != nil {
		return out, err
	}
	out.HEFT = static.Makespan
	out.AHEFT = adaptive.Makespan
	out.Adoptions = adaptive.Adoptions()
	if withMinMin {
		dyn, err := planner.RunPolicy(ctx, sc.Graph, est, sc.Pool, policy.MustGet("minmin"), policy.Options{})
		if err != nil {
			return out, err
		}
		out.MinMin = dyn.Makespan
	}
	return out, nil
}

// Table is a rendered experiment result: the rows/series a paper table or
// figure reports.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row first),
// for plotting pipelines.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		return c
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// Runner produces one experiment's table.
type Runner func(cfg Config) (*Table, error)

// Registry maps experiment IDs (fig5, headline, table3, table4, table6,
// table7, table8, fig8a…fig8f) to their runners.
var Registry = map[string]Runner{
	"fig5":      Fig5,
	"headline":  Headline,
	"table3":    Table3,
	"table4":    Table4,
	"table6":    Table6,
	"table7":    Table7,
	"table8":    Table8,
	"fig8a":     Fig8a,
	"fig8b":     Fig8b,
	"fig8c":     Fig8c,
	"fig8d":     Fig8d,
	"fig8e":     Fig8e,
	"fig8f":     Fig8f,
	"ablations": Ablations,
	"montage":   MontageExt,
}

// Order lists the registry keys in the paper's presentation order.
var Order = []string{
	"fig5", "headline", "table3", "table4",
	"table6", "table7", "table8",
	"fig8a", "fig8b", "fig8c", "fig8d", "fig8e", "fig8f",
	"ablations", "montage",
}

// choice helpers draw uniformly from a value set.
func choiceInt(r *rng.Source, vs []int) int         { return vs[r.IntN(len(vs))] }
func choiceF64(r *rng.Source, vs []float64) float64 { return vs[r.IntN(len(vs))] }

// sweepPoint evaluates samples cases at one parameter point concurrently
// and aggregates the per-case outputs.
type pointAgg struct {
	HEFT, AHEFT, MinMin, Improvement stats.Sample
	Adoptions                        stats.Sample
}

func (a *pointAgg) add(c CaseOut) {
	a.HEFT.Add(c.HEFT)
	a.AHEFT.Add(c.AHEFT)
	if c.MinMin > 0 {
		a.MinMin.Add(c.MinMin)
	}
	a.Improvement.Add(c.Improvement())
	a.Adoptions.Add(float64(c.Adoptions))
}

// runPoint builds and simulates cfg.samples() scenarios derived from the
// (experiment, point) labels and aggregates them.
func runPoint(cfg Config, expID, point string, withMinMin bool,
	build func(r *rng.Source) (*workload.Scenario, error)) (*pointAgg, error) {

	n := cfg.samples()
	outs := make([]CaseOut, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.workers())
	root := rng.New(cfg.Seed).Split(expID).Split(point)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			r := root.Split(fmt.Sprintf("case-%d", i))
			sc, err := build(r)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = RunCase(sc, cfg, withMinMin)
		}(i)
	}
	wg.Wait()
	agg := &pointAgg{}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, fmt.Errorf("experiment %s point %s case %d: %w", expID, point, i, errs[i])
		}
		agg.add(outs[i])
	}
	return agg, nil
}

func f2(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
