package experiment

import (
	"strconv"

	"aheft/internal/rng"
	"aheft/internal/workload"
)

// MontageExt is an extension beyond the paper's evaluation: the paper
// names Montage as a third well-balanced, highly parallel scientific
// workflow (with only 11 unique operations); this experiment runs the
// Montage-like generator alongside BLAST and WIEN2K under the same Table 5
// grid dynamics and compares their adaptive-rescheduling benefit. Montage's
// shape — two wide parallel sections (mProject, mBackground) separated by
// a short serial fit/model spine — sits between BLAST (no spine) and
// WIEN2K (long spine), and so should its improvement.
func MontageExt(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "montage",
		Title:  "extension: Montage-like workflow vs the paper's applications",
		Header: []string{"application", "HEFT", "AHEFT", "improvement", "width", "levels", "n"},
		Notes: []string{
			"Montage is cited (not evaluated) by the paper; expectation: improvement between WIEN2K's and BLAST's",
		},
	}
	type app struct {
		name  string
		build func(jobs int, ccr, beta float64, gp workload.GridParams, r *rng.Source) (*workload.Scenario, error)
	}
	apps := []app{
		{"BLAST", func(jobs int, ccr, beta float64, gp workload.GridParams, r *rng.Source) (*workload.Scenario, error) {
			return workload.BlastScenario(workload.AppParams{
				Parallelism: workload.BlastParallelism(jobs), CCR: ccr, Beta: beta,
			}, gp, r)
		}},
		{"Montage", func(jobs int, ccr, beta float64, gp workload.GridParams, r *rng.Source) (*workload.Scenario, error) {
			p := jobs / 4 // ≈4 jobs per parallel unit (project, diff, background, overhead)
			if p < 1 {
				p = 1
			}
			return workload.MontageScenario(workload.AppParams{Parallelism: p, CCR: ccr, Beta: beta}, gp, r)
		}},
		{"WIEN2K", func(jobs int, ccr, beta float64, gp workload.GridParams, r *rng.Source) (*workload.Scenario, error) {
			return workload.Wien2kScenario(workload.AppParams{
				Parallelism: workload.Wien2kParallelism(jobs), CCR: ccr, Beta: beta,
			}, gp, r)
		}},
	}
	for _, a := range apps {
		a := a
		var width, levels int
		agg, err := runPoint(cfg, "montage", a.name, false, func(r *rng.Source) (*workload.Scenario, error) {
			jobs := choiceInt(r, cfg.appJobs())
			ccr := choiceF64(r, CCRs)
			beta := choiceF64(r, Betas)
			gp := workload.GridParams{
				InitialResources: choiceInt(r, AppPools),
				ChangeInterval:   choiceF64(r, Intervals),
				ChangePct:        choiceF64(r, ChangePcts),
			}
			sc, err := a.build(jobs, ccr, beta, gp, r)
			if err == nil {
				width = sc.Graph.Width()
				levels = len(sc.Graph.Levels())
			}
			return sc, err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			a.name,
			f2(agg.HEFT.Mean()), f2(agg.AHEFT.Mean()), pct(agg.Improvement.Mean()),
			strconv.Itoa(width), strconv.Itoa(levels), strconv.Itoa(agg.HEFT.N()),
		})
	}
	return t, nil
}
