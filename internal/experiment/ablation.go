package experiment

import (
	"context"
	"strconv"
	"sync"

	"aheft/internal/planner"
	"aheft/internal/policy"
	"aheft/internal/rng"
	"aheft/internal/workload"
)

// ablationVariant is one planner configuration under comparison.
type ablationVariant struct {
	name string
	opts planner.RunOptions
}

// ablationVariants are the design choices DESIGN.md calls out.
var ablationVariants = []ablationVariant{
	{"baseline (insertion, pin, greedy)", planner.RunOptions{}},
	{"no insertion (append-only)", planner.RunOptions{NoInsertion: true}},
	{"restart running jobs", planner.RunOptions{RestartRunning: true}},
	{"tie window 0.05", planner.RunOptions{TieWindow: 0.05}},
	{"tie window 0.10", planner.RunOptions{TieWindow: 0.10}},
}

// Ablations compares the planner's design-choice variants over a common
// set of BLAST cases (the workload where adaptive rescheduling matters
// most) and reports each variant's average makespan and improvement over
// its own static plan.
func Ablations(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "ablations",
		Title:  "design-choice ablations on BLAST under a growing grid",
		Header: []string{"variant", "AHEFT makespan", "improvement", "adoptions/case", "n"},
		Notes: []string{
			"restart semantics discards partial work: on the Fig. 5 example it turns the 76 into an unadoptable 82",
			"the static HEFT baseline differs per variant only through NoInsertion",
		},
	}
	for _, v := range ablationVariants {
		v := v
		agg, err := runAblationPoint(cfg, v)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			v.name,
			f2(agg.AHEFT.Mean()),
			pct(agg.Improvement.Mean()),
			f2(agg.Adoptions.Mean()),
			strconv.Itoa(agg.AHEFT.N()),
		})
	}
	return t, nil
}

func runAblationPoint(cfg Config, v ablationVariant) (*pointAgg, error) {
	n := cfg.samples()
	outs := make([]CaseOut, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.workers())
	root := rng.New(cfg.Seed).Split("ablations")
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			r := root.Split("case-" + strconv.Itoa(i))
			sc, err := workload.BlastScenario(workload.AppParams{
				Parallelism: 149, CCR: 0.5, Beta: 0.5,
			}, workload.GridParams{
				InitialResources: 20, ChangeInterval: 400, ChangePct: 0.2,
			}, r)
			if err != nil {
				errs[i] = err
				return
			}
			est := sc.Estimator()
			ctx := context.Background()
			static, err := planner.RunPolicy(ctx, sc.Graph, est, sc.Pool, policy.MustGet("heft"), v.opts)
			if err != nil {
				errs[i] = err
				return
			}
			adaptive, err := planner.RunPolicy(ctx, sc.Graph, est, sc.Pool, policy.MustGet("aheft"), v.opts)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = CaseOut{
				HEFT:      static.Makespan,
				AHEFT:     adaptive.Makespan,
				Adoptions: adaptive.Adoptions(),
			}
		}(i)
	}
	wg.Wait()
	agg := &pointAgg{}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		agg.add(outs[i])
	}
	return agg, nil
}
