package experiment

import (
	"strconv"
	"strings"
	"testing"
)

// tinyCfg keeps experiment tests fast.
func tinyCfg() Config {
	return Config{Samples: 2, Seed: 7, AppJobCap: 60, WithMinMin: true}
}

func TestRegistryComplete(t *testing.T) {
	if len(Order) != len(Registry) {
		t.Fatalf("Order lists %d experiments, Registry has %d", len(Order), len(Registry))
	}
	for _, id := range Order {
		if Registry[id] == nil {
			t.Fatalf("experiment %q missing from registry", id)
		}
	}
}

func TestFig5Exact(t *testing.T) {
	tbl, err := Fig5(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][1] != "80.0" {
		t.Fatalf("HEFT row = %v, want makespan 80.0", tbl.Rows[0])
	}
	if tbl.Rows[2][1] != "76.0" {
		t.Fatalf("AHEFT tie-window row = %v, want 76.0", tbl.Rows[2])
	}
}

func TestHeadlineOrdering(t *testing.T) {
	cfg := Config{Samples: 12, Seed: 3, WithMinMin: true}
	tbl, err := Headline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parse := func(row []string) float64 {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[1])
		}
		return v
	}
	heft, aheft, minmin := parse(tbl.Rows[0]), parse(tbl.Rows[1]), parse(tbl.Rows[2])
	// The paper's ordering: AHEFT ≤ HEFT << Min-Min.
	if aheft > heft+1e-9 {
		t.Fatalf("AHEFT %g worse than HEFT %g", aheft, heft)
	}
	if minmin <= heft {
		t.Fatalf("dynamic Min-Min %g should be clearly worse than HEFT %g", minmin, heft)
	}
}

func TestTable3Shape(t *testing.T) {
	tbl, err := Table3(Config{Samples: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(CCRs) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(CCRs))
	}
	// Random DAGs benefit only mildly from adaptive rescheduling (the
	// paper reports 0.4–7.7%; see EXPERIMENTS.md on the weaker CCR trend
	// in this reproduction). The invariants: improvement is never
	// negative (the adoption rule guarantees AHEFT ≤ HEFT) and stays in a
	// plausible band.
	for _, row := range tbl.Rows {
		imp := parsePct(t, row[1])
		if imp < -1e-6 || imp > 40 {
			t.Fatalf("implausible improvement %g%% in row %v", imp, row)
		}
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad pct %q", s)
	}
	return v
}

func TestTable4Runs(t *testing.T) {
	tbl, err := Table4(Config{Samples: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(RandomJobs) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if imp := parsePct(t, row[1]); imp < -1 || imp > 100 {
			t.Fatalf("implausible improvement %g%%", imp)
		}
	}
}

func TestTable6AppsOrdering(t *testing.T) {
	cfg := Config{Samples: 16, Seed: 11}
	tbl, err := Table6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	blast := parsePct(t, tbl.Rows[0][3])
	wien := parsePct(t, tbl.Rows[1][3])
	// The paper's key qualitative claim: the wide, compute-heavy BLAST
	// benefits more than the serial-spine-limited WIEN2K, and both gain
	// something.
	if blast <= wien {
		t.Fatalf("BLAST improvement %g%% should exceed WIEN2K %g%%", blast, wien)
	}
	if blast <= 0 || wien < 0 {
		t.Fatalf("improvements should be positive: BLAST %g%%, WIEN2K %g%%", blast, wien)
	}
}

func TestFig8PanelShapes(t *testing.T) {
	cfg := tinyCfg()
	type panel struct {
		run  Runner
		rows int
	}
	panels := map[string]panel{
		"fig8a": {Fig8a, len(CCRs)},
		"fig8b": {Fig8b, len(Betas)},
		"fig8d": {Fig8d, len(AppPools)},
		"fig8e": {Fig8e, len(Intervals)},
		"fig8f": {Fig8f, len(ChangePcts)},
	}
	for id, p := range panels {
		tbl, err := p.run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) != p.rows {
			t.Fatalf("%s: rows = %d, want %d", id, len(tbl.Rows), p.rows)
		}
		for _, row := range tbl.Rows {
			if len(row) != 5 {
				t.Fatalf("%s: row width %d, want 5 (x + 4 series)", id, len(row))
			}
			for _, cell := range row[1:] {
				if _, err := strconv.ParseFloat(cell, 64); err != nil {
					t.Fatalf("%s: non-numeric cell %q", id, cell)
				}
			}
		}
	}
}

func TestAHEFTNeverWorseInAnyCell(t *testing.T) {
	cfg := tinyCfg()
	tbl, err := Fig8a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		h1, _ := strconv.ParseFloat(row[1], 64)
		a1, _ := strconv.ParseFloat(row[2], 64)
		h2, _ := strconv.ParseFloat(row[3], 64)
		a2, _ := strconv.ParseFloat(row[4], 64)
		if a1 > h1+1e-6 || a2 > h2+1e-6 {
			t.Fatalf("AHEFT worse than HEFT in a Fig8a cell: %v", row)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	cfg := Config{Samples: 3, Seed: 42, AppJobCap: 60}
	a, err := Table8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("same seed produced different tables:\n%s\nvs\n%s", a.Render(), b.Render())
	}
	// Different seed should (almost surely) differ.
	cfg.Seed = 43
	c, err := Table8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() == c.Render() {
		t.Fatal("different seeds produced identical tables")
	}
}

func TestWorkerCapRespected(t *testing.T) {
	cfg := Config{Samples: 4, Seed: 9, Workers: 1, AppJobCap: 60}
	if _, err := Table7(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRenderAligned(t *testing.T) {
	tbl := &Table{
		ID: "x", Title: "t",
		Header: []string{"col", "value"},
		Rows:   [][]string{{"a", "1"}, {"longer", "2"}},
		Notes:  []string{"note text"},
	}
	out := tbl.Render()
	for _, want := range []string{"== x — t ==", "longer", "note: note text"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCaseOutImprovement(t *testing.T) {
	c := CaseOut{HEFT: 100, AHEFT: 90}
	if c.Improvement() != 0.1 {
		t.Fatalf("Improvement = %g", c.Improvement())
	}
}

func TestAppJobsCap(t *testing.T) {
	cfg := Config{AppJobCap: 250}
	got := cfg.appJobs()
	if len(got) != 1 || got[0] != 200 {
		t.Fatalf("appJobs = %v, want [200]", got)
	}
	cfg = Config{AppJobCap: 50}
	got = cfg.appJobs()
	if len(got) != 1 || got[0] != 50 {
		t.Fatalf("appJobs fallback = %v, want [50]", got)
	}
	if n := len((Config{}).appJobs()); n != len(AppJobs) {
		t.Fatalf("uncapped appJobs = %d entries", n)
	}
}

func TestAblationsTable(t *testing.T) {
	tbl, err := Ablations(Config{Samples: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(ablationVariants) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(ablationVariants))
	}
	base := parsePct(t, tbl.Rows[0][2])
	restart := parsePct(t, tbl.Rows[2][2])
	if restart > base+1e-9 {
		t.Fatalf("restart semantics (%g%%) should not beat pinning (%g%%)", restart, base)
	}
	tie := parsePct(t, tbl.Rows[3][2])
	if tie < base-1e-9 {
		t.Fatalf("tie-window (%g%%) should not lose to greedy (%g%%)", tie, base)
	}
}

func TestCSVOutput(t *testing.T) {
	tbl := &Table{
		ID: "x", Title: "t",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", `quo"te`}, {"with,comma", "3"}},
	}
	out := tbl.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], `"quo""te"`) {
		t.Fatalf("quote escaping wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], `"with,comma"`) {
		t.Fatalf("comma escaping wrong: %q", lines[2])
	}
}

func TestMontageExtension(t *testing.T) {
	tbl, err := MontageExt(Config{Samples: 3, Seed: 2, AppJobCap: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 applications", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		imp := parsePct(t, row[3])
		if imp < -1e-6 || imp > 80 {
			t.Fatalf("implausible improvement in %v", row)
		}
	}
	if tbl.Rows[1][0] != "Montage" {
		t.Fatalf("row order: %v", tbl.Rows)
	}
}
