package experiment

import (
	"context"
	"fmt"
	"strconv"

	"aheft/internal/planner"
	"aheft/internal/policy"
	"aheft/internal/rng"
	"aheft/internal/workload"
)

// randomCase draws one case from the paper's random-DAG parameter space
// (Table 2), applies the experiment's fixed dimension via fix, and builds
// the scenario.
func randomCase(r *rng.Source, fix func(p *workload.RandomParams, gp *workload.GridParams)) (*workload.Scenario, error) {
	p := workload.RandomParams{
		Jobs:      choiceInt(r, RandomJobs),
		CCR:       choiceF64(r, CCRs),
		OutDegree: choiceF64(r, OutDegrees),
		Beta:      choiceF64(r, Betas),
		Alpha:     choiceF64(r, workload.Alphas),
	}
	gp := workload.GridParams{
		InitialResources: choiceInt(r, RandomPools),
		ChangeInterval:   choiceF64(r, Intervals),
		ChangePct:        choiceF64(r, ChangePcts),
	}
	if fix != nil {
		fix(&p, &gp)
	}
	return workload.RandomScenario(p, gp, r)
}

// Fig5 reproduces the worked example of Figs. 4–5: the ten-job sample DAG
// with r4 joining at t = 15.
func Fig5(cfg Config) (*Table, error) {
	sc := workload.SampleScenario()
	est := sc.Estimator()
	ctx := context.Background()
	static, err := planner.RunPolicy(ctx, sc.Graph, est, sc.Pool, policy.MustGet("heft"), planner.RunOptions{})
	if err != nil {
		return nil, err
	}
	greedy, err := planner.RunPolicy(ctx, sc.Graph, est, sc.Pool, policy.MustGet("aheft"), planner.RunOptions{})
	if err != nil {
		return nil, err
	}
	tw := cfg.TieWindow
	if tw <= 0 {
		tw = 0.05
	}
	explored, err := planner.RunPolicy(ctx, sc.Graph, est, sc.Pool, policy.MustGet("aheft"), planner.RunOptions{TieWindow: tw})
	if err != nil {
		return nil, err
	}
	return &Table{
		ID:     "fig5",
		Title:  "worked example: sample DAG, r4 arrives at t=15 (paper: HEFT 80, AHEFT 76)",
		Header: []string{"strategy", "makespan", "paper"},
		Rows: [][]string{
			{"HEFT (static)", f2(static.Makespan), "80"},
			{"AHEFT (greedy Fig.3)", f2(greedy.Makespan), "—"},
			{fmt.Sprintf("AHEFT (tie window %.2f)", tw), f2(explored.Makespan), "76"},
		},
		Notes: []string{
			"pure EFT-greedy placement misses the published 76 by one locally-attractive move;",
			"near-tie rank exploration (or exhaustive search, see core's Fig5 test) recovers it exactly",
		},
	}, nil
}

// Headline reproduces the §4.2 summary: average makespan of HEFT, AHEFT
// and dynamic Min-Min over the random parameter space (paper: 4075, 3911,
// 12352).
func Headline(cfg Config) (*Table, error) {
	agg, err := runPoint(cfg, "headline", "all", true,
		func(r *rng.Source) (*workload.Scenario, error) { return randomCase(r, nil) })
	if err != nil {
		return nil, err
	}
	return &Table{
		ID:     "headline",
		Title:  "random DAGs: average makespan by strategy (paper: HEFT 4075, AHEFT 3911, Min-Min 12352)",
		Header: []string{"strategy", "avg makespan", "±95% CI", "n"},
		Rows: [][]string{
			{"HEFT (static)", f2(agg.HEFT.Mean()), f2(agg.HEFT.CI95()), strconv.Itoa(agg.HEFT.N())},
			{"AHEFT (adaptive)", f2(agg.AHEFT.Mean()), f2(agg.AHEFT.CI95()), strconv.Itoa(agg.AHEFT.N())},
			{"Min-Min (dynamic)", f2(agg.MinMin.Mean()), f2(agg.MinMin.CI95()), strconv.Itoa(agg.MinMin.N())},
		},
		Notes: []string{"absolute scale depends on the unreported ω_DAG; compare ratios and ordering"},
	}, nil
}

// Table3 reproduces "Improvement rate with various CCRs" on random DAGs
// (paper: 0.4%, 0.5%, 0.7%, 3.2%, 7.7%).
func Table3(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "table3",
		Title:  "random DAGs: AHEFT improvement rate over HEFT vs CCR (paper: 0.4/0.5/0.7/3.2/7.7%)",
		Header: []string{"CCR", "improvement", "HEFT", "AHEFT", "n"},
	}
	for _, ccr := range CCRs {
		ccr := ccr
		agg, err := runPoint(cfg, "table3", fmt.Sprintf("ccr=%g", ccr), false,
			func(r *rng.Source) (*workload.Scenario, error) {
				return randomCase(r, func(p *workload.RandomParams, gp *workload.GridParams) { p.CCR = ccr })
			})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", ccr), pct(agg.Improvement.Mean()),
			f2(agg.HEFT.Mean()), f2(agg.AHEFT.Mean()), strconv.Itoa(agg.HEFT.N()),
		})
	}
	return t, nil
}

// Table4 reproduces "Improvement rate with various total number of jobs"
// on random DAGs (paper: 2.9%, 3.9%, 4.3%, 4.2%, 4.1%).
func Table4(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "table4",
		Title:  "random DAGs: AHEFT improvement rate over HEFT vs job count (paper: 2.9/3.9/4.3/4.2/4.1%)",
		Header: []string{"jobs", "improvement", "HEFT", "AHEFT", "n"},
	}
	for _, v := range RandomJobs {
		v := v
		agg, err := runPoint(cfg, "table4", fmt.Sprintf("v=%d", v), false,
			func(r *rng.Source) (*workload.Scenario, error) {
				return randomCase(r, func(p *workload.RandomParams, gp *workload.GridParams) { p.Jobs = v })
			})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(v), pct(agg.Improvement.Mean()),
			f2(agg.HEFT.Mean()), f2(agg.AHEFT.Mean()), strconv.Itoa(agg.HEFT.N()),
		})
	}
	return t, nil
}
