// Package planner implements the Planner side of the paper's Fig. 1
// architecture: per-workflow Scheduler instances that make an initial
// plan, listen for run-time events, evaluate each event by tentative
// rescheduling, and adopt the new schedule only when it improves the
// predicted makespan (the generic adaptive rescheduling algorithm of
// Fig. 2).
//
// The loop is generic over the scheduling policy (the paper's heuristic H):
// both drivers execute any policy.Policy from the registry — classic
// static HEFT, the paper's AHEFT, or the just-in-time Min-Min family —
// through the same engine path, each run owning one scheduling kernel
// (internal/kernel) that carries the rank cache, the dense execution
// state and the placement scratch across events. The analytic runner in
// this file replays the paper's experiment setting directly — accurate
// estimates, so execution follows the schedule exactly and only
// resource-arrival events can change anything; it is what the experiment
// harness and benchmarks use, since it is fast and provably equivalent to
// the event-driven execution (an integration test in this package checks
// the equivalence). The event-driven Service in service.go subscribes to
// an executor's event stream and is used by the architecture examples and
// the what-if API.
package planner

import (
	"context"
	"fmt"

	"aheft/internal/core"
	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/kernel"
	"aheft/internal/policy"
	"aheft/internal/schedule"
)

// RunOptions tunes the planner. It is an alias of policy.Options so the
// engine and the policies share one configuration type; the zero value
// reproduces the paper's configuration.
type RunOptions = policy.Options

// Trigger classifies what caused a rescheduling evaluation.
type Trigger int

const (
	// TriggerArrival is a resource-pool change event (the paper's primary
	// trigger).
	TriggerArrival Trigger = iota
	// TriggerVariance is a significant deviation of a measured job runtime
	// from the performance history (ServiceOptions.VarianceThreshold).
	TriggerVariance
	// TriggerDeparture is a resource leaving the pool (live feedback
	// runs): unstarted jobs scheduled on the departed resource make the
	// current plan infeasible, which forces adoption of the replan.
	TriggerDeparture
	// TriggerContention is a cross-workflow occupancy change on a shared
	// grid: another workflow finished jobs or departed, releasing its
	// reservations, so the survivors' slot searches see freed capacity —
	// the arrival/departure analogue when the "resource" that changed is
	// another tenant's claim on the grid.
	TriggerContention
	// TriggerUpgrade is the slow half of the two-speed admission path: a
	// workflow admitted under overload with a cheap greedy placement is
	// asynchronously re-evaluated with the full rank-and-insertion pass,
	// and the better plan adopted through the normal decision machinery.
	// Unlike the event triggers above it is not caused by anything the
	// grid did — it is the daemon paying back the planning debt it took
	// on to keep admission latency flat.
	TriggerUpgrade
)

// String returns the trigger's name.
func (t Trigger) String() string {
	switch t {
	case TriggerArrival:
		return "arrival"
	case TriggerVariance:
		return "variance"
	case TriggerDeparture:
		return "departure"
	case TriggerContention:
		return "contention"
	case TriggerUpgrade:
		return "upgrade"
	default:
		return fmt.Sprintf("Trigger(%d)", int(t))
	}
}

// Decision records one rescheduling evaluation: the Fig. 2 loop body at a
// single event.
type Decision struct {
	Clock        float64 // event time
	PoolSize     int     // resources available after the event
	OldMakespan  float64 // S0's predicted makespan
	NewMakespan  float64 // S1's predicted makespan
	Adopted      bool    // whether S1 replaced S0
	JobsFinished int     // jobs already completed at the event
	Trigger      Trigger // what caused this evaluation
	ArrivedCount int     // resources that joined at the event (arrival trigger)

	// The fields below are process-local telemetry, not replayable state:
	// the kernel's delta memo lives in memory, so a recovered run may
	// legitimately take the full path where the original took the delta
	// (the schedules are bit-identical either way). They are excluded
	// from serialised forms — the wire layers that want them map them
	// explicitly.

	// Path records how the evaluation's replan was computed: "delta" when
	// the kernel's incremental path proved a small dirty cone and reused
	// the memoized placements, "full" otherwise (including every delta
	// fallback). Empty for engines that never ask for the incremental path.
	Path string `json:"-"`
	// ConeSize is the number of jobs the delta path re-probed (0 on the
	// full path). FallbackReason is the kernel's fallback cause when an
	// incremental attempt fell back to a full replan.
	ConeSize       int    `json:"-"`
	FallbackReason string `json:"-"`
	// ElapsedMs is the wall-clock cost of the replan in milliseconds.
	// RankMs/PlaceMs split it into the kernel's upward-rank phase and
	// the placement (or delta-probe) phase — the kernel timing hooks
	// the evaluate spans surface.
	ElapsedMs float64 `json:"-"`
	RankMs    float64 `json:"-"`
	PlaceMs   float64 `json:"-"`
}

// Result is the outcome of running one workflow to completion under one
// policy.
type Result struct {
	// Policy is the registry name of the policy that produced the result.
	Policy string
	// Schedule is the final (possibly rescheduled) schedule; with accurate
	// estimates its assignment times are the actual execution times.
	Schedule *schedule.Schedule
	// Makespan is the workflow's completion time.
	Makespan float64
	// InitialMakespan is the makespan of the initial schedule — identical
	// between HEFT and AHEFT by construction.
	InitialMakespan float64
	// Decisions lists every rescheduling evaluation (empty for
	// non-adaptive policies).
	Decisions []Decision
}

// Improvement returns the fractional makespan improvement of the final
// schedule over the initial static schedule.
func (r *Result) Improvement() float64 {
	if r.InitialMakespan <= 0 {
		return 0
	}
	return (r.InitialMakespan - r.Makespan) / r.InitialMakespan
}

// Adoptions counts adopted reschedules.
func (r *Result) Adoptions() int {
	n := 0
	for _, d := range r.Decisions {
		if d.Adopted {
			n++
		}
	}
	return n
}

// RunPolicy executes workflow g on the dynamic pool under any scheduling
// policy with accurate cost estimates, returning the completed execution.
// It honours ctx: cancellation between planning steps aborts the run with
// the context's error.
//
// The engine creates the run's scheduling kernel, asks the policy for the
// initial plan, then — for adaptive policies — walks the pool's change
// events in time order. At each event time t before the workflow
// completes it updates the dense execution snapshot of the current
// schedule at clock t, asks the policy to replan over the enlarged
// resource set, and adopts the result if it strictly improves the
// makespan (Fig. 2, lines 7–9).
func RunPolicy(ctx context.Context, g *dag.Graph, est cost.Estimator, pool *grid.Pool, pol policy.Policy, opts policy.Options) (*Result, error) {
	return runPolicy(ctx, g, est, pool, pol, opts, nil)
}

// RunPolicyObserved is RunPolicy with a live decision observer: observe is
// invoked synchronously for every rescheduling evaluation as it is made.
// The root facade's Session uses it to stream events to subscribers.
func RunPolicyObserved(ctx context.Context, g *dag.Graph, est cost.Estimator, pool *grid.Pool, pol policy.Policy, opts policy.Options, observe func(Decision)) (*Result, error) {
	return runPolicy(ctx, g, est, pool, pol, opts, observe)
}

func runPolicy(ctx context.Context, g *dag.Graph, est cost.Estimator, pool *grid.Pool, pol policy.Policy, opts policy.Options, observe func(Decision)) (*Result, error) {
	if pol == nil {
		return nil, fmt.Errorf("planner: nil policy")
	}
	if err := validateInputs(g, pool); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := kernel.New(g, est)
	if opts.Data != nil {
		k.SetData(opts.Data)
	}
	initial, err := pol.Plan(k, pool, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Policy:          pol.Name(),
		Schedule:        initial,
		Makespan:        initial.Makespan(),
		InitialMakespan: initial.Makespan(),
	}
	if !pol.Adaptive() {
		return res, nil
	}

	// The analytic engine mirrors the event-driven Execution Manager
	// exactly (an integration test holds the two to bit-equality), which
	// requires carrying the file-transfer ledger *across* rescheduling
	// decisions: a transfer initiated under an earlier schedule generation
	// — at a producer's finish toward its consumer's then-current
	// resource, or as a fresh Case-2 transfer at an earlier adoption —
	// keeps its ETA even after the consumer moves again. Rebuilding the
	// ledger from the current schedule alone would forget those copies and
	// mis-time rescheduled starts. The ledger lives in the kernel's dense
	// state, which persists across the whole event walk.
	s0 := initial
	st := k.NewState(pool.Size())
	prev := 0.0
	for _, t := range pool.ChangeTimes() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if t >= s0.Makespan() {
			break // the workflow finished before this event
		}
		rs := pool.AvailableAt(t)
		// Ship the outputs of every job that finished in (prev, t] under
		// the schedule that was current during that window.
		shipWindow(g, k, s0, st, prev, t)
		// Classify jobs at clock t.
		st.Clock = t
		st.ClearPinned()
		for _, j := range g.Jobs() {
			a := s0.MustGet(j.ID)
			switch {
			case a.Finish <= t:
				st.Finish(j.ID, a.Resource, a.Start, a.Finish)
			case a.Start < t && !opts.RestartRunning:
				st.Pin(a)
			}
		}
		s1, err := pol.Replan(k, rs, st, opts)
		if err != nil {
			return nil, err
		}
		if s1 == nil {
			prev = t
			continue // the policy proposes nothing for this event
		}
		d := Decision{
			Clock:        t,
			PoolSize:     len(rs),
			OldMakespan:  s0.Makespan(),
			NewMakespan:  s1.Makespan(),
			JobsFinished: st.FinishedCount(),
			Trigger:      TriggerArrival,
			ArrivedCount: len(pool.ArrivalsAt(t)),
		}
		if core.Better(s0.Makespan(), s1.Makespan(), opts.Eps) {
			d.Adopted = true
			s0 = s1
			// Mirror the Execution Manager's input staging on resubmit:
			// fresh transfers start now for every rescheduled job whose
			// finished predecessor's file is not already at (or moving to)
			// its new resource (Eq. 1 Case 2 made physical).
			for _, j := range g.Jobs() {
				if st.Finished(j.ID) || st.Pinned(j.ID) {
					continue
				}
				a1 := s1.MustGet(j.ID)
				for _, e := range g.Preds(j.ID) {
					if !st.Finished(e.From) {
						continue
					}
					if st.HasTransfer(e.From, j.ID, a1.Resource) {
						continue
					}
					pr, _, _ := st.FinishedOutcome(e.From)
					st.SetTransfer(e.From, j.ID, a1.Resource, t+est.Comm(e, pr, a1.Resource))
				}
			}
		}
		res.Decisions = append(res.Decisions, d)
		if observe != nil {
			observe(d)
		}
		prev = t
	}
	res.Schedule = s0
	res.Makespan = s0.Makespan()
	return res, nil
}

// shipWindow records, in the dense ledger of st, the static
// ship-on-finish transfers of every job whose finish time under s0 falls
// in (prev, t]: each output file becomes available on the producer's own
// resource at its finish and on the consumer's currently scheduled
// resource one transfer later.
func shipWindow(g *dag.Graph, k *kernel.Kernel, s0 *schedule.Schedule, st *kernel.State, prev, t float64) {
	for _, j := range g.Jobs() {
		a := s0.MustGet(j.ID)
		if a.Finish <= prev || a.Finish > t {
			continue
		}
		for _, e := range g.Succs(j.ID) {
			st.SetTransfer(j.ID, e.To, a.Resource, a.Finish)
			sa := s0.MustGet(e.To)
			st.SetTransfer(j.ID, e.To, sa.Resource, a.Finish+k.CommEst(e, a.Resource, sa.Resource))
		}
	}
}

func validateInputs(g *dag.Graph, pool *grid.Pool) error {
	if g == nil || g.Len() == 0 {
		return fmt.Errorf("planner: empty workflow")
	}
	if pool == nil || pool.Size() == 0 {
		return fmt.Errorf("planner: empty pool")
	}
	if len(pool.Initial()) == 0 {
		return fmt.Errorf("planner: no resources at time 0")
	}
	return nil
}
