package planner

import (
	"fmt"

	"aheft/internal/core"
	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/schedule"
)

// WhatIfQuery is the paper's §3.3 "What...if..." capacity-planning
// question: what would the workflow's expected makespan become if the
// resource pool changed right now?
type WhatIfQuery struct {
	// Clock is the hypothetical evaluation time within the current
	// schedule's execution.
	Clock float64
	// Add lists hypothetical new resources (their computation costs must
	// be covered by the estimator).
	Add []grid.Resource
	// Remove lists resources hypothetically leaving the pool. Files
	// already produced remain accessible (storage outlives the compute
	// slot); running jobs on removed resources are restarted elsewhere.
	Remove []grid.ID
}

// WhatIfAnswer reports the evaluation's outcome.
type WhatIfAnswer struct {
	// CurrentMakespan is the makespan if nothing changes.
	CurrentMakespan float64
	// NewMakespan is the predicted makespan after rescheduling under the
	// hypothetical pool.
	NewMakespan float64
	// WouldAdopt reports whether the adaptive planner would switch
	// schedules (strict improvement).
	WouldAdopt bool
	// Schedule is the hypothetical schedule.
	Schedule *schedule.Schedule
}

// Delta returns NewMakespan − CurrentMakespan (negative is an
// improvement).
func (a *WhatIfAnswer) Delta() float64 { return a.NewMakespan - a.CurrentMakespan }

// WhatIf evaluates a hypothetical pool change against the currently
// executing schedule s0 at q.Clock, using the same snapshot + reschedule
// machinery as the live planner, without submitting anything. available
// is the real resource set at q.Clock.
func WhatIf(g *dag.Graph, est cost.Estimator, s0 *schedule.Schedule, available []grid.Resource, q WhatIfQuery, opts RunOptions) (*WhatIfAnswer, error) {
	if s0 == nil || s0.Len() != g.Len() {
		return nil, fmt.Errorf("planner: WhatIf needs a complete current schedule")
	}
	removed := make(map[grid.ID]bool, len(q.Remove))
	for _, r := range q.Remove {
		removed[r] = true
	}
	rs := make([]grid.Resource, 0, len(available)+len(q.Add))
	for _, r := range available {
		if !removed[r.ID] {
			rs = append(rs, r)
		}
	}
	for _, r := range q.Add {
		if removed[r.ID] {
			continue
		}
		rs = append(rs, r)
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("planner: WhatIf leaves an empty pool")
	}

	snap := core.Snapshot(g, est, s0, q.Clock, core.SnapshotOptions{RestartRunning: opts.RestartRunning})
	// Jobs running on a removed resource cannot finish there: restart
	// them under the hypothesis.
	for j, a := range snap.Pinned {
		if removed[a.Resource] {
			delete(snap.Pinned, j)
		}
	}
	s1, err := core.Reschedule(g, est, rs, snap, core.Options{
		NoInsertion: opts.NoInsertion,
		TieWindow:   opts.TieWindow,
	})
	if err != nil {
		return nil, err
	}
	cur := s0.Makespan()
	return &WhatIfAnswer{
		CurrentMakespan: cur,
		NewMakespan:     s1.Makespan(),
		WouldAdopt:      core.Better(cur, s1.Makespan(), opts.Eps),
		Schedule:        s1,
	}, nil
}
