package planner

import (
	"fmt"

	"aheft/internal/core"
	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/executor"
	"aheft/internal/grid"
	"aheft/internal/heft"
	"aheft/internal/history"
	"aheft/internal/sim"
	"aheft/internal/trace"
)

// ServiceOptions configures an event-driven Scheduler instance.
type ServiceOptions struct {
	RunOptions
	// Runtime supplies actual durations for the executor; nil uses the
	// estimator itself (accurate estimation).
	Runtime executor.Runtime
	// History, when non-nil, is updated with every measured job runtime —
	// the Fig. 1 feedback loop into the Performance History Repository.
	History *history.Repository
	// VarianceThreshold, when positive, makes the Planner also evaluate a
	// reschedule when a job's measured runtime deviates from the history
	// EWMA by more than this relative amount — the paper's "significant
	// variance of job performance" event.
	VarianceThreshold float64
	// Static disables event reactions entirely (one-shot HEFT enacted by
	// the executor); used to compare strategies on the same engine.
	Static bool
	// Trace, when non-nil, records every run-time event and every
	// rescheduling decision into the collector.
	Trace *trace.Collector
}

// Service is one Scheduler instance of the paper's Fig. 1 Planner: it owns
// a single workflow, makes the initial plan, subscribes to the Executor's
// run-time events, and reschedules adaptively.
type Service struct {
	g    *dag.Graph
	est  cost.Estimator
	pool *grid.Pool
	opts ServiceOptions

	engine    *executor.Engine
	decisions []Decision
	initial   float64
}

// NewService plans the workflow and prepares an executor engine wired to
// this service's event handler.
func NewService(g *dag.Graph, est cost.Estimator, pool *grid.Pool, opts ServiceOptions) (*Service, error) {
	if err := validateInputs(g, pool); err != nil {
		return nil, err
	}
	s := &Service{g: g, est: est, pool: pool, opts: opts}
	initial, err := heft.Schedule(g, est, pool.Initial(), heft.Options{NoInsertion: opts.NoInsertion})
	if err != nil {
		return nil, err
	}
	s.initial = initial.Makespan()
	rt := opts.Runtime
	if rt == nil {
		rt = est
	}
	var handler executor.EventHandler = s
	if opts.Trace != nil {
		// The collector sees every event first, then forwards it to the
		// Scheduler, so decisions appear after the event that caused them.
		opts.Trace.Chain(s)
		handler = opts.Trace
	}
	engine, err := executor.New(sim.New(), g, rt, pool, initial, handler)
	if err != nil {
		return nil, err
	}
	s.engine = engine
	return s, nil
}

// Execute runs the workflow to completion through the event-driven
// executor and reports the outcome.
func (s *Service) Execute() (*Result, error) {
	if _, err := s.engine.Run(); err != nil {
		return nil, err
	}
	strat := StrategyAdaptive
	if s.opts.Static {
		strat = StrategyStatic
	}
	return &Result{
		Strategy:        strat,
		Schedule:        s.engine.Schedule(),
		Makespan:        s.engine.Makespan(),
		InitialMakespan: s.initial,
		Decisions:       s.decisions,
	}, nil
}

// Engine exposes the underlying executor (for inspection in tests and
// tools).
func (s *Service) Engine() *executor.Engine { return s.engine }

// HandleEvent implements executor.EventHandler: the Fig. 2 loop body. A
// resource-arrival event (and, optionally, a significant performance
// variance) triggers evaluation by rescheduling; the new schedule is
// submitted only when it improves the predicted makespan.
func (s *Service) HandleEvent(ev executor.Event) {
	if s.opts.Static {
		return
	}
	if ev.Finished != dag.NoJob {
		s.onFinish(ev)
		return
	}
	if len(ev.Arrived) > 0 {
		s.evaluate(ev.Time, len(ev.Arrived))
	}
}

func (s *Service) onFinish(ev executor.Event) {
	if s.opts.History == nil {
		return
	}
	op := s.g.Job(ev.Finished).Op
	variance, hasHistory := s.opts.History.Variance(op, ev.OnResource, ev.ActualDuration)
	// Record after measuring variance so the event is judged against the
	// history excluding this very observation.
	_ = s.opts.History.Record(op, ev.OnResource, ev.ActualDuration)
	if s.opts.VarianceThreshold > 0 && hasHistory && variance > s.opts.VarianceThreshold {
		s.evaluate(ev.Time, 0)
	}
}

// evaluate performs one rescheduling evaluation at the current clock.
func (s *Service) evaluate(clock float64, arrived int) {
	st := s.engine.ExecState()
	rs := s.pool.AvailableAt(clock)
	s1, err := core.Reschedule(s.g, s.est, rs, st, core.Options{
		NoInsertion: s.opts.NoInsertion,
		TieWindow:   s.opts.TieWindow,
	})
	if err != nil {
		// An evaluation failure must not kill the running workflow; keep
		// the current schedule (the paper's "otherwise the Planner does
		// not take any action").
		return
	}
	cur := s.engine.Schedule().Makespan()
	d := Decision{
		Clock:        clock,
		PoolSize:     len(rs),
		OldMakespan:  cur,
		NewMakespan:  s1.Makespan(),
		JobsFinished: len(st.Finished),
	}
	if core.Better(cur, s1.Makespan(), s.opts.Eps) {
		if err := s.engine.Resubmit(s1); err == nil {
			d.Adopted = true
		}
	}
	s.decisions = append(s.decisions, d)
	if s.opts.Trace != nil {
		s.opts.Trace.Reschedule(clock, d.OldMakespan, d.NewMakespan, d.Adopted)
	}
	_ = arrived
}

// String describes the service.
func (s *Service) String() string {
	mode := "adaptive"
	if s.opts.Static {
		mode = "static"
	}
	return fmt.Sprintf("planner.Service(%s, %s, %d jobs)", s.g.Name(), mode, s.g.Len())
}
