package planner

import (
	"context"
	"fmt"
	"time"

	"aheft/internal/core"
	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/executor"
	"aheft/internal/grid"
	"aheft/internal/history"
	"aheft/internal/kernel"
	"aheft/internal/policy"
	"aheft/internal/sim"
	"aheft/internal/trace"
)

// ServiceOptions configures an event-driven Scheduler instance.
type ServiceOptions struct {
	RunOptions
	// Policy selects the scheduling policy the service drives; nil means
	// the registry's "aheft" policy.
	Policy policy.Policy
	// Runtime supplies actual durations for the executor; nil uses the
	// estimator itself (accurate estimation).
	Runtime executor.Runtime
	// History, when non-nil, is updated with every measured job runtime —
	// the Fig. 1 feedback loop into the Performance History Repository.
	History *history.Repository
	// VarianceThreshold, when positive, makes the Planner also evaluate a
	// reschedule when a job's measured runtime deviates from the history
	// EWMA by more than this relative amount — the paper's "significant
	// variance of job performance" event.
	VarianceThreshold float64
	// Trace, when non-nil, records every run-time event and every
	// rescheduling decision into the collector.
	Trace *trace.Collector
}

// policyOrDefault resolves the configured policy.
func (o ServiceOptions) policyOrDefault() (policy.Policy, error) {
	if o.Policy != nil {
		return o.Policy, nil
	}
	return policy.Get("aheft")
}

// Service is one Scheduler instance of the paper's Fig. 1 Planner: it owns
// a single workflow, makes the initial plan under its policy, subscribes
// to the Executor's run-time events, and replans adaptively when the
// policy is adaptive.
type Service struct {
	g    *dag.Graph
	est  cost.Estimator
	pool *grid.Pool
	pol  policy.Policy
	opts ServiceOptions

	k  *kernel.Kernel // the run's scheduling kernel (rank cache + scratch)
	ks *kernel.State  // dense snapshot scratch, refilled per evaluation

	engine    *executor.Engine
	decisions []Decision
	initial   float64
	ctx       context.Context // non-nil only during ExecuteContext
}

// NewService plans the workflow under the configured policy and prepares
// an executor engine wired to this service's event handler.
func NewService(g *dag.Graph, est cost.Estimator, pool *grid.Pool, opts ServiceOptions) (*Service, error) {
	if err := validateInputs(g, pool); err != nil {
		return nil, err
	}
	pol, err := opts.policyOrDefault()
	if err != nil {
		return nil, err
	}
	s := &Service{g: g, est: est, pool: pool, pol: pol, opts: opts}
	s.k = kernel.New(g, est)
	if opts.RunOptions.Data != nil {
		s.k.SetData(opts.RunOptions.Data)
	}
	s.ks = s.k.NewState(pool.Size())
	initial, err := pol.Plan(s.k, pool, opts.RunOptions)
	if err != nil {
		return nil, err
	}
	s.initial = initial.Makespan()
	rt := opts.Runtime
	if rt == nil {
		rt = est
	}
	var handler executor.EventHandler = s
	if opts.Trace != nil {
		// The collector sees every event first, then forwards it to the
		// Scheduler, so decisions appear after the event that caused them.
		opts.Trace.Chain(s)
		handler = opts.Trace
	}
	engine, err := executor.New(sim.New(), g, rt, pool, initial, handler)
	if err != nil {
		return nil, err
	}
	s.engine = engine
	return s, nil
}

// Execute runs the workflow to completion through the event-driven
// executor and reports the outcome.
func (s *Service) Execute() (*Result, error) {
	return s.ExecuteContext(context.Background())
}

// ExecuteContext is Execute honouring ctx: cancellation aborts the
// discrete-event execution at the next run-time event.
func (s *Service) ExecuteContext(ctx context.Context) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.ctx = ctx
	defer func() { s.ctx = nil }()
	if _, err := s.engine.Run(); err != nil {
		return nil, err
	}
	return &Result{
		Policy:          s.pol.Name(),
		Schedule:        s.engine.Schedule(),
		Makespan:        s.engine.Makespan(),
		InitialMakespan: s.initial,
		Decisions:       s.decisions,
	}, nil
}

// Engine exposes the underlying executor (for inspection in tests and
// tools).
func (s *Service) Engine() *executor.Engine { return s.engine }

// Policy returns the scheduling policy the service drives.
func (s *Service) Policy() policy.Policy { return s.pol }

// HandleEvent implements executor.EventHandler: the Fig. 2 loop body. A
// resource-arrival event (and, optionally, a significant performance
// variance) triggers evaluation by replanning; the new schedule is
// submitted only when it improves the predicted makespan.
func (s *Service) HandleEvent(ev executor.Event) {
	if s.ctx != nil && s.ctx.Err() != nil {
		s.engine.Cancel(s.ctx.Err())
		return
	}
	if ev.Finished != dag.NoJob {
		s.onFinish(ev)
		return
	}
	if !s.pol.Adaptive() {
		return
	}
	if len(ev.Arrived) > 0 {
		s.evaluate(ev.Time, TriggerArrival, len(ev.Arrived))
	}
}

// onFinish is the Performance Monitor feeding the history repository; it
// measures for every policy (the Fig. 1 loop exists regardless of what
// the Planner does with it), while the variance *reaction* is the
// adaptive policies' business.
func (s *Service) onFinish(ev executor.Event) {
	if s.opts.History == nil {
		return
	}
	op := s.g.Job(ev.Finished).Op
	variance, hasHistory := s.opts.History.Variance(op, ev.OnResource, ev.ActualDuration)
	// Record after measuring variance so the event is judged against the
	// history excluding this very observation.
	_ = s.opts.History.Record(op, ev.OnResource, ev.ActualDuration)
	if s.pol.Adaptive() && s.opts.VarianceThreshold > 0 && hasHistory && variance > s.opts.VarianceThreshold {
		s.evaluate(ev.Time, TriggerVariance, 0)
	}
}

// evaluate performs one rescheduling evaluation at the current clock,
// recording what triggered it and how many resources arrived.
func (s *Service) evaluate(clock float64, trigger Trigger, arrived int) {
	st := s.engine.ExecState()
	// Sync (not reload) the dense state: the executor's facts are
	// monotone, and keeping the state's epoch lets the kernel's delta
	// path react incrementally to small events.
	core.SyncState(s.ks, st)
	rs := s.pool.AvailableAt(clock)
	// The event-driven service may run a history-consulting estimator
	// (the Fig. 1 feedback loop sharpens predictions while the workflow
	// executes), so cached upward ranks can go stale even when the
	// resource set did not change — e.g. on a variance-triggered
	// evaluation. A versioned estimator advertises that drift and the
	// kernel recomputes by itself; only unversioned ones need the
	// explicit invalidation (which would also defeat the delta memo).
	if _, versioned := s.est.(kernel.VersionedEstimator); !versioned {
		s.k.InvalidateRanks()
	}
	opts := s.opts.RunOptions
	opts.Incremental = true
	began := time.Now()
	s1, err := s.pol.Replan(s.k, rs, s.ks, opts)
	elapsed := time.Since(began)
	if err != nil {
		// An evaluation failure must not kill the running workflow; keep
		// the current schedule (the paper's "otherwise the Planner does
		// not take any action").
		return
	}
	if s1 == nil {
		return // the policy proposes nothing for this event
	}
	cur := s.engine.Schedule().Makespan()
	d := Decision{
		Clock:        clock,
		PoolSize:     len(rs),
		OldMakespan:  cur,
		NewMakespan:  s1.Makespan(),
		JobsFinished: len(st.Finished),
		Trigger:      trigger,
		ArrivedCount: arrived,
		ElapsedMs:    float64(elapsed) / float64(time.Millisecond),
	}
	if ds := s.k.DeltaStats(); ds.Attempted {
		if ds.Delta {
			d.Path = "delta"
			d.ConeSize = ds.Cone
		} else {
			d.Path = "full"
			d.FallbackReason = ds.Reason
		}
	}
	if core.Better(cur, s1.Makespan(), s.opts.Eps) {
		if err := s.engine.Resubmit(s1); err == nil {
			d.Adopted = true
		}
	}
	s.decisions = append(s.decisions, d)
	if s.opts.Trace != nil {
		s.opts.Trace.Reschedule(clock, d.OldMakespan, d.NewMakespan, d.Adopted, trigger.String(), arrived)
	}
}

// String describes the service.
func (s *Service) String() string {
	return fmt.Sprintf("planner.Service(%s, %s, %d jobs)", s.g.Name(), s.pol.Name(), s.g.Len())
}
