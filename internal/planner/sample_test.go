package planner

import (
	"context"
	"testing"

	"aheft/internal/policy"
	"aheft/internal/workload"
)

// TestSampleHEFTMakespan reproduces the paper's Fig. 5(a): classic HEFT on
// the Fig. 4 DAG over r1–r3 yields makespan 80.
func TestSampleHEFTMakespan(t *testing.T) {
	sc := workload.SampleScenario()
	res, err := RunPolicy(context.Background(), sc.Graph, sc.Estimator(), sc.Pool, policy.MustGet("heft"), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 80 {
		t.Fatalf("HEFT makespan = %g, want 80\n%s", res.Makespan, res.Schedule)
	}
}

// TestSampleAHEFTMakespan reproduces Fig. 5(b): with r4 joining at t = 15
// and near-tie order exploration enabled, AHEFT reschedules the unfinished
// jobs and reaches the paper's published makespan of exactly 76.
//
// Strictly greedy Fig. 3 placement (TieWindow = 0) misses this schedule by
// one locally-attractive move — n5 takes its EFT-minimal slot on r3
// (finish 38) instead of the globally better r2 slot (finish 39) — and
// therefore produces a 80 reschedule that is not adopted; see
// TestSampleAHEFTGreedy below and the discussion in EXPERIMENTS.md.
func TestSampleAHEFTMakespan(t *testing.T) {
	sc := workload.SampleScenario()
	res, err := RunPolicy(context.Background(), sc.Graph, sc.Estimator(), sc.Pool, policy.MustGet("aheft"), RunOptions{TieWindow: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 76 {
		t.Fatalf("AHEFT makespan = %g, want 76\ndecisions: %+v\n%s", res.Makespan, res.Decisions, res.Schedule)
	}
	if res.Adoptions() != 1 {
		t.Fatalf("adoptions = %d, want 1 (the t=15 reschedule)", res.Adoptions())
	}
	if d := res.Decisions[0]; d.Clock != 15 || d.OldMakespan != 80 || d.NewMakespan != 76 {
		t.Fatalf("decision = %+v, want clock 15, 80 → 76", d)
	}
}

// TestSampleAHEFTGreedy documents the strictly greedy behaviour on the
// worked example: the 76 schedule exists (exhaustive search over all
// placements confirms it is the best reachable reschedule) but pure
// EFT-greedy placement produces 80, so the reschedule is rejected and the
// makespan stays at the static 80.
func TestSampleAHEFTGreedy(t *testing.T) {
	sc := workload.SampleScenario()
	res, err := RunPolicy(context.Background(), sc.Graph, sc.Estimator(), sc.Pool, policy.MustGet("aheft"), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 80 {
		t.Fatalf("greedy AHEFT makespan = %g, want 80 (reschedule not adopted)", res.Makespan)
	}
	if res.Adoptions() != 0 {
		t.Fatalf("adoptions = %d, want 0", res.Adoptions())
	}
}
