package planner

import (
	"context"
	"fmt"
	"math"
	"testing"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/history"
	"aheft/internal/policy"
	"aheft/internal/predict"
	"aheft/internal/rng"
	"aheft/internal/trace"
	"aheft/internal/workload"
)

func TestServiceStaticMatchesPlan(t *testing.T) {
	sc := workload.SampleScenario()
	svc, err := NewService(sc.Graph, sc.Estimator(), sc.Pool, ServiceOptions{Policy: policy.MustGet("heft")})
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 80 {
		t.Fatalf("makespan = %g, want 80", res.Makespan)
	}
	if res.Policy != "heft" {
		t.Fatalf("policy = %q", res.Policy)
	}
	if len(res.Decisions) != 0 {
		t.Fatalf("static service made decisions: %+v", res.Decisions)
	}
}

func TestServiceAdaptiveSample(t *testing.T) {
	sc := workload.SampleScenario()
	svc, err := NewService(sc.Graph, sc.Estimator(), sc.Pool, ServiceOptions{
		RunOptions: RunOptions{TieWindow: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 76 {
		t.Fatalf("makespan = %g, want 76", res.Makespan)
	}
	if res.Adoptions() != 1 {
		t.Fatalf("adoptions = %d", res.Adoptions())
	}
}

func TestServiceRecordsHistory(t *testing.T) {
	sc := workload.SampleScenario()
	repo := history.New(0)
	svc, err := NewService(sc.Graph, sc.Estimator(), sc.Pool, ServiceOptions{History: repo})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Execute(); err != nil {
		t.Fatal(err)
	}
	if repo.Len() == 0 {
		t.Fatal("no history recorded")
	}
	// Every job ran once; per-(op,resource) cells sum to the job count.
	total := 0
	for _, k := range repo.Keys() {
		s, _ := repo.Lookup(k.Op, k.Resource)
		total += s.Count
	}
	if total != sc.Graph.Len() {
		t.Fatalf("history holds %d runs, want %d", total, sc.Graph.Len())
	}
}

func TestServiceString(t *testing.T) {
	sc := workload.SampleScenario()
	svc, err := NewService(sc.Graph, sc.Estimator(), sc.Pool, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if svc.String() == "" || svc.Engine() == nil {
		t.Fatal("accessors broken")
	}
}

func TestServiceRejectsBadInput(t *testing.T) {
	sc := workload.SampleScenario()
	if _, err := NewService(nil, sc.Estimator(), sc.Pool, ServiceOptions{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewService(sc.Graph, sc.Estimator(), nil, ServiceOptions{}); err == nil {
		t.Fatal("nil pool accepted")
	}
}

// TestServiceWithNoisyRuntime: when actual durations deviate from the
// estimates, the event-driven execution still completes (the engine delays
// dependents as needed) — the setting the paper's assumption 1 excludes
// from its experiments but the architecture must survive.
func TestServiceWithNoisyRuntime(t *testing.T) {
	root := rng.New(0x0DD)
	for i := 0; i < 10; i++ {
		r := root.Split(fmt.Sprintf("case-%d", i))
		sc, err := workload.RandomScenario(workload.RandomParams{
			Jobs: 20 + r.IntN(30), CCR: 1, OutDegree: 0.3, Beta: 0.5,
		}, workload.GridParams{
			InitialResources: 4, ChangeInterval: 200, ChangePct: 0.3, MaxEvents: 3,
		}, r)
		if err != nil {
			t.Fatal(err)
		}
		noisy := &predict.Noisy{Base: sc.Estimator(), Error: 0.4, Rng: r.Split("noise")}
		svc, err := NewService(sc.Graph, sc.Estimator(), sc.Pool, ServiceOptions{
			Runtime: noisy, // actual runtimes differ up to ±40% from estimates
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.Execute()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if res.Makespan <= 0 {
			t.Fatalf("case %d: no makespan", i)
		}
	}
}

// TestServiceVarianceEventTriggersEvaluation: the Performance Monitor path
// — with a variance threshold and a runtime that deviates, the planner
// evaluates reschedules on job-finish events too.
func TestServiceVarianceEventTriggersEvaluation(t *testing.T) {
	r := rng.New(0x77)
	sc, err := workload.BlastScenario(workload.AppParams{
		Parallelism: 20, CCR: 0.5, Beta: 0.5,
	}, workload.GridParams{InitialResources: 4}, r)
	if err != nil {
		t.Fatal(err)
	}
	repo := history.New(0)
	slow := &scaled{base: sc.Estimator(), factor: 1.6}
	svc, err := NewService(sc.Graph, sc.Estimator(), sc.Pool, ServiceOptions{
		Runtime:           slow,
		History:           repo,
		VarianceThreshold: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Execute()
	if err != nil {
		t.Fatal(err)
	}
	// The pool never changes, so every decision must stem from a variance
	// event. The first execution of each (op, resource) builds history at
	// the inflated duration; deviations afterwards are small, so the count
	// is modest — but with a 1.6× systematic error against an estimator
	// history seeded by the estimates, at least one variance event fires.
	if len(res.Decisions) == 0 {
		t.Skip("no variance event fired for this seed (history warmed too fast)")
	}
}

type scaled struct {
	base   cost.Estimator
	factor float64
}

func (s *scaled) Comp(j dag.JobID, r grid.ID) float64   { return s.factor * s.base.Comp(j, r) }
func (s *scaled) Comm(e dag.Edge, a, b grid.ID) float64 { return s.base.Comm(e, a, b) }

// --- WhatIf tests ---

func TestWhatIfAddResource(t *testing.T) {
	sc := workload.SampleScenario()
	g, est := sc.Graph, sc.Estimator()
	s0, err := RunPolicy(context.Background(), g, est, sc.Pool, policy.MustGet("heft"), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r4, _ := sc.Pool.Resource(3)
	ans, err := WhatIf(g, est, s0.Schedule, sc.Pool.AvailableAt(0), WhatIfQuery{
		Clock: 15,
		Add:   []grid.Resource{r4},
	}, RunOptions{TieWindow: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if ans.CurrentMakespan != 80 || ans.NewMakespan != 76 || !ans.WouldAdopt {
		t.Fatalf("WhatIf(add r4 at 15) = %+v, want 80 → 76, adopt", ans)
	}
	if ans.Delta() != -4 {
		t.Fatalf("Delta = %g, want -4", ans.Delta())
	}
}

func TestWhatIfRemoveResource(t *testing.T) {
	sc := workload.SampleScenario()
	g, est := sc.Graph, sc.Estimator()
	s0, err := RunPolicy(context.Background(), g, est, sc.Pool, policy.MustGet("heft"), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Removing r2 (ID 1) mid-run: the plan must survive on fewer
	// resources, almost surely for a longer makespan, never adopted.
	ans, err := WhatIf(g, est, s0.Schedule, sc.Pool.AvailableAt(0), WhatIfQuery{
		Clock:  15,
		Remove: []grid.ID{1},
	}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ans.NewMakespan < ans.CurrentMakespan {
		t.Fatalf("removal should not speed things up: %+v", ans)
	}
	if ans.WouldAdopt {
		t.Fatal("removal result must not be 'adopted'")
	}
	// No job may be placed on the removed resource after the clock.
	for _, a := range ans.Schedule.Assignments() {
		if a.Resource == 1 && a.Start >= 15 {
			t.Fatalf("job %d placed on removed r2 at %g", a.Job, a.Start)
		}
	}
}

func TestWhatIfRemoveRunningJobsResource(t *testing.T) {
	sc := workload.SampleScenario()
	g, est := sc.Graph, sc.Estimator()
	s0, err := RunPolicy(context.Background(), g, est, sc.Pool, policy.MustGet("heft"), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// At t=15, n3 runs on r3 (ID 2). Removing r3 must restart n3
	// elsewhere.
	ans, err := WhatIf(g, est, s0.Schedule, sc.Pool.AvailableAt(0), WhatIfQuery{
		Clock:  15,
		Remove: []grid.ID{2},
	}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n3 := g.JobByName("n3")
	a := ans.Schedule.MustGet(n3)
	if a.Resource == 2 {
		t.Fatalf("n3 still on removed r3: %+v", a)
	}
	if a.Start < 15 {
		t.Fatalf("restarted n3 starts at %g before clock", a.Start)
	}
}

func TestWhatIfErrors(t *testing.T) {
	sc := workload.SampleScenario()
	g, est := sc.Graph, sc.Estimator()
	s0, _ := RunPolicy(context.Background(), g, est, sc.Pool, policy.MustGet("heft"), RunOptions{})
	avail := sc.Pool.AvailableAt(0)
	if _, err := WhatIf(g, est, nil, avail, WhatIfQuery{Clock: 0}, RunOptions{}); err == nil {
		t.Fatal("nil schedule accepted")
	}
	if _, err := WhatIf(g, est, s0.Schedule, avail, WhatIfQuery{
		Clock:  0,
		Remove: []grid.ID{0, 1, 2},
	}, RunOptions{}); err == nil {
		t.Fatal("empty hypothetical pool accepted")
	}
}

// TestWhatIfMonotoneInAdditions: adding more resources never predicts a
// worse makespan than adding fewer (with the adoption comparison done
// against the same baseline).
func TestWhatIfMonotoneInAdditions(t *testing.T) {
	r := rng.New(0x99)
	sc, err := workload.BlastScenario(workload.AppParams{
		Parallelism: 40, CCR: 0.5, Beta: 0.5,
	}, workload.GridParams{InitialResources: 6, ChangeInterval: 1e9, ChangePct: 1, MaxEvents: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	g, est := sc.Graph, sc.Estimator()
	s0, err := RunPolicy(context.Background(), g, est, sc.Pool, policy.MustGet("heft"), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	clock := s0.Makespan / 4
	avail := sc.Pool.AvailableAt(clock)
	var future []grid.Resource
	for _, a := range sc.Pool.Arrivals() {
		if a.Time > clock {
			future = append(future, a.Resource)
		}
	}
	prev := math.Inf(1)
	for _, n := range []int{1, 2, 4} {
		if n > len(future) {
			break
		}
		ans, err := WhatIf(g, est, s0.Schedule, avail, WhatIfQuery{Clock: clock, Add: future[:n]}, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Greedy placement is not strictly monotone in theory, but over a
		// superset of resources the EFT-minimising loop can only pick
		// better or equal slots per job given identical orderings; allow
		// a tiny tolerance for rank-order changes.
		if ans.NewMakespan > prev*1.05 {
			t.Fatalf("adding %d resources predicted %g, much worse than %g with fewer",
				n, ans.NewMakespan, prev)
		}
		prev = ans.NewMakespan
	}
}

func TestServiceWithTrace(t *testing.T) {
	sc := workload.SampleScenario()
	col := trace.NewCollector(sc.Graph, nil)
	svc, err := NewService(sc.Graph, sc.Estimator(), sc.Pool, ServiceOptions{
		RunOptions: RunOptions{TieWindow: 0.05},
		Trace:      col,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 76 {
		t.Fatalf("makespan = %g", res.Makespan)
	}
	st := col.Aggregate()
	if st.Finishes != sc.Graph.Len() {
		t.Fatalf("trace finishes = %d, want %d", st.Finishes, sc.Graph.Len())
	}
	if st.Arrivals != 1 || st.Reschedules != 1 || st.Adopted != 1 {
		t.Fatalf("trace stats = %+v", st)
	}
}
