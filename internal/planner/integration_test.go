package planner

import (
	"context"
	"fmt"
	"math"
	"testing"

	"aheft/internal/policy"
	"aheft/internal/rng"
	"aheft/internal/workload"
)

// scenarios yields a diverse, seeded set of test cases spanning random
// DAGs and both application shapes under various grid dynamics.
func testScenarios(t *testing.T, n int) []*workload.Scenario {
	t.Helper()
	root := rng.New(0xA11CE)
	var out []*workload.Scenario
	for i := 0; i < n; i++ {
		r := root.Split(fmt.Sprintf("case-%d", i))
		gp := workload.GridParams{
			InitialResources: 3 + r.IntN(8),
			ChangeInterval:   []float64{150, 300, 600}[r.IntN(3)],
			ChangePct:        []float64{0.1, 0.2, 0.3}[r.IntN(3)],
		}
		var (
			sc  *workload.Scenario
			err error
		)
		switch i % 3 {
		case 0:
			sc, err = workload.RandomScenario(workload.RandomParams{
				Jobs:      10 + r.IntN(40),
				CCR:       []float64{0.2, 1, 5}[r.IntN(3)],
				OutDegree: 0.2,
				Beta:      []float64{0.1, 0.5, 1}[r.IntN(3)],
			}, gp, r)
		case 1:
			sc, err = workload.BlastScenario(workload.AppParams{
				Parallelism: 3 + r.IntN(12),
				CCR:         []float64{0.2, 1, 5}[r.IntN(3)],
				Beta:        0.5,
			}, gp, r)
		default:
			sc, err = workload.Wien2kScenario(workload.AppParams{
				Parallelism: 3 + r.IntN(12),
				CCR:         []float64{0.2, 1, 5}[r.IntN(3)],
				Beta:        0.5,
			}, gp, r)
		}
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		out = append(out, sc)
	}
	return out
}

// TestStaticEnactmentMatchesSchedule checks that the event-driven executor
// reproduces a static HEFT schedule exactly: under accurate estimates,
// actual start/finish times equal the planned ones job for job.
func TestStaticEnactmentMatchesSchedule(t *testing.T) {
	for i, sc := range testScenarios(t, 24) {
		analytic, err := RunPolicy(context.Background(), sc.Graph, sc.Estimator(), sc.Pool, policy.MustGet("heft"), RunOptions{})
		if err != nil {
			t.Fatalf("case %d: analytic: %v", i, err)
		}
		svc, err := NewService(sc.Graph, sc.Estimator(), sc.Pool, ServiceOptions{Policy: policy.MustGet("heft")})
		if err != nil {
			t.Fatalf("case %d: service: %v", i, err)
		}
		res, err := svc.Execute()
		if err != nil {
			t.Fatalf("case %d (%s): execute: %v", i, sc.Graph.Name(), err)
		}
		if math.Abs(res.Makespan-analytic.Makespan) > 1e-6 {
			t.Errorf("case %d (%s): DES makespan %.6f != planned %.6f",
				i, sc.Graph.Name(), res.Makespan, analytic.Makespan)
		}
		for _, j := range sc.Graph.Jobs() {
			want := analytic.Schedule.MustGet(j.ID)
			got := res.Schedule.MustGet(j.ID)
			if got != want {
				t.Fatalf("case %d (%s): job %s enacted %+v, planned %+v",
					i, sc.Graph.Name(), j.Name, got, want)
			}
		}
	}
}

// TestAdaptiveServiceMatchesAnalyticRunner checks the central equivalence:
// the event-driven Planner/Executor collaboration (DES, Fig. 1
// architecture) and the analytic adaptive runner make identical decisions
// and produce identical makespans under accurate estimates.
func TestAdaptiveServiceMatchesAnalyticRunner(t *testing.T) {
	for _, tie := range []float64{0, 0.05} {
		tie := tie
		t.Run(fmt.Sprintf("tie=%g", tie), func(t *testing.T) {
			for i, sc := range testScenarios(t, 24) {
				opts := RunOptions{TieWindow: tie}
				analytic, err := RunPolicy(context.Background(), sc.Graph, sc.Estimator(), sc.Pool, policy.MustGet("aheft"), opts)
				if err != nil {
					t.Fatalf("case %d: analytic: %v", i, err)
				}
				svc, err := NewService(sc.Graph, sc.Estimator(), sc.Pool, ServiceOptions{RunOptions: opts})
				if err != nil {
					t.Fatalf("case %d: service: %v", i, err)
				}
				res, err := svc.Execute()
				if err != nil {
					t.Fatalf("case %d (%s): execute: %v", i, sc.Graph.Name(), err)
				}
				if math.Abs(res.Makespan-analytic.Makespan) > 1e-6 {
					t.Errorf("case %d (%s): DES makespan %.6f != analytic %.6f",
						i, sc.Graph.Name(), res.Makespan, analytic.Makespan)
				}
				if len(res.Decisions) != len(analytic.Decisions) {
					t.Fatalf("case %d (%s): DES made %d decisions, analytic %d\nDES: %+v\nanalytic: %+v",
						i, sc.Graph.Name(), len(res.Decisions), len(analytic.Decisions),
						res.Decisions, analytic.Decisions)
				}
				for k := range res.Decisions {
					dg, dw := res.Decisions[k], analytic.Decisions[k]
					if dg.Clock != dw.Clock || dg.Adopted != dw.Adopted ||
						math.Abs(dg.NewMakespan-dw.NewMakespan) > 1e-6 {
						t.Errorf("case %d (%s): decision %d differs: DES %+v, analytic %+v",
							i, sc.Graph.Name(), k, dg, dw)
					}
				}
			}
		})
	}
}
