package planner

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/policy"
	"aheft/internal/rng"
	"aheft/internal/testleak"
	"aheft/internal/workload"
)

// cancelScenario builds a workflow whose pool fires several reschedule
// events before the makespan, so there is a well-defined "between
// reschedule events" window to cancel in.
func cancelScenario(t *testing.T) *workload.Scenario {
	t.Helper()
	sc, err := workload.RandomScenario(workload.RandomParams{
		Jobs: 40, CCR: 1, OutDegree: 0.3, Beta: 0.5,
	}, workload.GridParams{
		InitialResources: 4, ChangeInterval: 120, ChangePct: 0.25, MaxEvents: 6,
	}, rng.New(0xC0))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestRunPolicyCancelBetweenEvents cancels the context from the decision
// observer — i.e. exactly between two reschedule evaluations — and
// checks the analytic engine aborts with the context's error instead of
// walking the remaining events.
func TestRunPolicyCancelBetweenEvents(t *testing.T) {
	sc := cancelScenario(t)
	pol, err := policy.Get("aheft")
	if err != nil {
		t.Fatal(err)
	}
	// Reference run: the scenario must actually produce ≥ 2 decisions,
	// otherwise the cancellation window does not exist.
	ref, err := RunPolicy(context.Background(), sc.Graph, sc.Estimator(), sc.Pool, pol, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Decisions) < 2 {
		t.Fatalf("scenario produced %d decisions, need >= 2", len(ref.Decisions))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	res, err := RunPolicyObserved(ctx, sc.Graph, sc.Estimator(), sc.Pool, pol, RunOptions{}, func(Decision) {
		seen++
		cancel()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (res %v)", err, res)
	}
	if seen != 1 {
		t.Fatalf("engine evaluated %d more events after cancellation", seen-1)
	}
}

// cancellingRuntime is an accurate runtime that cancels a context after
// the nth job start, so the cancellation lands mid-execution of the
// event-driven engine.
type cancellingRuntime struct {
	est    cost.Estimator
	after  int
	calls  int
	cancel context.CancelFunc
}

func (c *cancellingRuntime) Comp(j dag.JobID, r grid.ID) float64 {
	c.calls++
	if c.calls == c.after {
		c.cancel()
	}
	return c.est.Comp(j, r)
}

func (c *cancellingRuntime) Comm(e dag.Edge, a, b grid.ID) float64 { return c.est.Comm(e, a, b) }

// TestServiceExecuteContextCancelMidRun drives the event-driven Service
// and cancels while jobs are starting: ExecuteContext must return the
// context's error (observed at the next run-time event) and leave no
// goroutine behind.
func TestServiceExecuteContextCancelMidRun(t *testing.T) {
	sc := cancelScenario(t)
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt := &cancellingRuntime{est: sc.Estimator(), after: 8, cancel: cancel}
	svc, err := NewService(sc.Graph, sc.Estimator(), sc.Pool, ServiceOptions{Runtime: rt})
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.ExecuteContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (res %v), want context.Canceled", err, res)
	}
	if rt.calls >= sc.Graph.Len() {
		t.Fatalf("engine started all %d jobs despite cancellation", rt.calls)
	}
	// The discrete-event engine is synchronous, so nothing may linger.
	testleak.Check(t, baseline, 0)
}

// TestServiceExecuteContextPreCancelled: an already-cancelled context
// aborts before any execution.
func TestServiceExecuteContextPreCancelled(t *testing.T) {
	sc := cancelScenario(t)
	svc, err := NewService(sc.Graph, sc.Estimator(), sc.Pool, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.ExecuteContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
