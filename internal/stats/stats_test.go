package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %g, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g", s.Min(), s.Max())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if math.Abs(s.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %g, want %g", s.Var(), 32.0/7.0)
	}
	if math.Abs(s.Stddev()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("Stddev = %g", s.Stddev())
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Var() != 0 || s.StdErr() != 0 || s.CI95() != 0 {
		t.Fatal("empty sample should be all zeros")
	}
	s.Add(42)
	if s.Mean() != 42 || s.Var() != 0 {
		t.Fatalf("single observation: mean %g var %g", s.Mean(), s.Var())
	}
}

// TestWelfordMatchesNaive checks the streaming moments against the naive
// two-pass computation on random data.
func TestWelfordMatchesNaive(t *testing.T) {
	err := quick.Check(func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var s Sample
		for _, x := range clean {
			s.Add(x)
		}
		mean := Mean(clean)
		ss := 0.0
		for _, x := range clean {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(len(clean)-1)
		scale := math.Max(1, math.Abs(naiveVar))
		return math.Abs(s.Mean()-mean) < 1e-6*math.Max(1, math.Abs(mean)) &&
			math.Abs(s.Var()-naiveVar) < 1e-6*scale
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestImprovement(t *testing.T) {
	if v := Improvement(100, 80); v != 0.2 {
		t.Fatalf("Improvement(100,80) = %g, want 0.2", v)
	}
	if v := Improvement(100, 120); v != -0.2 {
		t.Fatalf("Improvement(100,120) = %g, want -0.2", v)
	}
	if v := Improvement(0, 10); v != 0 {
		t.Fatalf("Improvement(0,·) = %g, want 0", v)
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty aggregate should be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd Median wrong")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even Median wrong")
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Fatal("Median sorted the caller's slice")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); g != 2 {
		t.Fatalf("GeoMean(1,4) = %g, want 2", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %g", g)
	}
	if g := GeoMean([]float64{1, -1}); !math.IsNaN(g) {
		t.Fatalf("GeoMean with negative = %g, want NaN", g)
	}
}

func TestCI95Shrinks(t *testing.T) {
	var small, large Sample
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 4))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 4))
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink with n: %g vs %g", large.CI95(), small.CI95())
	}
}

func TestString(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(3)
	if got := s.String(); got == "" {
		t.Fatal("empty String")
	}
}
