// Package stats provides the small set of summary statistics the
// experiment harness reports: means, deviations, confidence intervals and
// the paper's headline metric, the makespan improvement rate of AHEFT over
// HEFT.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations incrementally using Welford's algorithm,
// which is numerically stable for long sweeps.
type Sample struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 { return s.mean }

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.max }

// Var returns the unbiased sample variance.
func (s *Sample) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Var()) }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Stddev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval on the mean. Sweeps use thousands of cases, where the normal
// approximation is accurate.
func (s *Sample) CI95() float64 { return 1.96 * s.StdErr() }

// String renders "mean ± ci (n=N)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.CI95(), s.n)
}

// Improvement returns the paper's improvement rate of `new` over `base`:
// (base - new) / base. Positive means `new` is better (smaller makespan).
// It returns 0 for a non-positive base.
func Improvement(base, new float64) float64 {
	if base <= 0 {
		return 0
	}
	return (base - new) / base
}

// Mean returns the arithmetic mean of xs (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (0 if empty). xs is not modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// GeoMean returns the geometric mean of xs; all values must be positive.
// The experiment harness uses it for ratio aggregation, where a geometric
// mean avoids the bias of averaging ratios arithmetically.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Quantiles returns the requested quantiles (0..1) of xs by the
// nearest-rank (ceil) definition, or zeros when xs is empty. xs is not
// modified. It is the one percentile definition shared by the aheftd
// daemon's /metrics latency window and cmd/loadgen's report, so the two
// never disagree on what "p99" means.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, q := range qs {
		idx := int(math.Ceil(q*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		out[i] = sorted[idx]
	}
	return out
}
