// Package history implements the Performance History Repository of the
// paper's Fig. 1: the Planner-side store of measured job runtimes that the
// Predictor mines to estimate future performance.
//
// Records are keyed by (operation, resource) rather than by job: the paper
// observes that a scientific workflow contains hundreds of jobs but only a
// handful of unique operations, so every execution of an operation on a
// resource sharpens the estimate for all other jobs running the same
// program there. The repository keeps streaming statistics (count, mean,
// EWMA, min/max) per key — enough for the history-based predictors without
// unbounded memory growth.
//
// A Repository is safe for concurrent use: in the aheftd daemon one
// repository is shared by every live workflow of a tenant on a shard —
// Record/Variance from the report path, Lookup/LookupOp from the
// history-based predictor inside reschedules — while /metrics readers
// aggregate Len/Totals from other goroutines. A -race hammer test pins
// the contract down.
package history

import (
	"fmt"
	"sort"
	"sync"

	"aheft/internal/grid"
)

// Key identifies one (operation, resource) statistics cell.
type Key struct {
	Op       string
	Resource grid.ID
}

// Stats summarises the executions recorded under one key.
type Stats struct {
	Count int
	Mean  float64
	// EWMA is an exponentially weighted moving average (α = 0.3 by
	// default) emphasising recent behaviour — the signal the Performance
	// Monitor's variance events are judged against.
	EWMA float64
	Min  float64
	Max  float64
	// Last is the most recent observation.
	Last float64
}

// DefaultAlpha is the EWMA smoothing factor.
const DefaultAlpha = 0.3

// Repository is a thread-safe performance history store. The zero value
// is not usable; call New.
type Repository struct {
	mu    sync.RWMutex
	alpha float64
	cells map[Key]*Stats
	// gen counts mutations (Record, Import). Estimators backed by the
	// repository expose it as their EstimateVersion, letting the kernel
	// detect "estimates drifted" without comparing cell contents.
	gen uint64
}

// New returns an empty repository with the given EWMA smoothing factor;
// alpha <= 0 selects DefaultAlpha.
func New(alpha float64) *Repository {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	return &Repository{alpha: alpha, cells: make(map[Key]*Stats)}
}

// Record stores one measured execution: operation op ran on resource r for
// duration d. Non-positive durations are rejected.
func (h *Repository) Record(op string, r grid.ID, d float64) error {
	if d <= 0 {
		return fmt.Errorf("history: non-positive duration %g for op %q on r%d", d, op, r)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.gen++
	k := Key{Op: op, Resource: r}
	s, ok := h.cells[k]
	if !ok {
		h.cells[k] = &Stats{Count: 1, Mean: d, EWMA: d, Min: d, Max: d, Last: d}
		return nil
	}
	s.Count++
	s.Mean += (d - s.Mean) / float64(s.Count)
	s.EWMA = h.alpha*d + (1-h.alpha)*s.EWMA
	if d < s.Min {
		s.Min = d
	}
	if d > s.Max {
		s.Max = d
	}
	s.Last = d
	return nil
}

// Lookup returns the statistics for (op, r), if any executions were
// recorded.
func (h *Repository) Lookup(op string, r grid.ID) (Stats, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if s, ok := h.cells[Key{Op: op, Resource: r}]; ok {
		return *s, true
	}
	return Stats{}, false
}

// LookupOp returns the aggregate mean duration of op over every resource
// it ran on — the fallback estimate for a resource with no local history
// (e.g. one that just joined the grid).
func (h *Repository) LookupOp(op string) (mean float64, count int) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	// Sum in deterministic resource order, not map order: float addition
	// is not associative, and a map-order sum here differs in the last
	// ULP across runs. This estimate feeds placement and adoption
	// decisions, so that ULP would flip near-threshold tie-breaks and
	// make an otherwise deterministic daemon fail record/replay
	// verification.
	type contrib struct {
		r   grid.ID
		sum float64
		n   int
	}
	cs := make([]contrib, 0, 8)
	for k, s := range h.cells {
		if k.Op == op {
			cs = append(cs, contrib{k.Resource, s.Mean * float64(s.Count), s.Count})
		}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].r < cs[j].r })
	sum := 0.0
	for _, c := range cs {
		sum += c.sum
		count += c.n
	}
	if count == 0 {
		return 0, 0
	}
	return sum / float64(count), count
}

// Variance reports the relative deviation of a new observation from the
// recorded EWMA for (op, r): |d − EWMA| / EWMA. The Performance Monitor
// fires a significant-variance event when this exceeds its threshold. The
// second result is false when no history exists yet.
func (h *Repository) Variance(op string, r grid.ID, d float64) (float64, bool) {
	s, ok := h.Lookup(op, r)
	if !ok || s.EWMA <= 0 {
		return 0, false
	}
	rel := (d - s.EWMA) / s.EWMA
	if rel < 0 {
		rel = -rel
	}
	return rel, true
}

// Len returns the number of (op, resource) cells.
func (h *Repository) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.cells)
}

// Totals returns the cell count and the total number of recorded
// observations — the repository-size gauges the daemon's /metrics
// reports.
func (h *Repository) Totals() (cells, observations int) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for _, s := range h.cells {
		observations += s.Count
	}
	return len(h.cells), observations
}

// Cell is the serialisable form of one statistics cell, used by the
// daemon's durability layer to persist a tenant's repository.
type Cell struct {
	Op       string  `json:"op"`
	Resource grid.ID `json:"resource"`
	Count    int     `json:"count"`
	Mean     float64 `json:"mean"`
	EWMA     float64 `json:"ewma"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
	Last     float64 `json:"last"`
}

// Export snapshots every cell in deterministic (op, then resource)
// order. Import of the result into a fresh repository reproduces the
// statistics bit for bit.
func (h *Repository) Export() []Cell {
	keys := h.Keys()
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]Cell, 0, len(keys))
	for _, k := range keys {
		s := h.cells[k]
		if s == nil {
			continue
		}
		out = append(out, Cell{
			Op: k.Op, Resource: k.Resource,
			Count: s.Count, Mean: s.Mean, EWMA: s.EWMA, Min: s.Min, Max: s.Max, Last: s.Last,
		})
	}
	return out
}

// Import installs the exported cells, overwriting any existing cell
// with the same key. Cells without observations are ignored.
func (h *Repository) Import(cells []Cell) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.gen++
	for _, c := range cells {
		if c.Count <= 0 {
			continue
		}
		h.cells[Key{Op: c.Op, Resource: c.Resource}] = &Stats{
			Count: c.Count, Mean: c.Mean, EWMA: c.EWMA, Min: c.Min, Max: c.Max, Last: c.Last,
		}
	}
}

// Alpha returns the repository's EWMA smoothing factor.
func (h *Repository) Alpha() float64 { return h.alpha }

// Generation returns the mutation counter: it advances on every Record
// and Import, so two equal Generation reads bracket a window in which
// every history-derived estimate was stable.
func (h *Repository) Generation() uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.gen
}

// Keys returns all cells in deterministic order (op, then resource).
func (h *Repository) Keys() []Key {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]Key, 0, len(h.cells))
	for k := range h.cells {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Resource < out[j].Resource
	})
	return out
}
