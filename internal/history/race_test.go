package history

import (
	"fmt"
	"sync"
	"testing"

	"aheft/internal/grid"
)

// TestConcurrentRecordAndEstimate hammers one repository from writer and
// reader goroutines the way the daemon does: shard workers Record
// measured runtimes and judge Variance while history-based predictors
// Lookup/LookupOp mid-reschedule and metrics readers poll Len/Totals.
// Run under -race this pins the thread-safety contract; the final state
// must also reconcile exactly with what the writers put in.
func TestConcurrentRecordAndEstimate(t *testing.T) {
	const (
		writers = 8
		readers = 8
		perGor  = 400
	)
	h := New(0)
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			op := fmt.Sprintf("op%d", w%4) // ops collide across writers
			r := grid.ID(w % 3)            // resources too
			for i := 0; i < perGor; i++ {
				d := float64(1 + (w+i)%17)
				// Variance against a concurrently mutating history may see
				// any interleaving; only crashes and races are bugs.
				h.Variance(op, r, d)
				if err := h.Record(op, r, d); err != nil {
					t.Errorf("record: %v", err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			op := fmt.Sprintf("op%d", i%4)
			for n := 0; n < perGor; n++ {
				if s, ok := h.Lookup(op, grid.ID(i%3)); ok {
					if s.Min <= 0 || s.Max < s.Min || s.Count <= 0 {
						t.Errorf("torn stats read: %+v", s)
						return
					}
				}
				if mean, cnt := h.LookupOp(op); cnt > 0 && mean <= 0 {
					t.Errorf("torn aggregate read: mean=%g n=%d", mean, cnt)
					return
				}
				h.Len()
				h.Totals()
				h.Keys()
			}
		}(i)
	}
	wg.Wait()

	cells, obs := h.Totals()
	if obs != writers*perGor {
		t.Fatalf("recorded %d observations, want %d", obs, writers*perGor)
	}
	if cells == 0 || cells > 12 {
		t.Fatalf("unexpected cell count %d", cells)
	}
	for _, k := range h.Keys() {
		s, ok := h.Lookup(k.Op, k.Resource)
		if !ok || s.Mean < s.Min || s.Mean > s.Max || s.EWMA <= 0 {
			t.Fatalf("inconsistent final stats for %+v: %+v", k, s)
		}
	}
}
