package history

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestRecordAndLookup(t *testing.T) {
	h := New(0)
	if err := h.Record("blast", 0, 10); err != nil {
		t.Fatal(err)
	}
	s, ok := h.Lookup("blast", 0)
	if !ok {
		t.Fatal("lookup miss")
	}
	if s.Count != 1 || s.Mean != 10 || s.EWMA != 10 || s.Min != 10 || s.Max != 10 || s.Last != 10 {
		t.Fatalf("first record stats wrong: %+v", s)
	}
	if _, ok := h.Lookup("blast", 1); ok {
		t.Fatal("lookup on wrong resource hit")
	}
	if _, ok := h.Lookup("parse", 0); ok {
		t.Fatal("lookup on wrong op hit")
	}
}

func TestStreamingStats(t *testing.T) {
	h := New(0.5)
	for _, d := range []float64{10, 20, 30} {
		if err := h.Record("op", 1, d); err != nil {
			t.Fatal(err)
		}
	}
	s, _ := h.Lookup("op", 1)
	if s.Count != 3 || s.Mean != 20 || s.Min != 10 || s.Max != 30 || s.Last != 30 {
		t.Fatalf("stats = %+v", s)
	}
	// EWMA with α=0.5: 10 → 15 → 22.5.
	if s.EWMA != 22.5 {
		t.Fatalf("EWMA = %g, want 22.5", s.EWMA)
	}
}

func TestRecordRejectsNonPositive(t *testing.T) {
	h := New(0)
	if err := h.Record("op", 0, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
	if err := h.Record("op", 0, -5); err == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestLookupOpAggregates(t *testing.T) {
	h := New(0)
	_ = h.Record("op", 0, 10)
	_ = h.Record("op", 0, 20)
	_ = h.Record("op", 1, 40)
	mean, n := h.LookupOp("op")
	if n != 3 {
		t.Fatalf("count = %d, want 3", n)
	}
	// Weighted: (15·2 + 40·1)/3 = 70/3.
	if math.Abs(mean-70.0/3.0) > 1e-12 {
		t.Fatalf("mean = %g, want %g", mean, 70.0/3.0)
	}
	if _, n := h.LookupOp("absent"); n != 0 {
		t.Fatal("absent op should count 0")
	}
}

func TestVariance(t *testing.T) {
	h := New(0)
	if _, ok := h.Variance("op", 0, 10); ok {
		t.Fatal("variance without history should report false")
	}
	_ = h.Record("op", 0, 10)
	v, ok := h.Variance("op", 0, 13)
	if !ok || math.Abs(v-0.3) > 1e-12 {
		t.Fatalf("variance = %g,%v want 0.3", v, ok)
	}
	v, _ = h.Variance("op", 0, 7)
	if math.Abs(v-0.3) > 1e-12 {
		t.Fatalf("negative deviation should be absolute: %g", v)
	}
}

func TestKeysDeterministic(t *testing.T) {
	h := New(0)
	_ = h.Record("b", 1, 1)
	_ = h.Record("a", 2, 1)
	_ = h.Record("a", 0, 1)
	ks := h.Keys()
	if len(ks) != 3 || h.Len() != 3 {
		t.Fatalf("keys = %v", ks)
	}
	want := []Key{{"a", 0}, {"a", 2}, {"b", 1}}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("keys order = %v, want %v", ks, want)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	h := New(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				op := fmt.Sprintf("op%d", i%5)
				_ = h.Record(op, 0, float64(1+i%7))
				h.Lookup(op, 0)
				h.Variance(op, 0, 3)
				h.LookupOp(op)
			}
		}(w)
	}
	wg.Wait()
	s, ok := h.Lookup("op0", 0)
	if !ok || s.Count != 8*40 {
		t.Fatalf("concurrent counts wrong: %+v", s)
	}
}

func TestDefaultAlphaClamp(t *testing.T) {
	for _, bad := range []float64{-1, 0, 1.5} {
		h := New(bad)
		_ = h.Record("op", 0, 10)
		_ = h.Record("op", 0, 20)
		s, _ := h.Lookup("op", 0)
		want := DefaultAlpha*20 + (1-DefaultAlpha)*10
		if math.Abs(s.EWMA-want) > 1e-12 {
			t.Fatalf("alpha %g not clamped to default: EWMA %g", bad, s.EWMA)
		}
	}
}
