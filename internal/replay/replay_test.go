package replay

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"aheft/internal/drive"
	"aheft/internal/durable"
	"aheft/internal/rng"
	"aheft/internal/server"
	"aheft/internal/wire"
	"aheft/internal/workload"
)

func encodeSub(t testing.TB, sc *workload.Scenario, mode, policy, tenant string, opts wire.Options) []byte {
	t.Helper()
	body, err := wire.EncodeSubmission(&wire.Submission{
		Mode: mode, Tenant: tenant, Policy: policy, Options: opts,
		Graph: sc.Graph, Comp: sc.Table, Pool: sc.Pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postJSON(t testing.TB, ts *httptest.Server, path string, body []byte, v any) int {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func waitTerminal(t testing.TB, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := ts.Client().Get(ts.URL + "/v1/workflows/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st wire.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err == nil && (st.State == server.StateDone || st.State == server.StateFailed) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("workflow %s never finished", id)
}

// faithfulEvents builds the report events of a faithful execution of
// plan up to clock.
func faithfulEvents(plan *wire.Plan, clock float64) []wire.ReportEvent {
	var evs []wire.ReportEvent
	for _, a := range plan.Assignments {
		if a.Start < clock {
			evs = append(evs, wire.ReportEvent{Kind: wire.ReportJobStarted, Time: a.Start, Job: a.Job, Resource: a.Resource})
		}
		if a.Finish <= clock {
			evs = append(evs, wire.ReportEvent{Kind: wire.ReportJobFinished, Time: a.Finish, Job: a.Job, Duration: a.Finish - a.Start})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Time != evs[j].Time {
			return evs[i].Time < evs[j].Time
		}
		return evs[i].Kind == wire.ReportJobStarted && evs[j].Kind != wire.ReportJobStarted
	})
	return evs
}

// recordMixedRun drives analytic, live (including a duplicate report
// batch), and shared-grid traffic through a recording daemon and drains
// it cleanly, leaving a full-coverage recording in dir.
func recordMixedRun(t *testing.T, dir string) {
	t.Helper()
	srv, err := server.Open(server.Config{Shards: 2, QueueDepth: 256, RecordDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Analytic: the worked example under two policies.
	sample := workload.SampleScenario()
	for _, policy := range []string{"aheft", "heft"} {
		var sub wire.Submitted
		if code := postJSON(t, ts, "/v1/workflows", encodeSub(t, sample, "", policy, "", wire.Options{TieWindow: 0.05}), &sub); code != http.StatusAccepted {
			t.Fatalf("analytic submit (%s): HTTP %d", policy, code)
		}
		waitTerminal(t, ts, sub.ID)
	}

	// Live: faithful enactment to t=15, a resource join that reschedules,
	// the SAME batch posted again (a duplicate the tracker must re-ack
	// idempotently — it consumes a worker turn and is recorded), then the
	// tail to completion.
	var sub wire.Submitted
	if code := postJSON(t, ts, "/v1/workflows", encodeSub(t, sample, wire.ModeLive, "aheft", "acme", wire.Options{TieWindow: 0.05}), &sub); code != http.StatusAccepted {
		t.Fatalf("live submit: HTTP %d", code)
	}
	var plan wire.Plan
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/v1/workflows/" + sub.ID + "/plan")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			err = json.NewDecoder(resp.Body).Decode(&plan)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("no initial plan for %s", sub.ID)
		}
		time.Sleep(time.Millisecond)
	}
	evs := append(faithfulEvents(&plan, 15), wire.ReportEvent{Kind: wire.ReportResourceJoin, Time: 15, Resource: 3})
	batch, err := wire.EncodeReport(&wire.Report{Events: evs})
	if err != nil {
		t.Fatal(err)
	}
	var ack wire.ReportAck
	if code := postJSON(t, ts, "/v1/workflows/"+sub.ID+"/report", batch, &ack); code != http.StatusOK {
		t.Fatalf("report: HTTP %d", code)
	}
	if !ack.Rescheduled || ack.Plan == nil {
		t.Fatalf("join report did not reschedule: %+v", ack)
	}
	if code := postJSON(t, ts, "/v1/workflows/"+sub.ID+"/report", batch, nil); code != http.StatusOK {
		t.Fatalf("duplicate report: HTTP %d", code)
	}
	started, finished := map[int]bool{}, map[int]bool{}
	for _, ev := range evs {
		switch ev.Kind {
		case wire.ReportJobStarted:
			started[ev.Job] = true
		case wire.ReportJobFinished:
			finished[ev.Job] = true
		}
	}
	var tail []wire.ReportEvent
	for _, a := range ack.Plan.Assignments {
		if finished[a.Job] {
			continue
		}
		if !started[a.Job] {
			tail = append(tail, wire.ReportEvent{Kind: wire.ReportJobStarted, Time: a.Start, Job: a.Job, Resource: a.Resource})
		}
		tail = append(tail, wire.ReportEvent{Kind: wire.ReportJobFinished, Time: a.Finish, Job: a.Job, Duration: a.Finish - a.Start})
	}
	sort.SliceStable(tail, func(i, j int) bool {
		if tail[i].Time != tail[j].Time {
			return tail[i].Time < tail[j].Time
		}
		return tail[i].Kind == wire.ReportJobStarted && tail[j].Kind != wire.ReportJobStarted
	})
	tailBody, err := wire.EncodeReport(&wire.Report{Events: tail})
	if err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, ts, "/v1/workflows/"+sub.ID+"/report", tailBody, nil); code != http.StatusOK {
		t.Fatalf("tail report: HTTP %d", code)
	}
	waitTerminal(t, ts, sub.ID)

	// Shared grid: two tenants co-scheduled on one registered grid, with
	// noise and churn — contention triggers and cross-workflow records.
	r := rng.New(0x5eed)
	gp := workload.GridParams{InitialResources: 4, ChangeInterval: 400, ChangePct: 0.25, MaxEvents: 2}
	bl, err := workload.BlastScenario(workload.AppParams{Parallelism: 6, CCR: 1, Beta: 0.5}, gp, r)
	if err != nil {
		t.Fatal(err)
	}
	wn, err := workload.Wien2kScenario(workload.AppParams{Parallelism: 6, CCR: 1, Beta: 0.5}, gp, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drive.RunShared(context.Background(), drive.SharedConfig{
		BaseURL: ts.URL, Client: ts.Client(),
		Grid: "rec-grid", Pool: bl.Pool,
		Noise: 0.15, Churn: 0.2, Seed: 41,
	}, []drive.Tenant{
		{Name: "blast", Scenario: bl, Policy: "aheft", Options: wire.Options{VarianceThreshold: 0.2}},
		{Name: "wien2k", Scenario: wn, Policy: "aheft", Options: wire.Options{VarianceThreshold: 0.2}},
	}); err != nil {
		t.Fatalf("shared-grid run: %v", err)
	}

	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestReplayMixedRunIdentical is the tentpole acceptance test: a
// recording covering analytic, live (with a duplicate report), and
// shared-grid traffic replays bit-identically, and a second replay of
// the same recording produces an identical canonical digest — the same
// double-replay gate CI runs via cmd/replay.
func TestReplayMixedRunIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("record/replay acceptance test skipped in -short mode")
	}
	dir := t.TempDir()
	recordMixedRun(t, dir)

	res, err := Run(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical() {
		t.Fatalf("replay diverged (%d mismatches over %d outputs):\n%s",
			len(res.Divergences), res.Outputs, strings.Join(res.Divergences, "\n"))
	}
	if res.Shards != 2 || res.Inputs == 0 || res.Outputs == 0 {
		t.Fatalf("replay coverage: %+v", res)
	}
	// The recording must actually contain every record family the mixed
	// run was built to produce.
	kinds := map[string]int{}
	for i := 0; i < res.Shards; i++ {
		records, torn, err := durable.ReadLog(filepath.Join(dir, wire.RecordName(i)))
		if err != nil || torn {
			t.Fatalf("re-read shard %d: torn=%v err=%v", i, torn, err)
		}
		for _, r := range records {
			kinds[r.Kind]++
		}
	}
	for _, kind := range []string{wire.RecBegin, wire.RecGrid, wire.RecSubmission, wire.RecReport,
		wire.RecDecision, wire.RecPlan, wire.RecDone, wire.RecEnd} {
		if kinds[kind] == 0 {
			t.Fatalf("recording has no %s records: %v", kind, kinds)
		}
	}

	res2, err := Run(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Identical() {
		t.Fatalf("second replay diverged:\n%s", strings.Join(res2.Divergences, "\n"))
	}
	if strings.Join(res.Digest, "\n") != strings.Join(res2.Digest, "\n") {
		t.Fatal("two replays of one recording produced different digests")
	}
}

// recordSmallRun leaves a minimal clean recording (one analytic
// workflow) in dir, for the adversarial mutations below.
func recordSmallRun(t *testing.T, dir string) {
	t.Helper()
	srv, err := server.Open(server.Config{Shards: 1, QueueDepth: 16, RecordDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var sub wire.Submitted
	if code := postJSON(t, ts, "/v1/workflows", encodeSub(t, workload.SampleScenario(), "", "aheft", "", wire.Options{}), &sub); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitTerminal(t, ts, sub.ID)
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestReplayRefusesTornTail: a partial frame at the stream tail (daemon
// killed mid-append) must refuse with a diagnostic, never replay the
// prefix silently.
func TestReplayRefusesTornTail(t *testing.T) {
	dir := t.TempDir()
	recordSmallRun(t, dir)
	path := filepath.Join(dir, wire.RecordName(0))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A frame header promising 80 payload bytes, with 3 present.
	if _, err := f.Write([]byte{0, 0, 0, 80, 0xca, 0xfe, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := Run(dir, Options{}); err == nil || !strings.Contains(err.Error(), "torn tail") {
		t.Fatalf("torn recording: err = %v, want torn-tail diagnostic", err)
	}
}

// TestReplayRefusesMissingTrailer: a stream without its rec-end trailer
// (recording still in progress, or the daemon died before finalizing)
// must refuse with a diagnostic.
func TestReplayRefusesMissingTrailer(t *testing.T) {
	dir := t.TempDir()
	recordSmallRun(t, dir)
	path := filepath.Join(dir, wire.RecordName(0))
	records, torn, err := durable.ReadLog(path)
	if err != nil || torn {
		t.Fatalf("re-read: torn=%v err=%v", torn, err)
	}
	if records[len(records)-1].Kind != wire.RecEnd {
		t.Fatalf("clean recording does not end with %s", wire.RecEnd)
	}
	// Rewrite the stream minus the trailer — byte-wise what a stream
	// looks like while the daemon is still running.
	l, err := durable.CreateLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records[:len(records)-1] {
		if err := l.Append(r.Kind, r.Data); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Run(dir, Options{}); err == nil || !strings.Contains(err.Error(), "no rec-end trailer") {
		t.Fatalf("trailer-less recording: err = %v, want missing-trailer diagnostic", err)
	}
}

// TestReplayRefusesMidDrainRecording: a force-cancelled drain (live
// workflow cut mid-flight) finalizes with an unclean trailer, and
// replay must refuse it — the tail depends on kill timing and cannot
// reproduce.
func TestReplayRefusesMidDrainRecording(t *testing.T) {
	dir := t.TempDir()
	srv, err := server.Open(server.Config{Shards: 1, QueueDepth: 16, RecordDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	var sub wire.Submitted
	if code := postJSON(t, ts, "/v1/workflows", encodeSub(t, workload.SampleScenario(), wire.ModeLive, "aheft", "acme", wire.Options{}), &sub); code != http.StatusAccepted {
		t.Fatalf("live submit: HTTP %d", code)
	}
	ts.Close()
	// An already-cancelled drain context forces cancellation of the live
	// run — the recording is finalized, but marked unclean.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Fatal("force-cancelled drain reported success")
	}

	if _, err := Run(dir, Options{}); err == nil || !strings.Contains(err.Error(), "unclean trailer") {
		t.Fatalf("mid-drain recording: err = %v, want unclean-trailer diagnostic", err)
	}
}
