// Package replay re-drives a flight recording (server.Config.RecordDir)
// through a fresh daemon and asserts that the decision stream reproduces
// bit-identically — the executable proof that every daemon decision is a
// deterministic function of its recorded inputs.
//
// A recording is one stream per shard (record-shard-<i>.wal, WAL-framed
// wire records; see internal/wire/record.go). Each stream interleaves
// the shard's inputs in worker-processing order with the outputs the
// worker emitted between them. Replay validates every stream (header,
// trailer, framing), boots a daemon with the recorded configuration and
// its own recorder, drives each shard's inputs strictly one at a time —
// submissions through Server.InjectRecorded so the original IDs (and
// with them shard routing) reproduce, reports and grid registrations
// through the HTTP handler — then drains the daemon and compares the
// two output sequences record for record.
//
// One-at-a-time driving matters: with at most one pending item per
// shard, the worker's select between its intake queue and its command
// channel always has exactly one ready source, so the replay's
// processing order is the recorded order by construction, not by luck.
//
// What must match: the per-shard sequence of rec-decision, rec-plan and
// rec-done payloads, byte for byte. Decision payloads deliberately
// exclude the kernel's process-local telemetry (delta-vs-full path,
// cone size, elapsed time) — a replay may legitimately take the full
// path where the original took the delta, with bit-identical schedules
// either way (see planner.Decision). Plan payloads carry an FNV-1a hash
// over every placement, so "same generation, same makespan, different
// assignment" still diverges loudly.
//
// What must fail loudly instead of diverging silently: a torn tail
// (daemon killed mid-append), a missing trailer (recording still being
// written, or the process died), and an unclean trailer (force-cancelled
// drain cut live runs mid-decision). Run refuses all three with a
// diagnostic naming the stream and the reason.
package replay

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"time"

	"aheft/internal/durable"
	"aheft/internal/server"
	"aheft/internal/wire"
)

// Options tunes a replay run.
type Options struct {
	// Scratch is the directory for the replay daemon's own recording;
	// empty means a fresh os.MkdirTemp directory, removed afterwards.
	Scratch string
	// Timeout bounds the whole drive-and-drain; 0 means 60s.
	Timeout time.Duration
}

// Result reports one replay.
type Result struct {
	Shards  int
	Inputs  int // input records driven
	Outputs int // output records compared
	// Divergences lists every mismatch between the recorded and replayed
	// output sequences (empty on a bit-identical replay).
	Divergences []string
	// Digest is the replayed output sequence in canonical line form
	// ("shard=N kind payload"), one line per output record — two replays
	// of the same recording must produce identical digests.
	Digest []string
}

// Identical reports whether the replay reproduced the recording.
func (r *Result) Identical() bool { return len(r.Divergences) == 0 }

// stream is one parsed per-shard recording.
type stream struct {
	shard   int
	header  wire.RecHeader
	records []*wire.WALRecord // between header and trailer
}

func isOutput(kind string) bool {
	return kind == wire.RecDecision || kind == wire.RecPlan || kind == wire.RecDone
}

// load parses and validates every shard stream of a recording. It is
// the gate that turns adversarial recordings into diagnostics: torn
// frames, missing or unclean trailers and header disagreements are
// errors here, before any replay work starts. Run surfaces them
// verbatim.
func load(dir string) ([]stream, error) {
	first, err := loadStream(filepath.Join(dir, wire.RecordName(0)))
	if err != nil {
		return nil, err
	}
	n := first.header.Shards
	if n <= 0 {
		return nil, fmt.Errorf("replay: %s: header names %d shards", wire.RecordName(0), n)
	}
	streams := []stream{*first}
	for i := 1; i < n; i++ {
		st, err := loadStream(filepath.Join(dir, wire.RecordName(i)))
		if err != nil {
			return nil, err
		}
		if st.header.Shards != n || st.header.Shard != i {
			return nil, fmt.Errorf("replay: %s: header (shard %d of %d) disagrees with %s (%d shards)",
				wire.RecordName(i), st.header.Shard, st.header.Shards, wire.RecordName(0), n)
		}
		streams = append(streams, *st)
	}
	return streams, nil
}

func loadStream(path string) (*stream, error) {
	name := filepath.Base(path)
	records, torn, err := durable.ReadLog(path)
	if err != nil {
		return nil, fmt.Errorf("replay: %s: %w", name, err)
	}
	if torn {
		return nil, fmt.Errorf("replay: %s: torn tail — the recording daemon was killed mid-append; the stream is incomplete and cannot replay faithfully", name)
	}
	if len(records) == 0 || records[0].Kind != wire.RecBegin {
		return nil, fmt.Errorf("replay: %s: missing %s header", name, wire.RecBegin)
	}
	st := &stream{}
	if err := json.Unmarshal(records[0].Data, &st.header); err != nil {
		return nil, fmt.Errorf("replay: %s: decode header: %w", name, err)
	}
	st.shard = st.header.Shard
	last := records[len(records)-1]
	if last.Kind != wire.RecEnd {
		return nil, fmt.Errorf("replay: %s: no %s trailer — the recording is still being written, or the daemon died before finalizing it", name, wire.RecEnd)
	}
	var trailer wire.RecTrailer
	if err := json.Unmarshal(last.Data, &trailer); err != nil {
		return nil, fmt.Errorf("replay: %s: decode trailer: %w", name, err)
	}
	if !trailer.Clean {
		return nil, fmt.Errorf("replay: %s: unclean trailer — the drain was force-cancelled and cut live workflows mid-decision; the tail is not reproducible", name)
	}
	st.records = records[1 : len(records)-1]
	return st, nil
}

// Run replays the recording in dir and compares decision streams.
func Run(dir string, opts Options) (*Result, error) {
	streams, err := load(dir)
	if err != nil {
		return nil, err
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	deadline := time.Now().Add(timeout)

	scratch := opts.Scratch
	if scratch == "" {
		scratch, err = os.MkdirTemp("", "aheft-replay-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(scratch)
	}
	hdr := streams[0].header
	srv, err := server.Open(server.Config{
		Shards:            hdr.Shards,
		DefaultPolicy:     hdr.Policy,
		VarianceThreshold: hdr.VarianceThreshold,
		MaxConeFrac:       hdr.MaxConeFrac,
		RecordDir:         scratch,
	})
	if err != nil {
		return nil, fmt.Errorf("replay: boot daemon: %w", err)
	}

	res := &Result{Shards: hdr.Shards}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		inputs  int
		driveEr error
	)
	for i := range streams {
		wg.Add(1)
		go func(st *stream) {
			defer wg.Done()
			n, err := driveShard(srv, st, deadline)
			mu.Lock()
			inputs += n
			if err != nil && driveEr == nil {
				driveEr = err
			}
			mu.Unlock()
		}(&streams[i])
	}
	wg.Wait()

	// Drain: finishes in-flight work and finalizes the replay recording.
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	shutErr := srv.Shutdown(ctx)
	if driveEr != nil {
		return nil, driveEr
	}
	if shutErr != nil {
		return nil, fmt.Errorf("replay: drain: %w", shutErr)
	}
	res.Inputs = inputs

	replayed, err := load(scratch)
	if err != nil {
		return nil, fmt.Errorf("replayed recording unreadable: %w", err)
	}
	for i := range streams {
		want := outputs(&streams[i])
		got := outputs(&replayed[i])
		res.Outputs += len(want)
		for _, r := range got {
			res.Digest = append(res.Digest, fmt.Sprintf("shard=%d %s %s", i, r.Kind, r.Data))
		}
		n := len(want)
		if len(got) < n {
			n = len(got)
		}
		for k := 0; k < n; k++ {
			if want[k].Kind != got[k].Kind || !bytes.Equal(want[k].Data, got[k].Data) {
				res.Divergences = append(res.Divergences, fmt.Sprintf(
					"shard %d, output %d: recorded %s %s, replayed %s %s",
					i, k, want[k].Kind, want[k].Data, got[k].Kind, got[k].Data))
			}
		}
		if len(got) != len(want) {
			res.Divergences = append(res.Divergences, fmt.Sprintf(
				"shard %d: recorded %d output records, replay produced %d", i, len(want), len(got)))
		}
	}
	return res, nil
}

func outputs(st *stream) []*wire.WALRecord {
	var out []*wire.WALRecord
	for _, r := range st.records {
		if isOutput(r.Kind) {
			out = append(out, r)
		}
	}
	return out
}

// driveShard re-drives one shard's inputs in recorded order, waiting
// out each record's effect before the next so the worker never sees two
// pending items at once.
func driveShard(srv *server.Server, st *stream, deadline time.Time) (int, error) {
	h := srv.Handler()
	n := 0
	for _, r := range st.records {
		if isOutput(r.Kind) {
			continue
		}
		var body wire.RecBody
		if err := json.Unmarshal(r.Data, &body); err != nil {
			return n, fmt.Errorf("replay: shard %d: decode %s: %w", st.shard, r.Kind, err)
		}
		n++
		switch r.Kind {
		case wire.RecGrid:
			code, resp := do(h, "PUT", "/v1/grids/"+body.Grid, body.Body)
			if code != http.StatusCreated {
				return n, fmt.Errorf("replay: shard %d: grid %q: %d %s", st.shard, body.Grid, code, resp)
			}
		case wire.RecSubmission:
			if _, err := srv.InjectRecorded(body.Workflow, body.Body); err != nil {
				return n, fmt.Errorf("replay: shard %d: inject %s: %w", st.shard, body.Workflow, err)
			}
			if err := awaitStarted(h, body, deadline); err != nil {
				return n, fmt.Errorf("replay: shard %d: %w", st.shard, err)
			}
		case wire.RecReport:
			// The worker's reply lands only after the report (and every
			// decision it triggered) is fully processed, so returning
			// here is returning from the recorded turn. Rejected and
			// duplicate reports were recorded too (they consumed a turn)
			// and re-reject identically — any status is acceptable.
			do(h, "POST", "/v1/workflows/"+body.Workflow+"/report", body.Body)
		default:
			return n, fmt.Errorf("replay: shard %d: unknown record kind %q", st.shard, r.Kind)
		}
		if time.Now().After(deadline) {
			return n, fmt.Errorf("replay: shard %d: timeout mid-drive", st.shard)
		}
	}
	return n, nil
}

// awaitStarted blocks until an injected submission has been picked up by
// its worker: a live workflow until its initial plan exists, an analytic
// one until it is terminal. Without this wait the next record could race
// the worker's dequeue and break one-at-a-time driving.
func awaitStarted(h http.Handler, body wire.RecBody, deadline time.Time) error {
	var probe struct {
		Mode string `json:"mode"`
	}
	_ = json.Unmarshal(body.Body, &probe)
	live := probe.Mode == wire.ModeLive
	for {
		code, resp := do(h, "GET", "/v1/workflows/"+body.Workflow, nil)
		if code == http.StatusOK {
			var st wire.Status
			if err := json.Unmarshal(resp, &st); err == nil {
				switch {
				case st.State == server.StateDone || st.State == server.StateFailed:
					return nil
				case live && st.State == server.StateRunning && st.Generation > 0:
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("workflow %s: timeout waiting for pickup (last status %d %s)", body.Workflow, code, resp)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func do(h http.Handler, method, path string, body []byte) (int, []byte) {
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, path, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w.Code, w.Body.Bytes()
}
