package predict

import (
	"testing"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/history"
	"aheft/internal/rng"
	"aheft/internal/workload"
)

func setup(t *testing.T) (*dag.Graph, *cost.Table, *history.Repository) {
	t.Helper()
	g := workload.SampleDAG()
	tb := workload.SampleTable()
	return g, tb, history.New(0)
}

func TestHistoryBasedFallsBackToPrior(t *testing.T) {
	g, tb, repo := setup(t)
	p := &HistoryBased{Graph: g, Repo: repo, Prior: cost.Exact(tb)}
	n1 := g.JobByName("n1")
	if got := p.Comp(n1, 0); got != tb.Comp(n1, 0) {
		t.Fatalf("no history: Comp = %g, want prior %g", got, tb.Comp(n1, 0))
	}
}

func TestHistoryBasedUsesLocalHistory(t *testing.T) {
	g, tb, repo := setup(t)
	n1 := g.JobByName("n1")
	op := g.Job(n1).Op
	_ = repo.Record(op, 0, 99)
	p := &HistoryBased{Graph: g, Repo: repo, Prior: cost.Exact(tb)}
	if got := p.Comp(n1, 0); got != 99 {
		t.Fatalf("Comp = %g, want recorded 99", got)
	}
	// Another resource without history falls back to the op mean.
	if got := p.Comp(n1, 1); got != 99 {
		t.Fatalf("cross-resource fallback = %g, want op mean 99", got)
	}
}

func TestHistoryBasedEWMA(t *testing.T) {
	g, tb, repo := setup(t)
	n1 := g.JobByName("n1")
	op := g.Job(n1).Op
	_ = repo.Record(op, 0, 10)
	_ = repo.Record(op, 0, 20)
	mean := &HistoryBased{Graph: g, Repo: repo, Prior: cost.Exact(tb)}
	recent := &HistoryBased{Graph: g, Repo: repo, Prior: cost.Exact(tb), UseEWMA: true}
	if mean.Comp(n1, 0) != 15 {
		t.Fatalf("mean = %g, want 15", mean.Comp(n1, 0))
	}
	want := history.DefaultAlpha*20 + (1-history.DefaultAlpha)*10
	if recent.Comp(n1, 0) != want {
		t.Fatalf("EWMA = %g, want %g", recent.Comp(n1, 0), want)
	}
}

func TestHistoryBasedCommDelegates(t *testing.T) {
	g, tb, repo := setup(t)
	p := &HistoryBased{Graph: g, Repo: repo, Prior: cost.Exact(tb)}
	e := dag.Edge{From: 0, To: 1, Data: 18}
	if p.Comm(e, 0, 0) != 0 || p.Comm(e, 0, 1) != 18 {
		t.Fatal("Comm should delegate to the prior")
	}
}

func TestNoisyBoundedAndMemoised(t *testing.T) {
	_, tb, _ := setup(t)
	n := &Noisy{Base: cost.Exact(tb), Error: 0.3, Rng: rng.New(4)}
	first := n.Comp(0, 0)
	base := tb.Comp(0, 0)
	if first < 0.7*base-1e-9 || first > 1.3*base+1e-9 {
		t.Fatalf("noisy estimate %g outside ±30%% of %g", first, base)
	}
	for i := 0; i < 5; i++ {
		if n.Comp(0, 0) != first {
			t.Fatal("noisy estimate not memoised within a round")
		}
	}
	// Comm stays exact.
	e := dag.Edge{From: 0, To: 1, Data: 18}
	if n.Comm(e, 0, 1) != 18 {
		t.Fatal("noisy Comm should be exact")
	}
}

func TestNoisyPerturbsSomething(t *testing.T) {
	_, tb, _ := setup(t)
	n := &Noisy{Base: cost.Exact(tb), Error: 0.5, Rng: rng.New(4)}
	differs := 0
	for j := dag.JobID(0); j < 10; j++ {
		if n.Comp(j, 0) != tb.Comp(j, 0) {
			differs++
		}
	}
	if differs < 8 {
		t.Fatalf("only %d/10 estimates perturbed", differs)
	}
}
