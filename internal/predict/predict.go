// Package predict implements the Predictor of the paper's Fig. 1: the
// component the Scheduler calls to build the performance estimation matrix
// P = estimate(T, R) before every (re)scheduling round.
//
// Three predictors are provided:
//
//   - the exact predictor (the cost table itself, via cost.Exact) realises
//     the paper's experiment assumption of accurate estimation;
//   - HistoryBased consults the Performance History Repository, falling
//     back to the per-operation mean and finally to a supplied prior for
//     resources without history — this is the predictor a deployed system
//     would run, and the one the variance-event pipeline sharpens over
//     time;
//   - Noisy perturbs an underlying estimator multiplicatively, for the
//     robustness ablation of scheduling under inaccurate estimates.
package predict

import (
	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/history"
	"aheft/internal/rng"
)

// HistoryBased estimates computation costs from the Performance History
// Repository. Communication estimates delegate to the Prior estimator
// (transfer costs are derived from data sizes, which the Planner knows).
type HistoryBased struct {
	// Graph supplies the Op of each job.
	Graph *dag.Graph
	// Repo is the performance history to mine.
	Repo *history.Repository
	// Prior answers estimates when no history exists (e.g. the first
	// round, or a fresh resource). A deployed system would use an
	// analytical model; the simulation uses the ground-truth table, so
	// prediction error comes only from resource variance.
	Prior cost.Estimator
	// UseEWMA selects the recency-weighted average instead of the overall
	// mean.
	UseEWMA bool
}

var _ cost.Estimator = (*HistoryBased)(nil)

// Comp estimates the job's runtime on r: per-(op, resource) history first,
// then the operation's cross-resource mean, then the prior.
func (p *HistoryBased) Comp(job dag.JobID, r grid.ID) float64 {
	op := p.Graph.Job(job).Op
	if s, ok := p.Repo.Lookup(op, r); ok {
		if p.UseEWMA {
			return s.EWMA
		}
		return s.Mean
	}
	if mean, n := p.Repo.LookupOp(op); n > 0 {
		return mean
	}
	return p.Prior.Comp(job, r)
}

// Comm estimates the transfer cost of edge e between the two placements.
func (p *HistoryBased) Comm(e dag.Edge, rFrom, rTo grid.ID) float64 {
	return p.Prior.Comm(e, rFrom, rTo)
}

// EstimateVersion implements kernel.VersionedEstimator: the predictor's
// answers change exactly when the repository underneath it mutates (Comm
// delegates to the static prior, so only Comp drifts).
func (p *HistoryBased) EstimateVersion() uint64 { return p.Repo.Generation() }

// Noisy wraps an estimator with multiplicative error: every Comp estimate
// is scaled by a factor drawn once per (job, resource) from
// [1−Error, 1+Error]. Draws are memoised so repeated queries are
// consistent within a planning round, as a real (deterministic) predictor
// would be.
type Noisy struct {
	Base  cost.Estimator
	Error float64 // e.g. 0.2 for ±20%
	Rng   *rng.Source

	memo map[noisyKey]float64
}

type noisyKey struct {
	job dag.JobID
	res grid.ID
}

var _ cost.Estimator = (*Noisy)(nil)

// Comp returns the perturbed computation estimate.
func (n *Noisy) Comp(job dag.JobID, r grid.ID) float64 {
	if n.memo == nil {
		n.memo = make(map[noisyKey]float64)
	}
	k := noisyKey{job: job, res: r}
	f, ok := n.memo[k]
	if !ok {
		f = n.Rng.Uniform(1-n.Error, 1+n.Error)
		if f <= 0.01 {
			f = 0.01
		}
		n.memo[k] = f
	}
	return f * n.Base.Comp(job, r)
}

// Comm returns the unperturbed communication estimate (data sizes are
// known to the planner).
func (n *Noisy) Comm(e dag.Edge, rFrom, rTo grid.ID) float64 {
	return n.Base.Comm(e, rFrom, rTo)
}
