package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"aheft/internal/wire"
)

// Log is a minimal append-only framed record stream: the same
// length-prefixed CRC-32 frames and wire.WALRecord envelopes as the
// shard WAL, without snapshots, rotation, or fsync policy. It backs the
// flight recorder (internal/server record streams): every append is one
// complete write(2), so a killed process leaves at most one torn frame
// at the tail, and ReadLog applies the WAL's replay contract — stop at
// the first torn, corrupt, or LSN-regressing frame and report it.
type Log struct {
	mu       sync.Mutex
	f        *os.File
	lsn      uint64
	docBuf   []byte
	frameBuf []byte
	closed   bool
}

// CreateLog creates (truncating) an append-only framed log at path.
func CreateLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: create log: %w", err)
	}
	return &Log{f: f}, nil
}

// Append frames and writes one record, assigning the next LSN. The
// payload is embedded verbatim (the caller guarantees one valid JSON
// value), matching the shard WAL's append contract.
func (l *Log) Append(kind string, payload json.RawMessage) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("durable: log is closed")
	}
	rec := &wire.WALRecord{LSN: l.lsn + 1, Kind: kind, Data: payload}
	doc, err := wire.AppendWALRecord(l.docBuf[:0], rec)
	if err != nil {
		return err
	}
	l.docBuf = doc
	l.frameBuf = appendFrame(l.frameBuf[:0], doc)
	if _, err := l.f.Write(l.frameBuf); err != nil {
		return fmt.Errorf("durable: log append: %w", err)
	}
	l.lsn = rec.LSN
	return nil
}

// Close syncs and closes the log. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadLog replays a framed log: the decodable, LSN-increasing record
// prefix, plus whether a torn/corrupt tail was dropped. It never panics
// on any input.
func ReadLog(path string) (records []*wire.WALRecord, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, fmt.Errorf("durable: read log: %w", err)
	}
	payloads, _, torn := replayFrames(data)
	var last uint64
	for _, p := range payloads {
		r, derr := wire.DecodeWALRecord(p)
		if derr != nil || r.LSN <= last {
			return records, true, nil
		}
		last = r.LSN
		records = append(records, r)
	}
	return records, torn, nil
}
