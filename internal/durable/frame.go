// Package durable is aheftd's per-shard persistence layer: a framed,
// CRC-checked write-ahead log of wire.WALRecord envelopes plus atomic
// point-in-time snapshots that truncate it. The layer is deliberately
// dumb about record meaning — it frames, checksums, orders by LSN, and
// replays; what a "submission" or "state" record does to a shard is the
// server's business — so its crash-safety contract can be stated and
// fuzzed in isolation:
//
//   - every append is one write(2) of a complete frame, so a SIGKILL
//     between appends loses nothing and a kill mid-write leaves at most
//     one torn frame at the log's tail;
//   - replay stops at the first torn, truncated, or corrupt frame and
//     drops everything from there on — a partial record is never
//     half-applied (FuzzWALReplay pins this down for arbitrary bytes);
//   - snapshots are written to a temp file and renamed into place, so a
//     crash mid-snapshot leaves the previous snapshot + log intact.
//
// fsync policy is orthogonal to the torn-frame contract: an unsynced
// completed write(2) survives process death (the page cache outlives the
// process); fsync only buys machine-crash durability. SyncAlways pays
// one fsync per append, SyncInterval batches them on a timer, SyncOff
// leaves flushing to the kernel.
package durable

import (
	"encoding/binary"
	"hash/crc32"
)

// frameHeader is the per-frame overhead: 4-byte big-endian payload
// length followed by the payload's CRC-32 (IEEE).
const frameHeader = 8

// maxFramePayload rejects absurd lengths (a torn length field read as
// gigabytes) before they are trusted.
const maxFramePayload = 1 << 30

// appendFrame appends one framed payload to dst and returns the
// extended slice.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// replayFrames splits data into its framed payloads, stopping at the
// first torn, truncated, or corrupt frame. It returns the payloads, the
// byte length of the valid prefix, and whether a tail was dropped. The
// payloads alias data. It never panics on any input.
func replayFrames(data []byte) (payloads [][]byte, validLen int, torn bool) {
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return payloads, off, false
		}
		if len(rest) < frameHeader {
			return payloads, off, true
		}
		n := int(binary.BigEndian.Uint32(rest[0:4]))
		if n > maxFramePayload || len(rest)-frameHeader < n {
			return payloads, off, true
		}
		payload := rest[frameHeader : frameHeader+n]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(rest[4:8]) {
			return payloads, off, true
		}
		payloads = append(payloads, payload)
		off += frameHeader + n
	}
}
