package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aheft/internal/wire"
)

// SyncPolicy selects when appended frames are fsynced (see the package
// comment: this is machine-crash durability; process kills are covered
// by the completed write(2) alone).
type SyncPolicy int

const (
	// SyncInterval fsyncs dirty logs on a background timer (the default).
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append.
	SyncAlways
	// SyncOff never fsyncs explicitly; the kernel flushes on its own
	// schedule.
	SyncOff
)

// ParseSyncPolicy maps the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "interval", "":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("durable: unknown sync policy %q (want always, interval or off)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return "interval"
	}
}

// DefaultSyncInterval is the SyncInterval flush period when none is
// configured.
const DefaultSyncInterval = 100 * time.Millisecond

// Recovered is what Load/Open found on disk: the newest snapshot (nil
// if none) and every decodable WAL record appended after it, in LSN
// order.
type Recovered struct {
	// SnapshotLSN is the last LSN the snapshot covers (0 = no snapshot).
	SnapshotLSN uint64
	// Snapshot is the raw snapshot document, nil when none exists.
	Snapshot []byte
	// Records holds the replayed records with LSN > SnapshotLSN.
	Records []*wire.WALRecord
	// TornTail reports that replay stopped at a torn/corrupt frame and
	// dropped the rest of the log.
	TornTail bool
	// MaxLSN is the highest LSN accounted for (snapshot or record).
	MaxLSN uint64
}

// Shard is one shard's durability store: a single active WAL segment
// plus the snapshot that bounds it. Append/Rotate are serialised by an
// internal mutex; the server additionally orders them against its own
// shard state under its per-shard WAL mutex.
type Shard struct {
	dir      string
	policy   SyncPolicy
	interval time.Duration

	mu       sync.Mutex
	f        *os.File
	segStart uint64 // first LSN the active segment may hold
	lsn      uint64 // last assigned LSN
	disabled bool
	dirty    bool
	docBuf   []byte // reusable envelope-encoding scratch (under mu)
	frameBuf []byte // reusable frame scratch (under mu)

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	appends   atomic.Uint64
	bytes     atomic.Uint64
	snapshots atomic.Uint64
}

func segName(first uint64) string { return fmt.Sprintf("wal-%020d.log", first) }
func snapName(lsn uint64) string  { return fmt.Sprintf("snap-%020d.json", lsn) }

// parseSeq extracts the sequence number from a "prefix-<seq>.suffix"
// name, or ok=false.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listDir returns the shard dir's snapshot LSNs and segment first-LSNs,
// each sorted ascending.
func listDir(dir string) (snaps, segs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	for _, e := range entries {
		if n, ok := parseSeq(e.Name(), "snap-", ".json"); ok {
			snaps = append(snaps, n)
		} else if n, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return snaps, segs, nil
}

// Load reads a shard directory without opening it for appends: the
// newest snapshot plus the ordered valid record suffix. Used for
// read-only recovery of orphaned shard directories and by benchmarks.
// A missing directory is an empty (not an error) result.
func Load(dir string) (*Recovered, error) {
	rec := &Recovered{}
	snaps, segs, err := listDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: list %s: %w", dir, err)
	}
	if len(snaps) > 0 {
		rec.SnapshotLSN = snaps[len(snaps)-1]
		data, err := os.ReadFile(filepath.Join(dir, snapName(rec.SnapshotLSN)))
		if err != nil {
			return nil, fmt.Errorf("durable: read snapshot: %w", err)
		}
		rec.Snapshot = data
		rec.MaxLSN = rec.SnapshotLSN
	}
	for _, first := range segs {
		data, err := os.ReadFile(filepath.Join(dir, segName(first)))
		if err != nil {
			return nil, fmt.Errorf("durable: read segment: %w", err)
		}
		payloads, _, torn := replayFrames(data)
		for _, p := range payloads {
			r, err := wire.DecodeWALRecord(p)
			if err != nil || r.LSN <= rec.MaxLSN {
				// An undecodable or out-of-order record is corruption as
				// surely as a bad CRC: stop replay here, keep the prefix.
				rec.TornTail = true
				return rec, nil
			}
			rec.MaxLSN = r.LSN
			rec.Records = append(rec.Records, r)
		}
		if torn {
			// A torn tail can only be the crash point; nothing after it
			// (in this or any later segment) can be a completed append.
			rec.TornTail = true
			return rec, nil
		}
	}
	return rec, nil
}

// Open recovers a shard directory (creating it if missing) and opens it
// for appends: torn tails are truncated away so the log stays replayable,
// and the active segment continues where the valid prefix ended.
func Open(dir string, policy SyncPolicy, interval time.Duration) (*Shard, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	rec, err := Load(dir)
	if err != nil {
		return nil, nil, err
	}
	if err := repair(dir, rec); err != nil {
		return nil, nil, err
	}
	_, segs, err := listDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: list %s: %w", dir, err)
	}
	segStart := rec.MaxLSN + 1
	if len(segs) > 0 {
		segStart = segs[len(segs)-1]
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(segStart)), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: open segment: %w", err)
	}
	if interval <= 0 {
		interval = DefaultSyncInterval
	}
	s := &Shard{
		dir:      dir,
		policy:   policy,
		interval: interval,
		f:        f,
		segStart: segStart,
		lsn:      rec.MaxLSN,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if policy == SyncInterval {
		go s.syncLoop()
	} else {
		close(s.done)
	}
	return s, rec, nil
}

// repair truncates the replayed-valid prefix back onto disk: the segment
// holding the torn tail is cut at its last whole frame and any segments
// after it are removed, so the next replay — and appends continuing in
// the meantime — see a clean log.
func repair(dir string, rec *Recovered) error {
	if !rec.TornTail {
		return nil
	}
	_, segs, err := listDir(dir)
	if err != nil {
		return fmt.Errorf("durable: list %s: %w", dir, err)
	}
	// Re-walk the segments the way Load did to find the corruption point.
	maxLSN := rec.SnapshotLSN
	for i, first := range segs {
		path := filepath.Join(dir, segName(first))
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("durable: read segment: %w", err)
		}
		payloads, validLen, torn := replayFrames(data)
		cut := !torn
		off := 0
		for _, p := range payloads {
			r, err := wire.DecodeWALRecord(p)
			if err != nil || r.LSN <= maxLSN {
				validLen, cut = off, true
				break
			}
			maxLSN = r.LSN
			off += frameHeader + len(p)
		}
		if !cut && !torn {
			continue
		}
		if err := os.Truncate(path, int64(validLen)); err != nil {
			return fmt.Errorf("durable: truncate torn tail: %w", err)
		}
		for _, later := range segs[i+1:] {
			if err := os.Remove(filepath.Join(dir, segName(later))); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("durable: drop post-corruption segment: %w", err)
			}
		}
		return nil
	}
	return nil
}

// Append frames, checksums and writes one record, assigning its LSN.
// The payload is marshalled as the envelope's Data; a json.RawMessage
// passes through verbatim — the caller guarantees it is one valid JSON
// value (the daemon journals raw bodies only after decoding them), and
// skipping the re-validate/re-compact pass a reflective marshal would
// do is what keeps the append path off the throughput profile. Append
// never fsyncs unless the policy is SyncAlways. A disabled store
// reports (0, nil): the crash test hook turned writes off.
func (s *Shard) Append(kind string, payload any) (uint64, error) {
	data, ok := payload.(json.RawMessage)
	if !ok {
		var err error
		data, err = json.Marshal(payload)
		if err != nil {
			return 0, fmt.Errorf("durable: marshal %s payload: %w", kind, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disabled {
		return 0, nil
	}
	rec := &wire.WALRecord{LSN: s.lsn + 1, Kind: kind, Data: data}
	doc, err := wire.AppendWALRecord(s.docBuf[:0], rec)
	if err != nil {
		return 0, err
	}
	s.docBuf = doc
	s.frameBuf = appendFrame(s.frameBuf[:0], doc)
	frame := s.frameBuf
	if _, err := s.f.Write(frame); err != nil {
		return 0, fmt.Errorf("durable: append: %w", err)
	}
	s.lsn = rec.LSN
	s.appends.Add(1)
	s.bytes.Add(uint64(len(frame)))
	if s.policy == SyncAlways {
		if err := s.f.Sync(); err != nil {
			return 0, fmt.Errorf("durable: sync: %w", err)
		}
	} else {
		s.dirty = true
	}
	return rec.LSN, nil
}

// LSN returns the last assigned log sequence number.
func (s *Shard) LSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lsn
}

// Rotate installs snapshot as the new recovery base covering every LSN
// appended so far, then truncates the log: the snapshot is written to a
// temp file and renamed (atomic on POSIX), old segments and snapshots
// are removed, and a fresh active segment starts after it. The caller
// must ensure snapshot actually covers all its appended records — in
// aheftd both run under the shard's WAL mutex.
func (s *Shard) Rotate(snapshot []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disabled {
		return nil
	}
	tmp := filepath.Join(s.dir, "snap.tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if _, err := f.Write(snapshot); err != nil {
		f.Close()
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName(s.lsn))); err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	s.snapshots.Add(1)

	// The snapshot is durable; everything at or below s.lsn is covered.
	// Swap in a fresh segment, then sweep the stale files.
	old := s.f
	next, err := os.OpenFile(filepath.Join(s.dir, segName(s.lsn+1)), os.O_WRONLY|os.O_APPEND|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: rotate segment: %w", err)
	}
	s.f = next
	s.segStart = s.lsn + 1
	s.dirty = false
	old.Close()

	snaps, segs, err := listDir(s.dir)
	if err != nil {
		return nil // sweep is best-effort; stale files only cost disk
	}
	for _, n := range snaps {
		if n < s.lsn {
			os.Remove(filepath.Join(s.dir, snapName(n)))
		}
	}
	for _, n := range segs {
		if n < s.segStart {
			os.Remove(filepath.Join(s.dir, segName(n)))
		}
	}
	return nil
}

// Disable turns the store off without flushing: subsequent Appends and
// Rotates are silent no-ops and the file is closed as-is, so the disk
// state is exactly what a SIGKILL at this instant would leave. Test
// hook for crash-recovery coverage.
func (s *Shard) Disable() {
	s.mu.Lock()
	if !s.disabled {
		s.disabled = true
		s.f.Close()
	}
	s.mu.Unlock()
	s.stopSync()
}

// Close flushes and closes the store. Idempotent.
func (s *Shard) Close() error {
	s.stopSync()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disabled {
		return nil
	}
	s.disabled = true
	var err error
	if s.policy != SyncOff {
		err = s.f.Sync()
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Counters returns the monotonic append/byte/snapshot counts for
// /metrics.
func (s *Shard) Counters() (appends, bytes, snapshots uint64) {
	return s.appends.Load(), s.bytes.Load(), s.snapshots.Load()
}

func (s *Shard) stopSync() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// syncLoop is the SyncInterval flusher.
func (s *Shard) syncLoop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			if s.dirty && !s.disabled {
				s.f.Sync()
				s.dirty = false
			}
			s.mu.Unlock()
		case <-s.stop:
			return
		}
	}
}
