package durable

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestLogRoundTrip pins the recorder stream contract: records come back
// in append order with increasing LSNs and verbatim payloads, and a
// cleanly closed log reads back with no torn tail.
func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.wal")
	l, err := CreateLog(path)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []string{"rec-begin", "rec-submission", "rec-decision", "rec-end"}
	for i, k := range kinds {
		payload, _ := json.Marshal(map[string]int{"i": i})
		if err := l.Append(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := l.Append("late", json.RawMessage(`{}`)); err == nil {
		t.Fatal("append after Close succeeded")
	}

	records, torn, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("clean log read back torn")
	}
	if len(records) != len(kinds) {
		t.Fatalf("read %d records, want %d", len(records), len(kinds))
	}
	var last uint64
	for i, r := range records {
		if r.Kind != kinds[i] {
			t.Fatalf("record %d kind %q, want %q", i, r.Kind, kinds[i])
		}
		if r.LSN <= last {
			t.Fatalf("record %d LSN %d not increasing past %d", i, r.LSN, last)
		}
		last = r.LSN
		var doc map[string]int
		if err := json.Unmarshal(r.Data, &doc); err != nil || doc["i"] != i {
			t.Fatalf("record %d payload %s: %v", i, r.Data, err)
		}
	}
}

// TestLogTornTailDetected pins the diagnostic replay depends on: a
// partial frame at the tail (daemon killed mid-append) reads back as the
// intact prefix plus torn=true.
func TestLogTornTailDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.wal")
	l, err := CreateLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append("rec-begin", json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A frame header promising 64 payload bytes, with only 3 present.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 64, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	records, torn, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if !torn {
		t.Fatal("torn tail not reported")
	}
	if len(records) != 1 || records[0].Kind != "rec-begin" {
		t.Fatalf("intact prefix: %+v", records)
	}
}
