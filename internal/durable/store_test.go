package durable

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func appendMust(t *testing.T, s *Shard, kind string, payload any) uint64 {
	t.Helper()
	lsn, err := s.Append(kind, payload)
	if err != nil {
		t.Fatalf("append %s: %v", kind, err)
	}
	return lsn
}

func TestAppendLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir, SyncOff, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(rec.Records) != 0 || rec.Snapshot != nil {
		t.Fatalf("fresh dir not empty: %+v", rec)
	}
	for i := 1; i <= 5; i++ {
		if lsn := appendMust(t, s, "state", map[string]int{"i": i}); lsn != uint64(i) {
			t.Fatalf("append %d assigned LSN %d", i, lsn)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.TornTail {
		t.Fatalf("clean log reported torn")
	}
	if len(got.Records) != 5 || got.MaxLSN != 5 {
		t.Fatalf("got %d records, max LSN %d; want 5, 5", len(got.Records), got.MaxLSN)
	}
	for i, r := range got.Records {
		if r.LSN != uint64(i+1) || r.Kind != "state" {
			t.Fatalf("record %d: %+v", i, r)
		}
		var p map[string]int
		if err := json.Unmarshal(r.Data, &p); err != nil || p["i"] != i+1 {
			t.Fatalf("record %d payload %s (err %v)", i, r.Data, err)
		}
	}
	a, b, sn := s.Counters()
	if a != 5 || b == 0 || sn != 0 {
		t.Fatalf("counters appends=%d bytes=%d snapshots=%d", a, b, sn)
	}
}

func TestReopenContinuesLSN(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, SyncInterval, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendMust(t, s, "submission", "a")
	appendMust(t, s, "submission", "b")
	s.Close()

	s2, rec, err := Open(dir, SyncInterval, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("reopen recovered %d records, want 2", len(rec.Records))
	}
	if lsn := appendMust(t, s2, "submission", "c"); lsn != 3 {
		t.Fatalf("post-reopen append got LSN %d, want 3", lsn)
	}
	s2.Close()
	got, err := Load(dir)
	if err != nil || len(got.Records) != 3 || got.TornTail {
		t.Fatalf("final load: %d records, torn=%v, err=%v", len(got.Records), got.TornTail, err)
	}
}

func TestRotateTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, SyncOff, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 4; i++ {
		appendMust(t, s, "state", i)
	}
	snapshot := []byte(`{"shard":"doc"}`)
	if err := s.Rotate(snapshot); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	appendMust(t, s, "state", 99)
	s.Close()

	got, err := Load(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !bytes.Equal(got.Snapshot, snapshot) || got.SnapshotLSN != 4 {
		t.Fatalf("snapshot %q at LSN %d; want %q at 4", got.Snapshot, got.SnapshotLSN, snapshot)
	}
	if len(got.Records) != 1 || got.Records[0].LSN != 5 {
		t.Fatalf("post-snapshot records: %+v", got.Records)
	}
	// The pre-snapshot segment must be gone: disk stays bounded.
	entries, _ := os.ReadDir(dir)
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("dir holds %v; want exactly one snapshot + one segment", names)
	}
	_, _, snaps := s.Counters()
	if snaps != 1 {
		t.Fatalf("snapshot counter %d, want 1", snaps)
	}
}

func TestTornTailDetectedAndRepaired(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, SyncOff, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 3; i++ {
		appendMust(t, s, "state", i)
	}
	s.Close()

	// Simulate a kill mid-write: garbage after the last whole frame.
	path := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe})
	f.Close()

	got, err := Load(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !got.TornTail || len(got.Records) != 3 {
		t.Fatalf("torn=%v records=%d; want torn with the 3-record prefix", got.TornTail, len(got.Records))
	}

	// Open repairs: the tail is truncated and appends continue cleanly.
	s2, rec, err := Open(dir, SyncOff, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(rec.Records) != 3 {
		t.Fatalf("repair recovered %d records, want 3", len(rec.Records))
	}
	if lsn := appendMust(t, s2, "state", 4); lsn != 4 {
		t.Fatalf("post-repair LSN %d, want 4", lsn)
	}
	s2.Close()
	clean, err := Load(dir)
	if err != nil || clean.TornTail || len(clean.Records) != 4 {
		t.Fatalf("post-repair load: torn=%v records=%d err=%v", clean.TornTail, len(clean.Records), err)
	}
}

// TestTruncationNeverHalfApplies cuts a multi-record log at every byte
// offset: replay must yield exactly the whole-frame prefix — a record is
// either fully present or fully absent.
func TestTruncationNeverHalfApplies(t *testing.T) {
	var full []byte
	var ends []int // byte offset at which record i ends
	for i := 1; i <= 4; i++ {
		doc, err := json.Marshal(map[string]any{"v": 1, "lsn": i, "kind": "state"})
		if err != nil {
			t.Fatal(err)
		}
		full = appendFrame(full, doc)
		ends = append(ends, len(full))
	}
	for cut := 0; cut <= len(full); cut++ {
		payloads, validLen, torn := replayFrames(full[:cut])
		wantRecords := 0
		for _, e := range ends {
			if e <= cut {
				wantRecords++
			}
		}
		if len(payloads) != wantRecords {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(payloads), wantRecords)
		}
		if wantRecords > 0 && validLen != ends[wantRecords-1] {
			t.Fatalf("cut %d: validLen %d, want %d", cut, validLen, ends[wantRecords-1])
		}
		wholePrefix := validLen == cut
		if torn == wholePrefix {
			t.Fatalf("cut %d: torn=%v with validLen=%d of %d", cut, torn, validLen, cut)
		}
	}
}

func TestDisableLeavesDiskUntouched(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, SyncOff, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendMust(t, s, "state", 1)
	appendMust(t, s, "state", 2)
	before, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	s.Disable()
	if lsn, err := s.Append("state", 3); lsn != 0 || err != nil {
		t.Fatalf("disabled append returned (%d, %v)", lsn, err)
	}
	if err := s.Rotate([]byte("{}")); err != nil {
		t.Fatalf("disabled rotate: %v", err)
	}
	after, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("disable mutated the log")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close after disable: %v", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "interval": SyncInterval, "": SyncInterval, "off": SyncOff,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
		if in != "" && got.String() != in {
			t.Fatalf("String() round trip: %q -> %q", in, got.String())
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatalf("bogus policy accepted")
	}
}
