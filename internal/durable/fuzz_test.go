package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay pins the crash-safety contract down for arbitrary bytes:
// replay never panics, only whole correctly-checksummed frames are
// yielded (re-framing the replayed payloads reproduces the valid prefix
// byte for byte — nothing is ever half-applied), a dropped tail is
// always reported as torn, and Open's repair always leaves a log that
// replays clean and accepts further appends.
func FuzzWALReplay(f *testing.F) {
	var valid []byte
	for i := 1; i <= 3; i++ {
		doc := []byte(`{"v":1,"lsn":` + string(rune('0'+i)) + `,"kind":"state","data":{"i":` + string(rune('0'+i)) + `}}`)
		valid = appendFrame(valid, doc)
	}
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-5])                    // torn tail
	f.Add(append(append([]byte{}, valid...), 7))   // trailing garbage
	f.Add([]byte("not a frame at all"))            // pure garbage
	f.Add(appendFrame(nil, []byte("not json")))    // framed non-record
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0}) // absurd length field

	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, validLen, torn := replayFrames(data)
		if validLen > len(data) {
			t.Fatalf("validLen %d > input %d", validLen, len(data))
		}
		if torn != (validLen != len(data)) {
			t.Fatalf("torn=%v with validLen=%d of %d", torn, validLen, len(data))
		}
		var re []byte
		for _, p := range payloads {
			re = appendFrame(re, p)
		}
		if !bytes.Equal(re, data[:validLen]) {
			t.Fatalf("re-framed prefix differs from input prefix")
		}

		// Full pipeline: the bytes as an on-disk segment must never panic
		// Load, and Open must repair to a log that replays clean.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Load(dir)
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		for i := 1; i < len(rec.Records); i++ {
			if rec.Records[i].LSN <= rec.Records[i-1].LSN {
				t.Fatalf("replayed LSNs not strictly increasing")
			}
		}
		s, _, err := Open(dir, SyncOff, 0)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		_, _ = s.Append("state", 1) // may fail near LSN overflow; must not panic
		s.Close()
		clean, err := Load(dir)
		if err != nil {
			t.Fatalf("post-repair load: %v", err)
		}
		if clean.TornTail {
			t.Fatalf("log still torn after repair")
		}
	})
}
