package dag

import (
	"strings"
	"testing"
)

// diamond builds a 4-job diamond: a → b, a → c, b → d, c → d.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	a := g.AddJob("a", "opA")
	b := g.AddJob("b", "opB")
	c := g.AddJob("c", "opB")
	d := g.AddJob("d", "opD")
	g.MustEdge(a, b, 1)
	g.MustEdge(a, c, 2)
	g.MustEdge(b, d, 3)
	g.MustEdge(c, d, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAddJobAssignsDenseIDs(t *testing.T) {
	g := New("x")
	for i := 0; i < 5; i++ {
		id := g.AddJob(string(rune('a'+i)), "")
		if int(id) != i {
			t.Fatalf("job %d got ID %d", i, id)
		}
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	g := New("x")
	g.AddJob("a", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	g.AddJob("a", "")
}

func TestAddEdgeErrors(t *testing.T) {
	g := New("x")
	a := g.AddJob("a", "")
	b := g.AddJob("b", "")
	cases := []struct {
		name     string
		from, to JobID
		data     float64
	}{
		{"unknown from", 99, b, 1},
		{"unknown to", a, 99, 1},
		{"self loop", a, a, 1},
		{"negative data", a, b, -1},
	}
	for _, c := range cases {
		if err := g.AddEdge(c.from, c.to, c.data); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if err := g.AddEdge(a, b, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a, b, 2); err == nil {
		t.Error("duplicate edge: expected error")
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	g := New("cyc")
	a := g.AddJob("a", "")
	b := g.AddJob("b", "")
	c := g.AddJob("c", "")
	g.MustEdge(a, b, 1)
	g.MustEdge(b, c, 1)
	g.MustEdge(c, a, 1)
	if err := g.Validate(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestValidateRejectsEmpty(t *testing.T) {
	if err := New("empty").Validate(); err == nil {
		t.Fatal("expected error for empty graph")
	}
}

func TestFrozenGraphRejectsMutation(t *testing.T) {
	g := diamond(t)
	if err := g.AddEdge(0, 3, 1); err == nil {
		t.Fatal("expected error adding edge to frozen graph")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic adding job to frozen graph")
		}
	}()
	g.AddJob("z", "")
}

func TestTopoOrder(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[JobID]int)
	for i, j := range order {
		pos[j] = i
	}
	for _, j := range g.Jobs() {
		for _, e := range g.Succs(j.ID) {
			if pos[e.From] >= pos[e.To] {
				t.Fatalf("topo order violates edge (%d,%d)", e.From, e.To)
			}
		}
	}
}

func TestEntriesExits(t *testing.T) {
	g := diamond(t)
	if es := g.Entries(); len(es) != 1 || es[0] != 0 {
		t.Fatalf("Entries = %v, want [0]", es)
	}
	if xs := g.Exits(); len(xs) != 1 || xs[0] != 3 {
		t.Fatalf("Exits = %v, want [3]", xs)
	}
}

func TestPredsSuccs(t *testing.T) {
	g := diamond(t)
	d := g.JobByName("d")
	preds := g.Preds(d)
	if len(preds) != 2 {
		t.Fatalf("preds(d) = %v", preds)
	}
	if w, ok := g.EdgeData(g.JobByName("b"), d); !ok || w != 3 {
		t.Fatalf("EdgeData(b,d) = %g,%v want 3,true", w, ok)
	}
	if _, ok := g.EdgeData(d, 0); ok {
		t.Fatal("EdgeData on absent edge returned true")
	}
}

func TestLevelsAndWidth(t *testing.T) {
	g := diamond(t)
	lv := g.Levels()
	if len(lv) != 3 {
		t.Fatalf("levels = %d, want 3", len(lv))
	}
	if g.Width() != 2 {
		t.Fatalf("width = %d, want 2", g.Width())
	}
	if p := g.Parallelism(); p != 4.0/3.0 {
		t.Fatalf("parallelism = %g, want 4/3", p)
	}
}

func TestCriticalPathLength(t *testing.T) {
	g := diamond(t)
	// All comp costs 10: longest path a→c→d = 10+2+10+4+10 = 36.
	cp := g.CriticalPathLength(func(JobID) float64 { return 10 })
	if cp != 36 {
		t.Fatalf("critical path = %g, want 36", cp)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	if c.Len() != g.Len() || c.NumEdges() != g.NumEdges() {
		t.Fatal("clone shape differs")
	}
	// Mutating the clone must not affect the original.
	z := c.AddJob("z", "")
	c.MustEdge(c.JobByName("d"), z, 9)
	if g.Len() != 4 || g.NumEdges() != 4 {
		t.Fatal("mutating clone affected original")
	}
}

func TestTotalData(t *testing.T) {
	g := diamond(t)
	if d := g.TotalData(); d != 10 {
		t.Fatalf("TotalData = %g, want 10", d)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := diamond(t)
	data, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != g.Len() || back.NumEdges() != g.NumEdges() || back.Name() != g.Name() {
		t.Fatal("round trip changed shape")
	}
	for _, j := range g.Jobs() {
		bj := back.Job(back.JobByName(j.Name))
		if bj.Op != j.Op {
			t.Fatalf("job %s op %q != %q", j.Name, bj.Op, j.Op)
		}
		for _, e := range g.Succs(j.ID) {
			w, ok := back.EdgeData(back.JobByName(j.Name), back.JobByName(g.Job(e.To).Name))
			if !ok || w != e.Data {
				t.Fatalf("edge (%s,%s) lost in round trip", j.Name, g.Job(e.To).Name)
			}
		}
	}
}

func TestFromJSONRejectsBadInput(t *testing.T) {
	for _, bad := range []string{
		`{`,
		`{"name":"x","jobs":[{"name":"a"},{"name":"a"}]}`,
		`{"name":"x","jobs":[{"name":"a"}],"edges":[{"from":"a","to":"zz","data":1}]}`,
		`{"name":"x","jobs":[],"edges":[]}`,
	} {
		if _, err := FromJSON([]byte(bad)); err == nil {
			t.Errorf("FromJSON(%q): expected error", bad)
		}
	}
}

func TestDOT(t *testing.T) {
	g := diamond(t)
	dot := g.DOT()
	for _, want := range []string{"digraph", `"a" -> "b"`, `label="3"`} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestJobPanicsOnInvalidID(t *testing.T) {
	g := diamond(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Job(99)
}

func TestJobByNameMissing(t *testing.T) {
	g := diamond(t)
	if id := g.JobByName("nope"); id != NoJob {
		t.Fatalf("JobByName(nope) = %d, want NoJob", id)
	}
}

func TestMultiExitMakespanSemantics(t *testing.T) {
	g := New("multi")
	a := g.AddJob("a", "")
	b := g.AddJob("b", "")
	c := g.AddJob("c", "")
	g.MustEdge(a, b, 1)
	g.MustEdge(a, c, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if xs := g.Exits(); len(xs) != 2 {
		t.Fatalf("exits = %v, want two", xs)
	}
}
