// Package dag models grid workflow applications as weighted directed acyclic
// graphs, following the system model of the AHEFT paper (Yu & Shi, IPDPS
// 2007) which is itself inherited from HEFT (Topcuoglu et al., 2002).
//
// A workflow is a graph G = (V, E): V is the set of jobs (nodes) and each
// edge (i, j) is a precedence constraint carrying the amount of data that
// job i must ship to job j. Computation costs live outside the graph (they
// depend on the resource a job runs on; see package cost); communication
// weights live on the edges.
package dag

import (
	"fmt"
	"sort"
)

// JobID identifies a job inside one Graph. IDs are dense: the jobs of a
// graph with n jobs are numbered 0..n-1 in insertion order, which lets
// schedulers use flat slices instead of maps on hot paths.
type JobID int

// NoJob is the sentinel returned when a job lookup fails.
const NoJob JobID = -1

// Job is a node of the workflow DAG.
type Job struct {
	ID JobID
	// Name is a human-readable unique label, e.g. "n1" or "LAPW1_K7".
	Name string
	// Op is the operation (executable) the job runs. Scientific workflows
	// consist of many jobs but only a handful of unique operations (the
	// paper notes Montage has 11); the performance history repository keys
	// its statistics by Op so that one job's measured runtime improves the
	// estimate of every other job running the same program.
	Op string
}

// Edge is a data/precedence dependence between two jobs. Data is the
// communication cost incurred when the two jobs execute on different
// resources; co-located jobs communicate for free (paper §4.1, and the
// Fig. 4 sample where edge weight is the communication cost).
type Edge struct {
	From, To JobID
	Data     float64
	// File optionally names the data file shipped along the edge. When set
	// (and a file catalog is bound to the schedule; see internal/data), the
	// edge's communication cost is derived from the file's size and the
	// effective bandwidth between the resources instead of Data, and edges
	// sharing a File are satisfied by a single staged copy — the file-reuse
	// semantics. Empty means the edge is a plain weighted dependence.
	File string
}

// Graph is a mutable workflow DAG. Construct with New, add jobs and edges,
// then call Validate (or Freeze) before handing it to a scheduler.
type Graph struct {
	name   string
	jobs   []Job
	byName map[string]JobID

	succ [][]Edge // succ[i]: outgoing edges of job i, ordered by To
	pred [][]Edge // pred[i]: incoming edges of job i, ordered by From

	frozen bool
}

// New returns an empty workflow graph with the given name.
func New(name string) *Graph {
	return &Graph{name: name, byName: make(map[string]JobID)}
}

// Name returns the workflow's name.
func (g *Graph) Name() string { return g.name }

// Len returns the number of jobs in the graph.
func (g *Graph) Len() int { return len(g.jobs) }

// AddJob appends a job with the given name and operation and returns its ID.
// It panics if the name is already taken or the graph is frozen: both are
// programming errors in workload construction, not runtime conditions.
func (g *Graph) AddJob(name, op string) JobID {
	if g.frozen {
		panic("dag: AddJob on frozen graph")
	}
	if _, dup := g.byName[name]; dup {
		panic(fmt.Sprintf("dag: duplicate job name %q", name))
	}
	id := JobID(len(g.jobs))
	g.jobs = append(g.jobs, Job{ID: id, Name: name, Op: op})
	g.byName[name] = id
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return id
}

// AddEdge adds a dependence edge carrying data units of communication cost.
// It returns an error for unknown endpoints, self-loops, negative data, or
// duplicate edges. Cycle detection is deferred to Validate.
func (g *Graph) AddEdge(from, to JobID, data float64) error {
	return g.AddFileEdge(from, to, data, "")
}

// AddFileEdge is AddEdge for an edge that ships the named data file; the
// edge's Data weight remains the legacy fallback cost used when no file
// catalog is bound (see Edge.File).
func (g *Graph) AddFileEdge(from, to JobID, data float64, file string) error {
	if g.frozen {
		return fmt.Errorf("dag: AddEdge on frozen graph %q", g.name)
	}
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("dag: edge (%d,%d) references unknown job", from, to)
	}
	if from == to {
		return fmt.Errorf("dag: self-loop on job %s", g.jobs[from].Name)
	}
	if data < 0 {
		return fmt.Errorf("dag: negative data %g on edge (%s,%s)", data, g.jobs[from].Name, g.jobs[to].Name)
	}
	for _, e := range g.succ[from] {
		if e.To == to {
			return fmt.Errorf("dag: duplicate edge (%s,%s)", g.jobs[from].Name, g.jobs[to].Name)
		}
	}
	e := Edge{From: from, To: to, Data: data, File: file}
	g.succ[from] = append(g.succ[from], e)
	g.pred[to] = append(g.pred[to], e)
	return nil
}

// MustEdge is AddEdge that panics on error; used by the workload generators
// whose construction logic guarantees well-formed edges.
func (g *Graph) MustEdge(from, to JobID, data float64) {
	if err := g.AddEdge(from, to, data); err != nil {
		panic(err)
	}
}

// MustFileEdge is AddFileEdge that panics on error.
func (g *Graph) MustFileEdge(from, to JobID, data float64, file string) {
	if err := g.AddFileEdge(from, to, data, file); err != nil {
		panic(err)
	}
}

func (g *Graph) valid(id JobID) bool { return id >= 0 && int(id) < len(g.jobs) }

// Job returns the job with the given ID. It panics on an invalid ID.
func (g *Graph) Job(id JobID) Job {
	if !g.valid(id) {
		panic(fmt.Sprintf("dag: invalid job id %d", id))
	}
	return g.jobs[id]
}

// JobByName returns the ID of the named job, or NoJob if absent.
func (g *Graph) JobByName(name string) JobID {
	if id, ok := g.byName[name]; ok {
		return id
	}
	return NoJob
}

// Jobs returns all jobs in ID order. The slice is shared; callers must not
// mutate it.
func (g *Graph) Jobs() []Job { return g.jobs }

// Succs returns the outgoing edges of job id. Shared slice; do not mutate.
func (g *Graph) Succs(id JobID) []Edge { return g.succ[id] }

// Preds returns the incoming edges of job id. Shared slice; do not mutate.
func (g *Graph) Preds(id JobID) []Edge { return g.pred[id] }

// EdgeData returns the data weight on edge (from, to) and whether the edge
// exists.
func (g *Graph) EdgeData(from, to JobID) (float64, bool) {
	for _, e := range g.succ[from] {
		if e.To == to {
			return e.Data, true
		}
	}
	return 0, false
}

// NumEdges returns the number of edges in the graph.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.succ {
		n += len(es)
	}
	return n
}

// Entries returns the IDs of jobs with no predecessors, in ID order.
func (g *Graph) Entries() []JobID {
	var out []JobID
	for i := range g.jobs {
		if len(g.pred[i]) == 0 {
			out = append(out, JobID(i))
		}
	}
	return out
}

// Exits returns the IDs of jobs with no successors, in ID order. The paper
// permits multiple exit jobs; the makespan is the max over all of them.
func (g *Graph) Exits() []JobID {
	var out []JobID
	for i := range g.jobs {
		if len(g.succ[i]) == 0 {
			out = append(out, JobID(i))
		}
	}
	return out
}

// Validate checks that the graph is a non-empty DAG: at least one job, no
// cycles, and at least one entry and one exit. It also sorts adjacency
// lists for deterministic iteration and marks the graph frozen on success.
func (g *Graph) Validate() error {
	if len(g.jobs) == 0 {
		return fmt.Errorf("dag %q: no jobs", g.name)
	}
	if _, err := g.topoOrder(); err != nil {
		return err
	}
	if len(g.Entries()) == 0 {
		return fmt.Errorf("dag %q: no entry job", g.name)
	}
	if len(g.Exits()) == 0 {
		return fmt.Errorf("dag %q: no exit job", g.name)
	}
	for i := range g.succ {
		es := g.succ[i]
		sort.Slice(es, func(a, b int) bool { return es[a].To < es[b].To })
		ps := g.pred[i]
		sort.Slice(ps, func(a, b int) bool { return ps[a].From < ps[b].From })
	}
	g.frozen = true
	return nil
}

// MustValidate calls Validate and panics on error.
func (g *Graph) MustValidate() *Graph {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// TopoOrder returns the jobs in a deterministic topological order (Kahn's
// algorithm with a min-ID tie-break). It returns an error if the graph
// contains a cycle.
func (g *Graph) TopoOrder() ([]JobID, error) { return g.topoOrder() }

func (g *Graph) topoOrder() ([]JobID, error) {
	n := len(g.jobs)
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.pred[i])
	}
	// Min-heap by JobID for deterministic order; a sorted insertion into a
	// slice is fine at workflow scale (n ≤ a few thousand).
	var ready []JobID
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, JobID(i))
		}
	}
	sort.Slice(ready, func(a, b int) bool { return ready[a] < ready[b] })
	order := make([]JobID, 0, n)
	for len(ready) > 0 {
		// Pop smallest ID.
		j := ready[0]
		ready = ready[1:]
		order = append(order, j)
		for _, e := range g.succ[j] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				// Insert keeping ready sorted.
				k := sort.Search(len(ready), func(i int) bool { return ready[i] >= e.To })
				ready = append(ready, 0)
				copy(ready[k+1:], ready[k:])
				ready[k] = e.To
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("dag %q: cycle detected (%d of %d jobs ordered)", g.name, len(order), n)
	}
	return order, nil
}

// Levels partitions the jobs into precedence levels: level 0 holds the
// entries, and each job sits one past its deepest predecessor. The level
// structure determines the workflow's degree of parallelism — the paper's
// central explanation for why BLAST (wide levels) benefits from adaptive
// rescheduling far more than WIEN2K (whose LAPW2_FERMI level has width 1).
func (g *Graph) Levels() [][]JobID {
	order, err := g.topoOrder()
	if err != nil {
		return nil
	}
	depth := make([]int, len(g.jobs))
	maxDepth := 0
	for _, j := range order {
		for _, e := range g.pred[j] {
			if d := depth[e.From] + 1; d > depth[j] {
				depth[j] = d
			}
		}
		if depth[j] > maxDepth {
			maxDepth = depth[j]
		}
	}
	levels := make([][]JobID, maxDepth+1)
	for _, j := range order {
		levels[depth[j]] = append(levels[depth[j]], j)
	}
	return levels
}

// Width returns the maximum number of jobs in any level: the workflow's
// peak degree of parallelism.
func (g *Graph) Width() int {
	w := 0
	for _, lv := range g.Levels() {
		if len(lv) > w {
			w = len(lv)
		}
	}
	return w
}

// Parallelism returns the average level width: total jobs divided by the
// number of levels. BLAST-shaped DAGs have parallelism close to their
// fan-out factor; chain-shaped DAGs have parallelism 1.
func (g *Graph) Parallelism() float64 {
	lv := g.Levels()
	if len(lv) == 0 {
		return 0
	}
	return float64(len(g.jobs)) / float64(len(lv))
}

// CriticalPathLength returns the length of the longest path through the
// DAG where each job contributes compCost(job) and each edge contributes
// its data weight. With average computation costs this is the classic
// lower-bound "CP" metric; it also equals ranku of the entry on single-exit
// graphs.
func (g *Graph) CriticalPathLength(compCost func(JobID) float64) float64 {
	order, err := g.topoOrder()
	if err != nil {
		return 0
	}
	longest := make([]float64, len(g.jobs))
	best := 0.0
	for i := len(order) - 1; i >= 0; i-- {
		j := order[i]
		m := 0.0
		for _, e := range g.succ[j] {
			if v := e.Data + longest[e.To]; v > m {
				m = v
			}
		}
		longest[j] = compCost(j) + m
		if longest[j] > best {
			best = longest[j]
		}
	}
	return best
}

// Clone returns a deep, unfrozen copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.name)
	for _, j := range g.jobs {
		c.AddJob(j.Name, j.Op)
	}
	for i := range g.succ {
		for _, e := range g.succ[i] {
			c.MustFileEdge(e.From, e.To, e.Data, e.File)
		}
	}
	return c
}

// TotalData returns the sum of all edge weights: the workflow's aggregate
// communication volume.
func (g *Graph) TotalData() float64 {
	t := 0.0
	for i := range g.succ {
		for _, e := range g.succ[i] {
			t += e.Data
		}
	}
	return t
}
