package dag

import (
	"fmt"
	"testing"
	"testing/quick"
)

// buildArbitrary constructs a DAG from arbitrary byte-pair data by only
// ever adding forward edges (low index → high index), which guarantees
// acyclicity; every structural invariant must then hold by construction.
func buildArbitrary(n int, pairs []uint16) *Graph {
	if n < 2 {
		n = 2
	}
	if n > 40 {
		n = 40
	}
	g := New("arb")
	for i := 0; i < n; i++ {
		g.AddJob(fmt.Sprintf("v%d", i), "")
	}
	for _, p := range pairs {
		a := int(p>>8) % n
		b := int(p&0xff) % n
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		_ = g.AddEdge(JobID(a), JobID(b), float64(p%97)) // dup errors ignored
	}
	return g
}

// TestQuickTopoOrderConsistent: for arbitrary forward-edge graphs, the
// topological order exists, covers every job exactly once, and respects
// every edge.
func TestQuickTopoOrderConsistent(t *testing.T) {
	f := func(n uint8, pairs []uint16) bool {
		g := buildArbitrary(int(n), pairs)
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		if len(order) != g.Len() {
			return false
		}
		pos := make(map[JobID]int)
		for i, j := range order {
			if _, dup := pos[j]; dup {
				return false
			}
			pos[j] = i
		}
		for _, j := range g.Jobs() {
			for _, e := range g.Succs(j.ID) {
				if pos[e.From] >= pos[e.To] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLevelsPartition: levels partition the jobs and each job sits
// strictly below all of its successors' levels.
func TestQuickLevelsPartition(t *testing.T) {
	f := func(n uint8, pairs []uint16) bool {
		g := buildArbitrary(int(n), pairs)
		levels := g.Levels()
		seen := make(map[JobID]int)
		for li, lv := range levels {
			for _, j := range lv {
				if _, dup := seen[j]; dup {
					return false
				}
				seen[j] = li
			}
		}
		if len(seen) != g.Len() {
			return false
		}
		for _, j := range g.Jobs() {
			for _, e := range g.Succs(j.ID) {
				if seen[e.From] >= seen[e.To] {
					return false
				}
			}
		}
		// Width/parallelism consistency.
		w := g.Width()
		for _, lv := range levels {
			if len(lv) > w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickJSONRoundTrip: serialisation is lossless for arbitrary valid
// graphs.
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(n uint8, pairs []uint16) bool {
		g := buildArbitrary(int(n), pairs)
		if err := g.Validate(); err != nil {
			// Arbitrary graphs may lack entries/exits only if cyclic —
			// impossible here — or be edgeless with isolated jobs, which
			// is still valid; any error means a bug.
			return false
		}
		data, err := g.MarshalJSON()
		if err != nil {
			return false
		}
		back, err := FromJSON(data)
		if err != nil {
			return false
		}
		if back.Len() != g.Len() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for _, j := range g.Jobs() {
			for _, e := range g.Succs(j.ID) {
				w, ok := back.EdgeData(e.From, e.To)
				if !ok || w != e.Data {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
