package dag

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// WireVersion is the current version of the graph wire format. Documents
// written by MarshalJSON carry it in a "v" field; FromJSON accepts absent
// or zero versions (pre-versioning documents) up to the current one and
// rejects anything newer, so a daemon never misparses a future format.
// The full submission envelope — graph plus estimator table plus pool —
// lives in package internal/wire, which composes this codec with the
// grid.Pool and cost.Table codecs (the import direction forbids hosting
// them here: cost and grid must not be imported by dag).
const WireVersion = 1

// graphJSON is the on-disk representation of a workflow. Jobs are stored in
// ID order so that round-tripping preserves IDs.
type graphJSON struct {
	V     int        `json:"v,omitempty"`
	Name  string     `json:"name"`
	Jobs  []jobJSON  `json:"jobs"`
	Edges []edgeJSON `json:"edges"`
}

type jobJSON struct {
	Name string `json:"name"`
	Op   string `json:"op,omitempty"`
}

type edgeJSON struct {
	From string  `json:"from"`
	To   string  `json:"to"`
	Data float64 `json:"data"`
	File string  `json:"file,omitempty"`
}

// MarshalJSON encodes the graph as a portable JSON document keyed by job
// names (not numeric IDs), so edited files remain stable under reordering.
func (g *Graph) MarshalJSON() ([]byte, error) {
	doc := graphJSON{V: WireVersion, Name: g.name}
	for _, j := range g.jobs {
		doc.Jobs = append(doc.Jobs, jobJSON{Name: j.Name, Op: j.Op})
	}
	for i := range g.succ {
		for _, e := range g.succ[i] {
			doc.Edges = append(doc.Edges, edgeJSON{
				From: g.jobs[e.From].Name,
				To:   g.jobs[e.To].Name,
				Data: e.Data,
				File: e.File,
			})
		}
	}
	sort.Slice(doc.Edges, func(a, b int) bool {
		if doc.Edges[a].From != doc.Edges[b].From {
			return doc.Edges[a].From < doc.Edges[b].From
		}
		return doc.Edges[a].To < doc.Edges[b].To
	})
	return json.MarshalIndent(doc, "", "  ")
}

// FromJSON decodes a graph previously produced by MarshalJSON. The result
// is validated before being returned.
func FromJSON(data []byte) (*Graph, error) {
	var doc graphJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("dag: decode: %w", err)
	}
	if doc.V < 0 || doc.V > WireVersion {
		return nil, fmt.Errorf("dag: decode: unsupported wire version %d (max %d)", doc.V, WireVersion)
	}
	g := New(doc.Name)
	for _, j := range doc.Jobs {
		if g.JobByName(j.Name) != NoJob {
			return nil, fmt.Errorf("dag: decode: duplicate job %q", j.Name)
		}
		g.AddJob(j.Name, j.Op)
	}
	for _, e := range doc.Edges {
		from, to := g.JobByName(e.From), g.JobByName(e.To)
		if from == NoJob || to == NoJob {
			return nil, fmt.Errorf("dag: decode: edge (%s,%s) references unknown job", e.From, e.To)
		}
		if err := g.AddFileEdge(from, to, e.Data, e.File); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// UnmarshalJSON makes *Graph a json.Unmarshaler over the FromJSON wire
// format, so composite wire documents (internal/wire) can embed a graph
// field directly. The decoded graph is fully validated; on error the
// receiver is left untouched.
func (g *Graph) UnmarshalJSON(data []byte) error {
	ng, err := FromJSON(data)
	if err != nil {
		return err
	}
	*g = *ng
	return nil
}

// DOT renders the graph in Graphviz dot syntax, with edge labels carrying
// the communication weight. Useful for eyeballing generated workloads.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.name)
	b.WriteString("  rankdir=TB;\n  node [shape=box];\n")
	for _, j := range g.jobs {
		if j.Op != "" && j.Op != j.Name {
			fmt.Fprintf(&b, "  %q [label=\"%s\\n(%s)\"];\n", j.Name, j.Name, j.Op)
		} else {
			fmt.Fprintf(&b, "  %q;\n", j.Name)
		}
	}
	for i := range g.succ {
		for _, e := range g.succ[i] {
			fmt.Fprintf(&b, "  %q -> %q [label=\"%g\"];\n", g.jobs[e.From].Name, g.jobs[e.To].Name, e.Data)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
