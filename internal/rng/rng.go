// Package rng provides small, deterministic, splittable pseudo-random
// utilities used throughout the simulator and the experiment harness.
//
// Reproducibility is a hard requirement for the reproduction: every
// experiment in the paper is re-run from a fixed seed, and independent
// sub-experiments must draw from independent streams so that adding or
// reordering one sweep does not perturb another. The Source type implements
// the splitmix64 generator, which is tiny, fast, passes BigCrush, and —
// unlike math/rand's global state — is trivially splittable by hashing a
// label into a child seed.
package rng

import "math"

// Source is a deterministic pseudo-random number generator based on
// splitmix64. The zero value is a valid generator seeded with 0; prefer New
// so the seed is explicit.
type Source struct {
	seed  uint64 // the immutable origin, used by Split
	state uint64 // the evolving stream position
}

// New returns a Source seeded with seed. Two Sources created with the same
// seed produce identical streams.
func New(seed uint64) *Source {
	return &Source{seed: seed, state: seed}
}

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (s *Source) Float64() float64 {
	// Use the top 53 bits for a uniform double in [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniformly distributed value in [lo, hi). It panics if
// hi < lo.
func (s *Source) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Uniform called with hi < lo")
	}
	return lo + (hi-lo)*s.Float64()
}

// IntN returns a uniformly distributed integer in [0, n). It panics if
// n <= 0.
func (s *Source) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN called with n <= 0")
	}
	// Rejection-free multiply-shift reduction; the modulo bias is negligible
	// for the n used here (n << 2^32), but use 64x64->128 style reduction via
	// float is lossy, so do a plain modulo with a bound check loop.
	const maxUint64 = ^uint64(0)
	limit := maxUint64 - maxUint64%uint64(n)
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % uint64(n))
		}
	}
}

// Intn is an alias of IntN matching math/rand naming, convenient when a
// *Source is used where a *math/rand.Rand was expected.
func (s *Source) Intn(n int) int { return s.IntN(n) }

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.IntN(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent child Source from the parent's seed (not
// its evolving stream position) and a label: the child obtained for a
// label is the same no matter how many values were already drawn from the
// parent, which lets experiments add or reorder draws without perturbing
// sibling streams.
func (s *Source) Split(label string) *Source {
	h := fnv64a(label)
	// Mix seed and label hash through one splitmix64 round for avalanche.
	z := s.seed ^ h ^ 0x6a09e667f3bcc909
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return &Source{seed: z, state: z}
}

// Exp returns an exponentially distributed value with the given mean.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Box–Muller transform.
func (s *Source) Norm(mean, stddev float64) float64 {
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Shuffle pseudo-randomly reorders the n elements addressed by swap, in the
// manner of math/rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.IntN(i + 1)
		swap(i, j)
	}
}

func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
