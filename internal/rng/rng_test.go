package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniforms = %g, want ≈0.5", mean)
	}
}

func TestUniform(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(5, 9)
		if v < 5 || v >= 9 {
			t.Fatalf("Uniform(5,9) = %g out of range", v)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	r := New(3)
	if v := r.Uniform(4, 4); v != 4 {
		t.Fatalf("Uniform(4,4) = %g, want 4", v)
	}
}

func TestUniformPanicsOnInvertedRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hi < lo")
		}
	}()
	New(1).Uniform(2, 1)
}

func TestIntN(t *testing.T) {
	r := New(5)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.IntN(10)]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("IntN(10): value %d occurred %d times, want ≈10000", v, c)
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	New(1).IntN(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	err := quick.Check(func(seed uint64) bool {
		p := New(seed).Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestSplitIndependence(t *testing.T) {
	parent := New(100)
	a := parent.Split("alpha")
	b := parent.Split("beta")
	if a.Uint64() == b.Uint64() {
		t.Fatal("differently-labelled children produced identical first values")
	}
	// Splitting again with the same label yields the same child stream
	// regardless of parent draws in between.
	parent2 := New(100)
	parent2.Uint64()
	c := parent2.Split("alpha")
	a2 := New(100).Split("alpha")
	if c.Uint64() != a2.Uint64() {
		t.Fatal("Split is not stable under parent draws")
	}
}

func TestSplitChain(t *testing.T) {
	x := New(1).Split("exp").Split("point").Split("case-3")
	y := New(1).Split("exp").Split("point").Split("case-3")
	for i := 0; i < 100; i++ {
		if x.Uint64() != y.Uint64() {
			t.Fatalf("chained splits diverged at %d", i)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(3)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Fatalf("Exp(3) mean = %g, want ≈3", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(23)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Norm mean = %g, want ≈10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("Norm stddev = %g, want ≈2", math.Sqrt(variance))
	}
}

func TestShuffle(t *testing.T) {
	r := New(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("shuffle duplicated %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
