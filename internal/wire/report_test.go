package wire

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{Events: []ReportEvent{
		{Kind: ReportJobStarted, Time: 0, Job: 0, Resource: 2},
		{Kind: ReportJobFinished, Time: 14, Job: 0, Resource: 2, Duration: 14},
		{Kind: ReportResourceJoin, Time: 15, Resource: 3},
		{Kind: ReportVariance, Time: 20, Job: 1, Duration: 33},
		{Kind: ReportResourceLeave, Time: 25, Resource: 1},
	}}
}

func TestReportRoundTrip(t *testing.T) {
	data, err := EncodeReport(sampleReport())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.V != Version || len(got.Events) != 5 {
		t.Fatalf("envelope lost: %+v", got)
	}
	if got.Events[1].Duration != 14 || got.Events[2].Resource != 3 {
		t.Fatalf("event fields lost: %+v", got.Events)
	}
	again, err := EncodeReport(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-encoding not canonical:\n%s\nvs\n%s", data, again)
	}
}

func TestReportDecodeRejects(t *testing.T) {
	valid, err := EncodeReport(sampleReport())
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(m map[string]any)) []byte {
		var m map[string]any
		if err := json.Unmarshal(valid, &m); err != nil {
			t.Fatal(err)
		}
		f(m)
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	event := func(m map[string]any, i int) map[string]any {
		return m["events"].([]any)[i].(map[string]any)
	}
	cases := []struct {
		name string
		data []byte
		max  int
		want string
	}{
		{"garbage", []byte("{"), 0, "decode"},
		{"future version", mutate(func(m map[string]any) { m["v"] = Version + 1 }), 0, "unsupported report version"},
		{"no events", mutate(func(m map[string]any) { m["events"] = []any{} }), 0, "no events"},
		{"too many events", valid, 2, "exceeds limit"},
		{"unknown kind", mutate(func(m map[string]any) { event(m, 0)["kind"] = "job-exploded" }), 0, "unknown kind"},
		{"negative time", mutate(func(m map[string]any) { event(m, 0)["time"] = -1.0 }), 0, "invalid time"},
		{"non-monotonic", mutate(func(m map[string]any) { event(m, 1)["time"] = 0.0; event(m, 0)["time"] = 5.0 }), 0, "non-monotonic"},
		{"negative job", mutate(func(m map[string]any) { event(m, 0)["job"] = -1 }), 0, "negative job"},
		{"negative resource", mutate(func(m map[string]any) { event(m, 0)["resource"] = -2 }), 0, "negative resource"},
		{"negative duration", mutate(func(m map[string]any) { event(m, 1)["duration"] = -3.0 }), 0, "invalid duration"},
		{"started with duration", mutate(func(m map[string]any) { event(m, 0)["duration"] = 7.0 }), 0, "carries a duration"},
		{"variance with resource", mutate(func(m map[string]any) { event(m, 3)["resource"] = 2 }), 0, "carries a resource"},
		{"join with job", mutate(func(m map[string]any) { event(m, 2)["job"] = 4 }), 0, "carries a job"},
		{"leave with duration", mutate(func(m map[string]any) { event(m, 4)["duration"] = 1.0 }), 0, "carries a duration"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeReport(tc.data, tc.max)
			if err == nil {
				t.Fatalf("decode accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// FuzzReportRoundTrip holds the report decoder to the same contract as
// the submission decoder: arbitrary bytes never panic, and any accepted
// document re-encodes canonically.
func FuzzReportRoundTrip(f *testing.F) {
	if seed, err := EncodeReport(sampleReport()); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"v":1,"events":[{"kind":"job-started","time":0}]}`))
	f.Add([]byte(`{"v":1,"events":[{"kind":"job-finished","time":3,"job":1,"duration":3}]}`))
	f.Add([]byte(`{"v":2,"events":[]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeReport(data, 1000)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		enc, err := EncodeReport(r)
		if err != nil {
			t.Fatalf("accepted report failed to re-encode: %v", err)
		}
		r2, err := DecodeReport(enc, 1000)
		if err != nil {
			t.Fatalf("re-encoded report rejected: %v", err)
		}
		enc2, err := EncodeReport(r2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip not canonical:\n%s\nvs\n%s", enc, enc2)
		}
	})
}
