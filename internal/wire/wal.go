// Write-ahead-log record envelope: the versioned JSON document framed
// into aheftd's per-shard durability log (internal/durable). The
// envelope carries only what replay needs to order and route a record —
// the log sequence number, the record kind, and the opaque payload the
// server packages — so the durable layer can frame, checksum, and replay
// records without knowing their meaning, and the payload schemas can
// evolve behind the envelope version exactly like the other wire
// documents.
package wire

import (
	"encoding/json"
	"fmt"
	"strconv"
	"unicode/utf8"
)

// WAL record kinds appended by the daemon. The durable layer treats the
// kind as an opaque routing tag; these constants name the server's
// record schema so replay and the record writers agree.
const (
	// WALSubmission: an accepted workflow submission (raw Submission
	// body) waiting to execute.
	WALSubmission = "submission"
	// WALReject: a previously logged submission whose enqueue was
	// refused; replay drops the pending record.
	WALReject = "reject"
	// WALAdmission: the admission decision for an accepted submission —
	// tenant, class and fair-queue weight — journalled beside the raw
	// body so a crash restores queued-but-unplanned submissions into the
	// fair queue with the credentials they were admitted under.
	WALAdmission = "admission"
	// WALGrid: a registered shared grid (raw GridSpec body).
	WALGrid = "grid"
	// WALState: a live workflow's full post-apply feedback state.
	WALState = "state"
	// WALTerminal: a workflow reached done/failed; payload is its frozen
	// status document and event log.
	WALTerminal = "terminal"
)

// WALRecord is the envelope of one write-ahead-log entry.
type WALRecord struct {
	// V is the envelope version (see Version).
	V int `json:"v"`
	// LSN is the record's log sequence number: strictly increasing per
	// shard log, assigned by the appender. Snapshots name the LSN they
	// cover; replay skips records at or below it.
	LSN uint64 `json:"lsn"`
	// Kind is one of the WAL* constants (opaque to the durable layer).
	Kind string `json:"kind"`
	// Data is the kind-specific payload.
	Data json.RawMessage `json:"data,omitempty"`
}

// Validate checks envelope validity: version range, a positive LSN, and
// a non-empty kind. Payload validity is the consumer's business.
func (r *WALRecord) Validate() error {
	if r.V < 0 || r.V > Version {
		return fmt.Errorf("wire: unsupported WAL record version %d (max %d)", r.V, Version)
	}
	if r.LSN == 0 {
		return fmt.Errorf("wire: WAL record has zero LSN")
	}
	if r.Kind == "" {
		return fmt.Errorf("wire: WAL record has empty kind")
	}
	return nil
}

// EncodeWALRecord marshals the record at the current envelope version
// after validating it. The argument is not modified.
func EncodeWALRecord(r *WALRecord) ([]byte, error) {
	return AppendWALRecord(nil, r)
}

// AppendWALRecord appends the record's encoding (at the current envelope
// version, after validating it) to dst and returns the extended slice.
// Data is embedded verbatim: the appender either produced it with
// json.Marshal or validated it at ingestion, so the append hot path does
// not re-validate and re-compact every payload the way a reflective
// marshal of a json.RawMessage field would. The caller owns the
// guarantee that Data is a single valid JSON value.
func AppendWALRecord(dst []byte, r *WALRecord) ([]byte, error) {
	stamped := *r
	stamped.V = Version
	if err := stamped.Validate(); err != nil {
		return nil, err
	}
	dst = append(dst, `{"v":`...)
	dst = strconv.AppendInt(dst, int64(Version), 10)
	dst = append(dst, `,"lsn":`...)
	dst = strconv.AppendUint(dst, r.LSN, 10)
	dst = append(dst, `,"kind":`...)
	dst = AppendJSONString(dst, r.Kind)
	if len(r.Data) > 0 {
		dst = append(dst, `,"data":`...)
		dst = append(dst, r.Data...)
	}
	return append(dst, '}'), nil
}

// AppendJSONString appends s as a JSON string literal. The fast path
// covers plain ASCII (the daemon's record kinds, IDs and grid names);
// anything needing escapes takes the stdlib encoder.
func AppendJSONString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= utf8.RuneSelf {
			b, err := json.Marshal(s)
			if err != nil { // a string value cannot fail to marshal
				panic(err)
			}
			return append(dst, b...)
		}
	}
	dst = append(dst, '"')
	dst = append(dst, s...)
	return append(dst, '"')
}

// DecodeWALRecord unmarshals and validates one WAL record envelope. It
// never panics on any input.
func DecodeWALRecord(data []byte) (*WALRecord, error) {
	var r WALRecord
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("wire: decode WAL record: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
