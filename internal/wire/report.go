// Runtime-feedback wire format: the event documents the Performance
// Monitor side of the paper's Fig. 1 loop POSTs back to the daemon while
// it enacts a live workflow's schedule. A Report is a batch of
// time-ordered events — job starts, job completions with measured
// runtimes, explicit significant-variance observations, and resource
// join/leave churn — that the owning shard folds into the workflow's
// per-tenant Performance History Repository and evaluates for an
// adaptive reschedule.
//
// Like Submission, the format is versioned, strictly validated, and held
// to the fuzz contract that arbitrary bytes never panic the decoder and
// any accepted document re-encodes canonically (FuzzReportRoundTrip).
// Structural validity lives here; stateful validity (does the job exist,
// was it started, is the clock monotonic with the run) is the shard's
// business and is checked against the live run before any event is
// applied.
package wire

import (
	"encoding/json"
	"fmt"
	"math"
)

// Report event kinds.
const (
	// ReportJobStarted: the Execution Manager dispatched a job; Job and
	// Resource identify the placement, Time the actual start.
	ReportJobStarted = "job-started"
	// ReportJobFinished: a job completed; Duration is the measured
	// runtime (0 means "derive from the reported start"), Resource must
	// match the start report when non-zero.
	ReportJobFinished = "job-finished"
	// ReportVariance: the Performance Monitor observed a significant
	// deviation on a *running* job; Duration, when positive, is the
	// revised expected total runtime.
	ReportVariance = "variance"
	// ReportResourceJoin: a resource of the submitted universe became
	// available.
	ReportResourceJoin = "resource-join"
	// ReportResourceLeave: an available resource left the pool. Running
	// jobs keep their reservations (the compute slot drains); unstarted
	// jobs scheduled there force a reschedule.
	ReportResourceLeave = "resource-leave"
)

// DefaultMaxReportEvents bounds the event count of one accepted report.
const DefaultMaxReportEvents = 10_000

// ReportEvent is one run-time occurrence. Fields that a kind does not use
// must hold their zero value — the decoder rejects anything else so every
// accepted document has exactly one meaning.
type ReportEvent struct {
	// Kind is one of the Report* constants.
	Kind string `json:"kind"`
	// Time is the reporter's monotonic workflow clock (same unit as the
	// submitted estimates). Events must be time-ordered within a report
	// and across consecutive reports.
	Time float64 `json:"time"`
	// Job is the dense job index (job-started, job-finished, variance).
	Job int `json:"job,omitempty"`
	// Resource is the dense resource index (job-started, resource-join,
	// resource-leave; optional cross-check on job-finished).
	Resource int `json:"resource,omitempty"`
	// Duration is the measured runtime (job-finished) or the revised
	// expected runtime (variance).
	Duration float64 `json:"duration,omitempty"`
}

// Report is the envelope of one POST /v1/workflows/{id}/report request.
type Report struct {
	// V is the envelope version (see Version).
	V int `json:"v"`
	// Events holds the batch in time order.
	Events []ReportEvent `json:"events"`
}

func validNumber(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate checks structural validity: version, bounded batch size, known
// kinds, finite non-negative time-ordered clocks, and zeroed unused
// fields. maxEvents <= 0 means DefaultMaxReportEvents.
func (r *Report) Validate(maxEvents int) error {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxReportEvents
	}
	if r.V < 0 || r.V > Version {
		return fmt.Errorf("wire: unsupported report version %d (max %d)", r.V, Version)
	}
	if len(r.Events) == 0 {
		return fmt.Errorf("wire: report has no events")
	}
	if len(r.Events) > maxEvents {
		return fmt.Errorf("wire: %d events exceeds limit %d", len(r.Events), maxEvents)
	}
	last := 0.0
	for i, ev := range r.Events {
		if !validNumber(ev.Time) || ev.Time < 0 {
			return fmt.Errorf("wire: event %d has invalid time %g", i, ev.Time)
		}
		if ev.Time < last {
			return fmt.Errorf("wire: event %d time %g before event %d time %g (non-monotonic)", i, ev.Time, i-1, last)
		}
		last = ev.Time
		if !validNumber(ev.Duration) || ev.Duration < 0 {
			return fmt.Errorf("wire: event %d has invalid duration %g", i, ev.Duration)
		}
		if ev.Job < 0 {
			return fmt.Errorf("wire: event %d has negative job %d", i, ev.Job)
		}
		if ev.Resource < 0 {
			return fmt.Errorf("wire: event %d has negative resource %d", i, ev.Resource)
		}
		switch ev.Kind {
		case ReportJobStarted:
			if ev.Duration != 0 {
				return fmt.Errorf("wire: event %d (%s) carries a duration", i, ev.Kind)
			}
		case ReportJobFinished:
			// Job, Resource and Duration all meaningful.
		case ReportVariance:
			if ev.Resource != 0 {
				return fmt.Errorf("wire: event %d (%s) carries a resource", i, ev.Kind)
			}
		case ReportResourceJoin, ReportResourceLeave:
			if ev.Job != 0 {
				return fmt.Errorf("wire: event %d (%s) carries a job", i, ev.Kind)
			}
			if ev.Duration != 0 {
				return fmt.Errorf("wire: event %d (%s) carries a duration", i, ev.Kind)
			}
		default:
			return fmt.Errorf("wire: event %d has unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// EncodeReport marshals the report at the current envelope version after
// validating it. The argument is not modified.
func EncodeReport(r *Report) ([]byte, error) {
	stamped := *r
	stamped.V = Version
	if err := stamped.Validate(0); err != nil {
		return nil, err
	}
	return json.Marshal(&stamped)
}

// DecodeReport unmarshals and structurally validates one report document.
// It never panics on any input. maxEvents <= 0 means
// DefaultMaxReportEvents.
func DecodeReport(data []byte, maxEvents int) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("wire: decode report: %w", err)
	}
	if err := r.Validate(maxEvents); err != nil {
		return nil, err
	}
	return &r, nil
}

// --- Feedback-loop response documents ---------------------------------

// Assignment is the wire form of one schedule entry.
type Assignment struct {
	Job      int     `json:"job"`
	Resource int     `json:"resource"`
	Start    float64 `json:"start"`
	Finish   float64 `json:"finish"`
}

// Plan is the GET /v1/workflows/{id}/plan response: the schedule the
// daemon currently wants enacted. Generation increments on every adopted
// reschedule, so an enactor can detect that its copy is stale.
type Plan struct {
	Workflow string `json:"workflow"`
	// Generation is 1 for the initial plan, +1 per adopted reschedule.
	Generation int `json:"generation"`
	// Trigger names what produced this plan: "initial", "arrival",
	// "variance" or "departure".
	Trigger string `json:"trigger"`
	// Makespan is the plan's predicted completion time.
	Makespan    float64      `json:"makespan"`
	Assignments []Assignment `json:"assignments"`
}

// ReportAck is the POST /v1/workflows/{id}/report response.
type ReportAck struct {
	Workflow string `json:"workflow"`
	// Applied counts the events folded into the run (the whole batch, or
	// the prefix up to workflow completion).
	Applied int `json:"applied"`
	// Decisions counts the rescheduling evaluations this report caused.
	Decisions int `json:"decisions"`
	// Rescheduled reports whether any evaluation was adopted.
	Rescheduled bool `json:"rescheduled"`
	// Trigger is the last adopted evaluation's trigger.
	Trigger string `json:"trigger,omitempty"`
	// Generation is the current plan generation after this report.
	Generation int `json:"generation"`
	// Plan carries the new schedule when Rescheduled, saving the enactor
	// a round trip.
	Plan *Plan `json:"plan,omitempty"`
	// Done reports that every job is finished; Makespan is then the
	// measured completion time.
	Done     bool    `json:"done"`
	Makespan float64 `json:"makespan,omitempty"`
}

// WhatIfRequest is the POST /v1/workflows/{id}/whatif body: the paper's
// §3.3 capacity question evaluated against the live run. Add and Remove
// name resource indices of the submitted universe.
type WhatIfRequest struct {
	// Clock is the hypothetical evaluation time; values below the run's
	// live clock (including the 0 default: "right now") are clamped to it.
	Clock  float64 `json:"clock,omitempty"`
	Add    []int   `json:"add,omitempty"`
	Remove []int   `json:"remove,omitempty"`
}

// WhatIfDoc is the what-if response.
type WhatIfDoc struct {
	Workflow string  `json:"workflow"`
	Clock    float64 `json:"clock"`
	// PoolSize is the hypothetical pool's size.
	PoolSize int `json:"pool_size"`
	// CurrentMakespan is the live plan's projected completion under
	// current estimates if nothing changes.
	CurrentMakespan float64 `json:"current_makespan"`
	// NewMakespan is the predicted completion after rescheduling under
	// the hypothetical pool.
	NewMakespan float64 `json:"new_makespan"`
	// Delta is NewMakespan − CurrentMakespan (negative = improvement).
	Delta float64 `json:"delta"`
	// WouldAdopt reports whether the planner would switch schedules.
	WouldAdopt bool `json:"would_adopt"`
	// ForeignReservations counts the other workflows' reservations the
	// hypothetical replan had to plan around (shared grids only): the
	// what-if answer is against the grid's aggregate occupancy, not a
	// private pool snapshot.
	ForeignReservations int `json:"foreign_reservations,omitempty"`
}
