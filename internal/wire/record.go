// Flight-recorder record schema: the versioned record stream the
// daemon's per-shard recorder tap appends (reusing the WAL envelope,
// WALRecord, and the durable layer's frame format) and cmd/replay
// re-drives. One stream per shard, in the order the shard's worker
// goroutine processed the inputs — which, because every workflow's
// decisions are made on exactly one shard goroutine, is the order that
// fully determines the shard's decision sequence.
//
// Two record families share a stream:
//
//   - inputs (RecGrid, RecSubmission, RecReport): every external fact
//     that reached the shard, with its raw wire body verbatim;
//   - outputs (RecDecision, RecPlan, RecDone): the decision /
//     plan-generation / adoption sequence the shard produced, in
//     emission order.
//
// Replay re-drives the inputs of each stream, strictly one at a time
// per shard, through a fresh server and compares the fresh output
// records against the recorded ones. The kernel is deterministic and
// every scheduling clock rides inside the report bodies, so the
// comparison is bit-identical; wall-clock readings are captured on each
// record (RecHeader.StartUnixNano, RecBody.At) for diagnosis but are
// excluded from the comparison, exactly like the Decision telemetry
// fields (path/cone/fallback/elapsed) that PR 7 already excluded from
// journalled state for the same reason.
package wire

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
)

// RecordName is shard i's stream file name under a recording directory,
// shared by the recorder tap and replay.
func RecordName(shard int) string { return fmt.Sprintf("record-shard-%03d.wal", shard) }

// Flight-recorder record kinds (WALRecord.Kind values).
const (
	// RecBegin: stream header — capture config and wall-clock start.
	RecBegin = "rec-begin"
	// RecGrid: a shared-grid registration (raw GridSpec body), recorded
	// on the grid's owning shard.
	RecGrid = "rec-grid"
	// RecSubmission: an accepted submission (raw Submission body) at
	// the moment the worker began executing it.
	RecSubmission = "rec-submission"
	// RecReport: a report batch (raw Report body) at the moment the
	// worker applied it — including batches the tracker rejected, which
	// replay re-rejects identically.
	RecReport = "rec-report"
	// RecDecision: one rescheduling evaluation's semantic outcome.
	RecDecision = "rec-decision"
	// RecPlan: a plan generation published to the enactor.
	RecPlan = "rec-plan"
	// RecDone: a workflow reached a terminal state.
	RecDone = "rec-done"
	// RecEnd: stream trailer — present only when the daemon drained
	// cleanly; its absence is the diagnostic for a truncated capture.
	RecEnd = "rec-end"
)

// RecHeader is the RecBegin payload: what replay needs to rebuild an
// equivalent server.
type RecHeader struct {
	V                 int     `json:"v"`
	Shard             int     `json:"shard"`
	Shards            int     `json:"shards"`
	Policy            string  `json:"policy,omitempty"`
	VarianceThreshold float64 `json:"variance_threshold,omitempty"`
	MaxConeFrac       float64 `json:"max_cone_frac,omitempty"`
	// StartUnixNano is the wall clock at capture start (diagnostic
	// only; excluded from replay comparison).
	StartUnixNano int64 `json:"start_unix_nano,omitempty"`
}

// RecBody is the shared payload of the three input kinds: the raw wire
// body plus its addressee.
type RecBody struct {
	// Workflow is the daemon-assigned ID (RecSubmission: the ID replay
	// must reuse; RecReport: the target).
	Workflow string `json:"workflow,omitempty"`
	// Grid is the registered grid name (RecGrid only).
	Grid string `json:"grid,omitempty"`
	// At is the wall-clock capture time (diagnostic only).
	At int64 `json:"at,omitempty"`
	// Body is the raw request body, verbatim.
	Body json.RawMessage `json:"body,omitempty"`
}

// RecDecided is the RecDecision payload: the semantic fields of one
// evaluation. Process-local telemetry (path, cone, fallback, elapsed)
// is deliberately absent — a replayed run may legitimately take the
// full path where the original took the delta; the schedules are
// bit-identical either way.
type RecDecided struct {
	Workflow string  `json:"workflow"`
	Clock    float64 `json:"clock"`
	PoolSize int     `json:"pool_size,omitempty"`
	// OldMakespan uses the wire -1 sentinel for +Inf (infeasible old
	// plan after a departure).
	OldMakespan  float64 `json:"old_makespan"`
	NewMakespan  float64 `json:"new_makespan"`
	Adopted      bool    `json:"adopted,omitempty"`
	JobsFinished int     `json:"jobs_finished,omitempty"`
	Trigger      string  `json:"trigger,omitempty"`
	Arrived      int     `json:"arrived,omitempty"`
}

// RecPlanned is the RecPlan payload: one published plan generation,
// with a full-assignment digest so replay divergence in placements is
// caught even at equal makespan.
type RecPlanned struct {
	Workflow   string  `json:"workflow"`
	Generation int     `json:"generation"`
	Trigger    string  `json:"trigger,omitempty"`
	Makespan   float64 `json:"makespan"`
	PlanHash   uint64  `json:"plan_hash,omitempty"`
}

// RecFinished is the RecDone payload.
type RecFinished struct {
	Workflow string  `json:"workflow"`
	Status   string  `json:"status"`
	Makespan float64 `json:"makespan,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// RecTrailer is the RecEnd payload. Clean reports whether the drain
// completed without force-cancelling live runs; a force-cancelled
// capture's tail decisions depend on kill timing and cannot replay
// bit-identically, so replay refuses it with a diagnostic.
type RecTrailer struct {
	Clean       bool  `json:"clean"`
	EndUnixNano int64 `json:"end_unix_nano,omitempty"`
}

// HashPlan digests a plan's assignments (job, resource, start, finish —
// bit-exact on the floats) with FNV-1a. Two plans with equal hash and
// equal assignment count are the same placement for replay purposes.
func HashPlan(as []Assignment) uint64 {
	h := fnv.New64a()
	var b [8 * 4]byte
	for _, a := range as {
		put64(b[0:8], uint64(int64(a.Job)))
		put64(b[8:16], uint64(int64(a.Resource)))
		put64(b[16:24], math.Float64bits(a.Start))
		put64(b[24:32], math.Float64bits(a.Finish))
		h.Write(b[:])
	}
	return h.Sum64()
}

func put64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}
