// Package wire defines the versioned submission envelope the aheftd
// daemon accepts over HTTP: one JSON document bundling a workflow graph,
// its estimator table, the dynamic resource-pool description, and the
// scheduling policy/options to drive it with. It composes the codecs of
// the model packages — dag.Graph (internal/dag/serialize.go), cost.Table
// and grid.Pool — and layers strict cross-validation and size limits on
// top, so a malformed or hostile submission is rejected with an error and
// can never panic or exhaust the daemon (FuzzSerializeRoundTrip holds the
// decoder to that).
//
// The format is versioned at both layers: the envelope carries "v" and
// every embedded graph document carries its own "v" (dag.WireVersion).
// Decoders accept versions up to their own and reject newer ones, so old
// daemons fail closed on future documents.
//
// Edge-cost precedence (v2): a submission may declare a file catalog
// ("files") and edges may name files. For an edge that names a declared
// file, the communication cost is *derived* — file size ÷ the effective
// bandwidth of the path, as declared by the pool's uplink/downlink/link
// capacities — and the edge's raw numeric "data" weight is superseded
// (it remains legal on the wire and still drives edges that name no
// file). A submission that names files on edges without declaring a
// catalog is rejected; a v1 document (no "files", no capacities) decodes
// and re-encodes exactly as before and schedules bit-identically.
package wire

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/data"
	"aheft/internal/grid"
)

// Version is the current envelope version. DecodeSubmission accepts 0
// (legacy, unversioned) through Version and rejects anything newer.
// History: v1 — original envelope; v2 — data-aware scheduling (the
// submission "files" catalog, pool link/storage capacities, grid-status
// link occupancy).
const Version = 2

// Limits bounds the size of an accepted submission. The zero value means
// DefaultLimits; a negative field disables that bound.
type Limits struct {
	// MaxJobs caps the job count of the submitted graph.
	MaxJobs int
	// MaxResources caps the pool size (resources that ever join).
	MaxResources int
	// MaxFiles caps the submission's declared file catalog.
	MaxFiles int
}

// DefaultLimits is the daemon's default submission bound: generous enough
// for the 20k-job layered stress workflows, small enough that one
// submission cannot exhaust the process.
var DefaultLimits = Limits{MaxJobs: 100_000, MaxResources: 10_000, MaxFiles: 10_000}

func (l Limits) withDefaults() Limits {
	if l.MaxJobs == 0 {
		l.MaxJobs = DefaultLimits.MaxJobs
	}
	if l.MaxResources == 0 {
		l.MaxResources = DefaultLimits.MaxResources
	}
	if l.MaxFiles == 0 {
		l.MaxFiles = DefaultLimits.MaxFiles
	}
	return l
}

// Options is the wire form of the policy options (policy.Options), kept
// as an independent struct so the wire format does not drift silently
// when the engine grows new knobs.
type Options struct {
	// TieWindow enables near-tie rank-order exploration (0 = greedy).
	TieWindow float64 `json:"tie_window,omitempty"`
	// NoInsertion disables the insertion-based slot policy.
	NoInsertion bool `json:"no_insertion,omitempty"`
	// RestartRunning reschedules mid-execution jobs (analytic-only
	// ablation; the daemon runs the analytic engine, so it is honoured).
	RestartRunning bool `json:"restart_running,omitempty"`
	// Eps is the minimum makespan improvement to adopt a reschedule.
	Eps float64 `json:"eps,omitempty"`
	// VarianceThreshold, for live workflows, is the relative deviation of
	// a measured runtime from the history EWMA beyond which the daemon
	// evaluates a reschedule (the paper's "significant variance" event).
	// Zero means the daemon's configured default.
	VarianceThreshold float64 `json:"variance_threshold,omitempty"`
	// Class is the admission priority class: one of ClassHigh,
	// ClassNormal (also the empty string) or ClassLow. Classes share the
	// daemon's intake by weighted fair queueing — a higher class gets a
	// larger service share under backlog, never an absolute priority, so
	// low-class submissions cannot starve.
	Class string `json:"class,omitempty"`
	// Weight is the tenant's fair-queueing weight within its class
	// (0 means 1). Under backlog a tenant's admission share is
	// proportional to its weight relative to the other backlogged
	// tenants of the same class. Capped at MaxWeight.
	Weight float64 `json:"weight,omitempty"`
}

// Admission priority classes carried in Options.Class.
const (
	ClassHigh   = "high"
	ClassNormal = "normal"
	ClassLow    = "low"
)

// MaxWeight bounds Options.Weight so one tenant cannot claim an
// effectively absolute share of its class.
const MaxWeight = 1000

func (o Options) validate() error {
	if math.IsNaN(o.TieWindow) || math.IsInf(o.TieWindow, 0) || o.TieWindow < 0 {
		return fmt.Errorf("wire: invalid tie_window %g", o.TieWindow)
	}
	if math.IsNaN(o.Eps) || math.IsInf(o.Eps, 0) || o.Eps < 0 {
		return fmt.Errorf("wire: invalid eps %g", o.Eps)
	}
	if math.IsNaN(o.VarianceThreshold) || math.IsInf(o.VarianceThreshold, 0) || o.VarianceThreshold < 0 {
		return fmt.Errorf("wire: invalid variance_threshold %g", o.VarianceThreshold)
	}
	switch o.Class {
	case "", ClassHigh, ClassNormal, ClassLow:
	default:
		return fmt.Errorf("wire: unknown admission class %q", o.Class)
	}
	if math.IsNaN(o.Weight) || math.IsInf(o.Weight, 0) || o.Weight < 0 || o.Weight > MaxWeight {
		return fmt.Errorf("wire: invalid weight %g (want 0 <= w <= %d)", o.Weight, MaxWeight)
	}
	return nil
}

// Submission modes.
const (
	// ModeAnalytic (also the empty string) asks the daemon to run the
	// workflow to completion through the analytic engine: the pool's
	// arrival trace is the only event source and the submission is the
	// whole conversation.
	ModeAnalytic = "analytic"
	// ModeLive asks the daemon to plan only: the client enacts the
	// returned schedule and reports run-time events back through
	// POST /v1/workflows/{id}/report, closing the paper's Fig. 1 loop.
	ModeLive = "live"
)

// MaxTenantLen bounds the tenant label length.
const MaxTenantLen = 128

// SharedPoolPrefix marks a pool reference: a submission whose "pool"
// field is the JSON string "shared:<name>" attaches to the named
// shard-resident shared grid (created via PUT /v1/grids/{name}) instead
// of shipping a private pool of its own. Workflows on the same grid see
// each other's reservations during planning.
const SharedPoolPrefix = "shared:"

// MaxGridNameLen bounds a shared-grid name.
const MaxGridNameLen = 128

// ValidGridName reports whether name is acceptable as a shared-grid
// identifier: non-empty, bounded, and free of control characters and '/'
// (names appear in URL paths).
func ValidGridName(name string) bool {
	if name == "" || len(name) > MaxGridNameLen {
		return false
	}
	for _, c := range name {
		if c < 0x21 || c == 0x7f || c == '/' {
			return false
		}
	}
	return true
}

// Submission is the envelope of one POST /v1/workflows request.
type Submission struct {
	// V is the envelope version (see Version).
	V int `json:"v"`
	// Name optionally labels the workflow; the daemon-assigned ID is
	// authoritative.
	Name string `json:"name,omitempty"`
	// Mode selects how the daemon runs the workflow (ModeAnalytic when
	// empty, or ModeLive for the report-driven adaptive loop).
	Mode string `json:"mode,omitempty"`
	// Tenant scopes the performance history this workflow reads and
	// feeds; empty means the daemon's default tenant.
	Tenant string `json:"tenant,omitempty"`
	// Policy is the scheduling-policy registry name; empty means the
	// daemon default ("aheft").
	Policy string `json:"policy,omitempty"`
	// Options tunes the engine for this workflow.
	Options Options `json:"options,omitempty"`
	// Graph is the workflow DAG (dag wire format, validated on decode).
	Graph *dag.Graph `json:"graph"`
	// Comp is the estimator table: the jobs × resources computation
	// matrix over every resource that ever joins the pool.
	Comp *cost.Table `json:"comp"`
	// Files optionally declares the workflow's data-file catalog (v2).
	// When present, every graph edge naming a file must resolve to an
	// entry here, and those edges' communication cost is derived from
	// size ÷ effective bandwidth instead of their raw "data" weight —
	// the precedence rule in the package doc. A pointer so a nil catalog
	// is omitted and v1 documents re-encode byte-identically.
	Files *data.Set `json:"files,omitempty"`
	// Pool is the dynamic resource pool: arrivals in resource-ID order.
	// Exactly one of Pool and SharedGrid is set; on the wire both travel
	// in the "pool" field (an inline pool document, or the string
	// "shared:<name>").
	Pool *grid.Pool `json:"-"`
	// SharedGrid, when non-empty, attaches the workflow to the named
	// shard-resident shared grid instead of shipping a private pool. The
	// grid must already exist (PUT /v1/grids/{name}) and the estimator
	// table must cover its resource universe. Shared submissions must be
	// ModeLive: contention is resolved through the enactment feedback
	// loop, and the workflow's reservations become visible to every other
	// workflow on the same grid.
	SharedGrid string `json:"-"`
}

// submissionWire mirrors Submission field for field with the pool carried
// raw, implementing the polymorphic "pool" encoding. Field order must
// match Submission so canonical re-encoding is stable.
type submissionWire struct {
	V       int             `json:"v"`
	Name    string          `json:"name,omitempty"`
	Mode    string          `json:"mode,omitempty"`
	Tenant  string          `json:"tenant,omitempty"`
	Policy  string          `json:"policy,omitempty"`
	Options Options         `json:"options,omitempty"`
	Graph   *dag.Graph      `json:"graph"`
	Comp    *cost.Table     `json:"comp"`
	Files   *data.Set       `json:"files,omitempty"`
	Pool    json.RawMessage `json:"pool"`
}

// MarshalJSON encodes the submission with the pool field holding either
// the inline pool document or the "shared:<name>" reference.
func (s Submission) MarshalJSON() ([]byte, error) {
	w := submissionWire{
		V: s.V, Name: s.Name, Mode: s.Mode, Tenant: s.Tenant,
		Policy: s.Policy, Options: s.Options, Graph: s.Graph, Comp: s.Comp,
		Files: s.Files,
	}
	switch {
	case s.SharedGrid != "" && s.Pool != nil:
		return nil, fmt.Errorf("wire: submission sets both pool and shared grid %q", s.SharedGrid)
	case s.SharedGrid != "":
		ref, err := json.Marshal(SharedPoolPrefix + s.SharedGrid)
		if err != nil {
			return nil, err
		}
		w.Pool = ref
	case s.Pool != nil:
		inline, err := json.Marshal(s.Pool)
		if err != nil {
			return nil, err
		}
		w.Pool = inline
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the polymorphic pool field: a JSON string is a
// shared-grid reference, anything else an inline pool document.
func (s *Submission) UnmarshalJSON(data []byte) error {
	var w submissionWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*s = Submission{
		V: w.V, Name: w.Name, Mode: w.Mode, Tenant: w.Tenant,
		Policy: w.Policy, Options: w.Options, Graph: w.Graph, Comp: w.Comp,
		Files: w.Files,
	}
	if len(w.Pool) == 0 || string(w.Pool) == "null" {
		return nil
	}
	if w.Pool[0] == '"' {
		var ref string
		if err := json.Unmarshal(w.Pool, &ref); err != nil {
			return fmt.Errorf("wire: decode pool reference: %w", err)
		}
		name, ok := strings.CutPrefix(ref, SharedPoolPrefix)
		if !ok {
			return fmt.Errorf("wire: pool reference %q must start with %q", ref, SharedPoolPrefix)
		}
		s.SharedGrid = name
		return nil
	}
	var p grid.Pool
	if err := json.Unmarshal(w.Pool, &p); err != nil {
		return err
	}
	s.Pool = &p
	return nil
}

// Validate cross-checks the decoded parts against each other and the
// limits. It is called by DecodeSubmission; callers constructing a
// Submission in Go should call it before encoding.
func (s *Submission) Validate(lim Limits) error {
	lim = lim.withDefaults()
	if s.V < 0 || s.V > Version {
		return fmt.Errorf("wire: unsupported envelope version %d (max %d)", s.V, Version)
	}
	if s.Mode != "" && s.Mode != ModeAnalytic && s.Mode != ModeLive {
		return fmt.Errorf("wire: unknown mode %q", s.Mode)
	}
	if len(s.Tenant) > MaxTenantLen {
		return fmt.Errorf("wire: tenant label exceeds %d bytes", MaxTenantLen)
	}
	for _, c := range s.Tenant {
		if c < 0x20 || c == 0x7f {
			return fmt.Errorf("wire: tenant label contains control character %q", c)
		}
	}
	if err := s.Options.validate(); err != nil {
		return err
	}
	if s.Graph == nil || s.Graph.Len() == 0 {
		return fmt.Errorf("wire: submission has no graph")
	}
	if s.Comp == nil || s.Comp.Jobs() == 0 {
		return fmt.Errorf("wire: submission has no estimator table")
	}
	if lim.MaxJobs > 0 && s.Graph.Len() > lim.MaxJobs {
		return fmt.Errorf("wire: %d jobs exceeds limit %d", s.Graph.Len(), lim.MaxJobs)
	}
	if s.Comp.Jobs() != s.Graph.Len() {
		return fmt.Errorf("wire: estimator table covers %d jobs, graph has %d", s.Comp.Jobs(), s.Graph.Len())
	}
	if s.Files == nil {
		// An edge naming a file without a catalog has no size to derive a
		// cost from; fail closed rather than silently falling back to the
		// raw weight.
		for _, j := range s.Graph.Jobs() {
			for _, e := range s.Graph.Preds(j.ID) {
				if e.File != "" {
					return fmt.Errorf("wire: edge (%s,%s) names file %q but the submission declares no file catalog",
						s.Graph.Job(e.From).Name, s.Graph.Job(e.To).Name, e.File)
				}
			}
		}
	}
	if s.SharedGrid != "" {
		// Shared-grid submission: the pool lives on the daemon, which
		// cross-checks the estimator table against the grid's resource
		// universe at submit time.
		if s.Pool != nil {
			return fmt.Errorf("wire: submission sets both pool and shared grid %q", s.SharedGrid)
		}
		if !ValidGridName(s.SharedGrid) {
			return fmt.Errorf("wire: invalid shared-grid name %q", s.SharedGrid)
		}
		if s.Mode != ModeLive {
			return fmt.Errorf("wire: shared grid %q requires mode %q", s.SharedGrid, ModeLive)
		}
		if s.Files != nil {
			// Pool size 0: host references are range-checked against the
			// grid's universe at submit time, when the daemon resolves it.
			if err := s.Files.Validate(s.Graph, 0, lim.MaxFiles); err != nil {
				return fmt.Errorf("wire: %w", err)
			}
		}
		return nil
	}
	if s.Pool == nil || s.Pool.Size() == 0 {
		return fmt.Errorf("wire: submission has no resource pool")
	}
	if lim.MaxResources > 0 && s.Pool.Size() > lim.MaxResources {
		return fmt.Errorf("wire: %d resources exceeds limit %d", s.Pool.Size(), lim.MaxResources)
	}
	if s.Comp.Resources() != s.Pool.Size() {
		return fmt.Errorf("wire: estimator table covers %d resources, pool has %d", s.Comp.Resources(), s.Pool.Size())
	}
	if s.Files != nil {
		if err := s.Files.Validate(s.Graph, s.Pool.Size(), lim.MaxFiles); err != nil {
			return fmt.Errorf("wire: %w", err)
		}
	}
	return nil
}

// EncodeSubmission marshals the submission at the current envelope
// version after validating its structure. Size limits are the
// *receiver's* policy (a daemon may be configured well above
// DefaultLimits), so encoding applies none — only structural validity.
// The argument is not modified.
func EncodeSubmission(s *Submission) ([]byte, error) {
	stamped := *s
	stamped.V = Version
	if err := stamped.Validate(Limits{MaxJobs: -1, MaxResources: -1}); err != nil {
		return nil, err
	}
	return json.Marshal(&stamped)
}

// DecodeSubmission unmarshals and fully validates one submission
// document. Every embedded part is validated by its own codec (the graph
// must be a well-formed DAG, the table rectangular/positive/finite, the
// pool arrivals non-negative with a time-0 resource) and the parts are
// cross-checked against each other and lim. It never panics on any
// input.
func DecodeSubmission(data []byte, lim Limits) (*Submission, error) {
	var s Submission
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	if err := s.Validate(lim); err != nil {
		return nil, err
	}
	return &s, nil
}

// --- Shared-grid documents --------------------------------------------

// GridSpec is the PUT /v1/grids/{name} body: the resource universe of a
// shard-resident shared grid that live workflows attach to with
// pool: "shared:<name>".
type GridSpec struct {
	// V is the envelope version (see Version).
	V int `json:"v"`
	// Pool is the grid's dynamic resource pool; every attaching
	// workflow's estimator table must cover it.
	Pool *grid.Pool `json:"pool"`
}

// Validate checks the spec against the limits.
func (g *GridSpec) Validate(lim Limits) error {
	lim = lim.withDefaults()
	if g.V < 0 || g.V > Version {
		return fmt.Errorf("wire: unsupported envelope version %d (max %d)", g.V, Version)
	}
	if g.Pool == nil || g.Pool.Size() == 0 {
		return fmt.Errorf("wire: grid spec has no resource pool")
	}
	if lim.MaxResources > 0 && g.Pool.Size() > lim.MaxResources {
		return fmt.Errorf("wire: %d resources exceeds limit %d", g.Pool.Size(), lim.MaxResources)
	}
	return nil
}

// EncodeGridSpec marshals the spec at the current envelope version after
// validating its structure.
func EncodeGridSpec(g *GridSpec) ([]byte, error) {
	stamped := *g
	stamped.V = Version
	if err := stamped.Validate(Limits{MaxJobs: -1, MaxResources: -1}); err != nil {
		return nil, err
	}
	return json.Marshal(&stamped)
}

// DecodeGridSpec unmarshals and validates one grid spec. It never panics
// on any input.
func DecodeGridSpec(data []byte, lim Limits) (*GridSpec, error) {
	var g GridSpec
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("wire: decode grid spec: %w", err)
	}
	if err := g.Validate(lim); err != nil {
		return nil, err
	}
	return &g, nil
}

// GridOwner is one attached workflow's live reservation footprint.
type GridOwner struct {
	Workflow     string `json:"workflow"`
	Reservations int    `json:"reservations"`
}

// LinkStatus is one capacity channel's live transfer-reservation count
// (channel names are the data model's: "up:<res>", "down:<res>",
// "link:<name>").
type LinkStatus struct {
	Channel      string `json:"channel"`
	Reservations int    `json:"reservations"`
}

// GridStatus is the GET /v1/grids/{name} response (and each element of
// GET /v1/grids).
type GridStatus struct {
	Name string `json:"name"`
	// Shard is the session worker hosting the grid; every workflow
	// attached to the grid executes there.
	Shard     int `json:"shard"`
	Resources int `json:"resources"`
	// Attached counts the live workflows currently resident on the grid.
	Attached int `json:"attached"`
	// Reservations is the aggregate occupancy: the total live reservation
	// count across every attached workflow. It must drain to zero when
	// the last workflow finishes — a non-zero value with Attached == 0 is
	// a leak.
	Reservations int `json:"reservations"`
	// Owners breaks Reservations down per attached workflow.
	Owners []GridOwner `json:"owners,omitempty"`
	// TransferReservations is the aggregate link occupancy: the total live
	// transfer-reservation count across every capacity channel. Like
	// Reservations it must drain to zero when the last workflow finishes.
	TransferReservations int `json:"transfer_reservations,omitempty"`
	// Links breaks TransferReservations down per capacity channel, in
	// channel-name order.
	Links []LinkStatus `json:"links,omitempty"`
}

// --- Response-side wire types (shared by the daemon and loadgen). ---

// Decision is the wire form of one rescheduling evaluation.
type Decision struct {
	Clock    float64 `json:"clock"`
	PoolSize int     `json:"pool_size"`
	// OldMakespan is the current plan's projected completion at the
	// evaluation; -1 means the plan had become infeasible (a resource
	// departure orphaned pending jobs), which forces adoption.
	OldMakespan  float64 `json:"old_makespan"`
	NewMakespan  float64 `json:"new_makespan"`
	Adopted      bool    `json:"adopted"`
	JobsFinished int     `json:"jobs_finished"`
	Trigger      string  `json:"trigger"`
	Arrived      int     `json:"arrived,omitempty"`
	// Path reports how the replan was computed ("delta" when the kernel's
	// incremental path proved a small dirty cone, "full" otherwise), Cone
	// how many jobs the delta path re-probed, Fallback why an incremental
	// attempt fell back, and ElapsedMs the replan's wall-clock cost. These
	// are live telemetry: the daemon's journalled state omits them (a
	// recovered run may legitimately replan fully where the original took
	// the delta — the schedules are identical either way).
	Path      string  `json:"path,omitempty"`
	Cone      int     `json:"cone,omitempty"`
	Fallback  string  `json:"fallback,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms,omitempty"`
	// RankMs/PlaceMs split ElapsedMs into the kernel's rank and
	// placement phases (same telemetry caveat as the fields above).
	RankMs  float64 `json:"rank_ms,omitempty"`
	PlaceMs float64 `json:"place_ms,omitempty"`
}

// Event is one server-sent event of a workflow's execution: the envelope
// streamed by GET /v1/workflows/{id}/events. Seq numbers are dense per
// workflow, so a consumer can detect any gap.
type Event struct {
	Seq      int       `json:"seq"`
	Kind     string    `json:"kind"` // submitted | started | plan | decision | done | failed
	Workflow string    `json:"workflow"`
	Time     float64   `json:"time,omitempty"` // simulated clock where meaningful
	Decision *Decision `json:"decision,omitempty"`
	// Trigger and Arrived lift the decision's cause into the envelope so
	// stream consumers can filter without unpacking the payload; on
	// "plan" events Trigger names what produced the plan.
	Trigger    string  `json:"trigger,omitempty"`
	Arrived    int     `json:"arrived,omitempty"`
	Generation int     `json:"generation,omitempty"` // plan generation (live workflows)
	Makespan   float64 `json:"makespan,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// Status is the GET /v1/workflows/{id} response.
type Status struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	State string `json:"state"` // queued | running | done | failed
	// Mode is the submission mode ("analytic" or "live").
	Mode string `json:"mode,omitempty"`
	// Tenant is the performance-history scope of a live workflow.
	Tenant string `json:"tenant,omitempty"`
	// Grid names the shared grid the workflow is attached to (shared
	// submissions only).
	Grid string `json:"grid,omitempty"`
	// Generation is the live plan generation (0 for analytic workflows).
	Generation int `json:"generation,omitempty"`
	// Reports counts accepted report batches (live workflows).
	Reports   int     `json:"reports,omitempty"`
	Policy    string  `json:"policy"`
	Shard     int     `json:"shard"`
	Jobs      int     `json:"jobs"`
	Resources int     `json:"resources"`
	Events    int     `json:"events"`
	QueueMs   float64 `json:"queue_ms"`
	ComputeMs float64 `json:"compute_ms,omitempty"`

	// Result fields, set once State is "done".
	Makespan        float64    `json:"makespan,omitempty"`
	InitialMakespan float64    `json:"initial_makespan,omitempty"`
	Improvement     float64    `json:"improvement,omitempty"`
	Decisions       []Decision `json:"decisions,omitempty"`
	Adoptions       int        `json:"adoptions,omitempty"`

	Error string `json:"error,omitempty"`
}

// Submitted is the POST /v1/workflows response.
type Submitted struct {
	ID    string `json:"id"`
	Shard int    `json:"shard"`
	State string `json:"state"`
}
