// Package wire defines the versioned submission envelope the aheftd
// daemon accepts over HTTP: one JSON document bundling a workflow graph,
// its estimator table, the dynamic resource-pool description, and the
// scheduling policy/options to drive it with. It composes the codecs of
// the model packages — dag.Graph (internal/dag/serialize.go), cost.Table
// and grid.Pool — and layers strict cross-validation and size limits on
// top, so a malformed or hostile submission is rejected with an error and
// can never panic or exhaust the daemon (FuzzSerializeRoundTrip holds the
// decoder to that).
//
// The format is versioned at both layers: the envelope carries "v" and
// every embedded graph document carries its own "v" (dag.WireVersion).
// Decoders accept versions up to their own and reject newer ones, so old
// daemons fail closed on future documents.
package wire

import (
	"encoding/json"
	"fmt"
	"math"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
)

// Version is the current envelope version. DecodeSubmission accepts 0
// (legacy, unversioned) through Version and rejects anything newer.
const Version = 1

// Limits bounds the size of an accepted submission. The zero value means
// DefaultLimits; a negative field disables that bound.
type Limits struct {
	// MaxJobs caps the job count of the submitted graph.
	MaxJobs int
	// MaxResources caps the pool size (resources that ever join).
	MaxResources int
}

// DefaultLimits is the daemon's default submission bound: generous enough
// for the 20k-job layered stress workflows, small enough that one
// submission cannot exhaust the process.
var DefaultLimits = Limits{MaxJobs: 100_000, MaxResources: 10_000}

func (l Limits) withDefaults() Limits {
	if l.MaxJobs == 0 {
		l.MaxJobs = DefaultLimits.MaxJobs
	}
	if l.MaxResources == 0 {
		l.MaxResources = DefaultLimits.MaxResources
	}
	return l
}

// Options is the wire form of the policy options (policy.Options), kept
// as an independent struct so the wire format does not drift silently
// when the engine grows new knobs.
type Options struct {
	// TieWindow enables near-tie rank-order exploration (0 = greedy).
	TieWindow float64 `json:"tie_window,omitempty"`
	// NoInsertion disables the insertion-based slot policy.
	NoInsertion bool `json:"no_insertion,omitempty"`
	// RestartRunning reschedules mid-execution jobs (analytic-only
	// ablation; the daemon runs the analytic engine, so it is honoured).
	RestartRunning bool `json:"restart_running,omitempty"`
	// Eps is the minimum makespan improvement to adopt a reschedule.
	Eps float64 `json:"eps,omitempty"`
	// VarianceThreshold, for live workflows, is the relative deviation of
	// a measured runtime from the history EWMA beyond which the daemon
	// evaluates a reschedule (the paper's "significant variance" event).
	// Zero means the daemon's configured default.
	VarianceThreshold float64 `json:"variance_threshold,omitempty"`
}

func (o Options) validate() error {
	if math.IsNaN(o.TieWindow) || math.IsInf(o.TieWindow, 0) || o.TieWindow < 0 {
		return fmt.Errorf("wire: invalid tie_window %g", o.TieWindow)
	}
	if math.IsNaN(o.Eps) || math.IsInf(o.Eps, 0) || o.Eps < 0 {
		return fmt.Errorf("wire: invalid eps %g", o.Eps)
	}
	if math.IsNaN(o.VarianceThreshold) || math.IsInf(o.VarianceThreshold, 0) || o.VarianceThreshold < 0 {
		return fmt.Errorf("wire: invalid variance_threshold %g", o.VarianceThreshold)
	}
	return nil
}

// Submission modes.
const (
	// ModeAnalytic (also the empty string) asks the daemon to run the
	// workflow to completion through the analytic engine: the pool's
	// arrival trace is the only event source and the submission is the
	// whole conversation.
	ModeAnalytic = "analytic"
	// ModeLive asks the daemon to plan only: the client enacts the
	// returned schedule and reports run-time events back through
	// POST /v1/workflows/{id}/report, closing the paper's Fig. 1 loop.
	ModeLive = "live"
)

// MaxTenantLen bounds the tenant label length.
const MaxTenantLen = 128

// Submission is the envelope of one POST /v1/workflows request.
type Submission struct {
	// V is the envelope version (see Version).
	V int `json:"v"`
	// Name optionally labels the workflow; the daemon-assigned ID is
	// authoritative.
	Name string `json:"name,omitempty"`
	// Mode selects how the daemon runs the workflow (ModeAnalytic when
	// empty, or ModeLive for the report-driven adaptive loop).
	Mode string `json:"mode,omitempty"`
	// Tenant scopes the performance history this workflow reads and
	// feeds; empty means the daemon's default tenant.
	Tenant string `json:"tenant,omitempty"`
	// Policy is the scheduling-policy registry name; empty means the
	// daemon default ("aheft").
	Policy string `json:"policy,omitempty"`
	// Options tunes the engine for this workflow.
	Options Options `json:"options,omitempty"`
	// Graph is the workflow DAG (dag wire format, validated on decode).
	Graph *dag.Graph `json:"graph"`
	// Comp is the estimator table: the jobs × resources computation
	// matrix over every resource that ever joins the pool.
	Comp *cost.Table `json:"comp"`
	// Pool is the dynamic resource pool: arrivals in resource-ID order.
	Pool *grid.Pool `json:"pool"`
}

// Validate cross-checks the decoded parts against each other and the
// limits. It is called by DecodeSubmission; callers constructing a
// Submission in Go should call it before encoding.
func (s *Submission) Validate(lim Limits) error {
	lim = lim.withDefaults()
	if s.V < 0 || s.V > Version {
		return fmt.Errorf("wire: unsupported envelope version %d (max %d)", s.V, Version)
	}
	if s.Mode != "" && s.Mode != ModeAnalytic && s.Mode != ModeLive {
		return fmt.Errorf("wire: unknown mode %q", s.Mode)
	}
	if len(s.Tenant) > MaxTenantLen {
		return fmt.Errorf("wire: tenant label exceeds %d bytes", MaxTenantLen)
	}
	for _, c := range s.Tenant {
		if c < 0x20 || c == 0x7f {
			return fmt.Errorf("wire: tenant label contains control character %q", c)
		}
	}
	if err := s.Options.validate(); err != nil {
		return err
	}
	if s.Graph == nil || s.Graph.Len() == 0 {
		return fmt.Errorf("wire: submission has no graph")
	}
	if s.Comp == nil || s.Comp.Jobs() == 0 {
		return fmt.Errorf("wire: submission has no estimator table")
	}
	if s.Pool == nil || s.Pool.Size() == 0 {
		return fmt.Errorf("wire: submission has no resource pool")
	}
	if lim.MaxJobs > 0 && s.Graph.Len() > lim.MaxJobs {
		return fmt.Errorf("wire: %d jobs exceeds limit %d", s.Graph.Len(), lim.MaxJobs)
	}
	if lim.MaxResources > 0 && s.Pool.Size() > lim.MaxResources {
		return fmt.Errorf("wire: %d resources exceeds limit %d", s.Pool.Size(), lim.MaxResources)
	}
	if s.Comp.Jobs() != s.Graph.Len() {
		return fmt.Errorf("wire: estimator table covers %d jobs, graph has %d", s.Comp.Jobs(), s.Graph.Len())
	}
	if s.Comp.Resources() != s.Pool.Size() {
		return fmt.Errorf("wire: estimator table covers %d resources, pool has %d", s.Comp.Resources(), s.Pool.Size())
	}
	return nil
}

// EncodeSubmission marshals the submission at the current envelope
// version after validating its structure. Size limits are the
// *receiver's* policy (a daemon may be configured well above
// DefaultLimits), so encoding applies none — only structural validity.
// The argument is not modified.
func EncodeSubmission(s *Submission) ([]byte, error) {
	stamped := *s
	stamped.V = Version
	if err := stamped.Validate(Limits{MaxJobs: -1, MaxResources: -1}); err != nil {
		return nil, err
	}
	return json.Marshal(&stamped)
}

// DecodeSubmission unmarshals and fully validates one submission
// document. Every embedded part is validated by its own codec (the graph
// must be a well-formed DAG, the table rectangular/positive/finite, the
// pool arrivals non-negative with a time-0 resource) and the parts are
// cross-checked against each other and lim. It never panics on any
// input.
func DecodeSubmission(data []byte, lim Limits) (*Submission, error) {
	var s Submission
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	if err := s.Validate(lim); err != nil {
		return nil, err
	}
	return &s, nil
}

// --- Response-side wire types (shared by the daemon and loadgen). ---

// Decision is the wire form of one rescheduling evaluation.
type Decision struct {
	Clock    float64 `json:"clock"`
	PoolSize int     `json:"pool_size"`
	// OldMakespan is the current plan's projected completion at the
	// evaluation; -1 means the plan had become infeasible (a resource
	// departure orphaned pending jobs), which forces adoption.
	OldMakespan  float64 `json:"old_makespan"`
	NewMakespan  float64 `json:"new_makespan"`
	Adopted      bool    `json:"adopted"`
	JobsFinished int     `json:"jobs_finished"`
	Trigger      string  `json:"trigger"`
	Arrived      int     `json:"arrived,omitempty"`
}

// Event is one server-sent event of a workflow's execution: the envelope
// streamed by GET /v1/workflows/{id}/events. Seq numbers are dense per
// workflow, so a consumer can detect any gap.
type Event struct {
	Seq      int       `json:"seq"`
	Kind     string    `json:"kind"` // submitted | started | plan | decision | done | failed
	Workflow string    `json:"workflow"`
	Time     float64   `json:"time,omitempty"` // simulated clock where meaningful
	Decision *Decision `json:"decision,omitempty"`
	// Trigger and Arrived lift the decision's cause into the envelope so
	// stream consumers can filter without unpacking the payload; on
	// "plan" events Trigger names what produced the plan.
	Trigger    string  `json:"trigger,omitempty"`
	Arrived    int     `json:"arrived,omitempty"`
	Generation int     `json:"generation,omitempty"` // plan generation (live workflows)
	Makespan   float64 `json:"makespan,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// Status is the GET /v1/workflows/{id} response.
type Status struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	State string `json:"state"` // queued | running | done | failed
	// Mode is the submission mode ("analytic" or "live").
	Mode string `json:"mode,omitempty"`
	// Tenant is the performance-history scope of a live workflow.
	Tenant string `json:"tenant,omitempty"`
	// Generation is the live plan generation (0 for analytic workflows).
	Generation int `json:"generation,omitempty"`
	// Reports counts accepted report batches (live workflows).
	Reports   int     `json:"reports,omitempty"`
	Policy    string  `json:"policy"`
	Shard     int     `json:"shard"`
	Jobs      int     `json:"jobs"`
	Resources int     `json:"resources"`
	Events    int     `json:"events"`
	QueueMs   float64 `json:"queue_ms"`
	ComputeMs float64 `json:"compute_ms,omitempty"`

	// Result fields, set once State is "done".
	Makespan        float64    `json:"makespan,omitempty"`
	InitialMakespan float64    `json:"initial_makespan,omitempty"`
	Improvement     float64    `json:"improvement,omitempty"`
	Decisions       []Decision `json:"decisions,omitempty"`
	Adoptions       int        `json:"adoptions,omitempty"`

	Error string `json:"error,omitempty"`
}

// Submitted is the POST /v1/workflows response.
type Submitted struct {
	ID    string `json:"id"`
	Shard int    `json:"shard"`
	State string `json:"state"`
}
