package wire

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aheft/internal/data"
	"aheft/internal/grid"
	"aheft/internal/rng"
	"aheft/internal/workload"
)

// sampleSubmission wraps the paper's Fig. 4 scenario in an envelope.
func sampleSubmission() *Submission {
	sc := workload.SampleScenario()
	return &Submission{
		Name:    "fig4",
		Policy:  "aheft",
		Options: Options{TieWindow: 0.05, Eps: 1e-6, Class: ClassHigh, Weight: 2},
		Graph:   sc.Graph,
		Comp:    sc.Table,
		Pool:    sc.Pool,
	}
}

func TestSubmissionRoundTrip(t *testing.T) {
	s := sampleSubmission()
	data, err := EncodeSubmission(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSubmission(data, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got.V != Version || got.Name != "fig4" || got.Policy != "aheft" {
		t.Fatalf("envelope fields lost: %+v", got)
	}
	if got.Options != s.Options {
		t.Fatalf("options lost: got %+v want %+v", got.Options, s.Options)
	}
	if got.Graph.Len() != s.Graph.Len() || got.Graph.NumEdges() != s.Graph.NumEdges() {
		t.Fatalf("graph shape lost: %d jobs / %d edges", got.Graph.Len(), got.Graph.NumEdges())
	}
	if got.Pool.Size() != s.Pool.Size() || got.Comp.Jobs() != s.Comp.Jobs() || got.Comp.Resources() != s.Comp.Resources() {
		t.Fatalf("pool/table shape lost")
	}
	// Spot-check a cost and an arrival survived exactly.
	if got.Comp.Comp(9, 1) != s.Comp.Comp(9, 1) {
		t.Fatalf("cost w[9][1] changed: %g != %g", got.Comp.Comp(9, 1), s.Comp.Comp(9, 1))
	}
	if got.Pool.ArrivalTime(3) != 15 {
		t.Fatalf("r4 arrival time lost: %g", got.Pool.ArrivalTime(3))
	}
	// A second encode must be byte-identical (the codecs are canonical).
	again, err := EncodeSubmission(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-encoding not canonical:\n%s\nvs\n%s", data, again)
	}
}

func TestGeneratedScenariosRoundTrip(t *testing.T) {
	r := rng.New(7)
	sc, err := workload.RandomScenario(
		workload.RandomParams{Jobs: 60, CCR: 2, OutDegree: 0.3, Beta: 0.5},
		workload.GridParams{InitialResources: 6, ChangeInterval: 200, ChangePct: 0.25, MaxEvents: 3}, r)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSubmission(&Submission{Graph: sc.Graph, Comp: sc.Table, Pool: sc.Pool})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSubmission(data, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.Len() != sc.Graph.Len() || got.Pool.Size() != sc.Pool.Size() {
		t.Fatalf("shape lost: %d/%d jobs, %d/%d resources",
			got.Graph.Len(), sc.Graph.Len(), got.Pool.Size(), sc.Pool.Size())
	}
}

func TestDecodeRejects(t *testing.T) {
	valid, err := EncodeSubmission(sampleSubmission())
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(m map[string]any)) []byte {
		var m map[string]any
		if err := json.Unmarshal(valid, &m); err != nil {
			t.Fatal(err)
		}
		f(m)
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	cases := []struct {
		name string
		data []byte
		lim  Limits
		want string
	}{
		{"garbage", []byte("{"), Limits{}, "decode"},
		{"future envelope version", mutate(func(m map[string]any) { m["v"] = Version + 1 }), Limits{}, "unsupported envelope version"},
		{"future graph version", mutate(func(m map[string]any) { m["graph"].(map[string]any)["v"] = 99 }), Limits{}, "unsupported wire version"},
		{"no graph", mutate(func(m map[string]any) { delete(m, "graph") }), Limits{}, "no graph"},
		{"no table", mutate(func(m map[string]any) { delete(m, "comp") }), Limits{}, "no estimator table"},
		{"no pool", mutate(func(m map[string]any) { delete(m, "pool") }), Limits{}, "no resource pool"},
		{"ragged table", mutate(func(m map[string]any) {
			comp := m["comp"].([]any)
			comp[0] = comp[0].([]any)[:2]
		}), Limits{}, "ragged"},
		{"non-positive cost", mutate(func(m map[string]any) {
			m["comp"].([]any)[0].([]any)[0] = -1.0
		}), Limits{}, "invalid cost"},
		{"table wrong width", mutate(func(m map[string]any) {
			comp := m["comp"].([]any)
			for i := range comp {
				comp[i] = comp[i].([]any)[:3]
			}
		}), Limits{}, "pool has"},
		{"table wrong height", mutate(func(m map[string]any) {
			m["comp"] = m["comp"].([]any)[:9]
		}), Limits{}, "graph has"},
		{"pool without time-0", mutate(func(m map[string]any) {
			for _, a := range m["pool"].([]any) {
				a.(map[string]any)["t"] = 5.0
			}
		}), Limits{}, "no resource available at time 0"},
		{"negative arrival", mutate(func(m map[string]any) {
			m["pool"].([]any)[0].(map[string]any)["t"] = -1.0
		}), Limits{}, "invalid arrival time"},
		{"cycle", mutate(func(m map[string]any) {
			edges := m["graph"].(map[string]any)["edges"].([]any)
			m["graph"].(map[string]any)["edges"] = append(edges,
				map[string]any{"from": "n10", "to": "n1", "data": 1.0})
		}), Limits{}, "cycle"},
		{"negative edge data", mutate(func(m map[string]any) {
			m["graph"].(map[string]any)["edges"].([]any)[0].(map[string]any)["data"] = -3.0
		}), Limits{}, "negative data"},
		{"duplicate job", mutate(func(m map[string]any) {
			jobs := m["graph"].(map[string]any)["jobs"].([]any)
			jobs[1].(map[string]any)["name"] = "n1"
		}), Limits{}, "duplicate job"},
		{"too many jobs", valid, Limits{MaxJobs: 5}, "exceeds limit"},
		{"too many resources", valid, Limits{MaxResources: 2}, "exceeds limit"},
		{"bad tie window", mutate(func(m map[string]any) {
			m["options"] = map[string]any{"tie_window": -0.5}
		}), Limits{}, "invalid tie_window"},
		{"unknown admission class", mutate(func(m map[string]any) {
			m["options"] = map[string]any{"class": "urgent"}
		}), Limits{}, "unknown admission class"},
		{"negative weight", mutate(func(m map[string]any) {
			m["options"] = map[string]any{"weight": -1.0}
		}), Limits{}, "invalid weight"},
		{"oversized weight", mutate(func(m map[string]any) {
			m["options"] = map[string]any{"weight": float64(MaxWeight + 1)}
		}), Limits{}, "invalid weight"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeSubmission(tc.data, tc.lim)
			if err == nil {
				t.Fatalf("decode accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// dataSubmission is a v2 submission with a file catalog, file-carrying
// edges, and a pool declaring link/storage capacities.
func dataSubmission(t *testing.T) *Submission {
	t.Helper()
	sc := workload.DataScenario(workload.DataParams{})
	return &Submission{
		Name:  "data",
		Mode:  ModeLive,
		Graph: sc.Graph,
		Comp:  sc.Table,
		Files: sc.Files,
		Pool:  sc.Pool,
	}
}

func TestDataSubmissionRoundTrip(t *testing.T) {
	s := dataSubmission(t)
	enc, err := EncodeSubmission(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(enc, []byte(`"files":`)) || !bytes.Contains(enc, []byte(`"links":`)) {
		t.Fatalf("catalog or links not encoded:\n%s", enc)
	}
	got, err := DecodeSubmission(enc, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Files == nil || len(got.Files.Files) != len(s.Files.Files) {
		t.Fatalf("file catalog lost: %+v", got.Files)
	}
	if got.Pool.LinkBW("wan") != s.Pool.LinkBW("wan") {
		t.Fatalf("link bandwidth lost: %g != %g", got.Pool.LinkBW("wan"), s.Pool.LinkBW("wan"))
	}
	fileEdges := 0
	for _, j := range got.Graph.Jobs() {
		for _, e := range got.Graph.Preds(j.ID) {
			if e.File != "" {
				fileEdges++
			}
		}
	}
	if fileEdges == 0 {
		t.Fatal("edge file references lost in round trip")
	}
	again, err := EncodeSubmission(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, again) {
		t.Fatalf("re-encoding not canonical:\n%s\nvs\n%s", enc, again)
	}
}

// TestLegacyV1Parity pins byte compatibility with the v1 wire format: the
// committed v1 document still decodes, and its canonical re-encode —
// identical except for the version stamp — matches the committed golden
// byte for byte. Any drift in field order, omission rules, or the
// embedded codecs breaks this test before it breaks a client.
func TestLegacyV1Parity(t *testing.T) {
	legacy, err := os.ReadFile(filepath.Join("testdata", "legacy_v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "legacy_v1_reencoded.golden"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := DecodeSubmission(legacy, Limits{})
	if err != nil {
		t.Fatalf("legacy v1 document rejected: %v", err)
	}
	if s.V != 1 || s.Files != nil {
		t.Fatalf("legacy decode drifted: v=%d files=%v", s.V, s.Files)
	}
	enc, err := EncodeSubmission(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, golden) {
		t.Fatalf("legacy re-encode drifted from golden:\n%s\nvs\n%s", enc, golden)
	}
}

func TestDataSubmissionRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(s *Submission)
		want   string
	}{
		{"undeclared file ref", func(s *Submission) {
			s.Files = &data.Set{Files: []data.File{{ID: "other", Size: 1}}}
		}, "undeclared file"},
		{"file edge without catalog", func(s *Submission) { s.Files = nil }, "no file catalog"},
		{"negative size", func(s *Submission) {
			s.Files.Files[0].Size = -1
		}, "invalid size"},
		{"duplicate file", func(s *Submission) {
			s.Files.Files = append(s.Files.Files, s.Files.Files[0])
		}, "duplicate file"},
		{"host out of range", func(s *Submission) {
			s.Files.Files[0].Hosts = []grid.ID{grid.ID(s.Pool.Size())}
		}, "unknown resource"},
		{"oversized file ID", func(s *Submission) {
			s.Files.Files[0].ID = strings.Repeat("x", data.MaxIDLen+1)
		}, "longer than"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := dataSubmission(t)
			tc.mutate(s)
			err := s.Validate(Limits{})
			if err == nil {
				t.Fatal("validate accepted the mutation")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// The file-count limit is enforced.
	s := dataSubmission(t)
	if err := s.Validate(Limits{MaxFiles: 1}); err == nil || !strings.Contains(err.Error(), "exceed limit") {
		t.Fatalf("over-limit catalog accepted: %v", err)
	}
}

// sharedSubmission is a live submission attaching to a shared grid.
func sharedSubmission() *Submission {
	sc := workload.SampleScenario()
	return &Submission{
		Name:       "fig4-shared",
		Mode:       ModeLive,
		Tenant:     "blast",
		Policy:     "aheft",
		Graph:      sc.Graph,
		Comp:       sc.Table,
		SharedGrid: "cluster-a",
	}
}

func TestSharedGridSubmissionRoundTrip(t *testing.T) {
	data, err := EncodeSubmission(sharedSubmission())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"pool":"shared:cluster-a"`)) {
		t.Fatalf("pool reference not encoded as a string:\n%s", data)
	}
	got, err := DecodeSubmission(data, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got.SharedGrid != "cluster-a" || got.Pool != nil {
		t.Fatalf("reference lost: shared=%q pool=%v", got.SharedGrid, got.Pool)
	}
	again, err := EncodeSubmission(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-encoding not canonical:\n%s\nvs\n%s", data, again)
	}
}

func TestSharedGridSubmissionRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(s *Submission)
		want   string
	}{
		{"analytic mode", func(s *Submission) { s.Mode = "" }, "requires mode"},
		{"explicit analytic", func(s *Submission) { s.Mode = ModeAnalytic }, "requires mode"},
		{"both pool and grid", func(s *Submission) { s.Pool = workload.SampleScenario().Pool }, "both pool and shared grid"},
		{"name with slash", func(s *Submission) { s.SharedGrid = "a/b" }, "invalid shared-grid name"},
		{"name with space", func(s *Submission) { s.SharedGrid = "a b" }, "invalid shared-grid name"},
		{"oversized name", func(s *Submission) { s.SharedGrid = strings.Repeat("x", MaxGridNameLen+1) }, "invalid shared-grid name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := sharedSubmission()
			tc.mutate(s)
			if err := s.Validate(Limits{}); err == nil {
				t.Fatal("validate accepted the mutation")
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// A bare pool string without the prefix is rejected at decode.
	valid, err := EncodeSubmission(sharedSubmission())
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(valid, []byte(`"shared:cluster-a"`), []byte(`"cluster-a"`), 1)
	if _, err := DecodeSubmission(bad, Limits{}); err == nil || !strings.Contains(err.Error(), "must start with") {
		t.Fatalf("bare pool string accepted: %v", err)
	}
}

func TestGridSpecRoundTrip(t *testing.T) {
	sc := workload.SampleScenario()
	data, err := EncodeGridSpec(&GridSpec{Pool: sc.Pool})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGridSpec(data, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Pool.Size() != sc.Pool.Size() {
		t.Fatalf("pool shape lost: %d != %d", got.Pool.Size(), sc.Pool.Size())
	}
	if _, err := DecodeGridSpec([]byte(`{"v":1}`), Limits{}); err == nil {
		t.Fatal("empty grid spec accepted")
	}
	if _, err := DecodeGridSpec(data, Limits{MaxResources: 2}); err == nil {
		t.Fatal("oversized grid accepted")
	}
}

// FuzzSerializeRoundTrip holds the decoder to two properties on arbitrary
// input: it never panics, and any document it accepts re-encodes
// canonically (encode(decode(d)) decodes to the same bytes again). This
// is the daemon's ingestion guard — submissions come straight off the
// network.
func FuzzSerializeRoundTrip(f *testing.F) {
	if seed, err := EncodeSubmission(sampleSubmission()); err == nil {
		f.Add(seed)
	}
	r := rng.New(3)
	if sc, err := workload.BlastScenario(workload.AppParams{Parallelism: 5, CCR: 1, Beta: 0.5},
		workload.GridParams{InitialResources: 4, ChangeInterval: 100, ChangePct: 0.25, MaxEvents: 2}, r); err == nil {
		if seed, err := EncodeSubmission(&Submission{Graph: sc.Graph, Comp: sc.Table, Pool: sc.Pool}); err == nil {
			f.Add(seed)
		}
	}
	if seed, err := EncodeSubmission(sharedSubmission()); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"v":1,"graph":{"name":"g","jobs":[{"name":"a"}],"edges":[]},"comp":[[1]],"pool":[{"t":0,"name":"r"}]}`))
	f.Add([]byte(`{"v":1,"mode":"live","graph":{"name":"g","jobs":[{"name":"a"}],"edges":[]},"comp":[[1]],"pool":"shared:g1"}`))
	f.Add([]byte(`{"v":2}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSubmission(data, Limits{MaxJobs: 2000, MaxResources: 200})
		if err != nil {
			return // rejected is fine; panicking is not
		}
		enc, err := EncodeSubmission(s)
		if err != nil {
			t.Fatalf("accepted submission failed to re-encode: %v", err)
		}
		s2, err := DecodeSubmission(enc, Limits{MaxJobs: 2000, MaxResources: 200})
		if err != nil {
			t.Fatalf("re-encoded submission rejected: %v", err)
		}
		enc2, err := EncodeSubmission(s2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip not canonical:\n%s\nvs\n%s", enc, enc2)
		}
	})
}
