package drive

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/executor"
	"aheft/internal/grid"
	"aheft/internal/kernel"
	"aheft/internal/policy"
	"aheft/internal/rng"
	"aheft/internal/schedule"
	"aheft/internal/sim"
	"aheft/internal/wire"
	"aheft/internal/workload"
)

// This file is the shared-grid enactment harness: several workflows
// submitted against one named grid (pool: "shared:<name>") and executed
// *together* on a single discrete-event simulation of that grid, where a
// resource runs one job at a time across every tenant. The executor
// already enforces exclusivity and planned queue order, so enacting the
// union of all tenants' plans as one merged schedule makes cross-workflow
// contention physically real: oblivious plans that reserved the same slot
// queue behind each other, contention-aware plans run side by side.
//
// The baseline each run measures against is *isolated planning*: the same
// tenants, the same noisy runtimes, the same churned grid, but every
// plan computed as if its workflow were alone — exactly what the daemon
// produced before shared grids existed — then enacted together with no
// feedback. The delta between the two is what endogenous contention
// bought.

// Tenant is one workflow of a shared-grid run.
type Tenant struct {
	// Name labels the submission and scopes its performance history.
	Name string
	// Scenario supplies the workflow graph and estimator table; its Pool
	// is ignored (the shared grid's pool governs).
	Scenario *workload.Scenario
	// Policy and Options go into the submission ("aheft" when empty).
	Policy  string
	Options wire.Options
}

// SharedConfig parameterises one shared-grid run.
type SharedConfig struct {
	// BaseURL is the daemon's address.
	BaseURL string
	// Client is the HTTP client; nil means a 2-minute-timeout default.
	Client *http.Client
	// Grid names the shared grid; it is registered with Pool if absent.
	Grid string
	// Pool is the grid's resource universe.
	Pool *grid.Pool
	// Noise perturbs actual runtimes per (tenant, job, resource), as in
	// Config.Noise.
	Noise float64
	// Churn jitters the grid's planned arrival times once for the whole
	// run — every tenant enacts on the same churned grid.
	Churn float64
	// Seed drives the noise and churn draws.
	Seed uint64
}

// TenantOutcome is one tenant's measured result.
type TenantOutcome struct {
	ID   string
	Name string
	Jobs int
	// AdaptiveMakespan is the tenant's completion time in the shared
	// enactment with contention-aware planning and the feedback loop.
	// ObliviousMakespan is its completion time when every tenant plans in
	// isolation (no reservations, no feedback) on the identical job
	// stream. DaemonMakespan is the daemon's terminal report.
	AdaptiveMakespan  float64
	ObliviousMakespan float64
	DaemonMakespan    float64
	InitialMakespan   float64
	Reports           int
	Events            int
	Generation        int
	// Reschedule counts by trigger; Contention counts plans adopted
	// because *another* workflow's reservations released.
	Reschedules           int
	VarianceReschedules   int
	ArrivalReschedules    int
	DepartureReschedules  int
	ContentionReschedules int
}

// Delta returns the fractional makespan improvement of contention-aware
// planning over the isolated-planning baseline for this tenant.
func (o *TenantOutcome) Delta() float64 {
	if o.ObliviousMakespan <= 0 {
		return 0
	}
	return (o.ObliviousMakespan - o.AdaptiveMakespan) / o.ObliviousMakespan
}

// SharedOutcome is the result of one shared-grid run.
type SharedOutcome struct {
	Grid    string
	Tenants []TenantOutcome
	// FinalReservations is the grid's aggregate occupancy after every
	// tenant finished — anything but zero is a leak.
	FinalReservations int
}

// MeanAdaptive and MeanOblivious are the across-tenant mean makespans.
func (o *SharedOutcome) MeanAdaptive() float64 {
	s := 0.0
	for i := range o.Tenants {
		s += o.Tenants[i].AdaptiveMakespan
	}
	return s / float64(len(o.Tenants))
}

// MeanOblivious is the across-tenant mean of the isolated baseline.
func (o *SharedOutcome) MeanOblivious() float64 {
	s := 0.0
	for i := range o.Tenants {
		s += o.Tenants[i].ObliviousMakespan
	}
	return s / float64(len(o.Tenants))
}

// RunShared drives the tenants through one shared grid to completion and
// returns the per-tenant outcomes against the isolated-planning baseline.
func RunShared(ctx context.Context, cfg SharedConfig, tenants []Tenant) (*SharedOutcome, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("drive: no tenants")
	}
	if cfg.Pool == nil || cfg.Pool.Size() == 0 {
		return nil, fmt.Errorf("drive: shared grid needs a pool")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}
	d := &driver{cfg: Config{BaseURL: cfg.BaseURL}, client: client, base: strings.TrimRight(cfg.BaseURL, "/")}
	if err := d.ensureGrid(ctx, cfg.Grid, cfg.Pool); err != nil {
		return nil, err
	}

	r := rng.New(cfg.Seed ^ 0x5a11ed641d)
	enacted, err := churnPool(cfg.Pool, cfg.Churn, r)
	if err != nil {
		return nil, fmt.Errorf("drive: churn pool: %w", err)
	}
	noisy := make([]*cost.Table, len(tenants))
	for i, tn := range tenants {
		noisy[i] = noisyTable(tn.Scenario, cfg.Noise, r)
	}

	merged, offsets, err := mergeGraphs(tenants)
	if err != nil {
		return nil, err
	}
	mergedNoisy, err := mergeTables(noisy, cfg.Pool.Size())
	if err != nil {
		return nil, err
	}

	out := &SharedOutcome{Grid: cfg.Grid, Tenants: make([]TenantOutcome, len(tenants))}
	for i, tn := range tenants {
		out.Tenants[i] = TenantOutcome{Name: tn.Name, Jobs: tn.Scenario.Graph.Len()}
	}

	// --- Isolated-planning baseline: each tenant plans as if alone, the
	// plans are enacted together, nobody listens. ---
	oblivious := make([]*schedule.Schedule, len(tenants))
	for i, tn := range tenants {
		s0, err := isolatedPlan(tn, cfg.Pool)
		if err != nil {
			return nil, fmt.Errorf("drive: isolated plan %s: %w", tn.Name, err)
		}
		oblivious[i] = s0
	}
	base, err := executor.New(sim.New(), merged, cost.Exact(mergedNoisy), enacted,
		mergeSchedules(oblivious, offsets), nil)
	if err != nil {
		return nil, fmt.Errorf("drive: oblivious baseline: %w", err)
	}
	recs, err := base.Run()
	if err != nil {
		return nil, fmt.Errorf("drive: oblivious baseline: %w", err)
	}
	for _, rec := range recs {
		i := ownerOf(int(rec.Job), offsets)
		if rec.Finish > out.Tenants[i].ObliviousMakespan {
			out.Tenants[i].ObliviousMakespan = rec.Finish
		}
	}

	// --- Contention-aware adaptive run: live submissions on the shared
	// grid, merged enactment, every event reported, every acked plan
	// (own or contention-triggered) adopted mid-flight. ---
	ids := make([]string, len(tenants))
	for i, tn := range tenants {
		id, err := d.submitShared(ctx, cfg.Grid, tn)
		if err != nil {
			return nil, err
		}
		ids[i] = id
		out.Tenants[i].ID = id
	}
	plans := make([]*schedule.Schedule, len(tenants))
	for i, id := range ids {
		plan, err := d.fetchPlan(ctx, id)
		if err != nil {
			return nil, err
		}
		s, err := planSchedule(plan, tenants[i].Scenario.Graph)
		if err != nil {
			return nil, err
		}
		plans[i] = s
		out.Tenants[i].InitialMakespan = plan.Makespan
		out.Tenants[i].Generation = plan.Generation
	}

	if err := d.enactShared(ctx, merged, mergedNoisy, enacted, ids, tenants, plans, offsets, out); err != nil {
		return nil, err
	}

	for i, id := range ids {
		st, err := d.status(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State != "done" {
			return nil, fmt.Errorf("drive: workflow %s ended %s: %s", id, st.State, st.Error)
		}
		out.Tenants[i].DaemonMakespan = st.Makespan
		out.Tenants[i].Generation = st.Generation
	}
	var gst wire.GridStatus
	if code, err := d.get(ctx, "/v1/grids/"+cfg.Grid, &gst); err != nil {
		return nil, fmt.Errorf("drive: grid status: %w", err)
	} else if code != http.StatusOK {
		return nil, fmt.Errorf("drive: grid status: HTTP %d", code)
	}
	out.FinalReservations = gst.Reservations
	return out, nil
}

// enactShared runs the merged adaptive enactment.
func (d *driver) enactShared(ctx context.Context, merged *dag.Graph, mergedNoisy *cost.Table,
	pool *grid.Pool, ids []string, tenants []Tenant, plans []*schedule.Schedule,
	offsets []int, out *SharedOutcome) error {

	var eng *executor.Engine
	var loopErr error
	pending := make([][]wire.ReportEvent, len(tenants))
	done := make([]bool, len(tenants))

	resubmit := func() {
		if err := eng.Resubmit(mergeSchedules(plans, offsets)); err != nil {
			loopErr = fmt.Errorf("drive: resubmit merged plan: %w", err)
			eng.Cancel(loopErr)
		}
	}
	flush := func(i int) {
		if len(pending[i]) == 0 || loopErr != nil || done[i] {
			return
		}
		ack, err := d.report(ctx, ids[i], pending[i])
		pending[i] = pending[i][:0]
		if err != nil {
			loopErr = err
			eng.Cancel(err)
			return
		}
		to := &out.Tenants[i]
		to.Reports++
		to.Events += ack.Applied
		if ack.Done {
			done[i] = true
		}
		if ack.Plan == nil {
			return
		}
		to.Reschedules++
		switch ack.Trigger {
		case "variance":
			to.VarianceReschedules++
		case "arrival":
			to.ArrivalReschedules++
		case "departure":
			to.DepartureReschedules++
		case "contention":
			to.ContentionReschedules++
		}
		s1, err := planSchedule(ack.Plan, tenants[i].Scenario.Graph)
		if err != nil {
			loopErr = err
			eng.Cancel(err)
			return
		}
		plans[i] = s1
		resubmit()
	}
	handler := executor.EventHandlerFunc(func(ev executor.Event) {
		if loopErr == nil && ctx.Err() != nil {
			loopErr = ctx.Err()
			eng.Cancel(loopErr)
			return
		}
		switch {
		case ev.Finished != dag.NoJob:
			i := ownerOf(int(ev.Finished), offsets)
			pending[i] = append(pending[i], wire.ReportEvent{
				Kind: wire.ReportJobFinished, Time: ev.Time,
				Job: int(ev.Finished) - offsets[i], Resource: int(ev.OnResource),
				Duration: ev.ActualDuration,
			})
			flush(i)
		default:
			// A grid arrival is a run-time event for every live tenant.
			for _, r := range ev.Arrived {
				for i := range tenants {
					if done[i] {
						continue
					}
					pending[i] = append(pending[i], wire.ReportEvent{
						Kind: wire.ReportResourceJoin, Time: ev.Time, Resource: int(r.ID),
					})
				}
			}
			for i := range tenants {
				flush(i)
			}
		}
	})
	var err error
	eng, err = executor.New(sim.New(), merged, cost.Exact(mergedNoisy), pool,
		mergeSchedules(plans, offsets), handler)
	if err != nil {
		return fmt.Errorf("drive: shared executor: %w", err)
	}
	eng.StartHook = func(j dag.JobID, r grid.ID, t float64) {
		i := ownerOf(int(j), offsets)
		// Starts ride ahead of the next finish/arrival report, so the
		// daemon always knows which jobs hold their slots before it
		// evaluates any reschedule.
		pending[i] = append(pending[i], wire.ReportEvent{
			Kind: wire.ReportJobStarted, Time: t, Job: int(j) - offsets[i], Resource: int(r),
		})
	}
	recs, err := eng.Run()
	if err != nil {
		if loopErr != nil {
			return loopErr
		}
		return fmt.Errorf("drive: shared enact: %w", err)
	}
	if loopErr != nil {
		return loopErr
	}
	for _, rec := range recs {
		i := ownerOf(int(rec.Job), offsets)
		if rec.Finish > out.Tenants[i].AdaptiveMakespan {
			out.Tenants[i].AdaptiveMakespan = rec.Finish
		}
	}
	return nil
}

// ensureGrid registers the grid, tolerating an identical pre-existing one
// (loadgen rounds reuse the daemon).
func (d *driver) ensureGrid(ctx context.Context, name string, pool *grid.Pool) error {
	body, err := wire.EncodeGridSpec(&wire.GridSpec{Pool: pool})
	if err != nil {
		return fmt.Errorf("drive: encode grid spec: %w", err)
	}
	var st wire.GridStatus
	code, err := d.put(ctx, "/v1/grids/"+name, body, &st)
	switch {
	case err != nil:
		return fmt.Errorf("drive: register grid: %w", err)
	case code == http.StatusCreated:
		return nil
	case code == http.StatusConflict:
		code, err := d.get(ctx, "/v1/grids/"+name, &st)
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("drive: grid %q exists but is unreadable (HTTP %d): %v", name, code, err)
		}
		if st.Resources != pool.Size() {
			return fmt.Errorf("drive: grid %q has %d resources, want %d", name, st.Resources, pool.Size())
		}
		return nil
	default:
		return fmt.Errorf("drive: register grid: HTTP %d", code)
	}
}

// submitShared submits one tenant against the named grid, retrying
// backpressure.
func (d *driver) submitShared(ctx context.Context, gridName string, tn Tenant) (string, error) {
	body, err := wire.EncodeSubmission(&wire.Submission{
		Name:       tn.Name,
		Mode:       wire.ModeLive,
		Tenant:     tn.Name,
		Policy:     tn.Policy,
		Options:    tn.Options,
		Graph:      tn.Scenario.Graph,
		Comp:       tn.Scenario.Table,
		Files:      tn.Scenario.Files,
		SharedGrid: gridName,
	})
	if err != nil {
		return "", fmt.Errorf("drive: encode shared submission: %w", err)
	}
	for {
		var sub wire.Submitted
		code, err := d.post(ctx, "/v1/workflows", body, &sub)
		switch {
		case err != nil:
			return "", fmt.Errorf("drive: submit shared: %w", err)
		case code == http.StatusAccepted:
			return sub.ID, nil
		case code == http.StatusTooManyRequests:
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-time.After(100 * time.Millisecond):
			}
		default:
			return "", fmt.Errorf("drive: submit shared: HTTP %d", code)
		}
	}
}

// isolatedPlan computes the tenant's plan with no knowledge of the other
// tenants: the pre-shared-grid behaviour.
func isolatedPlan(tn Tenant, pool *grid.Pool) (*schedule.Schedule, error) {
	name := tn.Policy
	if name == "" {
		name = "aheft"
	}
	pol, err := policy.Get(name)
	if err != nil {
		return nil, err
	}
	k := kernel.New(tn.Scenario.Graph, cost.Exact(tn.Scenario.Table))
	return pol.Plan(k, pool, policy.Options{
		TieWindow:   tn.Options.TieWindow,
		NoInsertion: tn.Options.NoInsertion,
		Eps:         tn.Options.Eps,
	})
}

// mergeGraphs builds the disjoint union of the tenants' DAGs; offsets[i]
// is tenant i's first job ID in the merged index space.
func mergeGraphs(tenants []Tenant) (*dag.Graph, []int, error) {
	g := dag.New("shared-merged")
	offsets := make([]int, len(tenants))
	next := 0
	for i, tn := range tenants {
		offsets[i] = next
		tg := tn.Scenario.Graph
		for _, j := range tg.Jobs() {
			g.AddJob(fmt.Sprintf("t%d/%s", i, j.Name), j.Op)
		}
		for _, j := range tg.Jobs() {
			for _, e := range tg.Succs(j.ID) {
				if err := g.AddEdge(dag.JobID(next+int(e.From)), dag.JobID(next+int(e.To)), e.Data); err != nil {
					return nil, nil, fmt.Errorf("drive: merge graphs: %w", err)
				}
			}
		}
		next += tg.Len()
	}
	if err := g.Validate(); err != nil {
		return nil, nil, fmt.Errorf("drive: merge graphs: %w", err)
	}
	return g, offsets, nil
}

// mergeTables stacks the tenants' runtime tables into one matrix.
func mergeTables(tables []*cost.Table, resources int) (*cost.Table, error) {
	var rows [][]float64
	for _, t := range tables {
		for j := 0; j < t.Jobs(); j++ {
			row := make([]float64, resources)
			for r := 0; r < resources; r++ {
				row[r] = t.Comp(dag.JobID(j), grid.ID(r))
			}
			rows = append(rows, row)
		}
	}
	return cost.NewTable(rows)
}

// mergeSchedules unions the tenants' plans in the merged job index space.
func mergeSchedules(plans []*schedule.Schedule, offsets []int) *schedule.Schedule {
	var as []schedule.Assignment
	for i, s := range plans {
		for _, a := range s.Assignments() {
			as = append(as, schedule.Assignment{
				Job: a.Job + dag.JobID(offsets[i]), Resource: a.Resource,
				Start: a.Start, Finish: a.Finish,
			})
		}
	}
	return schedule.FromAssignments(as)
}

// ownerOf maps a merged job ID to its tenant index.
func ownerOf(job int, offsets []int) int {
	for i := len(offsets) - 1; i >= 0; i-- {
		if job >= offsets[i] {
			return i
		}
	}
	return 0
}

// put issues a PUT with a JSON body.
func (d *driver) put(ctx context.Context, path string, body []byte, v any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, d.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	return d.do(req, v)
}
