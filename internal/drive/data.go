package drive

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"aheft/internal/cost"
	"aheft/internal/data"
	"aheft/internal/wire"
	"aheft/internal/workload"
)

// This file is the data-aware acceptance harness: one workflow with a
// file catalog submitted against a link-constrained shared grid, its
// data-aware plan replayed faithfully against the daemon, and the same
// scenario planned data-obliviously (raw edge weights, no catalog) as
// the baseline. Both schedules are scored by one judge — data.Retime,
// which replays placement decisions under the true data semantics
// (derived transfer durations, per-channel serialization, replica
// reuse) — so neither side grades its own homework.

// DataConfig parameterises one data-aware round.
type DataConfig struct {
	// BaseURL is the daemon's address.
	BaseURL string
	// Client is the HTTP client; nil means a 2-minute-timeout default.
	Client *http.Client
	// Grid names the shared grid; it is registered with the scenario's
	// pool if absent.
	Grid string
	// Scenario supplies the workflow, cost table, link-constrained pool,
	// and the file catalog (Files must be non-nil).
	Scenario *workload.Scenario
	// Policy and Name go into the submission ("aheft" when empty).
	Policy string
	Name   string
}

// DataOutcome is one round's measured result.
type DataOutcome struct {
	ID   string
	Jobs int
	// AwareMakespan is the daemon's data-aware plan retimed under the
	// true data semantics; ObliviousMakespan is the data-oblivious plan
	// of the identical scenario retimed the same way. DaemonMakespan is
	// the daemon's terminal report after the faithful replay.
	AwareMakespan     float64
	ObliviousMakespan float64
	DaemonMakespan    float64
	// PlannedTransferClaims is the grid's transfer-reservation count
	// observed while the plan was pending — zero means the round never
	// exercised the data path.
	PlannedTransferClaims int
	// FinalReservations and FinalTransferReservations are the grid's
	// occupancy after the workflow finished — anything but zero is a
	// leak.
	FinalReservations         int
	FinalTransferReservations int
}

// Delta returns the fractional makespan improvement of data-aware
// placement over the data-oblivious baseline.
func (o *DataOutcome) Delta() float64 {
	if o.ObliviousMakespan <= 0 {
		return 0
	}
	return (o.ObliviousMakespan - o.AwareMakespan) / o.ObliviousMakespan
}

// RunData drives one data-aware workflow through the shared grid to
// completion and scores it against the data-oblivious baseline.
func RunData(ctx context.Context, cfg DataConfig) (*DataOutcome, error) {
	sc := cfg.Scenario
	if sc == nil || sc.Files == nil {
		return nil, fmt.Errorf("drive: data round needs a scenario with a file catalog")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}
	d := &driver{cfg: Config{BaseURL: cfg.BaseURL}, client: client, base: strings.TrimRight(cfg.BaseURL, "/")}
	if err := d.ensureGrid(ctx, cfg.Grid, sc.Pool); err != nil {
		return nil, err
	}

	m, err := data.NewModel(sc.Files, sc.Pool, sc.Graph, 0)
	if err != nil {
		return nil, fmt.Errorf("drive: data model: %w", err)
	}
	est := cost.Exact(sc.Table)
	out := &DataOutcome{Jobs: sc.Graph.Len()}

	// Data-oblivious baseline: the pre-data-model behaviour — plan on the
	// raw edge weights alone, then pay the true transfer costs.
	tn := Tenant{Name: cfg.Name, Policy: cfg.Policy}
	tn.Scenario = &workload.Scenario{Graph: sc.Graph, Table: sc.Table, Pool: sc.Pool}
	oblivious, err := isolatedPlan(tn, sc.Pool)
	if err != nil {
		return nil, fmt.Errorf("drive: oblivious plan: %w", err)
	}
	out.ObliviousMakespan = data.Retime(sc.Graph, oblivious, m, est)

	// Data-aware run: submit with the catalog, watch the staged claims,
	// replay the plan faithfully, and verify the grid drains.
	tn.Scenario = sc
	id, err := d.submitShared(ctx, cfg.Grid, tn)
	if err != nil {
		return nil, err
	}
	out.ID = id
	plan, err := d.fetchPlan(ctx, id)
	if err != nil {
		return nil, err
	}
	var gst wire.GridStatus
	if code, err := d.get(ctx, "/v1/grids/"+cfg.Grid, &gst); err != nil {
		return nil, fmt.Errorf("drive: grid status: %w", err)
	} else if code != http.StatusOK {
		return nil, fmt.Errorf("drive: grid status: HTTP %d", code)
	}
	out.PlannedTransferClaims = gst.TransferReservations

	events := make([]wire.ReportEvent, 0, 2*len(plan.Assignments))
	for _, a := range plan.Assignments {
		events = append(events,
			wire.ReportEvent{Kind: wire.ReportJobStarted, Time: a.Start, Job: a.Job, Resource: a.Resource},
			wire.ReportEvent{Kind: wire.ReportJobFinished, Time: a.Finish, Job: a.Job, Resource: a.Resource, Duration: a.Finish - a.Start},
		)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Time != events[j].Time {
			return events[i].Time < events[j].Time
		}
		return events[i].Kind == wire.ReportJobStarted && events[j].Kind == wire.ReportJobFinished
	})
	ack, err := d.report(ctx, id, events)
	if err != nil {
		return nil, err
	}
	if !ack.Done {
		return nil, fmt.Errorf("drive: workflow %s not done after faithful replay", id)
	}
	st, err := d.status(ctx, id)
	if err != nil {
		return nil, err
	}
	if st.State != "done" {
		return nil, fmt.Errorf("drive: workflow %s ended %s: %s", id, st.State, st.Error)
	}
	out.DaemonMakespan = st.Makespan

	aware, err := planSchedule(plan, sc.Graph)
	if err != nil {
		return nil, err
	}
	out.AwareMakespan = data.Retime(sc.Graph, aware, m, est)

	// A fresh struct, not gst: the drained gauges are omitempty on the
	// wire, and decoding over the pre-report snapshot would keep its
	// stale non-zero values.
	var final wire.GridStatus
	if code, err := d.get(ctx, "/v1/grids/"+cfg.Grid, &final); err != nil {
		return nil, fmt.Errorf("drive: grid status: %w", err)
	} else if code != http.StatusOK {
		return nil, fmt.Errorf("drive: grid status: HTTP %d", code)
	}
	out.FinalReservations = final.Reservations
	out.FinalTransferReservations = final.TransferReservations
	return out, nil
}
