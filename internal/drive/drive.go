// Package drive is the enactment side of the paper's Fig. 1 architecture
// run against a live aheftd daemon: it submits a workflow in live mode,
// fetches the daemon's plan, executes it on the simulated grid
// (internal/executor + internal/sim) with configurable runtime noise and
// resource churn, and reports every run-time event — job starts, measured
// finishes, resource joins — back through POST /v1/workflows/{id}/report,
// adopting whatever reschedule the daemon returns. It also executes the
// never-reschedule baseline (the initial plan under the same noise and
// churn), so callers can measure what adaptivity bought.
//
// cmd/loadgen's -drive mode and the server acceptance tests share this
// harness. A Run with a fixed Config and scenario is deterministic as
// long as the workflow's tenant history is not perturbed by concurrent
// workflows: the noise table and churned pool are pre-materialised from
// the seed, and the simulation itself is a deterministic event loop.
package drive

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/executor"
	"aheft/internal/grid"
	"aheft/internal/rng"
	"aheft/internal/schedule"
	"aheft/internal/sim"
	"aheft/internal/wire"
	"aheft/internal/workload"
)

// Config parameterises one driven workflow.
type Config struct {
	// BaseURL is the daemon's address ("http://127.0.0.1:7070").
	BaseURL string
	// Client is the HTTP client; nil means a 2-minute-timeout default.
	Client *http.Client
	// Policy and Options go into the submission. Options.VarianceThreshold
	// tunes the daemon's variance trigger for this workflow.
	Policy  string
	Options wire.Options
	// Tenant scopes the performance history the daemon plans with.
	Tenant string
	// Noise is the actual-runtime perturbation: each (job, resource)
	// runtime is the estimate scaled by a factor drawn once from
	// [1−Noise, 1+Noise]. 0 reproduces the estimates exactly.
	Noise float64
	// Churn jitters each planned resource arrival time by a factor drawn
	// from [1−Churn, 1+Churn] — the enacted grid diverges from the
	// submitted plan, and the daemon only learns the truth from
	// resource-join reports.
	Churn float64
	// Seed drives the noise and churn draws.
	Seed uint64
	// Name labels the submission.
	Name string
}

// Outcome is the measured result of one driven workflow.
type Outcome struct {
	ID   string
	Jobs int
	// AdaptiveMakespan is the simulated completion time with the daemon's
	// reschedules adopted; StaticMakespan is the same noisy grid enacting
	// the initial plan with no feedback. DaemonMakespan is what the
	// daemon's terminal status reported (equals AdaptiveMakespan when the
	// loop is consistent).
	AdaptiveMakespan float64
	StaticMakespan   float64
	DaemonMakespan   float64
	InitialMakespan  float64
	// Reports / Events count what was POSTed; Generation is the final
	// plan generation.
	Reports    int
	Events     int
	Generation int
	// Decisions and the per-trigger adopted-reschedule counts.
	Decisions            int
	Reschedules          int
	VarianceReschedules  int
	ArrivalReschedules   int
	DepartureReschedules int
}

// Delta returns the fractional makespan improvement of the adaptive run
// over the static baseline (positive = adaptivity helped).
func (o *Outcome) Delta() float64 {
	if o.StaticMakespan <= 0 {
		return 0
	}
	return (o.StaticMakespan - o.AdaptiveMakespan) / o.StaticMakespan
}

// Run drives one scenario through the daemon's feedback loop to
// completion and returns the measured outcome.
func Run(ctx context.Context, cfg Config, sc *workload.Scenario) (*Outcome, error) {
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}
	d := &driver{cfg: cfg, client: client, base: strings.TrimRight(cfg.BaseURL, "/")}
	r := rng.New(cfg.Seed ^ 0xd21fe00d)
	noisy := noisyTable(sc, cfg.Noise, r)
	pool, err := churnPool(sc.Pool, cfg.Churn, r)
	if err != nil {
		return nil, fmt.Errorf("drive: churn pool: %w", err)
	}

	id, err := d.submit(ctx, sc)
	if err != nil {
		return nil, err
	}
	plan, err := d.fetchPlan(ctx, id)
	if err != nil {
		return nil, err
	}
	initial, err := planSchedule(plan, sc.Graph)
	if err != nil {
		return nil, err
	}
	out := &Outcome{ID: id, Jobs: sc.Graph.Len(), InitialMakespan: plan.Makespan, Generation: plan.Generation}

	// The never-reschedule baseline: same noisy runtimes, same churned
	// grid, the initial plan enacted with nobody listening. It cannot
	// depend on the adaptive run, so it runs first on its own engine.
	static, err := executor.New(sim.New(), sc.Graph, cost.Exact(noisy), pool, initial, nil)
	if err != nil {
		return nil, fmt.Errorf("drive: static baseline: %w", err)
	}
	if _, err := static.Run(); err != nil {
		return nil, fmt.Errorf("drive: static baseline: %w", err)
	}
	out.StaticMakespan = static.Makespan()

	if err := d.enact(ctx, id, sc.Graph, noisy, pool, initial, out); err != nil {
		return nil, err
	}

	st, err := d.status(ctx, id)
	if err != nil {
		return nil, err
	}
	if st.State != "done" {
		return nil, fmt.Errorf("drive: workflow %s ended %s: %s", id, st.State, st.Error)
	}
	out.DaemonMakespan = st.Makespan
	out.Generation = st.Generation
	return out, nil
}

// driver carries the HTTP plumbing.
type driver struct {
	cfg    Config
	client *http.Client
	base   string
}

func (d *driver) submit(ctx context.Context, sc *workload.Scenario) (string, error) {
	body, err := wire.EncodeSubmission(&wire.Submission{
		Name:    d.cfg.Name,
		Mode:    wire.ModeLive,
		Tenant:  d.cfg.Tenant,
		Policy:  d.cfg.Policy,
		Options: d.cfg.Options,
		Graph:   sc.Graph, Comp: sc.Table, Pool: sc.Pool,
	})
	if err != nil {
		return "", fmt.Errorf("drive: encode submission: %w", err)
	}
	for {
		var sub wire.Submitted
		code, err := d.post(ctx, "/v1/workflows", body, &sub)
		switch {
		case err != nil:
			return "", fmt.Errorf("drive: submit: %w", err)
		case code == http.StatusAccepted:
			return sub.ID, nil
		case code == http.StatusTooManyRequests:
			// Backpressure: the closed loop owns the retry.
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-time.After(100 * time.Millisecond):
			}
		default:
			return "", fmt.Errorf("drive: submit: HTTP %d", code)
		}
	}
}

// fetchPlan polls until the shard has planned the workflow.
func (d *driver) fetchPlan(ctx context.Context, id string) (*wire.Plan, error) {
	for {
		var plan wire.Plan
		code, err := d.get(ctx, "/v1/workflows/"+id+"/plan", &plan)
		switch {
		case err != nil:
			return nil, fmt.Errorf("drive: fetch plan: %w", err)
		case code == http.StatusOK:
			return &plan, nil
		case code == http.StatusConflict: // queued, not yet planned
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(5 * time.Millisecond):
			}
		default:
			return nil, fmt.Errorf("drive: fetch plan: HTTP %d", code)
		}
	}
}

// enact runs the adaptive execution: the event-driven executor enacts the
// current plan while every start/finish/arrival is reported upstream; an
// acked reschedule is resubmitted into the running engine mid-flight.
func (d *driver) enact(ctx context.Context, id string, g *dag.Graph, noisy *cost.Table, pool *grid.Pool, initial *schedule.Schedule, out *Outcome) error {
	var eng *executor.Engine
	var pending []wire.ReportEvent
	var loopErr error
	flush := func() {
		if len(pending) == 0 || loopErr != nil {
			return
		}
		ack, err := d.report(ctx, id, pending)
		pending = pending[:0]
		if err != nil {
			loopErr = err
			eng.Cancel(err)
			return
		}
		out.Reports++
		out.Events += ack.Applied
		out.Decisions += ack.Decisions
		if ack.Rescheduled {
			out.Reschedules++
			switch ack.Trigger {
			case "variance":
				out.VarianceReschedules++
			case "arrival":
				out.ArrivalReschedules++
			case "departure":
				out.DepartureReschedules++
			}
			if ack.Plan == nil {
				loopErr = fmt.Errorf("drive: reschedule ack without plan")
				eng.Cancel(loopErr)
				return
			}
			s1, err := planSchedule(ack.Plan, g)
			if err != nil {
				loopErr = err
				eng.Cancel(err)
				return
			}
			if err := eng.Resubmit(s1); err != nil {
				loopErr = fmt.Errorf("drive: resubmit: %w", err)
				eng.Cancel(loopErr)
			}
		}
	}
	handler := executor.EventHandlerFunc(func(ev executor.Event) {
		if loopErr == nil && ctx.Err() != nil {
			loopErr = ctx.Err()
			eng.Cancel(loopErr)
			return
		}
		switch {
		case ev.Finished != dag.NoJob:
			pending = append(pending, wire.ReportEvent{
				Kind: wire.ReportJobFinished, Time: ev.Time,
				Job: int(ev.Finished), Resource: int(ev.OnResource), Duration: ev.ActualDuration,
			})
		default:
			for _, r := range ev.Arrived {
				pending = append(pending, wire.ReportEvent{
					Kind: wire.ReportResourceJoin, Time: ev.Time, Resource: int(r.ID),
				})
			}
		}
		flush()
	})
	var err error
	eng, err = executor.New(sim.New(), g, cost.Exact(noisy), pool, initial, handler)
	if err != nil {
		return fmt.Errorf("drive: executor: %w", err)
	}
	// Starts are queued, not flushed: they ride in front of the next
	// finish/arrival report, so the daemon always knows which jobs are
	// running (and pinned) before it evaluates a reschedule.
	eng.StartHook = func(j dag.JobID, r grid.ID, t float64) {
		pending = append(pending, wire.ReportEvent{
			Kind: wire.ReportJobStarted, Time: t, Job: int(j), Resource: int(r),
		})
	}
	if _, err := eng.Run(); err != nil {
		if loopErr != nil {
			return loopErr
		}
		return fmt.Errorf("drive: enact: %w", err)
	}
	if loopErr != nil {
		return loopErr
	}
	out.AdaptiveMakespan = eng.Makespan()
	return nil
}

func (d *driver) report(ctx context.Context, id string, events []wire.ReportEvent) (*wire.ReportAck, error) {
	body, err := wire.EncodeReport(&wire.Report{Events: events})
	if err != nil {
		return nil, fmt.Errorf("drive: encode report: %w", err)
	}
	var ack wire.ReportAck
	code, err := d.post(ctx, "/v1/workflows/"+id+"/report", body, &ack)
	if err != nil {
		return nil, fmt.Errorf("drive: report: %w", err)
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("drive: report: HTTP %d", code)
	}
	return &ack, nil
}

func (d *driver) status(ctx context.Context, id string) (*wire.Status, error) {
	var st wire.Status
	code, err := d.get(ctx, "/v1/workflows/"+id, &st)
	if err != nil {
		return nil, fmt.Errorf("drive: status: %w", err)
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("drive: status: HTTP %d", code)
	}
	return &st, nil
}

func (d *driver) post(ctx context.Context, path string, body []byte, v any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, d.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	return d.do(req, v)
}

func (d *driver) get(ctx context.Context, path string, v any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.base+path, nil)
	if err != nil {
		return 0, err
	}
	return d.do(req, v)
}

func (d *driver) do(req *http.Request, v any) (int, error) {
	resp, err := d.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		// Surface the server's error text in the status for callers that
		// treat specific codes as retryable.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return resp.StatusCode, nil
	}
	if v == nil {
		return resp.StatusCode, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return resp.StatusCode, fmt.Errorf("decode response: %w", err)
	}
	return resp.StatusCode, nil
}

// noisyTable materialises actual runtimes: every estimate scaled by a
// per-(job, resource) factor drawn once up front, so the adaptive run and
// the static baseline see identical truths regardless of query order.
func noisyTable(sc *workload.Scenario, noise float64, r *rng.Source) *cost.Table {
	jobs, res := sc.Table.Jobs(), sc.Table.Resources()
	rows := make([][]float64, jobs)
	for j := 0; j < jobs; j++ {
		rows[j] = make([]float64, res)
		for k := 0; k < res; k++ {
			f := 1.0
			if noise > 0 {
				f = r.Uniform(1-noise, 1+noise)
				if f < 0.05 {
					f = 0.05
				}
			}
			rows[j][k] = sc.Table.Comp(dag.JobID(j), grid.ID(k)) * f
		}
	}
	return cost.MustTable(rows)
}

// churnPool jitters every planned arrival time (keeping the time-0 set at
// zero, and keeping late arrivals strictly positive so they stay run-time
// events the daemon must be *told* about).
func churnPool(p *grid.Pool, churn float64, r *rng.Source) (*grid.Pool, error) {
	if churn <= 0 {
		return p, nil
	}
	src := p.Arrivals()
	arr := make([]grid.Arrival, len(src))
	for i, a := range src {
		t := a.Time
		if t > 0 {
			t *= r.Uniform(1-churn, 1+churn)
			if t < 1e-6 {
				t = 1e-6
			}
		}
		arr[i] = grid.Arrival{Time: t, Resource: a.Resource}
	}
	return grid.NewPool(arr)
}

// planSchedule decodes a wire.Plan into an executable schedule.
func planSchedule(p *wire.Plan, g *dag.Graph) (*schedule.Schedule, error) {
	if len(p.Assignments) != g.Len() {
		return nil, fmt.Errorf("drive: plan covers %d of %d jobs", len(p.Assignments), g.Len())
	}
	as := make([]schedule.Assignment, len(p.Assignments))
	for i, a := range p.Assignments {
		if a.Job < 0 || a.Job >= g.Len() {
			return nil, fmt.Errorf("drive: plan names unknown job %d", a.Job)
		}
		as[i] = schedule.Assignment{
			Job: dag.JobID(a.Job), Resource: grid.ID(a.Resource), Start: a.Start, Finish: a.Finish,
		}
	}
	return schedule.FromAssignments(as), nil
}
