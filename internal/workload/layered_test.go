package workload

import (
	"testing"

	"aheft/internal/rng"
)

func TestLayeredDAGShape(t *testing.T) {
	r := rng.New(42)
	g, err := LayeredDAG(LayeredParams{Jobs: 500, Width: 25, FanIn: 3, CCR: 1, Beta: 0.5}, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 500 {
		t.Fatalf("jobs = %d, want 500", g.Len())
	}
	levels := g.Levels()
	if len(levels) != 20 {
		t.Fatalf("levels = %d, want 500/25 = 20", len(levels))
	}
	for _, lv := range levels {
		if len(lv) > 25 {
			t.Fatalf("level width %d exceeds 25", len(lv))
		}
	}
	if w := g.Width(); w != 25 {
		t.Fatalf("width = %d, want 25", w)
	}
	// Fan-in bound: every non-entry job has between 1 and FanIn parents.
	for _, j := range g.Jobs() {
		if n := len(g.Preds(j.ID)); n > 3 {
			t.Fatalf("job %d has %d parents, fan-in bound is 3", j.ID, n)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		t.Fatal(err)
	}
}

func TestLayeredDAGDefaults(t *testing.T) {
	r := rng.New(7)
	g, err := LayeredDAG(LayeredParams{Jobs: 100}, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 100 {
		t.Fatalf("jobs = %d, want 100", g.Len())
	}
	// Width defaults to round(sqrt(100)) = 10.
	if len(g.Levels()) != 10 {
		t.Fatalf("levels = %d, want 10", len(g.Levels()))
	}
}

func TestLayeredDAGErrors(t *testing.T) {
	r := rng.New(1)
	if _, err := LayeredDAG(LayeredParams{Jobs: 1}, r); err == nil {
		t.Fatal("want error for Jobs < 2")
	}
	if _, err := LayeredDAG(LayeredParams{Jobs: 10, Beta: 3}, r); err == nil {
		t.Fatal("want error for Beta > 2")
	}
}

func TestLayeredScenarioLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("20k-job generation in -short mode")
	}
	r := rng.New(0x1A7E)
	sc, err := LayeredScenario(LayeredParams{Jobs: 20000, Width: 400, FanIn: 3, CCR: 1, Beta: 0.5},
		GridParams{InitialResources: 16, ChangeInterval: 500, ChangePct: 0.25, MaxEvents: 4}, r)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Graph.Len() != 20000 {
		t.Fatalf("jobs = %d", sc.Graph.Len())
	}
	if sc.Pool.Size() != 16+4*4 {
		t.Fatalf("pool size = %d, want 32", sc.Pool.Size())
	}
	if sc.Table.Jobs() != 20000 || sc.Table.Resources() != sc.Pool.Size() {
		t.Fatalf("table %dx%d does not cover scenario", sc.Table.Jobs(), sc.Table.Resources())
	}
}
