package workload

import (
	"fmt"
	"math"

	"aheft/internal/dag"
	"aheft/internal/rng"
)

// LayeredParams configures the large layered random DAGs the stress
// scenarios use. Unlike RandomDAG — which follows the paper's Topcuoglu
// generator and is tuned to the evaluation's 20–100-job scale — the
// layered generator is built for volume: width and depth are explicit,
// fan-in is bounded, and construction is O(jobs · fan-in), so DAGs of
// 5k–20k jobs build in milliseconds and exercise the scheduling kernel's
// hot paths rather than the generator's.
type LayeredParams struct {
	// Jobs is the total job count (≥ 2). Up to 20k is routinely exercised
	// by the stress benches.
	Jobs int
	// Width is the number of jobs per layer; the depth follows as
	// ceil(Jobs/Width). Zero means round(sqrt(Jobs)) — a square DAG.
	Width int
	// FanIn is how many distinct parents each non-entry job draws from
	// the previous layer (clamped to the layer's width). Zero means 3.
	FanIn int
	// CCR is the communication-to-computation ratio; edge weights are
	// uniform on [0, 2·CCR·AvgComp] as in the random generator.
	CCR float64
	// Beta is the resource heterogeneity factor (see RandomParams.Beta).
	Beta float64
	// AvgComp is ω_DAG; zero means DefaultAvgComp.
	AvgComp float64
}

func (p LayeredParams) avgComp() float64 {
	if p.AvgComp > 0 {
		return p.AvgComp
	}
	return DefaultAvgComp
}

func (p LayeredParams) width() int {
	if p.Width > 0 {
		return p.Width
	}
	w := int(math.Round(math.Sqrt(float64(p.Jobs))))
	if w < 1 {
		w = 1
	}
	return w
}

func (p LayeredParams) fanIn() int {
	if p.FanIn > 0 {
		return p.FanIn
	}
	return 3
}

func (p LayeredParams) validate() error {
	if p.Jobs < 2 {
		return fmt.Errorf("workload: LayeredParams.Jobs must be >= 2, got %d", p.Jobs)
	}
	if p.CCR < 0 || p.Beta < 0 || p.Beta > 2 || p.Width < 0 || p.FanIn < 0 {
		return fmt.Errorf("workload: invalid LayeredParams %+v", p)
	}
	return nil
}

// LayeredDAG generates a layered random DAG: ceil(Jobs/Width) layers of
// Width jobs each (the last layer takes the remainder), every non-entry
// job drawing FanIn distinct parents uniformly from the previous layer.
// Layer 0 holds the entries; jobs whose successors all landed elsewhere
// are exits. Edge weights are uniform on [0, 2·CCR·ω_DAG].
func LayeredDAG(p LayeredParams, r *rng.Source) (*dag.Graph, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	width := p.width()
	g := dag.New(fmt.Sprintf("layered-v%d-w%d", p.Jobs, width))
	commScale := 2 * p.CCR * p.avgComp()

	var prev []dag.JobID
	layer := make([]dag.JobID, 0, width)
	// pick reuses one scratch slice for the parent sample per job.
	pick := make([]int, 0, p.fanIn())
	made := 0
	for made < p.Jobs {
		layer = layer[:0]
		n := width
		if rem := p.Jobs - made; rem < n {
			n = rem
		}
		for i := 0; i < n; i++ {
			id := g.AddJob(fmt.Sprintf("j%d", made+1), fmt.Sprintf("op%d", made+1))
			made++
			layer = append(layer, id)
			if len(prev) == 0 {
				continue
			}
			fan := p.fanIn()
			if fan > len(prev) {
				fan = len(prev)
			}
			// Sample fan distinct indices into prev (rejection is cheap:
			// fan is a small constant and layers are wide).
			pick = pick[:0]
			for len(pick) < fan {
				c := r.IntN(len(prev))
				dup := false
				for _, got := range pick {
					if got == c {
						dup = true
						break
					}
				}
				if !dup {
					pick = append(pick, c)
				}
			}
			for _, c := range pick {
				g.MustEdge(prev[c], id, r.Uniform(0, commScale))
			}
		}
		prev = append(prev[:0], layer...)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// LayeredScenario generates one full stress case: a layered DAG plus a
// dynamic pool and cost table per gp. It is the workload behind the
// kernel stress benches (5k–20k jobs under pool churn).
func LayeredScenario(p LayeredParams, gp GridParams, r *rng.Source) (*Scenario, error) {
	g, err := LayeredDAG(p, r)
	if err != nil {
		return nil, err
	}
	return BuildScenario(g, gp, p.Beta, p.avgComp(), p.CCR, PerJob, r)
}
