// Package workload generates the workflow applications and grid scenarios
// the paper evaluates on: the Fig. 4 worked sample, parametric random DAGs
// (Topcuoglu's method, §4.2), and the two real-application DAG shapes,
// BLAST (Fig. 6) and WIEN2K (Fig. 7). A Montage-like generator is included
// as an extension (the paper cites Montage as a third well-balanced
// scientific workflow).
package workload

import (
	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/data"
	"aheft/internal/grid"
)

// Scenario bundles everything one simulation case needs: the workflow, the
// ground-truth cost table covering every resource that will ever join, and
// the dynamic resource pool. Files is the data-file catalog of data-aware
// scenarios; nil for the classic point-to-point ones.
type Scenario struct {
	Graph *dag.Graph
	Table *cost.Table
	Pool  *grid.Pool
	Files *data.Set
}

// Estimator returns the accurate estimator over the scenario's cost table
// (the paper's experiment assumption 1).
func (s *Scenario) Estimator() cost.Estimator { return cost.Exact(s.Table) }

// SampleDAG returns the paper's Fig. 4 worked example: the classic ten-job
// DAG from the HEFT paper with its edge communication weights.
func SampleDAG() *dag.Graph {
	g := dag.New("fig4-sample")
	ids := make([]dag.JobID, 11) // 1-based for readability
	for i := 1; i <= 10; i++ {
		ids[i] = g.AddJob("n"+itoa(i), "op"+itoa(i))
	}
	edges := []struct {
		from, to int
		data     float64
	}{
		{1, 2, 18}, {1, 3, 12}, {1, 4, 9}, {1, 5, 11}, {1, 6, 14},
		{2, 8, 19}, {2, 9, 16},
		{3, 7, 23},
		{4, 8, 27}, {4, 9, 23},
		{5, 9, 13},
		{6, 8, 15},
		{7, 10, 17}, {8, 10, 11}, {9, 10, 13},
	}
	for _, e := range edges {
		g.MustEdge(ids[e.from], ids[e.to], e.data)
	}
	return g.MustValidate()
}

// SampleTable returns the Fig. 4 computation-cost matrix: ten jobs on the
// three initial resources r1–r3 plus the late-arriving r4.
func SampleTable() *cost.Table {
	return cost.MustTable([][]float64{
		// r1, r2, r3, r4
		{14, 16, 9, 14},  // n1
		{13, 19, 18, 17}, // n2
		{11, 13, 19, 14}, // n3
		{13, 8, 17, 15},  // n4
		{12, 13, 10, 14}, // n5
		{13, 16, 9, 16},  // n6
		{7, 15, 11, 15},  // n7
		{5, 11, 14, 20},  // n8
		{18, 12, 20, 13}, // n9
		{21, 7, 16, 15},  // n10
	})
}

// SampleScenario returns the full Fig. 4/5 scenario: the sample DAG, its
// cost table, and a pool where r1–r3 are available from the start and r4
// joins at t = 15.
func SampleScenario() *Scenario {
	pool := grid.MustPool([]grid.Arrival{
		{Time: 0, Resource: grid.Resource{ID: 0, Name: "r1"}},
		{Time: 0, Resource: grid.Resource{ID: 1, Name: "r2"}},
		{Time: 0, Resource: grid.Resource{ID: 2, Name: "r3"}},
		{Time: 15, Resource: grid.Resource{ID: 3, Name: "r4"}},
	})
	return &Scenario{Graph: SampleDAG(), Table: SampleTable(), Pool: pool}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
